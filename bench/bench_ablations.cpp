// ABL — ablations for the design choices DESIGN.md calls out:
//
//  A. executor: in-place shared-state vs split/merge (deep copies) — the
//     overhead the split/merge path pays per phase, which fig. 2 measures.
//  B. per-phase random grid offsets on/off — §V's safeguard against
//     persistent partition-boundary bias.
//  C. iteration allocation: proportional-to-modifiable-features (the
//     paper's rule) vs uniform per partition.
//  D. blind partitioning dispute policy: accept vs discard unmatched
//     overlap-area features (precision/recall trade, §VIII).

#include <iostream>

#include "analysis/anomaly.hpp"
#include "analysis/metrics.hpp"
#include "analysis/table_writer.hpp"
#include "bench_common.hpp"
#include "core/periodic_sampler.hpp"
#include "core/pipeline.hpp"
#include "mcmc/sampler.hpp"

using namespace mcmcpar;

namespace {

std::vector<model::Circle> truthOf(const img::Scene& scene) {
  std::vector<model::Circle> t;
  for (const auto& c : scene.truth) t.push_back({c.x, c.y, c.r});
  return t;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Options opt = bench::parseOptions(argc, argv);
  const bench::CellWorkload w = bench::makeCellWorkload(opt);
  const mcmc::MoveRegistry registry = mcmc::MoveRegistry::caseStudy();
  const auto truth = truthOf(w.scene);
  const std::uint64_t iterations = opt.paperScale ? w.iterations : 40000;

  // --- A: executor overhead --------------------------------------------------
  std::printf("ABL-A: in-place vs split/merge local-phase executors\n\n");
  {
    analysis::Table table({"executor", "wall (s)", "overhead (s)",
                           "overhead/phase (ms)", "final logP"});
    struct Choice {
      const char* name;
      core::LocalExecutor executor;
    };
    for (const Choice& c :
         {Choice{"in-place (shared state)", core::LocalExecutor::Serial},
          Choice{"split/merge (deep copy)",
                 core::LocalExecutor::SplitMergeSerial}}) {
      model::ModelState state = bench::makeState(w, opt.seed + 21);
      core::PeriodicParams params;
      params.totalIterations = iterations;
      params.globalPhaseIterations = 52;
      params.executor = c.executor;
      params.margin = 0.0;  // identical legality for a fair comparison
      core::PeriodicSampler sampler(state, registry, params, opt.seed + 22);
      const core::PeriodicReport report = sampler.run();
      table.addRow(
          {c.name, analysis::Table::num(report.wallSeconds, 3),
           analysis::Table::num(report.overheadSeconds, 3),
           analysis::Table::num(
               1000.0 * report.overheadSeconds /
                   static_cast<double>(std::max<std::uint64_t>(report.phases, 1)),
               3),
           analysis::Table::num(state.logPosterior(), 1)});
    }
    table.print(std::cout);
    std::printf("\n(the split/merge overhead is the price of distribution-\n"
                "friendly isolation; in shared memory the in-place executor\n"
                "avoids it entirely)\n\n");
  }

  // --- B: random grid offsets ------------------------------------------------
  std::printf("ABL-B: per-phase random partition offsets vs a fixed layout\n\n");
  {
    analysis::Table table({"layout", "F1", "misses near fixed boundary",
                           "misses elsewhere"});
    for (const bool randomise : {true, false}) {
      model::ModelState state = bench::makeState(w, opt.seed + 31);
      core::PeriodicParams params;
      params.totalIterations = iterations;
      params.globalPhaseIterations = 52;
      params.executor = core::LocalExecutor::Serial;
      params.randomiseLayout = randomise;
      core::PeriodicSampler sampler(state, registry, params, opt.seed + 32);
      sampler.run();
      const double cx = w.scene.image.width() / 2.0;
      const double cy = w.scene.image.height() / 2.0;
      const auto audit = analysis::auditBoundaryAnomalies(
          state.config().snapshot(), truth, {cx}, {cy}, 7.0, 14.0, 5.0);
      const auto q = analysis::scoreCircles(state.config().snapshot(), truth, 7.0);
      table.addRow({randomise ? "random offsets (paper)" : "fixed centre cross",
                    analysis::Table::num(q.f1, 3),
                    analysis::Table::integer(
                        static_cast<long long>(audit.missesNearBoundary)),
                    analysis::Table::integer(
                        static_cast<long long>(audit.missesElsewhere))});
    }
    table.print(std::cout);
    std::printf("\n(a fixed layout leaves a persistent dead zone along the\n"
                "cross where features are never modifiable by local moves)\n\n");
  }

  // --- C: iteration allocation -----------------------------------------------
  std::printf("ABL-C: iteration allocation across partitions\n\n");
  {
    analysis::Table table({"allocation", "F1", "final logP"});
    for (const auto mode :
         {core::PeriodicParams::Allocation::ProportionalToFeatures,
          core::PeriodicParams::Allocation::UniformPerPartition}) {
      model::ModelState state = bench::makeState(w, opt.seed + 41);
      core::PeriodicParams params;
      params.totalIterations = iterations;
      params.globalPhaseIterations = 52;
      params.executor = core::LocalExecutor::Serial;
      params.allocation = mode;
      core::PeriodicSampler sampler(state, registry, params, opt.seed + 42);
      sampler.run();
      const auto q = analysis::scoreCircles(state.config().snapshot(), truth, 7.0);
      table.addRow(
          {mode == core::PeriodicParams::Allocation::ProportionalToFeatures
               ? "proportional (paper)"
               : "uniform",
           analysis::Table::num(q.f1, 3),
           analysis::Table::num(state.logPosterior(), 1)});
    }
    table.print(std::cout);
    std::printf("\n(uniform allocation wastes iterations on sparse partitions\n"
                "and starves dense ones; the gap widens with density skew)\n\n");
  }

  // --- D: blind dispute policy -----------------------------------------------
  std::printf("ABL-D: blind partitioning dispute policy\n\n");
  {
    img::SceneSpec spec = img::cellScene(256, 256, 20, 8.0, opt.seed + 51);
    spec.radiusStd = 0.5;
    const img::Scene scene = img::generateScene(spec);
    const auto sceneTruth = truthOf(scene);
    analysis::Table table({"policy", "precision", "recall", "F1"});
    for (const auto policy : {partition::BlindParams::DisputePolicy::Accept,
                              partition::BlindParams::DisputePolicy::Discard}) {
      core::PipelineParams params;
      params.prior.radiusMean = 8.0;
      params.prior.radiusStd = 0.8;
      params.prior.radiusMin = 4.0;
      params.prior.radiusMax = 13.0;
      params.iterationsBase = 2000;
      params.iterationsPerCircle = 500;
      params.seed = opt.seed + 52;
      params.blind.dispute = policy;
      const core::PipelineReport report =
          core::runBlindPipeline(scene.image, params);
      const auto q = analysis::scoreCircles(report.merged, sceneTruth, 6.0);
      table.addRow(
          {policy == partition::BlindParams::DisputePolicy::Accept
               ? "accept disputed (avoid misses)"
               : "discard disputed (avoid false positives)",
           analysis::Table::num(q.precision, 3),
           analysis::Table::num(q.recall, 3), analysis::Table::num(q.f1, 3)});
    }
    table.print(std::cout);
    std::printf("\n(the paper: 'you may wish to accept or discard them\n"
                "depending on whether it is more important to avoid\n"
                "false-positives or not missing potential artifacts')\n");
  }
  return 0;
}
