// BATCH — measure engine::BatchRunner throughput: a manifest-sized mix of
// jobs across the six strategies executed concurrently under one shared
// thread budget. Emits BENCH_batch.json (jobs/sec plus latency
// percentiles), the artifact the CI workflow uploads so the bench
// trajectory has machine-readable data.
//
//   bench_batch_throughput [--runs=N] [--seed=N] [--paper-scale]
//     --runs=N       jobs per strategy (default 2; paper-scale 4)
//     --out=FILE     JSON output path (default BENCH_batch.json)

#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/table_writer.hpp"
#include "bench_common.hpp"
#include "engine/batch.hpp"
#include "engine/registry.hpp"
#include "par/concurrency.hpp"

using namespace mcmcpar;

namespace {

void writeJson(const std::string& path, const engine::BatchResult& result,
               std::uint64_t iterations) {
  const engine::BatchReport& batch = result.batch;
  std::ofstream out(path);
  out << "{\n"
      << "  \"bench\": \"batch_throughput\",\n"
      << "  \"jobs\": " << batch.jobs << ",\n"
      << "  \"completed\": " << batch.completed << ",\n"
      << "  \"failed\": " << batch.failed << ",\n"
      << "  \"iterations_per_job\": " << iterations << ",\n"
      << "  \"thread_budget\": " << batch.threadBudget << ",\n"
      << "  \"concurrent_jobs\": " << batch.concurrentJobs << ",\n"
      << "  \"wall_seconds\": " << batch.wallSeconds << ",\n"
      << "  \"jobs_per_second\": " << batch.jobsPerSecond << ",\n"
      << "  \"latency_p50_seconds\": " << batch.p50Seconds << ",\n"
      << "  \"latency_p95_seconds\": " << batch.p95Seconds << ",\n"
      << "  \"per_strategy\": {\n";
  std::size_t emitted = 0;
  for (const auto& [name, totals] : batch.perStrategy) {
    out << "    \"" << name << "\": {\"jobs\": " << totals.jobs
        << ", \"iterations\": " << totals.iterations
        << ", \"wall_seconds\": " << totals.wallSeconds << "}"
        << (++emitted < batch.perStrategy.size() ? ",\n" : "\n");
  }
  out << "  }\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string outPath = "BENCH_batch.json";
  std::vector<char*> passthrough = {argv[0]};
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--out=", 6) == 0) {
      outPath = argv[i] + 6;
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  const bench::Options opt = bench::parseOptions(
      static_cast<int>(passthrough.size()), passthrough.data());
  const int jobsPerStrategy =
      opt.runs > 0 ? opt.runs : (opt.paperScale ? 4 : 2);
  const int size = opt.paperScale ? 384 : 160;
  const int cells = opt.paperScale ? 40 : 8;
  const std::uint64_t iterations = opt.paperScale ? 60000 : 8000;

  const img::Scene scene = img::generateScene(
      img::cellScene(size, size, cells, 10.0, opt.seed));
  engine::Problem problem;
  problem.filtered = &scene.image;
  problem.prior.radiusMean = 10.0;
  problem.prior.radiusStd = 1.2;
  problem.prior.radiusMin = 4.0;
  problem.prior.radiusMax = 18.0;

  std::vector<engine::BatchJob> jobs;
  for (int round = 0; round < jobsPerStrategy; ++round) {
    for (const std::string& name :
         engine::StrategyRegistry::builtin().names()) {
      engine::BatchJob job;
      job.strategy = name;
      job.problem = problem;
      job.budget = engine::RunBudget{iterations, 0};
      job.label = name + "#" + std::to_string(round);
      jobs.push_back(std::move(job));
    }
  }

  engine::BatchOptions options;
  options.resources.seed = opt.seed;
  options.resources.threads = 0;  // whole machine, shared by the batch

  std::printf("BATCH: %zu jobs (%d per strategy), %llu iters each, "
              "%u-thread budget\n\n",
              jobs.size(), jobsPerStrategy,
              static_cast<unsigned long long>(iterations),
              par::resolveThreadCount(0));

  const engine::BatchResult result =
      engine::BatchRunner().run(jobs, options);

  const engine::BatchReport& batch = result.batch;
  analysis::Table table({"strategy", "jobs", "iters", "seconds"});
  for (const auto& [name, totals] : batch.perStrategy) {
    table.addRow({name, analysis::Table::integer(
                            static_cast<long long>(totals.jobs)),
                  analysis::Table::integer(
                      static_cast<long long>(totals.iterations)),
                  analysis::Table::num(totals.wallSeconds, 3)});
  }
  table.print(std::cout);
  std::printf(
      "\n%zu/%zu jobs ok in %.3f s: %.2f jobs/s, "
      "latency p50 %.3f s / p95 %.3f s\n",
      batch.completed, batch.jobs, batch.wallSeconds, batch.jobsPerSecond,
      batch.p50Seconds, batch.p95Seconds);

  writeJson(outPath, result, iterations);
  std::printf("wrote %s\n", outPath.c_str());
  return batch.completed == batch.jobs ? 0 : 1;
}
