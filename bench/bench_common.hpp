#pragma once

// Shared setup for the figure/table reproduction benches. Each bench binary
// regenerates one artefact of the paper's evaluation; EXPERIMENTS.md records
// paper-vs-measured values. All benches accept:
//   --paper-scale   full 1024x1024 / 500k-iteration workloads (§VII scale)
//   --runs=N        repetition count where averaging applies
//   --seed=N        master seed

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>

#include "img/synth.hpp"
#include "mcmc/move_registry.hpp"
#include "model/posterior.hpp"
#include "rng/stream.hpp"

namespace bench {

struct Options {
  bool paperScale = false;
  int runs = 0;  // 0 = bench default
  std::uint64_t seed = 1;
};

inline Options parseOptions(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--paper-scale") == 0) {
      opt.paperScale = true;
    } else if (std::strncmp(argv[i], "--runs=", 7) == 0) {
      opt.runs = std::atoi(argv[i] + 7);
    } else if (std::strncmp(argv[i], "--seed=", 7) == 0) {
      opt.seed = static_cast<std::uint64_t>(std::atoll(argv[i] + 7));
    } else {
      std::fprintf(stderr, "unknown option: %s\n", argv[i]);
    }
  }
  return opt;
}

/// The §VII workload: a size x size image with `cells` nuclei of mean
/// radius 10 (paper: 1024x1024, 150 cells).
struct CellWorkload {
  mcmcpar::img::Scene scene;
  mcmcpar::model::PriorParams prior;
  mcmcpar::model::LikelihoodParams likelihood;
  std::uint64_t iterations;
};

inline CellWorkload makeCellWorkload(const Options& opt) {
  const int size = opt.paperScale ? 1024 : 384;
  const int cells = opt.paperScale ? 150 : 40;
  CellWorkload w{
      mcmcpar::img::generateScene(
          mcmcpar::img::cellScene(size, size, cells, 10.0, opt.seed)),
      {},
      {},
      opt.paperScale ? 500000ULL : 60000ULL};
  w.prior.expectedCount = cells;
  w.prior.radiusMean = 10.0;
  w.prior.radiusStd = 1.2;
  w.prior.radiusMin = 4.0;
  w.prior.radiusMax = 18.0;
  return w;
}

inline mcmcpar::model::ModelState makeState(const CellWorkload& w,
                                            std::uint64_t seed) {
  mcmcpar::model::ModelState state(w.scene.image, w.prior, w.likelihood);
  mcmcpar::rng::Stream stream(seed);
  state.initialiseRandom(
      static_cast<std::size_t>(w.prior.expectedCount + 0.5), stream);
  return state;
}

}  // namespace bench
