// DATAPLANE — measure what the binary UPLOAD frame buys over file-path
// submission on the serve socket protocol. Every request presents a
// *distinct* image (no content-hash reuse between requests), so each mode
// pays its full data-plane cost per job:
//   file-submit     image already on disk; the server stats + decodes the
//                   PGM per new path (the shared-filesystem workflow)
//   upload          gray8 pixels pushed over the connection, submitted
//                   with @image=inline — the server never touches disk
//   upload-oneshot  same, with the cache-bypass flag tile fan-outs use
// Emits BENCH_dataplane.json (the artifact CI uploads).
//
//   bench_dataplane [--runs=N] [--seed=N] [--paper-scale] [--out=FILE]
//     --runs=N   requests per mode (default 12; paper 24)
//     --out=FILE JSON output path (default BENCH_dataplane.json)

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "img/pnm_io.hpp"
#include "par/virtual_clock.hpp"
#include "serve/server.hpp"
#include "serve/socket.hpp"

using namespace mcmcpar;
namespace fs = std::filesystem;

namespace {

double percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const auto rank = static_cast<std::size_t>(
      std::max(1.0, std::ceil(p * static_cast<double>(values.size()))));
  return values[std::min(rank, values.size()) - 1];
}

void printMode(const char* name, const std::vector<double>& latencies) {
  std::printf("  %-14s %3zu requests: p50 %7.3f ms, p95 %7.3f ms\n", name,
              latencies.size(), 1e3 * percentile(latencies, 0.50),
              1e3 * percentile(latencies, 0.95));
}

void jsonMode(std::ostream& out, const char* name,
              const std::vector<double>& latencies, bool last) {
  out << "    \"" << name << "\": {\"requests\": " << latencies.size()
      << ", \"p50_seconds\": " << percentile(latencies, 0.50)
      << ", \"p95_seconds\": " << percentile(latencies, 0.95) << "}"
      << (last ? "\n" : ",\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::string outPath = "BENCH_dataplane.json";
  std::vector<char*> passthrough = {argv[0]};
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--out=", 6) == 0) {
      outPath = argv[i] + 6;
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  const bench::Options opt = bench::parseOptions(
      static_cast<int>(passthrough.size()), passthrough.data());
  const int requests = opt.runs > 0 ? opt.runs : (opt.paperScale ? 24 : 12);
  const int size = opt.paperScale ? 512 : 192;
  const int cells = opt.paperScale ? 50 : 10;
  const std::uint64_t iterations = opt.paperScale ? 8000 : 2000;

  // One distinct scene per request and mode, so no request rides a
  // content-hash hit from an earlier one: both planes pay full freight.
  const auto makeImage = [&](int index) {
    return img::toU8(img::generateScene(img::cellScene(
                         size, size, cells, 10.0,
                         opt.seed + 1000 * static_cast<unsigned>(index)))
                         .image);
  };

  std::printf("DATAPLANE: %d requests/mode, %llu iters each, %dx%d image\n\n",
              requests, static_cast<unsigned long long>(iterations), size,
              size);

  serve::ServerOptions serverOptions;
  serverOptions.seed = opt.seed;
  serverOptions.radius = 10.0;
  serverOptions.defaultBudget = engine::RunBudget{iterations, 0};
  serve::Server server(serverOptions);
  serve::SocketFrontend socket(server, 0);

  serve::Client client;
  client.connect("127.0.0.1", socket.port(), 120.0);
  bool allOk = true;
  const auto runJob = [&](const std::string& jobLine) {
    const std::uint64_t id = client.submit(jobLine);
    allOk &= client.wait(id) == "done";
  };

  // --- file-submit: distinct path per request, server decodes from disk --
  const fs::path dir =
      fs::temp_directory_path() /
      ("bench_dataplane_" + std::to_string(opt.seed));
  fs::create_directories(dir);
  std::vector<std::string> paths;
  for (int i = 0; i < requests; ++i) {
    const fs::path p = dir / ("frame_" + std::to_string(i) + ".pgm");
    img::writePgm(makeImage(i), p.string());
    paths.push_back(p.string());
  }
  std::vector<double> fileSubmit;
  for (int i = 0; i < requests; ++i) {
    const par::WallTimer timer;
    runJob(paths[i] + " serial @iters=" + std::to_string(iterations));
    fileSubmit.push_back(timer.seconds());
  }
  printMode("file-submit", fileSubmit);

  // --- upload: push pixels over the socket, submit @image=inline --------
  // Offset the scene index past the file batch so content stays distinct.
  std::vector<double> uploaded;
  for (int i = 0; i < requests; ++i) {
    const img::ImageU8 image = makeImage(requests + i);
    const std::string id = "up-" + std::to_string(i);
    const par::WallTimer timer;
    (void)client.upload(id, image);
    runJob(id + " serial @image=inline @iters=" +
           std::to_string(iterations));
    uploaded.push_back(timer.seconds());
  }
  printMode("upload", uploaded);

  // --- upload-oneshot: the cache-bypass path the shard fan-out uses ------
  std::vector<double> oneshot;
  for (int i = 0; i < requests; ++i) {
    const img::ImageU8 image = makeImage(2 * requests + i);
    const std::string id = "once-" + std::to_string(i);
    const par::WallTimer timer;
    (void)client.upload(id, image, /*oneshot=*/true);
    runJob(id + " serial @image=inline @iters=" +
           std::to_string(iterations));
    oneshot.push_back(timer.seconds());
  }
  printMode("upload-oneshot", oneshot);

  const serve::ServerStats stats = server.stats();
  std::printf("\ncache after all modes: %zu entr(ies), %llu eviction(s) -- "
              "oneshot uploads must not have displaced warm frames\n",
              static_cast<std::size_t>(stats.cache.entries),
              static_cast<unsigned long long>(stats.cache.evictions));

  const double fileP50 = percentile(fileSubmit, 0.50);
  const double uploadP50 = percentile(uploaded, 0.50);
  std::printf("file-submit p50 %.3f ms vs upload p50 %.3f ms (%+.1f%%)\n",
              1e3 * fileP50, 1e3 * uploadP50,
              fileP50 > 0.0 ? 100.0 * (uploadP50 - fileP50) / fileP50 : 0.0);

  std::ofstream out(outPath);
  out << "{\n"
      << "  \"bench\": \"dataplane\",\n"
      << "  \"iterations_per_request\": " << iterations << ",\n"
      << "  \"image\": \"" << size << "x" << size << "\",\n"
      << "  \"modes\": {\n";
  jsonMode(out, "file_submit", fileSubmit, false);
  jsonMode(out, "upload", uploaded, false);
  jsonMode(out, "upload_oneshot", oneshot, true);
  out << "  },\n"
      << "  \"cache_entries\": " << stats.cache.entries << ",\n"
      << "  \"cache_evictions\": " << stats.cache.evictions << ",\n"
      << "  \"all_jobs_done\": " << (allOk ? "true" : "false") << "\n"
      << "}\n";
  std::printf("wrote %s\n", outPath.c_str());

  client.close();
  socket.stop();
  std::error_code ec;
  fs::remove_all(dir, ec);
  return allOk ? 0 : 1;
}
