// EQ34 — validate the speculative-moves terms of eqs. 3-4: with rejection
// probability p and n lanes, one speculative round advances the chain by
// (1 - p^n)/(1 - p) iterations in the wall time of one. We measure the
// per-phase rejection rates live, run the executor, and compare measured
// consumed-per-round against the closed form; then print the eq. 2/3/4
// runtime predictions these rates imply.

#include <iostream>

#include "analysis/table_writer.hpp"
#include "bench_common.hpp"
#include "core/runtime_predictor.hpp"
#include "mcmc/sampler.hpp"
#include "spec/speculative.hpp"

using namespace mcmcpar;

int main(int argc, char** argv) {
  const bench::Options opt = bench::parseOptions(argc, argv);
  const bench::CellWorkload w = bench::makeCellWorkload(opt);
  const mcmc::MoveRegistry registry = mcmc::MoveRegistry::caseStudy();

  std::printf("EQ34: speculative-move speedup vs the (1-p^n)/(1-p) model\n\n");

  // Burn in a chain and measure per-kind rejection rates.
  model::ModelState state = bench::makeState(w, opt.seed + 1);
  {
    mcmc::Sampler burn(state, registry, opt.seed + 2);
    burn.run(w.iterations / 3);
    const auto global = burn.diagnostics().aggregate(
        {"add", "delete", "merge", "split", "replace"});
    const auto local = burn.diagnostics().aggregate({"move-centre", "resize"});
    std::printf("measured rejection rates after burn-in: pgr=%.3f plr=%.3f\n\n",
                global.rejectionRate(), local.rejectionRate());
  }

  analysis::Table table({"phase", "lanes", "measured iters/round",
                         "predicted", "error %"});
  for (const auto phase : {spec::MovePhase::GlobalOnly, spec::MovePhase::LocalOnly}) {
    const char* name =
        phase == spec::MovePhase::GlobalOnly ? "global" : "local";
    for (unsigned lanes : {2u, 4u, 8u}) {
      spec::SpeculativeExecutor exec(state, registry, lanes,
                                     opt.seed + 10 + lanes);
      exec.run(opt.paperScale ? 60000 : 20000, phase);
      const double measured = exec.stats().meanConsumedPerRound();
      const double p = exec.diagnostics().aggregate().rejectionRate();
      const double predicted = spec::expectedConsumedPerRound(p, lanes);
      table.addRow({name, analysis::Table::integer(lanes),
                    analysis::Table::num(measured, 3),
                    analysis::Table::num(predicted, 3),
                    analysis::Table::num(100.0 * (measured - predicted) /
                                             predicted, 2)});
    }
  }
  table.print(std::cout);

  // Runtime predictions (eqs. 2-4) with the measured rates at tauG=tauL.
  core::PredictionInput in;
  in.iterations = w.iterations;
  in.qGlobal = registry.qGlobal();
  in.tauGlobal = in.tauLocal = 4e-5;
  in.partitions = 4;
  in.globalRejection = 0.75;
  in.localRejection = 0.75;
  in.specLanesGlobal = 4;
  in.specLanesLocal = 4;
  std::printf("\nruntime model at qg=%.2f, s=4, tau=4e-5 s, p=0.75, n=t=4:\n",
              in.qGlobal);
  std::printf("  sequential (baseline)        : %.3f s\n",
              core::predictSequentialSeconds(in));
  std::printf("  eq. 2 periodic               : %.3f s\n",
              core::predictPeriodicSeconds(in));
  std::printf("  eq. 3 periodic + spec global : %.3f s\n",
              core::predictPeriodicSpecGlobalSeconds(in));
  std::printf("  eq. 4 cluster (s machines x t threads): %.3f s\n",
              core::predictClusterSeconds(in));
  return 0;
}
