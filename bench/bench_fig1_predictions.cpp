// FIG1 — reproduce Fig. 1: "Predicted results for periodic parallelisation,
// tauG = tauL": relative runtime vs qg for 2/4/8/16 processes (eq. 2).
//
// Pure analytic model; printed as the same four series the figure plots.

#include <iostream>

#include "analysis/table_writer.hpp"
#include "core/runtime_predictor.hpp"

int main() {
  using mcmcpar::analysis::Table;
  std::printf("FIG1: predicted relative runtime vs qg (eq. 2, tauG == tauL)\n\n");

  const unsigned processes[] = {2, 4, 8, 16};
  Table table({"qg", "s=2", "s=4", "s=8", "s=16"});
  for (unsigned i = 0; i <= 20; ++i) {
    const double qg = static_cast<double>(i) / 20.0;
    std::vector<std::string> row{Table::num(qg, 2)};
    for (unsigned s : processes) {
      row.push_back(Table::num(mcmcpar::core::fig1RelativeRuntime(qg, s), 4));
    }
    table.addRow(std::move(row));
  }
  table.print(std::cout);

  std::printf("\ncheckpoints: qg=0 -> 1/s; qg=1 -> 1.0 (figure endpoints)\n");
  std::printf("paper operating point qg=0.4, s=4: %.2f (the predicted 45%% "
              "reduction quoted in §VII)\n",
              mcmcpar::core::fig1RelativeRuntime(0.4, 4));
  return 0;
}
