// FIG2 — reproduce Fig. 2: periodic-partitioning runtime vs the time spent
// in each global phase, on the §VII workload (paper: 1024x1024, 150 cells,
// 500k iterations, 4 cross partitions, Q6600; horizontal line = sequential).
//
// Default is a scaled workload (384x384 / 60k iterations) so the whole
// bench suite stays fast; run with --paper-scale for the full size.
//
// The split/merge executor provides the real per-phase overhead the figure
// measures; the 4-thread virtual clock provides the quad-core wall time
// (this container has one core; see DESIGN.md §2).

#include <iostream>

#include "analysis/table_writer.hpp"
#include "bench_common.hpp"
#include "core/periodic_sampler.hpp"
#include "mcmc/sampler.hpp"
#include "par/virtual_clock.hpp"

using namespace mcmcpar;

int main(int argc, char** argv) {
  const bench::Options opt = bench::parseOptions(argc, argv);
  const bench::CellWorkload w = bench::makeCellWorkload(opt);
  const mcmc::MoveRegistry registry = mcmc::MoveRegistry::caseStudy();

  std::printf("FIG2: runtime vs time per global phase (%s scale)\n",
              opt.paperScale ? "paper" : "reduced");
  std::printf("workload: %dx%d, %llu iterations, 4 cross partitions\n\n",
              w.scene.image.width(), w.scene.image.height(),
              static_cast<unsigned long long>(w.iterations));

  // Sequential baseline (the figure's horizontal line).
  double tauSequential;
  double seqSeconds;
  {
    model::ModelState state = bench::makeState(w, opt.seed + 1);
    mcmc::Sampler sampler(state, registry, opt.seed + 2);
    const par::WallTimer timer;
    sampler.run(w.iterations);
    seqSeconds = timer.seconds();
    tauSequential = seqSeconds / static_cast<double>(w.iterations);
  }
  std::printf("sequential: %.3f s  (tau = %.2e s/iter)\n\n", seqSeconds,
              tauSequential);

  // Sweep the global-phase length z (iterations); the x-axis of fig. 2 is
  // z * tauG seconds.
  const std::uint64_t zs[] = {2, 5, 10, 23, 50, 130, 260, 520, 1040};
  analysis::Table table({"z (Mg iters)", "global phase (ms)", "virtual 4-thr (s)",
                         "vs sequential", "overhead/phase (ms)"});
  for (std::uint64_t z : zs) {
    model::ModelState state = bench::makeState(w, opt.seed + 1);
    core::PeriodicParams params;
    params.totalIterations = w.iterations;
    params.globalPhaseIterations = z;
    params.executor = core::LocalExecutor::SplitMergeSerial;
    params.virtualThreads = 4;
    core::PeriodicSampler sampler(state, registry, params, opt.seed + 3);
    const core::PeriodicReport report = sampler.run();

    const double phaseMs =
        1000.0 * static_cast<double>(z) * report.globalSeconds /
        static_cast<double>(std::max<std::uint64_t>(report.globalIterations, 1));
    const double overheadMs =
        1000.0 * report.overheadSeconds /
        static_cast<double>(std::max<std::uint64_t>(report.phases, 1));
    table.addRow({analysis::Table::integer(static_cast<long long>(z)),
                  analysis::Table::num(phaseMs, 2),
                  analysis::Table::num(report.virtualSeconds, 3),
                  analysis::Table::num(report.virtualSeconds / seqSeconds, 3),
                  analysis::Table::num(overheadMs, 2)});
  }
  table.print(std::cout);

  std::printf(
      "\nexpected shape (paper fig. 2): very short global phases are *slower*\n"
      "than sequential (split/merge overhead dominates); the curve drops and\n"
      "flattens once each phase amortises the overhead (paper: >= ~4 ms to\n"
      "break even, sweet spot ~20 ms, ~29%% below sequential on the Q6600).\n");
  return 0;
}
