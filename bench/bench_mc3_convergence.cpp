// MC3 — the related-work baseline of §IV: Metropolis-coupled MCMC improves
// the *rate of convergence* (fewer iterations), while the paper's schemes
// distribute the *per-iteration workload*. This bench makes the difference
// measurable: iterations-to-plateau and wall time for plain MCMC, (MC)^3
// with 4 chains, and periodic partitioning on the same hard scene (clumped
// artifacts -> multimodal posterior where heated chains help escape).

#include <iostream>

#include "analysis/metrics.hpp"
#include "analysis/table_writer.hpp"
#include "bench_common.hpp"
#include "core/periodic_sampler.hpp"
#include "mcmc/convergence.hpp"
#include "mcmc/mc3.hpp"
#include "mcmc/sampler.hpp"
#include "par/virtual_clock.hpp"

using namespace mcmcpar;

int main(int argc, char** argv) {
  const bench::Options opt = bench::parseOptions(argc, argv);

  // A clumpy scene: overlapping artifacts create merge/split ambiguity
  // (the multimodality MC^3 is designed for).
  img::SceneSpec spec;
  spec.width = 256;
  spec.height = 256;
  spec.radiusMean = 8.0;
  spec.radiusStd = 0.6;
  spec.seed = opt.seed + 70;
  spec.clusters = {
      img::ClusterSpec{10, 10, 110, 110, 8, 0.5},
      img::ClusterSpec{130, 10, 110, 110, 6, 0.5},
      img::ClusterSpec{10, 130, 110, 110, 6, 0.5},
      img::ClusterSpec{130, 130, 110, 110, 8, 0.5},
  };
  const img::Scene scene = img::generateScene(spec);

  model::PriorParams prior;
  prior.expectedCount = static_cast<double>(scene.truth.size());
  prior.radiusMean = 8.0;
  prior.radiusStd = 0.8;
  prior.radiusMin = 4.0;
  prior.radiusMax = 13.0;

  const mcmc::MoveRegistry registry = mcmc::MoveRegistry::caseStudy();
  const std::uint64_t iterations = opt.paperScale ? 200000 : 60000;
  const std::uint64_t trace = iterations / 200;

  std::vector<model::Circle> truth;
  for (const auto& t : scene.truth) truth.push_back({t.x, t.y, t.r});

  std::printf("MC3: convergence-rate baseline vs workload distribution\n");
  std::printf("scene: %dx%d, %zu clumped artifacts, %llu iterations\n\n",
              spec.width, spec.height, scene.truth.size(),
              static_cast<unsigned long long>(iterations));

  analysis::Table table({"method", "wall (s)", "itr to plateau", "final logP",
                         "F1"});

  // Plain sequential.
  {
    model::ModelState state(scene.image, prior, model::LikelihoodParams{});
    rng::Stream s(opt.seed + 71);
    state.initialiseRandom(scene.truth.size(), s);
    mcmc::Sampler sampler(state, registry, s);
    const par::WallTimer timer;
    sampler.run(iterations, trace);
    const auto plateau = mcmc::iterationsToPlateau(sampler.diagnostics().trace());
    const auto q = analysis::scoreCircles(state.config().snapshot(), truth, 6.0);
    table.addRow({"sequential", analysis::Table::num(timer.seconds(), 3),
                  plateau ? analysis::Table::integer(
                                static_cast<long long>(plateau->iteration))
                          : "-",
                  analysis::Table::num(state.logPosterior(), 1),
                  analysis::Table::num(q.f1, 3)});
  }

  // (MC)^3, 4 chains (cold-chain iterations = `iterations`; 4x total work).
  {
    mcmc::Mc3Params params;
    params.chains = 4;
    params.heatStep = 0.2;
    params.swapInterval = 100;
    mcmc::Mc3Sampler mc3(scene.image, prior, model::LikelihoodParams{},
                         registry, params, scene.truth.size(), opt.seed + 72);
    const par::WallTimer timer;
    mc3.run(iterations, trace);
    const auto plateau = mcmc::iterationsToPlateau(mc3.coldDiagnostics().trace());
    const auto q = analysis::scoreCircles(mc3.coldChain().config().snapshot(),
                                          truth, 6.0);
    table.addRow(
        {"(MC)^3 4 chains", analysis::Table::num(timer.seconds(), 3),
         plateau ? analysis::Table::integer(
                       static_cast<long long>(plateau->iteration))
                 : "-",
         analysis::Table::num(mc3.coldChain().logPosterior(), 1),
         analysis::Table::num(q.f1, 3)});
    std::printf("  (MC)^3 swap rate: %.2f (%llu of %llu proposals)\n\n",
                mc3.stats().swapRate(),
                static_cast<unsigned long long>(mc3.stats().swapAccepted),
                static_cast<unsigned long long>(mc3.stats().swapProposed));
  }

  // Periodic partitioning (same iteration budget, distributed workload).
  {
    model::ModelState state(scene.image, prior, model::LikelihoodParams{});
    rng::Stream s(opt.seed + 73);
    state.initialiseRandom(scene.truth.size(), s);
    core::PeriodicParams params;
    params.totalIterations = iterations;
    params.globalPhaseIterations = 520;
    params.executor = core::LocalExecutor::Serial;
    params.virtualThreads = 4;
    params.traceInterval = trace;
    core::PeriodicSampler sampler(state, registry, params, opt.seed + 74);
    const core::PeriodicReport report = sampler.run();
    const auto plateau = mcmc::iterationsToPlateau(report.diagnostics.trace());
    const auto q = analysis::scoreCircles(state.config().snapshot(), truth, 6.0);
    table.addRow(
        {"periodic (virt. 4 thr)",
         analysis::Table::num(report.virtualSeconds, 3),
         plateau ? analysis::Table::integer(
                       static_cast<long long>(plateau->iteration))
                 : "-",
         analysis::Table::num(state.logPosterior(), 1),
         analysis::Table::num(q.f1, 3)});
  }

  table.print(std::cout);
  std::printf(
      "\nreading: (MC)^3 buys convergence in *iterations* (at 4x the work\n"
      "per iteration budget), periodic partitioning buys *wall time per\n"
      "iteration*; the two are complementary, as §IV notes.\n");
  return 0;
}
