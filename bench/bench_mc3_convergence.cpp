// MC3 — the related-work baseline of §IV: Metropolis-coupled MCMC improves
// the *rate of convergence* (fewer iterations), while the paper's schemes
// distribute the *per-iteration workload*. This bench makes the difference
// measurable: iterations-to-plateau and wall time for plain MCMC, (MC)^3
// with 4 chains, and periodic partitioning on the same hard scene (clumped
// artifacts -> multimodal posterior where heated chains help escape).
//
// Ported to the engine façade: each method is one registry name plus
// key=value options; the duplicated state/registry/seed wiring is gone and
// every row reads off the same RunReport.

#include <iostream>

#include "analysis/metrics.hpp"
#include "analysis/table_writer.hpp"
#include "bench_common.hpp"
#include "engine/registry.hpp"

using namespace mcmcpar;

int main(int argc, char** argv) {
  const bench::Options opt = bench::parseOptions(argc, argv);

  // A clumpy scene: overlapping artifacts create merge/split ambiguity
  // (the multimodality MC^3 is designed for).
  img::SceneSpec spec;
  spec.width = 256;
  spec.height = 256;
  spec.radiusMean = 8.0;
  spec.radiusStd = 0.6;
  spec.seed = opt.seed + 70;
  spec.clusters = {
      img::ClusterSpec{10, 10, 110, 110, 8, 0.5},
      img::ClusterSpec{130, 10, 110, 110, 6, 0.5},
      img::ClusterSpec{10, 130, 110, 110, 6, 0.5},
      img::ClusterSpec{130, 130, 110, 110, 8, 0.5},
  };
  const img::Scene scene = img::generateScene(spec);

  engine::Problem problem;
  problem.filtered = &scene.image;
  problem.estimateCount = false;  // the scene's true count, as before
  problem.prior.expectedCount = static_cast<double>(scene.truth.size());
  problem.prior.radiusMean = 8.0;
  problem.prior.radiusStd = 0.8;
  problem.prior.radiusMin = 4.0;
  problem.prior.radiusMax = 13.0;

  const std::uint64_t iterations = opt.paperScale ? 200000 : 60000;
  const engine::RunBudget budget{iterations, iterations / 200};

  std::vector<model::Circle> truth;
  for (const auto& t : scene.truth) truth.push_back({t.x, t.y, t.r});

  std::printf("MC3: convergence-rate baseline vs workload distribution\n");
  std::printf("scene: %dx%d, %zu clumped artifacts, %llu iterations\n\n",
              spec.width, spec.height, scene.truth.size(),
              static_cast<unsigned long long>(iterations));

  struct Method {
    const char* label;
    const char* strategy;
    std::uint64_t seedOffset;
    std::vector<std::string> options;
  };
  const Method methods[] = {
      {"sequential", "serial", 71, {}},
      {"(MC)^3 4 chains",
       "mc3",
       72,
       {"chains=4", "heat-step=0.2", "swap-interval=100"}},
      {"periodic (virt. 4 thr)",
       "periodic",
       74,
       {"phase=520", "executor=serial", "virtual-threads=4"}},
  };

  analysis::Table table(
      {"method", "wall (s)", "itr to plateau", "final logP", "F1"});
  for (const Method& method : methods) {
    const engine::Engine eng(
        engine::ExecResources{1, false, opt.seed + method.seedOffset});
    const engine::RunReport report =
        eng.run(method.strategy, problem, budget, {}, method.options);

    // The periodic row reports the modelled SMP wall time, as the paper does.
    double seconds = report.wallSeconds;
    if (const auto* periodic =
            std::get_if<core::PeriodicReport>(&report.extras)) {
      seconds = periodic->virtualSeconds;
    }
    const auto q = analysis::scoreCircles(report.circles, truth, 6.0);
    table.addRow({method.label, analysis::Table::num(seconds, 3),
                  report.iterationsToConverge
                      ? analysis::Table::integer(static_cast<long long>(
                            *report.iterationsToConverge))
                      : "-",
                  analysis::Table::num(report.logPosterior, 1),
                  analysis::Table::num(q.f1, 3)});

    if (const auto* mc3 = std::get_if<mcmc::Mc3Stats>(&report.extras)) {
      std::printf("  (MC)^3 swap rate: %.2f (%llu of %llu proposals)\n\n",
                  mc3->swapRate(),
                  static_cast<unsigned long long>(mc3->swapAccepted),
                  static_cast<unsigned long long>(mc3->swapProposed));
    }
  }

  table.print(std::cout);
  std::printf(
      "\nreading: (MC)^3 buys convergence in *iterations* (at 4x the work\n"
      "per iteration budget), periodic partitioning buys *wall time per\n"
      "iteration*; the two are complementary, as §IV notes.\n");
  return 0;
}
