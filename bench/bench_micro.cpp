// MICRO — google-benchmark microbenchmarks of the substrates the paper's
// per-iteration cost model (tauG, tauL) is made of: incremental likelihood
// deltas, spatial-grid neighbour queries, RNG throughput, disc rasterising,
// and the split/merge crop transfer that dominates periodic overhead.

#include <benchmark/benchmark.h>

#include "core/split_merge.hpp"
#include "img/disc_raster.hpp"
#include "img/synth.hpp"
#include "mcmc/sampler.hpp"
#include "model/likelihood_kernels.hpp"
#include "model/posterior.hpp"
#include "obs/metrics.hpp"
#include "rng/distributions.hpp"
#include "rng/stream.hpp"

using namespace mcmcpar;

namespace {

model::PriorParams microPrior() {
  model::PriorParams p;
  p.expectedCount = 60.0;
  p.radiusMean = 10.0;
  p.radiusStd = 1.2;
  p.radiusMin = 4.0;
  p.radiusMax = 18.0;
  return p;
}

model::ModelState microState(int size, int circles, std::uint64_t seed) {
  static std::map<std::tuple<int, int, std::uint64_t>, img::Scene> cache;
  auto key = std::make_tuple(size, circles, seed);
  if (!cache.count(key)) {
    cache[key] =
        img::generateScene(img::cellScene(size, size, circles, 10.0, seed));
  }
  model::ModelState state(cache[key].image, microPrior(),
                          model::LikelihoodParams{});
  rng::Stream s(seed + 1);
  state.initialiseRandom(static_cast<std::size_t>(circles), s);
  return state;
}

void BM_XoshiroThroughput(benchmark::State& state) {
  rng::Stream s(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.bits());
  }
}
BENCHMARK(BM_XoshiroThroughput);

void BM_NormalDraw(benchmark::State& state) {
  rng::Stream s(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.normal());
  }
}
BENCHMARK(BM_NormalDraw);

void BM_AliasTableSample(benchmark::State& state) {
  const rng::AliasTable table({0.08, 0.08, 0.08, 0.08, 0.08, 0.3, 0.3});
  rng::Stream s(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.sample(s));
  }
}
BENCHMARK(BM_AliasTableSample);

void BM_DiscIteration(benchmark::State& state) {
  const double r = static_cast<double>(state.range(0));
  double sum = 0.0;
  for (auto _ : state) {
    img::forEachDiscPixel(64.5, 64.5, r, 128, 128,
                          [&](int x, int y) { sum += x + y; });
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(3.14159 * r * r));
}
BENCHMARK(BM_DiscIteration)->Arg(5)->Arg(10)->Arg(20);

// --- CI regression gate pairs ----------------------------------------------
// Each *PerPixel512 benchmark reproduces the pre-span hot path (per-pixel
// callback, one branch and one serial accumulate per pixel); the matching
// *Span512 benchmark runs today's row-span kernel on the identical 512x512
// workload. tools/check_bench_micro.py gates CI on the in-run speedup ratio
// of each pair, which is machine-independent, instead of absolute times.

struct GateWorkload {
  img::ImageF gain{512, 512};
  img::Image<std::uint16_t> cov{512, 512, 0};
  std::vector<model::Circle> probes;
};

const GateWorkload& gateWorkload() {
  static const GateWorkload w = [] {
    GateWorkload out;
    rng::Stream s(29);
    for (float& v : out.gain.pixels()) {
      v = static_cast<float>(s.uniform(-4.0, 4.0));
    }
    // Half the raster pre-covered so the cov==0 branch is exercised both ways.
    for (int i = 0; i < 40; ++i) {
      img::forEachDiscSpan(s.uniform(0, 512), s.uniform(0, 512),
                           s.uniform(15, 40), 512, 512,
                           [&](int y, int x0, int x1) {
                             std::uint16_t* row = out.cov.row(y);
                             for (int x = x0; x < x1; ++x) ++row[x];
                           });
    }
    for (int i = 0; i < 64; ++i) {
      out.probes.push_back(model::Circle{s.uniform(20, 492),
                                         s.uniform(20, 492), 32.0});
    }
    return out;
  }();
  return w;
}

std::int64_t gateDiscPixels(const GateWorkload& w) {
  std::int64_t pixels = 0;
  for (const model::Circle& c : w.probes) {
    pixels += static_cast<std::int64_t>(
        img::discPixelCount(c.x, c.y, c.r, 512, 512));
  }
  return pixels;
}

void BM_GainAccumPerPixel512(benchmark::State& state) {
  const GateWorkload& w = gateWorkload();
  double sum = 0.0;
  for (auto _ : state) {
    for (const model::Circle& c : w.probes) {
      img::forEachDiscPixel(c.x, c.y, c.r, 512, 512, [&](int x, int y) {
        sum += w.cov(x, y) == 0 ? static_cast<double>(w.gain(x, y)) : 0.0;
      });
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * gateDiscPixels(w));
}
BENCHMARK(BM_GainAccumPerPixel512);

void BM_GainAccumSpan512(benchmark::State& state) {
  const GateWorkload& w = gateWorkload();
  double sum = 0.0;
  for (auto _ : state) {
    for (const model::Circle& c : w.probes) {
      img::forEachDiscSpan(c.x, c.y, c.r, 512, 512,
                           [&](int y, int x0, int x1) {
                             sum += model::kernels::spanDeltaAdd(
                                 w.gain.row(y) + x0, w.cov.row(y) + x0,
                                 static_cast<std::size_t>(x1 - x0));
                           });
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * gateDiscPixels(w));
}
BENCHMARK(BM_GainAccumSpan512);

// Instrumented twin of BM_GainAccumSpan512: the identical kernel plus the
// metrics a serving hot path records per probe — one counter add and one
// histogram observe against pointer-stable handles, the pattern the
// instrumented layers use. tools/check_bench_micro.py caps the allowed
// slowdown of this pair so registry overhead cannot creep into the hot path.
void BM_GainAccumSpan512Obs(benchmark::State& state) {
  const GateWorkload& w = gateWorkload();
  static obs::Registry registry;
  obs::Counter& probeCount = registry.counter(
      "mcmcpar_bench_probes_total", "Probes accumulated by the obs gate.");
  obs::Histogram& probeSeconds = registry.histogram(
      "mcmcpar_bench_probe_seconds", "Synthetic per-probe latency.",
      obs::latencyBuckets());
  double sum = 0.0;
  for (auto _ : state) {
    for (const model::Circle& c : w.probes) {
      img::forEachDiscSpan(c.x, c.y, c.r, 512, 512,
                           [&](int y, int x0, int x1) {
                             sum += model::kernels::spanDeltaAdd(
                                 w.gain.row(y) + x0, w.cov.row(y) + x0,
                                 static_cast<std::size_t>(x1 - x0));
                           });
      probeCount.add();
      probeSeconds.observe(1.5e-4);
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * gateDiscPixels(w));
}
BENCHMARK(BM_GainAccumSpan512Obs);

void BM_ResyncPerPixel512(benchmark::State& state) {
  const GateWorkload& w = gateWorkload();
  for (auto _ : state) {
    double total = 0.0;
    for (int y = 0; y < 512; ++y) {
      for (int x = 0; x < 512; ++x) {
        total += w.cov(x, y) > 0 ? static_cast<double>(w.gain(x, y)) : 0.0;
      }
    }
    benchmark::DoNotOptimize(total);
  }
  state.SetItemsProcessed(state.iterations() * 512 * 512);
}
BENCHMARK(BM_ResyncPerPixel512);

void BM_ResyncSpan512(benchmark::State& state) {
  const GateWorkload& w = gateWorkload();
  for (auto _ : state) {
    model::kernels::KahanSum total;
    for (int y = 0; y < 512; ++y) {
      total.add(model::kernels::spanSumCovered(w.gain.row(y), w.cov.row(y),
                                               512));
    }
    benchmark::DoNotOptimize(total.value());
  }
  state.SetItemsProcessed(state.iterations() * 512 * 512);
}
BENCHMARK(BM_ResyncSpan512);

void BM_LikelihoodDeltaAdd(benchmark::State& state) {
  model::ModelState s = microState(256, 30, 11);
  rng::Stream stream(12);
  for (auto _ : state) {
    const model::Circle c{stream.uniform(20, 236), stream.uniform(20, 236),
                          10.0};
    benchmark::DoNotOptimize(s.likelihood().deltaAdd(c));
  }
}
BENCHMARK(BM_LikelihoodDeltaAdd);

void BM_LikelihoodDeltaReplace(benchmark::State& state) {
  model::ModelState s = microState(256, 30, 13);
  rng::Stream stream(14);
  const auto ids = s.config().aliveIds();
  for (auto _ : state) {
    const model::CircleId id = ids[stream.below(ids.size())];
    model::Circle c = s.config().get(id);
    c.x += stream.normal(0, 2.0);
    c.y += stream.normal(0, 2.0);
    benchmark::DoNotOptimize(s.deltaReplace(id, c));
  }
}
BENCHMARK(BM_LikelihoodDeltaReplace);

void BM_FullPosteriorRecompute(benchmark::State& state) {
  model::ModelState s = microState(256, 30, 15);
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.recomputeLogPosterior());
  }
}
BENCHMARK(BM_FullPosteriorRecompute);

void BM_NeighbourQuery(benchmark::State& state) {
  model::ModelState s = microState(512, static_cast<int>(state.range(0)), 17);
  rng::Stream stream(18);
  for (auto _ : state) {
    std::size_t n = 0;
    s.config().forEachNeighbour(stream.uniform(0, 512), stream.uniform(0, 512),
                                24.0,
                                [&](model::CircleId, const model::Circle&) {
                                  ++n;
                                });
    benchmark::DoNotOptimize(n);
  }
}
BENCHMARK(BM_NeighbourQuery)->Arg(50)->Arg(200);

void BM_SequentialIteration(benchmark::State& state) {
  model::ModelState s = microState(384, 40, 19);
  const mcmc::MoveRegistry registry = mcmc::MoveRegistry::caseStudy();
  mcmc::Sampler sampler(s, registry, 20);
  for (auto _ : state) {
    sampler.step();
  }
  state.SetLabel("one RJ-MCMC iteration (tau of §VI)");
}
BENCHMARK(BM_SequentialIteration);

void BM_SubStateBuildMerge(benchmark::State& state) {
  model::ModelState s = microState(512, 60, 21);
  const int half = 256;
  for (auto _ : state) {
    core::SubState sub =
        core::buildSubState(s, partition::IRect{0, 0, half, 512}, 0.0);
    benchmark::DoNotOptimize(core::mergeSubState(s, sub));
  }
  state.SetLabel("split+merge of a 256x512 partition (periodic overhead)");
}
BENCHMARK(BM_SubStateBuildMerge);

void BM_CropTransfer(benchmark::State& state) {
  const img::Scene scene =
      img::generateScene(img::cellScene(512, 512, 60, 10.0, 23));
  model::PixelLikelihood lik(scene.image, model::LikelihoodParams{});
  for (auto _ : state) {
    model::PixelLikelihood crop = lik.crop(0, 0, 256, 512);
    lik.absorbCrop(crop);
    benchmark::DoNotOptimize(lik.coveredGain());
  }
}
BENCHMARK(BM_CropTransfer);

}  // namespace
