// SCHED — predictor-driven scheduling: (A) density-adaptive tiling on a
// dense-corner 512x512 scene, tiles=auto against fixed 1x1/2x2/4x4 grids
// over the local backend (wall clock, slowest tile, predicted bottleneck);
// (B) cost-aware weighted-fair admission, the real DeficitScheduler
// replayed against a FIFO baseline on the same arrival sequence (light
// client p95 queue wait, in virtual seconds of predicted cost). Emits
// BENCH_sched.json (the artifact CI uploads).
//
//   bench_sched [--runs=N] [--seed=N] [--paper-scale] [--out=FILE]
//     --runs=N   repetitions per configuration, best wall kept (default 3)

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "core/runtime_predictor.hpp"
#include "engine/registry.hpp"
#include "serve/fair_queue.hpp"
#include "shard/report.hpp"
#include "shard/tiling.hpp"

using namespace mcmcpar;

namespace {

struct GridResult {
  std::string tiles;  ///< "KxL" or "auto(N)"
  std::size_t tileCount = 0;
  double wallSeconds = 0.0;  ///< best over --runs repetitions
  double maxTileSeconds = 0.0;
  double maxPredictedWorkload = 0.0;  ///< predicted bottleneck (dimensionless)
  std::size_t circles = 0;
  double logPosterior = 0.0;
};

/// p95 of a wait distribution (virtual seconds).
double p95(std::vector<double> waits) {
  if (waits.empty()) return 0.0;
  std::sort(waits.begin(), waits.end());
  const std::size_t index =
      std::min(waits.size() - 1,
               static_cast<std::size_t>(0.95 * static_cast<double>(
                                                   waits.size())));
  return waits[index];
}

}  // namespace

int main(int argc, char** argv) {
  std::string outPath = "BENCH_sched.json";
  std::vector<char*> passthrough = {argv[0]};
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--out=", 6) == 0) {
      outPath = argv[i] + 6;
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  const bench::Options opt = bench::parseOptions(
      static_cast<int>(passthrough.size()), passthrough.data());
  const int runs = opt.runs > 0 ? opt.runs : 3;
  const int size = opt.paperScale ? 1024 : 512;
  const int cells = opt.paperScale ? 96 : 48;
  const std::uint64_t iterations = opt.paperScale ? 200000 : 60000;
  const int halo = 16;
  const double radius = 9.0;
  const unsigned hardware =
      std::max(1u, std::thread::hardware_concurrency());

  // A dense-corner scene: every artifact clustered in the top-left
  // quarter. Area-uniform decompositions put the whole content surcharge
  // on one tile; the adaptive grid must split that corner instead.
  img::SceneSpec sceneSpec;
  sceneSpec.width = size;
  sceneSpec.height = size;
  sceneSpec.radiusMean = radius;
  sceneSpec.radiusStd = 0.8;
  sceneSpec.seed = opt.seed;
  img::ClusterSpec corner;
  corner.x0 = 8.0;
  corner.y0 = 8.0;
  corner.w = size / 2.0 - 16.0;
  corner.h = size / 2.0 - 16.0;
  corner.count = cells;
  sceneSpec.clusters = {corner};
  const img::Scene scene = img::generateScene(sceneSpec);

  engine::Problem problem;
  problem.filtered = &scene.image;
  problem.prior.radiusMean = radius;
  problem.prior.radiusStd = 1.2;
  problem.prior.radiusMin = radius / 2.0;
  problem.prior.radiusMax = radius * 1.8;
  const engine::RunBudget budget{iterations, 0};

  std::printf("SCHED: %dx%d dense-corner image, %d cells, %llu iterations, "
              "halo %d, %u hardware thread(s), best of %d run(s)\n\n",
              size, size, cells,
              static_cast<unsigned long long>(iterations), halo, hardware,
              runs);

  const engine::Engine engine(engine::ExecResources{0, false, opt.seed});
  const shard::DensityMap density = shard::scanDensity(scene.image);
  const double densityWeight = core::defaultCostCalibration().densityWeight;
  const auto maxWorkload = [&](const std::vector<shard::TileRun>& tiles) {
    double worst = 0.0;
    for (const shard::TileRun& tile : tiles) {
      worst = std::max(worst, shard::regionWorkload(density, tile.spec.core,
                                                    densityWeight));
    }
    return worst;
  };

  // -------------------------------------------------------------------
  // Part A: adaptive tiling vs fixed grids, local backend
  // -------------------------------------------------------------------
  // The auto configs cap max-tiles at the matching fixed grid's count so
  // each comparison isolates WHERE the cuts land, not how many there are.
  // Two metrics per grid: the local-backend wall (machine-dependent — on
  // few cores tiles serialise and coordination overhead dominates) and
  // the slowest tile (the parallel wall floor: what a fleet with one
  // worker per tile achieves, which is what the scheduler optimises).
  const std::vector<std::string> tileConfigs = {"1x1", "2x2", "auto-4",
                                                "4x4", "auto-16"};
  std::vector<GridResult> grids;
  for (const std::string& tiles : tileConfigs) {
    std::vector<std::string> options = {"halo=" + std::to_string(halo)};
    if (tiles.rfind("auto-", 0) == 0) {
      options.push_back("tiles=auto");
      options.push_back("max-tiles=" + tiles.substr(5));
    } else {
      options.push_back("tiles=" + tiles);
    }
    engine::RunReport best;
    for (int rep = 0; rep < runs; ++rep) {
      engine::RunReport report =
          engine.run("sharded", problem, budget, {}, options);
      if (rep == 0 || report.wallSeconds < best.wallSeconds) {
        best = std::move(report);
      }
    }
    const auto& extras = std::get<shard::ShardReport>(best.extras);
    GridResult result;
    result.tiles = extras.adaptive
                       ? "auto(" + std::to_string(extras.tiles.size()) + ")"
                       : tiles;
    result.tileCount = extras.tiles.size();
    result.wallSeconds = best.wallSeconds;
    result.maxTileSeconds = extras.maxTileSeconds;
    result.maxPredictedWorkload = maxWorkload(extras.tiles);
    result.circles = best.circles.size();
    result.logPosterior = best.logPosterior;
    grids.push_back(result);
    std::printf("  tiles=%-8s (%2zu tiles)  wall %7.3f s  slowest tile "
                "%6.3f s  bottleneck workload %.3g  %3zu circles  logP %.1f\n",
                result.tiles.c_str(), result.tileCount, result.wallSeconds,
                result.maxTileSeconds, result.maxPredictedWorkload,
                result.circles, result.logPosterior);
  }

  // The headline claim, judged at equal tile count: the adaptive cuts
  // beat the area-uniform grid on the bottleneck tile (the parallel wall
  // floor) — 2x2 vs auto(4) and 4x4 vs auto(16). Raw wall is recorded
  // too but only meaningful with at least one core per tile.
  bool autoBeatsFixed = true;
  for (const auto& [fixedIdx, autoIdx] :
       std::vector<std::pair<std::size_t, std::size_t>>{{1, 2}, {3, 4}}) {
    const GridResult& fixed = grids[fixedIdx];
    const GridResult& adaptive = grids[autoIdx];
    const bool wins = adaptive.maxTileSeconds < fixed.maxTileSeconds;
    autoBeatsFixed = autoBeatsFixed && wins;
    std::printf("\n  %s slowest tile %.3f s vs %s %.3f s -> %s",
                adaptive.tiles.c_str(), adaptive.maxTileSeconds,
                fixed.tiles.c_str(), fixed.maxTileSeconds,
                wins ? "auto wins" : "auto loses");
  }
  std::printf("\n\n");

  // -------------------------------------------------------------------
  // Part B: weighted-fair admission vs FIFO, virtual time replay
  // -------------------------------------------------------------------
  // A heavy client floods 50 jobs of 1.0 s predicted cost, then a light
  // client submits 10 jobs of 0.05 s — all before the (single, virtual)
  // worker starts draining. A job's queue wait is the predicted cost of
  // everything dispatched before it; FIFO replays arrival order, DRR the
  // real scheduler's order.
  constexpr int kHeavyJobs = 50;
  constexpr double kHeavyCost = 1.0;
  constexpr int kLightJobs = 10;
  constexpr double kLightCost = 0.05;
  struct Arrival {
    std::string client;
    std::uint64_t id;
    double cost;
  };
  std::vector<Arrival> arrivals;
  serve::DeficitScheduler scheduler;  // the JobQueue's quantum default
  std::uint64_t nextId = 1;
  for (int i = 0; i < kHeavyJobs; ++i) {
    arrivals.push_back({"heavy", nextId, kHeavyCost});
    scheduler.enqueue("heavy", nextId++, kHeavyCost);
  }
  for (int i = 0; i < kLightJobs; ++i) {
    arrivals.push_back({"light", nextId, kLightCost});
    scheduler.enqueue("light", nextId++, kLightCost);
  }

  std::vector<double> fifoLight;
  std::vector<double> fifoHeavy;
  double clock = 0.0;
  for (const Arrival& a : arrivals) {
    (a.client == "light" ? fifoLight : fifoHeavy).push_back(clock);
    clock += a.cost;
  }
  std::vector<double> drrLight;
  std::vector<double> drrHeavy;
  clock = 0.0;
  while (auto job = scheduler.dispatchNext()) {
    (job->client == "light" ? drrLight : drrHeavy).push_back(clock);
    clock += job->costSeconds;
  }

  const double fifoLightP95 = p95(fifoLight);
  const double drrLightP95 = p95(drrLight);
  const double fifoHeavyP95 = p95(fifoHeavy);
  const double drrHeavyP95 = p95(drrHeavy);
  std::printf("  admission replay (%d heavy x %.2fs, %d light x %.2fs):\n",
              kHeavyJobs, kHeavyCost, kLightJobs, kLightCost);
  std::printf("    light p95 wait  FIFO %7.2f s   DRR %7.2f s  (%.0fx)\n",
              fifoLightP95, drrLightP95,
              drrLightP95 > 0.0 ? fifoLightP95 / drrLightP95 : 0.0);
  std::printf("    heavy p95 wait  FIFO %7.2f s   DRR %7.2f s\n\n",
              fifoHeavyP95, drrHeavyP95);

  std::ofstream out(outPath);
  out << "{\n  \"bench\": \"sched\",\n"
      << "  \"workload\": {\"width\": " << size << ", \"height\": " << size
      << ", \"cells\": " << cells << ", \"iterations\": " << iterations
      << ", \"halo\": " << halo << ", \"runs\": " << runs << "},\n"
      << "  \"hardware_threads\": " << hardware << ",\n"
      << "  \"grids\": [\n";
  for (std::size_t i = 0; i < grids.size(); ++i) {
    const GridResult& r = grids[i];
    out << "    {\"tiles\": \"" << r.tiles
        << "\", \"tile_count\": " << r.tileCount
        << ", \"wall_seconds\": " << r.wallSeconds
        << ", \"max_tile_seconds\": " << r.maxTileSeconds
        << ", \"max_predicted_workload\": " << r.maxPredictedWorkload
        << ", \"circles\": " << r.circles
        << ", \"log_posterior\": " << r.logPosterior << "}"
        << (i + 1 < grids.size() ? ",\n" : "\n");
  }
  out << "  ],\n"
      << "  \"auto_beats_fixed_at_equal_tiles\": "
      << (autoBeatsFixed ? "true" : "false")
      << ",\n  \"admission\": {\"heavy_jobs\": " << kHeavyJobs
      << ", \"heavy_cost_seconds\": " << kHeavyCost
      << ", \"light_jobs\": " << kLightJobs
      << ", \"light_cost_seconds\": " << kLightCost
      << ", \"fifo_light_p95_seconds\": " << fifoLightP95
      << ", \"drr_light_p95_seconds\": " << drrLightP95
      << ", \"fifo_heavy_p95_seconds\": " << fifoHeavyP95
      << ", \"drr_heavy_p95_seconds\": " << drrHeavyP95 << "}\n}\n";
  out.flush();
  std::printf("  wrote %s\n", outPath.c_str());
  return 0;
}
