// SEC7 — reproduce §VII's architecture comparison: runtime reduction of
// periodic partitioning at the sweet-spot phase length on three machines:
//
//   paper: Pentium-D (dual-core)      -38%
//          Q6600 (2x dual-core dies)  -29%
//          dual-socket Xeon           -23%
//
// The three hosts are modelled as virtual presets (thread count + relative
// split/merge communication cost); per-move costs are measured live.

#include <iostream>

#include "analysis/table_writer.hpp"
#include "bench_common.hpp"
#include "core/periodic_sampler.hpp"
#include "core/virtual_executor.hpp"
#include "mcmc/sampler.hpp"
#include "par/virtual_clock.hpp"

using namespace mcmcpar;

int main(int argc, char** argv) {
  const bench::Options opt = bench::parseOptions(argc, argv);
  const bench::CellWorkload w = bench::makeCellWorkload(opt);
  const mcmc::MoveRegistry registry = mcmc::MoveRegistry::caseStudy();

  std::printf("SEC7: periodic partitioning on virtual architecture presets\n\n");

  double seqSeconds;
  {
    model::ModelState state = bench::makeState(w, opt.seed + 1);
    mcmc::Sampler sampler(state, registry, opt.seed + 2);
    const par::WallTimer timer;
    sampler.run(w.iterations);
    seqSeconds = timer.seconds();
  }
  std::printf("sequential baseline: %.3f s\n\n", seqSeconds);

  const double paperReduction[] = {38.0, 29.0, 23.0};  // matches preset order
  analysis::Table table({"architecture", "threads", "virtual (s)",
                         "reduction %", "paper %"});
  const auto presets = core::paperArchitectures();
  for (std::size_t i = 0; i < presets.size(); ++i) {
    const auto& preset = presets[i];
    model::ModelState state = bench::makeState(w, opt.seed + 1);
    core::PeriodicParams params;
    params.totalIterations = w.iterations;
    // The paper's sweet spot is "~20 ms per global phase" (z = 130 at their
    // tau of 4e-5 s). Our tau is ~10x smaller, so the same *time* per phase
    // needs a larger z; bench_fig2's sweep locates the plateau at z ~ 1040
    // for the reduced workload.
    params.globalPhaseIterations = opt.paperScale ? 130 : 1040;
    params.executor = core::LocalExecutor::SplitMergeSerial;
    params.virtualThreads = preset.threads;
    core::PeriodicSampler sampler(state, registry, params, opt.seed + 3);
    const core::PeriodicReport report = sampler.run();
    const double adjusted =
        core::adjustedVirtualSeconds(report, preset.overheadScale);
    table.addRow({preset.name, analysis::Table::integer(preset.threads),
                  analysis::Table::num(adjusted, 3),
                  analysis::Table::num(core::reductionPercent(seqSeconds, adjusted), 1),
                  analysis::Table::num(paperReduction[i], 0)});
  }
  table.print(std::cout);
  std::printf(
      "\nshape to check: every architecture beats sequential; cheap same-die\n"
      "communication (pentium-d-like) wins relative to its thread count,\n"
      "expensive cross-package communication (xeon-smp-like) trails.\n"
      "note: the paper's 4-core Q6600 lands *between* the two dual-cores\n"
      "because its 4 unequal cross partitions never utilise 4 cores fully.\n");
  return 0;
}
