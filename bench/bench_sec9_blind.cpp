// SEC9 — reproduce the §IX blind-partitioning experiment on the beads
// image: split into four equal areas, expand each by 1.1x the expected
// radius, run MCMC per partition, merge with the fig. 4 heuristics.
//
// Paper numbers: corner relative runtimes 0.12 / 0.08 / 0.27 / 0.11;
// total (4 processors) ~27% of the whole-image runtime ("reduced to 27% of
// the original"), with no apparent partitioning anomalies.
//
// The blind pipeline runs through the engine façade ("blind" + key=value
// options); the whole-image reference stays on core::runWholeImage, the
// Table I "whole" column primitive.

#include <algorithm>
#include <iostream>

#include "analysis/anomaly.hpp"
#include "analysis/metrics.hpp"
#include "analysis/stats.hpp"
#include "analysis/table_writer.hpp"
#include "bench_common.hpp"
#include "core/pipeline.hpp"
#include "engine/registry.hpp"

using namespace mcmcpar;

int main(int argc, char** argv) {
  const bench::Options opt = bench::parseOptions(argc, argv);
  const int runs = opt.runs > 0 ? opt.runs : 5;

  const img::Scene scene = img::generateScene(img::beadsScene(opt.seed + 60));
  std::printf("SEC9: blind partitioning (2x2 + 1.1r overlap) on the beads "
              "scene, %d runs\n\n", runs);

  engine::Problem problem;
  problem.filtered = &scene.image;
  problem.prior.radiusMean = 8.0;
  problem.prior.radiusStd = 0.6;
  problem.prior.radiusMin = 4.0;
  problem.prior.radiusMax = 13.0;

  // The same model for the whole-image reference runs.
  core::PipelineParams params;
  params.prior = problem.prior;
  params.iterationsBase = 2000;
  params.iterationsPerCircle = 600;

  // §IX expands each partition by 1.1x the expected radius.
  const std::vector<std::string> blindOptions = {
      "grid-x=2", "grid-y=2",
      "overlap=" + std::to_string(1.1 * problem.prior.radiusMean),
      "merge-radius=5", "iters-base=2000", "iters-per-circle=600"};

  std::vector<model::Circle> truth;
  for (const auto& t : scene.truth) truth.push_back({t.x, t.y, t.r});

  analysis::RunningStat wholeRuntime;
  std::vector<analysis::RunningStat> corner(4);
  analysis::RunningStat totalRelative, f1, duplicates;
  partition::BlindMergeStats lastStats;

  for (int run = 0; run < runs; ++run) {
    const std::uint64_t seed = opt.seed + 977 * (run + 1);
    params.seed = seed;
    const core::PartitionRun whole = core::runWholeImage(scene.image, params);

    const engine::Engine eng(engine::ExecResources{1, false, seed});
    // iterations=0: no per-partition cap — budgets come from the options.
    const engine::RunReport result = eng.run(
        "blind", problem, engine::RunBudget{0, 0}, {}, blindOptions);
    const auto& report = std::get<core::PipelineReport>(result.extras);

    wholeRuntime.push(whole.runtimeToConverge);
    double longest = 0.0;
    for (std::size_t i = 0; i < report.partitions.size() && i < 4; ++i) {
      corner[i].push(report.partitions[i].runtimeToConverge /
                     std::max(whole.runtimeToConverge, 1e-12));
      longest = std::max(longest, report.partitions[i].runtimeToConverge);
    }
    totalRelative.push(longest / std::max(whole.runtimeToConverge, 1e-12));
    f1.push(analysis::scoreCircles(result.circles, truth, 6.0).f1);

    // Anomaly audit along the blind cut lines.
    const auto audit = analysis::auditBoundaryAnomalies(
        result.circles, truth, {scene.image.width() / 2.0},
        {scene.image.height() / 2.0}, 6.0, 12.0, 5.0);
    duplicates.push(static_cast<double>(audit.duplicatePairsNearBoundary));
    lastStats = report.mergeStats;
  }

  analysis::Table table({"quantity", "measured", "paper"});
  const char* corners[4] = {"top-left rel runtime", "top-right rel runtime",
                            "bottom-left rel runtime",
                            "bottom-right rel runtime"};
  const double paperCorner[4] = {0.12, 0.08, 0.27, 0.11};
  for (int i = 0; i < 4; ++i) {
    table.addRow({corners[i], analysis::Table::num(corner[i].mean(), 3),
                  analysis::Table::num(paperCorner[i], 2)});
  }
  table.addRow({"total rel runtime (4 cpus)",
                analysis::Table::num(totalRelative.mean(), 3), "0.27"});
  table.addRow({"boundary duplicate pairs",
                analysis::Table::num(duplicates.mean(), 2), "0 (none seen)"});
  table.addRow({"merged F1 vs truth", analysis::Table::num(f1.mean(), 3),
                "- (no truth)"});
  table.print(std::cout);

  std::printf("\nmerge heuristics on the last run: %zu auto-accepted, "
              "%zu merged pairs, %zu disputed accepted, %zu dropped\n",
              lastStats.autoAccepted, lastStats.mergedPairs,
              lastStats.disputedAccepted, lastStats.droppedOutsideCore);
  std::printf(
      "shape to check: every corner is far below the whole-image runtime\n"
      "(smaller statespace + fewer artifacts per partition); the whole\n"
      "procedure costs roughly the slowest corner, well under half the\n"
      "sequential cost, and clearly better than intelligent partitioning's\n"
      "0.90 on this dataset (the paper's §IX conclusion).\n");
  return 0;
}
