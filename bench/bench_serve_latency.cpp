// SERVE — measure what the persistent front-end buys over one-shot
// execution: per-request latency against a warm serve::Server (resident
// PoolBudget, cached image decode) versus cold-start baselines that pay
// the full setup per request — a fresh mcmcpar_run process when the binary
// is reachable, and an in-process image-reload + engine rebuild otherwise.
// Also drives a concurrent burst through the server for sustained
// throughput. Emits BENCH_serve.json (the artifact CI uploads).
//
//   bench_serve_latency [--runs=N] [--seed=N] [--paper-scale]
//                       [--out=FILE] [--run-bin=PATH]
//     --runs=N       sequential requests per mode (default 12; paper 24)
//     --out=FILE     JSON output path (default BENCH_serve.json)
//     --run-bin=PATH mcmcpar_run binary for the fresh-process baseline
//                    (default ./tools/mcmcpar_run, skipped if absent)

#include <algorithm>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "engine/engine.hpp"
#include "engine/registry.hpp"
#include "img/pnm_io.hpp"
#include "par/virtual_clock.hpp"
#include "serve/server.hpp"

using namespace mcmcpar;
namespace fs = std::filesystem;

namespace {

double percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const auto rank = static_cast<std::size_t>(
      std::max(1.0, std::ceil(p * static_cast<double>(values.size()))));
  return values[std::min(rank, values.size()) - 1];
}

void printMode(const char* name, const std::vector<double>& latencies) {
  std::printf("  %-14s %3zu requests: p50 %7.3f ms, p95 %7.3f ms\n", name,
              latencies.size(), 1e3 * percentile(latencies, 0.50),
              1e3 * percentile(latencies, 0.95));
}

void jsonMode(std::ostream& out, const char* name,
              const std::vector<double>& latencies, bool last) {
  out << "    \"" << name << "\": {\"requests\": " << latencies.size()
      << ", \"p50_seconds\": " << percentile(latencies, 0.50)
      << ", \"p95_seconds\": " << percentile(latencies, 0.95) << "}"
      << (last ? "\n" : ",\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::string outPath = "BENCH_serve.json";
  std::string runBin = "./tools/mcmcpar_run";
  std::vector<char*> passthrough = {argv[0]};
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--out=", 6) == 0) {
      outPath = argv[i] + 6;
    } else if (std::strncmp(argv[i], "--run-bin=", 10) == 0) {
      runBin = argv[i] + 10;
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  const bench::Options opt = bench::parseOptions(
      static_cast<int>(passthrough.size()), passthrough.data());
  const int requests = opt.runs > 0 ? opt.runs : (opt.paperScale ? 24 : 12);
  const int size = opt.paperScale ? 384 : 160;
  const int cells = opt.paperScale ? 40 : 8;
  const std::uint64_t iterations = opt.paperScale ? 20000 : 4000;

  // The workload image, written to disk so every mode pays (or amortises)
  // the same PGM decode.
  const fs::path imagePath =
      fs::temp_directory_path() /
      ("bench_serve_" + std::to_string(opt.seed) + ".pgm");
  {
    const img::Scene scene = img::generateScene(
        img::cellScene(size, size, cells, 10.0, opt.seed));
    img::writePgm(img::toU8(scene.image), imagePath.string());
  }
  const std::string jobLine = imagePath.string() + " serial @iters=" +
                              std::to_string(iterations);

  std::printf("SERVE: %d sequential requests/mode, %llu iters each, "
              "%dx%d image\n\n",
              requests, static_cast<unsigned long long>(iterations), size,
              size);

  // --- warm: one persistent server, cache primed by a warm-up request ----
  serve::ServerOptions serverOptions;
  serverOptions.seed = opt.seed;
  serverOptions.radius = 10.0;
  serverOptions.defaultBudget = engine::RunBudget{iterations, 0};
  serve::Server server(serverOptions);

  // Event-driven completion (no status polling), so the measured latency
  // is the server's, not the poll interval's.
  std::mutex doneMutex;
  std::condition_variable doneReady;
  std::set<std::uint64_t> terminalIds;
  const std::uint64_t token =
      server.subscribe([&](const serve::JobEvent& event) {
        if (event.type == serve::JobEvent::Type::Done ||
            event.type == serve::JobEvent::Type::Failed ||
            event.type == serve::JobEvent::Type::Cancelled) {
          {
            const std::scoped_lock lock(doneMutex);
            terminalIds.insert(event.id);
          }
          doneReady.notify_all();
        }
      });
  const auto awaitJob = [&](std::uint64_t id) {
    std::unique_lock lock(doneMutex);
    doneReady.wait(lock, [&] { return terminalIds.count(id) != 0; });
  };
  const auto runOnServer = [&](const std::string& line) {
    const std::uint64_t id = server.submitLine(line);
    awaitJob(id);
    const auto status = server.status(id);
    return status && status->state == serve::JobState::Done;
  };
  (void)runOnServer(jobLine);  // warm-up: decode into the cache

  std::vector<double> warm;
  bool allOk = true;
  for (int i = 0; i < requests; ++i) {
    const par::WallTimer timer;
    allOk &= runOnServer(jobLine);
    warm.push_back(timer.seconds());
  }
  printMode("warm-server", warm);

  // --- warm burst: concurrent submissions for sustained throughput -------
  const int burst = requests * 2;
  std::vector<std::uint64_t> burstIds;
  const par::WallTimer burstTimer;
  for (int i = 0; i < burst; ++i) {
    burstIds.push_back(server.submitLine(jobLine));
  }
  for (const std::uint64_t id : burstIds) awaitJob(id);
  const double burstSeconds = burstTimer.seconds();
  server.unsubscribe(token);
  const double sustained =
      burstSeconds > 0.0 ? static_cast<double>(burst) / burstSeconds : 0.0;
  std::printf("  %-14s %3d requests in %.3f s: %.2f jobs/s sustained\n",
              "warm-burst", burst, burstSeconds, sustained);

  // --- cold in-process: re-read the image and rebuild per request --------
  std::vector<double> coldReload;
  for (int i = 0; i < requests; ++i) {
    const par::WallTimer timer;
    const img::ImageF image = img::toF(img::readPgm(imagePath.string()));
    engine::Problem problem;
    problem.filtered = &image;
    problem.prior.radiusMean = 10.0;
    problem.prior.radiusStd = 10.0 / 8.0;
    problem.prior.radiusMin = 5.0;
    problem.prior.radiusMax = 18.0;
    const engine::Engine engine(
        engine::ExecResources{0, false, opt.seed + static_cast<unsigned>(i)});
    const engine::RunReport report = engine.run(
        "serial", problem, engine::RunBudget{iterations, 0});
    allOk &= !report.cancelled;
    coldReload.push_back(timer.seconds());
  }
  printMode("cold-reload", coldReload);

  // --- cold process: a fresh mcmcpar_run per request ---------------------
  std::vector<double> coldProcess;
  if (fs::exists(runBin)) {
    const std::string command = runBin + " --image " + imagePath.string() +
                                " --strategy serial --iterations " +
                                std::to_string(iterations) +
                                " > /dev/null 2>&1";
    for (int i = 0; i < requests; ++i) {
      const par::WallTimer timer;
      if (std::system(command.c_str()) != 0) {
        allOk = false;
        break;
      }
      coldProcess.push_back(timer.seconds());
    }
    printMode("cold-process", coldProcess);
  } else {
    std::printf("  %-14s skipped (%s not found)\n", "cold-process",
                runBin.c_str());
  }

  const serve::ServerStats stats = server.stats();
  std::printf("\ncache: %llu hit(s), %llu miss(es) across %llu jobs\n",
              static_cast<unsigned long long>(stats.cache.hits),
              static_cast<unsigned long long>(stats.cache.misses),
              static_cast<unsigned long long>(stats.jobs.submitted));

  const double warmP50 = percentile(warm, 0.50);
  const double coldP50 = percentile(
      coldProcess.empty() ? coldReload : coldProcess, 0.50);
  std::printf("warm p50 %.3f ms vs cold-start p50 %.3f ms: %s\n",
              1e3 * warmP50, 1e3 * coldP50,
              warmP50 < coldP50 ? "warm wins" : "WARM DID NOT WIN");

  std::ofstream out(outPath);
  out << "{\n"
      << "  \"bench\": \"serve_latency\",\n"
      << "  \"iterations_per_request\": " << iterations << ",\n"
      << "  \"image\": \"" << size << "x" << size << "\",\n"
      << "  \"modes\": {\n";
  jsonMode(out, "warm_server", warm, false);
  jsonMode(out, "cold_reload", coldReload, coldProcess.empty());
  if (!coldProcess.empty()) jsonMode(out, "cold_process", coldProcess, true);
  out << "  },\n"
      << "  \"sustained_jobs_per_second\": " << sustained << ",\n"
      << "  \"burst_requests\": " << burst << ",\n"
      << "  \"cache_hits\": " << stats.cache.hits << ",\n"
      << "  \"cache_misses\": " << stats.cache.misses << ",\n"
      << "  \"warm_beats_cold_start\": "
      << (warmP50 < coldP50 ? "true" : "false") << "\n"
      << "}\n";
  std::printf("wrote %s\n", outPath.c_str());

  std::error_code ec;
  fs::remove(imagePath, ec);
  return allOk ? 0 : 1;
}
