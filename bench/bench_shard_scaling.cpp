// SHARD — scaling of the sharded-execution subsystem: one 512x512 synthetic
// image run through the "sharded" coordinator at 1x1 / 2x2 / 3x3 tiles over
// both backends (local BatchRunner fan-out and socket fan-out against an
// in-process mcmcpar_serve core), against an unsharded serial reference.
// Records wall clock, per-backend speedup over the single-tile baseline and
// stitched-model equivalence (circle match vs the serial run). Emits
// BENCH_shard.json (the artifact CI uploads).
//
//   bench_shard_scaling [--runs=N] [--seed=N] [--paper-scale] [--out=FILE]
//     --runs=N   repetitions per configuration, best wall kept (default 3)

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "analysis/matching.hpp"
#include "bench_common.hpp"
#include "engine/registry.hpp"
#include "serve/server.hpp"
#include "serve/socket.hpp"
#include "shard/report.hpp"

using namespace mcmcpar;

namespace {

struct ConfigResult {
  std::string backend;
  int gx = 1;
  int gy = 1;
  double wallSeconds = 0.0;  ///< best over --runs repetitions
  double maxTileSeconds = 0.0;
  double sumTileSeconds = 0.0;
  std::uint64_t iterations = 0;
  std::size_t circles = 0;
  double logPosterior = 0.0;
  std::size_t matchedVsSerial = 0;
  std::size_t extraVsSerial = 0;   ///< sharded circles the serial run lacks
  std::size_t missedVsSerial = 0;  ///< serial circles the shard missed
};

void printResult(const ConfigResult& r, double baselineWall) {
  std::printf(
      "  %-6s %dx%d  wall %7.3f s  (%.2fx vs 1x1)  slowest tile %6.3f s  "
      "%3zu circles  logP %.1f  match %zu/+%zu/-%zu\n",
      r.backend.c_str(), r.gx, r.gy, r.wallSeconds,
      r.wallSeconds > 0.0 ? baselineWall / r.wallSeconds : 0.0,
      r.maxTileSeconds, r.circles, r.logPosterior, r.matchedVsSerial,
      r.extraVsSerial, r.missedVsSerial);
}

}  // namespace

int main(int argc, char** argv) {
  std::string outPath = "BENCH_shard.json";
  std::vector<char*> passthrough = {argv[0]};
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--out=", 6) == 0) {
      outPath = argv[i] + 6;
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  const bench::Options opt = bench::parseOptions(
      static_cast<int>(passthrough.size()), passthrough.data());
  const int runs = opt.runs > 0 ? opt.runs : 3;
  const int size = opt.paperScale ? 1024 : 512;
  const int cells = opt.paperScale ? 150 : 48;
  const std::uint64_t iterations = opt.paperScale ? 200000 : 60000;
  const int halo = 16;
  const double radius = 9.0;
  const unsigned hardware =
      std::max(1u, std::thread::hardware_concurrency());

  img::SceneSpec sceneSpec =
      img::cellScene(size, size, cells, radius, opt.seed);
  sceneSpec.radiusStd = 0.8;
  const img::Scene scene = img::generateScene(sceneSpec);

  engine::Problem problem;
  problem.filtered = &scene.image;
  problem.prior.radiusMean = radius;
  problem.prior.radiusStd = 1.2;
  problem.prior.radiusMin = radius / 2.0;
  problem.prior.radiusMax = radius * 1.8;
  const engine::RunBudget budget{iterations, 0};

  std::printf("SHARD: %dx%d image, %d cells, %llu iterations, halo %d, "
              "%u hardware thread(s), best of %d run(s)\n\n",
              size, size, cells,
              static_cast<unsigned long long>(iterations), halo, hardware,
              runs);

  const engine::Engine engine(engine::ExecResources{0, false, opt.seed});

  // Unsharded serial reference: the equivalence anchor.
  engine::RunReport serial;
  double serialWall = 0.0;
  for (int rep = 0; rep < runs; ++rep) {
    engine::RunReport report = engine.run("serial", problem, budget);
    if (rep == 0 || report.wallSeconds < serialWall) {
      serialWall = report.wallSeconds;
      serial = std::move(report);
    }
  }
  std::printf("  serial      wall %7.3f s  %3zu circles  logP %.1f\n",
              serialWall, serial.circles.size(), serial.logPosterior);

  // The socket backend fans out against this in-process serving core.
  serve::ServerOptions serverOptions;
  serverOptions.seed = opt.seed;
  serverOptions.radius = radius;
  serve::Server server(serverOptions);
  serve::SocketFrontend frontend(server, /*port=*/0);
  const std::string endpoints =
      "endpoints=127.0.0.1:" + std::to_string(frontend.port());

  const int grids[] = {1, 2, 3};
  std::vector<ConfigResult> results;
  for (const char* backend : {"local", "socket"}) {
    for (const int g : grids) {
      ConfigResult result;
      result.backend = backend;
      result.gx = g;
      result.gy = g;
      std::vector<std::string> options = {
          "tiles=" + std::to_string(g) + "x" + std::to_string(g),
          "halo=" + std::to_string(halo),
          "backend=" + std::string(backend)};
      if (std::strcmp(backend, "socket") == 0) options.push_back(endpoints);

      engine::RunReport best;
      for (int rep = 0; rep < runs; ++rep) {
        engine::RunReport report =
            engine.run("sharded", problem, budget, {}, options);
        if (rep == 0 || report.wallSeconds < best.wallSeconds) {
          best = std::move(report);
        }
      }
      result.wallSeconds = best.wallSeconds;
      result.iterations = best.iterations;
      result.circles = best.circles.size();
      result.logPosterior = best.logPosterior;
      const auto& extras = std::get<shard::ShardReport>(best.extras);
      result.maxTileSeconds = extras.maxTileSeconds;
      result.sumTileSeconds = extras.sumTileSeconds;
      const analysis::MatchResult match =
          analysis::matchCircles(best.circles, serial.circles, radius);
      result.matchedVsSerial = match.matches.size();
      result.extraVsSerial = match.unmatchedFound.size();
      result.missedVsSerial = match.unmatchedTruth.size();
      results.push_back(result);
    }
  }

  frontend.stop();
  server.shutdown(10.0);

  // Per-backend speedups against that backend's own 1x1 baseline; the
  // headline claim is >= 1 multi-tile configuration beating single-tile.
  bool multiTileFaster = false;
  for (const ConfigResult& r : results) {
    double baseline = r.wallSeconds;
    for (const ConfigResult& b : results) {
      if (b.backend == r.backend && b.gx == 1 && b.gy == 1) {
        baseline = b.wallSeconds;
      }
    }
    printResult(r, baseline);
    if (r.gx * r.gy > 1 && r.wallSeconds < baseline) multiTileFaster = true;
  }
  std::printf("\n  multi-tile faster than single-tile: %s\n",
              multiTileFaster ? "yes" : "no");

  std::ofstream out(outPath);
  out << "{\n  \"bench\": \"shard_scaling\",\n"
      << "  \"workload\": {\"width\": " << size << ", \"height\": " << size
      << ", \"cells\": " << cells << ", \"iterations\": " << iterations
      << ", \"halo\": " << halo << ", \"runs\": " << runs << "},\n"
      << "  \"hardware_threads\": " << hardware << ",\n"
      << "  \"serial\": {\"wall_seconds\": " << serialWall
      << ", \"circles\": " << serial.circles.size()
      << ", \"log_posterior\": " << serial.logPosterior << "},\n"
      << "  \"configs\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const ConfigResult& r = results[i];
    double baseline = r.wallSeconds;
    for (const ConfigResult& b : results) {
      if (b.backend == r.backend && b.gx == 1 && b.gy == 1) {
        baseline = b.wallSeconds;
      }
    }
    out << "    {\"backend\": \"" << r.backend << "\", \"tiles\": \"" << r.gx
        << "x" << r.gy << "\", \"wall_seconds\": " << r.wallSeconds
        << ", \"speedup_vs_single_tile\": "
        << (r.wallSeconds > 0.0 ? baseline / r.wallSeconds : 0.0)
        << ", \"max_tile_seconds\": " << r.maxTileSeconds
        << ", \"sum_tile_seconds\": " << r.sumTileSeconds
        << ", \"iterations\": " << r.iterations
        << ", \"circles\": " << r.circles
        << ", \"log_posterior\": " << r.logPosterior
        << ", \"matched_vs_serial\": " << r.matchedVsSerial
        << ", \"extra_vs_serial\": " << r.extraVsSerial
        << ", \"missed_vs_serial\": " << r.missedVsSerial << "}"
        << (i + 1 < results.size() ? ",\n" : "\n");
  }
  out << "  ],\n  \"multi_tile_faster_than_single\": "
      << (multiTileFaster ? "true" : "false") << "\n}\n";
  out.flush();
  std::printf("  wrote %s\n", outPath.c_str());
  return 0;
}
