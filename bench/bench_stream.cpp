// STREAM — measure what warm-starting buys on a frame sequence: for each
// frame of a synthetic drifting-circles time-lapse, the iterations needed
// to reach the detection band when the chain starts from the previous
// frame's configuration vs. from scratch, plus the per-frame latency of
// the streamed workload through stream::SequenceRunner.
// Emits BENCH_stream.json (the artifact CI uploads).
//
//   bench_stream [--runs=N] [--seed=N] [--paper-scale] [--out=FILE]
//     --runs=N   frames in the sequence (default 8; paper 16)
//     --out=FILE JSON output path (default BENCH_stream.json)

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "analysis/metrics.hpp"
#include "bench_common.hpp"
#include "engine/registry.hpp"
#include "par/virtual_clock.hpp"
#include "stream/sequence.hpp"

using namespace mcmcpar;

namespace {

double median(std::vector<double> values) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const std::size_t mid = values.size() / 2;
  return values.size() % 2 != 0 ? values[mid]
                                : 0.5 * (values[mid - 1] + values[mid]);
}

std::vector<model::Circle> toCircles(const std::vector<img::SceneCircle>& in) {
  std::vector<model::Circle> out;
  out.reserve(in.size());
  for (const img::SceneCircle& c : in) out.push_back({c.x, c.y, c.r});
  return out;
}

/// The detection band: every truth circle matched within 3 px and at most
/// one spurious detection (same bar as tests/test_stream.cpp).
bool inBand(const std::vector<model::Circle>& found,
            const std::vector<model::Circle>& truth) {
  const analysis::QualityMetrics score =
      analysis::scoreCircles(found, truth, 3.0);
  return score.falseNegatives == 0 && score.falsePositives <= 1;
}

constexpr std::uint64_t kLadder[] = {125,  250,  500,  1000,
                                     2000, 4000, 8000, 16000};
constexpr std::uint64_t kBandMiss = 32000;

/// Smallest ladder budget whose run lands in the band (kBandMiss if none).
std::uint64_t iterationsToBand(const engine::Engine& eng,
                               const engine::Problem& problem,
                               const std::vector<model::Circle>& truth) {
  for (const std::uint64_t budget : kLadder) {
    const engine::RunReport report =
        eng.run("serial", problem, engine::RunBudget{budget, 0}, {}, {});
    if (inBand(report.circles, truth)) return budget;
  }
  return kBandMiss;
}

}  // namespace

int main(int argc, char** argv) {
  std::string outPath = "BENCH_stream.json";
  std::vector<char*> passthrough = {argv[0]};
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--out=", 6) == 0) {
      outPath = argv[i] + 6;
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  const bench::Options opt = bench::parseOptions(
      static_cast<int>(passthrough.size()), passthrough.data());
  const int frames = opt.runs > 0 ? opt.runs : (opt.paperScale ? 16 : 8);
  const int size = opt.paperScale ? 256 : 160;
  const int cells = opt.paperScale ? 15 : 10;
  const double radius = 9.0;

  img::DriftSpec drift;
  drift.scene = img::cellScene(size, size, cells, radius, opt.seed);
  drift.frames = frames;
  const std::vector<img::Scene> scenes = img::generateDriftingSequence(drift);

  std::printf("STREAM: %d drifting frames, %dx%d, %d cells\n\n", frames, size,
              size, cells);

  engine::ExecResources resources;
  resources.threads = 1;
  resources.seed = opt.seed;
  const engine::Engine eng(resources);

  engine::Problem problem;
  problem.prior.radiusMean = radius;
  problem.prior.radiusStd = radius / 8.0;
  problem.prior.radiusMin = radius / 2.0;
  problem.prior.radiusMax = radius * 1.8;

  // --- warm vs cold iterations-to-band, frame by frame -------------------
  // Frame k's warm start is the converged configuration of frame k-1, the
  // same hand-off SequenceRunner performs.
  bool allOk = true;
  problem.filtered = &scenes[0].image;
  engine::RunReport previous =
      eng.run("serial", problem, engine::RunBudget{12000, 0}, {}, {});
  allOk &= inBand(previous.circles, toCircles(scenes[0].truth));

  std::vector<std::uint64_t> coldIters, warmIters;
  for (int k = 1; k < frames; ++k) {
    const std::vector<model::Circle> truth = toCircles(scenes[k].truth);
    problem.filtered = &scenes[k].image;

    problem.warmStart.clear();
    coldIters.push_back(iterationsToBand(eng, problem, truth));

    problem.warmStart = previous.circles;
    problem.warmFreshFraction = 0.25;
    warmIters.push_back(iterationsToBand(eng, problem, truth));
    allOk &= warmIters.back() < kBandMiss;

    // Converge this frame warm-started so frame k+1 hands off from it.
    previous = eng.run("serial", problem, engine::RunBudget{12000, 0}, {}, {});
    problem.warmStart.clear();

    std::printf("  frame %2d: cold %6llu iters, warm %6llu iters\n", k,
                static_cast<unsigned long long>(coldIters.back()),
                static_cast<unsigned long long>(warmIters.back()));
  }

  std::vector<double> coldD(coldIters.begin(), coldIters.end());
  std::vector<double> warmD(warmIters.begin(), warmIters.end());
  const double coldMedian = median(coldD);
  const double warmMedian = median(warmD);
  const double ratio = coldMedian > 0.0 ? warmMedian / coldMedian : 0.0;
  std::printf("\nmedian iterations-to-band: cold %.0f, warm %.0f "
              "(warm/cold %.2f)\n",
              coldMedian, warmMedian, ratio);

  // --- streamed per-frame latency through SequenceRunner ------------------
  stream::SequenceSpec spec;
  for (std::size_t k = 0; k < scenes.size(); ++k) {
    spec.frames.push_back(
        {std::make_shared<img::ImageF>(scenes[k].image),
         "synth." + std::to_string(k)});
  }
  spec.problem = problem;
  spec.problem.filtered = spec.frames.front().image.get();
  spec.budget = engine::RunBudget{2000, 0};

  spec.warmStart = true;
  const engine::RunReport warmRun =
      stream::SequenceRunner().run(spec, resources);
  spec.warmStart = false;
  const engine::RunReport coldRun =
      stream::SequenceRunner().run(spec, resources);

  const auto* warmExtras = std::get_if<stream::StreamReport>(&warmRun.extras);
  const auto* coldExtras = std::get_if<stream::StreamReport>(&coldRun.extras);
  allOk &= warmExtras != nullptr && coldExtras != nullptr &&
           !warmRun.cancelled && !coldRun.cancelled;
  const double warmP50 = warmExtras != nullptr ? warmExtras->p50FrameSeconds : 0.0;
  const double coldP50 = coldExtras != nullptr ? coldExtras->p50FrameSeconds : 0.0;
  const std::size_t tracks =
      warmExtras != nullptr ? warmExtras->tracks.size() : 0;
  std::printf("streamed run (2000 iters/frame): p50 frame %.3f ms warm, "
              "%.3f ms cold, %zu track(s)\n",
              1e3 * warmP50, 1e3 * coldP50, tracks);

  std::ofstream out(outPath);
  out << "{\n"
      << "  \"bench\": \"stream\",\n"
      << "  \"frames\": " << frames << ",\n"
      << "  \"image\": \"" << size << "x" << size << "\",\n"
      << "  \"cells\": " << cells << ",\n"
      << "  \"cold_iterations_to_band\": [";
  for (std::size_t i = 0; i < coldIters.size(); ++i) {
    out << (i != 0 ? ", " : "") << coldIters[i];
  }
  out << "],\n  \"warm_iterations_to_band\": [";
  for (std::size_t i = 0; i < warmIters.size(); ++i) {
    out << (i != 0 ? ", " : "") << warmIters[i];
  }
  out << "],\n"
      << "  \"cold_median_iterations\": " << coldMedian << ",\n"
      << "  \"warm_median_iterations\": " << warmMedian << ",\n"
      << "  \"warm_over_cold_ratio\": " << ratio << ",\n"
      << "  \"p50_frame_seconds_warm\": " << warmP50 << ",\n"
      << "  \"p50_frame_seconds_cold\": " << coldP50 << ",\n"
      << "  \"tracks\": " << tracks << ",\n"
      << "  \"all_in_band\": " << (allOk ? "true" : "false") << "\n"
      << "}\n";
  std::printf("wrote %s\n", outPath.c_str());
  return allOk ? 0 : 1;
}
