// TAB1 — reproduce Table I: intelligent partitioning of the beads image.
//
// Paper rows (whole image | partitions A, B, C):
//   area (px^2)        2.13e5 | 3.14e4  1.33e5  4.82e4
//   relative area      1      | 0.147   0.624   0.226
//   # obj (visual)     48     | 6       38      4
//   # obj (density)    -      | 7.08    29.97   10.86
//   # obj (threshold)  46     | 4.9     38      3.1
//   time/iteration     4e-5   | 1.9e-5  4.3e-5  2.0e-5
//   # itr to converge  27000  | 4000    22500   900
//   runtime (s)        1.08   | 0.08    0.97    0.02
//   relative runtime   1      | 0.07    0.90    0.02
//
// Values are averaged over --runs (default 5; paper used 20). Absolute
// timings differ from 2010 hardware; the rows to compare are the relative
// ones: area shares, count estimates, and the runtime *ratios* (the B strip
// dominating, A and C nearly free, overall ~0.90 of the whole image).

#include <algorithm>
#include <iostream>

#include "analysis/stats.hpp"
#include "analysis/table_writer.hpp"
#include "bench_common.hpp"
#include "core/pipeline.hpp"
#include "partition/prior_estimation.hpp"

using namespace mcmcpar;

namespace {

struct Row {
  partition::IRect rect;
  int visual = 0;
  double density = 0.0;
  double threshold = 0.0;
  analysis::RunningStat timePerIter;
  analysis::RunningStat itersToConverge;
  analysis::RunningStat runtime;
};

}  // namespace

int main(int argc, char** argv) {
  const bench::Options opt = bench::parseOptions(argc, argv);
  const int runs = opt.runs > 0 ? opt.runs : 5;

  // Scene seed chosen so the strip gaps are clean for the single-pass
  // partitioner (three full-height strips, as in fig. 3).
  const img::Scene scene = img::generateScene(img::beadsScene(opt.seed + 39));
  std::printf("TAB1: intelligent partitioning on the beads scene "
              "(%dx%d, %zu beads, %d runs)\n\n",
              scene.image.width(), scene.image.height(), scene.truth.size(),
              runs);

  core::PipelineParams params;
  params.prior.radiusMean = 8.0;
  params.prior.radiusStd = 0.6;
  params.prior.radiusMin = 4.0;
  params.prior.radiusMax = 13.0;
  params.iterationsBase = 2000;
  params.iterationsPerCircle = 600;
  // Single vertical pass with a wide minimum gap: the paper's fig. 3 cut
  // (three strips); the default recursive parameters give the finer
  // "irregular partitioning" of fig. 3 bottom-right instead.
  params.intelligent.minGapWidth = 12;
  params.intelligent.minPartitionSize = 60;
  params.intelligent.maxDepth = 1;

  // Whole-image baseline rows.
  Row whole;
  whole.rect = partition::IRect{0, 0, scene.image.width(), scene.image.height()};
  whole.visual = static_cast<int>(scene.truth.size());
  whole.threshold =
      partition::estimateCount(scene.image, params.theta, params.prior.radiusMean)
          .expectedCount;

  std::vector<Row> rows;  // per partition; geometry fixed across runs
  for (int run = 0; run < runs; ++run) {
    params.seed = opt.seed + 100 * (run + 1);
    const core::PipelineReport report =
        core::runIntelligentPipeline(scene.image, params);
    const core::PartitionRun wholeRun = core::runWholeImage(scene.image, params);

    whole.timePerIter.push(wholeRun.timePerIteration);
    if (wholeRun.itersToConverge) {
      whole.itersToConverge.push(static_cast<double>(*wholeRun.itersToConverge));
    }
    whole.runtime.push(wholeRun.runtimeToConverge);

    if (rows.empty()) {
      rows.resize(report.partitions.size());
      for (std::size_t i = 0; i < report.partitions.size(); ++i) {
        rows[i].rect = report.partitions[i].rect;
        for (const auto& t : scene.truth) {
          const auto& r = rows[i].rect;
          rows[i].visual += (t.x >= r.x0 && t.x < r.x0 + r.w && t.y >= r.y0 &&
                             t.y < r.y0 + r.h);
        }
        rows[i].density = partition::uniformAreaShare(
            static_cast<double>(scene.truth.size()), rows[i].rect,
            scene.image.width(), scene.image.height());
        rows[i].threshold =
            partition::estimateCount(scene.image, params.theta,
                                     params.prior.radiusMean, rows[i].rect)
                .expectedCount;
      }
    }
    for (std::size_t i = 0; i < report.partitions.size() && i < rows.size(); ++i) {
      rows[i].timePerIter.push(report.partitions[i].timePerIteration);
      if (report.partitions[i].itersToConverge) {
        rows[i].itersToConverge.push(
            static_cast<double>(*report.partitions[i].itersToConverge));
      }
      rows[i].runtime.push(report.partitions[i].runtimeToConverge);
    }
  }

  const double imageArea = static_cast<double>(scene.image.width()) *
                           scene.image.height();
  const double wholeRuntime = std::max(whole.runtime.mean(), 1e-12);

  std::vector<std::string> header{"row", "whole"};
  for (std::size_t i = 0; i < rows.size(); ++i) {
    header.push_back(std::string(1, static_cast<char>('A' + i)));
  }
  analysis::Table t(header);
  using T = analysis::Table;
  const auto addRow = [&](const std::string& name, auto wholeVal, auto perVal) {
    std::vector<std::string> cells{name, wholeVal(whole)};
    for (Row& r : rows) cells.push_back(perVal(r));
    t.addRow(std::move(cells));
  };
  addRow("area (px^2)",
         [](Row& r) { return T::sci(static_cast<double>(r.rect.area()), 2); },
         [](Row& r) { return T::sci(static_cast<double>(r.rect.area()), 2); });
  addRow("relative area", [&](Row&) { return T::num(1.0, 3); },
         [&](Row& r) {
           return T::num(static_cast<double>(r.rect.area()) / imageArea, 3);
         });
  addRow("# obj (visual)", [](Row& r) { return T::integer(r.visual); },
         [](Row& r) { return T::integer(r.visual); });
  addRow("# obj (density)", [](Row&) { return std::string("-"); },
         [](Row& r) { return T::num(r.density, 2); });
  addRow("# obj (threshold)", [](Row& r) { return T::num(r.threshold, 1); },
         [](Row& r) { return T::num(r.threshold, 1); });
  addRow("time/iteration (s)",
         [](Row& r) { return T::sci(r.timePerIter.mean(), 2); },
         [](Row& r) { return T::sci(r.timePerIter.mean(), 2); });
  addRow("# itr to converge",
         [](Row& r) { return T::integer(static_cast<long long>(r.itersToConverge.mean())); },
         [](Row& r) { return T::integer(static_cast<long long>(r.itersToConverge.mean())); });
  addRow("runtime (s)", [](Row& r) { return T::num(r.runtime.mean(), 3); },
         [](Row& r) { return T::num(r.runtime.mean(), 3); });
  addRow("relative runtime", [&](Row&) { return T::num(1.0, 3); },
         [&](Row& r) { return T::num(r.runtime.mean() / wholeRuntime, 3); });
  t.print(std::cout);

  // The §IX runtime summary.
  double longest = 0.0;
  for (Row& r : rows) longest = std::max(longest, r.runtime.mean());
  std::printf(
      "\nwith >= %zu processors the pipeline runtime is the longest\n"
      "partition: %.3f s = %.2f of the whole-image runtime (paper: 0.90,\n"
      "a 10%% reduction -- the dense B strip dominates).\n",
      rows.size(), longest, longest / wholeRuntime);
  return 0;
}
