// XVAL — cross-validate the eq. 2 prediction (Fig. 1's model) against the
// implementation: run the periodic sampler in virtual-time mode for
// s in {2, 4, 8, 16} partitions at several move mixes (qg), and compare the
// measured relative runtime with qg + (1 - qg)/s.
//
// The virtual executor charges makespan over `s` threads from measured
// per-partition costs, so deviations from eq. 2 expose real effects the
// closed form ignores: split/merge overhead and partition load imbalance
// (both discussed in §VI/§VII of the paper).

#include <iostream>

#include "analysis/table_writer.hpp"
#include "bench_common.hpp"
#include "core/periodic_sampler.hpp"
#include "core/runtime_predictor.hpp"
#include "mcmc/sampler.hpp"
#include "par/virtual_clock.hpp"

using namespace mcmcpar;

namespace {

mcmc::MoveSetParams mixWithQg(double qg) {
  mcmc::MoveSetParams params;
  const double g = qg / 5.0;        // five global move types
  const double l = (1.0 - qg) / 2.0;  // two local move types
  params.weights.add = params.weights.del = params.weights.merge =
      params.weights.split = params.weights.replace = g;
  params.weights.moveCentre = params.weights.resize = l;
  return params;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Options opt = bench::parseOptions(argc, argv);
  bench::Options scaled = opt;
  const bench::CellWorkload w = bench::makeCellWorkload(scaled);
  const std::uint64_t iterations = opt.paperScale ? w.iterations : 30000;

  std::printf("XVAL: measured (virtual) vs eq. 2 predicted relative runtime\n\n");

  struct GridChoice {
    unsigned s;
    int gx, gy;
  };
  const GridChoice grids[] = {{2, 2, 1}, {4, 2, 2}, {8, 4, 2}, {16, 4, 4}};

  analysis::Table table(
      {"qg", "s", "measured rel", "eq.2 predicted", "gap"});
  for (const double qg : {0.2, 0.4, 0.6}) {
    const mcmc::MoveRegistry registry = mcmc::MoveRegistry::caseStudy(mixWithQg(qg));

    // Sequential baseline for this move mix.
    double seqSeconds;
    {
      model::ModelState state = bench::makeState(w, opt.seed + 5);
      mcmc::Sampler sampler(state, registry, opt.seed + 6);
      const par::WallTimer timer;
      sampler.run(iterations);
      seqSeconds = timer.seconds();
    }

    for (const GridChoice& grid : grids) {
      model::ModelState state = bench::makeState(w, opt.seed + 5);
      core::PeriodicParams params;
      params.totalIterations = iterations;
      // Eq. 2 assumes "the parallelisation overhead is negligible", so the
      // comparison uses the in-place executor (no split/merge copies) with
      // phases long enough to amortise per-phase bookkeeping.
      params.globalPhaseIterations =
          std::max<std::uint64_t>(200, static_cast<std::uint64_t>(1000 * qg));
      params.layout = core::PartitionLayout::UniformGrid;
      params.gridSpacingX = w.scene.image.width() / grid.gx;
      params.gridSpacingY = w.scene.image.height() / grid.gy;
      params.executor = core::LocalExecutor::Serial;
      params.margin = 0.0;
      params.virtualThreads = grid.s;
      core::PeriodicSampler sampler(state, registry, params, opt.seed + 7);
      const core::PeriodicReport report = sampler.run();

      const double measured = report.virtualSeconds / seqSeconds;
      const double predicted = core::fig1RelativeRuntime(qg, grid.s);
      table.addRow({analysis::Table::num(qg, 1),
                    analysis::Table::integer(grid.s),
                    analysis::Table::num(measured, 3),
                    analysis::Table::num(predicted, 3),
                    analysis::Table::num(measured - predicted, 3)});
    }
  }
  table.print(std::cout);
  std::printf(
      "\nshape to check (fig. 1): measured tracks the prediction, always\n"
      "somewhat above it (overhead + imbalance); the gap grows with s and\n"
      "shrinks with qg -- exactly the paper's 'falls short of the predicted\n"
      "45%%' observation for the Q6600.\n");
  return 0;
}
