// Fig. 3 of the paper, reproduced: latex beads in a petri dish, processed
// with *intelligent partitioning* — a threshold pre-processor finds empty
// rows/columns, cuts the image so no bead spans a boundary, and each
// partition runs independent MCMC with its own eq.-5 count prior.
//
//   ./build/examples/beads_intelligent [output-prefix]
//
// Writes fig.3-style images: the input, the thresholded view, the partition
// cuts, and the final fits; prints the per-partition summary (Table I
// shape).

#include <cstdio>
#include <string>

#include "analysis/metrics.hpp"
#include "analysis/table_writer.hpp"
#include "core/pipeline.hpp"
#include "img/filters.hpp"
#include "img/overlay.hpp"
#include "img/pnm_io.hpp"
#include "img/synth.hpp"

#include <iostream>

using namespace mcmcpar;

int main(int argc, char** argv) {
  const std::string prefix = argc > 1 ? argv[1] : "beads";

  const img::Scene scene = img::generateScene(img::beadsScene(40));
  std::printf("beads scene: %dx%d, %zu beads\n", scene.image.width(),
              scene.image.height(), scene.truth.size());

  core::PipelineParams params;
  params.prior.radiusMean = 8.0;
  params.prior.radiusStd = 0.6;
  params.prior.radiusMin = 4.0;
  params.prior.radiusMax = 13.0;
  params.theta = 0.5f;
  params.iterationsBase = 2000;
  params.iterationsPerCircle = 600;
  params.seed = 33;
  // Fig. 3 cut: one vertical pass, wide gaps only (three strips A/B/C).
  params.intelligent.minGapWidth = 12;
  params.intelligent.minPartitionSize = 60;
  params.intelligent.maxDepth = 1;

  const core::PipelineReport report =
      core::runIntelligentPipeline(scene.image, params);

  analysis::Table table({"partition", "area px^2", "rel area", "# obj (eq.5)",
                         "iters", "t/iter (s)", "runtime (s)", "found"});
  for (std::size_t i = 0; i < report.partitions.size(); ++i) {
    const auto& p = report.partitions[i];
    table.addRow({std::string(1, static_cast<char>('A' + i)),
                  analysis::Table::integer(p.rect.area()),
                  analysis::Table::num(p.relativeArea, 3),
                  analysis::Table::num(p.estimatedCount, 1),
                  analysis::Table::integer(static_cast<long long>(p.iterations)),
                  analysis::Table::sci(p.timePerIteration, 2),
                  analysis::Table::num(p.runtimeToConverge, 3),
                  analysis::Table::integer(static_cast<long long>(p.circles.size()))});
  }
  table.print(std::cout);

  std::printf("\npartitioner %.4f s, merge %.4f s\n", report.partitionerSeconds,
              report.mergeSeconds);
  std::printf("parallel runtime (1 cpu/partition): %.3f s\n",
              report.parallelRuntime);
  std::printf("load-balanced on 2 cpus:            %.3f s\n",
              report.loadBalancedRuntime);

  std::vector<model::Circle> truth;
  for (const auto& t : scene.truth) truth.push_back({t.x, t.y, t.r});
  const auto q = analysis::scoreCircles(report.merged, truth, 6.0);
  std::printf("merged model: %zu beads, precision %.3f recall %.3f F1 %.3f\n",
              report.merged.size(), q.precision, q.recall, q.f1);

  // Fig. 3 pictures: input / threshold / cuts / result.
  img::writePgm(img::toU8(scene.image), prefix + "_input.pgm");
  img::writePgm(img::toU8(img::threshold(scene.image, params.theta)),
                prefix + "_threshold.pgm");

  const auto cuts = partition::intelligentPartition(scene.image, params.intelligent);
  img::ImageRgb cutsImg = img::greyToRgb(scene.image);
  img::drawVerticalLines(cutsImg, cuts.verticalCuts, img::Rgb{255, 255, 0});
  img::drawHorizontalLines(cutsImg, cuts.horizontalCuts, img::Rgb{255, 255, 0});
  img::writePpm(cutsImg, prefix + "_cuts.ppm");

  img::ImageRgb resultImg = img::greyToRgb(scene.image);
  std::vector<img::SceneCircle> found;
  for (const auto& c : report.merged) found.push_back({c.x, c.y, c.r});
  img::drawCircles(resultImg, found, img::Rgb{0, 255, 0});
  img::writePpm(resultImg, prefix + "_result.ppm");
  std::printf("wrote %s_{input,threshold,cuts,result} images\n", prefix.c_str());
  return 0;
}
