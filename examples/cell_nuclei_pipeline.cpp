// The paper's §VII workload end to end: a large image of stained nuclei
// processed with *periodic partitioning* (the statistically pure parallel
// scheme), compared against the sequential baseline.
//
//   ./build/examples/cell_nuclei_pipeline [--small]
//
// Prints phase statistics, the measured and virtual (4-thread SMP) runtimes
// and the detection quality of both chains.

#include <cstdio>
#include <cstring>

#include "analysis/metrics.hpp"
#include "core/periodic_sampler.hpp"
#include "img/synth.hpp"
#include "mcmc/sampler.hpp"
#include "par/virtual_clock.hpp"

using namespace mcmcpar;

namespace {

model::PriorParams nucleusPrior(double expected) {
  model::PriorParams prior;
  prior.expectedCount = expected;
  prior.radiusMean = 10.0;
  prior.radiusStd = 1.2;
  prior.radiusMin = 4.0;
  prior.radiusMax = 18.0;
  return prior;
}

analysis::QualityMetrics score(const model::ModelState& state,
                               const img::Scene& scene) {
  std::vector<model::Circle> truth;
  for (const auto& t : scene.truth) truth.push_back({t.x, t.y, t.r});
  return analysis::scoreCircles(state.config().snapshot(), truth, 7.0);
}

}  // namespace

int main(int argc, char** argv) {
  const bool small = argc > 1 && std::strcmp(argv[1], "--small") == 0;
  const int size = small ? 256 : 512;
  const int cells = small ? 25 : 90;
  const std::uint64_t iterations = small ? 40000 : 150000;

  img::SceneSpec spec = img::cellScene(size, size, cells, 10.0, 11);
  spec.radiusStd = 1.0;
  const img::Scene scene = img::generateScene(spec);
  std::printf("scene: %dx%d, %d cells, %llu iterations\n\n", size, size, cells,
              static_cast<unsigned long long>(iterations));

  const mcmc::MoveRegistry registry = mcmc::MoveRegistry::caseStudy();

  // --- sequential baseline -------------------------------------------------
  model::ModelState seqState(scene.image, nucleusPrior(cells),
                             model::LikelihoodParams{});
  rng::Stream seqStream(21);
  seqState.initialiseRandom(cells, seqStream);
  mcmc::Sampler sequential(seqState, registry, seqStream);
  const par::WallTimer seqTimer;
  sequential.run(iterations);
  const double seqSeconds = seqTimer.seconds();
  const auto seqQ = score(seqState, scene);
  std::printf("sequential : %.2f s   F1 %.3f  (%zu circles)\n", seqSeconds,
              seqQ.f1, seqState.config().size());

  // --- periodic partitioning ----------------------------------------------
  model::ModelState perState(scene.image, nucleusPrior(cells),
                             model::LikelihoodParams{});
  rng::Stream perStream(21);
  perState.initialiseRandom(cells, perStream);

  core::PeriodicParams params;
  params.totalIterations = iterations;
  params.globalPhaseIterations = 130;  // the paper's ~20 ms sweet spot
  // In shared memory the in-place executor is the right choice: local
  // sessions mutate the shared state under the legality margin and pay no
  // split/merge copies (bench_ablations quantifies the difference; the
  // SplitMerge executors exist for the cluster/fig.-2 overhead story).
  params.executor = core::LocalExecutor::Serial;
  params.virtualThreads = 4;  // model a quad-core (Q6600-like) machine
  core::PeriodicSampler periodic(perState, registry, params, 22);
  const core::PeriodicReport report = periodic.run();
  const auto perQ = score(perState, scene);

  std::printf("periodic   : %.2f s measured on 1 core\n", report.wallSeconds);
  std::printf("             %.2f s virtual on 4 threads  (%.0f%% of sequential)\n",
              report.virtualSeconds,
              100.0 * report.virtualSeconds / seqSeconds);
  std::printf("             F1 %.3f  (%zu circles)\n", perQ.f1,
              perState.config().size());
  std::printf("             %llu phases, %llu global + %llu local iterations\n",
              static_cast<unsigned long long>(report.phases),
              static_cast<unsigned long long>(report.globalIterations),
              static_cast<unsigned long long>(report.localIterations));
  std::printf("             split/merge overhead %.3f s total (%.2f ms/phase)\n",
              report.overheadSeconds,
              1000.0 * report.overheadSeconds /
                  static_cast<double>(std::max<std::uint64_t>(report.phases, 1)));

  std::printf("\nstatistical parity: |dF1| = %.3f (both chains sample the "
              "same posterior)\n",
              seqQ.f1 > perQ.f1 ? seqQ.f1 - perQ.f1 : perQ.f1 - seqQ.f1);
  return 0;
}
