// Run every parallelisation architecture in the strategy registry on the
// same image and compare wall time and detection quality. This is the
// acceptance demo of the engine façade: the loop below contains *no*
// strategy-specific setup code — each architecture is selected purely by
// its registry name, and every row comes from the same RunReport type.
//
//   ./build/examples/method_comparison

#include <iostream>

#include "analysis/metrics.hpp"
#include "analysis/table_writer.hpp"
#include "engine/registry.hpp"
#include "img/synth.hpp"

using namespace mcmcpar;

int main() {
  // A clustered scene so the intelligent partitioner has gaps to cut.
  img::SceneSpec spec;
  spec.width = 384;
  spec.height = 256;
  spec.radiusMean = 8.0;
  spec.radiusStd = 0.6;
  spec.noiseStd = 0.03f;
  spec.seed = 99;
  spec.clusters = {
      img::ClusterSpec{10, 10, 150, 236, 12, 0.1},
      img::ClusterSpec{210, 10, 164, 110, 8, 0.1},
      img::ClusterSpec{210, 150, 164, 96, 6, 0.1},
  };
  const img::Scene scene = img::generateScene(spec);
  std::vector<model::Circle> truth;
  for (const auto& t : scene.truth) truth.push_back({t.x, t.y, t.r});
  std::printf("scene: %dx%d with %zu artifacts in 3 clusters\n\n", spec.width,
              spec.height, scene.truth.size());

  engine::Problem problem;
  problem.filtered = &scene.image;
  problem.prior.radiusMean = 8.0;
  problem.prior.radiusStd = 0.8;
  problem.prior.radiusMin = 4.0;
  problem.prior.radiusMax = 13.0;

  const engine::Engine eng(engine::ExecResources{/*threads=*/0,
                                                 /*useOpenMp=*/false,
                                                 /*seed=*/17});
  analysis::Table table({"strategy", "seconds", "iters", "found", "precision",
                         "recall", "F1"});
  for (const std::string& name : eng.registry().names()) {
    const engine::RunReport result =
        eng.run(name, problem, engine::RunBudget{60000, 0});
    const auto q = analysis::scoreCircles(result.circles, truth, 6.0);
    table.addRow(
        {name, analysis::Table::num(result.wallSeconds, 3),
         analysis::Table::integer(static_cast<long long>(result.iterations)),
         analysis::Table::integer(static_cast<long long>(result.circles.size())),
         analysis::Table::num(q.precision, 3),
         analysis::Table::num(q.recall, 3), analysis::Table::num(q.f1, 3)});
  }
  table.print(std::cout);
  std::printf(
      "\nnote: on a single-core container the partition pipelines win by\n"
      "doing *less work* (smaller statespaces per partition, eq. 5 priors);\n"
      "their further parallel speedup is modelled by the bench harness.\n");
  return 0;
}
