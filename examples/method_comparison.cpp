// Run all four processing strategies of the paper on the same image and
// compare wall time and detection quality:
//
//   sequential            - conventional RJ-MCMC (baseline)
//   periodic              - §V periodic partitioning (statistically pure)
//   intelligent partition - §VIII pre-processor cuts (data permitting)
//   blind partition       - §VIII overlapping grid + merge heuristics
//
//   ./build/examples/method_comparison

#include <iostream>

#include "analysis/metrics.hpp"
#include "analysis/table_writer.hpp"
#include "core/nuclei_finder.hpp"
#include "img/synth.hpp"

using namespace mcmcpar;

int main() {
  // A clustered scene so the intelligent partitioner has gaps to cut.
  img::SceneSpec spec;
  spec.width = 384;
  spec.height = 256;
  spec.radiusMean = 8.0;
  spec.radiusStd = 0.6;
  spec.noiseStd = 0.03f;
  spec.seed = 99;
  spec.clusters = {
      img::ClusterSpec{10, 10, 150, 236, 12, 0.1},
      img::ClusterSpec{210, 10, 164, 110, 8, 0.1},
      img::ClusterSpec{210, 150, 164, 96, 6, 0.1},
  };
  const img::Scene scene = img::generateScene(spec);
  std::vector<model::Circle> truth;
  for (const auto& t : scene.truth) truth.push_back({t.x, t.y, t.r});
  std::printf("scene: %dx%d with %zu artifacts in 3 clusters\n\n", spec.width,
              spec.height, scene.truth.size());

  const auto run = [&](core::FinderMethod method) {
    core::FinderOptions options;
    options.method = method;
    options.prior.radiusMean = 8.0;
    options.prior.radiusStd = 0.8;
    options.prior.radiusMin = 4.0;
    options.prior.radiusMax = 13.0;
    options.iterations = 60000;
    options.pipeline.iterationsBase = 2000;
    options.pipeline.iterationsPerCircle = 700;
    options.periodic.globalPhaseIterations = 52;
    options.periodic.executor = core::LocalExecutor::SplitMergeSerial;
    options.seed = 17;
    return core::NucleiFinder(options).find(scene.image);
  };

  analysis::Table table(
      {"method", "seconds", "found", "precision", "recall", "F1"});
  const std::pair<const char*, core::FinderMethod> methods[] = {
      {"sequential", core::FinderMethod::Sequential},
      {"periodic", core::FinderMethod::Periodic},
      {"intelligent", core::FinderMethod::IntelligentPartition},
      {"blind", core::FinderMethod::BlindPartition},
  };
  for (const auto& [name, method] : methods) {
    const core::FinderResult result = run(method);
    const auto q = analysis::scoreCircles(result.circles, truth, 6.0);
    table.addRow({name, analysis::Table::num(result.seconds, 3),
                  analysis::Table::integer(static_cast<long long>(result.circles.size())),
                  analysis::Table::num(q.precision, 3),
                  analysis::Table::num(q.recall, 3),
                  analysis::Table::num(q.f1, 3)});
  }
  table.print(std::cout);
  std::printf(
      "\nnote: on this single-core container the partition pipelines win by\n"
      "doing *less work* (smaller statespaces per partition, eq. 5 priors);\n"
      "their further parallel speedup is modelled by the bench harness.\n");
  return 0;
}
