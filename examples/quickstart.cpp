// Quickstart: detect bright circular artifacts (stained cell nuclei) in an
// image with the library's one-stop facade.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart [output-prefix]
//
// The example generates a synthetic micrograph (ground truth known), runs
// the conventional sequential RJ-MCMC sampler, scores the result against
// the truth and writes two images: the input and an overlay with the fitted
// circles (found = green, truth = dim red).

#include <cstdio>
#include <string>

#include "analysis/metrics.hpp"
#include "core/nuclei_finder.hpp"
#include "img/overlay.hpp"
#include "img/pnm_io.hpp"
#include "img/synth.hpp"

using namespace mcmcpar;

int main(int argc, char** argv) {
  const std::string prefix = argc > 1 ? argv[1] : "quickstart";

  // 1. A 256x256 sample with 20 nuclei of radius ~9 px.
  img::SceneSpec spec = img::cellScene(256, 256, 20, 9.0, /*seed=*/2024);
  spec.noiseStd = 0.05f;
  const img::Scene scene = img::generateScene(spec);
  std::printf("generated %dx%d scene with %zu nuclei\n", scene.image.width(),
              scene.image.height(), scene.truth.size());

  // 2. Configure the finder. The prior encodes what we know: nucleus size
  //    distribution; the expected count is estimated from the image (eq. 5).
  core::FinderOptions options;
  options.method = core::FinderMethod::Sequential;
  options.prior.radiusMean = 9.0;
  options.prior.radiusStd = 1.0;
  options.prior.radiusMin = 4.0;
  options.prior.radiusMax = 15.0;
  options.iterations = 60000;
  options.seed = 7;

  const core::NucleiFinder finder(options);
  const core::FinderResult result = finder.find(scene.image);

  std::printf("found %zu nuclei in %.2f s (log-posterior %.1f)\n",
              result.circles.size(), result.seconds, result.logPosterior);

  // 3. Score against ground truth.
  std::vector<model::Circle> truth;
  for (const auto& t : scene.truth) truth.push_back({t.x, t.y, t.r});
  const auto quality = analysis::scoreCircles(result.circles, truth, 6.0);
  std::printf("precision %.3f  recall %.3f  F1 %.3f  centre RMSE %.2f px\n",
              quality.precision, quality.recall, quality.f1,
              quality.centreRmse);

  // 4. Acceptance statistics per move type.
  for (const auto& [name, stats] : result.diagnostics.perMove()) {
    std::printf("  %-12s proposed %8llu  accepted %6.1f%%\n", name.c_str(),
                static_cast<unsigned long long>(stats.proposed),
                100.0 * stats.acceptanceRate());
  }

  // 5. Write the pictures.
  img::writePgm(img::toU8(scene.image), prefix + "_input.pgm");
  img::ImageRgb overlay = img::greyToRgb(scene.image);
  img::drawCircles(overlay, scene.truth, img::Rgb{96, 0, 0});
  std::vector<img::SceneCircle> found;
  for (const auto& c : result.circles) found.push_back({c.x, c.y, c.r});
  img::drawCircles(overlay, found, img::Rgb{0, 255, 0});
  img::writePpm(overlay, prefix + "_overlay.ppm");
  std::printf("wrote %s_input.pgm and %s_overlay.ppm\n", prefix.c_str(),
              prefix.c_str());
  return 0;
}
