// Quickstart: detect bright circular artifacts (stained cell nuclei) in an
// image through the engine façade — the shortest path into the library.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart [output-prefix]
//
// The example generates a synthetic micrograph (ground truth known), runs
// the "serial" strategy from the registry (swap the name for "periodic",
// "mc3", ... — nothing else changes), scores the result against the truth
// and writes two images: the input and an overlay with the fitted circles
// (found = green, truth = dim red).

#include <cstdio>
#include <string>

#include "analysis/metrics.hpp"
#include "engine/registry.hpp"
#include "img/overlay.hpp"
#include "img/pnm_io.hpp"
#include "img/synth.hpp"

using namespace mcmcpar;

int main(int argc, char** argv) {
  const std::string prefix = argc > 1 ? argv[1] : "quickstart";

  // 1. A 256x256 sample with 20 nuclei of radius ~9 px.
  img::SceneSpec spec = img::cellScene(256, 256, 20, 9.0, /*seed=*/2024);
  spec.noiseStd = 0.05f;
  const img::Scene scene = img::generateScene(spec);
  std::printf("generated %dx%d scene with %zu nuclei\n", scene.image.width(),
              scene.image.height(), scene.truth.size());

  // 2. Describe the problem. The prior encodes what we know: nucleus size
  //    distribution; the expected count is estimated from the image (eq. 5).
  engine::Problem problem;
  problem.filtered = &scene.image;
  problem.prior.radiusMean = 9.0;
  problem.prior.radiusStd = 1.0;
  problem.prior.radiusMin = 4.0;
  problem.prior.radiusMax = 15.0;

  // 3. Run any registered strategy by name on shared resources. RunHooks
  //    gives live progress (and could cancel the run).
  engine::Engine eng(engine::ExecResources{/*threads=*/0, /*useOpenMp=*/false,
                                           /*seed=*/7});
  engine::RunHooks hooks;
  hooks.onProgress = [](const engine::RunProgress& p) {
    if (p.total != 0 && p.done == p.total) {
      std::printf("  %s finished (%llu iterations)\n", p.phase,
                  static_cast<unsigned long long>(p.total));
    }
  };
  const engine::RunReport report =
      eng.run("serial", problem, engine::RunBudget{60000, 0}, hooks);

  std::printf("found %zu nuclei in %.2f s (log-posterior %.1f)\n",
              report.circles.size(), report.wallSeconds, report.logPosterior);
  if (report.iterationsToConverge) {
    std::printf("converged after ~%llu iterations\n",
                static_cast<unsigned long long>(*report.iterationsToConverge));
  }

  // 4. Score against ground truth.
  std::vector<model::Circle> truth;
  for (const auto& t : scene.truth) truth.push_back({t.x, t.y, t.r});
  const auto quality = analysis::scoreCircles(report.circles, truth, 6.0);
  std::printf("precision %.3f  recall %.3f  F1 %.3f  centre RMSE %.2f px\n",
              quality.precision, quality.recall, quality.f1,
              quality.centreRmse);

  // 5. Acceptance statistics per move type.
  for (const auto& [name, stats] : report.diagnostics.perMove()) {
    std::printf("  %-12s proposed %8llu  accepted %6.1f%%\n", name.c_str(),
                static_cast<unsigned long long>(stats.proposed),
                100.0 * stats.acceptanceRate());
  }

  // 6. Write the pictures.
  img::writePgm(img::toU8(scene.image), prefix + "_input.pgm");
  img::ImageRgb overlay = img::greyToRgb(scene.image);
  img::drawCircles(overlay, scene.truth, img::Rgb{96, 0, 0});
  std::vector<img::SceneCircle> found;
  for (const auto& c : report.circles) found.push_back({c.x, c.y, c.r});
  img::drawCircles(overlay, found, img::Rgb{0, 255, 0});
  img::writePpm(overlay, prefix + "_overlay.ppm");
  std::printf("wrote %s_input.pgm and %s_overlay.ppm\n", prefix.c_str(),
              prefix.c_str());
  return 0;
}
