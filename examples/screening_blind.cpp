// High-throughput screening, the paper's motivating use case for the
// non-statistically-pure schemes (§VIII: "obtaining a 'reasonable' answer
// promptly is often more important ... for instance when the program is
// used to flag samples for human review").
//
//   ./build/examples/screening_blind [num-samples]
//
// A batch of synthetic tissue samples is processed with *blind
// partitioning* (2x2 overlapping grid + merge heuristics). Samples whose
// detected cell count deviates from the batch norm are flagged for review.

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "analysis/stats.hpp"
#include "analysis/table_writer.hpp"
#include "core/pipeline.hpp"
#include "img/synth.hpp"
#include "par/virtual_clock.hpp"

using namespace mcmcpar;

int main(int argc, char** argv) {
  const int samples = argc > 1 ? std::atoi(argv[1]) : 8;

  core::PipelineParams params;
  params.prior.radiusMean = 8.0;
  params.prior.radiusStd = 0.8;
  params.prior.radiusMin = 4.0;
  params.prior.radiusMax = 13.0;
  params.iterationsBase = 1500;
  params.iterationsPerCircle = 400;
  params.blind.gridX = 2;
  params.blind.gridY = 2;
  params.blind.overlapMargin = 0.0;  // auto: 1.1 * expected radius

  // Most samples carry ~15 cells; a few "anomalous" ones carry 3x as many
  // (simulating clusters that a human should look at).
  analysis::Table table(
      {"sample", "true cells", "found", "runtime (s)", "flagged"});
  analysis::RunningStat counts;
  std::vector<std::size_t> found(samples);
  std::vector<double> seconds(samples);
  std::vector<int> trueCells(samples);

  const par::WallTimer batchTimer;
  for (int i = 0; i < samples; ++i) {
    const bool anomalous = (i % 5 == 4);
    trueCells[i] = anomalous ? 45 : 15;
    img::SceneSpec spec =
        img::cellScene(192, 192, trueCells[i], 8.0, 1000 + i);
    spec.radiusStd = 0.5;
    const img::Scene scene = img::generateScene(spec);

    params.seed = 500 + i;
    const core::PipelineReport report =
        core::runBlindPipeline(scene.image, params);
    found[i] = report.merged.size();
    seconds[i] = report.parallelRuntime;  // 4 cpus: longest partition
    counts.push(static_cast<double>(found[i]));
  }
  const double batchSeconds = batchTimer.seconds();

  // Flag samples more than 2 sigma from the batch mean.
  const double mean = counts.mean();
  const double sigma = counts.stddev();
  int flagged = 0;
  for (int i = 0; i < samples; ++i) {
    const bool flag =
        sigma > 0.0 && std::abs(static_cast<double>(found[i]) - mean) > 2 * sigma;
    flagged += flag;
    table.addRow({analysis::Table::integer(i),
                  analysis::Table::integer(trueCells[i]),
                  analysis::Table::integer(static_cast<long long>(found[i])),
                  analysis::Table::num(seconds[i], 3), flag ? "YES" : ""});
  }
  table.print(std::cout);
  std::printf("\nbatch mean %.1f cells (sigma %.1f); %d sample(s) flagged\n",
              mean, sigma, flagged);
  std::printf("batch wall time %.2f s on this machine; per-sample parallel "
              "runtime shown above assumes 4 cpus per sample\n",
              batchSeconds);
  return 0;
}
