#include "analysis/anomaly.hpp"

#include <cmath>
#include <limits>

namespace mcmcpar::analysis {

double distanceToLines(double x, double y,
                       const std::vector<double>& verticalLines,
                       const std::vector<double>& horizontalLines) noexcept {
  double best = std::numeric_limits<double>::infinity();
  for (double vx : verticalLines) best = std::min(best, std::abs(x - vx));
  for (double hy : horizontalLines) best = std::min(best, std::abs(y - hy));
  return best;
}

BoundaryAnomalyReport auditBoundaryAnomalies(
    const std::vector<model::Circle>& found,
    const std::vector<model::Circle>& truth,
    const std::vector<double>& verticalLines,
    const std::vector<double>& horizontalLines, double matchDistance,
    double bandWidth, double duplicateDistance) {
  BoundaryAnomalyReport report;
  const MatchResult match = matchCircles(found, truth, matchDistance);

  for (std::size_t t : match.unmatchedTruth) {
    const double d =
        distanceToLines(truth[t].x, truth[t].y, verticalLines, horizontalLines);
    (d <= bandWidth ? report.missesNearBoundary : report.missesElsewhere)++;
  }
  for (std::size_t f : match.unmatchedFound) {
    const double d =
        distanceToLines(found[f].x, found[f].y, verticalLines, horizontalLines);
    (d <= bandWidth ? report.falsePositivesNearBoundary
                    : report.falsePositivesElsewhere)++;
  }

  const double dup2 = duplicateDistance * duplicateDistance;
  for (std::size_t i = 0; i < found.size(); ++i) {
    for (std::size_t j = i + 1; j < found.size(); ++j) {
      if (model::centreDistance2(found[i], found[j]) <= dup2) {
        ++report.duplicatePairs;
        const double mx = (found[i].x + found[j].x) / 2.0;
        const double my = (found[i].y + found[j].y) / 2.0;
        if (distanceToLines(mx, my, verticalLines, horizontalLines) <=
            bandWidth) {
          ++report.duplicatePairsNearBoundary;
        }
      }
    }
  }
  return report;
}

}  // namespace mcmcpar::analysis
