#pragma once

#include <vector>

#include "analysis/matching.hpp"
#include "model/circle.hpp"

namespace mcmcpar::analysis {

/// Boundary-anomaly audit for partitioned processing (§IX: "no apparent
/// anomalies present as a result of the partitioning"). Classifies the
/// matching errors by their distance to the nearest partition line:
/// anomalies *caused* by partitioning concentrate within `bandWidth` of a
/// boundary (duplicated artifacts, misses, biased fits).
struct BoundaryAnomalyReport {
  std::size_t missesNearBoundary = 0;
  std::size_t missesElsewhere = 0;
  std::size_t falsePositivesNearBoundary = 0;
  std::size_t falsePositivesElsewhere = 0;
  /// Pairs of accepted circles closer than a duplicate threshold — the
  /// signature of an artifact detected once per partition and not merged.
  std::size_t duplicatePairs = 0;
  std::size_t duplicatePairsNearBoundary = 0;

  [[nodiscard]] std::size_t totalNearBoundary() const noexcept {
    return missesNearBoundary + falsePositivesNearBoundary +
           duplicatePairsNearBoundary;
  }
};

/// Distance from a point to the nearest of the given vertical/horizontal
/// partition lines (infinity when none given).
[[nodiscard]] double distanceToLines(double x, double y,
                                     const std::vector<double>& verticalLines,
                                     const std::vector<double>& horizontalLines) noexcept;

/// Audit `found` vs `truth` with partition lines. `bandWidth` is the
/// "near boundary" band; `duplicateDistance` the centre distance under
/// which two found circles count as duplicates.
[[nodiscard]] BoundaryAnomalyReport auditBoundaryAnomalies(
    const std::vector<model::Circle>& found,
    const std::vector<model::Circle>& truth,
    const std::vector<double>& verticalLines,
    const std::vector<double>& horizontalLines, double matchDistance,
    double bandWidth, double duplicateDistance);

}  // namespace mcmcpar::analysis
