#include "analysis/matching.hpp"

#include <algorithm>
#include <cmath>

namespace mcmcpar::analysis {

MatchResult matchCircles(const std::vector<model::Circle>& found,
                         const std::vector<model::Circle>& truth,
                         double maxDistance) {
  struct Pair {
    double dist;
    std::size_t f, t;
  };
  std::vector<Pair> pairs;
  const double max2 = maxDistance * maxDistance;
  for (std::size_t f = 0; f < found.size(); ++f) {
    for (std::size_t t = 0; t < truth.size(); ++t) {
      const double d2 = model::centreDistance2(found[f], truth[t]);
      if (d2 <= max2) pairs.push_back(Pair{std::sqrt(d2), f, t});
    }
  }
  std::stable_sort(pairs.begin(), pairs.end(),
                   [](const Pair& a, const Pair& b) { return a.dist < b.dist; });

  MatchResult result;
  std::vector<bool> fUsed(found.size(), false), tUsed(truth.size(), false);
  for (const Pair& p : pairs) {
    if (fUsed[p.f] || tUsed[p.t]) continue;
    fUsed[p.f] = tUsed[p.t] = true;
    result.matches.push_back(Match{p.f, p.t, p.dist});
  }
  for (std::size_t f = 0; f < found.size(); ++f) {
    if (!fUsed[f]) result.unmatchedFound.push_back(f);
  }
  for (std::size_t t = 0; t < truth.size(); ++t) {
    if (!tUsed[t]) result.unmatchedTruth.push_back(t);
  }
  return result;
}

double circleIoU(const model::Circle& a, const model::Circle& b) noexcept {
  const double overlap = model::overlapArea(a, b);
  if (overlap <= 0.0) return 0.0;
  const double unionArea = model::discArea(a) + model::discArea(b) - overlap;
  return unionArea > 0.0 ? overlap / unionArea : 0.0;
}

IouMatchResult matchCirclesIoU(const std::vector<model::Circle>& found,
                               const std::vector<model::Circle>& truth,
                               double minIoU) {
  struct Pair {
    double iou;
    std::size_t f, t;
  };
  std::vector<Pair> pairs;
  for (std::size_t f = 0; f < found.size(); ++f) {
    for (std::size_t t = 0; t < truth.size(); ++t) {
      const double iou = circleIoU(found[f], truth[t]);
      if (iou >= minIoU) pairs.push_back(Pair{iou, f, t});
    }
  }
  std::sort(pairs.begin(), pairs.end(), [](const Pair& a, const Pair& b) {
    if (a.iou != b.iou) return a.iou > b.iou;
    if (a.f != b.f) return a.f < b.f;
    return a.t < b.t;
  });

  IouMatchResult result;
  std::vector<bool> fUsed(found.size(), false), tUsed(truth.size(), false);
  for (const Pair& p : pairs) {
    if (fUsed[p.f] || tUsed[p.t]) continue;
    fUsed[p.f] = tUsed[p.t] = true;
    result.matches.push_back(IouMatch{p.f, p.t, p.iou});
  }
  for (std::size_t f = 0; f < found.size(); ++f) {
    if (!fUsed[f]) result.unmatchedFound.push_back(f);
  }
  for (std::size_t t = 0; t < truth.size(); ++t) {
    if (!tUsed[t]) result.unmatchedTruth.push_back(t);
  }
  return result;
}

}  // namespace mcmcpar::analysis
