#pragma once

#include <vector>

#include "model/circle.hpp"

namespace mcmcpar::analysis {

/// One matched (found, truth) pair.
struct Match {
  std::size_t foundIndex;
  std::size_t truthIndex;
  double centreDistance;
};

/// Matching of detected circles against ground truth.
struct MatchResult {
  std::vector<Match> matches;
  std::vector<std::size_t> unmatchedFound;   ///< false positives
  std::vector<std::size_t> unmatchedTruth;   ///< misses
};

/// Greedy closest-pair-first matching with a centre-distance gate: sort all
/// (found, truth) pairs with distance <= maxDistance ascending and accept a
/// pair when both sides are still free. Equivalent to optimal assignment
/// for well-separated artifacts, and deterministic.
[[nodiscard]] MatchResult matchCircles(const std::vector<model::Circle>& found,
                                       const std::vector<model::Circle>& truth,
                                       double maxDistance);

/// Intersection-over-union of two discs (exact lens formula), in [0, 1].
[[nodiscard]] double circleIoU(const model::Circle& a,
                               const model::Circle& b) noexcept;

/// One matched (found, truth) pair under the IoU gate.
struct IouMatch {
  std::size_t foundIndex;
  std::size_t truthIndex;
  double iou;
};

/// Matching of detections against a reference set by disc overlap.
struct IouMatchResult {
  std::vector<IouMatch> matches;
  std::vector<std::size_t> unmatchedFound;
  std::vector<std::size_t> unmatchedTruth;
};

/// Greedy highest-IoU-first matching: sort all (found, truth) pairs with
/// IoU >= minIoU descending and accept a pair when both sides are still
/// free. Ties break on (foundIndex, truthIndex) so the result is fully
/// deterministic — the cross-frame Tracker in src/stream depends on that.
[[nodiscard]] IouMatchResult matchCirclesIoU(
    const std::vector<model::Circle>& found,
    const std::vector<model::Circle>& truth, double minIoU);

}  // namespace mcmcpar::analysis
