#pragma once

#include <vector>

#include "model/circle.hpp"

namespace mcmcpar::analysis {

/// One matched (found, truth) pair.
struct Match {
  std::size_t foundIndex;
  std::size_t truthIndex;
  double centreDistance;
};

/// Matching of detected circles against ground truth.
struct MatchResult {
  std::vector<Match> matches;
  std::vector<std::size_t> unmatchedFound;   ///< false positives
  std::vector<std::size_t> unmatchedTruth;   ///< misses
};

/// Greedy closest-pair-first matching with a centre-distance gate: sort all
/// (found, truth) pairs with distance <= maxDistance ascending and accept a
/// pair when both sides are still free. Equivalent to optimal assignment
/// for well-separated artifacts, and deterministic.
[[nodiscard]] MatchResult matchCircles(const std::vector<model::Circle>& found,
                                       const std::vector<model::Circle>& truth,
                                       double maxDistance);

}  // namespace mcmcpar::analysis
