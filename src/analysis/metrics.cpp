#include "analysis/metrics.hpp"

#include <cmath>

namespace mcmcpar::analysis {

QualityMetrics scoreMatches(const MatchResult& match,
                            const std::vector<model::Circle>& found,
                            const std::vector<model::Circle>& truth) {
  QualityMetrics q;
  q.truePositives = match.matches.size();
  q.falsePositives = match.unmatchedFound.size();
  q.falseNegatives = match.unmatchedTruth.size();

  const double tp = static_cast<double>(q.truePositives);
  q.precision = found.empty() ? 0.0 : tp / static_cast<double>(found.size());
  q.recall = truth.empty() ? 0.0 : tp / static_cast<double>(truth.size());
  q.f1 = (q.precision + q.recall) > 0.0
             ? 2.0 * q.precision * q.recall / (q.precision + q.recall)
             : 0.0;

  double centreSq = 0.0, radiusSq = 0.0;
  for (const Match& m : match.matches) {
    centreSq += m.centreDistance * m.centreDistance;
    const double dr = found[m.foundIndex].r - truth[m.truthIndex].r;
    radiusSq += dr * dr;
  }
  if (!match.matches.empty()) {
    q.centreRmse = std::sqrt(centreSq / tp);
    q.radiusRmse = std::sqrt(radiusSq / tp);
  }
  return q;
}

QualityMetrics scoreCircles(const std::vector<model::Circle>& found,
                            const std::vector<model::Circle>& truth,
                            double matchDistance) {
  return scoreMatches(matchCircles(found, truth, matchDistance), found, truth);
}

}  // namespace mcmcpar::analysis
