#pragma once

#include <vector>

#include "analysis/matching.hpp"
#include "model/circle.hpp"

namespace mcmcpar::analysis {

/// Detection quality of a circle model against ground truth.
struct QualityMetrics {
  std::size_t truePositives = 0;
  std::size_t falsePositives = 0;
  std::size_t falseNegatives = 0;
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
  double centreRmse = 0.0;  ///< over matched pairs
  double radiusRmse = 0.0;  ///< over matched pairs
};

/// Score `found` against `truth`; a detection matches a truth circle when
/// the centres are within `matchDistance` (default: half the mean truth
/// radius is a good choice; pass explicitly for reproducibility).
[[nodiscard]] QualityMetrics scoreCircles(const std::vector<model::Circle>& found,
                                          const std::vector<model::Circle>& truth,
                                          double matchDistance);

/// Same, reusing a precomputed matching.
[[nodiscard]] QualityMetrics scoreMatches(const MatchResult& match,
                                          const std::vector<model::Circle>& found,
                                          const std::vector<model::Circle>& truth);

}  // namespace mcmcpar::analysis
