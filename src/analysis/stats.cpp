#include "analysis/stats.hpp"

#include <algorithm>
#include <cmath>

namespace mcmcpar::analysis {

Summary summarise(std::span<const double> values) {
  Summary s;
  s.count = values.size();
  if (values.empty()) return s;

  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  s.min = sorted.front();
  s.max = sorted.back();
  s.median = sorted.size() % 2 == 1
                 ? sorted[sorted.size() / 2]
                 : (sorted[sorted.size() / 2 - 1] + sorted[sorted.size() / 2]) / 2.0;

  double sum = 0.0;
  for (double v : sorted) sum += v;
  s.mean = sum / static_cast<double>(sorted.size());

  if (sorted.size() > 1) {
    double sq = 0.0;
    for (double v : sorted) sq += (v - s.mean) * (v - s.mean);
    s.stddev = std::sqrt(sq / static_cast<double>(sorted.size() - 1));
  }
  return s;
}

void RunningStat::push(double x) noexcept {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStat::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStat::stddev() const noexcept { return std::sqrt(variance()); }

}  // namespace mcmcpar::analysis
