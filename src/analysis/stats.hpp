#pragma once

#include <span>
#include <vector>

namespace mcmcpar::analysis {

/// Five-number-ish summary of a sample.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;  ///< sample standard deviation (n-1)
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
};

[[nodiscard]] Summary summarise(std::span<const double> values);

/// Welford online accumulator (used by long-running benches to avoid
/// keeping every sample).
class RunningStat {
 public:
  void push(double x) noexcept;
  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

}  // namespace mcmcpar::analysis
