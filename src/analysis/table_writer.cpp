#include "analysis/table_writer.hpp"

#include <algorithm>
#include <cassert>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace mcmcpar::analysis {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::addRow(std::vector<std::string> row) {
  assert(row.size() == header_.size());
  rows_.push_back(std::move(row));
}

std::string Table::num(double value, int precision) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(precision) << value;
  return out.str();
}

std::string Table::sci(double value, int precision) {
  std::ostringstream out;
  out << std::scientific << std::setprecision(precision) << value;
  return out.str();
}

std::string Table::integer(long long value) { return std::to_string(value); }

void Table::print(std::ostream& out) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  const auto printRow = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << std::left << std::setw(static_cast<int>(width[c]) + 2) << row[c];
    }
    out << '\n';
  };
  printRow(header_);
  std::string rule;
  for (std::size_t c = 0; c < header_.size(); ++c) {
    rule.append(width[c] + 2, '-');
  }
  out << rule << '\n';
  for (const auto& row : rows_) printRow(row);
}

void Table::printCsv(std::ostream& out) const {
  const auto cell = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string quoted = "\"";
    for (char ch : s) {
      if (ch == '"') quoted += '"';
      quoted += ch;
    }
    quoted += '"';
    return quoted;
  };
  const auto printRow = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) out << ',';
      out << cell(row[c]);
    }
    out << '\n';
  };
  printRow(header_);
  for (const auto& row : rows_) printRow(row);
}

}  // namespace mcmcpar::analysis
