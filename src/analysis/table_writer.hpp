#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace mcmcpar::analysis {

/// Console/CSV table builder for the benchmark harness — all paper tables
/// and figure series are printed through this so output stays uniform and
/// greppable.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Append a row (must have header-many cells).
  void addRow(std::vector<std::string> row);

  /// Helpers for numeric cells.
  [[nodiscard]] static std::string num(double value, int precision = 4);
  [[nodiscard]] static std::string sci(double value, int precision = 2);
  [[nodiscard]] static std::string integer(long long value);

  /// Fixed-width aligned text table.
  void print(std::ostream& out) const;

  /// RFC-4180-ish CSV (quotes only when needed).
  void printCsv(std::ostream& out) const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace mcmcpar::analysis
