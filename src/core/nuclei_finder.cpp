#include "core/nuclei_finder.hpp"

#include <cmath>

#include "mcmc/sampler.hpp"
#include "par/virtual_clock.hpp"
#include "partition/prior_estimation.hpp"

namespace mcmcpar::core {

NucleiFinder::NucleiFinder(FinderOptions options)
    : options_(std::move(options)) {}

FinderResult NucleiFinder::find(const img::ImageF& filtered) const {
  FinderResult result;

  model::PriorParams prior = options_.prior;
  if (options_.estimateCount) {
    const auto estimate = partition::estimateCount(filtered, options_.theta,
                                                   prior.radiusMean);
    prior.expectedCount = std::max(estimate.expectedCount, 0.5);
  }

  switch (options_.method) {
    case FinderMethod::Sequential: {
      model::ModelState state(filtered, prior, options_.likelihood);
      rng::Stream stream(options_.seed);
      state.initialiseRandom(
          static_cast<std::size_t>(std::llround(prior.expectedCount)), stream);
      const mcmc::MoveRegistry registry =
          mcmc::MoveRegistry::caseStudy(options_.moves);
      mcmc::Sampler sampler(state, registry, stream);
      const par::WallTimer timer;
      sampler.run(options_.iterations,
                  std::max<std::uint64_t>(1, options_.iterations / 200));
      result.seconds = timer.seconds();
      result.circles = state.config().snapshot();
      result.logPosterior = state.logPosterior();
      result.diagnostics = sampler.diagnostics();
      break;
    }
    case FinderMethod::Periodic: {
      model::ModelState state(filtered, prior, options_.likelihood);
      rng::Stream stream(options_.seed);
      state.initialiseRandom(
          static_cast<std::size_t>(std::llround(prior.expectedCount)), stream);
      const mcmc::MoveRegistry registry =
          mcmc::MoveRegistry::caseStudy(options_.moves);
      PeriodicParams pp = options_.periodic;
      pp.totalIterations = options_.iterations;
      PeriodicSampler periodic(state, registry, pp, options_.seed);
      const PeriodicReport report = periodic.run();
      result.seconds = report.wallSeconds;
      result.circles = state.config().snapshot();
      result.logPosterior = state.logPosterior();
      result.diagnostics = report.diagnostics;
      break;
    }
    case FinderMethod::IntelligentPartition: {
      PipelineParams pl = options_.pipeline;
      pl.prior = prior;
      pl.likelihood = options_.likelihood;
      pl.moves = options_.moves;
      pl.theta = options_.theta;
      pl.seed = options_.seed;
      const par::WallTimer timer;
      PipelineReport report = runIntelligentPipeline(filtered, pl);
      result.seconds = timer.seconds();
      result.circles = std::move(report.merged);
      break;
    }
    case FinderMethod::BlindPartition: {
      PipelineParams pl = options_.pipeline;
      pl.prior = prior;
      pl.likelihood = options_.likelihood;
      pl.moves = options_.moves;
      pl.theta = options_.theta;
      pl.seed = options_.seed;
      const par::WallTimer timer;
      PipelineReport report = runBlindPipeline(filtered, pl);
      result.seconds = timer.seconds();
      result.circles = std::move(report.merged);
      break;
    }
  }
  return result;
}

FinderResult NucleiFinder::findInRgb(const img::ImageRgb& image,
                                     const img::StainWeights& stain) const {
  return find(img::stainEmphasis(image, stain));
}

}  // namespace mcmcpar::core
