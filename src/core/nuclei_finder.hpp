#pragma once

#include <cstdint>
#include <vector>

#include "core/periodic_sampler.hpp"
#include "core/pipeline.hpp"
#include "img/filters.hpp"
#include "img/image.hpp"
#include "mcmc/diagnostics.hpp"
#include "model/circle.hpp"

namespace mcmcpar::core {

/// Which of the paper's four processing strategies to use.
enum class FinderMethod : std::uint8_t {
  Sequential,            ///< conventional RJ-MCMC (§II-III baseline)
  Periodic,              ///< periodic partitioning (§V)
  IntelligentPartition,  ///< pre-processor cuts + per-partition MCMC (§VIII)
  BlindPartition,        ///< overlapping grid + merge heuristics (§VIII)
};

/// One-stop configuration for NucleiFinder.
struct FinderOptions {
  FinderMethod method = FinderMethod::Sequential;

  model::PriorParams prior;
  model::LikelihoodParams likelihood;
  mcmc::MoveSetParams moves;

  /// Iterations for Sequential / Periodic runs.
  std::uint64_t iterations = 50000;

  /// Estimate the expected artifact count from the image with eq. 5 before
  /// sampling (overrides prior.expectedCount).
  bool estimateCount = true;
  float theta = 0.5f;

  /// Extra knobs for the specific methods.
  PeriodicParams periodic;
  PipelineParams pipeline;

  std::uint64_t seed = 1;
};

/// Result of a find() call.
struct FinderResult {
  std::vector<model::Circle> circles;
  double seconds = 0.0;            ///< wall time of the sampling stage
  double logPosterior = 0.0;       ///< final log posterior (whole-image
                                   ///< methods; 0 for partition pipelines)
  mcmc::Diagnostics diagnostics;   ///< move statistics (where applicable)
};

/// The library façade: detect bright circular artifacts (stained cell
/// nuclei, latex beads, ...) in a filtered intensity image using any of the
/// paper's strategies. See examples/quickstart.cpp.
class NucleiFinder {
 public:
  explicit NucleiFinder(FinderOptions options);

  /// Run on a stain-emphasised intensity image ([0,1] floats).
  [[nodiscard]] FinderResult find(const img::ImageF& filtered) const;

  /// Convenience: apply the stain-emphasis filter to an RGB micrograph
  /// first (§III: "first the input image is filtered to emphasise the
  /// colour of interest").
  [[nodiscard]] FinderResult findInRgb(
      const img::ImageRgb& image, const img::StainWeights& stain = {}) const;

  [[nodiscard]] const FinderOptions& options() const noexcept { return options_; }

 private:
  FinderOptions options_;
};

}  // namespace mcmcpar::core
