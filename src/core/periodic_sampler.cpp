#include "core/periodic_sampler.hpp"

#include <cassert>
#include <cmath>
#include <vector>

#include "core/split_merge.hpp"
#include "mcmc/sampler.hpp"
#include "par/concurrency.hpp"
#include "par/omp_support.hpp"
#include "par/task_scheduler.hpp"
#include "par/virtual_clock.hpp"
#include "partition/grid.hpp"
#include "partition/legality.hpp"
#include "spec/speculative.hpp"

namespace mcmcpar::core {

namespace {

/// Worker-side outcome of one partition's slice of a local phase.
struct SessionResult {
  double logPostDelta = 0.0;
  double coveredGainDelta = 0.0;
  mcmc::Diagnostics diagnostics;
  std::uint64_t iterations = 0;
  double seconds = 0.0;
};

/// Run `iterations` local moves against the shared state restricted to one
/// partition, accumulating the scalar state-cache deltas locally so that
/// concurrent sessions never write shared scalars (see DESIGN.md §5).
SessionResult runLocalSessionShared(model::ModelState& state,
                                    const mcmc::MoveRegistry& registry,
                                    const mcmc::RegionConstraint& rc,
                                    const std::vector<model::CircleId>& cand,
                                    std::uint64_t iterations,
                                    rng::Stream stream) {
  SessionResult result;
  const par::WallTimer timer;
  const mcmc::SelectionContext ctx{&cand, &rc};
  model::PixelLikelihood& lik = state.likelihoodMutable();
  model::Configuration& cfg = state.configMutable();

  for (std::uint64_t i = 0; i < iterations; ++i) {
    const mcmc::Move& move = registry.sampleLocal(stream);
    const mcmc::PendingMove pending = move.propose(state, ctx, stream);
    bool accepted = false;
    if (pending.valid()) {
      assert(pending.op == mcmc::PendingMove::Op::Replace &&
             "local moves must be dimension-preserving replaces");
      bool take = pending.logAlpha >= 0.0;
      if (!take) {
        const double u = stream.uniform();
        take = u > 0.0 && std::log(u) < pending.logAlpha;
      }
      if (take) {
        double delta = lik.applyRemove(cfg.get(pending.id0));
        delta += lik.applyAdd(pending.c0);
        result.coveredGainDelta += delta;
        result.logPostDelta += pending.logPosteriorDelta;
        cfg.replace(pending.id0, pending.c0);
        accepted = true;
      }
    }
    result.diagnostics.record(move.name(), accepted);
  }
  result.iterations = iterations;
  result.seconds = timer.seconds();
  return result;
}

/// Run one partition's slice against a detached sub-state.
SessionResult runLocalSessionSub(SubState& sub,
                                 const mcmc::MoveRegistry& registry,
                                 std::uint64_t iterations,
                                 rng::Stream stream) {
  SessionResult result;
  const par::WallTimer timer;
  const mcmc::SelectionContext ctx{&sub.candidates, &sub.constraint};
  for (std::uint64_t i = 0; i < iterations; ++i) {
    const mcmc::Move& move = registry.sampleLocal(stream);
    const mcmc::PendingMove pending = move.propose(*sub.state, ctx, stream);
    const bool accepted = mcmc::acceptAndCommit(*sub.state, pending, stream);
    result.diagnostics.record(move.name(), accepted);
  }
  result.iterations = iterations;
  result.seconds = timer.seconds();
  return result;
}

}  // namespace

rng::Stream partitionStream(const rng::Stream& master, std::uint64_t phase,
                            std::uint64_t partition) noexcept {
  return master.derive(phase).derive(partition + 1);
}

struct PeriodicSampler::Impl {
  model::ModelState& state;
  const mcmc::MoveRegistry& registry;
  PeriodicParams params;
  rng::Stream master;
  std::unique_ptr<par::ThreadPool> pool;
  std::unique_ptr<spec::SpeculativeExecutor> specExec;
  std::uint64_t phaseCounter = 0;

  Impl(model::ModelState& s, const mcmc::MoveRegistry& r,
       const PeriodicParams& p, std::uint64_t seed)
      : state(s), registry(r), params(p), master(seed) {
    if (params.executor == LocalExecutor::InPlacePool ||
        params.executor == LocalExecutor::SplitMergePool) {
      pool = par::makeThreadPool(params.threads);
    }
    if (params.specLanesGlobal > 1) {
      specExec = std::make_unique<spec::SpeculativeExecutor>(
          state, registry, params.specLanesGlobal,
          master.derive(0xC0FFEE).bits(), pool.get());
    }
  }

  [[nodiscard]] double effectiveMargin() const {
    if (params.margin >= 0.0) return params.margin;
    switch (params.executor) {
      case LocalExecutor::InPlacePool:
      case LocalExecutor::InPlaceOmp:
        return partition::inPlaceSafetyMargin(state);
      default:
        return 0.0;
    }
  }

  [[nodiscard]] std::vector<model::Bounds> makePartitions(rng::Stream& stream) const {
    const model::Bounds domain = state.bounds();
    if (params.layout == PartitionLayout::RandomCross) {
      if (!params.randomiseLayout) {
        return partition::crossPartitions(domain,
                                          (domain.x0 + domain.x1) / 2.0,
                                          (domain.y0 + domain.y1) / 2.0);
      }
      return partition::randomCrossPartitions(domain, stream);
    }
    partition::GridSpec spec;
    spec.spacingX = params.gridSpacingX > 0.0 ? params.gridSpacingX
                                              : domain.width() / 2.0;
    spec.spacingY = params.gridSpacingY > 0.0 ? params.gridSpacingY
                                              : domain.height() / 2.0;
    if (!params.randomiseLayout) {
      return partition::gridPartitions(domain, spec);
    }
    return partition::gridPartitions(domain, spec.withRandomOffset(stream));
  }

  /// One global phase of `zg` Mg iterations. Returns real seconds; adds
  /// virtual seconds to vclock.
  void runGlobalPhase(std::uint64_t zg, rng::Stream& stream,
                      PeriodicReport& report, par::VirtualClock& vclock) {
    const par::WallTimer timer;
    if (specExec) {
      const std::uint64_t roundsBefore = specExec->stats().rounds;
      const std::uint64_t propsBefore = specExec->stats().proposalsEvaluated;
      const std::uint64_t itersBefore = specExec->stats().logicalIterations;
      specExec->run(zg, spec::MovePhase::GlobalOnly);
      const double seconds = timer.seconds();
      const double rounds =
          static_cast<double>(specExec->stats().rounds - roundsBefore);
      const double props = static_cast<double>(
          specExec->stats().proposalsEvaluated - propsBefore);
      // An n-lane SMP pays one proposal per round; serial evaluation paid
      // `props` of them in `seconds`.
      vclock.advance(props > 0.0 ? seconds * rounds / props : seconds);
      report.globalIterations += specExec->stats().logicalIterations - itersBefore;
      report.globalSeconds += seconds;
      return;
    }
    const mcmc::SelectionContext ctx{};
    for (std::uint64_t i = 0; i < zg; ++i) {
      const mcmc::Move& move = registry.sampleGlobal(stream);
      const mcmc::StepResult r = mcmc::attemptMove(state, move, ctx, stream);
      report.diagnostics.record(move.name(), r.accepted);
    }
    const double seconds = timer.seconds();
    report.globalIterations += zg;
    report.globalSeconds += seconds;
    vclock.advance(seconds);
  }

  /// One local phase of `zl` Ml iterations spread over fresh partitions.
  void runLocalPhase(std::uint64_t zl, rng::Stream& phaseStream,
                     PeriodicReport& report, par::VirtualClock& vclock) {
    const par::WallTimer phaseTimer;
    const double margin = effectiveMargin();
    const auto partitions = makePartitions(phaseStream);

    // Build constraints + modifiable candidate lists; allocate iterations
    // proportionally to modifiable features (§V).
    std::vector<mcmc::RegionConstraint> constraints;
    std::vector<std::vector<model::CircleId>> candidates;
    std::vector<std::size_t> counts;
    constraints.reserve(partitions.size());
    for (const model::Bounds& b : partitions) {
      constraints.push_back(mcmc::RegionConstraint{b, margin});
      candidates.push_back(
          partition::modifiableCircles(state, constraints.back()));
      counts.push_back(candidates.back().size());
      report.modifiableTotal += candidates.back().size();
    }
    std::vector<std::size_t> shareBasis = counts;
    if (params.allocation == PeriodicParams::Allocation::UniformPerPartition) {
      // Naive equal shares — but a partition with nothing to modify cannot
      // consume iterations, so zero-count partitions still get nothing.
      for (std::size_t& c : shareBasis) c = c > 0 ? 1 : 0;
    }
    const auto allocation = partition::allocateIterations(zl, shareBasis);

    std::vector<rng::Stream> streams;
    streams.reserve(partitions.size());
    for (std::size_t i = 0; i < partitions.size(); ++i) {
      streams.push_back(partitionStream(master, phaseCounter, i));
    }

    const double setupSeconds = phaseTimer.seconds();
    report.overheadSeconds += setupSeconds;
    vclock.advance(setupSeconds);

    std::vector<SessionResult> results(partitions.size());
    const par::WallTimer bodyTimer;
    double splitMergeOverhead = 0.0;

    switch (params.executor) {
      case LocalExecutor::Serial: {
        for (std::size_t i = 0; i < partitions.size(); ++i) {
          if (allocation[i] == 0) continue;
          results[i] =
              runLocalSessionShared(state, registry, constraints[i],
                                    candidates[i], allocation[i], streams[i]);
        }
        break;
      }
      case LocalExecutor::InPlacePool: {
        pool->parallelFor(partitions.size(), [&](std::size_t i) {
          if (allocation[i] == 0) return;
          results[i] =
              runLocalSessionShared(state, registry, constraints[i],
                                    candidates[i], allocation[i], streams[i]);
        });
        break;
      }
      case LocalExecutor::InPlaceOmp: {
        par::ompParallelFor(
            partitions.size(),
            [&](std::size_t i) {
              if (allocation[i] == 0) return;
              results[i] = runLocalSessionShared(state, registry,
                                                 constraints[i], candidates[i],
                                                 allocation[i], streams[i]);
            },
            params.threads);
        break;
      }
      case LocalExecutor::SplitMergeSerial:
      case LocalExecutor::SplitMergePool: {
        // Split: crop + copy each partition (sequential master work).
        const par::WallTimer splitTimer;
        std::vector<SubState> subs;
        std::vector<std::size_t> active;
        subs.reserve(partitions.size());
        for (std::size_t i = 0; i < partitions.size(); ++i) {
          if (allocation[i] == 0) continue;
          subs.push_back(buildSubState(
              state,
              partition::roundToPixels(partitions[i],
                                       static_cast<int>(state.bounds().x1),
                                       static_cast<int>(state.bounds().y1)),
              margin));
          active.push_back(i);
        }
        const double splitSeconds = splitTimer.seconds();

        if (params.executor == LocalExecutor::SplitMergePool) {
          pool->parallelFor(subs.size(), [&](std::size_t k) {
            results[active[k]] = runLocalSessionSub(
                subs[k], registry, allocation[active[k]], streams[active[k]]);
          });
        } else {
          for (std::size_t k = 0; k < subs.size(); ++k) {
            results[active[k]] = runLocalSessionSub(
                subs[k], registry, allocation[active[k]], streams[active[k]]);
          }
        }

        // Merge back (sequential master work).
        const par::WallTimer mergeTimer;
        for (SubState& sub : subs) mergeSubState(state, sub);
        splitMergeOverhead = splitSeconds + mergeTimer.seconds();
        break;
      }
    }

    // Fold worker deltas (shared-state sessions only; split/merge folded
    // through mergeSubState already).
    const bool sharedState = params.executor == LocalExecutor::Serial ||
                             params.executor == LocalExecutor::InPlacePool ||
                             params.executor == LocalExecutor::InPlaceOmp;
    std::vector<double> taskSeconds;
    taskSeconds.reserve(results.size());
    for (SessionResult& r : results) {
      if (r.iterations == 0) continue;
      if (sharedState) {
        state.adjustLogPosterior(r.logPostDelta);
        state.likelihoodMutable().adjustCoveredGain(r.coveredGainDelta);
      }
      report.diagnostics.merge(r.diagnostics);
      report.localIterations += r.iterations;
      ++report.partitionsProcessed;
      taskSeconds.push_back(r.seconds);
    }

    const double bodySeconds = bodyTimer.seconds();
    report.localSeconds += bodySeconds;
    report.overheadSeconds += splitMergeOverhead;

    // Virtual accounting: partitions run concurrently on virtualThreads;
    // split/merge and setup remain sequential master work.
    if (params.virtualThreads > 0) {
      vclock.advance(splitMergeOverhead);
      vclock.advanceParallel(taskSeconds, params.virtualThreads);
    } else {
      vclock.advance(bodySeconds);
    }
  }

  PeriodicReport run(const mcmc::RunHooks& hooks) {
    PeriodicReport report;
    par::VirtualClock vclock;
    const par::WallTimer wall;

    const double qg = registry.qGlobal();
    const std::uint64_t zg = std::max<std::uint64_t>(1, params.globalPhaseIterations);
    const std::uint64_t zl = static_cast<std::uint64_t>(
        std::llround(static_cast<double>(zg) * (1.0 - qg) / qg));

    rng::Stream phaseStream = master.derive(0xFEED);
    std::uint64_t done = 0;
    std::uint64_t nextTrace = params.traceInterval;
    while (done < params.totalIterations) {
      if (hooks.cancelled()) {
        report.cancelled = true;
        break;
      }
      const std::uint64_t beforeGlobal = report.globalIterations;
      runGlobalPhase(zg, phaseStream, report, vclock);
      done += report.globalIterations - beforeGlobal;
      if (done >= params.totalIterations) {
        ++report.phases;
        ++phaseCounter;
        break;
      }

      const std::uint64_t thisLocal =
          std::min<std::uint64_t>(zl, params.totalIterations - done);
      if (thisLocal > 0) {
        const std::uint64_t beforeLocal = report.localIterations;
        runLocalPhase(thisLocal, phaseStream, report, vclock);
        done += report.localIterations - beforeLocal;
      }

      ++report.phases;
      ++phaseCounter;
      hooks.progress(done, params.totalIterations, "periodic-phase");

      if (params.traceInterval != 0 && done >= nextTrace) {
        report.diagnostics.tracePoint(done, state.logPosterior(),
                                      state.config().size());
        hooks.trace(report.diagnostics.trace().back());
        nextTrace += params.traceInterval;
      }
      if (params.resyncPhaseInterval != 0 &&
          report.phases % params.resyncPhaseInterval == 0) {
        state.resynchronise();
      }
    }

    state.resynchronise();
    if (specExec) report.diagnostics.merge(specExec->diagnostics());
    report.wallSeconds = wall.seconds();
    report.virtualSeconds = vclock.now();
    return report;
  }
};

PeriodicSampler::PeriodicSampler(model::ModelState& state,
                                 const mcmc::MoveRegistry& registry,
                                 const PeriodicParams& params,
                                 std::uint64_t seed)
    : impl_(std::make_unique<Impl>(state, registry, params, seed)) {}

PeriodicSampler::~PeriodicSampler() = default;

PeriodicReport PeriodicSampler::run(const mcmc::RunHooks& hooks) {
  return impl_->run(hooks);
}

}  // namespace mcmcpar::core
