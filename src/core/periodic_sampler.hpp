#pragma once

#include <cstdint>
#include <memory>

#include "mcmc/diagnostics.hpp"
#include "mcmc/move_registry.hpp"
#include "mcmc/run_hooks.hpp"
#include "model/posterior.hpp"
#include "par/thread_pool.hpp"
#include "rng/stream.hpp"

namespace mcmcpar::core {

/// How the local (Ml) phases execute their partitions.
enum class LocalExecutor : std::uint8_t {
  /// One after another on the calling thread. Reference semantics; also the
  /// basis for virtual-time accounting (per-partition costs are measured
  /// undisturbed).
  Serial,
  /// Shared-memory concurrency on the library ThreadPool; workers mutate the
  /// shared state under the legality margin (DESIGN.md §5) and accumulate
  /// scalar deltas thread-locally.
  InPlacePool,
  /// As InPlacePool but on OpenMP threads.
  InPlaceOmp,
  /// Deep-copied sub-states (crop + copy, run, merge back) executed
  /// serially: the faithful "duplicate ... and merge" path of §VII whose
  /// overhead Fig. 2 measures; required for virtual-time cluster modelling.
  SplitMergeSerial,
  /// Sub-states executed on the ThreadPool.
  SplitMergePool,
};

/// How partitions are laid out each local phase.
enum class PartitionLayout : std::uint8_t {
  /// §VII: four rectangles meeting at a uniformly random interior cross
  /// point (grid spacing larger than the image).
  RandomCross,
  /// §V: uniform grid of the given spacing with per-phase random offsets.
  UniformGrid,
};

/// Parameters of the periodic-partitioning sampler.
struct PeriodicParams {
  std::uint64_t totalIterations = 100000;  ///< N (global + local combined)
  /// z: Mg iterations per global phase. The local phase then performs
  /// z (1-qg)/qg iterations so long-run move probabilities are unchanged.
  std::uint64_t globalPhaseIterations = 130;

  PartitionLayout layout = PartitionLayout::RandomCross;
  double gridSpacingX = 0.0;  ///< UniformGrid spacing (0 = half the domain)
  double gridSpacingY = 0.0;

  /// Legality margin; negative = automatic (safety margin for in-place
  /// executors, 0 for split/merge, 0 for serial).
  double margin = -1.0;

  LocalExecutor executor = LocalExecutor::Serial;
  unsigned threads = 0;  ///< real worker threads (0 = hardware)

  /// When > 0, also account a virtual wall clock for an SMP with this many
  /// threads (requires a serial executor so per-partition costs can be
  /// measured; see DESIGN.md §2). Adds makespan(partition costs) per local
  /// phase plus the measured split/merge overhead.
  unsigned virtualThreads = 0;

  /// Speculative lanes during global phases (eq. 3); 1 disables.
  unsigned specLanesGlobal = 1;

  /// Ablation: when false, the partition layout is fixed across phases
  /// (centre cross / zero grid offset) instead of re-randomised — §V warns
  /// this imposes persistent boundary bias; bench_ablations measures it.
  bool randomiseLayout = true;

  /// Ablation: how local iterations are divided among partitions.
  enum class Allocation : std::uint8_t {
    ProportionalToFeatures,  ///< the paper's rule (modifiable-count shares)
    UniformPerPartition,     ///< naive equal shares
  };
  Allocation allocation = Allocation::ProportionalToFeatures;

  std::uint64_t traceInterval = 0;       ///< posterior trace cadence (0=off)
  std::uint64_t resyncPhaseInterval = 64;  ///< drift-cancel cadence in phases
};

/// Outcome of a periodic run.
struct PeriodicReport {
  mcmc::Diagnostics diagnostics;
  std::uint64_t globalIterations = 0;
  std::uint64_t localIterations = 0;
  std::uint64_t phases = 0;             ///< number of global/local cycles
  double wallSeconds = 0.0;             ///< real elapsed time of run()
  double globalSeconds = 0.0;           ///< real time inside global phases
  double localSeconds = 0.0;            ///< real time inside local phases
  double overheadSeconds = 0.0;         ///< split/merge + bookkeeping
  double virtualSeconds = 0.0;          ///< modeled SMP wall time (if enabled)
  std::uint64_t partitionsProcessed = 0;
  std::uint64_t modifiableTotal = 0;    ///< sum over phases of modifiable counts
  bool cancelled = false;               ///< stopped early via RunHooks
};

/// The per-(phase, partition) RNG stream used by the local phases.
///
/// Two-level derivation: the phase tag and the partition tag are mixed in
/// separate derive() steps, so no (phase, partition) pair ever shares a
/// stream with another — unlike the previous flat `phase * 0x10000 + i + 1`
/// tag, which collided as soon as a phase had 65535+ partitions (e.g.
/// (phase 0, partition 65536) vs (phase 1, partition 0)).
[[nodiscard]] rng::Stream partitionStream(const rng::Stream& master,
                                          std::uint64_t phase,
                                          std::uint64_t partition) noexcept;

/// The paper's periodic-partitioning MCMC driver (§V): alternates
/// sequential global-move phases with partition-parallel local-move phases,
/// re-randomising the partition grid every cycle and allocating local
/// iterations to partitions in proportion to their modifiable features.
class PeriodicSampler {
 public:
  PeriodicSampler(model::ModelState& state, const mcmc::MoveRegistry& registry,
                  const PeriodicParams& params, std::uint64_t seed);
  ~PeriodicSampler();

  PeriodicSampler(const PeriodicSampler&) = delete;
  PeriodicSampler& operator=(const PeriodicSampler&) = delete;

  /// Run until totalIterations logical iterations have been performed.
  /// Cancellation is polled at phase boundaries; a cancelled run still
  /// resynchronises the state and returns a consistent partial report.
  PeriodicReport run(const mcmc::RunHooks& hooks = {});

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace mcmcpar::core
