#include "core/pipeline.hpp"

#include <algorithm>
#include <cmath>

#include "mcmc/convergence.hpp"
#include "mcmc/sampler.hpp"
#include "par/task_scheduler.hpp"
#include "par/virtual_clock.hpp"
#include "partition/prior_estimation.hpp"

namespace mcmcpar::core {

namespace {

/// Compute the §IX runtime summaries: unlimited processors (max over
/// partitions) and LPT load balancing onto `threads`.
void finaliseRuntimes(PipelineReport& report, unsigned threads) {
  std::vector<double> costs;
  costs.reserve(report.partitions.size());
  double longest = 0.0;
  for (const PartitionRun& p : report.partitions) {
    costs.push_back(p.runtimeToConverge);
    longest = std::max(longest, p.runtimeToConverge);
  }
  report.loadBalancedThreads = threads;
  report.parallelRuntime =
      report.partitionerSeconds + longest + report.mergeSeconds;
  const auto schedule = par::lptSchedule(costs, threads);
  report.loadBalancedRuntime = report.partitionerSeconds +
                               schedule.makespan(costs) + report.mergeSeconds;
}

}  // namespace

PartitionRun runPartitionMcmc(const img::ImageF& filtered,
                              const partition::IRect& rect,
                              const PipelineParams& params, std::uint64_t seed,
                              const mcmc::RunHooks& hooks) {
  PartitionRun run;
  run.rect = rect;
  run.relativeArea =
      static_cast<double>(rect.area()) /
      (static_cast<double>(filtered.width()) * filtered.height());

  // Eq. 5 prior re-estimation on this partition's own pixels.
  const auto estimate = partition::estimateCount(
      filtered, params.theta, params.prior.radiusMean, rect);
  run.estimatedCount = estimate.expectedCount;

  model::PriorParams prior = params.prior;
  prior.expectedCount = std::max(estimate.expectedCount, 0.5);

  const img::ImageF crop = filtered.crop(rect.x0, rect.y0, rect.w, rect.h);
  model::ModelState state(crop, prior, params.likelihood, rect.x0, rect.y0);

  rng::Stream stream(seed);
  state.initialiseRandom(
      static_cast<std::size_t>(std::llround(prior.expectedCount)), stream);

  const mcmc::MoveRegistry registry = mcmc::MoveRegistry::caseStudy(params.moves);

  run.iterations =
      params.iterationsBase +
      params.iterationsPerCircle *
          static_cast<std::uint64_t>(std::llround(prior.expectedCount));
  if (params.iterationsCap != 0) {
    run.iterations = std::min(run.iterations, params.iterationsCap);
  }
  const std::uint64_t traceEvery = std::max<std::uint64_t>(
      1, run.iterations / std::max<std::size_t>(params.tracePoints, 2));

  mcmc::Sampler sampler(state, registry, stream);
  const par::WallTimer timer;
  run.iterations = sampler.run(run.iterations, traceEvery, hooks);
  run.seconds = timer.seconds();
  run.timePerIteration =
      run.seconds / static_cast<double>(std::max<std::uint64_t>(run.iterations, 1));

  if (const auto plateau =
          mcmc::iterationsToPlateau(sampler.diagnostics().trace())) {
    run.itersToConverge = plateau->iteration;
    run.runtimeToConverge =
        static_cast<double>(plateau->iteration) * run.timePerIteration;
  } else {
    run.runtimeToConverge = run.seconds;
  }

  run.circles = state.config().snapshot();
  run.finalLogPosterior = state.logPosterior();
  run.diagnostics = sampler.diagnostics();
  return run;
}

PartitionRun runWholeImage(const img::ImageF& filtered,
                           const PipelineParams& params) {
  return runPartitionMcmc(
      filtered, partition::IRect{0, 0, filtered.width(), filtered.height()},
      params, params.seed);
}

PipelineReport runIntelligentPipeline(const img::ImageF& filtered,
                                      const PipelineParams& params,
                                      const mcmc::RunHooks& hooks) {
  PipelineReport report;

  const par::WallTimer cutTimer;
  const auto cuts = partition::intelligentPartition(filtered, params.intelligent);
  report.partitionerSeconds = cutTimer.seconds();

  for (std::size_t i = 0; i < cuts.partitions.size(); ++i) {
    if (hooks.cancelled()) {
      report.cancelled = true;
      break;
    }
    report.partitions.push_back(runPartitionMcmc(
        filtered, cuts.partitions[i], params, params.seed + 101 * (i + 1),
        hooks));
    hooks.progress(i + 1, cuts.partitions.size(), "partition");
  }
  // Catch a cancellation that truncated the final partition's sampler run
  // (the loop above would otherwise exit without polling again).
  if (hooks.cancelled()) report.cancelled = true;

  // Intelligent cuts cross no artifact, so recombination is concatenation.
  const par::WallTimer mergeTimer;
  for (const PartitionRun& p : report.partitions) {
    report.merged.insert(report.merged.end(), p.circles.begin(),
                         p.circles.end());
  }
  report.mergeSeconds = mergeTimer.seconds();

  finaliseRuntimes(report, params.loadBalancedThreads);
  return report;
}

PipelineReport runBlindPipeline(const img::ImageF& filtered,
                                const PipelineParams& params,
                                const mcmc::RunHooks& hooks) {
  PipelineReport report;

  partition::BlindParams blind = params.blind;
  if (blind.overlapMargin <= 0.0) {
    blind.overlapMargin = 1.1 * params.prior.radiusMean;  // the §IX choice
  }
  const par::WallTimer setupTimer;
  const auto parts =
      partition::makeBlindPartitions(filtered.width(), filtered.height(), blind);
  report.partitionerSeconds = setupTimer.seconds();

  // Sized to all partitions up front: a cancelled run leaves empty tails,
  // which the merge treats as partitions that found nothing.
  std::vector<std::vector<model::Circle>> perPartition(parts.size());
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (hooks.cancelled()) {
      report.cancelled = true;
      break;
    }
    // MCMC sees the expanded rectangle so boundary artifacts can be fully
    // examined (fig. 4 top-left).
    report.partitions.push_back(runPartitionMcmc(
        filtered, parts[i].expanded, params, params.seed + 211 * (i + 1),
        hooks));
    perPartition[i] = report.partitions.back().circles;
    hooks.progress(i + 1, parts.size(), "partition");
  }
  // Catch a cancellation that truncated the final partition's sampler run
  // (the loop above would otherwise exit without polling again).
  if (hooks.cancelled()) report.cancelled = true;

  const par::WallTimer mergeTimer;
  report.merged =
      partition::mergeBlindResults(parts, perPartition, blind, &report.mergeStats);
  report.mergeSeconds = mergeTimer.seconds();

  finaliseRuntimes(report, params.loadBalancedThreads);
  return report;
}

}  // namespace mcmcpar::core
