#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "img/image.hpp"
#include "mcmc/diagnostics.hpp"
#include "mcmc/move_registry.hpp"
#include "mcmc/run_hooks.hpp"
#include "model/posterior.hpp"
#include "partition/blind.hpp"
#include "partition/intelligent.hpp"

namespace mcmcpar::core {

/// Parameters shared by the image-partitioning pipelines (§VIII): the model
/// (prior/likelihood/moves), the eq. 5 threshold, and the iteration budget
/// rule. Per-partition expected counts are always re-estimated from the
/// partition's own pixels (the paper's recommended mechanism).
struct PipelineParams {
  model::PriorParams prior;
  model::LikelihoodParams likelihood;
  mcmc::MoveSetParams moves;

  float theta = 0.5f;  ///< eq. 5 threshold

  /// Iteration budget for a (sub)image: base + perCircle * estimatedCount.
  /// Partitions with fewer artifacts and less area converge in fewer
  /// iterations — this is where the §VIII speedup comes from.
  std::uint64_t iterationsBase = 2000;
  std::uint64_t iterationsPerCircle = 600;

  /// Hard ceiling on any single (sub)image budget (0 = none); lets a caller
  /// bound pipeline cost with one knob regardless of estimated counts.
  std::uint64_t iterationsCap = 0;

  /// Processor count for the LPT load-balanced runtime model (§IX).
  unsigned loadBalancedThreads = 2;

  /// Trace cadence for convergence detection (points per run).
  std::size_t tracePoints = 200;

  std::uint64_t seed = 1;

  partition::IntelligentParams intelligent;
  partition::BlindParams blind;
};

/// Outcome of MCMC on one partition (one row of Table I).
struct PartitionRun {
  partition::IRect rect;            ///< region handed to MCMC
  double relativeArea = 0.0;        ///< rect area / image area
  double estimatedCount = 0.0;      ///< eq. 5 on this rect
  double uniformShareCount = 0.0;   ///< naive area-proportional share
  std::uint64_t iterations = 0;
  double seconds = 0.0;             ///< measured sampling time
  double timePerIteration = 0.0;
  std::optional<std::uint64_t> itersToConverge;
  double runtimeToConverge = 0.0;   ///< itersToConverge * timePerIteration
  std::vector<model::Circle> circles;  ///< final model, global coordinates
  double finalLogPosterior = 0.0;
  mcmc::Diagnostics diagnostics;    ///< per-partition move stats + trace
};

/// End-to-end result of a partitioning pipeline.
struct PipelineReport {
  std::vector<PartitionRun> partitions;
  std::vector<model::Circle> merged;    ///< recombined whole-image model
  partition::BlindMergeStats mergeStats;  ///< blind only
  double partitionerSeconds = 0.0;  ///< pre-processor time (cuts/estimates)
  double mergeSeconds = 0.0;        ///< recombination time
  /// Wall time if every partition ran on its own processor: the longest
  /// single-partition runtime (§IX: "the longest time taken to process any
  /// of the partitions") plus partitioner and merge costs.
  double parallelRuntime = 0.0;
  /// Wall time with `loadBalancedThreads` processors and LPT scheduling.
  double loadBalancedRuntime = 0.0;
  unsigned loadBalancedThreads = 2;
  bool cancelled = false;           ///< stopped early via RunHooks
};

/// Run MCMC on one rectangular (sub)image with a re-estimated count prior;
/// the building block of both pipelines and of the whole-image baseline.
[[nodiscard]] PartitionRun runPartitionMcmc(const img::ImageF& filtered,
                                            const partition::IRect& rect,
                                            const PipelineParams& params,
                                            std::uint64_t seed,
                                            const mcmc::RunHooks& hooks = {});

/// Whole-image baseline (the Table I "whole" column).
[[nodiscard]] PartitionRun runWholeImage(const img::ImageF& filtered,
                                         const PipelineParams& params);

/// Intelligent partitioning (§VIII-IX): threshold-scan pre-processor cuts
/// the image along empty rows/columns, each partition runs independent
/// MCMC with its own estimated prior, and results are concatenated
/// (boundaries cross no artifact, so recombination is trivial).
/// Cancellation is polled between partitions (and inside each partition's
/// sampler); already-finished partitions stay in the report.
[[nodiscard]] PipelineReport runIntelligentPipeline(
    const img::ImageF& filtered, const PipelineParams& params,
    const mcmc::RunHooks& hooks = {});

/// Blind partitioning (§VIII-IX): a simple grid with overlap margin, MCMC
/// on each expanded partition, heuristic merge (fig. 4).
[[nodiscard]] PipelineReport runBlindPipeline(const img::ImageF& filtered,
                                              const PipelineParams& params,
                                              const mcmc::RunHooks& hooks = {});

}  // namespace mcmcpar::core
