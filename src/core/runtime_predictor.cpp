#include "core/runtime_predictor.hpp"

#include <algorithm>
#include <cmath>

namespace mcmcpar::core {

double predictSequentialSeconds(const PredictionInput& in) noexcept {
  const double n = static_cast<double>(in.iterations);
  return n * (in.qGlobal * in.tauGlobal + (1.0 - in.qGlobal) * in.tauLocal);
}

double predictPeriodicSeconds(const PredictionInput& in) noexcept {
  const double n = static_cast<double>(in.iterations);
  const double s = static_cast<double>(std::max(in.partitions, 1u));
  return n * in.qGlobal * in.tauGlobal +
         n * (1.0 - in.qGlobal) * in.tauLocal / s;
}

double speculativeSpeedup(double rejection, unsigned lanes) noexcept {
  const double p = std::clamp(rejection, 0.0, 1.0);
  const unsigned n = std::max(lanes, 1u);
  if (n == 1 || p <= 0.0) return 1.0;
  if (p >= 1.0) return static_cast<double>(n);
  return (1.0 - std::pow(p, static_cast<double>(n))) / (1.0 - p);
}

double predictPeriodicSpecGlobalSeconds(const PredictionInput& in) noexcept {
  const double n = static_cast<double>(in.iterations);
  const double s = static_cast<double>(std::max(in.partitions, 1u));
  const double globalTerm =
      n * in.qGlobal * in.tauGlobal /
      speculativeSpeedup(in.globalRejection, in.specLanesGlobal);
  return globalTerm + n * (1.0 - in.qGlobal) * in.tauLocal / s;
}

double predictClusterSeconds(const PredictionInput& in) noexcept {
  const double n = static_cast<double>(in.iterations);
  const double s = static_cast<double>(std::max(in.partitions, 1u));
  const double globalTerm =
      n * in.qGlobal * in.tauGlobal /
      speculativeSpeedup(in.globalRejection, in.specLanesLocal);
  const double localTerm =
      n * (1.0 - in.qGlobal) * in.tauLocal /
      (s * speculativeSpeedup(in.localRejection, in.specLanesLocal));
  return globalTerm + localTerm;
}

const CostCalibration& defaultCostCalibration() noexcept {
  static const CostCalibration calibration;
  return calibration;
}

double predictCostSeconds(std::uint64_t iterations, double activity,
                          const CostCalibration& calibration) noexcept {
  const double a = std::clamp(activity, 0.0, 1.0);
  return static_cast<double>(iterations) * calibration.secondsPerIteration *
         (1.0 + calibration.densityWeight * a);
}

double fig1RelativeRuntime(double qGlobal, unsigned processes) noexcept {
  // tauG == tauL cancels out of the ratio.
  const double s = static_cast<double>(std::max(processes, 1u));
  return qGlobal + (1.0 - qGlobal) / s;
}

std::vector<Fig1Point> fig1Series(unsigned processes, unsigned points) {
  std::vector<Fig1Point> series;
  points = std::max(points, 2u);
  series.reserve(points);
  for (unsigned i = 0; i < points; ++i) {
    const double qg = static_cast<double>(i) / static_cast<double>(points - 1);
    series.push_back(Fig1Point{qg, fig1RelativeRuntime(qg, processes)});
  }
  return series;
}

}  // namespace mcmcpar::core
