#pragma once

#include <cstdint>
#include <vector>

namespace mcmcpar::core {

/// Inputs of the §VI analytic runtime model.
struct PredictionInput {
  std::uint64_t iterations = 500000;  ///< N
  double qGlobal = 0.4;               ///< qg, probability a move is global
  double tauGlobal = 4e-5;            ///< mean seconds per Mg move
  double tauLocal = 4e-5;             ///< mean seconds per Ml move
  unsigned partitions = 4;            ///< s, partitions processed in parallel
  double globalRejection = 0.75;      ///< pgr (eq. 3-4)
  double localRejection = 0.75;       ///< plr (eq. 4)
  unsigned specLanesGlobal = 1;       ///< n / t: speculative lanes, Mg phases
  unsigned specLanesLocal = 1;        ///< t: speculative lanes, Ml phases
};

/// N (qg tauG + (1-qg) tauL): the sequential baseline.
[[nodiscard]] double predictSequentialSeconds(const PredictionInput& in) noexcept;

/// Eq. (2): N qg tauG + N (1-qg) tauL / s.
[[nodiscard]] double predictPeriodicSeconds(const PredictionInput& in) noexcept;

/// Eq. (3): eq. (2) with the global term divided by the speculative factor
/// (1 - pgr^n) / (1 - pgr) using n = specLanesGlobal.
[[nodiscard]] double predictPeriodicSpecGlobalSeconds(const PredictionInput& in) noexcept;

/// Eq. (4): the cluster formula — s machines of t threads each, speculation
/// in both phases:
///   N qg tauG (1-pgr)/(1-pgr^t) + N (1-qg) tauL (1-plr) / (s (1-plr^t)).
[[nodiscard]] double predictClusterSeconds(const PredictionInput& in) noexcept;

/// Speculative speedup factor (1 - p^n) / (1 - p) (>= 1).
[[nodiscard]] double speculativeSpeedup(double rejection, unsigned lanes) noexcept;

/// One point of the Fig. 1 family: predicted runtime as a fraction of the
/// sequential runtime for the given qg and process count (tauG == tauL).
[[nodiscard]] double fig1RelativeRuntime(double qGlobal, unsigned processes) noexcept;

/// A full Fig. 1 series: qg swept over [0, 1] in `points` steps.
struct Fig1Point {
  double qGlobal;
  double relativeRuntime;
};
[[nodiscard]] std::vector<Fig1Point> fig1Series(unsigned processes,
                                                unsigned points = 51);

}  // namespace mcmcpar::core
