#pragma once

#include <cstdint>
#include <vector>

namespace mcmcpar::core {

/// Inputs of the §VI analytic runtime model.
struct PredictionInput {
  std::uint64_t iterations = 500000;  ///< N
  double qGlobal = 0.4;               ///< qg, probability a move is global
  double tauGlobal = 4e-5;            ///< mean seconds per Mg move
  double tauLocal = 4e-5;             ///< mean seconds per Ml move
  unsigned partitions = 4;            ///< s, partitions processed in parallel
  double globalRejection = 0.75;      ///< pgr (eq. 3-4)
  double localRejection = 0.75;       ///< plr (eq. 4)
  unsigned specLanesGlobal = 1;       ///< n / t: speculative lanes, Mg phases
  unsigned specLanesLocal = 1;        ///< t: speculative lanes, Ml phases
};

/// N (qg tauG + (1-qg) tauL): the sequential baseline.
[[nodiscard]] double predictSequentialSeconds(const PredictionInput& in) noexcept;

/// Eq. (2): N qg tauG + N (1-qg) tauL / s.
[[nodiscard]] double predictPeriodicSeconds(const PredictionInput& in) noexcept;

/// Eq. (3): eq. (2) with the global term divided by the speculative factor
/// (1 - pgr^n) / (1 - pgr) using n = specLanesGlobal.
[[nodiscard]] double predictPeriodicSpecGlobalSeconds(const PredictionInput& in) noexcept;

/// Eq. (4): the cluster formula — s machines of t threads each, speculation
/// in both phases:
///   N qg tauG (1-pgr)/(1-pgr^t) + N (1-qg) tauL (1-plr) / (s (1-plr^t)).
[[nodiscard]] double predictClusterSeconds(const PredictionInput& in) noexcept;

/// Speculative speedup factor (1 - p^n) / (1 - p) (>= 1).
[[nodiscard]] double speculativeSpeedup(double rejection, unsigned lanes) noexcept;

/// Calibrated constants of the scheduling cost model: the §IX predictor
/// reduced to what admission and tiling decisions need — a per-iteration
/// time constant and the relative surcharge of content-dense regions.
///
/// `secondsPerIteration` is fitted from bench_micro-style measurements of
/// the serial strategy on a 512x512 scene (Release, reference hardware) and
/// committed here; tests/test_scheduling.cpp holds the predicted/measured
/// ratio inside a band so silent drift after kernel changes is caught. The
/// absolute value varies across machines and build types, but every
/// consumer (budget split, deficit-round-robin, hedge triggers) only
/// compares predictions against each other or against observed medians, so
/// the decisions survive a mis-scaled constant.
struct CostCalibration {
  double secondsPerIteration = 4e-5;  ///< tau of the §VI model (tauG==tauL)
  /// Relative extra cost per unit of content activity: a region at full
  /// activity (1.0) predicts (1 + densityWeight)x the work of an empty one
  /// of the same area — birth moves land there, discs overlap, spans grow.
  double densityWeight = 4.0;
};

/// The committed calibration (see CostCalibration).
[[nodiscard]] const CostCalibration& defaultCostCalibration() noexcept;

/// Predicted wall seconds for `iterations` chain iterations over content of
/// mean activity `activity` (clamped to [0, 1]; pass 0 when unknown):
///   iterations * secondsPerIteration * (1 + densityWeight * activity).
[[nodiscard]] double predictCostSeconds(
    std::uint64_t iterations, double activity,
    const CostCalibration& calibration = defaultCostCalibration()) noexcept;

/// One point of the Fig. 1 family: predicted runtime as a fraction of the
/// sequential runtime for the given qg and process count (tauG == tauL).
[[nodiscard]] double fig1RelativeRuntime(double qGlobal, unsigned processes) noexcept;

/// A full Fig. 1 series: qg swept over [0, 1] in `points` steps.
struct Fig1Point {
  double qGlobal;
  double relativeRuntime;
};
[[nodiscard]] std::vector<Fig1Point> fig1Series(unsigned processes,
                                                unsigned points = 51);

}  // namespace mcmcpar::core
