#include "core/split_merge.hpp"

namespace mcmcpar::core {

SubState buildSubState(const model::ModelState& main,
                       const partition::IRect& rect, double margin) {
  SubState sub;
  sub.rect = rect;
  sub.constraint = mcmc::RegionConstraint{rect.toBounds(), margin};

  sub.state = std::make_unique<model::ModelState>(
      main.likelihood().crop(rect.x0, rect.y0, rect.w, rect.h),
      main.prior().params());

  // Copy in every circle that could interact with a modifiable circle:
  // anything whose centre is within the prior's interaction range of the
  // rect (covers all overlap partners; coverage inside the crop is already
  // present from the raster copy, so insertion must bypass the likelihood).
  const double reach = main.prior().interactionRange();
  const model::Bounds grab{sub.constraint.rect.x0 - reach,
                           sub.constraint.rect.y0 - reach,
                           sub.constraint.rect.x1 + reach,
                           sub.constraint.rect.y1 + reach};
  model::Configuration& subConfig = sub.state->configMutable();
  main.config().forEach([&](model::CircleId mainId, const model::Circle& c) {
    if (c.x < grab.x0 || c.x >= grab.x1 || c.y < grab.y0 || c.y >= grab.y1) {
      return;
    }
    const model::CircleId subId = subConfig.insert(c);
    if (sub.constraint.allowsCircle(c)) {
      sub.mapping.emplace_back(mainId, subId);
      sub.candidates.push_back(subId);
    }
  });

  // The sub-state's cached posterior is meaningless in absolute terms (the
  // circles were adopted without likelihood bookkeeping); only deltas
  // accumulated from here on matter.
  sub.initialLogPosterior = sub.state->logPosterior();
  return sub;
}

std::size_t mergeSubState(model::ModelState& main, SubState& sub) {
  std::size_t changed = 0;
  for (const auto& [mainId, subId] : sub.mapping) {
    const model::Circle& updated = sub.state->config().get(subId);
    if (!(updated == main.config().get(mainId))) {
      main.replaceGeometryOnly(mainId, updated);
      ++changed;
    }
  }
  main.likelihoodMutable().absorbCrop(sub.state->likelihood());
  main.adjustLogPosterior(sub.state->logPosterior() -
                          sub.initialLogPosterior);
  return changed;
}

}  // namespace mcmcpar::core
