#pragma once

#include <memory>
#include <utility>
#include <vector>

#include "mcmc/move.hpp"
#include "model/posterior.hpp"
#include "partition/grid.hpp"

namespace mcmcpar::core {

/// A detached per-partition chain state for the split/merge local-phase
/// executor (the "duplicate, arrange for parallel execution, and merge the
/// partitions" path of §VII, which is also how a cluster deployment would
/// ship partitions to machines).
///
/// The sub-state owns a crop of the likelihood rasters and copies of every
/// circle that can influence moves inside the partition; only circles that
/// satisfy the legality constraint are modifiable. After the phase,
/// `mergeSubState` folds geometry, coverage and the posterior delta back
/// into the main state.
struct SubState {
  std::unique_ptr<model::ModelState> state;
  /// main-state id -> sub-state id for each modifiable circle.
  std::vector<std::pair<model::CircleId, model::CircleId>> mapping;
  /// Sub-state ids of the modifiable circles (the move candidate list).
  std::vector<model::CircleId> candidates;
  partition::IRect rect;
  mcmc::RegionConstraint constraint;
  /// Sub-state cached posterior right after construction; the phase's true
  /// posterior delta is state->logPosterior() - initialLogPosterior.
  double initialLogPosterior = 0.0;
};

/// Build the sub-state for `rect` (pixel crop of the main state's raster).
/// `margin` is the legality margin used for the modifiable set and for
/// proposal constraints (0 is sound here: interactions with non-modifiable
/// border circles are replicated read-only into the sub-state).
[[nodiscard]] SubState buildSubState(const model::ModelState& main,
                                     const partition::IRect& rect,
                                     double margin);

/// Write a finished sub-state back: replace modified circle geometry,
/// absorb the coverage crop, fold the posterior delta. Returns the number
/// of circles whose geometry changed. The sub-state is consumed.
std::size_t mergeSubState(model::ModelState& main, SubState& sub);

}  // namespace mcmcpar::core
