#include "core/virtual_executor.hpp"

namespace mcmcpar::core {

std::vector<ArchitecturePreset> paperArchitectures() {
  return {
      // Dual-core, single die: cheapest thread communication.
      ArchitecturePreset{"pentium-d-like", 2, 0.6},
      // Two dual-core dies in one package: intermediate.
      ArchitecturePreset{"q6600-like", 4, 1.0},
      // Two single-core packages: crossing the front-side bus.
      ArchitecturePreset{"xeon-smp-like", 2, 1.8},
  };
}

double adjustedVirtualSeconds(const PeriodicReport& report,
                              double overheadScale) noexcept {
  return report.virtualSeconds +
         (overheadScale - 1.0) * report.overheadSeconds;
}

double reductionPercent(double baselineSeconds,
                        double candidateSeconds) noexcept {
  if (baselineSeconds <= 0.0) return 0.0;
  return 100.0 * (1.0 - candidateSeconds / baselineSeconds);
}

}  // namespace mcmcpar::core
