#pragma once

#include <string>
#include <vector>

#include "core/periodic_sampler.hpp"

namespace mcmcpar::core {

/// A virtual machine model standing in for one of the paper's three test
/// hosts (§VII). `threads` bounds local-phase parallelism; `overheadScale`
/// models inter-thread communication quality — the paper attributes the
/// Pentium-D's win (38% reduction) to same-die communication, the
/// dual-socket Xeon's weaker result (23%) to cross-package costs, with the
/// two-dies Q6600 (29%) in between.
struct ArchitecturePreset {
  std::string name;
  unsigned threads = 2;
  double overheadScale = 1.0;
};

/// The three §VII hosts as virtual presets.
[[nodiscard]] std::vector<ArchitecturePreset> paperArchitectures();

/// Re-derive a report's virtual wall time under a different communication
/// quality: the measured overhead (charged serially in virtualSeconds) is
/// rescaled by `overheadScale`.
[[nodiscard]] double adjustedVirtualSeconds(const PeriodicReport& report,
                                            double overheadScale) noexcept;

/// Percentage reduction of `candidate` relative to `baseline`
/// (e.g. 38.0 for "reduced by 38%"); negative when slower.
[[nodiscard]] double reductionPercent(double baselineSeconds,
                                      double candidateSeconds) noexcept;

}  // namespace mcmcpar::core
