#include "engine/batch.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <istream>
#include <limits>
#include <memory>
#include <mutex>
#include <sstream>
#include <stdexcept>

#include "engine/registry.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "par/concurrency.hpp"
#include "par/thread_pool.hpp"
#include "par/virtual_clock.hpp"
#include "rng/splitmix64.hpp"
#include "shard/tiling.hpp"

namespace mcmcpar::engine {

namespace {

/// Nearest-rank percentile of an ascending-sorted latency list.
double percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const auto rank = static_cast<std::size_t>(
      std::max(1.0, std::ceil(p * static_cast<double>(sorted.size()))));
  return sorted[std::min(rank, sorted.size()) - 1];
}

}  // namespace

std::uint64_t deriveJobSeed(std::uint64_t batchSeed,
                            std::size_t jobIndex) noexcept {
  // Chained SplitMix64 absorption: the batch seed is mixed through one
  // bijection, the index through a second, so no (seed, index) pair can
  // collide with another index under the same seed.
  rng::SplitMix64 root(batchSeed);
  rng::SplitMix64 mixed(root.next() +
                        0x9E3779B97F4A7C15ULL *
                            (static_cast<std::uint64_t>(jobIndex) + 1));
  return mixed.next();
}

BatchRunner::BatchRunner(const StrategyRegistry* registry)
    : registry_(registry != nullptr ? registry
                                    : &StrategyRegistry::builtin()) {}

BatchResult BatchRunner::run(const std::vector<BatchJob>& jobs,
                             const BatchOptions& options,
                             const BatchHooks& hooks) const {
  const std::size_t n = jobs.size();
  BatchResult result;
  result.reports.resize(n);
  result.batch.jobs = n;
  result.batch.errors.assign(n, "");

  // Either a private budget for this one call, or the caller's long-lived
  // one (serve::Server runs batch after batch against a single budget).
  std::optional<par::PoolBudget> ownedBudget;
  par::PoolBudget* budgetPtr = options.sharedBudget;
  if (budgetPtr == nullptr) {
    ownedBudget.emplace(options.resources.threads);
    budgetPtr = &*ownedBudget;
  }
  par::PoolBudget& budget = *budgetPtr;

  const unsigned totalThreads = budget.total();
  unsigned concurrency = options.maxConcurrentJobs != 0
                             ? options.maxConcurrentJobs
                             : totalThreads;
  concurrency = std::min(concurrency, totalThreads);
  // Never more runners than jobs (an empty batch keeps one nominal runner
  // and the serial path below spawns no pool at all).
  const std::size_t jobCap = std::max<std::size_t>(n, 1);
  if (jobCap < concurrency) concurrency = static_cast<unsigned>(jobCap);
  concurrency = std::max(concurrency, 1u);

  // The shared budget: job-runner threads are charged up front, strategies
  // lease their internal workers from the remainder. A shared budget may be
  // partially drained by concurrent holders — run with what it grants (at
  // least the calling thread) and return it on every exit path.
  const unsigned charged = budget.tryAcquire(concurrency);
  if (options.sharedBudget != nullptr) {
    concurrency = std::max(charged, 1u);
  }
  struct BudgetReturn {
    par::PoolBudget& budget;
    unsigned charged;
    ~BudgetReturn() { budget.release(charged); }
  } budgetReturn{budget, charged};

  result.batch.threadBudget = totalThreads;
  result.batch.concurrentJobs = concurrency;

  // Validate and instantiate every strategy before any work starts: an
  // unknown name or bad option fails the batch as one EngineError instead
  // of surfacing halfway through a long run.
  std::vector<std::unique_ptr<Strategy>> strategies;
  strategies.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    ExecResources resources = options.resources;
    resources.poolBudget = &budget;
    resources.seed = jobs[i].seed.value_or(
        deriveJobSeed(options.resources.seed, i));
    try {
      strategies.push_back(
          registry_->create(jobs[i].strategy, resources, jobs[i].options));
    } catch (const EngineError& e) {
      const std::string label =
          jobs[i].label.empty() ? "" : " (" + jobs[i].label + ")";
      throw EngineError("batch job #" + std::to_string(i) + label + ": " +
                        e.what());
    }
  }

  const par::WallTimer batchTimer;
  std::atomic<bool> batchCancelled{false};
  const auto shouldStop = [&]() -> bool {
    if (batchCancelled.load(std::memory_order_relaxed)) return true;
    const bool stop =
        (hooks.cancelRequested && hooks.cancelRequested()) ||
        (options.deadlineSeconds > 0.0 &&
         batchTimer.seconds() >= options.deadlineSeconds);
    if (stop) batchCancelled.store(true, std::memory_order_relaxed);
    return stop;
  };

  std::mutex doneMutex;
  std::vector<double> latencies(n, 0.0);
  // char, not bool: concurrent jobs write distinct elements, and
  // vector<bool>'s bit packing would make that a data race.
  std::vector<char> executed(n, 0);

  const auto runJob = [&](std::size_t i) {
    RunReport& report = result.reports[i];
    if (shouldStop()) {
      // Never started: an empty cancelled report keeps the output vector
      // index-aligned without inventing chain results.
      report.strategy = jobs[i].strategy;
      report.cancelled = true;
      report.threadsUsed = 0;
      if (hooks.onJobDone) {
        const std::scoped_lock lock(doneMutex);
        hooks.onJobDone(i, report);
      }
      return;
    }

    RunHooks jobHooks;
    jobHooks.cancelRequested = shouldStop;
    if (hooks.onJobProgress) {
      jobHooks.onProgress = [&hooks, i](const RunProgress& p) {
        hooks.onJobProgress(i, p);
      };
    }

    const par::WallTimer jobTimer;
    try {
      obs::Span jobSpan("engine", "job:" + jobs[i].strategy);
      jobSpan.arg("label", jobs[i].label.empty() ? std::to_string(i)
                                                 : jobs[i].label);
      strategies[i]->prepare(jobs[i].problem);
      report = strategies[i]->run(jobs[i].budget, jobHooks);
      obs::Registry::global()
          .counter("mcmcpar_engine_runs_total", "Strategy runs completed.",
                   {{"strategy", jobs[i].strategy}})
          .add();
    } catch (const std::exception& e) {  // EngineError and anything else:
      report = RunReport{};              // one bad job must not sink the batch
      report.strategy = jobs[i].strategy;
      report.threadsUsed = 0;
      result.batch.errors[i] = e.what();
    }
    latencies[i] = jobTimer.seconds();
    executed[i] = true;
    if (hooks.onJobDone) {
      const std::scoped_lock lock(doneMutex);
      hooks.onJobDone(i, report);
    }
  };

  if (concurrency <= 1) {
    for (std::size_t i = 0; i < n; ++i) runJob(i);
  } else {
    // concurrency-1 workers plus the calling thread: parallelFor's caller
    // helps drain the queue, so exactly `concurrency` jobs run at once.
    par::ThreadPool pool(concurrency - 1);
    pool.parallelFor(n, runJob);
  }

  // Aggregate.
  BatchReport& batch = result.batch;
  batch.wallSeconds = batchTimer.seconds();
  std::vector<double> executedLatencies;
  executedLatencies.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const RunReport& report = result.reports[i];
    if (!batch.errors[i].empty()) {
      ++batch.failed;
    } else if (report.cancelled) {
      ++batch.cancelled;
    } else {
      ++batch.completed;
    }
    if (!executed[i]) continue;
    executedLatencies.push_back(latencies[i]);
    StrategyTotals& totals = batch.perStrategy[jobs[i].strategy];
    ++totals.jobs;
    totals.iterations += report.iterations;
    totals.wallSeconds += latencies[i];
  }
  std::sort(executedLatencies.begin(), executedLatencies.end());
  batch.p50Seconds = percentile(executedLatencies, 0.50);
  batch.p95Seconds = percentile(executedLatencies, 0.95);
  if (batch.wallSeconds > 0.0) {
    batch.jobsPerSecond =
        static_cast<double>(executedLatencies.size()) / batch.wallSeconds;
  }
  return result;
}

RunReport BatchRunner::runOne(const BatchJob& job,
                              const ExecResources& resources,
                              const RunHooks& hooks) const {
  ExecResources jobResources = resources;
  if (job.seed) jobResources.seed = *job.seed;
  const std::unique_ptr<Strategy> strategy =
      registry_->create(job.strategy, jobResources, job.options);
  obs::Span jobSpan("engine", "job:" + job.strategy);
  jobSpan.arg("label", job.label);
  {
    obs::Span prepareSpan("engine", "prepare:" + job.strategy);
    strategy->prepare(job.problem);
  }
  RunReport report = strategy->run(job.budget, hooks);
  obs::Registry::global()
      .counter("mcmcpar_engine_runs_total", "Strategy runs completed.",
               {{"strategy", job.strategy}})
      .add();
  return report;
}

namespace {

/// Parse the value of a job directive token `@key=value`; errors name the
/// directive exactly as written ("option '@iters': expected ...").
std::uint64_t directiveU64(const std::string& key, const std::string& value) {
  const OptionMap parsed = OptionMap::parse({key + "=" + value});
  return parsed.u64(key, 0);
}

double directiveDbl(const std::string& key, const std::string& value) {
  const OptionMap parsed = OptionMap::parse({key + "=" + value});
  return parsed.dbl(key, 0.0);
}

}  // namespace

ManifestEntry parseManifestLine(const std::string& line) {
  std::istringstream tokens(line);
  ManifestEntry entry;
  if (!(tokens >> entry.image) || !(tokens >> entry.strategy)) {
    throw EngineError(
        "expected '<image.pgm|synth> <strategy> [@directive=value ...] "
        "[key=value ...]', got '" +
        line + "'");
  }
  std::string shardTiles;
  std::optional<std::uint64_t> shardHalo;
  std::string token;
  while (tokens >> token) {
    if (token.front() != '@') {
      entry.options.push_back(token);
      continue;
    }
    const std::size_t eq = token.find('=');
    if (eq == std::string::npos || eq < 2) {
      throw EngineError("malformed job directive '" + token +
                        "': expected @directive=value");
    }
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    if (key == "@iters") {
      const std::uint64_t iters = directiveU64(key, value);
      // Reject the degenerate and the absurd at parse time: @iters=0 would
      // "succeed" with an empty model, and values beyond kMaxJobIterations
      // overflow downstream budget arithmetic (frames x budget, tile
      // splits) long after admission.
      if (iters == 0 || iters > kMaxJobIterations) {
        throw EngineError("directive '@iters': expected a value in [1, " +
                          std::to_string(kMaxJobIterations) + "], got '" +
                          value + "'");
      }
      entry.iterations = iters;
    } else if (key == "@seed") {
      entry.seed = directiveU64(key, value);
    } else if (key == "@trace") {
      entry.trace = directiveU64(key, value);
    } else if (key == "@label") {
      entry.label = value;
    } else if (key == "@radius" || key == "@radius-std" ||
               key == "@radius-min" || key == "@radius-max" ||
               key == "@count") {
      const double parsed = directiveDbl(key, value);
      if (parsed <= 0.0) {
        throw EngineError("directive '" + key +
                          "': expected a value > 0, got '" + value + "'");
      }
      if (key == "@radius") {
        entry.radius = parsed;
      } else if (key == "@radius-std") {
        entry.radiusStd = parsed;
      } else if (key == "@radius-min") {
        entry.radiusMin = parsed;
      } else if (key == "@radius-max") {
        entry.radiusMax = parsed;
      } else {
        entry.expectedCount = parsed;
      }
    } else if (key == "@image") {
      if (value != "inline") {
        throw EngineError("directive '@image': the only supported value is "
                          "'inline', got '" +
                          value + "'");
      }
      entry.inlineImage = true;
    } else if (key == "@oneshot") {
      entry.oneshot = directiveU64(key, value) != 0;
    } else if (key == "@shard") {
      // "auto" flows through to the sharded strategy's adaptive grid; a
      // fixed KxL is validated right here like the tiles= option would.
      if (value != "auto") {
        int gx = 0;
        int gy = 0;
        try {
          shard::parseTileCount(value, gx, gy);
        } catch (const std::invalid_argument& e) {
          throw EngineError(std::string("directive '@shard': ") + e.what());
        }
      }
      shardTiles = value;
    } else if (key == "@halo") {
      shardHalo = directiveU64(key, value);
    } else if (key == "@sequence") {
      if (value.empty()) {
        throw EngineError(
            "directive '@sequence': expected a frame count or glob pattern");
      }
      entry.sequence = value;
    } else if (key == "@warm-start") {
      entry.warmStart = directiveU64(key, value) != 0;
    } else if (key == "@track") {
      entry.track = directiveU64(key, value) != 0;
    } else if (key == "@client") {
      std::string name = value;
      const std::size_t star = name.find('*');
      if (star != std::string::npos) {
        const std::string weightText = name.substr(star + 1);
        name = name.substr(0, star);
        const std::uint64_t weight = directiveU64(key, weightText);
        if (weight == 0 || weight > 1000) {
          throw EngineError(
              "directive '@client': weight must be in [1, 1000], got '" +
              weightText + "'");
        }
        entry.clientWeight = static_cast<unsigned>(weight);
      }
      if (name.empty() || name.size() > 64 ||
          name.find_first_not_of(
              "ABCDEFGHIJKLMNOPQRSTUVWXYZ"
              "abcdefghijklmnopqrstuvwxyz0123456789._-") !=
              std::string::npos) {
        throw EngineError(
            "directive '@client': expected NAME[*W] with NAME of 1-64 "
            "chars from [A-Za-z0-9._-], got '" +
            value + "'");
      }
      entry.client = name;
    } else {
      throw EngineError("unknown job directive '" + key +
                        "' (expected @iters, @seed, @trace, @label, "
                        "@radius, @radius-std, @radius-min, @radius-max, "
                        "@count, @image, @oneshot, @shard, @halo, "
                        "@sequence, @warm-start, @track or @client)");
    }
  }
  // Validate option tokens through the same parser --opt uses, so a stray
  // trailing token fails right here with the identical descriptive message
  // instead of being deferred (strategy-unknown keys still surface at
  // creation via OptionMap::requireConsumed).
  (void)OptionMap::parse(entry.options);

  if (shardHalo && shardTiles.empty()) {
    throw EngineError("directive '@halo' requires '@shard=KxL'");
  }
  if (entry.sequence.empty() && (entry.warmStart || entry.track)) {
    throw EngineError(
        "directives '@warm-start' and '@track' require '@sequence'");
  }
  if (!entry.sequence.empty() && !shardTiles.empty()) {
    throw EngineError(
        "directive '@sequence' cannot be combined with '@shard'");
  }
  if (!shardTiles.empty()) {
    // Desugar into the shard coordinator: the named strategy becomes the
    // inner per-tile one and bare options are forwarded to it, so one
    // directive turns any job line into a sharded run (docs/PROTOCOL.md).
    if (entry.strategy == "sharded") {
      throw EngineError(
          "directive '@shard' cannot be combined with the 'sharded' "
          "strategy; pass tiles=KxL as a strategy option instead");
    }
    std::vector<std::string> options;
    options.reserve(entry.options.size() + 3);
    options.push_back("tiles=" + shardTiles);
    if (shardHalo) options.push_back("halo=" + std::to_string(*shardHalo));
    options.push_back("strategy=" + entry.strategy);
    for (const std::string& option : entry.options) {
      options.push_back("inner." + option);
    }
    entry.strategy = "sharded";
    entry.options = std::move(options);
  }
  return entry;
}

std::vector<ManifestEntry> parseBatchManifest(std::istream& in) {
  std::vector<ManifestEntry> entries;
  std::string line;
  std::size_t lineNumber = 0;
  while (std::getline(in, line)) {
    ++lineNumber;
    std::istringstream tokens(line);
    std::string first;
    if (!(tokens >> first) || first.front() == '#') continue;
    try {
      entries.push_back(parseManifestLine(line));
    } catch (const EngineError& e) {
      throw EngineError("manifest line " + std::to_string(lineNumber) + ": " +
                        e.what());
    }
  }
  return entries;
}

}  // namespace mcmcpar::engine
