#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "engine/engine.hpp"

namespace mcmcpar::engine {

class StrategyRegistry;

/// One unit of work in a batch: an image (borrowed through Problem) run
/// under one strategy with its own options and budget.
struct BatchJob {
  std::string strategy;  ///< registry key ("serial", "mc3", ...)
  std::vector<std::string> options;  ///< strategy `key=value` options
  Problem problem;
  RunBudget budget;
  std::string label;  ///< caller's tag (image path, request id); "" = index

  /// Per-job master seed. Unset jobs derive a distinct seed from the batch
  /// seed and the job index, so identical jobs still explore independently.
  std::optional<std::uint64_t> seed;
};

/// Knobs of one BatchRunner::run call.
struct BatchOptions {
  /// Shared execution resources. `threads` is the *total* worker budget of
  /// the whole batch (0 = hardware concurrency): jobs run concurrently
  /// inside it, and strategies lease their internal workers from what is
  /// left, so the box is never oversubscribed. `seed` is the batch master
  /// seed that per-job seeds derive from.
  ExecResources resources;

  /// Upper bound on jobs in flight (0 = one per budgeted thread). Lowering
  /// it below the thread budget leaves spare threads for strategies'
  /// internal parallelism.
  unsigned maxConcurrentJobs = 0;

  /// Whole-batch wall-clock deadline in seconds (0 = none). Jobs still
  /// running when it expires are cancelled at their next polling quantum;
  /// jobs not yet started are skipped.
  double deadlineSeconds = 0.0;
};

/// Observer callbacks of a batch run. All optional; callbacks may be
/// invoked concurrently from different job threads, except onJobDone which
/// is serialised by the runner.
struct BatchHooks {
  /// Per-job progress beat, forwarded from the strategy's RunHooks.
  std::function<void(std::size_t jobIndex, const RunProgress&)> onJobProgress;

  /// A job finished (completed, failed or cancelled); `report` is its final
  /// RunReport. Serialised: never invoked concurrently.
  std::function<void(std::size_t jobIndex, const RunReport& report)> onJobDone;

  /// Cancels the whole batch (sticky, like RunHooks::cancelRequested):
  /// running jobs stop at their next quantum, queued jobs never start.
  std::function<bool()> cancelRequested;
};

/// Per-strategy roll-up of a batch.
struct StrategyTotals {
  std::size_t jobs = 0;
  std::uint64_t iterations = 0;
  double wallSeconds = 0.0;  ///< summed per-job latencies
};

/// Aggregate outcome of a batch: throughput, latency percentiles and
/// per-strategy totals, plus index-aligned error messages for failed jobs.
struct BatchReport {
  std::size_t jobs = 0;
  std::size_t completed = 0;  ///< ran their full budget
  std::size_t cancelled = 0;  ///< stopped early or never started
  std::size_t failed = 0;     ///< threw EngineError while running
  double wallSeconds = 0.0;   ///< whole-batch wall time
  double jobsPerSecond = 0.0;
  double p50Seconds = 0.0;  ///< median per-job latency (executed jobs)
  double p95Seconds = 0.0;  ///< nearest-rank 95th percentile latency
  unsigned threadBudget = 0;    ///< resolved total worker budget
  unsigned concurrentJobs = 0;  ///< resolved jobs-in-flight cap
  std::map<std::string, StrategyTotals> perStrategy;
  std::vector<std::string> errors;  ///< index-aligned; "" for non-failures
};

/// A batch outcome: one RunReport per submitted job, index-aligned with the
/// input vector regardless of completion order, plus the aggregate.
struct BatchResult {
  std::vector<RunReport> reports;
  BatchReport batch;
};

/// Executes N independent jobs concurrently under one shared thread budget.
///
/// Jobs are validated up front (unknown strategies or malformed options
/// fail the whole batch before any work starts), dispatched in submission
/// order over an internal par::ThreadPool, and reported in submission
/// order. Each job runs under a wrapped RunHooks that forwards progress,
/// honours the per-batch deadline and propagates batch cancellation; a
/// cancelled batch keeps every already-finished report intact.
class BatchRunner {
 public:
  /// `registry` defaults to the built-in six-strategy registry and is
  /// borrowed (must outlive the runner).
  explicit BatchRunner(const StrategyRegistry* registry = nullptr);

  /// Run the batch. Throws EngineError if any job names an unknown
  /// strategy or carries invalid options; failures *during* a job are
  /// captured per job instead (BatchReport::errors).
  [[nodiscard]] BatchResult run(const std::vector<BatchJob>& jobs,
                                const BatchOptions& options = {},
                                const BatchHooks& hooks = {}) const;

 private:
  const StrategyRegistry* registry_;
};

/// One line of a `mcmcpar_run --batch` manifest:
///   <image.pgm | synth> <strategy> [key=value ...]
/// Blank lines and lines starting with '#' are skipped.
struct ManifestEntry {
  std::string image;     ///< PGM path, or "synth" for the CLI scene
  std::string strategy;  ///< registry key
  std::vector<std::string> options;  ///< key=value strategy options
};

/// Parse a batch manifest. Throws EngineError naming the offending line on
/// entries with fewer than two fields or option tokens without '='.
[[nodiscard]] std::vector<ManifestEntry> parseBatchManifest(std::istream& in);

/// The per-job seed rule used for jobs without an explicit seed: a
/// SplitMix64-style mix of the batch seed and the job index, collision-free
/// across indices. Exposed so tests and tools can predict it.
[[nodiscard]] std::uint64_t deriveJobSeed(std::uint64_t batchSeed,
                                          std::size_t jobIndex) noexcept;

}  // namespace mcmcpar::engine
