#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "engine/engine.hpp"

namespace mcmcpar::par {
class PoolBudget;
}  // namespace mcmcpar::par

namespace mcmcpar::engine {

class StrategyRegistry;

/// One unit of work in a batch: an image (borrowed through Problem) run
/// under one strategy with its own options and budget.
struct BatchJob {
  std::string strategy;  ///< registry key ("serial", "mc3", ...)
  std::vector<std::string> options;  ///< strategy `key=value` options
  Problem problem;
  RunBudget budget;
  std::string label;  ///< caller's tag (image path, request id); "" = index

  /// Per-job master seed. Unset jobs derive a distinct seed from the batch
  /// seed and the job index, so identical jobs still explore independently.
  std::optional<std::uint64_t> seed;
};

/// Knobs of one BatchRunner::run call.
struct BatchOptions {
  /// Shared execution resources. `threads` is the *total* worker budget of
  /// the whole batch (0 = hardware concurrency): jobs run concurrently
  /// inside it, and strategies lease their internal workers from what is
  /// left, so the box is never oversubscribed. `seed` is the batch master
  /// seed that per-job seeds derive from.
  ExecResources resources;

  /// Upper bound on jobs in flight (0 = one per budgeted thread). Lowering
  /// it below the thread budget leaves spare threads for strategies'
  /// internal parallelism.
  unsigned maxConcurrentJobs = 0;

  /// Whole-batch wall-clock deadline in seconds (0 = none). Jobs still
  /// running when it expires are cancelled at their next polling quantum;
  /// jobs not yet started are skipped.
  double deadlineSeconds = 0.0;

  /// When set (borrowed), the batch charges its job-runner threads against
  /// this long-lived budget instead of constructing a private one, and
  /// returns them when the run ends — the reusable-budget lifecycle a
  /// persistent front-end needs to run batch after batch against one
  /// PoolBudget. `resources.threads` is ignored in favour of the budget's
  /// total.
  par::PoolBudget* sharedBudget = nullptr;
};

/// Observer callbacks of a batch run. All optional; callbacks may be
/// invoked concurrently from different job threads, except onJobDone which
/// is serialised by the runner.
struct BatchHooks {
  /// Per-job progress beat, forwarded from the strategy's RunHooks.
  std::function<void(std::size_t jobIndex, const RunProgress&)> onJobProgress;

  /// A job finished (completed, failed or cancelled); `report` is its final
  /// RunReport. Serialised: never invoked concurrently.
  std::function<void(std::size_t jobIndex, const RunReport& report)> onJobDone;

  /// Cancels the whole batch (sticky, like RunHooks::cancelRequested):
  /// running jobs stop at their next quantum, queued jobs never start.
  std::function<bool()> cancelRequested;
};

/// Per-strategy roll-up of a batch.
struct StrategyTotals {
  std::size_t jobs = 0;
  std::uint64_t iterations = 0;
  double wallSeconds = 0.0;  ///< summed per-job latencies
};

/// Aggregate outcome of a batch: throughput, latency percentiles and
/// per-strategy totals, plus index-aligned error messages for failed jobs.
struct BatchReport {
  std::size_t jobs = 0;
  std::size_t completed = 0;  ///< ran their full budget
  std::size_t cancelled = 0;  ///< stopped early or never started
  std::size_t failed = 0;     ///< threw EngineError while running
  double wallSeconds = 0.0;   ///< whole-batch wall time
  double jobsPerSecond = 0.0;
  double p50Seconds = 0.0;  ///< median per-job latency (executed jobs)
  double p95Seconds = 0.0;  ///< nearest-rank 95th percentile latency
  unsigned threadBudget = 0;    ///< resolved total worker budget
  unsigned concurrentJobs = 0;  ///< resolved jobs-in-flight cap
  std::map<std::string, StrategyTotals> perStrategy;
  std::vector<std::string> errors;  ///< index-aligned; "" for non-failures
};

/// A batch outcome: one RunReport per submitted job, index-aligned with the
/// input vector regardless of completion order, plus the aggregate.
struct BatchResult {
  std::vector<RunReport> reports;
  BatchReport batch;
};

/// Executes N independent jobs concurrently under one shared thread budget.
///
/// Jobs are validated up front (unknown strategies or malformed options
/// fail the whole batch before any work starts), dispatched in submission
/// order over an internal par::ThreadPool, and reported in submission
/// order. Each job runs under a wrapped RunHooks that forwards progress,
/// honours the per-batch deadline and propagates batch cancellation; a
/// cancelled batch keeps every already-finished report intact.
class BatchRunner {
 public:
  /// `registry` defaults to the built-in six-strategy registry and is
  /// borrowed (must outlive the runner).
  explicit BatchRunner(const StrategyRegistry* registry = nullptr);

  /// Run the batch. Throws EngineError if any job names an unknown
  /// strategy or carries invalid options; failures *during* a job are
  /// captured per job instead (BatchReport::errors).
  [[nodiscard]] BatchResult run(const std::vector<BatchJob>& jobs,
                                const BatchOptions& options = {},
                                const BatchHooks& hooks = {}) const;

  /// The incremental-admission path: execute one job on the calling thread
  /// against shared resources, without the whole-batch barrier of run().
  /// Long-running front-ends (serve::Server) call this from persistent
  /// workers, passing a `resources.poolBudget` reused across requests.
  /// Unlike run(), every failure — unknown strategy, bad options, a failure
  /// mid-run — throws EngineError; the caller owns per-job capture.
  [[nodiscard]] RunReport runOne(const BatchJob& job,
                                 const ExecResources& resources,
                                 const RunHooks& hooks = {}) const;

 private:
  const StrategyRegistry* registry_;
};

/// One job line — the shared grammar of `mcmcpar_run --batch` manifests and
/// the serve protocol's SUBMIT payload (normative spec: docs/PROTOCOL.md):
///   <image.pgm | synth> <strategy> [@directive=value ...] [key=value ...]
/// `@`-prefixed tokens are job-level directives (@iters, @seed, @trace,
/// @label, @radius, @radius-std/min/max, @count, @image, @oneshot, @shard,
/// @halo, @sequence, @warm-start, @track, @client); bare key=value tokens
/// go to the strategy. Blank lines and lines starting with '#' are skipped
/// by the manifest reader.
///
/// `@shard=KxL [@halo=N]` is grammar-level sugar making the job a shard
/// coordinator: the parser rewrites the entry to the "sharded" strategy
/// (local backend) with the named strategy as its inner one and every bare
/// option forwarded as `inner.<key>=<value>` — so a served job can itself
/// fan out across the serving layer's shared budget.
struct ManifestEntry {
  std::string image;     ///< PGM path, "synth", or an UPLOAD id (inline)
  std::string strategy;  ///< registry key
  std::vector<std::string> options;  ///< key=value strategy options
  std::optional<std::uint64_t> iterations;  ///< @iters: per-job budget
  std::optional<std::uint64_t> seed;        ///< @seed: per-job master seed
  std::optional<std::uint64_t> trace;       ///< @trace: trace cadence
  std::string label;  ///< @label: caller's tag ("" = image path)

  /// @radius: per-job circle-prior radius mean, overriding the front-end's
  /// default (--radius). Unless the explicit @radius-std/@radius-min/
  /// @radius-max directives are present, std/min/max derive from the mean
  /// by the shared rule. The shard coordinator's socket backend sets all
  /// four so remote tiles sample under the coordinator's exact prior, not
  /// the remote server's default.
  std::optional<double> radius;
  std::optional<double> radiusStd;  ///< @radius-std
  std::optional<double> radiusMin;  ///< @radius-min
  std::optional<double> radiusMax;  ///< @radius-max

  /// @count: fixed expected artifact count — disables the per-image eq. 5
  /// estimate (Problem.estimateCount) on the serving side, the way a local
  /// caller sets estimateCount=false with a fixed prior.expectedCount.
  std::optional<double> expectedCount;

  /// @image=inline: the image token names an UPLOAD id on the submitting
  /// connection instead of a path. Only the socket front-end can satisfy
  /// it; manifest files and the watch front-end reject such entries.
  bool inlineImage = false;

  /// @oneshot=1: resolve the image with cache bypass — a miss is served
  /// but not inserted, so single-use jobs don't evict warm entries.
  bool oneshot = false;

  /// @sequence: non-empty makes the job a frame-sequence run
  /// (stream::SequenceRunner) instead of a single image. A pure decimal
  /// value N names N frames `<image>.0` .. `<image>.N-1` — UPLOAD ids
  /// when combined with @image=inline, or a generated drifting scene when
  /// the image token is "synth". Any other value is a filesystem glob
  /// whose sorted matches are the frames (the image token is then only a
  /// display label). See docs/PROTOCOL.md.
  std::string sequence;

  /// @warm-start=0|1 (sequence only; default on): seed frame N's chain
  /// from frame N-1's final configuration.
  std::optional<bool> warmStart;

  /// @track=0|1 (sequence only; default on): assign stable object ids
  /// across frames and report per-track lifetimes.
  std::optional<bool> track;

  /// @client=NAME[*W]: the weighted-fair admission bucket this job bills
  /// against on the serving side (docs/PROTOCOL.md). NAME is 1-64 chars of
  /// [A-Za-z0-9._-]; the optional *W (1-1000) sets the client's scheduling
  /// weight. Jobs without the directive share the "default" bucket, which
  /// keeps a single-client server plain FIFO.
  std::string client;
  std::optional<unsigned> clientWeight;
};

/// Upper bound accepted for @iters. Beyond this the budget arithmetic
/// (budget x frames, workload-proportional tile splits) risks overflow,
/// and no legitimate job approaches it — reject at parse time with a line
/// diagnostic instead of misbehaving hours into a run. @iters=0 is equally
/// rejected: a zero-iteration job would "succeed" with an empty model.
inline constexpr std::uint64_t kMaxJobIterations = 10'000'000'000ULL;

/// Parse one job line. Throws EngineError on fewer than two fields, unknown
/// or malformed `@` directives, and malformed option tokens — option tokens
/// are validated through the same OptionMap parser the CLI's --opt flag
/// uses, so a stray trailing token fails here with the identical message
/// instead of surfacing later (or never).
[[nodiscard]] ManifestEntry parseManifestLine(const std::string& line);

/// Parse a batch manifest: parseManifestLine on every non-blank,
/// non-comment line, with "manifest line N:" prefixed to any error.
[[nodiscard]] std::vector<ManifestEntry> parseBatchManifest(std::istream& in);

/// The per-job seed rule used for jobs without an explicit seed: a
/// SplitMix64-style mix of the batch seed and the job index, collision-free
/// across indices. Exposed so tests and tools can predict it.
[[nodiscard]] std::uint64_t deriveJobSeed(std::uint64_t batchSeed,
                                          std::size_t jobIndex) noexcept;

}  // namespace mcmcpar::engine
