#include "engine/engine.hpp"

#include "engine/registry.hpp"

namespace mcmcpar::engine {

Engine::Engine(ExecResources resources, const StrategyRegistry* registry)
    : resources_(resources),
      registry_(registry != nullptr ? registry : &StrategyRegistry::builtin()) {
}

std::unique_ptr<Strategy> Engine::make(
    const std::string& strategy,
    const std::vector<std::string>& options) const {
  return registry_->create(strategy, resources_, options);
}

RunReport Engine::run(const std::string& strategy, const Problem& problem,
                      const RunBudget& budget, const RunHooks& hooks,
                      const std::vector<std::string>& options) const {
  const std::unique_ptr<Strategy> instance = make(strategy, options);
  instance->prepare(problem);
  return instance->run(budget, hooks);
}

}  // namespace mcmcpar::engine
