#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "core/periodic_sampler.hpp"
#include "core/pipeline.hpp"
#include "img/image.hpp"
#include "mcmc/diagnostics.hpp"
#include "mcmc/mc3.hpp"
#include "mcmc/move_registry.hpp"
#include "mcmc/run_hooks.hpp"
#include "model/circle.hpp"
#include "model/likelihood.hpp"
#include "model/prior.hpp"
#include "shard/report.hpp"
#include "spec/speculative.hpp"
#include "stream/report.hpp"

namespace mcmcpar::par {
class PoolBudget;
}  // namespace mcmcpar::par

namespace mcmcpar::engine {

/// Observer callbacks are shared with the low-level drivers; the engine
/// façade re-exports them so callers only include this header.
using mcmc::RunHooks;
using mcmc::RunProgress;

/// The task every strategy solves: find circular artifacts in a filtered
/// intensity image under a circle prior and pixel likelihood. The image is
/// borrowed and must outlive the Strategy.
struct Problem {
  const img::ImageF* filtered = nullptr;
  model::PriorParams prior;
  model::LikelihoodParams likelihood;
  mcmc::MoveSetParams moves;

  /// Estimate the expected artifact count from the image with eq. 5 before
  /// sampling (overrides prior.expectedCount).
  bool estimateCount = true;
  float theta = 0.5f;  ///< eq. 5 threshold

  /// Warm start: circles carried from a closely-related earlier run (e.g.
  /// the previous frame of a sequence). When non-empty, strategies that
  /// build their state through the common seeding path (serial,
  /// speculative, periodic) commit these circles against the *current*
  /// image — re-scoring them under the new likelihood — and then add only
  /// `warmFreshFraction` of the usual random initial circles so new
  /// objects can still appear. Strategies with bespoke multi-state
  /// initialisation (mc3, partition pipelines, sharded) ignore it.
  std::vector<model::Circle> warmStart;
  double warmFreshFraction = 0.25;  ///< fresh random seeds, as a fraction
                                    ///< of the eq. 5 expected count
};

/// Execution resources shared by every strategy — the one place the
/// `threads`/`seed` knobs live, replacing the per-strategy copies.
struct ExecResources {
  unsigned threads = 0;  ///< worker threads (0 = hardware, via par::resolveThreadCount)
  bool useOpenMp = false;  ///< prefer OpenMP over the library ThreadPool
  std::uint64_t seed = 1;

  /// When set (borrowed, e.g. by BatchRunner), strategies resolve `threads`
  /// through a par::PoolLease against this shared budget instead of the
  /// whole machine, so concurrent jobs cannot oversubscribe the box.
  par::PoolBudget* poolBudget = nullptr;
};

/// How much work to do, strategy-independent. Partition pipelines derive
/// their own per-partition budgets (eq. 5 rule); for them `iterations` acts
/// as a per-partition ceiling instead (0 = no ceiling).
struct RunBudget {
  std::uint64_t iterations = 50000;
  std::uint64_t traceInterval = 0;  ///< posterior trace cadence (0 = auto)
};

/// Strategy-specific diagnostics carried alongside the common fields.
using ReportExtras =
    std::variant<std::monostate, spec::SpeculativeStats, mcmc::Mc3Stats,
                 core::PeriodicReport, core::PipelineReport,
                 shard::ShardReport, stream::StreamReport>;

/// The uniform outcome of any strategy run: common diagnostics every
/// front-end can print side by side, plus a typed extras variant for the
/// strategy-specific numbers (speculation waste, swap rates, phase and
/// partition breakdowns).
struct RunReport {
  std::string strategy;            ///< registry name that produced this run
  std::uint64_t iterations = 0;    ///< logical chain iterations performed
  double wallSeconds = 0.0;
  double acceptanceRate = 0.0;     ///< aggregate over all proposals
  std::vector<model::Circle> circles;  ///< final configuration
  double logPosterior = 0.0;       ///< of the final whole-image model
  std::optional<std::uint64_t> iterationsToConverge;  ///< plateau detector
  bool cancelled = false;          ///< stopped early via RunHooks
  unsigned threadsUsed = 1;
  mcmc::Diagnostics diagnostics;
  ReportExtras extras;
};

/// A parallelisation architecture behind a uniform two-step protocol:
/// `prepare(problem)` binds the image and builds the chain state(s), then
/// `run(budget, hooks)` executes and reports. Strategies are single-use:
/// one prepare, then one run.
class Strategy {
 public:
  virtual ~Strategy() = default;

  /// The registry key this strategy was created under.
  [[nodiscard]] virtual const std::string& name() const noexcept = 0;

  /// Bind the problem: estimate counts, build model state(s). Throws
  /// EngineError on an unusable problem (e.g. null image).
  virtual void prepare(const Problem& problem) = 0;

  /// Execute. Throws EngineError when called before prepare().
  [[nodiscard]] virtual RunReport run(const RunBudget& budget,
                                      const RunHooks& hooks = {}) = 0;
};

class StrategyRegistry;

/// The façade: one object that can execute any registered strategy by name
/// on shared resources. See tools/mcmcpar_run.cpp for the full CLI built on
/// top of it, and examples/quickstart.cpp for the shortest path.
class Engine {
 public:
  /// `registry` defaults to the built-in six-strategy registry and is
  /// borrowed (must outlive the Engine).
  explicit Engine(ExecResources resources = {},
                  const StrategyRegistry* registry = nullptr);

  /// Create a strategy by name (see StrategyRegistry::create).
  [[nodiscard]] std::unique_ptr<Strategy> make(
      const std::string& strategy,
      const std::vector<std::string>& options = {}) const;

  /// One-shot convenience: create, prepare, run.
  [[nodiscard]] RunReport run(const std::string& strategy,
                              const Problem& problem, const RunBudget& budget,
                              const RunHooks& hooks = {},
                              const std::vector<std::string>& options = {}) const;

  [[nodiscard]] const StrategyRegistry& registry() const noexcept {
    return *registry_;
  }
  [[nodiscard]] const ExecResources& resources() const noexcept {
    return resources_;
  }

 private:
  ExecResources resources_;
  const StrategyRegistry* registry_;
};

}  // namespace mcmcpar::engine
