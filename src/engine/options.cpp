#include "engine/options.hpp"

#include <charconv>

namespace mcmcpar::engine {

namespace {

[[noreturn]] void badValue(const std::string& key, const std::string& value,
                           const char* expected) {
  throw EngineError("option '" + key + "': expected " + expected + ", got '" +
                    value + "'");
}

}  // namespace

OptionMap OptionMap::parse(const std::vector<std::string>& pairs) {
  OptionMap map;
  for (const std::string& pair : pairs) {
    const std::size_t eq = pair.find('=');
    if (eq == std::string::npos || eq == 0) {
      throw EngineError("malformed option '" + pair +
                        "': expected key=value");
    }
    const std::string key = pair.substr(0, eq);
    const auto existing = map.values_.find(key);
    if (existing != map.values_.end()) {
      throw EngineError("option '" + key + "' given twice ('" + key + "=" +
                        existing->second + "' and '" + pair +
                        "'); each key may appear once");
    }
    map.values_[key] = pair.substr(eq + 1);
  }
  return map;
}

std::vector<std::string> OptionMap::keysWithPrefix(
    const std::string& prefix) const {
  std::vector<std::string> keys;
  for (auto it = values_.lower_bound(prefix);
       it != values_.end() && it->first.compare(0, prefix.size(), prefix) == 0;
       ++it) {
    keys.push_back(it->first);
  }
  return keys;
}

std::string OptionMap::str(const std::string& key,
                           const std::string& fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  consumed_[key] = true;
  return it->second;
}

std::uint64_t OptionMap::u64(const std::string& key,
                             std::uint64_t fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  consumed_[key] = true;
  std::uint64_t value = 0;
  const std::string& text = it->second;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size()) {
    badValue(key, text, "an unsigned integer");
  }
  return value;
}

unsigned OptionMap::uns(const std::string& key, unsigned fallback) const {
  const std::uint64_t value = u64(key, fallback);
  if (value > 0xFFFFFFFFull) {
    badValue(key, values_.at(key), "a 32-bit unsigned integer");
  }
  return static_cast<unsigned>(value);
}

double OptionMap::dbl(const std::string& key, double fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  consumed_[key] = true;
  const std::string& text = it->second;
  try {
    std::size_t used = 0;
    const double value = std::stod(text, &used);
    if (used != text.size()) badValue(key, text, "a number");
    return value;
  } catch (const EngineError&) {
    throw;
  } catch (const std::exception&) {
    badValue(key, text, "a number");
  }
}

bool OptionMap::flag(const std::string& key, bool fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  consumed_[key] = true;
  const std::string& text = it->second;
  if (text == "true" || text == "1" || text == "on" || text == "yes") {
    return true;
  }
  if (text == "false" || text == "0" || text == "off" || text == "no") {
    return false;
  }
  badValue(key, text, "a boolean (true/false/1/0/on/off/yes/no)");
}

void OptionMap::requireConsumed(const std::string& context) const {
  std::string unknown;
  for (const auto& [key, value] : values_) {
    if (consumed_.count(key) != 0) continue;
    if (!unknown.empty()) unknown += ", ";
    unknown += "'" + key + "'";
  }
  if (!unknown.empty()) {
    throw EngineError(context + ": unknown option(s) " + unknown);
  }
}

}  // namespace mcmcpar::engine
