#pragma once

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

namespace mcmcpar::engine {

/// Every façade failure (unknown strategy, malformed or unknown option,
/// out-of-range value, protocol misuse) surfaces as this exception with a
/// message naming the strategy/option/value involved.
class EngineError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Strategy options parsed from `key=value` strings (the registry's uniform
/// configuration channel: CLI flags, config files and server requests all
/// funnel through it).
///
/// Typed getters record which keys were read; `requireConsumed()` then turns
/// leftovers into a descriptive EngineError, so a typo like `lanes=4` against
/// the serial strategy fails loudly instead of being silently ignored.
class OptionMap {
 public:
  OptionMap() = default;

  /// Parse `key=value` pairs. Throws EngineError on entries without '=',
  /// with an empty key, or with a duplicated key.
  [[nodiscard]] static OptionMap parse(const std::vector<std::string>& pairs);

  [[nodiscard]] bool empty() const noexcept { return values_.empty(); }
  [[nodiscard]] bool has(const std::string& key) const noexcept {
    return values_.count(key) != 0;
  }

  /// Stored keys starting with `prefix`, in lexicographic order. Listing
  /// does not mark them consumed — read each through a typed getter.
  [[nodiscard]] std::vector<std::string> keysWithPrefix(
      const std::string& prefix) const;

  /// Typed access with defaults; all throw EngineError when the stored
  /// value does not parse as the requested type.
  [[nodiscard]] std::string str(const std::string& key,
                                const std::string& fallback) const;
  [[nodiscard]] std::uint64_t u64(const std::string& key,
                                  std::uint64_t fallback) const;
  [[nodiscard]] unsigned uns(const std::string& key, unsigned fallback) const;
  [[nodiscard]] double dbl(const std::string& key, double fallback) const;
  [[nodiscard]] bool flag(const std::string& key, bool fallback) const;

  /// Throws EngineError listing keys never read by any getter — i.e. options
  /// the strategy named `context` does not understand.
  void requireConsumed(const std::string& context) const;

 private:
  std::map<std::string, std::string> values_;
  mutable std::map<std::string, bool> consumed_;
};

}  // namespace mcmcpar::engine
