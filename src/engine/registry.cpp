#include "engine/registry.hpp"

namespace mcmcpar::engine {

void StrategyRegistry::add(StrategyInfo info) {
  if (info.name.empty()) {
    throw EngineError("cannot register a strategy with an empty name");
  }
  if (!info.factory) {
    throw EngineError("strategy '" + info.name + "' has no factory");
  }
  if (strategies_.count(info.name) != 0) {
    throw EngineError("strategy '" + info.name + "' is already registered");
  }
  strategies_.emplace(info.name, std::move(info));
}

bool StrategyRegistry::contains(const std::string& name) const noexcept {
  return strategies_.count(name) != 0;
}

std::vector<std::string> StrategyRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(strategies_.size());
  for (const auto& [name, info] : strategies_) out.push_back(name);
  return out;
}

const StrategyInfo& StrategyRegistry::info(const std::string& name) const {
  const auto it = strategies_.find(name);
  if (it == strategies_.end()) {
    std::string known;
    for (const auto& [key, value] : strategies_) {
      if (!known.empty()) known += ", ";
      known += "'" + key + "'";
    }
    throw EngineError("unknown strategy '" + name + "'; registered: " + known);
  }
  return it->second;
}

std::unique_ptr<Strategy> StrategyRegistry::create(
    const std::string& name, const ExecResources& resources,
    const std::vector<std::string>& options) const {
  const StrategyInfo& entry = info(name);
  const OptionMap parsed = OptionMap::parse(options);
  std::unique_ptr<Strategy> strategy = entry.factory(resources, parsed);
  parsed.requireConsumed("strategy '" + name + "'");
  return strategy;
}

}  // namespace mcmcpar::engine
