#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "engine/engine.hpp"
#include "engine/options.hpp"

namespace mcmcpar::engine {

/// Everything the registry knows about one strategy. `summary`,
/// `paperSection`, `extrasType` and `optionsHelp` feed --list style output;
/// `factory` builds an unprepared Strategy from shared resources and parsed
/// options (the factory must consume its options and call
/// `options.requireConsumed(name)`).
struct StrategyInfo {
  std::string name;
  std::string paperSection;  ///< e.g. "§V" — where the paper describes it
  std::string summary;
  std::string extrasType;    ///< RunReport extras alternative, "-" if none
  std::string optionsHelp;   ///< "key=value ..." synopsis, "" if none
  std::function<std::unique_ptr<Strategy>(const ExecResources&,
                                          const OptionMap&)>
      factory;
};

/// String-keyed strategy catalogue: the integration point for every
/// front-end (CLI, benches, future server). New scenarios are selected by
/// name, never by hand-wired setup code.
class StrategyRegistry {
 public:
  /// Register a strategy; throws EngineError on a duplicate or empty name.
  void add(StrategyInfo info);

  [[nodiscard]] bool contains(const std::string& name) const noexcept;

  /// Registered names in lexicographic order.
  [[nodiscard]] std::vector<std::string> names() const;

  /// Info for one strategy; throws EngineError for unknown names.
  [[nodiscard]] const StrategyInfo& info(const std::string& name) const;

  /// Build an unprepared strategy. Throws EngineError for an unknown name
  /// (message lists the registered ones), malformed `key=value` pairs, or
  /// options the strategy does not understand.
  [[nodiscard]] std::unique_ptr<Strategy> create(
      const std::string& name, const ExecResources& resources = {},
      const std::vector<std::string>& options = {}) const;

  /// The built-in catalogue covering the paper's architectures:
  ///   "serial"       §II-III  conventional RJ-MCMC baseline
  ///   "speculative"  §IV      speculative-moves executor
  ///   "mc3"          §IV      Metropolis-coupled MCMC
  ///   "periodic"     §V-VII   periodic partitioning
  ///   "blind"        §VIII-IX blind image partitioning + merge
  ///   "intelligent"  §VIII-IX intelligent image partitioning
  [[nodiscard]] static const StrategyRegistry& builtin();

 private:
  std::map<std::string, StrategyInfo> strategies_;
};

}  // namespace mcmcpar::engine
