// The six built-in strategies of StrategyRegistry::builtin(): thin adapters
// that put the existing drivers (mcmc::Sampler, spec::SpeculativeExecutor,
// mcmc::Mc3Sampler, core::PeriodicSampler, core::run*Pipeline) behind the
// uniform Strategy protocol. The concrete driver classes stay public and
// directly usable; these adapters only own the wiring that every caller
// used to repeat: prior estimation, state/registry construction, seed and
// thread handling, and report normalisation.

#include <algorithm>
#include <cmath>
#include <optional>

#include "engine/registry.hpp"
#include "mcmc/convergence.hpp"
#include "mcmc/sampler.hpp"
#include "par/concurrency.hpp"
#include "par/virtual_clock.hpp"
#include "partition/prior_estimation.hpp"
#include "shard/strategy.hpp"

namespace mcmcpar::engine {

namespace {

/// Shared prepare() plumbing: problem validation, eq. 5 count estimation,
/// move-registry construction, and the common RunReport fields.
class StrategyBase : public Strategy {
 public:
  StrategyBase(std::string name, const ExecResources& resources)
      : name_(std::move(name)), resources_(resources) {}

  [[nodiscard]] const std::string& name() const noexcept override {
    return name_;
  }

  void prepare(const Problem& problem) override {
    if (problem.filtered == nullptr) {
      throw EngineError("strategy '" + name_ +
                        "': Problem.filtered image is null");
    }
    problem_ = problem;
    prior_ = problem.prior;
    if (problem.estimateCount) {
      const auto estimate = partition::estimateCount(
          *problem.filtered, problem.theta, prior_.radiusMean);
      prior_.expectedCount = std::max(estimate.expectedCount, 0.5);
    }
    registry_ = mcmc::MoveRegistry::caseStudy(problem.moves);
    prepared_ = true;
  }

 protected:
  void requirePrepared() const {
    if (!prepared_) {
      throw EngineError("strategy '" + name_ +
                        "': run() called before prepare()");
    }
  }

  /// Resolve the `threads` knob for this run: against the whole machine
  /// when standalone, against the shared budget when running inside a
  /// batch. Held for the duration of run() so concurrent jobs see the
  /// reduced availability.
  [[nodiscard]] par::PoolLease leaseThreads() const {
    return par::PoolLease::acquire(resources_.poolBudget, resources_.threads);
  }

  [[nodiscard]] std::size_t initialCircleCount() const {
    return static_cast<std::size_t>(std::llround(prior_.expectedCount));
  }

  /// Whole-image chain state seeded from `stream`. With a warm start the
  /// carried circles are committed first — re-scoring them against *this*
  /// problem's image — and only a fraction of the usual random circles are
  /// added on top, so the chain starts near the previous posterior mode
  /// while birth moves can still discover new objects.
  [[nodiscard]] model::ModelState makeState(rng::Stream& stream) const {
    model::ModelState state(*problem_.filtered, prior_, problem_.likelihood);
    if (problem_.warmStart.empty()) {
      state.initialiseRandom(initialCircleCount(), stream);
      return state;
    }
    const model::PriorParams& p = prior_;
    for (model::Circle c : problem_.warmStart) {
      c.r = std::clamp(c.r, p.radiusMin, p.radiusMax);
      if (!state.discInDomain(c)) continue;
      (void)state.commitAdd(c);
    }
    const double fraction = std::clamp(problem_.warmFreshFraction, 0.0, 1.0);
    const auto fresh = static_cast<std::size_t>(std::llround(
        fraction * static_cast<double>(initialCircleCount())));
    state.initialiseRandom(fresh, stream);
    return state;
  }

  /// Trace cadence: explicit budget value, or ~200 points per run.
  [[nodiscard]] static std::uint64_t traceEvery(const RunBudget& budget) {
    if (budget.traceInterval != 0) return budget.traceInterval;
    return std::max<std::uint64_t>(1, budget.iterations / 200);
  }

  [[nodiscard]] RunReport baseReport() const {
    RunReport report;
    report.strategy = name_;
    return report;
  }

  /// Run the plain sequential chain (the §II-III baseline) and fill every
  /// common report field. Shared by SerialStrategy and the lanes=1
  /// speculative path, which is documented to be bit-for-bit identical to
  /// the serial run under the same seed.
  [[nodiscard]] RunReport runSerialChain(const RunBudget& budget,
                                         const RunHooks& hooks) const {
    rng::Stream stream(resources_.seed);
    model::ModelState state = makeState(stream);
    mcmc::Sampler sampler(state, registry_, stream);

    const par::WallTimer timer;
    const std::uint64_t done =
        sampler.run(budget.iterations, traceEvery(budget), hooks);

    RunReport report = baseReport();
    report.iterations = done;
    report.wallSeconds = timer.seconds();
    report.cancelled = done < budget.iterations;
    report.circles = state.config().snapshot();
    report.logPosterior = state.logPosterior();
    report.diagnostics = sampler.diagnostics();
    finaliseCommon(report);
    return report;
  }

  /// Derive acceptance and convergence from the report's own diagnostics.
  static void finaliseCommon(RunReport& report) {
    report.acceptanceRate = report.diagnostics.aggregate().acceptanceRate();
    if (const auto plateau =
            mcmc::iterationsToPlateau(report.diagnostics.trace())) {
      report.iterationsToConverge = plateau->iteration;
    }
  }

  std::string name_;
  ExecResources resources_;
  Problem problem_;
  model::PriorParams prior_;
  mcmc::MoveRegistry registry_;
  bool prepared_ = false;
};

// --------------------------------------------------------------------------
// "serial" — §II-III conventional RJ-MCMC baseline.
// --------------------------------------------------------------------------
class SerialStrategy final : public StrategyBase {
 public:
  using StrategyBase::StrategyBase;

  RunReport run(const RunBudget& budget, const RunHooks& hooks) override {
    requirePrepared();
    return runSerialChain(budget, hooks);
  }
};

// --------------------------------------------------------------------------
// "speculative" — §IV speculative moves: n lanes per round.
// --------------------------------------------------------------------------
class SpeculativeStrategy final : public StrategyBase {
 public:
  SpeculativeStrategy(std::string name, const ExecResources& resources,
                      const OptionMap& options)
      : StrategyBase(std::move(name), resources),
        lanes_(options.uns("lanes", 4)) {
    if (lanes_ == 0) {
      throw EngineError("strategy '" + name_ + "': lanes must be >= 1");
    }
  }

  RunReport run(const RunBudget& budget, const RunHooks& hooks) override {
    requirePrepared();
    // One lane means no speculation at all: every round is a single plain
    // MH iteration. Route it through the exact serial driver so
    // `speculative lanes=1` reproduces the `serial` chain bit for bit
    // (tests/test_statistical_equivalence.cpp anchors on this).
    if (lanes_ == 1) return runSerialDegenerate(budget, hooks);
    rng::Stream stream(resources_.seed);
    model::ModelState state = makeState(stream);

    const par::PoolLease lease = leaseThreads();
    const unsigned workers = lease.threads();
    std::unique_ptr<par::ThreadPool> pool;
    // parallelFor also drains lanes on this (already-leased) thread, so the
    // pool itself is one smaller than the lease: pool + caller == workers.
    if (workers > 1 && lanes_ > 1) pool = par::makeThreadPool(workers - 1);
    spec::SpeculativeExecutor executor(state, registry_, lanes_,
                                       stream.derive(0x5BEC).bits(),
                                       pool.get());

    // The executor has no internal trace; run in trace-sized chunks and
    // record the posterior between them.
    const std::uint64_t every = traceEvery(budget);
    const par::WallTimer timer;
    std::uint64_t done = 0;
    bool cancelled = false;
    // The executor reports progress relative to each run() call; remap it
    // to the overall budget so RunProgress keeps its documented meaning.
    RunHooks inner;
    inner.cancelRequested = hooks.cancelRequested;
    inner.onTrace = hooks.onTrace;
    if (hooks.onProgress) {
      inner.onProgress = [&](const RunProgress& p) {
        hooks.progress(std::min(done + p.done, budget.iterations),
                       budget.iterations, p.phase);
      };
    }
    while (done < budget.iterations) {
      const std::uint64_t chunk =
          std::min(every, budget.iterations - done);
      const std::uint64_t advanced =
          executor.run(chunk, spec::MovePhase::Any, inner);
      if (advanced == 0) {  // cancellation before the first round
        cancelled = true;
        break;
      }
      done += advanced;
      executor.diagnostics().tracePoint(done, state.logPosterior(),
                                        state.config().size());
      hooks.trace(executor.diagnostics().trace().back());
    }

    RunReport report = baseReport();
    report.iterations = done;
    report.wallSeconds = timer.seconds();
    report.cancelled = cancelled || done < budget.iterations;
    report.circles = state.config().snapshot();
    report.logPosterior = state.logPosterior();
    report.diagnostics = executor.diagnostics();
    report.threadsUsed = pool ? std::min(workers, lanes_) : 1;
    report.extras = executor.stats();
    finaliseCommon(report);
    return report;
  }

 private:
  /// The lanes=1 path: the shared serial chain, reported with degenerate
  /// speculation stats (one proposal per round, zero waste).
  RunReport runSerialDegenerate(const RunBudget& budget,
                                const RunHooks& hooks) const {
    RunReport report = runSerialChain(budget, hooks);
    spec::SpeculativeStats stats;
    stats.rounds = report.iterations;
    stats.logicalIterations = report.iterations;
    stats.proposalsEvaluated = report.iterations;
    stats.roundsWithAcceptance = report.diagnostics.aggregate().accepted;
    report.extras = stats;
    return report;
  }

  unsigned lanes_;
};

// --------------------------------------------------------------------------
// "mc3" — §IV Metropolis-coupled MCMC, the convergence-rate baseline.
// --------------------------------------------------------------------------
class Mc3Strategy final : public StrategyBase {
 public:
  Mc3Strategy(std::string name, const ExecResources& resources,
              const OptionMap& options)
      : StrategyBase(std::move(name), resources) {
    params_.chains = options.uns("chains", 4);
    params_.heatStep = options.dbl("heat-step", 0.2);
    params_.swapInterval = options.u64("swap-interval", 100);
    // The parallel-chains default depends on how many threads this run is
    // actually granted, which under a shared budget is only known inside
    // run(); remember whether the user forced it either way.
    if (options.has("parallel")) {
      parallelOverride_ = options.flag("parallel", false);
    }
    if (params_.chains == 0) {
      throw EngineError("strategy '" + name_ + "': chains must be >= 1");
    }
    if (params_.swapInterval == 0) {
      throw EngineError("strategy '" + name_ +
                        "': swap-interval must be >= 1");
    }
  }

  RunReport run(const RunBudget& budget, const RunHooks& hooks) override {
    requirePrepared();
    const par::PoolLease lease = leaseThreads();
    mcmc::Mc3Params params = params_;
    params.parallelChains = parallelOverride_.value_or(lease.threads() > 1);
    // The driver's chain-stepping parallelFor also runs on this thread, so
    // its pool must be one smaller than the lease: pool + caller == lease.
    params.threads = params.parallelChains && lease.threads() > 1
                         ? lease.threads() - 1
                         : lease.threads();
    mcmc::Mc3Sampler sampler(*problem_.filtered, prior_, problem_.likelihood,
                             registry_, params, initialCircleCount(),
                             resources_.seed);

    const par::WallTimer timer;
    const std::uint64_t done =
        sampler.run(budget.iterations, traceEvery(budget), hooks);

    RunReport report = baseReport();
    report.iterations = done;
    report.wallSeconds = timer.seconds();
    report.cancelled = done < budget.iterations;
    report.circles = sampler.coldChain().config().snapshot();
    report.logPosterior = sampler.coldChain().logPosterior();
    report.diagnostics = sampler.coldDiagnostics();
    report.threadsUsed = params.parallelChains && params.chains > 1
                             ? std::min(lease.threads(), params.chains)
                             : 1;
    report.extras = sampler.stats();
    finaliseCommon(report);
    return report;
  }

 private:
  mcmc::Mc3Params params_;
  std::optional<bool> parallelOverride_;
};

// --------------------------------------------------------------------------
// "periodic" — §V-VII periodic partitioning.
// --------------------------------------------------------------------------
class PeriodicStrategy final : public StrategyBase {
 public:
  PeriodicStrategy(std::string name, const ExecResources& resources,
                   const OptionMap& options)
      : StrategyBase(std::move(name), resources) {
    params_.globalPhaseIterations = options.u64("phase", 130);
    params_.margin = options.dbl("margin", -1.0);
    params_.specLanesGlobal = options.uns("spec-lanes", 1);
    params_.virtualThreads = options.uns("virtual-threads", 0);
    params_.resyncPhaseInterval = options.u64("resync", 64);
    // params_.threads is set in run() from the lease, not here.

    const std::string layout = options.str("layout", "cross");
    if (layout == "cross") {
      params_.layout = core::PartitionLayout::RandomCross;
    } else if (layout == "grid") {
      params_.layout = core::PartitionLayout::UniformGrid;
      params_.gridSpacingX = options.dbl("grid-x", 0.0);
      params_.gridSpacingY = options.dbl("grid-y", 0.0);
    } else {
      throw EngineError("strategy '" + name_ + "': layout must be " +
                        "'cross' or 'grid', got '" + layout + "'");
    }

    const std::string executor = options.str("executor", "auto");
    if (executor == "auto") {
      // Resolved in run(): the serial/pool choice depends on how many
      // threads the lease actually grants.
      autoExecutor_ = true;
    } else if (executor == "serial") {
      params_.executor = core::LocalExecutor::Serial;
    } else if (executor == "pool") {
      params_.executor = core::LocalExecutor::InPlacePool;
    } else if (executor == "omp") {
      params_.executor = core::LocalExecutor::InPlaceOmp;
    } else if (executor == "split-serial") {
      params_.executor = core::LocalExecutor::SplitMergeSerial;
    } else if (executor == "split-pool") {
      params_.executor = core::LocalExecutor::SplitMergePool;
    } else {
      throw EngineError(
          "strategy '" + name_ + "': executor must be one of " +
          "'auto', 'serial', 'pool', 'omp', 'split-serial', 'split-pool', " +
          "got '" + executor + "'");
    }
  }

  RunReport run(const RunBudget& budget, const RunHooks& hooks) override {
    requirePrepared();
    rng::Stream stream(resources_.seed);
    model::ModelState state = makeState(stream);

    const par::PoolLease lease = leaseThreads();
    core::PeriodicParams params = params_;
    params.threads = lease.threads();
    if (autoExecutor_) {
      if (resources_.useOpenMp) {
        params.executor = core::LocalExecutor::InPlaceOmp;
      } else if (lease.threads() > 1) {
        params.executor = core::LocalExecutor::InPlacePool;
      } else {
        params.executor = core::LocalExecutor::Serial;
      }
    }
    // ThreadPool executors drain parallelFor on this thread too, so their
    // pool is one smaller than the lease; an OpenMP team already counts the
    // caller as its master thread.
    const bool poolExecutor =
        params.executor == core::LocalExecutor::InPlacePool ||
        params.executor == core::LocalExecutor::SplitMergePool;
    if (poolExecutor && params.threads > 1) --params.threads;
    params.totalIterations = budget.iterations;
    params.traceInterval = traceEvery(budget);

    const par::WallTimer timer;
    core::PeriodicSampler sampler(state, registry_, params, resources_.seed);
    core::PeriodicReport periodic = sampler.run(hooks);

    RunReport report = baseReport();
    report.iterations = periodic.globalIterations + periodic.localIterations;
    report.wallSeconds = timer.seconds();
    report.cancelled = periodic.cancelled;
    report.circles = state.config().snapshot();
    report.logPosterior = state.logPosterior();
    report.diagnostics = periodic.diagnostics;
    switch (params.executor) {
      case core::LocalExecutor::InPlacePool:
      case core::LocalExecutor::InPlaceOmp:
      case core::LocalExecutor::SplitMergePool:
        report.threadsUsed = lease.threads();
        break;
      default:
        report.threadsUsed = 1;
        break;
    }
    // Last read of `periodic` above — avoid copying its trace/diagnostics.
    report.extras = std::move(periodic);
    finaliseCommon(report);
    return report;
  }

 private:
  core::PeriodicParams params_;
  bool autoExecutor_ = false;
};

// --------------------------------------------------------------------------
// "blind" / "intelligent" — §VIII-IX image-partitioning pipelines.
// --------------------------------------------------------------------------
class PipelineStrategy final : public StrategyBase {
 public:
  PipelineStrategy(std::string name, const ExecResources& resources,
                   const OptionMap& options, bool blind)
      : StrategyBase(std::move(name), resources), blind_(blind) {
    params_.iterationsBase = options.u64("iters-base", 2000);
    params_.iterationsPerCircle = options.u64("iters-per-circle", 600);
    params_.tracePoints = options.u64("trace-points", 200);
    if (blind_) {
      params_.blind.gridX = static_cast<int>(options.uns("grid-x", 2));
      params_.blind.gridY = static_cast<int>(options.uns("grid-y", 2));
      params_.blind.overlapMargin = options.dbl("overlap", 0.0);
      params_.blind.mergeRadius = options.dbl("merge-radius", 5.0);
    } else {
      params_.intelligent.minGapWidth =
          static_cast<int>(options.uns("min-gap", 3));
      params_.intelligent.minPartitionSize =
          static_cast<int>(options.uns("min-partition", 24));
    }
  }

  RunReport run(const RunBudget& budget, const RunHooks& hooks) override {
    requirePrepared();
    core::PipelineParams params = params_;
    params.prior = prior_;
    params.likelihood = problem_.likelihood;
    params.moves = problem_.moves;
    params.theta = problem_.theta;
    params.intelligent.theta = problem_.theta;
    params.seed = resources_.seed;
    params.iterationsCap = budget.iterations;
    // The pipelines execute partitions on the calling thread;
    // loadBalancedThreads only feeds the §IX LPT runtime *model*, so cap it
    // at the shared budget's total instead of leasing live workers away
    // from concurrent jobs.
    params.loadBalancedThreads = par::resolveThreadCount(resources_.threads);
    if (resources_.poolBudget != nullptr) {
      params.loadBalancedThreads =
          std::min(params.loadBalancedThreads, resources_.poolBudget->total());
    }

    const par::WallTimer timer;
    core::PipelineReport pipeline =
        blind_ ? core::runBlindPipeline(*problem_.filtered, params, hooks)
               : core::runIntelligentPipeline(*problem_.filtered, params,
                                              hooks);

    RunReport report = baseReport();
    report.wallSeconds = timer.seconds();
    report.cancelled = pipeline.cancelled;
    report.circles = pipeline.merged;
    report.threadsUsed = params.loadBalancedThreads;
    for (const core::PartitionRun& partition : pipeline.partitions) {
      report.iterations += partition.iterations;
      report.diagnostics.merge(partition.diagnostics);
      // §IX: the parallel scheme converges when its slowest partition does.
      if (partition.itersToConverge) {
        report.iterationsToConverge =
            std::max(report.iterationsToConverge.value_or(0),
                     *partition.itersToConverge);
      }
    }
    report.acceptanceRate = report.diagnostics.aggregate().acceptanceRate();
    report.logPosterior = mergedLogPosterior(pipeline.merged);
    // Last read of `pipeline` above — avoid copying the partition runs.
    report.extras = std::move(pipeline);
    return report;
  }

 private:
  /// Whole-image log posterior of the recombined model (the per-partition
  /// values are not comparable across strategies).
  [[nodiscard]] double mergedLogPosterior(
      const std::vector<model::Circle>& merged) const {
    model::ModelState state(*problem_.filtered, prior_, problem_.likelihood);
    for (const model::Circle& circle : merged) state.commitAdd(circle);
    return state.logPosterior();
  }

  core::PipelineParams params_;
  bool blind_;
};

}  // namespace

const StrategyRegistry& StrategyRegistry::builtin() {
  static const StrategyRegistry* registry = [] {
    auto* r = new StrategyRegistry;
    r->add({"serial", "§II-III", "conventional sequential RJ-MCMC baseline",
            "-", "",
            [](const ExecResources& res, const OptionMap&) {
              return std::make_unique<SerialStrategy>("serial", res);
            }});
    r->add({"speculative", "§IV", "speculative moves: n proposal lanes/round",
            "SpeculativeStats", "lanes=N",
            [](const ExecResources& res, const OptionMap& opts) {
              return std::make_unique<SpeculativeStrategy>("speculative", res,
                                                           opts);
            }});
    r->add({"mc3", "§IV", "Metropolis-coupled MCMC (heated chains + swaps)",
            "Mc3Stats", "chains=N heat-step=X swap-interval=N parallel=B",
            [](const ExecResources& res, const OptionMap& opts) {
              return std::make_unique<Mc3Strategy>("mc3", res, opts);
            }});
    r->add({"periodic", "§V-VII",
            "periodic partitioning (global/local phases)", "PeriodicReport",
            "phase=N executor=auto|serial|pool|omp|split-serial|split-pool "
            "layout=cross|grid margin=X spec-lanes=N virtual-threads=N "
            "resync=N grid-x=X grid-y=X",
            [](const ExecResources& res, const OptionMap& opts) {
              return std::make_unique<PeriodicStrategy>("periodic", res, opts);
            }});
    r->add({"blind", "§VIII-IX", "blind image partitioning + merge heuristics",
            "PipelineReport",
            "grid-x=N grid-y=N overlap=X merge-radius=X iters-base=N "
            "iters-per-circle=N trace-points=N",
            [](const ExecResources& res, const OptionMap& opts) {
              return std::make_unique<PipelineStrategy>("blind", res, opts,
                                                        /*blind=*/true);
            }});
    r->add({"intelligent", "§VIII-IX",
            "intelligent image partitioning (empty-gap cuts)",
            "PipelineReport",
            "min-gap=N min-partition=N iters-base=N iters-per-circle=N "
            "trace-points=N",
            [](const ExecResources& res, const OptionMap& opts) {
              return std::make_unique<PipelineStrategy>("intelligent", res,
                                                        opts,
                                                        /*blind=*/false);
            }});
    // The sharding coordinator lives one layer up (src/shard: it composes
    // BatchRunner and the serve client), so it registers itself.
    shard::registerShardedStrategy(*r);
    return r;
  }();
  return *registry;
}

}  // namespace mcmcpar::engine
