#include "img/disc_raster.hpp"

#include <algorithm>

namespace mcmcpar::img {

std::vector<Span> discSpans(double cx, double cy, double r, int width,
                            int height) {
  std::vector<Span> spans;
  if (!(r > 0.0) || width <= 0 || height <= 0) return spans;
  // One span per intersected row, so the clipped row count is an exact upper
  // bound (the previous 2r+2 estimate over-allocated unboundedly for giant
  // radii on small rasters).
  const RowRange rows = discRowRange(cy, r, height);
  if (rows.y0 > rows.y1) return spans;
  spans.reserve(static_cast<std::size_t>(rows.y1 - rows.y0 + 1));
  forEachDiscSpan(cx, cy, r, width, height, [&spans](int y, int x0, int x1) {
    spans.push_back(Span{y, x0, x1});
  });
  return spans;
}

std::size_t discPixelCount(double cx, double cy, double r, int width,
                           int height) noexcept {
  std::size_t count = 0;
  forEachDiscSpan(cx, cy, r, width, height, [&count](int, int x0, int x1) {
    count += static_cast<std::size_t>(x1 - x0);
  });
  return count;
}

void renderSoftDisc(ImageF& image, double cx, double cy, double r, float peak,
                    double softness) {
  if (r <= 0.0) return;
  const double rOut = r + std::max(softness, 0.0);
  const int yLo = std::max(0, static_cast<int>(std::floor(cy - rOut - 0.5)));
  const int yHi = std::min(image.height() - 1,
                           static_cast<int>(std::ceil(cy + rOut - 0.5)));
  const int xLo = std::max(0, static_cast<int>(std::floor(cx - rOut - 0.5)));
  const int xHi = std::min(image.width() - 1,
                           static_cast<int>(std::ceil(cx + rOut - 0.5)));
  for (int y = yLo; y <= yHi; ++y) {
    float* row = image.row(y);
    const double dy = (static_cast<double>(y) + 0.5) - cy;
    for (int x = xLo; x <= xHi; ++x) {
      const double dx = (static_cast<double>(x) + 0.5) - cx;
      const double d = std::sqrt(dx * dx + dy * dy);
      float weight = 0.0f;
      if (d <= r) {
        weight = 1.0f;
      } else if (d < rOut && softness > 0.0) {
        weight = static_cast<float>(1.0 - (d - r) / softness);
      }
      if (weight > 0.0f) {
        row[x] = std::min(1.0f, row[x] + peak * weight);
      }
    }
  }
}

}  // namespace mcmcpar::img
