#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "img/image.hpp"

namespace mcmcpar::img {

/// A horizontal run of pixels belonging to a disc: row y, columns [x0, x1).
struct Span {
  int y;
  int x0;
  int x1;
};

/// Pixel-membership rule used everywhere in the library: pixel (x, y) belongs
/// to the disc of centre (cx, cy) and radius r iff its centre point
/// (x+0.5, y+0.5) lies inside the circle. The rule is shared by the
/// likelihood, the renderer and the estimators so their pixel sets agree.
[[nodiscard]] inline bool pixelInDisc(int x, int y, double cx, double cy,
                                      double r) noexcept {
  const double dx = (static_cast<double>(x) + 0.5) - cx;
  const double dy = (static_cast<double>(y) + 0.5) - cy;
  return dx * dx + dy * dy <= r * r;
}

/// Invoke fn(x, y) for every pixel of the disc clipped to a width x height
/// raster. Spans are computed per row with one sqrt, so the cost is
/// O(r) sqrt calls + O(area) callback invocations.
template <typename Fn>
void forEachDiscPixel(double cx, double cy, double r, int width, int height,
                      Fn&& fn) {
  if (r <= 0.0) return;
  const int yLo = std::max(0, static_cast<int>(std::floor(cy - r - 0.5)));
  const int yHi = std::min(height - 1, static_cast<int>(std::ceil(cy + r - 0.5)));
  for (int y = yLo; y <= yHi; ++y) {
    const double dy = (static_cast<double>(y) + 0.5) - cy;
    const double disc = r * r - dy * dy;
    if (disc < 0.0) continue;
    const double half = std::sqrt(disc);
    // Solve (x + 0.5 - cx)^2 <= disc for integer x.
    int x0 = static_cast<int>(std::ceil(cx - half - 0.5));
    int x1 = static_cast<int>(std::floor(cx + half - 0.5));
    x0 = std::max(x0, 0);
    x1 = std::min(x1, width - 1);
    for (int x = x0; x <= x1; ++x) fn(x, y);
  }
}

/// Collect the clipped disc as spans (used where a materialised list beats
/// repeated recomputation, e.g. the split/merge executor's pixel transfer).
[[nodiscard]] std::vector<Span> discSpans(double cx, double cy, double r,
                                          int width, int height);

/// Number of raster pixels of the clipped disc.
[[nodiscard]] std::size_t discPixelCount(double cx, double cy, double r,
                                         int width, int height) noexcept;

/// Additively render a disc with intensity `peak` and a linear soft edge of
/// width `softness` pixels (intensity ramps to 0 across the rim band).
void renderSoftDisc(ImageF& image, double cx, double cy, double r, float peak,
                    double softness);

}  // namespace mcmcpar::img
