#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "img/image.hpp"

namespace mcmcpar::img {

/// A horizontal run of pixels belonging to a disc: row y, columns [x0, x1).
struct Span {
  int y;
  int x0;
  int x1;
};

/// Pixel-membership rule used everywhere in the library: pixel (x, y) belongs
/// to the disc of centre (cx, cy) and radius r iff its centre point
/// (x+0.5, y+0.5) lies inside the circle. The rule is shared by the
/// likelihood, the renderer and the estimators so their pixel sets agree.
[[nodiscard]] inline bool pixelInDisc(int x, int y, double cx, double cy,
                                      double r) noexcept {
  const double dx = (static_cast<double>(x) + 0.5) - cx;
  const double dy = (static_cast<double>(y) + 0.5) - cy;
  return dx * dx + dy * dy <= r * r;
}

/// Inclusive range of raster rows that can contain disc pixels, clipped to
/// [0, height). Tight: row y holds a pixel centre iff |y+0.5-cy| <= r, so
/// yLo = ceil(cy-r-0.5) and yHi = floor(cy+r-0.5) — the ceil-based upper
/// bound used previously visited one extra row per disc that the
/// `disc < 0` guard then rejected at the cost of the dy² test.
/// Empty iff y0 > y1.
struct RowRange {
  int y0;
  int y1;
};
[[nodiscard]] inline RowRange discRowRange(double cy, double r,
                                           int height) noexcept {
  const int y0 = static_cast<int>(std::ceil(std::max(cy - r - 0.5, 0.0)));
  const int y1 = static_cast<int>(std::floor(
      std::min(cy + r - 0.5, static_cast<double>(height) - 1.0)));
  return {y0, y1};
}

/// Column span [x0, x1) of the disc on raster row y, clipped to [0, width).
/// Empty (x0 >= x1) when the row does not intersect the disc. One sqrt.
/// The clamps happen in double before the int casts, so arbitrarily large
/// radii/centres cannot overflow the conversion.
struct RowSpan {
  int x0;
  int x1;
};
[[nodiscard]] inline RowSpan discRowSpan(double cx, double cy, double r, int y,
                                         int width) noexcept {
  const double dy = (static_cast<double>(y) + 0.5) - cy;
  const double disc = r * r - dy * dy;
  if (disc < 0.0) return {0, 0};
  const double half = std::sqrt(disc);
  // Solve (x + 0.5 - cx)^2 <= disc for integer x: the span is the integers in
  // [lo, hi]. The clamps happen in double, so giant radii cannot overflow the
  // int casts.
  const double lo = cx - half - 0.5;
  const double hi = cx + half - 0.5;
  const double cLo = std::ceil(lo);
  const double fHi = std::floor(hi);
  int x0 = static_cast<int>(std::clamp(cLo, 0.0, static_cast<double>(width)));
  int x1 = static_cast<int>(
      std::clamp(fHi, -1.0, static_cast<double>(width) - 1.0));
  // The sqrt estimate can misplace an endpoint by one pixel when a pixel
  // centre lies exactly on the rim (e.g. a 0.6/0.8/1.0 triangle), because
  // sqrt(r^2 - dy^2) and dx^2 + dy^2 <= r^2 round differently. That is only
  // possible when an endpoint sits within the floating-point slop of the rim:
  // dist * half < slackNum bounds that slop (scaled by half to avoid a
  // divide) with several orders of magnitude of safety over the true few-ulp
  // error, so the hot path skips the verification entirely; rows thinner
  // than a pixel always verify.
  const double slackNum = 1e-12 * ((std::fabs(cx) + half + 1.0) * half + r * r);
  const double dLo = (cLo - lo) * half;
  const double dHi = (hi - fHi) * half;
  if (half < 1.0 || dLo < slackNum || half - dLo < slackNum ||
      dHi < slackNum || half - dHi < slackNum) {
    // Nudge the endpoints until they agree with the membership rule, so every
    // enumerator matches pixelInDisc bit-for-bit. Membership along a row is a
    // contiguous interval even in floating point (rounding preserves the
    // monotonicity of dx^2 in |dx|), so endpoint correction is exact.
    while (x0 <= x1 && !pixelInDisc(x0, y, cx, cy, r)) ++x0;
    while (x1 >= x0 && !pixelInDisc(x1, y, cx, cy, r)) --x1;
    while (x0 > 0 && pixelInDisc(x0 - 1, y, cx, cy, r)) --x0;
    while (x1 + 1 < width && pixelInDisc(x1 + 1, y, cx, cy, r)) ++x1;
  }
  return {x0, x1 + 1};
}

/// Invoke fn(y, x0, x1) for every non-empty row span of the disc clipped to a
/// width x height raster (x1 exclusive). This is the primitive the likelihood
/// kernels walk: one sqrt per row, and the [x0, x1) payload is contiguous in
/// memory, so the per-span work vectorises. forEachDiscPixel and discSpans
/// are thin wrappers, guaranteeing all three enumerate identical pixel sets.
template <typename Fn>
void forEachDiscSpan(double cx, double cy, double r, int width, int height,
                     Fn&& fn) {
  if (!(r > 0.0) || width <= 0 || height <= 0) return;
  const RowRange rows = discRowRange(cy, r, height);
  for (int y = rows.y0; y <= rows.y1; ++y) {
    const RowSpan s = discRowSpan(cx, cy, r, y, width);
    if (s.x0 < s.x1) fn(y, s.x0, s.x1);
  }
}

/// Invoke fn(x, y) for every pixel of the disc clipped to a width x height
/// raster. Spans are computed per row with one sqrt, so the cost is
/// O(r) sqrt calls + O(area) callback invocations.
template <typename Fn>
void forEachDiscPixel(double cx, double cy, double r, int width, int height,
                      Fn&& fn) {
  forEachDiscSpan(cx, cy, r, width, height, [&](int y, int x0, int x1) {
    for (int x = x0; x < x1; ++x) fn(x, y);
  });
}

/// Collect the clipped disc as spans (used where a materialised list beats
/// repeated recomputation, e.g. the split/merge executor's pixel transfer).
[[nodiscard]] std::vector<Span> discSpans(double cx, double cy, double r,
                                          int width, int height);

/// Number of raster pixels of the clipped disc.
[[nodiscard]] std::size_t discPixelCount(double cx, double cy, double r,
                                         int width, int height) noexcept;

/// Additively render a disc with intensity `peak` and a linear soft edge of
/// width `softness` pixels (intensity ramps to 0 across the rim band).
void renderSoftDisc(ImageF& image, double cx, double cy, double r, float peak,
                    double softness);

}  // namespace mcmcpar::img
