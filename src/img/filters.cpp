#include "img/filters.hpp"

#include <cmath>

namespace mcmcpar::img {

ImageF threshold(const ImageF& image, float theta) {
  ImageF out(image.width(), image.height());
  for (std::size_t i = 0; i < image.pixelCount(); ++i) {
    out.pixels()[i] = image.pixels()[i] > theta ? 1.0f : 0.0f;
  }
  return out;
}

std::size_t countAboveThreshold(const ImageF& image, float theta) noexcept {
  std::size_t n = 0;
  for (float v : image.pixels()) n += (v > theta);
  return n;
}

std::size_t countAboveThreshold(const ImageF& image, float theta, int x0,
                                int y0, int w, int h) noexcept {
  std::size_t n = 0;
  const int x1 = std::min(x0 + w, image.width());
  const int y1 = std::min(y0 + h, image.height());
  for (int y = std::max(y0, 0); y < y1; ++y) {
    const float* r = image.row(y);
    for (int x = std::max(x0, 0); x < x1; ++x) n += (r[x] > theta);
  }
  return n;
}

ImageF stainEmphasis(const ImageRgb& image, const StainWeights& weights) {
  ImageF out(image.width(), image.height());
  constexpr float kInv255 = 1.0f / 255.0f;
  for (std::size_t i = 0; i < image.pixelCount(); ++i) {
    const Rgb px = image.pixels()[i];
    const float v = weights.bias +
                    weights.r * static_cast<float>(px.r) * kInv255 +
                    weights.g * static_cast<float>(px.g) * kInv255 +
                    weights.b * static_cast<float>(px.b) * kInv255;
    out.pixels()[i] = std::clamp(v, 0.0f, 1.0f);
  }
  return out;
}

ImageF boxBlur(const ImageF& image, int radius) {
  if (radius <= 0 || image.empty()) return image;
  const int w = image.width();
  const int h = image.height();
  const float inv = 1.0f / static_cast<float>(2 * radius + 1);

  // Horizontal pass with a running sum; edges clamp to the border pixel.
  ImageF tmp(w, h);
  for (int y = 0; y < h; ++y) {
    const float* src = image.row(y);
    float* dst = tmp.row(y);
    float acc = 0.0f;
    for (int k = -radius; k <= radius; ++k) acc += src[std::clamp(k, 0, w - 1)];
    for (int x = 0; x < w; ++x) {
      dst[x] = acc * inv;
      const int add = std::clamp(x + radius + 1, 0, w - 1);
      const int sub = std::clamp(x - radius, 0, w - 1);
      acc += src[add] - src[sub];
    }
  }

  // Vertical pass.
  ImageF out(w, h);
  std::vector<float> acc(static_cast<std::size_t>(w), 0.0f);
  for (int x = 0; x < w; ++x) {
    float a = 0.0f;
    for (int k = -radius; k <= radius; ++k) {
      a += tmp(x, std::clamp(k, 0, h - 1));
    }
    acc[static_cast<std::size_t>(x)] = a;
  }
  for (int y = 0; y < h; ++y) {
    float* dst = out.row(y);
    const float* addRow = tmp.row(std::clamp(y + radius + 1, 0, h - 1));
    const float* subRow = tmp.row(std::clamp(y - radius, 0, h - 1));
    for (int x = 0; x < w; ++x) {
      dst[x] = acc[static_cast<std::size_t>(x)] * inv;
      acc[static_cast<std::size_t>(x)] += addRow[x] - subRow[x];
    }
  }
  return out;
}

ImageF gaussianBlurApprox(const ImageF& image, float sigma) {
  if (sigma <= 0.0f) return image;
  // Three box passes whose combined variance matches sigma^2:
  // box of half-width r has variance r(r+1)/3 per pass.
  const int r = std::max(
      1, static_cast<int>(std::lround(std::sqrt(sigma * sigma) * 0.88f)));
  return boxBlur(boxBlur(boxBlur(image, r), r), r);
}

std::vector<bool> columnOccupancy(const ImageF& image, float theta) {
  std::vector<bool> occ(static_cast<std::size_t>(image.width()), false);
  for (int y = 0; y < image.height(); ++y) {
    const float* r = image.row(y);
    for (int x = 0; x < image.width(); ++x) {
      if (r[x] > theta) occ[static_cast<std::size_t>(x)] = true;
    }
  }
  return occ;
}

std::vector<bool> rowOccupancy(const ImageF& image, float theta) {
  std::vector<bool> occ(static_cast<std::size_t>(image.height()), false);
  for (int y = 0; y < image.height(); ++y) {
    const float* r = image.row(y);
    bool any = false;
    for (int x = 0; x < image.width(); ++x) any = any || (r[x] > theta);
    occ[static_cast<std::size_t>(y)] = any;
  }
  return occ;
}

}  // namespace mcmcpar::img
