#pragma once

#include "img/image.hpp"

namespace mcmcpar::img {

/// Binary threshold: output 1.0f where intensity > theta, else 0.0f.
/// This is the filter of eq. (5) in the paper (theta = 0.5 in §IX).
[[nodiscard]] ImageF threshold(const ImageF& image, float theta);

/// Count of pixels strictly above theta (the numerator of eq. 5).
[[nodiscard]] std::size_t countAboveThreshold(const ImageF& image, float theta) noexcept;

/// Count of pixels above theta inside the rectangle [x0,x0+w) x [y0,y0+h).
[[nodiscard]] std::size_t countAboveThreshold(const ImageF& image, float theta,
                                              int x0, int y0, int w, int h) noexcept;

/// Channel weights for the stain-emphasis filter. The paper "filters the
/// input image to emphasise the colour of interest"; for haematoxylin-like
/// stains the red channel is suppressed and blue emphasised.
struct StainWeights {
  float r = -0.2f;
  float g = -0.2f;
  float b = 1.4f;
  float bias = 0.0f;
};

/// Project an RGB image onto a scalar "stain intensity" raster in [0, 1]
/// using a per-channel linear combination followed by clamping.
[[nodiscard]] ImageF stainEmphasis(const ImageRgb& image, const StainWeights& weights = {});

/// Separable box blur with half-width `radius` (window 2r+1), edge-clamped.
/// Used by the synthetic generator to soften disc edges and by the
/// intelligent partitioner's pre-processing.
[[nodiscard]] ImageF boxBlur(const ImageF& image, int radius);

/// 3-pass box blur approximating a Gaussian of the given sigma.
[[nodiscard]] ImageF gaussianBlurApprox(const ImageF& image, float sigma);

/// Per-column "any pixel above theta" occupancy (length = width).
/// Used by the intelligent partitioner to find empty columns.
[[nodiscard]] std::vector<bool> columnOccupancy(const ImageF& image, float theta);

/// Per-row "any pixel above theta" occupancy (length = height).
[[nodiscard]] std::vector<bool> rowOccupancy(const ImageF& image, float theta);

}  // namespace mcmcpar::img
