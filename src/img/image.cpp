#include "img/image.hpp"

#include <cmath>

namespace mcmcpar::img {

MinMax minMax(const ImageF& image) noexcept {
  if (image.empty()) return {};
  float lo = image.pixels().front();
  float hi = lo;
  for (float v : image.pixels()) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  return {lo, hi};
}

ImageF normalised(const ImageF& image) {
  const auto [lo, hi] = minMax(image);
  ImageF out(image.width(), image.height());
  if (hi <= lo) return out;
  const float scale = 1.0f / (hi - lo);
  for (std::size_t i = 0; i < image.pixelCount(); ++i) {
    out.pixels()[i] = (image.pixels()[i] - lo) * scale;
  }
  return out;
}

void clampInPlace(ImageF& image, float lo, float hi) noexcept {
  for (float& v : image.pixels()) v = std::clamp(v, lo, hi);
}

ImageU8 toU8(const ImageF& image) {
  ImageU8 out(image.width(), image.height());
  for (std::size_t i = 0; i < image.pixelCount(); ++i) {
    const float v = std::clamp(image.pixels()[i], 0.0f, 1.0f);
    out.pixels()[i] = static_cast<std::uint8_t>(std::lround(v * 255.0f));
  }
  return out;
}

ImageF toF(const ImageU8& image) {
  ImageF out(image.width(), image.height());
  for (std::size_t i = 0; i < image.pixelCount(); ++i) {
    out.pixels()[i] = static_cast<float>(image.pixels()[i]) / 255.0f;
  }
  return out;
}

}  // namespace mcmcpar::img
