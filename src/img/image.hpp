#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <vector>

namespace mcmcpar::img {

/// 8-bit RGB pixel, used only for visualisation output.
struct Rgb {
  std::uint8_t r = 0;
  std::uint8_t g = 0;
  std::uint8_t b = 0;

  friend bool operator==(const Rgb&, const Rgb&) = default;
};

/// A dense row-major 2-D raster.
///
/// This is the only image representation in the library: the MCMC likelihood,
/// the partitioners and the synthetic generator all operate on `Image<float>`
/// with intensities in [0, 1]. Bounds are asserted in debug builds; hot loops
/// use the unchecked `row()` pointers.
template <typename T>
class Image {
 public:
  Image() = default;

  /// Construct a width x height image with every pixel set to `fill`.
  Image(int width, int height, T fill = T{})
      : width_(width),
        height_(height),
        data_(static_cast<std::size_t>(width) * static_cast<std::size_t>(height),
              fill) {
    assert(width >= 0 && height >= 0);
  }

  [[nodiscard]] int width() const noexcept { return width_; }
  [[nodiscard]] int height() const noexcept { return height_; }
  [[nodiscard]] std::size_t pixelCount() const noexcept { return data_.size(); }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }

  [[nodiscard]] bool contains(int x, int y) const noexcept {
    return x >= 0 && y >= 0 && x < width_ && y < height_;
  }

  T& operator()(int x, int y) noexcept {
    assert(contains(x, y));
    return data_[static_cast<std::size_t>(y) * width_ + x];
  }
  const T& operator()(int x, int y) const noexcept {
    assert(contains(x, y));
    return data_[static_cast<std::size_t>(y) * width_ + x];
  }

  /// Pointer to the first pixel of row y (unchecked fast path).
  T* row(int y) noexcept { return data_.data() + static_cast<std::size_t>(y) * width_; }
  const T* row(int y) const noexcept {
    return data_.data() + static_cast<std::size_t>(y) * width_;
  }

  [[nodiscard]] std::vector<T>& pixels() noexcept { return data_; }
  [[nodiscard]] const std::vector<T>& pixels() const noexcept { return data_; }

  void fill(T value) { std::fill(data_.begin(), data_.end(), value); }

  /// Copy the axis-aligned rectangle [x0, x0+w) x [y0, y0+h); the rectangle
  /// must be inside the image.
  [[nodiscard]] Image crop(int x0, int y0, int w, int h) const {
    assert(x0 >= 0 && y0 >= 0 && x0 + w <= width_ && y0 + h <= height_);
    Image out(w, h);
    for (int y = 0; y < h; ++y) {
      const T* src = row(y0 + y) + x0;
      std::copy(src, src + w, out.row(y));
    }
    return out;
  }

  friend bool operator==(const Image&, const Image&) = default;

 private:
  int width_ = 0;
  int height_ = 0;
  std::vector<T> data_;
};

using ImageF = Image<float>;
using ImageU8 = Image<std::uint8_t>;
using ImageRgb = Image<Rgb>;

/// Min/max pixel values of a float image; returns {0, 0} for empty images.
struct MinMax {
  float minValue = 0.0f;
  float maxValue = 0.0f;
};
[[nodiscard]] MinMax minMax(const ImageF& image) noexcept;

/// Linearly rescale a float image so its range becomes exactly [0, 1].
/// Constant images map to all-zero.
[[nodiscard]] ImageF normalised(const ImageF& image);

/// Clamp all pixels into [lo, hi] in place.
void clampInPlace(ImageF& image, float lo, float hi) noexcept;

/// Convert a [0,1] float image to 8-bit grey (values clamped, round-to-nearest).
[[nodiscard]] ImageU8 toU8(const ImageF& image);

/// Convert an 8-bit grey image to floats in [0, 1].
[[nodiscard]] ImageF toF(const ImageU8& image);

}  // namespace mcmcpar::img
