#include "img/integral_image.hpp"

#include <algorithm>

namespace mcmcpar::img {

IntegralImage::IntegralImage(const ImageF& image)
    : width_(image.width()), height_(image.height()) {
  table_.assign(static_cast<std::size_t>(width_ + 1) * (height_ + 1), 0.0);
  for (int y = 0; y < height_; ++y) {
    const float* src = image.row(y);
    double rowSum = 0.0;
    for (int x = 0; x < width_; ++x) {
      rowSum += static_cast<double>(src[x]);
      table_[static_cast<std::size_t>(y + 1) * (width_ + 1) + (x + 1)] =
          tableAt(x + 1, y) + rowSum;
    }
  }
}

double IntegralImage::sum(int x0, int y0, int w, int h) const noexcept {
  const int xa = std::clamp(x0, 0, width_);
  const int ya = std::clamp(y0, 0, height_);
  const int xb = std::clamp(x0 + w, 0, width_);
  const int yb = std::clamp(y0 + h, 0, height_);
  if (xb <= xa || yb <= ya) return 0.0;
  return tableAt(xb, yb) - tableAt(xa, yb) - tableAt(xb, ya) + tableAt(xa, ya);
}

double IntegralImage::mean(int x0, int y0, int w, int h) const noexcept {
  const int xa = std::clamp(x0, 0, width_);
  const int ya = std::clamp(y0, 0, height_);
  const int xb = std::clamp(x0 + w, 0, width_);
  const int yb = std::clamp(y0 + h, 0, height_);
  const long long area = static_cast<long long>(xb - xa) * (yb - ya);
  if (area <= 0) return 0.0;
  return sum(xa, ya, xb - xa, yb - ya) / static_cast<double>(area);
}

}  // namespace mcmcpar::img
