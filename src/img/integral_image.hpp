#pragma once

#include <cstdint>

#include "img/image.hpp"

namespace mcmcpar::img {

/// Summed-area table over a float raster.
///
/// `sum(x0, y0, w, h)` returns the exact sum of pixels in the rectangle in
/// O(1) after O(WH) construction. Used by the per-partition prior estimator
/// (eq. 5 counts thresholded pixels per rectangle) and by region statistics
/// in the benchmarks. Accumulation is in double to keep 1024x1024 sums exact.
class IntegralImage {
 public:
  IntegralImage() = default;

  /// Build from an image.
  explicit IntegralImage(const ImageF& image);

  [[nodiscard]] int width() const noexcept { return width_; }
  [[nodiscard]] int height() const noexcept { return height_; }

  /// Sum over [x0, x0+w) x [y0, y0+h); the rectangle is clipped to the image.
  [[nodiscard]] double sum(int x0, int y0, int w, int h) const noexcept;

  /// Mean over the clipped rectangle; 0 when the clipped rectangle is empty.
  [[nodiscard]] double mean(int x0, int y0, int w, int h) const noexcept;

 private:
  // table_ has (width_+1) x (height_+1) entries; entry (x, y) is the sum of
  // all pixels strictly above and left of (x, y).
  [[nodiscard]] double tableAt(int x, int y) const noexcept {
    return table_[static_cast<std::size_t>(y) * (width_ + 1) + x];
  }

  int width_ = 0;
  int height_ = 0;
  std::vector<double> table_;
};

}  // namespace mcmcpar::img
