#include "img/overlay.hpp"

#include <cmath>
#include <numbers>

namespace mcmcpar::img {

ImageRgb greyToRgb(const ImageF& image) {
  ImageRgb out(image.width(), image.height());
  for (std::size_t i = 0; i < image.pixelCount(); ++i) {
    const float v = std::clamp(image.pixels()[i], 0.0f, 1.0f);
    const auto g = static_cast<std::uint8_t>(std::lround(v * 255.0f));
    out.pixels()[i] = Rgb{g, g, g};
  }
  return out;
}

void drawCircle(ImageRgb& image, double cx, double cy, double r, Rgb colour) {
  if (r <= 0.0) return;
  // Parametric sweep with ~1px arc steps; cheap and clip-safe.
  const int steps = std::max(16, static_cast<int>(std::ceil(
                                     2.0 * std::numbers::pi * r * 1.5)));
  for (int i = 0; i < steps; ++i) {
    const double t =
        2.0 * std::numbers::pi * static_cast<double>(i) / steps;
    const int x = static_cast<int>(std::lround(cx + r * std::cos(t) - 0.5));
    const int y = static_cast<int>(std::lround(cy + r * std::sin(t) - 0.5));
    if (image.contains(x, y)) image(x, y) = colour;
  }
}

void drawCircles(ImageRgb& image, const std::vector<SceneCircle>& circles,
                 Rgb colour) {
  for (const SceneCircle& c : circles) drawCircle(image, c.x, c.y, c.r, colour);
}

void drawRect(ImageRgb& image, int x0, int y0, int w, int h, Rgb colour) {
  const int x1 = x0 + w - 1;
  const int y1 = y0 + h - 1;
  for (int x = std::max(0, x0); x <= std::min(image.width() - 1, x1); ++x) {
    if (y0 >= 0 && y0 < image.height()) image(x, y0) = colour;
    if (y1 >= 0 && y1 < image.height()) image(x, y1) = colour;
  }
  for (int y = std::max(0, y0); y <= std::min(image.height() - 1, y1); ++y) {
    if (x0 >= 0 && x0 < image.width()) image(x0, y) = colour;
    if (x1 >= 0 && x1 < image.width()) image(x1, y) = colour;
  }
}

void drawVerticalLines(ImageRgb& image, const std::vector<int>& xs,
                       Rgb colour) {
  for (int x : xs) {
    if (x < 0 || x >= image.width()) continue;
    for (int y = 0; y < image.height(); ++y) image(x, y) = colour;
  }
}

void drawHorizontalLines(ImageRgb& image, const std::vector<int>& ys,
                         Rgb colour) {
  for (int y : ys) {
    if (y < 0 || y >= image.height()) continue;
    for (int x = 0; x < image.width(); ++x) image(x, y) = colour;
  }
}

}  // namespace mcmcpar::img
