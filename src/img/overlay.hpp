#pragma once

#include <vector>

#include "img/image.hpp"
#include "img/synth.hpp"

namespace mcmcpar::img {

/// Visualisation helpers for the examples and for debugging experiments.
/// These produce the kind of pictures shown in the paper's figs. 3 and 4
/// (partition lines, fitted circles on top of the input image).

/// Expand a grey [0,1] image to RGB.
[[nodiscard]] ImageRgb greyToRgb(const ImageF& image);

/// Draw a 1-pixel circle outline (midpoint-style parametric sweep).
void drawCircle(ImageRgb& image, double cx, double cy, double r, Rgb colour);

/// Draw all circles of a model.
void drawCircles(ImageRgb& image, const std::vector<SceneCircle>& circles,
                 Rgb colour);

/// Draw an axis-aligned rectangle outline; coordinates are clipped.
void drawRect(ImageRgb& image, int x0, int y0, int w, int h, Rgb colour);

/// Draw vertical lines at the given x coordinates (partition cuts).
void drawVerticalLines(ImageRgb& image, const std::vector<int>& xs, Rgb colour);

/// Draw horizontal lines at the given y coordinates.
void drawHorizontalLines(ImageRgb& image, const std::vector<int>& ys, Rgb colour);

}  // namespace mcmcpar::img
