#include "img/pnm_io.hpp"

#include <fstream>
#include <istream>
#include <ostream>

namespace mcmcpar::img {

namespace {

/// Skip whitespace and '#' comment lines between PNM header tokens.
void skipSeparators(std::istream& in) {
  for (;;) {
    const int c = in.peek();
    if (c == '#') {
      std::string line;
      std::getline(in, line);
    } else if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
      in.get();
    } else {
      return;
    }
  }
}

int readHeaderInt(std::istream& in, const char* what) {
  skipSeparators(in);
  int value = 0;
  if (!(in >> value) || value < 0) {
    throw PnmError(std::string("PNM: bad header field: ") + what);
  }
  return value;
}

struct Header {
  std::string magic;
  int width = 0;
  int height = 0;
  int maxval = 0;
};

Header readHeader(std::istream& in) {
  Header h;
  in >> h.magic;
  if (in.fail()) throw PnmError("PNM: missing magic number");
  h.width = readHeaderInt(in, "width");
  h.height = readHeaderInt(in, "height");
  h.maxval = readHeaderInt(in, "maxval");
  if (h.maxval <= 0 || h.maxval > 255) {
    throw PnmError("PNM: unsupported maxval (must be 1..255)");
  }
  if (static_cast<long long>(h.width) * h.height > (1LL << 30)) {
    throw PnmError("PNM: implausibly large image");
  }
  return h;
}

void expectBinaryDelimiter(std::istream& in) {
  const int c = in.get();
  if (c != ' ' && c != '\t' && c != '\r' && c != '\n') {
    throw PnmError("PNM: missing whitespace before binary payload");
  }
}

std::ofstream openOut(const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw PnmError("PNM: cannot open for writing: " + path);
  return out;
}

std::ifstream openIn(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw PnmError("PNM: cannot open for reading: " + path);
  return in;
}

}  // namespace

void writePgm(const ImageU8& image, std::ostream& out) {
  out << "P5\n" << image.width() << ' ' << image.height() << "\n255\n";
  out.write(reinterpret_cast<const char*>(image.pixels().data()),
            static_cast<std::streamsize>(image.pixelCount()));
  if (!out) throw PnmError("PNM: write failed");
}

void writePgm(const ImageU8& image, const std::string& path) {
  auto out = openOut(path);
  writePgm(image, out);
}

void writePpm(const ImageRgb& image, std::ostream& out) {
  out << "P6\n" << image.width() << ' ' << image.height() << "\n255\n";
  out.write(reinterpret_cast<const char*>(image.pixels().data()),
            static_cast<std::streamsize>(image.pixelCount() * 3));
  if (!out) throw PnmError("PNM: write failed");
}

void writePpm(const ImageRgb& image, const std::string& path) {
  auto out = openOut(path);
  writePpm(image, out);
}

ImageU8 readPgm(std::istream& in) {
  const Header h = readHeader(in);
  ImageU8 image(h.width, h.height);
  if (h.magic == "P5") {
    expectBinaryDelimiter(in);
    in.read(reinterpret_cast<char*>(image.pixels().data()),
            static_cast<std::streamsize>(image.pixelCount()));
    if (in.gcount() != static_cast<std::streamsize>(image.pixelCount())) {
      throw PnmError("PGM: truncated pixel data");
    }
  } else if (h.magic == "P2") {
    for (auto& px : image.pixels()) {
      int v = 0;
      if (!(in >> v) || v < 0 || v > h.maxval) {
        throw PnmError("PGM: bad ASCII pixel");
      }
      px = static_cast<std::uint8_t>(v);
    }
  } else {
    throw PnmError("PGM: unsupported magic: " + h.magic);
  }
  return image;
}

ImageU8 readPgm(const std::string& path) {
  auto in = openIn(path);
  return readPgm(in);
}

ImageRgb readPpm(std::istream& in) {
  const Header h = readHeader(in);
  ImageRgb image(h.width, h.height);
  if (h.magic == "P6") {
    expectBinaryDelimiter(in);
    in.read(reinterpret_cast<char*>(image.pixels().data()),
            static_cast<std::streamsize>(image.pixelCount() * 3));
    if (in.gcount() != static_cast<std::streamsize>(image.pixelCount() * 3)) {
      throw PnmError("PPM: truncated pixel data");
    }
  } else if (h.magic == "P3") {
    for (auto& px : image.pixels()) {
      int r = 0, g = 0, b = 0;
      if (!(in >> r >> g >> b) || r < 0 || g < 0 || b < 0 || r > h.maxval ||
          g > h.maxval || b > h.maxval) {
        throw PnmError("PPM: bad ASCII pixel");
      }
      px = Rgb{static_cast<std::uint8_t>(r), static_cast<std::uint8_t>(g),
               static_cast<std::uint8_t>(b)};
    }
  } else {
    throw PnmError("PPM: unsupported magic: " + h.magic);
  }
  return image;
}

ImageRgb readPpm(const std::string& path) {
  auto in = openIn(path);
  return readPpm(in);
}

}  // namespace mcmcpar::img
