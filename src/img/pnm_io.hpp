#pragma once

#include <iosfwd>
#include <stdexcept>
#include <string>

#include "img/image.hpp"

namespace mcmcpar::img {

/// Error thrown by the PNM reader/writer on malformed files or I/O failure.
class PnmError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Write an 8-bit grey image as binary PGM (P5).
void writePgm(const ImageU8& image, const std::string& path);
void writePgm(const ImageU8& image, std::ostream& out);

/// Write an RGB image as binary PPM (P6).
void writePpm(const ImageRgb& image, const std::string& path);
void writePpm(const ImageRgb& image, std::ostream& out);

/// Read a PGM file (P2 ASCII or P5 binary, maxval <= 255).
[[nodiscard]] ImageU8 readPgm(const std::string& path);
[[nodiscard]] ImageU8 readPgm(std::istream& in);

/// Read a PPM file (P3 ASCII or P6 binary, maxval <= 255).
[[nodiscard]] ImageRgb readPpm(const std::string& path);
[[nodiscard]] ImageRgb readPpm(std::istream& in);

}  // namespace mcmcpar::img
