#include "img/synth.hpp"

#include <algorithm>
#include <cmath>

#include "img/disc_raster.hpp"
#include "rng/stream.hpp"

namespace mcmcpar::img {

namespace {

/// Rejection-sample circle centres in a rectangle honouring a pairwise
/// minimum separation; gives up on separation after enough failures so the
/// generator is total for any requested density.
std::vector<SceneCircle> scatter(rng::Stream& stream, double x0, double y0,
                                 double w, double h, int count,
                                 double radiusMean, double radiusStd,
                                 double separationFactor) {
  std::vector<SceneCircle> placed;
  placed.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    SceneCircle candidate;
    bool ok = false;
    for (int attempt = 0; attempt < 512 && !ok; ++attempt) {
      candidate.r = std::max(2.0, stream.normal(radiusMean, radiusStd));
      const double margin = candidate.r + 1.0;
      if (w <= 2 * margin || h <= 2 * margin) break;
      candidate.x = stream.uniform(x0 + margin, x0 + w - margin);
      candidate.y = stream.uniform(y0 + margin, y0 + h - margin);
      ok = true;
      for (const SceneCircle& other : placed) {
        const double dx = candidate.x - other.x;
        const double dy = candidate.y - other.y;
        const double minDist = separationFactor * (candidate.r + other.r);
        if (dx * dx + dy * dy < minDist * minDist) {
          ok = false;
          break;
        }
      }
    }
    if (!ok) {
      // Fall back to an unconstrained position so the requested count is
      // always honoured (dense scenes simply end up overlapping).
      candidate.r = std::max(2.0, stream.normal(radiusMean, radiusStd));
      const double margin = candidate.r + 1.0;
      candidate.x = stream.uniform(x0 + margin, std::max(x0 + margin + 1e-9, x0 + w - margin));
      candidate.y = stream.uniform(y0 + margin, std::max(y0 + margin + 1e-9, y0 + h - margin));
    }
    placed.push_back(candidate);
  }
  return placed;
}

/// Render a truth layout into a fresh image: soft discs over the
/// background, optional illumination gradient, Gaussian noise from
/// `stream`, clamped to [0, 1].
ImageF renderScene(const SceneSpec& spec,
                   const std::vector<SceneCircle>& truth,
                   rng::Stream& stream) {
  ImageF image(spec.width, spec.height, spec.background);

  for (const SceneCircle& c : truth) {
    renderSoftDisc(image, c.x, c.y, c.r, spec.foreground - spec.background,
                   spec.edgeSoftness);
  }

  if (spec.gradientAmplitude != 0.0f && spec.width > 1) {
    for (int y = 0; y < spec.height; ++y) {
      float* row = image.row(y);
      for (int x = 0; x < spec.width; ++x) {
        row[x] += spec.gradientAmplitude * static_cast<float>(x) /
                  static_cast<float>(spec.width - 1);
      }
    }
  }

  if (spec.noiseStd > 0.0f) {
    for (float& v : image.pixels()) {
      v += static_cast<float>(stream.normal(0.0, spec.noiseStd));
    }
  }

  clampInPlace(image, 0.0f, 1.0f);
  return image;
}

/// Reflect `v` into [lo, hi] (bounce off both ends).
double reflectInto(double v, double lo, double hi) {
  if (hi <= lo) return lo;
  const double span = hi - lo;
  double t = std::fmod(v - lo, 2.0 * span);
  if (t < 0.0) t += 2.0 * span;
  return t <= span ? lo + t : lo + 2.0 * span - t;
}

}  // namespace

Scene generateScene(const SceneSpec& spec) {
  rng::Stream stream(spec.seed);
  Scene scene;

  if (spec.clusters.empty()) {
    scene.truth = scatter(stream, 0.0, 0.0, spec.width, spec.height,
                          spec.count, spec.radiusMean, spec.radiusStd,
                          spec.minSeparationFactor);
  } else {
    for (const ClusterSpec& c : spec.clusters) {
      // overlapFraction interpolates the separation factor from 1 (disjoint)
      // down to 0 (free overlap).
      const double separation = 1.0 - std::clamp(c.overlapFraction, 0.0, 1.0);
      auto circles = scatter(stream, c.x0, c.y0, c.w, c.h, c.count,
                             spec.radiusMean, spec.radiusStd, separation);
      scene.truth.insert(scene.truth.end(), circles.begin(), circles.end());
    }
  }

  scene.image = renderScene(spec, scene.truth, stream);
  return scene;
}

std::vector<Scene> generateDriftingSequence(const DriftSpec& spec) {
  const int count = std::max(1, spec.frames);
  std::vector<Scene> frames;
  frames.reserve(static_cast<std::size_t>(count));
  frames.push_back(generateScene(spec.scene));

  // Velocities come from a derived stream so the frame-0 layout and noise
  // stay bit-identical to a plain generateScene call.
  rng::Stream motion = rng::Stream(spec.scene.seed).derive(0x6d6f7469u);
  struct Velocity {
    double dx, dy;
  };
  std::vector<Velocity> velocities;
  velocities.reserve(frames.front().truth.size());
  for (std::size_t i = 0; i < frames.front().truth.size(); ++i) {
    velocities.push_back(Velocity{
        motion.uniform(-spec.maxSpeed, spec.maxSpeed),
        motion.uniform(-spec.maxSpeed, spec.maxSpeed)});
  }

  std::vector<SceneCircle> truth = frames.front().truth;
  const rng::Stream noiseBase = rng::Stream(spec.scene.seed).derive(0x6e6f6973u);
  for (int k = 1; k < count; ++k) {
    for (std::size_t i = 0; i < truth.size(); ++i) {
      const double margin = truth[i].r + 1.0;
      truth[i].x = reflectInto(truth[i].x + velocities[i].dx, margin,
                               spec.scene.width - margin);
      truth[i].y = reflectInto(truth[i].y + velocities[i].dy, margin,
                               spec.scene.height - margin);
    }
    rng::Stream noise = noiseBase.substream(static_cast<unsigned>(k));
    Scene frame;
    frame.truth = truth;
    frame.image = renderScene(spec.scene, frame.truth, noise);
    frames.push_back(std::move(frame));
  }
  return frames;
}

SceneSpec cellScene(int width, int height, int count, double radius,
                    std::uint64_t seed) {
  SceneSpec spec;
  spec.width = width;
  spec.height = height;
  spec.count = count;
  spec.radiusMean = radius;
  spec.radiusStd = radius * 0.1;
  spec.seed = seed;
  return spec;
}

SceneSpec beadsScene(std::uint64_t seed) {
  SceneSpec spec;
  spec.width = 512;
  spec.height = 416;  // 512 * 416 = 212 992 ~ 2.13e5 px^2 as in Table I
  spec.radiusMean = 8.0;
  spec.radiusStd = 0.4;  // "very little variation in the radii"
  spec.noiseStd = 0.02f;
  // Latex beads are high-contrast: keep edges hard so the thresholded area
  // matches the nominal disc area and eq. 5 *under*-counts in clumps
  // (Table I: 4.9 measured vs 6 visual in partition A).
  spec.edgeSoftness = 0.5;
  spec.seed = seed;

  // Three full-height strips separated by empty columns. Strip widths follow
  // Table I's relative areas (A 0.147, B 0.624, C 0.226 of the image);
  // cluster rectangles are inset so the gaps stay empty for the
  // intelligent partitioner's column scan.
  // Strip A: columns [0, 75); gap; strip B: [95, 415); gap; strip C: [435, 512).
  spec.clusters = {
      // A: 6 beads, noticeably clumped (threshold estimate ~4.9 in Table I).
      ClusterSpec{8.0, 120.0, 60.0, 180.0, 6, 0.45},
      // B: 38 beads, mostly separate (threshold estimate == visual count).
      ClusterSpec{103.0, 8.0, 304.0, 400.0, 38, 0.05},
      // C: 4 beads, clumped (threshold estimate ~3.1).
      ClusterSpec{443.0, 150.0, 61.0, 140.0, 4, 0.5},
  };
  return spec;
}

}  // namespace mcmcpar::img
