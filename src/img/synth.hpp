#pragma once

#include <cstdint>
#include <vector>

#include "img/image.hpp"

namespace mcmcpar::img {

/// A ground-truth artifact in a synthetic scene.
struct SceneCircle {
  double x = 0.0;
  double y = 0.0;
  double r = 0.0;
};

/// A clump of artifacts, for beads-style clustered scenes: `count` circles
/// scattered in the rectangle [x0, x0+w) x [y0, y0+h) with an overlap knob.
struct ClusterSpec {
  double x0 = 0.0;
  double y0 = 0.0;
  double w = 0.0;
  double h = 0.0;
  int count = 0;
  /// 0 => centres at least 2r apart (disjoint discs); 1 => unconstrained.
  double overlapFraction = 0.0;
};

/// Parameters of the synthetic scene generator.
///
/// The generator substitutes for the paper's micrographs (see DESIGN.md §2):
/// it renders soft-edged bright discs on a dark background, adds an optional
/// illumination gradient and Gaussian pixel noise, and returns the ground
/// truth so experiments can score precision/recall.
struct SceneSpec {
  int width = 512;
  int height = 512;

  /// Number of circles for the uniform layout (ignored when clusters given).
  int count = 150;
  double radiusMean = 10.0;
  double radiusStd = 1.0;

  /// Minimum centre separation as a multiple of the radius sum for the
  /// uniform layout (1.0 => tangent circles allowed, 0 => no constraint).
  double minSeparationFactor = 1.0;

  /// When non-empty, circles are laid out cluster-by-cluster instead.
  std::vector<ClusterSpec> clusters;

  float foreground = 0.85f;  ///< disc peak intensity
  float background = 0.10f;  ///< base intensity
  float noiseStd = 0.04f;    ///< additive Gaussian noise sigma
  double edgeSoftness = 1.5; ///< rim ramp width in pixels
  float gradientAmplitude = 0.0f;  ///< slow left-to-right illumination ramp

  std::uint64_t seed = 1;
};

/// A generated scene: the observed image plus its ground truth.
struct Scene {
  ImageF image;
  std::vector<SceneCircle> truth;
};

/// Generate a synthetic scene. Deterministic given the spec (including seed).
[[nodiscard]] Scene generateScene(const SceneSpec& spec);

/// Convenience spec for the paper's §VII workload: `count` cells of mean
/// radius `radius` scattered uniformly over a width x height image.
[[nodiscard]] SceneSpec cellScene(int width, int height, int count,
                                  double radius, std::uint64_t seed);

/// Convenience spec reproducing the Table I beads geometry: a 512 x 416
/// image (2.13e5 px^2) with three full-height clusters of 6 / 38 / 4 beads
/// whose strips have relative areas ~0.147 / 0.624 / 0.226, separated by
/// empty columns so the intelligent partitioner can cut between them.
[[nodiscard]] SceneSpec beadsScene(std::uint64_t seed);

/// Parameters of the synthetic drifting-circles sequence (the microscopy
/// time-lapse stand-in shared by the stream tests, tools/stream_smoke.sh
/// and bench_stream, instead of checked-in binaries).
struct DriftSpec {
  SceneSpec scene;   ///< frame-0 layout and per-frame rendering knobs
  int frames = 8;
  /// Per-axis, per-frame displacement bound in pixels; each circle gets a
  /// constant velocity drawn uniformly from [-maxSpeed, maxSpeed].
  double maxSpeed = 1.5;
};

/// Generate a frame sequence: frame 0 is exactly generateScene(spec.scene);
/// later frames move each circle by its constant velocity (reflecting off
/// the image border) and re-render with frame-specific noise. Fully
/// deterministic given the spec — same spec, same frames, bit for bit.
[[nodiscard]] std::vector<Scene> generateDriftingSequence(
    const DriftSpec& spec);

}  // namespace mcmcpar::img
