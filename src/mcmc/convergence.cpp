#include "mcmc/convergence.hpp"

#include <algorithm>
#include <cmath>

namespace mcmcpar::mcmc {

std::optional<PlateauResult> iterationsToPlateau(
    const std::vector<TracePoint>& trace, const PlateauParams& params) {
  if (trace.size() < 4) return std::nullopt;

  const std::size_t tail = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::ceil(static_cast<double>(trace.size()) * params.tailFraction)));
  std::vector<double> tailValues;
  tailValues.reserve(tail);
  for (std::size_t i = trace.size() - tail; i < trace.size(); ++i) {
    tailValues.push_back(trace[i].logPosterior);
  }
  std::nth_element(tailValues.begin(), tailValues.begin() + tailValues.size() / 2,
                   tailValues.end());
  const double plateau = tailValues[tailValues.size() / 2];

  const double start = trace.front().logPosterior;
  if (plateau <= start) {
    // Chain started at/above its plateau: converged immediately.
    return PlateauResult{trace.front().iteration, plateau, start};
  }
  const double threshold = start + params.riseFraction * (plateau - start);
  for (const TracePoint& p : trace) {
    if (p.logPosterior >= threshold) {
      return PlateauResult{p.iteration, plateau, threshold};
    }
  }
  return std::nullopt;
}

bool hasFlattened(const std::vector<TracePoint>& trace, std::size_t window,
                  double epsilon) {
  if (trace.size() < 2 * window || window == 0) return false;
  double recent = 0.0, previous = 0.0;
  for (std::size_t i = trace.size() - window; i < trace.size(); ++i) {
    recent += trace[i].logPosterior;
  }
  for (std::size_t i = trace.size() - 2 * window; i < trace.size() - window; ++i) {
    previous += trace[i].logPosterior;
  }
  return std::abs(recent - previous) / static_cast<double>(window) < epsilon;
}

}  // namespace mcmcpar::mcmc
