#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "mcmc/diagnostics.hpp"

namespace mcmcpar::mcmc {

/// Deterministic burn-in detection on a log-posterior trace.
///
/// Determining true MCMC convergence is unsolved (the paper says so, §II);
/// Table I nevertheless reports "# itr to converge". This library uses a
/// reproducible plateau rule: the plateau value is the median log-posterior
/// of the final `tailFraction` of the trace, and the chain is declared
/// converged at the first trace point that climbs to `riseFraction` of the
/// way from the starting value to the plateau.
struct PlateauParams {
  double tailFraction = 0.10;
  double riseFraction = 0.99;
};

struct PlateauResult {
  std::uint64_t iteration = 0;   ///< first iteration at/above the threshold
  double plateauValue = 0.0;     ///< median of the trace tail
  double thresholdValue = 0.0;   ///< start + riseFraction * (plateau - start)
};

/// Analyse a trace; nullopt for traces with fewer than 4 points or when the
/// chain never reaches the threshold (not converged within the trace).
[[nodiscard]] std::optional<PlateauResult> iterationsToPlateau(
    const std::vector<TracePoint>& trace, const PlateauParams& params = {});

/// Simple windowed slope check: true when the mean of the last `window`
/// points differs from the mean of the preceding `window` points by less
/// than `epsilon` (an "is it still climbing?" heuristic for early stopping).
[[nodiscard]] bool hasFlattened(const std::vector<TracePoint>& trace,
                                std::size_t window, double epsilon);

}  // namespace mcmcpar::mcmc
