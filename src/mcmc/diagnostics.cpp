#include "mcmc/diagnostics.hpp"

#include <algorithm>

namespace mcmcpar::mcmc {

void Diagnostics::record(const std::string& moveName, bool accepted) {
  MoveStats& s = stats_[moveName];
  ++s.proposed;
  if (accepted) ++s.accepted;
}

void Diagnostics::tracePoint(std::uint64_t iteration, double logPosterior,
                             std::size_t circleCount) {
  trace_.push_back(TracePoint{iteration, logPosterior, circleCount});
}

Diagnostics::MoveStats Diagnostics::aggregate(
    const std::vector<std::string>& names) const {
  MoveStats total;
  for (const auto& [name, s] : stats_) {
    if (!names.empty() &&
        std::find(names.begin(), names.end(), name) == names.end()) {
      continue;
    }
    total.proposed += s.proposed;
    total.accepted += s.accepted;
  }
  return total;
}

void Diagnostics::merge(const Diagnostics& other) {
  for (const auto& [name, s] : other.stats_) {
    MoveStats& mine = stats_[name];
    mine.proposed += s.proposed;
    mine.accepted += s.accepted;
  }
  trace_.insert(trace_.end(), other.trace_.begin(), other.trace_.end());
  std::stable_sort(trace_.begin(), trace_.end(),
                   [](const TracePoint& a, const TracePoint& b) {
                     return a.iteration < b.iteration;
                   });
}

void Diagnostics::clear() {
  stats_.clear();
  trace_.clear();
}

}  // namespace mcmcpar::mcmc
