#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace mcmcpar::mcmc {

/// One sampled point of the chain's trajectory.
struct TracePoint {
  std::uint64_t iteration = 0;
  double logPosterior = 0.0;
  std::size_t circleCount = 0;
};

/// Per-move proposal/acceptance counters plus a log-posterior trace.
///
/// Rejection rates feed the speculative-moves prediction (eqs. 3-4 need
/// pgr and plr); the trace feeds the convergence detector.
class Diagnostics {
 public:
  /// Record a proposal outcome for the named move.
  void record(const std::string& moveName, bool accepted);

  /// Append a trace point.
  void tracePoint(std::uint64_t iteration, double logPosterior,
                  std::size_t circleCount);

  struct MoveStats {
    std::uint64_t proposed = 0;
    std::uint64_t accepted = 0;

    [[nodiscard]] double acceptanceRate() const noexcept {
      return proposed == 0 ? 0.0
                           : static_cast<double>(accepted) /
                                 static_cast<double>(proposed);
    }
    [[nodiscard]] double rejectionRate() const noexcept {
      return proposed == 0 ? 0.0 : 1.0 - acceptanceRate();
    }
  };

  [[nodiscard]] const std::map<std::string, MoveStats>& perMove() const noexcept {
    return stats_;
  }
  [[nodiscard]] const std::vector<TracePoint>& trace() const noexcept {
    return trace_;
  }

  /// Aggregate counts over a set of move names (empty = all moves).
  [[nodiscard]] MoveStats aggregate(
      const std::vector<std::string>& names = {}) const;

  [[nodiscard]] std::uint64_t totalProposed() const noexcept {
    return aggregate().proposed;
  }

  /// Merge another diagnostics object into this one (per-partition workers
  /// keep local diagnostics that the executor folds together; traces are
  /// concatenated and re-sorted by iteration).
  void merge(const Diagnostics& other);

  void clear();

 private:
  std::map<std::string, MoveStats> stats_;
  std::vector<TracePoint> trace_;
};

}  // namespace mcmcpar::mcmc
