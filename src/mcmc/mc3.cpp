#include "mcmc/mc3.hpp"

#include <cassert>
#include <cmath>

#include "par/concurrency.hpp"

namespace mcmcpar::mcmc {

bool temperedStep(model::ModelState& state, const MoveRegistry& registry,
                  double beta, rng::Stream& stream, Diagnostics* diagnostics) {
  const Move& move = registry.sampleAny(stream);
  PendingMove pending = move.propose(state, {}, stream);
  if (pending.valid()) {
    // Temper only the posterior part; proposal ratios and Jacobians belong
    // to the transition kernel, not to the target density.
    const double remainder = pending.logAlpha - pending.logPosteriorDelta;
    pending.logAlpha = beta * pending.logPosteriorDelta + remainder;
  }
  const bool accepted = acceptAndCommit(state, pending, stream);
  if (diagnostics != nullptr) diagnostics->record(move.name(), accepted);
  return accepted;
}

struct Mc3Sampler::Impl {
  const MoveRegistry& registry;
  Mc3Params params;
  std::vector<std::unique_ptr<model::ModelState>> chains;
  std::vector<rng::Stream> streams;
  std::vector<double> betas;
  Diagnostics coldDiagnostics;
  Mc3Stats stats;
  rng::Stream swapStream;
  std::unique_ptr<par::ThreadPool> pool;
  std::uint64_t nextTrace = 0;

  Impl(const img::ImageF& filtered, const model::PriorParams& prior,
       const model::LikelihoodParams& likelihood, const MoveRegistry& reg,
       const Mc3Params& p, std::size_t initialCircles, std::uint64_t seed)
      : registry(reg), params(p), swapStream(rng::Stream(seed).derive(0xABBA)) {
    params.chains = std::max(params.chains, 1u);
    // A zero interval would make run()'s step = min(0, remaining) spin.
    params.swapInterval = std::max<std::uint64_t>(params.swapInterval, 1);
    const rng::Stream root(seed);
    for (unsigned k = 0; k < params.chains; ++k) {
      chains.push_back(
          std::make_unique<model::ModelState>(filtered, prior, likelihood));
      streams.push_back(root.derive(k + 1));
      chains.back()->initialiseRandom(initialCircles, streams.back());
      betas.push_back(1.0 / (1.0 + k * params.heatStep));
    }
    if (params.parallelChains && params.chains > 1) {
      pool = par::makeThreadPool(params.threads);
    }
  }

  void stepInterval(std::uint64_t iters) {
    const auto body = [&](std::size_t k) {
      Diagnostics* diag = k == 0 ? &coldDiagnostics : nullptr;
      for (std::uint64_t i = 0; i < iters; ++i) {
        temperedStep(*chains[k], registry, betas[k], streams[k], diag);
      }
    };
    if (pool) {
      pool->parallelFor(chains.size(), body);
    } else {
      for (std::size_t k = 0; k < chains.size(); ++k) body(k);
    }
  }

  void trySwap() {
    if (chains.size() < 2) return;
    // Adjacent-pair swaps mix best under incremental heating.
    const std::size_t i =
        static_cast<std::size_t>(swapStream.below(chains.size() - 1));
    const std::size_t j = i + 1;
    ++stats.swapProposed;
    const double logPi = chains[i]->logPosterior();
    const double logPj = chains[j]->logPosterior();
    const double logAlpha = (betas[i] - betas[j]) * (logPj - logPi);
    bool accept = logAlpha >= 0.0;
    if (!accept) {
      const double u = swapStream.uniform();
      accept = u > 0.0 && std::log(u) < logAlpha;
    }
    if (accept) {
      std::swap(chains[i], chains[j]);
      std::swap(streams[i], streams[j]);  // streams travel with the state
      ++stats.swapAccepted;
    }
  }

  std::uint64_t run(std::uint64_t iterations, std::uint64_t traceInterval,
                    const RunHooks& hooks) {
    std::uint64_t done = 0;
    while (done < iterations) {
      if (hooks.cancelled()) break;
      const std::uint64_t step =
          std::min<std::uint64_t>(params.swapInterval, iterations - done);
      stepInterval(step);
      done += step;
      stats.iterationsPerChain += step;
      trySwap();
      if (traceInterval != 0 && done >= nextTrace) {
        coldDiagnostics.tracePoint(stats.iterationsPerChain,
                                   chains[0]->logPosterior(),
                                   chains[0]->config().size());
        hooks.trace(coldDiagnostics.trace().back());
        nextTrace += traceInterval;
      }
      hooks.progress(done, iterations, "mc3");
    }
    return done;
  }
};

Mc3Sampler::Mc3Sampler(const img::ImageF& filtered,
                       const model::PriorParams& prior,
                       const model::LikelihoodParams& likelihood,
                       const MoveRegistry& registry, const Mc3Params& params,
                       std::size_t initialCircles, std::uint64_t seed)
    : impl_(std::make_unique<Impl>(filtered, prior, likelihood, registry,
                                   params, initialCircles, seed)) {}

Mc3Sampler::~Mc3Sampler() = default;

std::uint64_t Mc3Sampler::run(std::uint64_t iterations,
                              std::uint64_t traceInterval,
                              const RunHooks& hooks) {
  return impl_->run(iterations, traceInterval, hooks);
}

const model::ModelState& Mc3Sampler::coldChain() const {
  return *impl_->chains.front();
}
model::ModelState& Mc3Sampler::coldChain() { return *impl_->chains.front(); }

const Mc3Stats& Mc3Sampler::stats() const noexcept { return impl_->stats; }

const Diagnostics& Mc3Sampler::coldDiagnostics() const {
  return impl_->coldDiagnostics;
}

unsigned Mc3Sampler::chainCount() const noexcept {
  return static_cast<unsigned>(impl_->chains.size());
}

double Mc3Sampler::beta(unsigned k) const noexcept { return impl_->betas[k]; }

}  // namespace mcmcpar::mcmc
