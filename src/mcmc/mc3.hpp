#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "mcmc/diagnostics.hpp"
#include "mcmc/move_registry.hpp"
#include "mcmc/run_hooks.hpp"
#include "model/posterior.hpp"
#include "par/thread_pool.hpp"
#include "rng/stream.hpp"

namespace mcmcpar::mcmc {

/// Parameters of Metropolis-coupled MCMC.
struct Mc3Params {
  /// Number of parallel chains; chain 0 is the cold chain, the only one
  /// sampled. Must be >= 1 (1 degenerates to plain MCMC).
  unsigned chains = 4;

  /// Inverse temperature of chain k is 1 / (1 + k * heatStep) — the
  /// incremental-heating scheme of Altekar et al. [9].
  double heatStep = 0.2;

  /// Every `swapInterval` per-chain iterations, one random adjacent pair is
  /// proposed for a state swap under the modified MH test.
  std::uint64_t swapInterval = 100;

  /// Step the chains of an interval concurrently on a thread pool (chains
  /// are independent between swaps, so this is exact task parallelism).
  bool parallelChains = false;
  unsigned threads = 0;
};

/// Swap bookkeeping.
struct Mc3Stats {
  std::uint64_t swapProposed = 0;
  std::uint64_t swapAccepted = 0;
  std::uint64_t iterationsPerChain = 0;

  [[nodiscard]] double swapRate() const noexcept {
    return swapProposed == 0 ? 0.0
                             : static_cast<double>(swapAccepted) /
                                   static_cast<double>(swapProposed);
  }
};

/// Metropolis-coupled MCMC — (MC)^3, the "conventional approach" of §IV.
///
/// All but the cold chain target the *heated* posterior pi(x)^beta with
/// beta < 1, making them accept freely and roam the state space; periodic
/// state swaps let the cold chain take the occasional large jump across
/// modes. Unlike the paper's partitioning schemes, (MC)^3 aims at faster
/// *convergence*, not at distributing the per-iteration workload — this
/// implementation exists as the related-work baseline so the two kinds of
/// speedup can be compared (bench_mc3_convergence).
///
/// Heated acceptance: a move with posterior delta d and proposal/Jacobian
/// remainder r accepts with log-probability beta * d + r; a swap between
/// chains i and j accepts with (beta_i - beta_j) * (logP_j - logP_i).
class Mc3Sampler {
 public:
  /// Every chain gets its own ModelState initialised with `initialCircles`
  /// random circles from its own substream.
  Mc3Sampler(const img::ImageF& filtered, const model::PriorParams& prior,
             const model::LikelihoodParams& likelihood,
             const MoveRegistry& registry, const Mc3Params& params,
             std::size_t initialCircles, std::uint64_t seed);
  ~Mc3Sampler();

  Mc3Sampler(const Mc3Sampler&) = delete;
  Mc3Sampler& operator=(const Mc3Sampler&) = delete;

  /// Advance every chain by `iterations` iterations (swaps interleaved).
  /// Cancellation is polled at swap intervals; returns the per-chain
  /// iterations performed by this call.
  std::uint64_t run(std::uint64_t iterations, std::uint64_t traceInterval = 0,
                    const RunHooks& hooks = {});

  /// The cold chain (inverse temperature 1) — the only one to sample.
  [[nodiscard]] const model::ModelState& coldChain() const;
  [[nodiscard]] model::ModelState& coldChain();

  [[nodiscard]] const Mc3Stats& stats() const noexcept;
  /// Cold-chain trace/acceptance diagnostics.
  [[nodiscard]] const Diagnostics& coldDiagnostics() const;

  [[nodiscard]] unsigned chainCount() const noexcept;
  /// Inverse temperature of chain k.
  [[nodiscard]] double beta(unsigned k) const noexcept;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// One tempered MH step against `state` with inverse temperature `beta`:
/// propose from the registry, accept with beta-scaled posterior delta.
/// Exposed for tests. Returns whether the state changed.
bool temperedStep(model::ModelState& state, const MoveRegistry& registry,
                  double beta, rng::Stream& stream,
                  Diagnostics* diagnostics = nullptr);

}  // namespace mcmcpar::mcmc
