#include "mcmc/move.hpp"

#include <algorithm>
#include <cmath>

namespace mcmcpar::mcmc {

Move::~Move() = default;

double RegionConstraint::maxRadiusAt(double x, double y) const noexcept {
  const double dx = std::min(x - rect.x0, rect.x1 - x) - margin;
  const double dy = std::min(y - rect.y0, rect.y1 - y) - margin;
  return std::min(dx, dy);
}

void commitPending(model::ModelState& state, const PendingMove& pending) {
  // Apply through the raw likelihood/configuration operations using the
  // pre-evaluated posterior delta; the convenience ModelState::commit*
  // methods would re-evaluate the delta a second time.
  using Op = PendingMove::Op;
  model::PixelLikelihood& lik = state.likelihoodMutable();
  model::Configuration& cfg = state.configMutable();
  state.adjustLogPosterior(pending.logPosteriorDelta);
  switch (pending.op) {
    case Op::Add:
      lik.adjustCoveredGain(lik.applyAdd(pending.c0));
      cfg.insert(pending.c0);
      break;
    case Op::Delete:
      lik.adjustCoveredGain(lik.applyRemove(cfg.get(pending.id0)));
      cfg.erase(pending.id0);
      break;
    case Op::Replace:
      lik.adjustCoveredGain(lik.applyRemove(cfg.get(pending.id0)));
      lik.adjustCoveredGain(lik.applyAdd(pending.c0));
      cfg.replace(pending.id0, pending.c0);
      break;
    case Op::Merge:
      lik.adjustCoveredGain(lik.applyRemove(cfg.get(pending.id0)));
      lik.adjustCoveredGain(lik.applyRemove(cfg.get(pending.id1)));
      lik.adjustCoveredGain(lik.applyAdd(pending.c0));
      cfg.erase(pending.id0);
      cfg.erase(pending.id1);
      cfg.insert(pending.c0);
      break;
    case Op::Split:
      lik.adjustCoveredGain(lik.applyRemove(cfg.get(pending.id0)));
      lik.adjustCoveredGain(lik.applyAdd(pending.c0));
      lik.adjustCoveredGain(lik.applyAdd(pending.c1));
      cfg.erase(pending.id0);
      cfg.insert(pending.c0);
      cfg.insert(pending.c1);
      break;
    case Op::None:
      break;
  }
}

bool acceptAndCommit(model::ModelState& state, const PendingMove& pending,
                     rng::Stream& stream) {
  if (!pending.valid()) return false;
  // alpha >= 1 accepts unconditionally; otherwise accept with prob alpha.
  if (pending.logAlpha < 0.0) {
    const double u = stream.uniform();
    if (u <= 0.0 || std::log(u) >= pending.logAlpha) return false;
  }
  commitPending(state, pending);
  return true;
}

model::CircleId pickCircle(const model::ModelState& state,
                           const SelectionContext& ctx,
                           rng::Stream& stream) noexcept {
  if (ctx.candidates != nullptr) {
    if (ctx.candidates->empty()) return model::kInvalidCircle;
    return (*ctx.candidates)[static_cast<std::size_t>(
        stream.below(ctx.candidates->size()))];
  }
  if (state.config().empty()) return model::kInvalidCircle;
  return state.config().randomAlive(stream);
}

std::size_t selectableCount(const model::ModelState& state,
                            const SelectionContext& ctx) noexcept {
  return ctx.candidates != nullptr ? ctx.candidates->size()
                                   : state.config().size();
}

}  // namespace mcmcpar::mcmc
