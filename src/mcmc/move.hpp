#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "model/posterior.hpp"
#include "rng/stream.hpp"

namespace mcmcpar::mcmc {

/// The paper's move taxonomy (§V): global moves (Mg) touch properties shared
/// across the whole image (here: the circle count) and cannot run in
/// parallel; local moves (Ml) fine-tune a single feature and may run
/// concurrently in distant partitions.
enum class MoveKind : std::uint8_t { Global, Local };

/// Restriction of move proposals to one partition of the image.
///
/// A feature is *modifiable* iff its disc, expanded by `margin`, lies
/// strictly inside `rect`; proposals must keep it so. This is the paper's
/// legality rule: "no feature may be created or moved such that any part of
/// it (or its prior/likelihood considered area) intersects with its
/// partition's boundary". The margin also provides the torn-read safety
/// analysed in DESIGN.md §5 for the in-place executor.
struct RegionConstraint {
  model::Bounds rect;
  double margin = 0.0;

  [[nodiscard]] bool allowsCircle(const model::Circle& c) const noexcept {
    return rect.containsDisc(c, margin);
  }

  /// Legal centre interval along x for a circle of radius r ([lo, hi];
  /// empty when lo > hi).
  [[nodiscard]] double centreXLo(double r) const noexcept { return rect.x0 + margin + r; }
  [[nodiscard]] double centreXHi(double r) const noexcept { return rect.x1 - margin - r; }
  [[nodiscard]] double centreYLo(double r) const noexcept { return rect.y0 + margin + r; }
  [[nodiscard]] double centreYHi(double r) const noexcept { return rect.y1 - margin - r; }

  /// Largest radius whose disc (plus margin) fits at centre (x, y).
  [[nodiscard]] double maxRadiusAt(double x, double y) const noexcept;

  /// The whole-domain constraint (margin 0) for unconstrained sampling.
  [[nodiscard]] static RegionConstraint wholeDomain(const model::ModelState& state) noexcept {
    return RegionConstraint{state.bounds(), 0.0};
  }
};

/// What a move proposal may select from: `candidates` limits the pick to a
/// pre-filtered id list (the executor's modifiable set for a partition);
/// nullptr means all alive circles. `region` constrains geometry; nullptr
/// means the whole domain.
struct SelectionContext {
  const std::vector<model::CircleId>* candidates = nullptr;
  const RegionConstraint* region = nullptr;
};

/// A fully evaluated move proposal, ready for the accept/reject coin flip.
///
/// Proposals are evaluated read-only against the current state (this is what
/// makes speculative execution possible, §IV/[11]) and committed separately.
struct PendingMove {
  enum class Op : std::uint8_t { None, Add, Delete, Replace, Merge, Split };

  Op op = Op::None;
  /// log of the Metropolis-Hastings acceptance ratio (eq. 1), including
  /// posterior ratio, proposal ratio and any reversible-jump Jacobian.
  double logAlpha = -std::numeric_limits<double>::infinity();
  /// The log-posterior change this move would cause (the posterior part of
  /// logAlpha). Commit paths fold it into the cached posterior instead of
  /// re-evaluating, and the in-place parallel executor accumulates it
  /// thread-locally.
  double logPosteriorDelta = 0.0;
  model::CircleId id0 = model::kInvalidCircle;
  model::CircleId id1 = model::kInvalidCircle;
  model::Circle c0;
  model::Circle c1;

  /// False when no feasible proposal could be generated (empty selection,
  /// no merge partner, geometry out of bounds); counts as a rejected
  /// iteration, which preserves the move-probability bookkeeping.
  [[nodiscard]] bool valid() const noexcept { return op != Op::None; }
};

/// Abstract move type. Implementations are stateless (all chain state lives
/// in ModelState; all randomness comes from the passed Stream), so one Move
/// instance may be shared by concurrent samplers.
class Move {
 public:
  virtual ~Move();

  [[nodiscard]] virtual const char* name() const noexcept = 0;
  [[nodiscard]] virtual MoveKind kind() const noexcept = 0;

  /// Generate and evaluate one proposal. Read-only on `state`.
  [[nodiscard]] virtual PendingMove propose(const model::ModelState& state,
                                            const SelectionContext& ctx,
                                            rng::Stream& stream) const = 0;
};

/// Commit an accepted proposal to the state. Precondition: pending.valid().
void commitPending(model::ModelState& state, const PendingMove& pending);

/// Draw the MH accept/reject coin for `pending` and commit on acceptance.
/// Returns true when the state changed.
bool acceptAndCommit(model::ModelState& state, const PendingMove& pending,
                     rng::Stream& stream);

/// Uniformly pick a circle id from the selection context (candidate list or
/// whole configuration); kInvalidCircle when nothing is selectable.
[[nodiscard]] model::CircleId pickCircle(const model::ModelState& state,
                                         const SelectionContext& ctx,
                                         rng::Stream& stream) noexcept;

/// Number of selectable circles in the context.
[[nodiscard]] std::size_t selectableCount(const model::ModelState& state,
                                          const SelectionContext& ctx) noexcept;

}  // namespace mcmcpar::mcmc
