#pragma once

namespace mcmcpar::mcmc {

/// Tunables of the proposal distributions (the "magnitude of alteration"
/// knobs from §III of the paper).
struct ProposalParams {
  double positionSigma = 2.0;      ///< centre jitter sigma (local move)
  double radiusSigma = 0.5;        ///< radius jitter sigma (local move)
  double splitOffsetSigma = 3.0;   ///< sigma of the split centre offset
  double splitRadiusSigma = 0.8;   ///< sigma of the split radius offset
  double mergeDistance = 12.0;     ///< max centre distance of merge partners
  double birthRadiusWiden = 1.0;   ///< birth radius proposal sigma multiplier
};

/// Absolute selection probability of each move type (must sum to 1; the
/// registry normalises). Moves need these to form proposal ratios between
/// paired move types (add<->delete, split<->merge). The defaults give the
/// paper's §VII mix: Mg = {add, delete, merge, split, replace} with total
/// probability 0.4 (qg = 0.4) and Ml = {move centre, resize} with 0.6.
struct MoveWeights {
  double add = 0.08;
  double del = 0.08;
  double merge = 0.08;
  double split = 0.08;
  double replace = 0.08;
  double moveCentre = 0.30;
  double resize = 0.30;

  [[nodiscard]] double globalTotal() const noexcept {
    return add + del + merge + split + replace;
  }
  [[nodiscard]] double localTotal() const noexcept {
    return moveCentre + resize;
  }
  [[nodiscard]] double total() const noexcept {
    return globalTotal() + localTotal();
  }
  /// qg: the probability that an arbitrary move is global (§V).
  [[nodiscard]] double qGlobal() const noexcept {
    return globalTotal() / total();
  }
};

/// Everything needed to build the case-study move set.
struct MoveSetParams {
  MoveWeights weights;
  ProposalParams proposal;
};

}  // namespace mcmcpar::mcmc
