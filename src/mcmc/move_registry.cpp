#include "mcmc/move_registry.hpp"

#include <cassert>
#include <stdexcept>

#include "mcmc/moves_birth_death.hpp"
#include "mcmc/moves_local.hpp"
#include "mcmc/moves_split_merge.hpp"

namespace mcmcpar::mcmc {

void MoveRegistry::add(std::unique_ptr<Move> move, double weight) {
  assert(!finalised_ && "MoveRegistry: add after finalise");
  if (weight <= 0.0) throw std::invalid_argument("MoveRegistry: weight <= 0");
  moves_.push_back(Entry{std::move(move), weight});
}

void MoveRegistry::finalise() {
  assert(!finalised_);
  if (moves_.empty()) throw std::logic_error("MoveRegistry: no moves");

  std::vector<double> all, global, local;
  double globalWeight = 0.0, totalWeight = 0.0;
  for (std::size_t i = 0; i < moves_.size(); ++i) {
    const Entry& e = moves_[i];
    all.push_back(e.weight);
    totalWeight += e.weight;
    if (e.move->kind() == MoveKind::Global) {
      globalIndex_.push_back(i);
      global.push_back(e.weight);
      globalWeight += e.weight;
    } else {
      localIndex_.push_back(i);
      local.push_back(e.weight);
    }
  }
  anyTable_ = rng::AliasTable(all);
  if (!global.empty()) globalTable_ = rng::AliasTable(global);
  if (!local.empty()) localTable_ = rng::AliasTable(local);
  qGlobal_ = globalWeight / totalWeight;
  finalised_ = true;
}

const Move& MoveRegistry::sampleAny(rng::Stream& stream) const {
  assert(finalised_);
  return *moves_[anyTable_.sample(stream)].move;
}

const Move& MoveRegistry::sampleGlobal(rng::Stream& stream) const {
  assert(finalised_ && !globalIndex_.empty());
  return *moves_[globalIndex_[globalTable_.sample(stream)]].move;
}

const Move& MoveRegistry::sampleLocal(rng::Stream& stream) const {
  assert(finalised_ && !localIndex_.empty());
  return *moves_[localIndex_[localTable_.sample(stream)]].move;
}

MoveRegistry MoveRegistry::caseStudy(const MoveSetParams& params) {
  const MoveWeights& w = params.weights;
  const ProposalParams& p = params.proposal;
  MoveRegistry registry;
  registry.add(std::make_unique<AddMove>(w, p), w.add);
  registry.add(std::make_unique<DeleteMove>(w, p), w.del);
  registry.add(std::make_unique<MergeMove>(w, p), w.merge);
  registry.add(std::make_unique<SplitMove>(w, p), w.split);
  registry.add(std::make_unique<ReplaceMove>(w, p), w.replace);
  registry.add(std::make_unique<MoveCentreMove>(p), w.moveCentre);
  registry.add(std::make_unique<ResizeMove>(p), w.resize);
  registry.finalise();
  return registry;
}

}  // namespace mcmcpar::mcmc
