#pragma once

#include <memory>
#include <vector>

#include "mcmc/move.hpp"
#include "mcmc/move_params.hpp"
#include "rng/distributions.hpp"

namespace mcmcpar::mcmc {

/// A weighted set of moves with O(1) sampling, overall and per kind.
///
/// Per-kind sampling is what the periodic sampler needs: during a global
/// phase moves are drawn from Mg with probabilities conditional on "global",
/// and likewise for Ml phases. Proposal-probability *ratios* between paired
/// moves are unaffected by the conditioning (the phase factor cancels), so
/// the same Move objects serve phased and unphased sampling; see §V.
class MoveRegistry {
 public:
  MoveRegistry() = default;
  MoveRegistry(MoveRegistry&&) = default;
  MoveRegistry& operator=(MoveRegistry&&) = default;

  /// Register a move with a selection weight (> 0).
  void add(std::unique_ptr<Move> move, double weight);

  /// Build the sampling tables. Must be called once after the last add().
  void finalise();

  [[nodiscard]] std::size_t size() const noexcept { return moves_.size(); }
  [[nodiscard]] const Move& at(std::size_t i) const noexcept { return *moves_[i].move; }
  [[nodiscard]] double weightOf(std::size_t i) const noexcept { return moves_[i].weight; }

  /// Probability that an arbitrary move is global (the paper's qg).
  [[nodiscard]] double qGlobal() const noexcept { return qGlobal_; }

  /// Sample from all moves with the configured probabilities.
  [[nodiscard]] const Move& sampleAny(rng::Stream& stream) const;
  /// Sample from Mg with probabilities conditional on the global phase.
  [[nodiscard]] const Move& sampleGlobal(rng::Stream& stream) const;
  /// Sample from Ml with probabilities conditional on the local phase.
  [[nodiscard]] const Move& sampleLocal(rng::Stream& stream) const;

  [[nodiscard]] bool hasGlobal() const noexcept { return !globalIndex_.empty(); }
  [[nodiscard]] bool hasLocal() const noexcept { return !localIndex_.empty(); }

  /// The full case-study move set of §VII: Mg = {add, delete, merge, split,
  /// replace}, Ml = {move centre, resize}, with the paper's 40/60 split by
  /// default.
  [[nodiscard]] static MoveRegistry caseStudy(const MoveSetParams& params = {});

 private:
  struct Entry {
    std::unique_ptr<Move> move;
    double weight;
  };

  std::vector<Entry> moves_;
  std::vector<std::size_t> globalIndex_;
  std::vector<std::size_t> localIndex_;
  rng::AliasTable anyTable_;
  rng::AliasTable globalTable_;
  rng::AliasTable localTable_;
  double qGlobal_ = 0.0;
  bool finalised_ = false;
};

}  // namespace mcmcpar::mcmc
