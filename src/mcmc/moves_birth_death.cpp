#include "mcmc/moves_birth_death.hpp"

#include <cmath>
#include <limits>

#include "rng/distributions.hpp"

namespace mcmcpar::mcmc {

namespace {
constexpr double kNegInf = -std::numeric_limits<double>::infinity();
}

BirthDraw drawBirthCircle(const model::ModelState& state,
                          const RegionConstraint& rc,
                          const ProposalParams& proposal,
                          rng::Stream& stream) {
  const model::PriorParams& pp = state.prior().params();
  const double sigma = pp.radiusStd * proposal.birthRadiusWiden;

  model::Circle c;
  c.r = rng::truncatedNormal(stream, pp.radiusMean, sigma, pp.radiusMin,
                             pp.radiusMax);
  const double xLo = rc.centreXLo(c.r);
  const double xHi = rc.centreXHi(c.r);
  const double yLo = rc.centreYLo(c.r);
  const double yHi = rc.centreYHi(c.r);
  if (xLo >= xHi || yLo >= yHi) return {model::Circle{}, kNegInf, false};
  c.x = stream.uniform(xLo, xHi);
  c.y = stream.uniform(yLo, yHi);

  const double logDensity =
      rng::logTruncatedNormalPdf(c.r, pp.radiusMean, sigma, pp.radiusMin,
                                 pp.radiusMax) -
      std::log((xHi - xLo) * (yHi - yLo));
  return {c, logDensity, true};
}

double birthLogDensity(const model::ModelState& state,
                       const RegionConstraint& rc,
                       const ProposalParams& proposal,
                       const model::Circle& c) {
  const model::PriorParams& pp = state.prior().params();
  const double sigma = pp.radiusStd * proposal.birthRadiusWiden;
  const double xLo = rc.centreXLo(c.r);
  const double xHi = rc.centreXHi(c.r);
  const double yLo = rc.centreYLo(c.r);
  const double yHi = rc.centreYHi(c.r);
  if (xLo >= xHi || yLo >= yHi) return kNegInf;
  if (c.x < xLo || c.x > xHi || c.y < yLo || c.y > yHi) return kNegInf;
  return rng::logTruncatedNormalPdf(c.r, pp.radiusMean, sigma, pp.radiusMin,
                                    pp.radiusMax) -
         std::log((xHi - xLo) * (yHi - yLo));
}

PendingMove AddMove::propose(const model::ModelState& state,
                             const SelectionContext& ctx,
                             rng::Stream& stream) const {
  const RegionConstraint whole = RegionConstraint::wholeDomain(state);
  const RegionConstraint& rc = ctx.region != nullptr ? *ctx.region : whole;

  const BirthDraw draw = drawBirthCircle(state, rc, proposal_, stream);
  if (!draw.valid) return {};

  const std::size_t n = state.config().size();
  // Forward: pick "add" then the circle; reverse: pick "delete" then 1/(n+1).
  const double logQFwd = std::log(weights_.add) + draw.logDensity;
  const double logQRev =
      std::log(weights_.del) - std::log(static_cast<double>(n + 1));

  PendingMove pending;
  pending.op = PendingMove::Op::Add;
  pending.c0 = draw.circle;
  pending.logPosteriorDelta = state.deltaAdd(draw.circle);
  pending.logAlpha = pending.logPosteriorDelta + logQRev - logQFwd;
  return pending;
}

PendingMove DeleteMove::propose(const model::ModelState& state,
                                const SelectionContext& ctx,
                                rng::Stream& stream) const {
  const model::CircleId id = pickCircle(state, ctx, stream);
  if (id == model::kInvalidCircle) return {};
  const std::size_t n = selectableCount(state, ctx);

  const RegionConstraint whole = RegionConstraint::wholeDomain(state);
  const RegionConstraint& rc = ctx.region != nullptr ? *ctx.region : whole;

  const double logQFwd =
      std::log(weights_.del) - std::log(static_cast<double>(n));
  const double logQRev =
      std::log(weights_.add) +
      birthLogDensity(state, rc, proposal_, state.config().get(id));

  PendingMove pending;
  pending.op = PendingMove::Op::Delete;
  pending.id0 = id;
  pending.logPosteriorDelta = state.deltaDelete(id);
  pending.logAlpha = pending.logPosteriorDelta + logQRev - logQFwd;
  return pending;
}

PendingMove ReplaceMove::propose(const model::ModelState& state,
                                 const SelectionContext& ctx,
                                 rng::Stream& stream) const {
  const model::CircleId id = pickCircle(state, ctx, stream);
  if (id == model::kInvalidCircle) return {};

  const RegionConstraint whole = RegionConstraint::wholeDomain(state);
  const RegionConstraint& rc = ctx.region != nullptr ? *ctx.region : whole;

  const BirthDraw draw = drawBirthCircle(state, rc, proposal_, stream);
  if (!draw.valid) return {};

  // Selection (1/n) and the move probability cancel between the directions;
  // what remains is the birth density of the outgoing vs. incoming circle.
  const double logQFwd = draw.logDensity;
  const double logQRev =
      birthLogDensity(state, rc, proposal_, state.config().get(id));

  PendingMove pending;
  pending.op = PendingMove::Op::Replace;
  pending.id0 = id;
  pending.c0 = draw.circle;
  pending.logPosteriorDelta = state.deltaReplace(id, draw.circle);
  pending.logAlpha = pending.logPosteriorDelta + logQRev - logQFwd;
  return pending;
}

}  // namespace mcmcpar::mcmc
