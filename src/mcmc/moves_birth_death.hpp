#pragma once

#include "mcmc/move.hpp"
#include "mcmc/move_params.hpp"

namespace mcmcpar::mcmc {

/// Birth move: insert a circle with uniform centre (over the legal window
/// for its radius) and a truncated-normal radius centred on the prior mean.
/// Reversible-jump pair of DeleteMove; the acceptance ratio contains the
/// add/delete proposal-probability ratio and the birth proposal density.
class AddMove final : public Move {
 public:
  AddMove(const MoveWeights& weights, const ProposalParams& proposal)
      : weights_(weights), proposal_(proposal) {}

  [[nodiscard]] const char* name() const noexcept override { return "add"; }
  [[nodiscard]] MoveKind kind() const noexcept override { return MoveKind::Global; }
  [[nodiscard]] PendingMove propose(const model::ModelState& state,
                                    const SelectionContext& ctx,
                                    rng::Stream& stream) const override;

 private:
  MoveWeights weights_;
  ProposalParams proposal_;
};

/// Death move: delete a uniformly selected circle. Reverse of AddMove.
class DeleteMove final : public Move {
 public:
  DeleteMove(const MoveWeights& weights, const ProposalParams& proposal)
      : weights_(weights), proposal_(proposal) {}

  [[nodiscard]] const char* name() const noexcept override { return "delete"; }
  [[nodiscard]] MoveKind kind() const noexcept override { return MoveKind::Global; }
  [[nodiscard]] PendingMove propose(const model::ModelState& state,
                                    const SelectionContext& ctx,
                                    rng::Stream& stream) const override;

 private:
  MoveWeights weights_;
  ProposalParams proposal_;
};

/// Replace move: swap a uniformly selected circle for an independently drawn
/// fresh one (the paper lists "replace" among the global moves: it can
/// relocate a feature across the whole image). Dimension-preserving.
class ReplaceMove final : public Move {
 public:
  ReplaceMove(const MoveWeights& weights, const ProposalParams& proposal)
      : weights_(weights), proposal_(proposal) {}

  [[nodiscard]] const char* name() const noexcept override { return "replace"; }
  [[nodiscard]] MoveKind kind() const noexcept override { return MoveKind::Global; }
  [[nodiscard]] PendingMove propose(const model::ModelState& state,
                                    const SelectionContext& ctx,
                                    rng::Stream& stream) const override;

 private:
  MoveWeights weights_;
  ProposalParams proposal_;
};

/// Shared helper: draw a fresh circle for birth-type proposals and return
/// its log proposal density; invalid (and density -inf) when no legal
/// geometry exists. Exposed for tests.
struct BirthDraw {
  model::Circle circle;
  double logDensity;
  bool valid;
};
[[nodiscard]] BirthDraw drawBirthCircle(const model::ModelState& state,
                                        const RegionConstraint& rc,
                                        const ProposalParams& proposal,
                                        rng::Stream& stream);

/// Log density of generating `c` by drawBirthCircle (for reverse ratios).
[[nodiscard]] double birthLogDensity(const model::ModelState& state,
                                     const RegionConstraint& rc,
                                     const ProposalParams& proposal,
                                     const model::Circle& c);

}  // namespace mcmcpar::mcmc
