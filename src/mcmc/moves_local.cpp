#include "mcmc/moves_local.hpp"

#include <algorithm>
#include <cmath>

#include "rng/distributions.hpp"

namespace mcmcpar::mcmc {

PendingMove MoveCentreMove::propose(const model::ModelState& state,
                                    const SelectionContext& ctx,
                                    rng::Stream& stream) const {
  const model::CircleId id = pickCircle(state, ctx, stream);
  if (id == model::kInvalidCircle) return {};
  const model::Circle c = state.config().get(id);

  const RegionConstraint whole = RegionConstraint::wholeDomain(state);
  const RegionConstraint& rc = ctx.region != nullptr ? *ctx.region : whole;

  const double xLo = rc.centreXLo(c.r);
  const double xHi = rc.centreXHi(c.r);
  const double yLo = rc.centreYLo(c.r);
  const double yHi = rc.centreYHi(c.r);
  if (xLo >= xHi || yLo >= yHi) return {};

  model::Circle moved = c;
  moved.x = rng::truncatedNormal(stream, c.x, proposal_.positionSigma, xLo, xHi);
  moved.y = rng::truncatedNormal(stream, c.y, proposal_.positionSigma, yLo, yHi);

  const double logQFwd =
      rng::logTruncatedNormalPdf(moved.x, c.x, proposal_.positionSigma, xLo, xHi) +
      rng::logTruncatedNormalPdf(moved.y, c.y, proposal_.positionSigma, yLo, yHi);
  const double logQRev =
      rng::logTruncatedNormalPdf(c.x, moved.x, proposal_.positionSigma, xLo, xHi) +
      rng::logTruncatedNormalPdf(c.y, moved.y, proposal_.positionSigma, yLo, yHi);

  PendingMove pending;
  pending.op = PendingMove::Op::Replace;
  pending.id0 = id;
  pending.c0 = moved;
  pending.logPosteriorDelta = state.deltaReplace(id, moved);
  pending.logAlpha = pending.logPosteriorDelta + logQRev - logQFwd;
  return pending;
}

PendingMove ResizeMove::propose(const model::ModelState& state,
                                const SelectionContext& ctx,
                                rng::Stream& stream) const {
  const model::CircleId id = pickCircle(state, ctx, stream);
  if (id == model::kInvalidCircle) return {};
  const model::Circle c = state.config().get(id);

  const RegionConstraint whole = RegionConstraint::wholeDomain(state);
  const RegionConstraint& rc = ctx.region != nullptr ? *ctx.region : whole;

  const model::PriorParams& pp = state.prior().params();
  const double rLo = pp.radiusMin;
  const double rHi = std::min(pp.radiusMax, rc.maxRadiusAt(c.x, c.y));
  if (rLo >= rHi) return {};

  model::Circle resized = c;
  resized.r = rng::truncatedNormal(stream, c.r, proposal_.radiusSigma, rLo, rHi);

  const double logQFwd =
      rng::logTruncatedNormalPdf(resized.r, c.r, proposal_.radiusSigma, rLo, rHi);
  const double logQRev =
      rng::logTruncatedNormalPdf(c.r, resized.r, proposal_.radiusSigma, rLo, rHi);

  PendingMove pending;
  pending.op = PendingMove::Op::Replace;
  pending.id0 = id;
  pending.c0 = resized;
  pending.logPosteriorDelta = state.deltaReplace(id, resized);
  pending.logAlpha = pending.logPosteriorDelta + logQRev - logQFwd;
  return pending;
}

}  // namespace mcmcpar::mcmc
