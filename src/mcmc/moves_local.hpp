#pragma once

#include "mcmc/move.hpp"
#include "mcmc/move_params.hpp"

namespace mcmcpar::mcmc {

/// Local move: jitter a circle's centre by a truncated normal confined to
/// the legal window of its region (partition cell or whole domain). The
/// window is identical in both directions (radius unchanged), so the
/// proposal ratio is the ratio of the two truncated-normal densities.
class MoveCentreMove final : public Move {
 public:
  explicit MoveCentreMove(const ProposalParams& proposal)
      : proposal_(proposal) {}

  [[nodiscard]] const char* name() const noexcept override { return "move-centre"; }
  [[nodiscard]] MoveKind kind() const noexcept override { return MoveKind::Local; }
  [[nodiscard]] PendingMove propose(const model::ModelState& state,
                                    const SelectionContext& ctx,
                                    rng::Stream& stream) const override;

 private:
  ProposalParams proposal_;
};

/// Local move: jitter a circle's radius by a truncated normal confined to
/// [radiusMin, min(radiusMax, largest radius fitting at the centre)].
class ResizeMove final : public Move {
 public:
  explicit ResizeMove(const ProposalParams& proposal) : proposal_(proposal) {}

  [[nodiscard]] const char* name() const noexcept override { return "resize"; }
  [[nodiscard]] MoveKind kind() const noexcept override { return MoveKind::Local; }
  [[nodiscard]] PendingMove propose(const model::ModelState& state,
                                    const SelectionContext& ctx,
                                    rng::Stream& stream) const override;

 private:
  ProposalParams proposal_;
};

}  // namespace mcmcpar::mcmc
