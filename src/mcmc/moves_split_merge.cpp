#include "mcmc/moves_split_merge.hpp"

#include <cmath>

#include "rng/distributions.hpp"

namespace mcmcpar::mcmc {

namespace {
constexpr double kLogJacobian = 2.0794415416798357;  // log(8)
}

std::size_t mergePartnerCount(const model::ModelState& state, double x,
                              double y, double mergeDistance,
                              model::CircleId exclude) {
  std::size_t count = 0;
  state.config().forEachNeighbour(
      x, y, mergeDistance, [&](model::CircleId id, const model::Circle&) {
        if (id != exclude) ++count;
      });
  return count;
}

PendingMove SplitMove::propose(const model::ModelState& state,
                               const SelectionContext& ctx,
                               rng::Stream& stream) const {
  const model::CircleId id = pickCircle(state, ctx, stream);
  if (id == model::kInvalidCircle) return {};
  const model::Circle c = state.config().get(id);
  const std::size_t n = selectableCount(state, ctx);

  const double dx = stream.normal(0.0, proposal_.splitOffsetSigma);
  const double dy = stream.normal(0.0, proposal_.splitOffsetSigma);
  const double rho = stream.normal(0.0, proposal_.splitRadiusSigma);

  const model::Circle c1{c.x + dx, c.y + dy, c.r + rho};
  const model::Circle c2{c.x - dx, c.y - dy, c.r - rho};

  const RegionConstraint whole = RegionConstraint::wholeDomain(state);
  const RegionConstraint& rc = ctx.region != nullptr ? *ctx.region : whole;

  // Geometry checks; a failed proposal counts as a rejected iteration.
  if (!state.prior().radiusInSupport(c1.r) ||
      !state.prior().radiusInSupport(c2.r) || !rc.allowsCircle(c1) ||
      !rc.allowsCircle(c2)) {
    return {};
  }
  const double pairDist = 2.0 * std::sqrt(dx * dx + dy * dy);
  if (pairDist > proposal_.mergeDistance) return {};  // merge cannot reverse

  // Reverse pair-selection probability in the post-split state (n+1
  // circles): either offspring may be picked first, then the sibling among
  // its partners. Partner counts exclude the vanished parent and include
  // the sibling (distance <= mergeDistance verified above).
  const std::size_t k1 =
      mergePartnerCount(state, c1.x, c1.y, proposal_.mergeDistance, id) + 1;
  const std::size_t k2 =
      mergePartnerCount(state, c2.x, c2.y, proposal_.mergeDistance, id) + 1;
  const double qPairRev =
      (1.0 / static_cast<double>(n + 1)) *
      (1.0 / static_cast<double>(k1) + 1.0 / static_cast<double>(k2));

  const double logQFwd =
      std::log(weights_.split) - std::log(static_cast<double>(n)) +
      rng::logNormalPdf(dx, 0.0, proposal_.splitOffsetSigma) +
      rng::logNormalPdf(dy, 0.0, proposal_.splitOffsetSigma) +
      rng::logNormalPdf(rho, 0.0, proposal_.splitRadiusSigma);
  const double logQRev = std::log(weights_.merge) + std::log(qPairRev);

  PendingMove pending;
  pending.op = PendingMove::Op::Split;
  pending.id0 = id;
  pending.c0 = c1;
  pending.c1 = c2;
  pending.logPosteriorDelta = state.deltaSplit(id, c1, c2);
  pending.logAlpha =
      pending.logPosteriorDelta + logQRev - logQFwd + kLogJacobian;
  return pending;
}

PendingMove MergeMove::propose(const model::ModelState& state,
                               const SelectionContext& ctx,
                               rng::Stream& stream) const {
  const model::CircleId a = pickCircle(state, ctx, stream);
  if (a == model::kInvalidCircle) return {};
  const std::size_t n = selectableCount(state, ctx);
  if (n < 2) return {};

  const model::Circle ca = state.config().get(a);
  const auto partners = state.config().neighboursWithin(
      ca.x, ca.y, proposal_.mergeDistance, a);
  if (partners.empty()) return {};
  const model::CircleId b =
      partners[static_cast<std::size_t>(stream.below(partners.size()))];
  const model::Circle cb = state.config().get(b);

  const model::Circle m{(ca.x + cb.x) / 2.0, (ca.y + cb.y) / 2.0,
                        (ca.r + cb.r) / 2.0};

  const RegionConstraint whole = RegionConstraint::wholeDomain(state);
  const RegionConstraint& rc = ctx.region != nullptr ? *ctx.region : whole;
  if (!state.prior().radiusInSupport(m.r) || !rc.allowsCircle(m)) return {};

  const std::size_t ka = partners.size();
  const std::size_t kb =
      mergePartnerCount(state, cb.x, cb.y, proposal_.mergeDistance, b);
  const double qPairFwd =
      (1.0 / static_cast<double>(n)) *
      (1.0 / static_cast<double>(ka) + 1.0 / static_cast<double>(kb));

  // Inverse split draws that regenerate (ca, cb) from m.
  const double dx = (ca.x - cb.x) / 2.0;
  const double dy = (ca.y - cb.y) / 2.0;
  const double rho = (ca.r - cb.r) / 2.0;

  const double logQFwd = std::log(weights_.merge) + std::log(qPairFwd);
  const double logQRev =
      std::log(weights_.split) - std::log(static_cast<double>(n - 1)) +
      rng::logNormalPdf(dx, 0.0, proposal_.splitOffsetSigma) +
      rng::logNormalPdf(dy, 0.0, proposal_.splitOffsetSigma) +
      rng::logNormalPdf(rho, 0.0, proposal_.splitRadiusSigma);

  PendingMove pending;
  pending.op = PendingMove::Op::Merge;
  pending.id0 = a;
  pending.id1 = b;
  pending.c0 = m;
  pending.logPosteriorDelta = state.deltaMerge(a, b, m);
  pending.logAlpha =
      pending.logPosteriorDelta + logQRev - logQFwd - kLogJacobian;
  return pending;
}

}  // namespace mcmcpar::mcmc
