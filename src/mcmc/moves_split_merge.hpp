#pragma once

#include "mcmc/move.hpp"
#include "mcmc/move_params.hpp"

namespace mcmcpar::mcmc {

/// Split move (reversible-jump, dimension up): circle c splits into
///   c1 = (x+dx, y+dy, r+rho),  c2 = (x-dx, y-dy, r-rho)
/// with dx, dy ~ N(0, splitOffsetSigma), rho ~ N(0, splitRadiusSigma).
/// The linear map (x,y,r,dx,dy,rho) -> (c1, c2) has |Jacobian| = 8.
/// The reverse merge must be able to select the pair, so proposals whose
/// offspring are farther apart than mergeDistance are invalid.
class SplitMove final : public Move {
 public:
  SplitMove(const MoveWeights& weights, const ProposalParams& proposal)
      : weights_(weights), proposal_(proposal) {}

  [[nodiscard]] const char* name() const noexcept override { return "split"; }
  [[nodiscard]] MoveKind kind() const noexcept override { return MoveKind::Global; }
  [[nodiscard]] PendingMove propose(const model::ModelState& state,
                                    const SelectionContext& ctx,
                                    rng::Stream& stream) const override;

 private:
  MoveWeights weights_;
  ProposalParams proposal_;
};

/// Merge move (reversible-jump, dimension down): select circle a uniformly,
/// then a partner b uniformly among circles with centre distance <=
/// mergeDistance; the merged circle is the arithmetic mean. Pair-selection
/// probability accounts for both orders (see §"merging two artifacts" of
/// the paper's move list); inverse of SplitMove.
class MergeMove final : public Move {
 public:
  MergeMove(const MoveWeights& weights, const ProposalParams& proposal)
      : weights_(weights), proposal_(proposal) {}

  [[nodiscard]] const char* name() const noexcept override { return "merge"; }
  [[nodiscard]] MoveKind kind() const noexcept override { return MoveKind::Global; }
  [[nodiscard]] PendingMove propose(const model::ModelState& state,
                                    const SelectionContext& ctx,
                                    rng::Stream& stream) const override;

 private:
  MoveWeights weights_;
  ProposalParams proposal_;
};

/// Number of merge partners of a circle position: alive circles (excluding
/// `exclude`) with centre within `mergeDistance` of (x, y). Exposed for the
/// reversibility tests.
[[nodiscard]] std::size_t mergePartnerCount(const model::ModelState& state,
                                            double x, double y,
                                            double mergeDistance,
                                            model::CircleId exclude);

}  // namespace mcmcpar::mcmc
