#pragma once

#include <cstdint>
#include <functional>

#include "mcmc/diagnostics.hpp"

namespace mcmcpar::mcmc {

/// A progress beat emitted by a driver: `done` of `total` logical iterations,
/// currently inside the named phase ("sampling", "global", "local",
/// "partition", ...).
struct RunProgress {
  std::uint64_t done = 0;
  std::uint64_t total = 0;
  const char* phase = "";
};

/// Observer callbacks threaded through every execution driver (sequential
/// sampler, speculative executor, (MC)^3, periodic sampler, partition
/// pipelines). All members are optional; a default-constructed RunHooks is
/// a no-op and costs one null check per observation point.
///
/// Drivers poll `cancelRequested` at their natural quantum (an iteration
/// chunk, a speculative round, a swap interval, a phase, a partition) and
/// stop at the next boundary, returning a consistent partial result.
/// Cancellation must be sticky: once `cancelRequested` returns true it is
/// expected to keep returning true (drivers may poll more than once while
/// unwinding).
struct RunHooks {
  std::function<void(const RunProgress&)> onProgress;
  std::function<void(const TracePoint&)> onTrace;
  std::function<bool()> cancelRequested;

  [[nodiscard]] bool cancelled() const {
    return cancelRequested && cancelRequested();
  }
  void progress(std::uint64_t done, std::uint64_t total,
                const char* phase) const {
    if (onProgress) onProgress(RunProgress{done, total, phase});
  }
  void trace(const TracePoint& point) const {
    if (onTrace) onTrace(point);
  }
};

}  // namespace mcmcpar::mcmc
