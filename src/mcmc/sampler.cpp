#include "mcmc/sampler.hpp"

#include <algorithm>

namespace mcmcpar::mcmc {

StepResult attemptMove(model::ModelState& state, const Move& move,
                       const SelectionContext& ctx, rng::Stream& stream) {
  const PendingMove pending = move.propose(state, ctx, stream);
  const bool accepted = acceptAndCommit(state, pending, stream);
  return StepResult{&move, accepted};
}

Sampler::Sampler(model::ModelState& state, const MoveRegistry& registry,
                 std::uint64_t seed)
    : state_(state), registry_(registry), stream_(seed) {}

Sampler::Sampler(model::ModelState& state, const MoveRegistry& registry,
                 rng::Stream stream)
    : state_(state), registry_(registry), stream_(stream) {}

StepResult Sampler::step() {
  const Move& move = registry_.sampleAny(stream_);
  const SelectionContext ctx{};  // unconstrained
  const StepResult result = attemptMove(state_, move, ctx, stream_);
  diagnostics_.record(move.name(), result.accepted);
  ++iteration_;
  return result;
}

std::uint64_t Sampler::run(std::uint64_t iterations,
                           std::uint64_t traceInterval,
                           const RunHooks& hooks) {
  // Poll cancellation between chunks so the per-iteration cost stays a
  // single branch on a null std::function.
  constexpr std::uint64_t kChunk = 256;
  std::uint64_t done = 0;
  while (done < iterations) {
    if (hooks.cancelled()) break;
    const std::uint64_t chunk = std::min(kChunk, iterations - done);
    for (std::uint64_t i = 0; i < chunk; ++i) {
      step();
      if (traceInterval != 0 && iteration_ % traceInterval == 0) {
        diagnostics_.tracePoint(iteration_, state_.logPosterior(),
                                state_.config().size());
        hooks.trace(diagnostics_.trace().back());
      }
    }
    done += chunk;
    hooks.progress(done, iterations, "sampling");
  }
  return done;
}

}  // namespace mcmcpar::mcmc
