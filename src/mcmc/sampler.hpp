#pragma once

#include <cstdint>

#include "mcmc/diagnostics.hpp"
#include "mcmc/move_registry.hpp"
#include "mcmc/run_hooks.hpp"
#include "model/posterior.hpp"
#include "rng/stream.hpp"

namespace mcmcpar::mcmc {

/// Result of a single MCMC iteration.
struct StepResult {
  const Move* move = nullptr;
  bool accepted = false;
};

/// Attempt one move against the state: propose (read-only), MH coin flip,
/// commit on acceptance. The building block shared by the sequential
/// sampler, the periodic executors and the speculative executor.
StepResult attemptMove(model::ModelState& state, const Move& move,
                       const SelectionContext& ctx, rng::Stream& stream);

/// The conventional sequential reversible-jump MH driver (§II-III): at each
/// iteration a move type is selected at random from the full registry and
/// attempted. This is the paper's baseline implementation, and the reference
/// the parallel schemes are compared against.
class Sampler {
 public:
  /// The sampler borrows the state and registry (both must outlive it).
  Sampler(model::ModelState& state, const MoveRegistry& registry,
          std::uint64_t seed);

  Sampler(model::ModelState& state, const MoveRegistry& registry,
          rng::Stream stream);

  /// Run one iteration.
  StepResult step();

  /// Run `iterations` iterations, recording a trace point every
  /// `traceInterval` iterations (0 = no trace). Cancellation is polled
  /// every few hundred iterations; returns the iterations performed by
  /// this call (== `iterations` unless cancelled).
  std::uint64_t run(std::uint64_t iterations, std::uint64_t traceInterval = 0,
                    const RunHooks& hooks = {});

  [[nodiscard]] model::ModelState& state() noexcept { return state_; }
  [[nodiscard]] Diagnostics& diagnostics() noexcept { return diagnostics_; }
  [[nodiscard]] const Diagnostics& diagnostics() const noexcept {
    return diagnostics_;
  }
  [[nodiscard]] rng::Stream& stream() noexcept { return stream_; }
  [[nodiscard]] std::uint64_t iterationsDone() const noexcept {
    return iteration_;
  }

 private:
  model::ModelState& state_;
  const MoveRegistry& registry_;
  rng::Stream stream_;
  Diagnostics diagnostics_;
  std::uint64_t iteration_ = 0;
};

}  // namespace mcmcpar::mcmc
