#include "model/circle.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace mcmcpar::model {

double centreDistance2(const Circle& a, const Circle& b) noexcept {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return dx * dx + dy * dy;
}

bool discsIntersect(const Circle& a, const Circle& b) noexcept {
  const double rr = a.r + b.r;
  return centreDistance2(a, b) <= rr * rr;
}

double overlapArea(const Circle& a, const Circle& b) noexcept {
  const double d = std::sqrt(centreDistance2(a, b));
  if (d >= a.r + b.r) return 0.0;
  const double rMin = std::min(a.r, b.r);
  const double rMax = std::max(a.r, b.r);
  if (d <= rMax - rMin) {
    // Smaller disc fully inside the larger.
    return std::numbers::pi * rMin * rMin;
  }
  // Circular lens: sum of the two circular segments.
  const double r2a = a.r * a.r;
  const double r2b = b.r * b.r;
  const double alpha =
      std::acos(std::clamp((d * d + r2a - r2b) / (2.0 * d * a.r), -1.0, 1.0));
  const double beta =
      std::acos(std::clamp((d * d + r2b - r2a) / (2.0 * d * b.r), -1.0, 1.0));
  return r2a * (alpha - std::sin(2.0 * alpha) / 2.0) +
         r2b * (beta - std::sin(2.0 * beta) / 2.0);
}

double discArea(const Circle& c) noexcept {
  return std::numbers::pi * c.r * c.r;
}

}  // namespace mcmcpar::model
