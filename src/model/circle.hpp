#pragma once

#include <cstdint>
#include <limits>

namespace mcmcpar::model {

/// Stable handle to a circle inside a Configuration. Handles are never
/// reused within one run of a sampler phase, but may be recycled across
/// deletes; treat a handle as valid only while the circle is alive.
using CircleId = std::uint32_t;
inline constexpr CircleId kInvalidCircle =
    std::numeric_limits<CircleId>::max();

/// A circular artifact hypothesis: centre (x, y) and radius r, in pixel
/// units with global image coordinates (also inside cropped partitions).
struct Circle {
  double x = 0.0;
  double y = 0.0;
  double r = 0.0;

  friend bool operator==(const Circle&, const Circle&) = default;
};

/// Squared centre distance.
[[nodiscard]] double centreDistance2(const Circle& a, const Circle& b) noexcept;

/// True when the two discs intersect (boundary contact counts).
[[nodiscard]] bool discsIntersect(const Circle& a, const Circle& b) noexcept;

/// Exact area of the intersection of two discs (circular lens formula).
[[nodiscard]] double overlapArea(const Circle& a, const Circle& b) noexcept;

/// Disc area, pi * r^2.
[[nodiscard]] double discArea(const Circle& c) noexcept;

}  // namespace mcmcpar::model
