#include "model/configuration.hpp"

#include <algorithm>
#include <cassert>

namespace mcmcpar::model {

Configuration::Configuration(double width, double height, double gridCellSize)
    : width_(width), height_(height), grid_(width, height, gridCellSize) {}

CircleId Configuration::insert(const Circle& c) {
  CircleId id;
  if (!freeList_.empty()) {
    id = freeList_.back();
    freeList_.pop_back();
    slots_[id] = c;
  } else {
    id = static_cast<CircleId>(slots_.size());
    slots_.push_back(c);
    denseIndex_.push_back(kInvalidCircle);
  }
  denseIndex_[id] = static_cast<CircleId>(alive_.size());
  alive_.push_back(id);
  grid_.insert(id, c);
  return id;
}

void Configuration::erase(CircleId id) {
  assert(isAlive(id));
  grid_.remove(id, slots_[id]);
  // Swap-remove from the dense alive list.
  const CircleId dense = denseIndex_[id];
  const CircleId lastId = alive_.back();
  alive_[dense] = lastId;
  denseIndex_[lastId] = dense;
  alive_.pop_back();
  denseIndex_[id] = kInvalidCircle;
  freeList_.push_back(id);
}

void Configuration::replace(CircleId id, const Circle& c) {
  assert(isAlive(id));
  grid_.relocate(id, slots_[id], c);
  slots_[id] = c;
}

std::vector<CircleId> Configuration::neighboursWithin(double x, double y,
                                                      double dist,
                                                      CircleId exclude) const {
  std::vector<CircleId> result;
  forEachNeighbour(x, y, dist, [&](CircleId id, const Circle&) {
    if (id != exclude) result.push_back(id);
  });
  return result;
}

std::vector<Circle> Configuration::snapshot() const {
  std::vector<Circle> out;
  out.reserve(alive_.size());
  for (CircleId id : alive_) out.push_back(slots_[id]);
  return out;
}

bool Configuration::invariantsHold() const {
  if (grid_.size() != alive_.size()) return false;
  for (std::size_t i = 0; i < alive_.size(); ++i) {
    const CircleId id = alive_[i];
    if (id >= slots_.size()) return false;
    if (denseIndex_[id] != static_cast<CircleId>(i)) return false;
  }
  for (CircleId id : freeList_) {
    if (denseIndex_[id] != kInvalidCircle) return false;
  }
  // Every alive circle must be findable through the grid at distance 0.
  for (CircleId id : alive_) {
    const Circle& c = slots_[id];
    bool found = false;
    grid_.forEachCandidate(c.x, c.y, 0.0, [&](CircleId cand) {
      found = found || (cand == id);
    });
    if (!found) return false;
  }
  return true;
}

}  // namespace mcmcpar::model
