#pragma once

#include <vector>

#include "model/circle.hpp"
#include "model/spatial_grid.hpp"
#include "rng/stream.hpp"

namespace mcmcpar::model {

/// The Markov-chain state's circle container.
///
/// Provides stable ids (slot indices with a free list), O(1) uniform random
/// selection over alive circles (dense alive list with swap-remove), and
/// neighbour queries through a SpatialGrid. All mutations keep the grid
/// synchronised.
class Configuration {
 public:
  Configuration() = default;

  /// Container for circles over a width x height domain. `gridCellSize`
  /// should be at least the largest neighbour-query distance (typically
  /// 2 * rMax + merge distance); see SpatialGrid.
  Configuration(double width, double height, double gridCellSize);

  /// Number of alive circles.
  [[nodiscard]] std::size_t size() const noexcept { return alive_.size(); }
  [[nodiscard]] bool empty() const noexcept { return alive_.empty(); }

  [[nodiscard]] double domainWidth() const noexcept { return width_; }
  [[nodiscard]] double domainHeight() const noexcept { return height_; }

  /// Insert a circle; returns its id.
  CircleId insert(const Circle& c);

  /// Remove an alive circle.
  void erase(CircleId id);

  /// Overwrite an alive circle's geometry (relocates it in the grid).
  void replace(CircleId id, const Circle& c);

  [[nodiscard]] const Circle& get(CircleId id) const noexcept {
    return slots_[id];
  }

  [[nodiscard]] bool isAlive(CircleId id) const noexcept {
    return id < slots_.size() && denseIndex_[id] != kInvalidCircle;
  }

  /// Uniformly random alive circle. Precondition: !empty().
  [[nodiscard]] CircleId randomAlive(rng::Stream& stream) const noexcept {
    return alive_[static_cast<std::size_t>(stream.below(alive_.size()))];
  }

  /// Dense list of alive ids (order unspecified; invalidated by mutation).
  [[nodiscard]] const std::vector<CircleId>& aliveIds() const noexcept {
    return alive_;
  }

  /// Invoke fn(id, circle) for each alive circle.
  template <typename Fn>
  void forEach(Fn&& fn) const {
    for (CircleId id : alive_) fn(id, slots_[id]);
  }

  /// Invoke fn(id, circle) for alive circles whose centre lies within `dist`
  /// of (x, y) (exact distance check, candidates from the grid).
  template <typename Fn>
  void forEachNeighbour(double x, double y, double dist, Fn&& fn) const {
    grid_.forEachCandidate(x, y, dist, [&](CircleId id) {
      const Circle& c = slots_[id];
      const double dx = c.x - x;
      const double dy = c.y - y;
      if (dx * dx + dy * dy <= dist * dist) fn(id, c);
    });
  }

  /// Ids of alive circles with centre within `dist` of (x, y), excluding
  /// `exclude` (pass kInvalidCircle to exclude nothing).
  [[nodiscard]] std::vector<CircleId> neighboursWithin(
      double x, double y, double dist, CircleId exclude = kInvalidCircle) const;

  /// Snapshot of all alive circles (analysis/serialisation order:
  /// unspecified but deterministic for a given mutation history).
  [[nodiscard]] std::vector<Circle> snapshot() const;

  /// Internal-consistency check: grid contents match alive circles.
  /// O(n + cells); used by tests and debug assertions.
  [[nodiscard]] bool invariantsHold() const;

 private:
  double width_ = 0.0;
  double height_ = 0.0;
  std::vector<Circle> slots_;
  std::vector<CircleId> denseIndex_;  // slot -> index in alive_, or invalid
  std::vector<CircleId> alive_;       // dense list of alive slot ids
  std::vector<CircleId> freeList_;
  SpatialGrid grid_;
};

}  // namespace mcmcpar::model
