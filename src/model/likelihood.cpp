#include "model/likelihood.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "img/disc_raster.hpp"
#include "rng/distributions.hpp"

namespace mcmcpar::model {

PixelLikelihood::PixelLikelihood(const img::ImageF& filtered,
                                 const LikelihoodParams& params, int originX,
                                 int originY)
    : params_(params),
      originX_(originX),
      originY_(originY),
      gain_(filtered.width(), filtered.height()),
      coverage_(filtered.width(), filtered.height(), 0) {
  // gain(p) = logN(I; fg, s) - logN(I; bg, s)
  //         = [ (I - bg)^2 - (I - fg)^2 ] / (2 s^2)
  const double inv2s2 = 1.0 / (2.0 * params_.sigma * params_.sigma);
  double constTerm = 0.0;
  for (int y = 0; y < filtered.height(); ++y) {
    const float* src = filtered.row(y);
    float* dst = gain_.row(y);
    for (int x = 0; x < filtered.width(); ++x) {
      const double v = static_cast<double>(src[x]);
      const double dBg = v - params_.bgMean;
      const double dFg = v - params_.fgMean;
      dst[x] = static_cast<float>((dBg * dBg - dFg * dFg) * inv2s2);
      constTerm += rng::logNormalPdf(v, params_.bgMean, params_.sigma);
    }
  }
  constTerm_ = constTerm;
}

double PixelLikelihood::deltaAdd(const Circle& c) const noexcept {
  double delta = 0.0;
  const double lx = c.x - originX_;
  const double ly = c.y - originY_;
  img::forEachDiscPixel(lx, ly, c.r, gain_.width(), gain_.height(),
                        [&](int x, int y) noexcept {
                          if (coverage_(x, y) == 0) delta += gain_(x, y);
                        });
  return delta;
}

double PixelLikelihood::deltaRemove(const Circle& c) const noexcept {
  double delta = 0.0;
  const double lx = c.x - originX_;
  const double ly = c.y - originY_;
  img::forEachDiscPixel(lx, ly, c.r, gain_.width(), gain_.height(),
                        [&](int x, int y) noexcept {
                          if (coverage_(x, y) == 1) delta -= gain_(x, y);
                        });
  return delta;
}

double PixelLikelihood::deltaReplace(const Circle& oldC,
                                     const Circle& newC) const noexcept {
  // Pixels in new\old becoming covered, pixels in old\new becoming bare.
  double delta = 0.0;
  const double ox = oldC.x - originX_;
  const double oy = oldC.y - originY_;
  const double nx = newC.x - originX_;
  const double ny = newC.y - originY_;
  img::forEachDiscPixel(nx, ny, newC.r, gain_.width(), gain_.height(),
                        [&](int x, int y) noexcept {
                          if (coverage_(x, y) == 0 &&
                              !img::pixelInDisc(x, y, ox, oy, oldC.r)) {
                            delta += gain_(x, y);
                          }
                        });
  img::forEachDiscPixel(ox, oy, oldC.r, gain_.width(), gain_.height(),
                        [&](int x, int y) noexcept {
                          if (coverage_(x, y) == 1 &&
                              !img::pixelInDisc(x, y, nx, ny, newC.r)) {
                            delta -= gain_(x, y);
                          }
                        });
  return delta;
}

double PixelLikelihood::deltaMultiple(std::span<const Circle> removed,
                                      std::span<const Circle> added) const noexcept {
  // Joint bounding box of every affected disc, in local coordinates.
  double bx0 = 1e30, by0 = 1e30, bx1 = -1e30, by1 = -1e30;
  const auto extend = [&](const Circle& c) noexcept {
    bx0 = std::min(bx0, c.x - c.r - originX_);
    by0 = std::min(by0, c.y - c.r - originY_);
    bx1 = std::max(bx1, c.x + c.r - originX_);
    by1 = std::max(by1, c.y + c.r - originY_);
  };
  for (const Circle& c : removed) extend(c);
  for (const Circle& c : added) extend(c);
  if (bx1 < bx0) return 0.0;

  const int x0 = std::max(0, static_cast<int>(std::floor(bx0)));
  const int y0 = std::max(0, static_cast<int>(std::floor(by0)));
  const int x1 = std::min(gain_.width() - 1, static_cast<int>(std::ceil(bx1)));
  const int y1 = std::min(gain_.height() - 1, static_cast<int>(std::ceil(by1)));

  double delta = 0.0;
  for (int y = y0; y <= y1; ++y) {
    const float* gainRow = gain_.row(y);
    const std::uint16_t* covRow = coverage_.row(y);
    for (int x = x0; x <= x1; ++x) {
      int inOld = 0;
      for (const Circle& c : removed) {
        inOld += img::pixelInDisc(x, y, c.x - originX_, c.y - originY_, c.r);
      }
      int inNew = 0;
      for (const Circle& c : added) {
        inNew += img::pixelInDisc(x, y, c.x - originX_, c.y - originY_, c.r);
      }
      if (inOld == 0 && inNew == 0) continue;
      const bool wasCovered = covRow[x] > 0;
      const bool nowCovered = (covRow[x] - inOld + inNew) > 0;
      if (wasCovered != nowCovered) {
        delta += nowCovered ? gainRow[x] : -gainRow[x];
      }
    }
  }
  return delta;
}

double PixelLikelihood::applyAdd(const Circle& c) noexcept {
  double delta = 0.0;
  const double lx = c.x - originX_;
  const double ly = c.y - originY_;
  img::forEachDiscPixel(lx, ly, c.r, gain_.width(), gain_.height(),
                        [&](int x, int y) noexcept {
                          if (coverage_(x, y)++ == 0) delta += gain_(x, y);
                        });
  return delta;
}

double PixelLikelihood::applyRemove(const Circle& c) noexcept {
  double delta = 0.0;
  const double lx = c.x - originX_;
  const double ly = c.y - originY_;
  img::forEachDiscPixel(lx, ly, c.r, gain_.width(), gain_.height(),
                        [&](int x, int y) noexcept {
                          assert(coverage_(x, y) > 0);
                          if (--coverage_(x, y) == 0) delta -= gain_(x, y);
                        });
  return delta;
}

void PixelLikelihood::resynchronise() noexcept {
  double total = 0.0;
  for (int y = 0; y < gain_.height(); ++y) {
    const float* gainRow = gain_.row(y);
    const std::uint16_t* covRow = coverage_.row(y);
    for (int x = 0; x < gain_.width(); ++x) {
      if (covRow[x] > 0) total += gainRow[x];
    }
  }
  coveredGain_ = total;
}

double PixelLikelihood::referenceCoveredGain(
    std::span<const Circle> circles) const {
  img::Image<std::uint16_t> cov(gain_.width(), gain_.height(), 0);
  for (const Circle& c : circles) {
    img::forEachDiscPixel(c.x - originX_, c.y - originY_, c.r, gain_.width(),
                          gain_.height(),
                          [&](int x, int y) { ++cov(x, y); });
  }
  double total = 0.0;
  for (int y = 0; y < gain_.height(); ++y) {
    const float* gainRow = gain_.row(y);
    const std::uint16_t* covRow = cov.row(y);
    for (int x = 0; x < gain_.width(); ++x) {
      if (covRow[x] > 0) total += gainRow[x];
    }
  }
  return total;
}

PixelLikelihood PixelLikelihood::crop(int gx0, int gy0, int w, int h) const {
  assert(gx0 >= originX_ && gy0 >= originY_);
  assert(gx0 + w <= originX_ + width() && gy0 + h <= originY_ + height());
  PixelLikelihood out;
  out.params_ = params_;
  out.originX_ = gx0;
  out.originY_ = gy0;
  out.gain_ = gain_.crop(gx0 - originX_, gy0 - originY_, w, h);
  out.coverage_ = coverage_.crop(gx0 - originX_, gy0 - originY_, w, h);
  out.constTerm_ = 0.0;  // crops track relative gain only
  out.resynchronise();
  out.initialCoveredGain_ = out.coveredGain_;
  return out;
}

void PixelLikelihood::absorbCrop(const PixelLikelihood& cropped) noexcept {
  const int lx0 = cropped.originX_ - originX_;
  const int ly0 = cropped.originY_ - originY_;
  assert(lx0 >= 0 && ly0 >= 0);
  assert(lx0 + cropped.width() <= width() && ly0 + cropped.height() <= height());
  for (int y = 0; y < cropped.height(); ++y) {
    const std::uint16_t* src = cropped.coverage_.row(y);
    std::uint16_t* dst = coverage_.row(ly0 + y) + lx0;
    std::copy(src, src + cropped.width(), dst);
  }
  coveredGain_ += cropped.coveredGainDeltaSinceCrop();
}

}  // namespace mcmcpar::model
