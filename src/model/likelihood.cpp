#include "model/likelihood.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <vector>

#include "img/disc_raster.hpp"
#include "model/likelihood_kernels.hpp"
#include "rng/distributions.hpp"

namespace mcmcpar::model {

// Every delta/apply method walks the disc as contiguous row spans
// (img::forEachDiscSpan) and hands each span to the vectorised kernels in
// model/likelihood_kernels.*. Span results are folded in row order into a
// plain double (move deltas) or a KahanSum (whole-image totals), which —
// together with the kernels' fixed-lane accumulation — makes every value
// bit-reproducible across runs, backends and machines.

PixelLikelihood::PixelLikelihood(const img::ImageF& filtered,
                                 const LikelihoodParams& params, int originX,
                                 int originY)
    : params_(params),
      originX_(originX),
      originY_(originY),
      gain_(filtered.width(), filtered.height()),
      coverage_(filtered.width(), filtered.height(), 0) {
  // gain(p) = logN(I; fg, s) - logN(I; bg, s)
  //         = [ (I - bg)^2 - (I - fg)^2 ] / (2 s^2)
  const double inv2s2 = 1.0 / (2.0 * params_.sigma * params_.sigma);
  // Millions of pixels feed one total: compensated summation keeps the
  // constant term ~45x closer to the long-double reference than a naive
  // accumulator on a 2048^2 image (measured 1.2e-8 vs 5.7e-7 off).
  kernels::KahanSum constTerm;
  for (int y = 0; y < filtered.height(); ++y) {
    const float* src = filtered.row(y);
    float* dst = gain_.row(y);
    for (int x = 0; x < filtered.width(); ++x) {
      const double v = static_cast<double>(src[x]);
      const double dBg = v - params_.bgMean;
      const double dFg = v - params_.fgMean;
      dst[x] = static_cast<float>((dBg * dBg - dFg * dFg) * inv2s2);
      constTerm.add(rng::logNormalPdf(v, params_.bgMean, params_.sigma));
    }
  }
  constTerm_ = constTerm.value();
}

double PixelLikelihood::deltaAdd(const Circle& c) const noexcept {
  double delta = 0.0;
  const double lx = c.x - originX_;
  const double ly = c.y - originY_;
  img::forEachDiscSpan(lx, ly, c.r, gain_.width(), gain_.height(),
                       [&](int y, int x0, int x1) noexcept {
                         delta += kernels::spanDeltaAdd(
                             gain_.row(y) + x0, coverage_.row(y) + x0,
                             static_cast<std::size_t>(x1 - x0));
                       });
  return delta;
}

double PixelLikelihood::deltaRemove(const Circle& c) const noexcept {
  double delta = 0.0;
  const double lx = c.x - originX_;
  const double ly = c.y - originY_;
  img::forEachDiscSpan(lx, ly, c.r, gain_.width(), gain_.height(),
                       [&](int y, int x0, int x1) noexcept {
                         delta += kernels::spanDeltaRemove(
                             gain_.row(y) + x0, coverage_.row(y) + x0,
                             static_cast<std::size_t>(x1 - x0));
                       });
  return delta;
}

namespace {

/// Apply `kernel` to the sub-spans of [x0, x1) lying OUTSIDE the cut span
/// (at most two contiguous segments), keeping the kernels on contiguous
/// slices. The cut uses the same span geometry as the enumeration, so the
/// excluded pixel set is exactly the other disc's raster footprint.
template <typename Kernel>
double spanOutsideCut(const float* gainRow, const std::uint16_t* covRow,
                      int x0, int x1, img::RowSpan cut,
                      Kernel&& kernel) noexcept {
  const bool haveCut = cut.x0 < cut.x1;
  const int leftEnd = haveCut ? std::clamp(cut.x0, x0, x1) : x1;
  const int rightBegin = haveCut ? std::clamp(cut.x1, x0, x1) : x1;
  double delta = 0.0;
  if (x0 < leftEnd) {
    delta += kernel(gainRow + x0, covRow + x0,
                    static_cast<std::size_t>(leftEnd - x0));
  }
  if (rightBegin < x1) {
    delta += kernel(gainRow + rightBegin, covRow + rightBegin,
                    static_cast<std::size_t>(x1 - rightBegin));
  }
  return delta;
}

}  // namespace

double PixelLikelihood::deltaReplace(const Circle& oldC,
                                     const Circle& newC) const noexcept {
  // Pixels in new\old becoming covered, pixels in old\new becoming bare.
  // Subtracting the other disc's row span from each enumerated span keeps
  // the kernels on contiguous slices and reuses the exact span geometry of
  // the apply path, so the two discs' pixel sets can never disagree with an
  // applyRemove+applyAdd of the same circles.
  double delta = 0.0;
  const double ox = oldC.x - originX_;
  const double oy = oldC.y - originY_;
  const double nx = newC.x - originX_;
  const double ny = newC.y - originY_;
  const int width = gain_.width();
  img::forEachDiscSpan(
      nx, ny, newC.r, width, gain_.height(),
      [&](int y, int x0, int x1) noexcept {
        delta += spanOutsideCut(gain_.row(y), coverage_.row(y), x0, x1,
                                img::discRowSpan(ox, oy, oldC.r, y, width),
                                kernels::spanDeltaAdd);
      });
  img::forEachDiscSpan(
      ox, oy, oldC.r, width, gain_.height(),
      [&](int y, int x0, int x1) noexcept {
        delta += spanOutsideCut(gain_.row(y), coverage_.row(y), x0, x1,
                                img::discRowSpan(nx, ny, newC.r, y, width),
                                kernels::spanDeltaRemove);
      });
  return delta;
}

double PixelLikelihood::deltaMultiple(std::span<const Circle> removed,
                                      std::span<const Circle> added) const noexcept {
  // Joint bounding box of every affected disc, in local coordinates.
  double bx0 = 1e30, by0 = 1e30, bx1 = -1e30, by1 = -1e30;
  const auto extend = [&](const Circle& c) noexcept {
    bx0 = std::min(bx0, c.x - c.r - originX_);
    by0 = std::min(by0, c.y - c.r - originY_);
    bx1 = std::max(bx1, c.x + c.r - originX_);
    by1 = std::max(by1, c.y + c.r - originY_);
  };
  for (const Circle& c : removed) extend(c);
  for (const Circle& c : added) extend(c);
  if (bx1 < bx0) return 0.0;

  const int x0 = std::max(0, static_cast<int>(std::floor(std::max(bx0, -1.0))));
  const int y0 = std::max(0, static_cast<int>(std::floor(std::max(by0, -1.0))));
  const int x1 = std::min(
      gain_.width() - 1,
      static_cast<int>(std::ceil(std::min(bx1, 1.0 + gain_.width()))));
  const int y1 = std::min(
      gain_.height() - 1,
      static_cast<int>(std::ceil(std::min(by1, 1.0 + gain_.height()))));
  if (x1 < x0 || y1 < y0) return 0.0;
  const int bboxWidth = x1 - x0 + 1;

  // Per-row coverage deltas, rebuilt from the circles' row spans (one sqrt
  // per circle per row; every disc span lies inside the bounding box). The
  // buffers are thread_local because const delta evaluation may run
  // concurrently on the same likelihood (in-place executor).
  thread_local std::vector<std::int16_t> scratch;
  if (scratch.size() < static_cast<std::size_t>(2 * bboxWidth)) {
    scratch.assign(static_cast<std::size_t>(2 * bboxWidth), 0);
  }
  std::int16_t* dOld = scratch.data();
  std::int16_t* dNew = scratch.data() + bboxWidth;

  double delta = 0.0;
  for (int y = y0; y <= y1; ++y) {
    int rowMin = x1 + 1;
    int rowMax = x0 - 1;
    const auto splat = [&](const Circle& c, std::int16_t* counts) noexcept {
      const img::RowSpan s = img::discRowSpan(
          c.x - originX_, c.y - originY_, c.r, y, gain_.width());
      if (s.x0 >= s.x1) return;
      assert(s.x0 >= x0 && s.x1 <= x1 + 1);
      rowMin = std::min(rowMin, s.x0);
      rowMax = std::max(rowMax, s.x1 - 1);
      for (int x = s.x0; x < s.x1; ++x) {
        counts[x - x0] = static_cast<std::int16_t>(counts[x - x0] + 1);
      }
    };
    for (const Circle& c : removed) splat(c, dOld);
    for (const Circle& c : added) splat(c, dNew);
    if (rowMin > rowMax) continue;
    const int off = rowMin - x0;
    const std::size_t n = static_cast<std::size_t>(rowMax - rowMin + 1);
    delta += kernels::spanTransitionDelta(gain_.row(y) + rowMin,
                                          coverage_.row(y) + rowMin,
                                          dOld + off, dNew + off, n);
    std::fill(dOld + off, dOld + off + n, std::int16_t{0});
    std::fill(dNew + off, dNew + off + n, std::int16_t{0});
  }
  return delta;
}

double PixelLikelihood::applyAdd(const Circle& c) noexcept {
  double delta = 0.0;
  const double lx = c.x - originX_;
  const double ly = c.y - originY_;
  img::forEachDiscSpan(lx, ly, c.r, gain_.width(), gain_.height(),
                       [&](int y, int x0, int x1) noexcept {
                         delta += kernels::spanApplyAdd(
                             gain_.row(y) + x0, coverage_.row(y) + x0,
                             static_cast<std::size_t>(x1 - x0));
                       });
  return delta;
}

double PixelLikelihood::applyRemove(const Circle& c) noexcept {
  double delta = 0.0;
  const double lx = c.x - originX_;
  const double ly = c.y - originY_;
  img::forEachDiscSpan(lx, ly, c.r, gain_.width(), gain_.height(),
                       [&](int y, int x0, int x1) noexcept {
                         delta += kernels::spanApplyRemove(
                             gain_.row(y) + x0, coverage_.row(y) + x0,
                             static_cast<std::size_t>(x1 - x0));
                       });
  return delta;
}

void PixelLikelihood::resynchronise() noexcept {
  kernels::KahanSum total;
  for (int y = 0; y < gain_.height(); ++y) {
    total.add(kernels::spanSumCovered(gain_.row(y), coverage_.row(y),
                                      static_cast<std::size_t>(gain_.width())));
  }
  coveredGain_ = total.value();
}

double PixelLikelihood::referenceCoveredGain(
    std::span<const Circle> circles) const {
  img::Image<std::uint16_t> cov(gain_.width(), gain_.height(), 0);
  for (const Circle& c : circles) {
    img::forEachDiscSpan(c.x - originX_, c.y - originY_, c.r, gain_.width(),
                         gain_.height(), [&](int y, int x0, int x1) {
                           std::uint16_t* row = cov.row(y);
                           for (int x = x0; x < x1; ++x) ++row[x];
                         });
  }
  // Same kernel + same row-ordered Kahan fold as resynchronise(), so a
  // resynchronised total bit-matches this reference.
  kernels::KahanSum total;
  for (int y = 0; y < gain_.height(); ++y) {
    total.add(kernels::spanSumCovered(gain_.row(y), cov.row(y),
                                      static_cast<std::size_t>(gain_.width())));
  }
  return total.value();
}

PixelLikelihood PixelLikelihood::crop(int gx0, int gy0, int w, int h) const {
  assert(gx0 >= originX_ && gy0 >= originY_);
  assert(gx0 + w <= originX_ + width() && gy0 + h <= originY_ + height());
  PixelLikelihood out;
  out.params_ = params_;
  out.originX_ = gx0;
  out.originY_ = gy0;
  out.gain_ = gain_.crop(gx0 - originX_, gy0 - originY_, w, h);
  out.coverage_ = coverage_.crop(gx0 - originX_, gy0 - originY_, w, h);
  out.constTerm_ = 0.0;  // crops track relative gain only
  out.resynchronise();
  out.initialCoveredGain_ = out.coveredGain_;
  return out;
}

void PixelLikelihood::absorbCrop(const PixelLikelihood& cropped) noexcept {
  const int lx0 = cropped.originX_ - originX_;
  const int ly0 = cropped.originY_ - originY_;
  assert(lx0 >= 0 && ly0 >= 0);
  assert(lx0 + cropped.width() <= width() && ly0 + cropped.height() <= height());
  for (int y = 0; y < cropped.height(); ++y) {
    const std::uint16_t* src = cropped.coverage_.row(y);
    std::uint16_t* dst = coverage_.row(ly0 + y) + lx0;
    std::copy(src, src + cropped.width(), dst);
  }
  coveredGain_ += cropped.coveredGainDeltaSinceCrop();
}

}  // namespace mcmcpar::model
