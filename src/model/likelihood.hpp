#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "img/image.hpp"
#include "model/circle.hpp"

namespace mcmcpar::model {

/// Pixel observation model parameters (two-component Gaussian): pixels
/// covered by at least one disc are modelled N(fgMean, sigma^2), uncovered
/// pixels N(bgMean, sigma^2).
struct LikelihoodParams {
  double fgMean = 0.85;
  double bgMean = 0.10;
  double sigma = 0.20;
};

/// Incremental image log-likelihood with a maintained coverage raster.
///
/// log L(config) = sum_p [ covered(p) ? logN(I_p; fg) : logN(I_p; bg) ]
///               = constTerm + sum_{p covered} gain(p)
/// where gain(p) = logN(I_p; fg) - logN(I_p; bg) is precomputed per pixel.
/// A move's delta therefore touches only the discs it changes: O(r^2).
///
/// The raster may be a crop of a larger image: `originX/originY` give the
/// crop's position, and all circle coordinates remain global. The periodic
/// split/merge executor clones crops per partition and folds them back with
/// `absorbCrop`.
///
/// Mutation API: `applyAdd`/`applyRemove` update coverage and RETURN the
/// covered-gain delta without touching the running total; callers accumulate
/// via `adjustCoveredGain`. This split lets the in-place parallel executor
/// accumulate deltas thread-locally (coverage writes are disjoint by the
/// partition legality rules; the scalar total would otherwise be a race).
///
/// Hot path: every method walks the disc as contiguous row spans
/// (img::forEachDiscSpan) and sums each span with the vectorised kernels in
/// model/likelihood_kernels.hpp. The kernels' fixed-lane accumulation makes
/// every delta bit-reproducible across backends (scalar/omp-simd/AVX2) and
/// machines — see the determinism policy in that header.
class PixelLikelihood {
 public:
  PixelLikelihood() = default;

  /// Build over a filtered intensity image (values in [0, 1]).
  PixelLikelihood(const img::ImageF& filtered, const LikelihoodParams& params,
                  int originX = 0, int originY = 0);

  [[nodiscard]] const LikelihoodParams& params() const noexcept { return params_; }
  [[nodiscard]] int originX() const noexcept { return originX_; }
  [[nodiscard]] int originY() const noexcept { return originY_; }
  [[nodiscard]] int width() const noexcept { return gain_.width(); }
  [[nodiscard]] int height() const noexcept { return gain_.height(); }

  /// Current log-likelihood (constant background term + covered gain).
  [[nodiscard]] double logLikelihood() const noexcept {
    return constTerm_ + coveredGain_;
  }
  [[nodiscard]] double coveredGain() const noexcept { return coveredGain_; }

  /// Coverage count at a global pixel coordinate (must be inside the crop).
  [[nodiscard]] std::uint16_t coverageAt(int gx, int gy) const noexcept {
    return coverage_(gx - originX_, gy - originY_);
  }

  // --- read-only move evaluation -----------------------------------------

  /// Delta log-likelihood of adding circle c.
  [[nodiscard]] double deltaAdd(const Circle& c) const noexcept;

  /// Delta of removing a currently applied circle c.
  [[nodiscard]] double deltaRemove(const Circle& c) const noexcept;

  /// Delta of replacing applied `oldC` with `newC` (exact also when the two
  /// discs overlap).
  [[nodiscard]] double deltaReplace(const Circle& oldC, const Circle& newC) const noexcept;

  /// Delta of removing all `removed` (currently applied) and adding all
  /// `added`, evaluated jointly over the union bounding box. Used for
  /// merge (2 removed, 1 added) and split (1 removed, 2 added).
  [[nodiscard]] double deltaMultiple(std::span<const Circle> removed,
                                     std::span<const Circle> added) const noexcept;

  // --- mutation ------------------------------------------------------------

  /// Increment coverage under c; returns the covered-gain delta.
  double applyAdd(const Circle& c) noexcept;

  /// Decrement coverage under c; returns the covered-gain delta (<= 0 terms).
  /// Removing a circle that is not applied is a caller bug: debug builds
  /// assert, release builds clamp the count at zero instead of wrapping the
  /// uint16 to 65535 (which would silently corrupt every subsequent delta).
  double applyRemove(const Circle& c) noexcept;

  /// Fold a delta into the running covered-gain total.
  void adjustCoveredGain(double delta) noexcept { coveredGain_ += delta; }

  /// Recompute the covered-gain total from the coverage raster (removes
  /// floating-point drift after long runs; O(pixels)).
  void resynchronise() noexcept;

  /// Reference value: covered gain recomputed from scratch for the given
  /// circle set (ignores the maintained raster). For tests.
  [[nodiscard]] double referenceCoveredGain(std::span<const Circle> circles) const;

  // --- crop support (split/merge executor) --------------------------------

  /// Clone the axis-aligned subrectangle [gx0, gx0+w) x [gy0, gy0+h) given in
  /// global coordinates (must be inside this raster). The clone keeps global
  /// coordinates and starts with the parent's coverage in that window.
  [[nodiscard]] PixelLikelihood crop(int gx0, int gy0, int w, int h) const;

  /// Write a crop's coverage back into this raster and fold its covered-gain
  /// delta (relative to when the crop was taken) into the running total.
  void absorbCrop(const PixelLikelihood& cropped) noexcept;

  /// Covered-gain change accumulated by this crop since construction.
  [[nodiscard]] double coveredGainDeltaSinceCrop() const noexcept {
    return coveredGain_ - initialCoveredGain_;
  }

 private:
  LikelihoodParams params_;
  int originX_ = 0;
  int originY_ = 0;
  img::ImageF gain_;                   // per-pixel log-lik gain when covered
  img::Image<std::uint16_t> coverage_; // number of discs covering each pixel
  double constTerm_ = 0.0;             // sum of background log-densities
  double coveredGain_ = 0.0;
  double initialCoveredGain_ = 0.0;    // value at construction (crops)
};

}  // namespace mcmcpar::model
