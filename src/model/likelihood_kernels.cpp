#include "model/likelihood_kernels.hpp"

#include <atomic>
#include <cassert>
#include <cstdlib>
#include <cstring>

#if defined(MCMCPAR_HAVE_AVX2_KERNELS)
#include "model/likelihood_kernels_avx2.hpp"
#endif

// The scalar loops walk the span in chunks of kLanes with one NAMED double
// accumulator per lane: the chunk body is straight-line code over eight
// independent register-resident chains, which the compiler pipelines (and may
// SLP-vectorise) without reassociating any individual lane's addition chain.
// Element i still feeds lane i%kLanes in increasing-i order, so the bits
// match the documented lane semantics exactly; measured, this shape runs
// ~2.5x faster than an indexed lanes[] array (which GCC keeps in memory) and
// ~1.6x faster than a single serial accumulator.

namespace mcmcpar::model::kernels {

static_assert(kLanes == 8, "the unrolled lane bodies and AVX2 TU assume 8 lanes");

namespace {

inline double combineLanes(const double lanes[kLanes]) noexcept {
  return ((lanes[0] + lanes[1]) + (lanes[2] + lanes[3])) +
         ((lanes[4] + lanes[5]) + (lanes[6] + lanes[7]));
}

// Expands `op(l)` once per lane with `l` a constant expression, keeping every
// accumulator a named local.
#define MCMCPAR_FOR_EACH_LANE(op) \
  op(0);                          \
  op(1);                          \
  op(2);                          \
  op(3);                          \
  op(4);                          \
  op(5);                          \
  op(6);                          \
  op(7)

double scalarDeltaAdd(const float* gain, const std::uint16_t* cov,
                      std::size_t n) noexcept {
  double l0 = 0, l1 = 0, l2 = 0, l3 = 0, l4 = 0, l5 = 0, l6 = 0, l7 = 0;
  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
#define MCMCPAR_LANE_OP(k) \
  l##k += cov[i + k] == 0 ? static_cast<double>(gain[i + k]) : 0.0
    MCMCPAR_FOR_EACH_LANE(MCMCPAR_LANE_OP);
#undef MCMCPAR_LANE_OP
  }
  double lanes[kLanes] = {l0, l1, l2, l3, l4, l5, l6, l7};
  for (; i < n; ++i) {
    lanes[i & 7] += cov[i] == 0 ? static_cast<double>(gain[i]) : 0.0;
  }
  return combineLanes(lanes);
}

double scalarDeltaRemove(const float* gain, const std::uint16_t* cov,
                         std::size_t n) noexcept {
  double l0 = 0, l1 = 0, l2 = 0, l3 = 0, l4 = 0, l5 = 0, l6 = 0, l7 = 0;
  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
#define MCMCPAR_LANE_OP(k) \
  l##k -= cov[i + k] == 1 ? static_cast<double>(gain[i + k]) : 0.0
    MCMCPAR_FOR_EACH_LANE(MCMCPAR_LANE_OP);
#undef MCMCPAR_LANE_OP
  }
  double lanes[kLanes] = {l0, l1, l2, l3, l4, l5, l6, l7};
  for (; i < n; ++i) {
    lanes[i & 7] -= cov[i] == 1 ? static_cast<double>(gain[i]) : 0.0;
  }
  return combineLanes(lanes);
}

double scalarApplyAdd(const float* gain, std::uint16_t* cov,
                      std::size_t n) noexcept {
  double l0 = 0, l1 = 0, l2 = 0, l3 = 0, l4 = 0, l5 = 0, l6 = 0, l7 = 0;
  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
#define MCMCPAR_LANE_OP(k)                                              \
  do {                                                                  \
    const std::uint16_t old = cov[i + k];                               \
    l##k += old == 0 ? static_cast<double>(gain[i + k]) : 0.0;          \
    cov[i + k] = old == 65535 ? old : static_cast<std::uint16_t>(old + 1); \
  } while (false)
    MCMCPAR_FOR_EACH_LANE(MCMCPAR_LANE_OP);
#undef MCMCPAR_LANE_OP
  }
  double lanes[kLanes] = {l0, l1, l2, l3, l4, l5, l6, l7};
  for (; i < n; ++i) {
    const std::uint16_t old = cov[i];
    lanes[i & 7] += old == 0 ? static_cast<double>(gain[i]) : 0.0;
    cov[i] = old == 65535 ? old : static_cast<std::uint16_t>(old + 1);
  }
  return combineLanes(lanes);
}

double scalarApplyRemove(const float* gain, std::uint16_t* cov,
                         std::size_t n) noexcept {
  double l0 = 0, l1 = 0, l2 = 0, l3 = 0, l4 = 0, l5 = 0, l6 = 0, l7 = 0;
  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
#define MCMCPAR_LANE_OP(k)                                         \
  do {                                                             \
    const std::uint16_t old = cov[i + k];                          \
    l##k -= old == 1 ? static_cast<double>(gain[i + k]) : 0.0;     \
    cov[i + k] = static_cast<std::uint16_t>(old - (old > 0 ? 1 : 0)); \
  } while (false)
    MCMCPAR_FOR_EACH_LANE(MCMCPAR_LANE_OP);
#undef MCMCPAR_LANE_OP
  }
  double lanes[kLanes] = {l0, l1, l2, l3, l4, l5, l6, l7};
  for (; i < n; ++i) {
    const std::uint16_t old = cov[i];
    assert(old > 0 && "applyRemove on an uncovered pixel");
    lanes[i & 7] -= old == 1 ? static_cast<double>(gain[i]) : 0.0;
    cov[i] = static_cast<std::uint16_t>(old - (old > 0 ? 1 : 0));
  }
  return combineLanes(lanes);
}

double scalarSumCovered(const float* gain, const std::uint16_t* cov,
                        std::size_t n) noexcept {
  double l0 = 0, l1 = 0, l2 = 0, l3 = 0, l4 = 0, l5 = 0, l6 = 0, l7 = 0;
  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
#define MCMCPAR_LANE_OP(k) \
  l##k += cov[i + k] > 0 ? static_cast<double>(gain[i + k]) : 0.0
    MCMCPAR_FOR_EACH_LANE(MCMCPAR_LANE_OP);
#undef MCMCPAR_LANE_OP
  }
  double lanes[kLanes] = {l0, l1, l2, l3, l4, l5, l6, l7};
  for (; i < n; ++i) {
    lanes[i & 7] += cov[i] > 0 ? static_cast<double>(gain[i]) : 0.0;
  }
  return combineLanes(lanes);
}

Backend detectBackend() noexcept {
  const char* forced = std::getenv("MCMCPAR_SIMD");
  if (forced != nullptr && std::strcmp(forced, "scalar") == 0) {
    return Backend::Scalar;
  }
#if defined(MCMCPAR_HAVE_AVX2_KERNELS)
  if (__builtin_cpu_supports("avx2")) return Backend::Avx2;
#endif
  return Backend::Scalar;
}

std::atomic<Backend>& backendState() noexcept {
  static std::atomic<Backend> state{detectBackend()};
  return state;
}

}  // namespace

bool avx2Available() noexcept {
#if defined(MCMCPAR_HAVE_AVX2_KERNELS)
  return __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}

Backend activeBackend() noexcept {
  return backendState().load(std::memory_order_relaxed);
}

const char* backendName() noexcept {
  return activeBackend() == Backend::Avx2 ? "avx2" : "scalar";
}

bool setBackend(Backend backend) noexcept {
  if (backend == Backend::Avx2 && !avx2Available()) return false;
  backendState().store(backend, std::memory_order_relaxed);
  return true;
}

double spanDeltaAdd(const float* gain, const std::uint16_t* cov,
                    std::size_t n) noexcept {
#if defined(MCMCPAR_HAVE_AVX2_KERNELS)
  if (activeBackend() == Backend::Avx2) return avx2::spanDeltaAdd(gain, cov, n);
#endif
  return scalarDeltaAdd(gain, cov, n);
}

double spanDeltaRemove(const float* gain, const std::uint16_t* cov,
                       std::size_t n) noexcept {
#if defined(MCMCPAR_HAVE_AVX2_KERNELS)
  if (activeBackend() == Backend::Avx2) {
    return avx2::spanDeltaRemove(gain, cov, n);
  }
#endif
  return scalarDeltaRemove(gain, cov, n);
}

double spanApplyAdd(const float* gain, std::uint16_t* cov,
                    std::size_t n) noexcept {
#if defined(MCMCPAR_HAVE_AVX2_KERNELS)
  if (activeBackend() == Backend::Avx2) return avx2::spanApplyAdd(gain, cov, n);
#endif
  return scalarApplyAdd(gain, cov, n);
}

double spanApplyRemove(const float* gain, std::uint16_t* cov,
                       std::size_t n) noexcept {
#if !defined(NDEBUG)
  // The debug-check must fire regardless of backend; the AVX2 TU has no
  // asserts of its own.
  for (std::size_t i = 0; i < n; ++i) {
    assert(cov[i] > 0 && "applyRemove on an uncovered pixel");
  }
#endif
#if defined(MCMCPAR_HAVE_AVX2_KERNELS)
  if (activeBackend() == Backend::Avx2) {
    return avx2::spanApplyRemove(gain, cov, n);
  }
#endif
  return scalarApplyRemove(gain, cov, n);
}

double spanSumCovered(const float* gain, const std::uint16_t* cov,
                      std::size_t n) noexcept {
#if defined(MCMCPAR_HAVE_AVX2_KERNELS)
  if (activeBackend() == Backend::Avx2) {
    return avx2::spanSumCovered(gain, cov, n);
  }
#endif
  return scalarSumCovered(gain, cov, n);
}

double spanTransitionDelta(const float* gain, const std::uint16_t* cov,
                           const std::int16_t* dOld, const std::int16_t* dNew,
                           std::size_t n) noexcept {
  double l0 = 0, l1 = 0, l2 = 0, l3 = 0, l4 = 0, l5 = 0, l6 = 0, l7 = 0;
  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
#define MCMCPAR_LANE_OP(k)                                  \
  do {                                                      \
    const int cur = cov[i + k];                             \
    const bool was = cur > 0;                               \
    const bool now = cur - dOld[i + k] + dNew[i + k] > 0;   \
    l##k += was == now ? 0.0                                \
            : now      ? static_cast<double>(gain[i + k])   \
                       : -static_cast<double>(gain[i + k]); \
  } while (false)
    MCMCPAR_FOR_EACH_LANE(MCMCPAR_LANE_OP);
#undef MCMCPAR_LANE_OP
  }
  double lanes[kLanes] = {l0, l1, l2, l3, l4, l5, l6, l7};
  for (; i < n; ++i) {
    const int cur = cov[i];
    const bool was = cur > 0;
    const bool now = cur - dOld[i] + dNew[i] > 0;
    lanes[i & 7] += was == now ? 0.0
                    : now      ? static_cast<double>(gain[i])
                               : -static_cast<double>(gain[i]);
  }
  return combineLanes(lanes);
}

}  // namespace mcmcpar::model::kernels
