#pragma once

#include <cstddef>
#include <cstdint>

namespace mcmcpar::model::kernels {

/// Row-span accumulation kernels of the likelihood hot path.
///
/// Every strategy in the repo bottoms out in these loops: given a contiguous
/// slice of the per-pixel `gain` row and the matching `coverage` counts, sum
/// the gains of pixels whose covered/uncovered state a move flips. The span
/// layout (img::forEachDiscSpan) makes the slices contiguous, so the inner
/// loops vectorise; this header is the single place the summation semantics
/// are defined.
///
/// Determinism policy (load-bearing: warm-start determinism and remote-tile
/// bit-exactness assert bit-identical log-likelihoods):
///
///  * Each kernel accumulates into a FIXED-WIDTH bank of kLanes independent
///    double accumulators — element i of a span goes to lane (i % kLanes),
///    floats are widened to double (exact) before the add — and the lanes are
///    combined in the fixed order ((l0+l1)+(l2+l3)) + ((l4+l5)+(l6+l7)).
///  * Every backend (plain scalar, `#pragma omp simd`, AVX2 intrinsics)
///    implements EXACTLY this arithmetic, so results are bit-identical across
///    backends and across machines by construction; vectorisation never needs
///    to be gated for reproducibility. test_likelihood_kernels asserts the
///    scalar/AVX2 bit-equality on random inputs.
///  * Cross-span/cross-row totals are the caller's job and must be summed in
///    row order (PixelLikelihood uses a plain double for move deltas and a
///    KahanSum for whole-image totals).
inline constexpr std::size_t kLanes = 8;

/// Which implementation the span kernels dispatch to.
enum class Backend {
  Scalar,  ///< portable loops (auto/omp-simd vectorised when available)
  Avx2,    ///< AVX2 intrinsics (x86-64, compiled in and CPU-supported only)
};

/// True iff the AVX2 kernels were compiled in AND this CPU supports AVX2.
[[nodiscard]] bool avx2Available() noexcept;

/// Currently active backend. Defaults to Avx2 when available, else Scalar;
/// the environment variable MCMCPAR_SIMD=scalar|avx2 overrides the default
/// (useful for A/B benchmarking — results are bit-identical either way).
[[nodiscard]] Backend activeBackend() noexcept;
[[nodiscard]] const char* backendName() noexcept;

/// Force a backend (tests/benchmarks). Returns false — and leaves the active
/// backend unchanged — when the requested backend is unavailable. Not
/// intended to be raced against in-flight kernel calls.
bool setBackend(Backend backend) noexcept;

// --- span kernels ---------------------------------------------------------
// `gain` and `cov` point at the same span of one raster row; n is the span
// length. All return the covered-gain delta contribution of that span.

/// Sum of gain[i] where cov[i] == 0 (delta of adding a disc over the span).
[[nodiscard]] double spanDeltaAdd(const float* gain, const std::uint16_t* cov,
                                  std::size_t n) noexcept;

/// Negated sum of gain[i] where cov[i] == 1 (delta of removing a disc).
[[nodiscard]] double spanDeltaRemove(const float* gain,
                                     const std::uint16_t* cov,
                                     std::size_t n) noexcept;

/// spanDeltaAdd + increment every cov[i] (saturating at 65535 instead of
/// wrapping; >65535 overlapping discs is unreachable in practice).
double spanApplyAdd(const float* gain, std::uint16_t* cov,
                    std::size_t n) noexcept;

/// spanDeltaRemove + decrement every cov[i]. The decrement CLAMPS at zero:
/// an uncovered pixel stays 0 (debug builds assert) rather than wrapping the
/// uint16 to 65535 and silently corrupting every subsequent delta.
double spanApplyRemove(const float* gain, std::uint16_t* cov,
                       std::size_t n) noexcept;

/// Sum of gain[i] where cov[i] > 0 (resynchronise / reference recompute).
[[nodiscard]] double spanSumCovered(const float* gain,
                                    const std::uint16_t* cov,
                                    std::size_t n) noexcept;

/// Joint coverage-transition delta for multi-disc moves: pixel i currently
/// has count cov[i], loses dOld[i] discs and gains dNew[i]; the result sums
/// +gain where the pixel becomes covered and -gain where it becomes bare.
/// Scalar/omp-simd only (split/merge moves are far off the hot path).
[[nodiscard]] double spanTransitionDelta(const float* gain,
                                         const std::uint16_t* cov,
                                         const std::int16_t* dOld,
                                         const std::int16_t* dNew,
                                         std::size_t n) noexcept;

// --- compensated accumulation ---------------------------------------------

/// Kahan-compensated running sum for whole-image totals (constTerm_,
/// resynchronise): millions of naive float-to-double adds drift by ~1e-7
/// relative; compensation holds the error at a few ulps of the total.
/// Must not be compiled with fast-math (the repo never does).
struct KahanSum {
  double sum = 0.0;
  double comp = 0.0;

  void add(double v) noexcept {
    const double y = v - comp;
    const double t = sum + y;
    comp = (t - sum) - y;
    sum = t;
  }
  [[nodiscard]] double value() const noexcept { return sum; }
};

}  // namespace mcmcpar::model::kernels
