// AVX2 span kernels. Compiled with -mavx2 (see CMakeLists.txt); only ever
// entered after a runtime __builtin_cpu_supports("avx2") check.
//
// Bit-exactness contract with the scalar backend (likelihood_kernels.cpp):
// the two 4-double accumulators acc0/acc1 are lanes 0..3 / 4..7 of the
// fixed 8-lane bank, span element i lands in lane (i % 8), masked-out
// elements contribute +0.0 (identical to the scalar ternary's 0.0 arm),
// the float->double widening is exact, and the tail (<8 elements) plus the
// final lane combine run the very same scalar code. There are no multiplies,
// so FMA contraction cannot perturb the sums.

#include "model/likelihood_kernels_avx2.hpp"

#include <immintrin.h>

namespace mcmcpar::model::kernels::avx2 {

namespace {

/// 8 x 32-bit lane mask (0 / 0xFFFFFFFF) from an 8 x 16-bit compare result.
inline __m256 expandMask16(__m128i mask16) noexcept {
  return _mm256_castsi256_ps(_mm256_cvtepi16_epi32(mask16));
}

inline double combineLanes(const double lanes[8]) noexcept {
  return ((lanes[0] + lanes[1]) + (lanes[2] + lanes[3])) +
         ((lanes[4] + lanes[5]) + (lanes[6] + lanes[7]));
}

inline void accumulate(__m256d& acc0, __m256d& acc1, __m256 vals) noexcept {
  acc0 = _mm256_add_pd(acc0, _mm256_cvtps_pd(_mm256_castps256_ps128(vals)));
  acc1 = _mm256_add_pd(acc1, _mm256_cvtps_pd(_mm256_extractf128_ps(vals, 1)));
}

inline void deaccumulate(__m256d& acc0, __m256d& acc1, __m256 vals) noexcept {
  acc0 = _mm256_sub_pd(acc0, _mm256_cvtps_pd(_mm256_castps256_ps128(vals)));
  acc1 = _mm256_sub_pd(acc1, _mm256_cvtps_pd(_mm256_extractf128_ps(vals, 1)));
}

inline void storeLanes(double lanes[8], __m256d acc0, __m256d acc1) noexcept {
  _mm256_storeu_pd(lanes, acc0);
  _mm256_storeu_pd(lanes + 4, acc1);
}

}  // namespace

double spanDeltaAdd(const float* gain, const std::uint16_t* cov,
                    std::size_t n) noexcept {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m128i cv =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(cov + i));
    const __m128i eq0 = _mm_cmpeq_epi16(cv, _mm_setzero_si128());
    const __m256 vals =
        _mm256_and_ps(_mm256_loadu_ps(gain + i), expandMask16(eq0));
    accumulate(acc0, acc1, vals);
  }
  double lanes[8];
  storeLanes(lanes, acc0, acc1);
  for (; i < n; ++i) {
    lanes[i & 7] += cov[i] == 0 ? static_cast<double>(gain[i]) : 0.0;
  }
  return combineLanes(lanes);
}

double spanDeltaRemove(const float* gain, const std::uint16_t* cov,
                       std::size_t n) noexcept {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m128i cv =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(cov + i));
    const __m128i eq1 = _mm_cmpeq_epi16(cv, _mm_set1_epi16(1));
    const __m256 vals =
        _mm256_and_ps(_mm256_loadu_ps(gain + i), expandMask16(eq1));
    deaccumulate(acc0, acc1, vals);
  }
  double lanes[8];
  storeLanes(lanes, acc0, acc1);
  for (; i < n; ++i) {
    lanes[i & 7] -= cov[i] == 1 ? static_cast<double>(gain[i]) : 0.0;
  }
  return combineLanes(lanes);
}

double spanApplyAdd(const float* gain, std::uint16_t* cov,
                    std::size_t n) noexcept {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m128i* covPtr = reinterpret_cast<__m128i*>(cov + i);
    const __m128i cv = _mm_loadu_si128(covPtr);
    const __m128i eq0 = _mm_cmpeq_epi16(cv, _mm_setzero_si128());
    const __m256 vals =
        _mm256_and_ps(_mm256_loadu_ps(gain + i), expandMask16(eq0));
    accumulate(acc0, acc1, vals);
    // Saturating increment == the scalar backend's 65535 clamp.
    _mm_storeu_si128(covPtr, _mm_adds_epu16(cv, _mm_set1_epi16(1)));
  }
  double lanes[8];
  storeLanes(lanes, acc0, acc1);
  for (; i < n; ++i) {
    const std::uint16_t old = cov[i];
    lanes[i & 7] += old == 0 ? static_cast<double>(gain[i]) : 0.0;
    cov[i] = old == 65535 ? old : static_cast<std::uint16_t>(old + 1);
  }
  return combineLanes(lanes);
}

double spanApplyRemove(const float* gain, std::uint16_t* cov,
                       std::size_t n) noexcept {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m128i* covPtr = reinterpret_cast<__m128i*>(cov + i);
    const __m128i cv = _mm_loadu_si128(covPtr);
    const __m128i eq0 = _mm_cmpeq_epi16(cv, _mm_setzero_si128());
    const __m128i eq1 = _mm_cmpeq_epi16(cv, _mm_set1_epi16(1));
    const __m256 vals =
        _mm256_and_ps(_mm256_loadu_ps(gain + i), expandMask16(eq1));
    deaccumulate(acc0, acc1, vals);
    // Decrement where cov > 0; already-zero pixels clamp at zero instead of
    // wrapping to 65535.
    const __m128i dec = _mm_andnot_si128(eq0, _mm_set1_epi16(1));
    _mm_storeu_si128(covPtr, _mm_sub_epi16(cv, dec));
  }
  double lanes[8];
  storeLanes(lanes, acc0, acc1);
  for (; i < n; ++i) {
    const std::uint16_t old = cov[i];
    lanes[i & 7] -= old == 1 ? static_cast<double>(gain[i]) : 0.0;
    cov[i] = static_cast<std::uint16_t>(old - (old > 0 ? 1 : 0));
  }
  return combineLanes(lanes);
}

double spanSumCovered(const float* gain, const std::uint16_t* cov,
                      std::size_t n) noexcept {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m128i cv =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(cov + i));
    const __m128i eq0 = _mm_cmpeq_epi16(cv, _mm_setzero_si128());
    const __m256 vals =
        _mm256_andnot_ps(expandMask16(eq0), _mm256_loadu_ps(gain + i));
    accumulate(acc0, acc1, vals);
  }
  double lanes[8];
  storeLanes(lanes, acc0, acc1);
  for (; i < n; ++i) {
    lanes[i & 7] += cov[i] > 0 ? static_cast<double>(gain[i]) : 0.0;
  }
  return combineLanes(lanes);
}

}  // namespace mcmcpar::model::kernels::avx2
