#pragma once

// Internal: AVX2 definitions of the span kernels, compiled separately with
// -mavx2 (CMake adds the TU and defines MCMCPAR_HAVE_AVX2_KERNELS only when
// the option is on and the compiler targets x86-64). Callers must check
// kernels::avx2Available() before dispatching here. Each function implements
// bit-for-bit the lane arithmetic documented in likelihood_kernels.hpp.

#include <cstddef>
#include <cstdint>

namespace mcmcpar::model::kernels::avx2 {

double spanDeltaAdd(const float* gain, const std::uint16_t* cov,
                    std::size_t n) noexcept;
double spanDeltaRemove(const float* gain, const std::uint16_t* cov,
                       std::size_t n) noexcept;
double spanApplyAdd(const float* gain, std::uint16_t* cov,
                    std::size_t n) noexcept;
double spanApplyRemove(const float* gain, std::uint16_t* cov,
                       std::size_t n) noexcept;
double spanSumCovered(const float* gain, const std::uint16_t* cov,
                      std::size_t n) noexcept;

}  // namespace mcmcpar::model::kernels::avx2
