#include "model/model_io.hpp"

#include <charconv>
#include <fstream>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>

namespace mcmcpar::model {

namespace {

double parseField(const std::string& field, const std::string& line) {
  double value = 0.0;
  const char* begin = field.data();
  const char* end = begin + field.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr != end) {
    throw ModelIoError("model CSV: bad number in line: " + line);
  }
  return value;
}

}  // namespace

void writeCirclesCsv(const std::vector<Circle>& circles, std::ostream& out) {
  out << "x,y,r\n";
  out.precision(std::numeric_limits<double>::max_digits10);
  for (const Circle& c : circles) {
    out << c.x << ',' << c.y << ',' << c.r << '\n';
  }
  if (!out) throw ModelIoError("model CSV: write failed");
}

void writeCirclesCsv(const std::vector<Circle>& circles,
                     const std::string& path) {
  std::ofstream out(path);
  if (!out) throw ModelIoError("model CSV: cannot open " + path);
  writeCirclesCsv(circles, out);
}

std::vector<Circle> readCirclesCsv(std::istream& in) {
  std::string line;
  if (!std::getline(in, line) || (line != "x,y,r" && line != "x,y,r\r")) {
    throw ModelIoError("model CSV: missing x,y,r header");
  }
  std::vector<Circle> circles;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    std::stringstream row(line);
    std::string fx, fy, fr;
    if (!std::getline(row, fx, ',') || !std::getline(row, fy, ',') ||
        !std::getline(row, fr)) {
      throw ModelIoError("model CSV: expected 3 fields: " + line);
    }
    circles.push_back(Circle{parseField(fx, line), parseField(fy, line),
                             parseField(fr, line)});
  }
  return circles;
}

std::vector<Circle> readCirclesCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw ModelIoError("model CSV: cannot open " + path);
  return readCirclesCsv(in);
}

}  // namespace mcmcpar::model
