#pragma once

#include <iosfwd>
#include <stdexcept>
#include <string>
#include <vector>

#include "model/circle.hpp"

namespace mcmcpar::model {

/// Error thrown by the model reader on malformed input.
class ModelIoError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Write a circle model as CSV (header `x,y,r`, one circle per line,
/// full double precision round-trip).
void writeCirclesCsv(const std::vector<Circle>& circles, std::ostream& out);
void writeCirclesCsv(const std::vector<Circle>& circles,
                     const std::string& path);

/// Read a circle model written by writeCirclesCsv (header validated;
/// blank lines ignored; throws ModelIoError on malformed rows).
[[nodiscard]] std::vector<Circle> readCirclesCsv(std::istream& in);
[[nodiscard]] std::vector<Circle> readCirclesCsv(const std::string& path);

}  // namespace mcmcpar::model
