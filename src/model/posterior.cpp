#include "model/posterior.hpp"

#include <algorithm>
#include <array>

namespace mcmcpar::model {

namespace {

Bounds boundsOf(const PixelLikelihood& lik) {
  Bounds b;
  b.x0 = lik.originX();
  b.y0 = lik.originY();
  b.x1 = lik.originX() + lik.width();
  b.y1 = lik.originY() + lik.height();
  return b;
}

Configuration makeConfig(const Bounds& b, const CirclePrior& prior) {
  // Grid cell size must cover the largest neighbour query: the overlap
  // interaction range. Merge-partner searches use a distance configured in
  // the move set; 2*radiusMax dominates for any sane merge distance.
  // The grid is indexed in domain-local coordinates? No: circle coordinates
  // are global, so the grid spans [0, x1) x [0, y1) to keep indexing simple;
  // cells left of the crop stay empty.
  return Configuration(b.x1, b.y1, std::max(prior.interactionRange(), 8.0));
}

}  // namespace

ModelState::ModelState(const img::ImageF& filtered, const PriorParams& prior,
                       const LikelihoodParams& likelihood, int originX,
                       int originY)
    : prior_(prior, filtered.width(), filtered.height()),
      likelihood_(filtered, likelihood, originX, originY),
      bounds_(boundsOf(likelihood_)),
      config_(makeConfig(bounds_, prior_)) {
  logPosterior_ = recomputeLogPosterior();
}

ModelState::ModelState(PixelLikelihood likelihood, const PriorParams& prior)
    : prior_(prior, likelihood.width(), likelihood.height()),
      likelihood_(std::move(likelihood)),
      bounds_(boundsOf(likelihood_)),
      config_(makeConfig(bounds_, prior_)) {
  logPosterior_ = recomputeLogPosterior();
}

double ModelState::recomputeLogPosterior() const {
  const auto circles = config_.snapshot();
  const double coveredGain = likelihood_.referenceCoveredGain(circles);
  const double logLik =
      likelihood_.logLikelihood() - likelihood_.coveredGain() + coveredGain;
  return prior_.logPrior(config_) + logLik;
}

void ModelState::resynchronise() {
  likelihood_.resynchronise();
  logPosterior_ = prior_.logPrior(config_) + likelihood_.logLikelihood();
}

double ModelState::deltaAdd(const Circle& c) const {
  return prior_.deltaAdd(config_, c) + likelihood_.deltaAdd(c);
}

double ModelState::deltaDelete(CircleId id) const {
  return prior_.deltaDelete(config_, id) +
         likelihood_.deltaRemove(config_.get(id));
}

double ModelState::deltaReplace(CircleId id, const Circle& c) const {
  return prior_.deltaReplace(config_, id, c) +
         likelihood_.deltaReplace(config_.get(id), c);
}

double ModelState::deltaMerge(CircleId a, CircleId b, const Circle& m) const {
  const std::array<Circle, 2> removed{config_.get(a), config_.get(b)};
  const std::array<Circle, 1> added{m};
  return prior_.deltaMerge(config_, a, b, m) +
         likelihood_.deltaMultiple(removed, added);
}

double ModelState::deltaSplit(CircleId id, const Circle& c1,
                              const Circle& c2) const {
  const std::array<Circle, 1> removed{config_.get(id)};
  const std::array<Circle, 2> added{c1, c2};
  return prior_.deltaSplit(config_, id, c1, c2) +
         likelihood_.deltaMultiple(removed, added);
}

CircleId ModelState::commitAdd(const Circle& c) {
  logPosterior_ += deltaAdd(c);
  likelihood_.adjustCoveredGain(likelihood_.applyAdd(c));
  return config_.insert(c);
}

void ModelState::commitDelete(CircleId id) {
  logPosterior_ += deltaDelete(id);
  likelihood_.adjustCoveredGain(likelihood_.applyRemove(config_.get(id)));
  config_.erase(id);
}

void ModelState::commitReplace(CircleId id, const Circle& c) {
  logPosterior_ += deltaReplace(id, c);
  likelihood_.adjustCoveredGain(likelihood_.applyRemove(config_.get(id)));
  likelihood_.adjustCoveredGain(likelihood_.applyAdd(c));
  config_.replace(id, c);
}

CircleId ModelState::commitMerge(CircleId a, CircleId b, const Circle& m) {
  logPosterior_ += deltaMerge(a, b, m);
  likelihood_.adjustCoveredGain(likelihood_.applyRemove(config_.get(a)));
  likelihood_.adjustCoveredGain(likelihood_.applyRemove(config_.get(b)));
  likelihood_.adjustCoveredGain(likelihood_.applyAdd(m));
  config_.erase(a);
  config_.erase(b);
  return config_.insert(m);
}

std::pair<CircleId, CircleId> ModelState::commitSplit(CircleId id,
                                                      const Circle& c1,
                                                      const Circle& c2) {
  logPosterior_ += deltaSplit(id, c1, c2);
  likelihood_.adjustCoveredGain(likelihood_.applyRemove(config_.get(id)));
  likelihood_.adjustCoveredGain(likelihood_.applyAdd(c1));
  likelihood_.adjustCoveredGain(likelihood_.applyAdd(c2));
  config_.erase(id);
  const CircleId i1 = config_.insert(c1);
  const CircleId i2 = config_.insert(c2);
  return {i1, i2};
}

void ModelState::initialiseRandom(std::size_t count, rng::Stream& stream) {
  const PriorParams& p = prior_.params();
  for (std::size_t i = 0; i < count; ++i) {
    Circle c;
    c.r = std::clamp(stream.normal(p.radiusMean, p.radiusStd), p.radiusMin,
                     p.radiusMax);
    // Keep the whole disc inside the domain; skip circles that cannot fit.
    if (bounds_.width() <= 2 * c.r || bounds_.height() <= 2 * c.r) continue;
    c.x = stream.uniform(bounds_.x0 + c.r, bounds_.x1 - c.r);
    c.y = stream.uniform(bounds_.y0 + c.r, bounds_.y1 - c.r);
    commitAdd(c);
  }
}

}  // namespace mcmcpar::model
