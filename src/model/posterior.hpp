#pragma once

#include <span>

#include "img/image.hpp"
#include "model/configuration.hpp"
#include "model/likelihood.hpp"
#include "model/prior.hpp"

namespace mcmcpar::model {

/// Axis-aligned rectangle in global image coordinates, [x0, x1) x [y0, y1).
struct Bounds {
  double x0 = 0.0;
  double y0 = 0.0;
  double x1 = 0.0;
  double y1 = 0.0;

  [[nodiscard]] double width() const noexcept { return x1 - x0; }
  [[nodiscard]] double height() const noexcept { return y1 - y0; }

  /// True when the whole disc of c lies strictly inside, shrunk by `margin`.
  [[nodiscard]] bool containsDisc(const Circle& c, double margin = 0.0) const noexcept {
    return c.x - c.r >= x0 + margin && c.x + c.r <= x1 - margin &&
           c.y - c.r >= y0 + margin && c.y + c.r <= y1 - margin;
  }
};

/// The complete Markov-chain state: circle configuration, prior, and
/// incremental likelihood over one image region.
///
/// ModelState is the single mutation point for the chain: read-only `delta*`
/// evaluations feed Metropolis-Hastings ratios, and `commit*` operations
/// apply an accepted move while keeping the cached log-posterior, the
/// coverage raster and the spatial grid synchronised.
///
/// A ModelState may cover a crop of a larger image (intelligent/blind
/// partitioning, split/merge periodic phases); circle coordinates are always
/// global, and `bounds()` reflects the crop.
class ModelState {
 public:
  /// State over `filtered` (a stain-emphasised intensity image). The domain
  /// starts at global pixel (originX, originY).
  ModelState(const img::ImageF& filtered, const PriorParams& prior,
             const LikelihoodParams& likelihood, int originX = 0,
             int originY = 0);

  /// State with an already-cropped likelihood (split/merge executor).
  ModelState(PixelLikelihood likelihood, const PriorParams& prior);

  [[nodiscard]] const Configuration& config() const noexcept { return config_; }
  [[nodiscard]] const CirclePrior& prior() const noexcept { return prior_; }
  [[nodiscard]] const PixelLikelihood& likelihood() const noexcept {
    return likelihood_;
  }
  [[nodiscard]] Bounds bounds() const noexcept { return bounds_; }

  /// Cached log-posterior (log prior + log likelihood), maintained
  /// incrementally across commits.
  [[nodiscard]] double logPosterior() const noexcept { return logPosterior_; }

  /// Full recompute of the log-posterior (O(pixels + n)); tests compare it
  /// with the cached value, long runs may call it to cancel drift.
  [[nodiscard]] double recomputeLogPosterior() const;

  /// Recompute caches in place (posterior value and covered-gain raster sum).
  void resynchronise();

  /// True when the disc lies fully inside the domain (positions outside are
  /// prior-invalid; proposal code never generates them).
  [[nodiscard]] bool discInDomain(const Circle& c) const noexcept {
    return bounds_.containsDisc(c);
  }

  // --- read-only move evaluation (Delta log-posterior) ---------------------

  [[nodiscard]] double deltaAdd(const Circle& c) const;
  [[nodiscard]] double deltaDelete(CircleId id) const;
  [[nodiscard]] double deltaReplace(CircleId id, const Circle& c) const;
  [[nodiscard]] double deltaMerge(CircleId a, CircleId b, const Circle& m) const;
  [[nodiscard]] double deltaSplit(CircleId id, const Circle& c1,
                                  const Circle& c2) const;

  // --- commits --------------------------------------------------------------

  CircleId commitAdd(const Circle& c);
  void commitDelete(CircleId id);
  void commitReplace(CircleId id, const Circle& c);
  /// Merge a and b into m; returns the id of m.
  CircleId commitMerge(CircleId a, CircleId b, const Circle& m);
  /// Split id into c1 and c2; returns the id of c2 (c1 keeps `id`'s slot? no:
  /// id is erased; both c1 and c2 get fresh ids, returned as a pair).
  std::pair<CircleId, CircleId> commitSplit(CircleId id, const Circle& c1,
                                            const Circle& c2);

  // --- executor API (see DESIGN.md §5) -------------------------------------
  // The periodic executors need finer-grained access: the in-place executor
  // commits replaces from worker threads accumulating scalar deltas locally,
  // and the split/merge executor writes back geometry whose likelihood
  // effect was already absorbed through PixelLikelihood::absorbCrop.
  // External synchronisation is the caller's responsibility.

  /// Non-const configuration (executor use only).
  [[nodiscard]] Configuration& configMutable() noexcept { return config_; }
  /// Non-const likelihood (executor use only).
  [[nodiscard]] PixelLikelihood& likelihoodMutable() noexcept {
    return likelihood_;
  }
  /// Replace geometry without touching the likelihood raster or the cached
  /// posterior (split/merge write-back; the deltas arrive via
  /// `adjustLogPosterior` + `PixelLikelihood::absorbCrop`).
  void replaceGeometryOnly(CircleId id, const Circle& c) {
    config_.replace(id, c);
  }
  /// Fold an externally computed posterior delta into the cache.
  void adjustLogPosterior(double delta) noexcept { logPosterior_ += delta; }

  /// Seed the state with an initial random configuration of `count` circles
  /// drawn from the prior (uniform positions, prior radii clamped to the
  /// domain). This is the paper's "random configuration ... used as the
  /// initial state of the Markov Chain".
  void initialiseRandom(std::size_t count, rng::Stream& stream);

 private:
  CirclePrior prior_;
  PixelLikelihood likelihood_;
  Bounds bounds_;
  Configuration config_;
  double logPosterior_ = 0.0;
};

}  // namespace mcmcpar::model
