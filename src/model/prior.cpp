#include "model/prior.hpp"

#include <cmath>
#include <limits>

#include "rng/distributions.hpp"

namespace mcmcpar::model {

namespace {
constexpr double kNegInf = -std::numeric_limits<double>::infinity();
}

CirclePrior::CirclePrior(const PriorParams& params, double domainWidth,
                         double domainHeight)
    : params_(params),
      logPositionDensity_(-std::log(domainWidth * domainHeight)) {}

double CirclePrior::logRadius(double r) const noexcept {
  if (!radiusInSupport(r)) return kNegInf;
  return rng::logNormalPdf(r, params_.radiusMean, params_.radiusStd);
}

double CirclePrior::logCount(std::size_t n) const noexcept {
  return rng::logPoissonPmf(n, params_.expectedCount);
}

double CirclePrior::pairPenalty(const Circle& a, const Circle& b) const noexcept {
  if (!discsIntersect(a, b)) return 0.0;
  const double shared = overlapArea(a, b);
  const double smaller = std::min(discArea(a), discArea(b));
  if (smaller <= 0.0) return 0.0;
  return -params_.overlapPenalty * (shared / smaller);
}

double CirclePrior::penaltyAgainstAll(const Configuration& config,
                                      const Circle& c, CircleId excludeA,
                                      CircleId excludeB) const {
  double total = 0.0;
  // A partner can intersect c only if its centre is within c.r + radiusMax.
  const double range = c.r + params_.radiusMax;
  config.forEachNeighbour(c.x, c.y, range, [&](CircleId id, const Circle& other) {
    if (id == excludeA || id == excludeB) return;
    total += pairPenalty(c, other);
  });
  return total;
}

double CirclePrior::logPrior(const Configuration& config) const {
  double total = logCount(config.size());
  config.forEach([&](CircleId, const Circle& c) {
    total += logRadius(c.r) + logPosition();
  });
  // Pairwise overlap: each unordered pair once. Iterate circles and count a
  // pair at the circle with the smaller id (ties impossible).
  config.forEach([&](CircleId id, const Circle& c) {
    const double range = c.r + params_.radiusMax;
    config.forEachNeighbour(c.x, c.y, range, [&](CircleId other, const Circle& o) {
      if (other < id) total += pairPenalty(c, o);
    });
  });
  return total;
}

double CirclePrior::deltaAdd(const Configuration& config, const Circle& c) const {
  const std::size_t n = config.size();
  return (logCount(n + 1) - logCount(n)) + logRadius(c.r) + logPosition() +
         penaltyAgainstAll(config, c);
}

double CirclePrior::deltaDelete(const Configuration& config, CircleId id) const {
  const std::size_t n = config.size();
  const Circle& c = config.get(id);
  return (logCount(n - 1) - logCount(n)) - logRadius(c.r) - logPosition() -
         penaltyAgainstAll(config, c, id);
}

double CirclePrior::deltaReplace(const Configuration& config, CircleId id,
                                 const Circle& replacement) const {
  const Circle& old = config.get(id);
  return (logRadius(replacement.r) - logRadius(old.r)) +
         (penaltyAgainstAll(config, replacement, id) -
          penaltyAgainstAll(config, old, id));
}

double CirclePrior::deltaMerge(const Configuration& config, CircleId a,
                               CircleId b, const Circle& m) const {
  const std::size_t n = config.size();
  const Circle& ca = config.get(a);
  const Circle& cb = config.get(b);
  double delta = logCount(n - 1) - logCount(n);
  delta += logRadius(m.r) - logRadius(ca.r) - logRadius(cb.r);
  delta -= logPosition();  // two positions out, one in
  // Remove penalties of a and b against everyone else; the (a, b) pair
  // appears in both sweeps, so exclude it from the second.
  delta -= penaltyAgainstAll(config, ca, a);
  delta -= penaltyAgainstAll(config, cb, a, b);
  delta += penaltyAgainstAll(config, m, a, b);
  return delta;
}

double CirclePrior::deltaSplit(const Configuration& config, CircleId id,
                               const Circle& c1, const Circle& c2) const {
  const std::size_t n = config.size();
  const Circle& c = config.get(id);
  double delta = logCount(n + 1) - logCount(n);
  delta += logRadius(c1.r) + logRadius(c2.r) - logRadius(c.r);
  delta += logPosition();
  delta -= penaltyAgainstAll(config, c, id);
  delta += penaltyAgainstAll(config, c1, id);
  delta += penaltyAgainstAll(config, c2, id);
  delta += pairPenalty(c1, c2);  // the new pair interacts with itself
  return delta;
}

}  // namespace mcmcpar::model
