#pragma once

#include "model/circle.hpp"
#include "model/configuration.hpp"

namespace mcmcpar::model {

/// Parameters of the Bayesian prior over circle configurations.
///
/// The paper's case study (§III) encodes three pieces of prior knowledge:
/// the expected number of nuclei (Poisson on the count), their expected size
/// (normal on the radius, hard-bounded), and "the degree to which overlap is
/// tolerated" (a pairwise penalty on intersecting discs).
struct PriorParams {
  double expectedCount = 100.0;  ///< Poisson mean for the number of circles
  double radiusMean = 10.0;
  double radiusStd = 1.5;
  double radiusMin = 2.0;   ///< hard support bound (prior = 0 outside)
  double radiusMax = 30.0;  ///< hard support bound
  /// Log-penalty per unit of normalised overlap: a pair of discs sharing a
  /// fraction f of the smaller disc's area contributes -overlapPenalty * f.
  double overlapPenalty = 10.0;
};

/// Log-prior of a configuration and cheap deltas for every move type.
///
/// log p(config) = logPoisson(n; lambda)
///               + sum_i [ logNormal(r_i) + logUniform(position) ]
///               - overlapPenalty * sum_{i<j} overlap(i,j)/min(area_i, area_j)
///
/// Deltas are exact: they evaluate only the terms a move changes, using the
/// configuration's spatial grid for the pairwise sums. Property tests check
/// delta == full(after) - full(before).
class CirclePrior {
 public:
  CirclePrior() = default;

  /// Prior over a domainWidth x domainHeight image region.
  CirclePrior(const PriorParams& params, double domainWidth,
              double domainHeight);

  [[nodiscard]] const PriorParams& params() const noexcept { return params_; }

  /// Replace the expected-count parameter (used by the per-partition prior
  /// re-estimation of eq. 5). Other parameters are unchanged.
  void setExpectedCount(double lambda) noexcept {
    params_.expectedCount = lambda;
  }

  /// Largest centre distance at which two circles can interact through the
  /// overlap term (= 2 * radiusMax). Neighbour queries use this.
  [[nodiscard]] double interactionRange() const noexcept {
    return 2.0 * params_.radiusMax;
  }

  /// True when r lies in the hard radius support.
  [[nodiscard]] bool radiusInSupport(double r) const noexcept {
    return r >= params_.radiusMin && r <= params_.radiusMax;
  }

  /// log of the radius density (normal, hard-bounded; -inf outside).
  [[nodiscard]] double logRadius(double r) const noexcept;

  /// log of the (uniform) position density for one circle.
  [[nodiscard]] double logPosition() const noexcept { return logPositionDensity_; }

  /// log of the Poisson count pmf.
  [[nodiscard]] double logCount(std::size_t n) const noexcept;

  /// Overlap penalty contribution of one pair (<= 0).
  [[nodiscard]] double pairPenalty(const Circle& a, const Circle& b) const noexcept;

  /// Sum of pair penalties between `c` and all alive circles except
  /// `excludeA`/`excludeB` (pass kInvalidCircle for no exclusion).
  [[nodiscard]] double penaltyAgainstAll(
      const Configuration& config, const Circle& c,
      CircleId excludeA = kInvalidCircle,
      CircleId excludeB = kInvalidCircle) const;

  /// Full recompute, O(n * neighbours).
  [[nodiscard]] double logPrior(const Configuration& config) const;

  // --- exact deltas -------------------------------------------------------

  [[nodiscard]] double deltaAdd(const Configuration& config, const Circle& c) const;
  [[nodiscard]] double deltaDelete(const Configuration& config, CircleId id) const;
  [[nodiscard]] double deltaReplace(const Configuration& config, CircleId id,
                                    const Circle& replacement) const;
  /// a and b merge into m (count n -> n-1).
  [[nodiscard]] double deltaMerge(const Configuration& config, CircleId a,
                                  CircleId b, const Circle& m) const;
  /// id splits into c1 and c2 (count n -> n+1).
  [[nodiscard]] double deltaSplit(const Configuration& config, CircleId id,
                                  const Circle& c1, const Circle& c2) const;

 private:
  PriorParams params_;
  double logPositionDensity_ = 0.0;
};

}  // namespace mcmcpar::model
