#include "model/spatial_grid.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace mcmcpar::model {

SpatialGrid::SpatialGrid(double width, double height, double cellSize)
    : cellSize_(std::max(cellSize, 1.0)),
      cellsX_(std::max(1, static_cast<int>(std::ceil(width / cellSize_)))),
      cellsY_(std::max(1, static_cast<int>(std::ceil(height / cellSize_)))) {
  cells_.resize(static_cast<std::size_t>(cellsX_) * cellsY_);
}

int SpatialGrid::cellIndexX(double x) const noexcept {
  const int c = static_cast<int>(std::floor(x / cellSize_));
  return std::clamp(c, 0, cellsX_ - 1);
}

int SpatialGrid::cellIndexY(double y) const noexcept {
  const int c = static_cast<int>(std::floor(y / cellSize_));
  return std::clamp(c, 0, cellsY_ - 1);
}

void SpatialGrid::insert(CircleId id, const Circle& c) {
  cells_[bucketFor(c)].push_back(id);
}

void SpatialGrid::remove(CircleId id, const Circle& c) {
  auto& bucket = cells_[bucketFor(c)];
  const auto it = std::find(bucket.begin(), bucket.end(), id);
  assert(it != bucket.end() && "SpatialGrid::remove of absent id");
  // Swap-remove: bucket order is irrelevant to queries.
  *it = bucket.back();
  bucket.pop_back();
}

void SpatialGrid::relocate(CircleId id, const Circle& from, const Circle& to) {
  const std::size_t a = bucketFor(from);
  const std::size_t b = bucketFor(to);
  if (a == b) return;
  auto& bucket = cells_[a];
  const auto it = std::find(bucket.begin(), bucket.end(), id);
  assert(it != bucket.end() && "SpatialGrid::relocate of absent id");
  *it = bucket.back();
  bucket.pop_back();
  cells_[b].push_back(id);
}

std::size_t SpatialGrid::size() const noexcept {
  std::size_t n = 0;
  for (const auto& bucket : cells_) n += bucket.size();
  return n;
}

}  // namespace mcmcpar::model
