#pragma once

#include <vector>

#include "model/circle.hpp"

namespace mcmcpar::model {

/// Uniform bucket grid over the image domain, indexing circles by centre.
///
/// Supports the neighbour queries the prior's overlap term and the
/// merge/split moves need: "all circles whose centre lies within distance d
/// of a point". Cell size should be >= the largest query distance so a query
/// touches at most a 3x3 block of cells.
///
/// Concurrency contract (relied on by the in-place periodic executor): a
/// mutation touches only the bucket(s) containing the old and new centre.
/// Partition legality guarantees concurrent phases mutate disjoint buckets;
/// see DESIGN.md §5.
class SpatialGrid {
 public:
  SpatialGrid() = default;

  /// Grid over [0, width) x [0, height) with the given cell size (>= 1).
  SpatialGrid(double width, double height, double cellSize);

  /// Insert a circle centre under the given id.
  void insert(CircleId id, const Circle& c);

  /// Remove an id previously inserted with centre c. Precondition: present.
  void remove(CircleId id, const Circle& c);

  /// Move id from centre `from` to centre `to`.
  void relocate(CircleId id, const Circle& from, const Circle& to);

  /// Invoke fn(id) for every id whose stored centre may lie within `dist`
  /// of (x, y) — candidates, not exact matches; callers re-check distance.
  template <typename Fn>
  void forEachCandidate(double x, double y, double dist, Fn&& fn) const {
    const int cx0 = cellIndexX(x - dist);
    const int cx1 = cellIndexX(x + dist);
    const int cy0 = cellIndexY(y - dist);
    const int cy1 = cellIndexY(y + dist);
    for (int cy = cy0; cy <= cy1; ++cy) {
      for (int cx = cx0; cx <= cx1; ++cx) {
        for (CircleId id : cells_[bucketIndex(cx, cy)]) fn(id);
      }
    }
  }

  [[nodiscard]] double cellSize() const noexcept { return cellSize_; }
  [[nodiscard]] int cellsX() const noexcept { return cellsX_; }
  [[nodiscard]] int cellsY() const noexcept { return cellsY_; }

  /// Total number of stored ids (O(cells); for tests).
  [[nodiscard]] std::size_t size() const noexcept;

 private:
  [[nodiscard]] int cellIndexX(double x) const noexcept;
  [[nodiscard]] int cellIndexY(double y) const noexcept;
  [[nodiscard]] std::size_t bucketIndex(int cx, int cy) const noexcept {
    return static_cast<std::size_t>(cy) * cellsX_ + cx;
  }
  [[nodiscard]] std::size_t bucketFor(const Circle& c) const noexcept {
    return bucketIndex(cellIndexX(c.x), cellIndexY(c.y));
  }

  double cellSize_ = 1.0;
  int cellsX_ = 0;
  int cellsY_ = 0;
  std::vector<std::vector<CircleId>> cells_;
};

}  // namespace mcmcpar::model
