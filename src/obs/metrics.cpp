#include "obs/metrics.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "model/likelihood_kernels.hpp"

#ifndef MCMCPAR_VERSION_STRING
#define MCMCPAR_VERSION_STRING "unknown"
#endif

namespace mcmcpar::obs {

namespace {

/// Stripe slot for the calling thread: a cheap per-thread index shared by
/// every striped metric, assigned round-robin on first use.
std::size_t threadSlot() {
  static std::atomic<std::size_t> next{0};
  static thread_local const std::size_t slot =
      next.fetch_add(1, std::memory_order_relaxed);
  return slot;
}

bool lowerWordChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_';
}

bool validLabelName(const std::string& name) {
  if (name.empty() || !(name[0] >= 'a' && name[0] <= 'z')) return false;
  return std::all_of(name.begin(), name.end(), lowerWordChar);
}

bool endsWith(const std::string& text, const std::string& suffix) {
  return text.size() >= suffix.size() &&
         text.compare(text.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// Prometheus sample-value formatting: exact integers stay integral so the
/// exposition (and its golden tests) are stable; everything else uses %g.
std::string fmtValue(double value) {
  if (std::isfinite(value) && value == std::rint(value) &&
      std::abs(value) < 1e15) {
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%lld",
                  static_cast<long long>(value));
    return buffer;
  }
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.9g", value);
  return buffer;
}

std::string escapeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '"') {
      out += "\\\"";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

std::string renderLabels(const Labels& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i != 0) out += ",";
    out += labels[i].first;
    out += "=\"";
    out += escapeLabelValue(labels[i].second);
    out += "\"";
  }
  out += "}";
  return out;
}

Labels sortedLabels(Labels labels) {
  std::sort(labels.begin(), labels.end());
  for (const auto& [key, value] : labels) {
    (void)value;
    if (!validLabelName(key)) {
      throw std::invalid_argument("obs: invalid label name '" + key + "'");
    }
  }
  return labels;
}

Labels withLe(const Labels& labels, const std::string& le) {
  Labels out = labels;
  out.emplace_back("le", le);
  std::sort(out.begin(), out.end());
  return out;
}

std::string fmtBound(double bound) { return fmtValue(bound); }

}  // namespace

bool validMetricName(const std::string& name) {
  static const std::string prefix = "mcmcpar_";
  if (name.size() <= prefix.size() || name.compare(0, prefix.size(), prefix))
    return false;
  if (!(name[prefix.size()] >= 'a' && name[prefix.size()] <= 'z'))
    return false;
  if (!std::all_of(name.begin(), name.end(), lowerWordChar)) return false;
  if (name.back() == '_') return false;
  return name.find("__") == std::string::npos;
}

void atomicAddDouble(std::atomic<double>& target, double delta) noexcept {
  double current = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(current, current + delta,
                                       std::memory_order_relaxed)) {
  }
}

void Counter::add(std::uint64_t delta) noexcept {
  stripes_[threadSlot() % kStripes].value.fetch_add(delta,
                                                    std::memory_order_relaxed);
}

std::uint64_t Counter::value() const noexcept {
  std::uint64_t total = 0;
  for (const Stripe& stripe : stripes_) {
    total += stripe.value.load(std::memory_order_relaxed);
  }
  return total;
}

void Gauge::set(double value) noexcept {
  value_.store(value, std::memory_order_relaxed);
}

void Gauge::add(double delta) noexcept { atomicAddDouble(value_, delta); }

double Gauge::value() const noexcept {
  return value_.load(std::memory_order_relaxed);
}

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  if (bounds_.empty()) {
    throw std::invalid_argument("obs: histogram needs at least one bound");
  }
  if (!std::is_sorted(bounds_.begin(), bounds_.end()) ||
      std::adjacent_find(bounds_.begin(), bounds_.end()) != bounds_.end()) {
    throw std::invalid_argument(
        "obs: histogram bounds must be strictly ascending");
  }
  for (Stripe& stripe : stripes_) {
    stripe.counts =
        std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
    for (std::size_t i = 0; i <= bounds_.size(); ++i) {
      stripe.counts[i].store(0, std::memory_order_relaxed);
    }
  }
}

void Histogram::observe(double value) noexcept {
  const std::size_t bucket = static_cast<std::size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin());
  Stripe& stripe = stripes_[threadSlot() % kStripes];
  stripe.counts[bucket].fetch_add(1, std::memory_order_relaxed);
  atomicAddDouble(stripe.sum, value);
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot out;
  out.bounds = bounds_;
  out.counts.assign(bounds_.size() + 1, 0);
  for (const Stripe& stripe : stripes_) {
    for (std::size_t i = 0; i <= bounds_.size(); ++i) {
      out.counts[i] += stripe.counts[i].load(std::memory_order_relaxed);
    }
    out.sum += stripe.sum.load(std::memory_order_relaxed);
  }
  for (const std::uint64_t c : out.counts) out.count += c;
  return out;
}

std::vector<double> latencyBuckets() {
  return {0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
          0.25,   0.5,   1.0,    2.5,   5.0,  10.0,  30.0, 120.0};
}

void Collection::counter(std::string name, std::string help, Labels labels,
                         double value) {
  entries_.push_back(Entry{std::move(name), std::move(help), true,
                           sortedLabels(std::move(labels)), value});
}

void Collection::gauge(std::string name, std::string help, Labels labels,
                       double value) {
  entries_.push_back(Entry{std::move(name), std::move(help), false,
                           sortedLabels(std::move(labels)), value});
}

struct Registry::Series {
  Labels labels;
  std::unique_ptr<Counter> counter;
  std::unique_ptr<Gauge> gauge;
  std::unique_ptr<Histogram> histogram;
};

struct Registry::Family {
  std::string name;
  std::string help;
  Kind kind = Kind::kGauge;
  std::vector<double> bounds;  // histogram families only
  std::vector<std::unique_ptr<Series>> series;
};

Registry::Registry() = default;
Registry::~Registry() = default;

Registry& Registry::global() {
  static Registry* instance = [] {
    auto* registry = new Registry();
    const auto started = std::chrono::steady_clock::now();
    registry->gauge("mcmcpar_build_info",
                    "Build/runtime identity; value is always 1.",
                    {{"version", MCMCPAR_VERSION_STRING},
                     {"avx2", model::kernels::avx2Available() ? "1" : "0"},
                     {"simd", model::kernels::backendName()}})
        .set(1.0);
    registry->addCollector([started](Collection& out) {
      const double uptime =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        started)
              .count();
      out.gauge("mcmcpar_process_uptime_seconds",
                "Seconds since the metrics registry was initialised.", {},
                uptime);
    });
    return registry;
  }();
  return *instance;
}

Registry::Family& Registry::family(const std::string& name,
                                   const std::string& help, Kind kind) {
  if (!validMetricName(name)) {
    throw std::invalid_argument("obs: invalid metric name '" + name + "'");
  }
  if (kind == Kind::kCounter && !endsWith(name, "_total")) {
    throw std::invalid_argument("obs: counter '" + name +
                                "' must end in _total");
  }
  if (kind != Kind::kCounter && endsWith(name, "_total")) {
    throw std::invalid_argument("obs: non-counter '" + name +
                                "' must not end in _total");
  }
  if (kind == Kind::kHistogram && !endsWith(name, "_seconds") &&
      !endsWith(name, "_bytes")) {
    throw std::invalid_argument("obs: histogram '" + name +
                                "' must end in a unit suffix (_seconds "
                                "or _bytes)");
  }
  auto it = families_.find(name);
  if (it == families_.end()) {
    auto fam = std::make_unique<Family>();
    fam->name = name;
    fam->help = help;
    fam->kind = kind;
    it = families_.emplace(name, std::move(fam)).first;
  } else if (it->second->kind != kind) {
    throw std::invalid_argument("obs: metric '" + name +
                                "' re-registered with a different type");
  }
  return *it->second;
}

Registry::Series& Registry::series(Family& fam, Labels labels) {
  for (const auto& existing : fam.series) {
    if (existing->labels == labels) return *existing;
  }
  fam.series.push_back(std::make_unique<Series>());
  fam.series.back()->labels = std::move(labels);
  return *fam.series.back();
}

Counter& Registry::counter(const std::string& name, const std::string& help,
                           Labels labels) {
  const std::lock_guard<std::mutex> lock(mutex_);
  Family& fam = family(name, help, Kind::kCounter);
  Series& s = series(fam, sortedLabels(std::move(labels)));
  if (!s.counter) s.counter = std::make_unique<Counter>();
  return *s.counter;
}

Gauge& Registry::gauge(const std::string& name, const std::string& help,
                       Labels labels) {
  const std::lock_guard<std::mutex> lock(mutex_);
  Family& fam = family(name, help, Kind::kGauge);
  Series& s = series(fam, sortedLabels(std::move(labels)));
  if (!s.gauge) s.gauge = std::make_unique<Gauge>();
  return *s.gauge;
}

Histogram& Registry::histogram(const std::string& name,
                               const std::string& help,
                               std::vector<double> bounds, Labels labels) {
  const std::lock_guard<std::mutex> lock(mutex_);
  Family& fam = family(name, help, Kind::kHistogram);
  if (fam.series.empty()) {
    fam.bounds = bounds;
  } else if (fam.bounds != bounds) {
    throw std::invalid_argument("obs: histogram '" + name +
                                "' re-registered with different buckets");
  }
  Series& s = series(fam, sortedLabels(std::move(labels)));
  if (!s.histogram) s.histogram = std::make_unique<Histogram>(bounds);
  return *s.histogram;
}

std::uint64_t Registry::addCollector(std::function<void(Collection&)> fn) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const std::uint64_t token = nextCollector_++;
  collectors_.emplace(token, std::move(fn));
  return token;
}

void Registry::removeCollector(std::uint64_t token) {
  const std::lock_guard<std::mutex> lock(mutex_);
  collectors_.erase(token);
}

std::string Registry::renderPrometheus() const {
  struct Line {
    Labels labels;
    std::string suffix;  // "", "_bucket", "_sum", "_count"
    double value;
  };
  struct Render {
    std::string help;
    std::string type;
    std::vector<Line> lines;
  };
  std::map<std::string, Render> out;

  Collection collected;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [name, fam] : families_) {
      Render& render = out[name];
      render.help = fam->help;
      render.type = fam->kind == Kind::kCounter     ? "counter"
                    : fam->kind == Kind::kHistogram ? "histogram"
                                                    : "gauge";
      for (const auto& s : fam->series) {
        if (fam->kind == Kind::kCounter) {
          render.lines.push_back(
              {s->labels, "", static_cast<double>(s->counter->value())});
        } else if (fam->kind == Kind::kGauge) {
          render.lines.push_back({s->labels, "", s->gauge->value()});
        } else {
          const Histogram::Snapshot snap = s->histogram->snapshot();
          std::uint64_t cumulative = 0;
          for (std::size_t i = 0; i < snap.bounds.size(); ++i) {
            cumulative += snap.counts[i];
            render.lines.push_back({withLe(s->labels, fmtBound(snap.bounds[i])),
                                    "_bucket",
                                    static_cast<double>(cumulative)});
          }
          render.lines.push_back({withLe(s->labels, "+Inf"), "_bucket",
                                  static_cast<double>(snap.count)});
          render.lines.push_back({s->labels, "_sum", snap.sum});
          render.lines.push_back(
              {s->labels, "_count", static_cast<double>(snap.count)});
        }
      }
    }
    for (const auto& [token, collector] : collectors_) {
      (void)token;
      collector(collected);
    }
  }
  for (const auto& entry : collected.entries_) {
    Render& render = out[entry.name];
    if (render.help.empty()) render.help = entry.help;
    if (render.type.empty()) render.type = entry.monotone ? "counter" : "gauge";
    render.lines.push_back({entry.labels, "", entry.value});
  }

  std::ostringstream text;
  for (const auto& [name, render] : out) {
    text << "# HELP " << name << " " << render.help << "\n";
    text << "# TYPE " << name << " " << render.type << "\n";
    for (const Line& line : render.lines) {
      text << name << line.suffix << renderLabels(line.labels) << " "
           << fmtValue(line.value) << "\n";
    }
  }
  return text.str();
}

std::vector<Sample> Registry::samples() const {
  std::vector<Sample> out;
  Collection collected;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [name, fam] : families_) {
      for (const auto& s : fam->series) {
        if (fam->kind == Kind::kCounter) {
          out.push_back(
              {name, s->labels, static_cast<double>(s->counter->value())});
        } else if (fam->kind == Kind::kGauge) {
          out.push_back({name, s->labels, s->gauge->value()});
        } else {
          const Histogram::Snapshot snap = s->histogram->snapshot();
          std::uint64_t cumulative = 0;
          for (std::size_t i = 0; i < snap.bounds.size(); ++i) {
            cumulative += snap.counts[i];
            out.push_back({name + "_bucket",
                           withLe(s->labels, fmtBound(snap.bounds[i])),
                           static_cast<double>(cumulative)});
          }
          out.push_back({name + "_bucket", withLe(s->labels, "+Inf"),
                         static_cast<double>(snap.count)});
          out.push_back({name + "_sum", s->labels, snap.sum});
          out.push_back(
              {name + "_count", s->labels, static_cast<double>(snap.count)});
        }
      }
    }
    for (const auto& [token, collector] : collectors_) {
      (void)token;
      collector(collected);
    }
  }
  for (const auto& entry : collected.entries_) {
    out.push_back({entry.name, entry.labels, entry.value});
  }
  return out;
}

std::optional<double> Registry::value(const std::string& name,
                                      const Labels& labels) const {
  const Labels wanted = sortedLabels(labels);
  for (const Sample& sample : samples()) {
    if (sample.name == name && sample.labels == wanted) return sample.value;
  }
  return std::nullopt;
}

}  // namespace mcmcpar::obs
