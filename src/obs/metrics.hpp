#pragma once

/// Process-wide metrics registry: named counters, gauges and fixed-bucket
/// histograms with Prometheus text exposition.
///
/// Hot-path writes (Counter::add, Histogram::observe) are striped relaxed
/// atomics — no locks, no allocation — so instrumentation can sit inside
/// sampler and network loops. Reads (snapshot / renderPrometheus) sum the
/// stripes; a snapshot taken while writers run is approximately consistent
/// (each stripe is read atomically, the set of stripes is not frozen).
///
/// Registration (Registry::counter/gauge/histogram) is get-or-create keyed
/// by (name, labels): call sites may re-register freely — e.g. a test that
/// constructs several Servers — and always receive the same pointer-stable
/// metric object, so references can be cached across calls.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace mcmcpar::obs {

/// Label key/value pairs attached to a metric series. Sorted by key at
/// registration so equal label sets compare equal regardless of call order.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Adds `delta` to an atomic double (fetch_add on atomic<double> is C++20
/// but not universally lowered well; the CAS loop is portable and the
/// contention on these sums is negligible).
void atomicAddDouble(std::atomic<double>& target, double delta) noexcept;

/// Monotone counter with cache-line-striped atomics so concurrent writers
/// on different cores do not bounce one line.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void add(std::uint64_t delta = 1) noexcept;
  std::uint64_t value() const noexcept;

 private:
  static constexpr std::size_t kStripes = 8;
  struct alignas(64) Stripe {
    std::atomic<std::uint64_t> value{0};
  };
  Stripe stripes_[kStripes];
};

/// Last-write-wins double gauge (plus add() for up/down tracking such as
/// active connection counts).
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void set(double value) noexcept;
  void add(double delta) noexcept;
  double value() const noexcept;

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram. Bucket bounds are inclusive upper edges
/// (Prometheus `le`); an implicit +Inf bucket catches the overflow.
class Histogram {
 public:
  struct Snapshot {
    std::vector<double> bounds;          ///< upper edges, ascending
    std::vector<std::uint64_t> counts;   ///< per-bucket (bounds.size()+1)
    std::uint64_t count = 0;             ///< total observations
    double sum = 0.0;                    ///< sum of observed values
  };

  explicit Histogram(std::vector<double> bounds);
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void observe(double value) noexcept;
  Snapshot snapshot() const;

 private:
  static constexpr std::size_t kStripes = 4;
  struct alignas(64) Stripe {
    std::unique_ptr<std::atomic<std::uint64_t>[]> counts;
    std::atomic<double> sum{0.0};
  };
  std::vector<double> bounds_;
  Stripe stripes_[kStripes];
};

/// Default bucket edges for operation latencies: 500µs .. 2 minutes.
std::vector<double> latencyBuckets();

/// One rendered sample, used by snapshots and scrape-time collectors.
struct Sample {
  std::string name;
  Labels labels;
  double value = 0.0;
};

/// Scrape-time sink handed to collectors: values that live elsewhere
/// (cache stats, queue depths, uptime) are appended here on every scrape
/// instead of being mirrored into registry objects.
class Collection {
 public:
  void counter(std::string name, std::string help, Labels labels,
               double value);
  void gauge(std::string name, std::string help, Labels labels, double value);

 private:
  friend class Registry;
  struct Entry {
    std::string name;
    std::string help;
    bool monotone = false;
    Labels labels;
    double value = 0.0;
  };
  std::vector<Entry> entries_;
};

/// Metrics registry. `Registry::global()` is the process-wide instance the
/// library instruments; independent instances exist for unit tests.
class Registry {
 public:
  Registry();   // out of line: Family is incomplete here
  ~Registry();
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Process-wide registry (also carries the mcmcpar_build_info gauge and
  /// mcmcpar_process_uptime_seconds collector).
  static Registry& global();

  /// Get-or-create. `name` must match the documented scheme
  /// (see PROTOCOL.md): ^mcmcpar_[a-z][a-z0-9_]*$, counters end `_total`,
  /// histograms carry a unit suffix such as `_seconds`. Violations throw
  /// std::invalid_argument. `help` is taken from the first registration.
  Counter& counter(const std::string& name, const std::string& help,
                   Labels labels = {});
  Gauge& gauge(const std::string& name, const std::string& help,
               Labels labels = {});
  Histogram& histogram(const std::string& name, const std::string& help,
                       std::vector<double> bounds, Labels labels = {});

  /// Registers a scrape-time collector; returns a token for removal.
  std::uint64_t addCollector(std::function<void(Collection&)> fn);
  void removeCollector(std::uint64_t token);

  /// Full Prometheus text exposition (HELP/TYPE + all series, collectors
  /// included). Families are emitted in name order; output is stable for
  /// a fixed registry state.
  std::string renderPrometheus() const;

  /// Flat sample list (registry metrics + collectors). Histograms expand
  /// to `<name>_bucket{le=...}` / `<name>_sum` / `<name>_count` samples.
  std::vector<Sample> samples() const;

  /// Looks up one sample by name (+ optional labels) — the single source
  /// the serve shutdown summary reads so it can never disagree with a
  /// METRICS scrape.
  std::optional<double> value(const std::string& name,
                              const Labels& labels = {}) const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Series;
  struct Family;

  Family& family(const std::string& name, const std::string& help, Kind kind);
  Series& series(Family& fam, Labels labels);

  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Family>> families_;
  std::map<std::uint64_t, std::function<void(Collection&)>> collectors_;
  std::uint64_t nextCollector_ = 1;
};

/// Validates a metric name against the documented naming scheme. Exposed
/// for tools/check_metrics_names.py parity tests.
bool validMetricName(const std::string& name);

}  // namespace mcmcpar::obs
