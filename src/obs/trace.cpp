#include "obs/trace.hpp"

#include <cstdio>
#include <sstream>

namespace mcmcpar::obs {

namespace {

std::string jsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 8);
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string fmtMicros(double micros) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.3f", micros);
  return buffer;
}

}  // namespace

Tracer::Tracer() : epoch_(Clock::now()) {}

Tracer& Tracer::global() {
  static Tracer* instance = new Tracer();
  return *instance;
}

void Tracer::setEnabled(bool on) noexcept {
  enabled_.store(on, std::memory_order_relaxed);
}

Tracer::ThreadBuffer& Tracer::buffer() {
  thread_local std::shared_ptr<ThreadBuffer> tls;
  if (!tls) {
    tls = std::make_shared<ThreadBuffer>();
    const std::lock_guard<std::mutex> lock(registryMutex_);
    tls->tid = nextTid_++;
    buffers_.push_back(tls);
  }
  return *tls;
}

void Tracer::record(std::string category, std::string name,
                    Clock::time_point start, Clock::time_point end,
                    TraceArgs args, std::int64_t track) {
  if (!enabled()) return;
  Event event;
  event.category = std::move(category);
  event.name = std::move(name);
  event.tsMicros =
      std::chrono::duration<double, std::micro>(start - epoch_).count();
  event.durMicros =
      std::chrono::duration<double, std::micro>(end - start).count();
  if (event.durMicros < 0.0) event.durMicros = 0.0;
  event.args = std::move(args);

  ThreadBuffer& buf = buffer();
  const std::lock_guard<std::mutex> lock(buf.mutex);
  event.tid = track >= 0 ? static_cast<std::uint64_t>(track) : buf.tid;
  if (buf.events.size() >= kMaxEventsPerBuffer) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  buf.events.push_back(std::move(event));
}

std::string Tracer::drainJson() {
  std::vector<Event> events;
  {
    const std::lock_guard<std::mutex> lock(registryMutex_);
    for (const auto& buf : buffers_) {
      const std::lock_guard<std::mutex> bufLock(buf->mutex);
      events.insert(events.end(), std::make_move_iterator(buf->events.begin()),
                    std::make_move_iterator(buf->events.end()));
      buf->events.clear();
    }
  }
  dropped_.store(0, std::memory_order_relaxed);

  std::ostringstream out;
  out << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  for (std::size_t i = 0; i < events.size(); ++i) {
    const Event& e = events[i];
    if (i != 0) out << ",";
    out << "\n{\"ph\": \"X\", \"pid\": 1, \"tid\": " << e.tid        //
        << ", \"ts\": " << fmtMicros(e.tsMicros)                     //
        << ", \"dur\": " << fmtMicros(e.durMicros)                   //
        << ", \"cat\": \"" << jsonEscape(e.category) << "\""         //
        << ", \"name\": \"" << jsonEscape(e.name) << "\"";
    if (!e.args.empty()) {
      out << ", \"args\": {";
      for (std::size_t j = 0; j < e.args.size(); ++j) {
        if (j != 0) out << ", ";
        out << "\"" << jsonEscape(e.args[j].first) << "\": \""
            << jsonEscape(e.args[j].second) << "\"";
      }
      out << "}";
    }
    out << "}";
  }
  out << "\n]}\n";
  return out.str();
}

bool Tracer::writeJson(const std::string& path, std::string* error) {
  const std::string json = drainJson();
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (!file) {
    if (error) *error = "cannot open '" + path + "' for writing";
    return false;
  }
  const std::size_t written = std::fwrite(json.data(), 1, json.size(), file);
  const bool closed = std::fclose(file) == 0;
  if (written != json.size() || !closed) {
    if (error) *error = "short write to '" + path + "'";
    return false;
  }
  return true;
}

Span::Span(std::string category, std::string name)
    : armed_(Tracer::global().enabled()),
      start_(armed_ ? Tracer::Clock::now() : Tracer::Clock::time_point{}),
      category_(std::move(category)),
      name_(std::move(name)) {}

Span::~Span() {
  if (!armed_) return;
  Tracer::global().record(std::move(category_), std::move(name_), start_,
                          Tracer::Clock::now(), std::move(args_));
}

void Span::arg(std::string key, std::string value) {
  if (!armed_) return;
  args_.emplace_back(std::move(key), std::move(value));
}

}  // namespace mcmcpar::obs
