#pragma once

/// Span tracer emitting Chrome trace-event JSON (chrome://tracing /
/// Perfetto "traceEvents" format).
///
/// Disabled by default: the only cost on an untraced process is one
/// relaxed atomic load per span. When enabled (`--trace-out` in the CLIs),
/// each thread appends completed spans to its own buffer under a
/// per-buffer mutex — threads never contend with each other, only with a
/// drain in progress. `drainJson()` moves all buffered events out and
/// renders the JSON document.
///
/// Spans on one thread nest naturally (same `tid`, contained intervals).
/// Work whose lifetime is observed from a polling loop rather than a call
/// stack — shard tile flights — is recorded retrospectively with
/// `record(...)` on a synthetic track id so every tile gets its own row
/// in the timeline.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace mcmcpar::obs {

/// One key/value argument attached to a span (rendered as JSON strings).
using TraceArgs = std::vector<std::pair<std::string, std::string>>;

class Tracer {
 public:
  using Clock = std::chrono::steady_clock;

  Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Process-wide tracer used by all library instrumentation.
  static Tracer& global();

  void setEnabled(bool on) noexcept;
  bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Records a completed span. `track < 0` uses the calling thread's row;
  /// `track >= 0` is an explicit synthetic row (e.g. one per shard tile).
  void record(std::string category, std::string name, Clock::time_point start,
              Clock::time_point end, TraceArgs args = {},
              std::int64_t track = -1);

  /// Drains every thread buffer and renders the Chrome trace JSON
  /// document. Buffers are left empty; the time origin is preserved so
  /// successive drains stay on one timeline.
  std::string drainJson();

  /// Drains to `path`; returns false (with `error` set) on I/O failure.
  bool writeJson(const std::string& path, std::string* error = nullptr);

  /// Events dropped because a thread buffer hit its cap (drain resets it).
  std::uint64_t dropped() const noexcept {
    return dropped_.load(std::memory_order_relaxed);
  }

 private:
  struct Event {
    std::string category;
    std::string name;
    double tsMicros = 0.0;
    double durMicros = 0.0;
    std::uint64_t tid = 0;
    TraceArgs args;
  };
  struct ThreadBuffer {
    std::mutex mutex;
    std::vector<Event> events;
    std::uint64_t tid = 0;
  };
  static constexpr std::size_t kMaxEventsPerBuffer = 1u << 20;

  ThreadBuffer& buffer();

  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> dropped_{0};
  Clock::time_point epoch_;
  std::mutex registryMutex_;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers_;
  std::uint64_t nextTid_ = 1;
};

/// RAII span: records [construction, destruction) on the current thread's
/// track of the global tracer. A no-op (one atomic load) when tracing is
/// disabled — cheap enough to leave in hot paths.
class Span {
 public:
  Span(std::string category, std::string name);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Attaches an argument shown in the trace viewer's detail pane.
  void arg(std::string key, std::string value);

 private:
  bool armed_;
  Tracer::Clock::time_point start_;
  std::string category_;
  std::string name_;
  TraceArgs args_;
};

}  // namespace mcmcpar::obs
