#include "par/concurrency.hpp"

#include <algorithm>
#include <thread>

#include "par/thread_pool.hpp"

namespace mcmcpar::par {

unsigned resolveThreadCount(unsigned requested) noexcept {
  if (requested != 0) return requested;
  return std::max(1u, std::thread::hardware_concurrency());
}

std::unique_ptr<ThreadPool> makeThreadPool(unsigned requested) {
  return std::make_unique<ThreadPool>(resolveThreadCount(requested));
}

PoolBudget::PoolBudget(unsigned total)
    : total_(resolveThreadCount(total)), available_(total_) {}

unsigned PoolBudget::available() const {
  const std::scoped_lock lock(mutex_);
  return available_;
}

unsigned PoolBudget::tryAcquire(unsigned want) {
  const std::scoped_lock lock(mutex_);
  const unsigned granted = std::min(want, available_);
  available_ -= granted;
  return granted;
}

unsigned PoolBudget::tryAcquireFor(unsigned want,
                                   std::chrono::milliseconds timeout) {
  std::unique_lock lock(mutex_);
  if (want == 0) return 0;
  released_.wait_for(lock, timeout, [this] { return available_ > 0; });
  const unsigned granted = std::min(want, available_);
  available_ -= granted;
  return granted;
}

void PoolBudget::release(unsigned count) noexcept {
  {
    const std::scoped_lock lock(mutex_);
    available_ = std::min(total_, available_ + count);
  }
  released_.notify_all();
}

PoolLease PoolLease::acquire(PoolBudget* budget, unsigned requested) {
  const unsigned want = resolveThreadCount(requested);
  if (budget == nullptr) return PoolLease(nullptr, 0, want);
  // The calling thread is charged to the budget by its owner; lease only
  // the extra workers, and never more than the budget could ever hold.
  const unsigned capped = std::min(want, budget->total());
  const unsigned extras = capped > 1 ? budget->tryAcquire(capped - 1) : 0;
  return PoolLease(budget, extras, 1 + extras);
}

PoolLease::PoolLease(PoolLease&& other) noexcept
    : budget_(other.budget_),
      granted_(other.granted_),
      threads_(other.threads_) {
  other.budget_ = nullptr;
  other.granted_ = 0;
  other.threads_ = 1;
}

PoolLease& PoolLease::operator=(PoolLease&& other) noexcept {
  if (this != &other) {
    release();
    budget_ = other.budget_;
    granted_ = other.granted_;
    threads_ = other.threads_;
    other.budget_ = nullptr;
    other.granted_ = 0;
    other.threads_ = 1;
  }
  return *this;
}

void PoolLease::release() noexcept {
  if (budget_ != nullptr && granted_ > 0) budget_->release(granted_);
  budget_ = nullptr;
  granted_ = 0;
  threads_ = 1;
}

}  // namespace mcmcpar::par
