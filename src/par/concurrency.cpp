#include "par/concurrency.hpp"

#include <algorithm>
#include <thread>

#include "par/thread_pool.hpp"

namespace mcmcpar::par {

unsigned resolveThreadCount(unsigned requested) noexcept {
  if (requested != 0) return requested;
  return std::max(1u, std::thread::hardware_concurrency());
}

std::unique_ptr<ThreadPool> makeThreadPool(unsigned requested) {
  return std::make_unique<ThreadPool>(resolveThreadCount(requested));
}

}  // namespace mcmcpar::par
