#pragma once

#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>

namespace mcmcpar::par {

class ThreadPool;

/// Resolve a user-facing thread-count knob: 0 means "all hardware threads"
/// (never less than 1). Every `threads` field in the library routes through
/// this one function so the convention cannot drift between subsystems.
[[nodiscard]] unsigned resolveThreadCount(unsigned requested) noexcept;

/// Build a ThreadPool with `resolveThreadCount(requested)` workers — the
/// shared "0 = hardware threads -> make pool" step previously re-implemented
/// by the periodic sampler, (MC)^3 and the engine executors.
[[nodiscard]] std::unique_ptr<ThreadPool> makeThreadPool(unsigned requested);

class PoolLease;

/// A worker-thread budget shared by concurrent jobs (engine::BatchRunner).
///
/// Without a budget every strategy resolves its `threads` knob against the
/// whole machine, so 16 concurrent jobs on an 8-core box would spawn up to
/// 128 workers. A PoolBudget caps the *sum*: the budget owner charges it for
/// the threads that run the jobs themselves, and each job leases any extra
/// internal workers from what is left (see PoolLease::acquire). Acquisition
/// never blocks — a job that finds the budget empty simply runs serially on
/// its calling thread.
class PoolBudget {
 public:
  /// Share `total` worker threads (0 = hardware concurrency).
  explicit PoolBudget(unsigned total = 0);

  PoolBudget(const PoolBudget&) = delete;
  PoolBudget& operator=(const PoolBudget&) = delete;

  [[nodiscard]] unsigned total() const noexcept { return total_; }

  /// Threads not currently leased. A snapshot only: another thread may
  /// acquire between this call and yours.
  [[nodiscard]] unsigned available() const;

  /// Take up to `want` threads out of the budget right now; returns the
  /// granted count (possibly 0). Never blocks. Prefer PoolLease::acquire,
  /// which pairs the grant with an RAII release.
  [[nodiscard]] unsigned tryAcquire(unsigned want);

  /// Like tryAcquire, but when the budget is empty it blocks until another
  /// holder releases or `timeout` elapses; returns the granted count (0 only
  /// on timeout). Long-running front-ends use this to park idle workers
  /// outside the budget — releasing their thread between jobs so running
  /// strategies can lease it — and reacquire it when the next job arrives.
  [[nodiscard]] unsigned tryAcquireFor(unsigned want,
                                       std::chrono::milliseconds timeout);

  /// Return `count` previously acquired threads to the budget and wake
  /// tryAcquireFor waiters.
  void release(unsigned count) noexcept;

 private:
  mutable std::mutex mutex_;
  std::condition_variable released_;
  unsigned total_;
  unsigned available_;
};

/// RAII grant of worker threads against an optional PoolBudget.
///
/// `threads()` is the number of workers the holder may run, the calling
/// thread included — it is never 0, so a job can always make progress.
class PoolLease {
 public:
  /// An unbudgeted single-thread lease.
  PoolLease() = default;

  /// Resolve a thread request against an optional shared budget. With
  /// `budget == nullptr` this is exactly resolveThreadCount(requested): the
  /// job owns the whole machine (today's standalone behaviour). With a
  /// budget, the calling thread is already paid for by the budget owner, so
  /// the lease grants 1 (the caller) plus up to requested-1 extra workers,
  /// capped by what the budget has left; the extras return to the budget
  /// when the lease is released or destroyed.
  [[nodiscard]] static PoolLease acquire(PoolBudget* budget,
                                         unsigned requested);

  ~PoolLease() { release(); }

  PoolLease(PoolLease&& other) noexcept;
  PoolLease& operator=(PoolLease&& other) noexcept;
  PoolLease(const PoolLease&) = delete;
  PoolLease& operator=(const PoolLease&) = delete;

  /// Worker threads granted to the holder (calling thread included, >= 1).
  [[nodiscard]] unsigned threads() const noexcept { return threads_; }

  /// Return the leased extras to the budget early (idempotent).
  void release() noexcept;

 private:
  PoolLease(PoolBudget* budget, unsigned granted, unsigned threads) noexcept
      : budget_(budget), granted_(granted), threads_(threads) {}

  PoolBudget* budget_ = nullptr;
  unsigned granted_ = 0;  ///< extras to give back on release
  unsigned threads_ = 1;
};

}  // namespace mcmcpar::par
