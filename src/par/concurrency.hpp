#pragma once

#include <memory>

namespace mcmcpar::par {

class ThreadPool;

/// Resolve a user-facing thread-count knob: 0 means "all hardware threads"
/// (never less than 1). Every `threads` field in the library routes through
/// this one function so the convention cannot drift between subsystems.
[[nodiscard]] unsigned resolveThreadCount(unsigned requested) noexcept;

/// Build a ThreadPool with `resolveThreadCount(requested)` workers — the
/// shared "0 = hardware threads -> make pool" step previously re-implemented
/// by the periodic sampler, (MC)^3 and the engine executors.
[[nodiscard]] std::unique_ptr<ThreadPool> makeThreadPool(unsigned requested);

}  // namespace mcmcpar::par
