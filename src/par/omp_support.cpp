#include "par/omp_support.hpp"

#if defined(MCMCPAR_HAVE_OPENMP)
#include <omp.h>
#endif

namespace mcmcpar::par {

bool ompAvailable() noexcept {
#if defined(MCMCPAR_HAVE_OPENMP)
  return true;
#else
  return false;
#endif
}

unsigned ompMaxThreads() noexcept {
#if defined(MCMCPAR_HAVE_OPENMP)
  return static_cast<unsigned>(omp_get_max_threads());
#else
  return 1;
#endif
}

void ompParallelFor(std::size_t n, const std::function<void(std::size_t)>& fn,
                    unsigned threads) {
#if defined(MCMCPAR_HAVE_OPENMP)
  const int numThreads =
      threads == 0 ? omp_get_max_threads() : static_cast<int>(threads);
#pragma omp parallel for schedule(dynamic, 1) num_threads(numThreads)
  for (std::size_t i = 0; i < n; ++i) {
    fn(i);
  }
#else
  (void)threads;
  for (std::size_t i = 0; i < n; ++i) fn(i);
#endif
}

}  // namespace mcmcpar::par
