#pragma once

#include <cstddef>
#include <functional>

namespace mcmcpar::par {

/// True when the library was built with OpenMP.
[[nodiscard]] bool ompAvailable() noexcept;

/// OpenMP's max thread count (1 without OpenMP).
[[nodiscard]] unsigned ompMaxThreads() noexcept;

/// Run fn(i) for i in [0, n) with OpenMP dynamic scheduling when available,
/// serially otherwise. Exceptions must not escape fn (OpenMP constraint);
/// the executors catch internally and re-throw after the region.
void ompParallelFor(std::size_t n, const std::function<void(std::size_t)>& fn,
                    unsigned threads = 0);

}  // namespace mcmcpar::par
