#include "par/task_scheduler.hpp"

#include <algorithm>
#include <numeric>
#include <queue>

namespace mcmcpar::par {

double TaskSchedule::makespan(std::span<const double> costs) const {
  double worst = 0.0;
  for (const auto& tasks : perThread) {
    double t = 0.0;
    for (std::size_t i : tasks) t += costs[i];
    worst = std::max(worst, t);
  }
  return worst;
}

TaskSchedule lptSchedule(std::span<const double> costs, unsigned threads) {
  threads = std::max(threads, 1u);
  TaskSchedule schedule;
  schedule.perThread.resize(threads);

  std::vector<std::size_t> order(costs.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return costs[a] > costs[b];
  });

  // Min-heap of (accumulated load, thread).
  using Slot = std::pair<double, unsigned>;
  std::priority_queue<Slot, std::vector<Slot>, std::greater<>> heap;
  for (unsigned t = 0; t < threads; ++t) heap.emplace(0.0, t);

  for (std::size_t i : order) {
    auto [load, t] = heap.top();
    heap.pop();
    schedule.perThread[t].push_back(i);
    heap.emplace(load + costs[i], t);
  }
  return schedule;
}

double listScheduleMakespan(std::span<const double> costs, unsigned threads) {
  threads = std::max(threads, 1u);
  // Greedy in submission order: each task goes to the earliest-free thread.
  std::priority_queue<double, std::vector<double>, std::greater<>> free;
  for (unsigned t = 0; t < threads; ++t) free.push(0.0);
  double end = 0.0;
  for (double c : costs) {
    const double start = free.top();
    free.pop();
    const double finish = start + c;
    free.push(finish);
    end = std::max(end, finish);
  }
  return end;
}

double makespanLowerBound(std::span<const double> costs, unsigned threads) {
  threads = std::max(threads, 1u);
  double total = 0.0, largest = 0.0;
  for (double c : costs) {
    total += c;
    largest = std::max(largest, c);
  }
  return std::max(total / threads, largest);
}

}  // namespace mcmcpar::par
