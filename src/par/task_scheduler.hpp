#pragma once

#include <span>
#include <vector>

namespace mcmcpar::par {

/// Static assignment of tasks to threads.
struct TaskSchedule {
  /// perThread[t] = indices of the tasks assigned to thread t.
  std::vector<std::vector<std::size_t>> perThread;

  /// Completion time of the schedule under the given per-task costs.
  [[nodiscard]] double makespan(std::span<const double> costs) const;
};

/// Longest-Processing-Time-first schedule of `costs` onto `threads` threads
/// (the classic 4/3-approximation to minimum makespan). This is what the
/// paper's "task scheduler ... allowing more partitions than there are
/// available processors" amounts to for known costs.
[[nodiscard]] TaskSchedule lptSchedule(std::span<const double> costs,
                                       unsigned threads);

/// Makespan of greedy dynamic list scheduling in submission order (tasks
/// pulled from a queue by whichever thread is free first) — the behaviour
/// of ThreadPool::parallelFor. Used by the virtual-time executor to charge
/// a parallel region the wall time an s-thread machine would need.
[[nodiscard]] double listScheduleMakespan(std::span<const double> costs,
                                          unsigned threads);

/// Lower bound on any schedule: max(total/threads, max single cost).
[[nodiscard]] double makespanLowerBound(std::span<const double> costs,
                                        unsigned threads);

}  // namespace mcmcpar::par
