#include "par/thread_pool.hpp"

#include <atomic>
#include <chrono>
#include <exception>

#include "par/concurrency.hpp"

namespace mcmcpar::par {

ThreadPool::ThreadPool(unsigned threads) {
  threads = resolveThreadCount(threads);
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back(
        [this](const std::stop_token& stop) { workerLoop(stop); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  for (auto& w : workers_) w.request_stop();
  taskReady_.notify_all();
  // Join here rather than in the jthread destructors: `workers_` is
  // declared first, so its implicit join would run *after* mutex_ and the
  // condition variables are destroyed — and a worker finishing its last
  // task still notifies allDone_ on the way out (caught by TSan).
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void ThreadPool::submit(std::function<void()> task) {
  {
    const std::lock_guard lock(mutex_);
    queue_.push(std::move(task));
    ++inFlight_;
  }
  taskReady_.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock lock(mutex_);
  allDone_.wait(lock, [this] { return inFlight_ == 0; });
}

void ThreadPool::parallelFor(std::size_t n,
                             const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  std::atomic<std::size_t> next{0};
  std::exception_ptr firstError;
  std::mutex errorMutex;

  // Per-call completion latch. parallelFor must not wait on the global
  // inFlight_ count: a nested call from inside fn runs on a worker whose
  // own enclosing task is still in flight, so waiting for inFlight_ == 0
  // would deadlock.
  std::mutex doneMutex;
  std::condition_variable doneCv;
  std::size_t helpersLeft = 0;

  const auto body = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) break;
      try {
        fn(i);
      } catch (...) {
        const std::lock_guard lock(errorMutex);
        if (!firstError) firstError = std::current_exception();
      }
    }
  };

  // Each submitted wrapper and the calling thread all drain the index
  // counter, so the work balances dynamically whatever the pool size.
  const std::size_t helpers = std::min<std::size_t>(threadCount(), n);
  {
    const std::lock_guard lock(doneMutex);
    helpersLeft = helpers;
  }
  // If submit() throws partway (bad_alloc), already-queued wrappers still
  // reference this frame: account for the never-submitted rest, finish the
  // work and the drain-wait as usual, and only then rethrow.
  std::size_t submitted = 0;
  std::exception_ptr submitError;
  try {
    for (; submitted < helpers; ++submitted) {
      submit([&] {
        body();
        // Notify under the lock: the caller can only observe
        // helpersLeft == 0 (and destroy the latch) after this wrapper
        // released doneMutex.
        const std::lock_guard lock(doneMutex);
        --helpersLeft;
        doneCv.notify_all();
      });
    }
  } catch (...) {
    submitError = std::current_exception();
    const std::lock_guard lock(doneMutex);
    helpersLeft -= helpers - submitted;
  }
  body();
  // Drain queued pool tasks while waiting for the helpers, so that a nested
  // parallelFor's helpers cannot starve when every worker is itself blocked
  // inside an enclosing parallelFor. One task per iteration, re-checking the
  // latch in between: once the helpers are done we return immediately
  // instead of working through an unrelated queue backlog. The timed wait
  // covers the window where a task is submitted after we found the queue
  // empty.
  for (;;) {
    {
      std::unique_lock lock(doneMutex);
      if (helpersLeft == 0) break;
    }
    if (!runPendingTask()) {
      std::unique_lock lock(doneMutex);
      if (doneCv.wait_for(lock, std::chrono::milliseconds(1),
                          [&] { return helpersLeft == 0; })) {
        break;
      }
    }
  }
  if (firstError) std::rethrow_exception(firstError);
  if (submitError) std::rethrow_exception(submitError);
}

void ThreadPool::runTaskAndAccount(std::function<void()>& task) {
  // The submit() contract: a fire-and-forget task that throws has no caller
  // to land in — terminate deterministically rather than unwinding into a
  // worker's jthread or an unrelated parallelFor (which would also leak
  // inFlight_ and destroy the latch under running helpers).
  try {
    task();
  } catch (...) {
    std::terminate();
  }
  {
    const std::lock_guard lock(mutex_);
    --inFlight_;
  }
  allDone_.notify_all();
}

bool ThreadPool::runPendingTask() {
  std::function<void()> task;
  {
    const std::lock_guard lock(mutex_);
    if (queue_.empty()) return false;
    task = std::move(queue_.front());
    queue_.pop();
  }
  runTaskAndAccount(task);
  return true;
}

void ThreadPool::workerLoop(const std::stop_token& stop) {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      taskReady_.wait(lock, [this, &stop] {
        return stopping_ || stop.stop_requested() || !queue_.empty();
      });
      if (queue_.empty()) {
        if (stopping_ || stop.stop_requested()) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop();
    }
    runTaskAndAccount(task);
  }
}

}  // namespace mcmcpar::par
