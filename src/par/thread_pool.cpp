#include "par/thread_pool.hpp"

#include <atomic>
#include <exception>

namespace mcmcpar::par {

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back(
        [this](const std::stop_token& stop) { workerLoop(stop); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  for (auto& w : workers_) w.request_stop();
  taskReady_.notify_all();
  // jthread destructors join.
}

void ThreadPool::submit(std::function<void()> task) {
  {
    const std::lock_guard lock(mutex_);
    queue_.push(std::move(task));
    ++inFlight_;
  }
  taskReady_.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock lock(mutex_);
  allDone_.wait(lock, [this] { return inFlight_ == 0; });
}

void ThreadPool::parallelFor(std::size_t n,
                             const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  std::exception_ptr firstError;
  std::mutex errorMutex;

  const auto body = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) break;
      try {
        fn(i);
      } catch (...) {
        const std::lock_guard lock(errorMutex);
        if (!firstError) firstError = std::current_exception();
      }
      done.fetch_add(1, std::memory_order_acq_rel);
    }
  };

  // Each submitted wrapper and the calling thread all drain the index
  // counter, so the work balances dynamically whatever the pool size.
  const std::size_t helpers = std::min<std::size_t>(threadCount(), n);
  for (std::size_t h = 0; h < helpers; ++h) submit(body);
  body();
  // The counter being exhausted does not mean the work is finished; spin on
  // the completion count via the pool's wait (helpers finish as tasks).
  wait();
  if (firstError) std::rethrow_exception(firstError);
}

void ThreadPool::workerLoop(const std::stop_token& stop) {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      taskReady_.wait(lock, [this, &stop] {
        return stopping_ || stop.stop_requested() || !queue_.empty();
      });
      if (queue_.empty()) {
        if (stopping_ || stop.stop_requested()) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
    {
      const std::lock_guard lock(mutex_);
      --inFlight_;
    }
    allDone_.notify_all();
  }
}

}  // namespace mcmcpar::par
