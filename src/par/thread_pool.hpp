#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace mcmcpar::par {

/// A fixed-size worker pool executing submitted tasks FIFO.
///
/// Workers are std::jthread, so destruction joins automatically after the
/// stop flag drains the queue. `parallelFor` is the blocking primitive the
/// executors use: it runs fn(i) for i in [0, n) across the workers and the
/// calling thread, returning when every index completed. Exceptions from
/// tasks propagate out of parallelFor (first one wins).
class ThreadPool {
 public:
  /// Spawn `threads` workers (0 = hardware concurrency, at least 1).
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] unsigned threadCount() const noexcept {
    return static_cast<unsigned>(workers_.size());
  }

  /// Enqueue a fire-and-forget task. The task must not throw: it has no
  /// caller to receive an exception, so one escaping terminates the process
  /// whether a worker or a queue-draining parallelFor caller runs it. Use
  /// parallelFor for work whose exceptions must propagate.
  void submit(std::function<void()> task);

  /// Block until all tasks submitted so far have finished.
  void wait();

  /// Run fn(i) for every i in [0, n), distributing dynamically (one index
  /// per task; appropriate for coarse tasks like MCMC partitions). Blocks.
  /// Reentrant: fn may itself call parallelFor on the same pool — the
  /// waiting caller helps drain the task queue, so nested calls make
  /// progress even when every worker is blocked in an enclosing call.
  void parallelFor(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void workerLoop(const std::stop_token& stop);

  /// Run a dequeued task and settle the in-flight accounting; terminates if
  /// the task throws (see the submit() contract). Shared by workerLoop and
  /// runPendingTask so the execution protocol lives in one place.
  void runTaskAndAccount(std::function<void()>& task);

  /// Pop and run one queued task on the calling thread; false if the queue
  /// was empty. Used by parallelFor to help while waiting.
  bool runPendingTask();

  std::vector<std::jthread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable taskReady_;
  std::condition_variable allDone_;
  std::size_t inFlight_ = 0;
  bool stopping_ = false;
};

}  // namespace mcmcpar::par
