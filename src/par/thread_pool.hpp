#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace mcmcpar::par {

/// A fixed-size worker pool executing submitted tasks FIFO.
///
/// Workers are std::jthread, so destruction joins automatically after the
/// stop flag drains the queue. `parallelFor` is the blocking primitive the
/// executors use: it runs fn(i) for i in [0, n) across the workers and the
/// calling thread, returning when every index completed. Exceptions from
/// tasks propagate out of parallelFor (first one wins).
class ThreadPool {
 public:
  /// Spawn `threads` workers (0 = hardware concurrency, at least 1).
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] unsigned threadCount() const noexcept {
    return static_cast<unsigned>(workers_.size());
  }

  /// Enqueue a fire-and-forget task.
  void submit(std::function<void()> task);

  /// Block until all tasks submitted so far have finished.
  void wait();

  /// Run fn(i) for every i in [0, n), distributing dynamically (one index
  /// per task; appropriate for coarse tasks like MCMC partitions). Blocks.
  void parallelFor(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void workerLoop(const std::stop_token& stop);

  std::vector<std::jthread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable taskReady_;
  std::condition_variable allDone_;
  std::size_t inFlight_ = 0;
  bool stopping_ = false;
};

}  // namespace mcmcpar::par
