#include "par/virtual_clock.hpp"

#include "par/task_scheduler.hpp"

namespace mcmcpar::par {

void VirtualClock::advanceParallel(std::span<const double> taskSeconds,
                                   unsigned threads) {
  now_ += listScheduleMakespan(taskSeconds, threads);
}

}  // namespace mcmcpar::par
