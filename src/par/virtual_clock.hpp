#pragma once

#include <chrono>
#include <span>

namespace mcmcpar::par {

/// Wall-clock stopwatch (steady clock).
class WallTimer {
 public:
  WallTimer() noexcept : start_(Clock::now()) {}

  /// Seconds since construction or the last restart().
  [[nodiscard]] double seconds() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  void restart() noexcept { start_ = Clock::now(); }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulator of *virtual* elapsed time for the simulated-SMP executors.
///
/// This container has a single physical core, but the paper's experiments
/// compare wall times on 2-4 core machines. The virtual executors run
/// parallel regions serially, measure each task, and charge this clock the
/// makespan an s-thread machine would achieve (see DESIGN.md §2). Serial
/// sections are charged at face value.
class VirtualClock {
 public:
  /// Charge a serial section.
  void advance(double seconds) noexcept { now_ += seconds; }

  /// Charge a parallel region given measured per-task costs, as executed by
  /// a dynamic task queue on `threads` threads.
  void advanceParallel(std::span<const double> taskSeconds, unsigned threads);

  [[nodiscard]] double now() const noexcept { return now_; }
  void reset() noexcept { now_ = 0.0; }

 private:
  double now_ = 0.0;
};

}  // namespace mcmcpar::par
