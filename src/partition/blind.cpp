#include "partition/blind.hpp"

#include <algorithm>
#include <cmath>

namespace mcmcpar::partition {

std::vector<BlindPartition> makeBlindPartitions(int width, int height,
                                                const BlindParams& params) {
  const auto cores = tileImage(width, height, params.gridX, params.gridY);
  const int m = static_cast<int>(std::ceil(params.overlapMargin));
  std::vector<BlindPartition> out;
  out.reserve(cores.size());
  for (const IRect& core : cores) {
    IRect exp;
    exp.x0 = std::max(0, core.x0 - m);
    exp.y0 = std::max(0, core.y0 - m);
    exp.w = std::min(width, core.x0 + core.w + m) - exp.x0;
    exp.h = std::min(height, core.y0 + core.h + m) - exp.y0;
    out.push_back(BlindPartition{core, exp});
  }
  return out;
}

namespace {

struct Candidate {
  model::Circle circle;
  std::size_t partition;
  bool inOverlap;
  bool consumed = false;
};

}  // namespace

std::vector<model::Circle> mergeBlindResults(
    const std::vector<BlindPartition>& partitions,
    const std::vector<std::vector<model::Circle>>& perPartition,
    const BlindParams& params, BlindMergeStats* stats) {
  BlindMergeStats local;
  std::vector<model::Circle> accepted;
  std::vector<Candidate> overlapCandidates;

  const auto inOtherExpanded = [&](double x, double y, std::size_t self) {
    for (std::size_t q = 0; q < partitions.size(); ++q) {
      if (q != self && partitions[q].expanded.containsPoint(x, y)) return true;
    }
    return false;
  };

  for (std::size_t p = 0; p < partitions.size(); ++p) {
    for (const model::Circle& c : perPartition[p]) {
      // Rule 1: centre must be inside the core (the dotted line).
      if (!partitions[p].core.containsPoint(c.x, c.y)) {
        ++local.droppedOutsideCore;
        continue;
      }
      // Rule 2: centres that no other partition could have seen are final.
      if (!inOtherExpanded(c.x, c.y, p)) {
        ++local.autoAccepted;
        accepted.push_back(c);
      } else {
        overlapCandidates.push_back(Candidate{c, p, true});
      }
    }
  }

  // Rule 3: merge the closest cross-partition pairs first.
  struct Pair {
    double dist2;
    std::size_t a, b;
  };
  std::vector<Pair> pairs;
  const double r2 = params.mergeRadius * params.mergeRadius;
  for (std::size_t i = 0; i < overlapCandidates.size(); ++i) {
    for (std::size_t j = i + 1; j < overlapCandidates.size(); ++j) {
      if (overlapCandidates[i].partition == overlapCandidates[j].partition) {
        continue;
      }
      const double d2 = model::centreDistance2(overlapCandidates[i].circle,
                                               overlapCandidates[j].circle);
      if (d2 <= r2) pairs.push_back(Pair{d2, i, j});
    }
  }
  std::stable_sort(pairs.begin(), pairs.end(),
                   [](const Pair& a, const Pair& b) { return a.dist2 < b.dist2; });
  for (const Pair& pr : pairs) {
    Candidate& a = overlapCandidates[pr.a];
    Candidate& b = overlapCandidates[pr.b];
    if (a.consumed || b.consumed) continue;
    a.consumed = b.consumed = true;
    // "replaced with a bead with centerpoint and radii that are the average
    // of the original bead".
    accepted.push_back(model::Circle{(a.circle.x + b.circle.x) / 2.0,
                                     (a.circle.y + b.circle.y) / 2.0,
                                     (a.circle.r + b.circle.r) / 2.0});
    ++local.mergedPairs;
  }

  // Rule 4: dispute policy for unmatched overlap-area circles.
  for (const Candidate& c : overlapCandidates) {
    if (c.consumed) continue;
    if (params.dispute == BlindParams::DisputePolicy::Accept) {
      accepted.push_back(c.circle);
      ++local.disputedAccepted;
    } else {
      ++local.disputedDiscarded;
    }
  }

  if (stats != nullptr) *stats = local;
  return accepted;
}

}  // namespace mcmcpar::partition
