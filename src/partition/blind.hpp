#pragma once

#include <vector>

#include "model/circle.hpp"
#include "partition/grid.hpp"

namespace mcmcpar::partition {

/// Parameters of blind partitioning (§VIII-§IX).
struct BlindParams {
  int gridX = 2;  ///< simple grid columns ("split into four equal areas")
  int gridY = 2;  ///< simple grid rows

  /// Expansion of each partition beyond its core, in pixels; the paper uses
  /// 1.1 x the expected artifact radius so the largest expected artifact
  /// fits fully inside at least one partition.
  double overlapMargin = 11.0;

  /// Centre distance below which two results from different partitions are
  /// considered the same artifact and merged ("within say 5 pixels").
  double mergeRadius = 5.0;

  /// What to do with overlap-area features that have no counterpart in the
  /// neighbouring partition: keep them (avoid misses) or drop them (avoid
  /// false positives). The paper leaves this to the application.
  enum class DisputePolicy { Accept, Discard };
  DisputePolicy dispute = DisputePolicy::Accept;
};

/// One blind partition: the core cell of the simple grid (dotted line in
/// fig. 4) and the expanded rectangle actually handed to MCMC (solid line).
struct BlindPartition {
  IRect core;
  IRect expanded;
};

/// Build the gx x gy blind partitions of a width x height image, each core
/// expanded by `overlapMargin` (clipped at the image border).
[[nodiscard]] std::vector<BlindPartition> makeBlindPartitions(
    int width, int height, const BlindParams& params);

/// Bookkeeping of the recombination heuristics.
struct BlindMergeStats {
  std::size_t droppedOutsideCore = 0;  ///< results with centre outside core
  std::size_t autoAccepted = 0;        ///< centres in non-overlap regions
  std::size_t mergedPairs = 0;         ///< near-duplicates averaged
  std::size_t disputedAccepted = 0;
  std::size_t disputedDiscarded = 0;
};

/// Recombine per-partition MCMC results (fig. 4, bottom row):
/// 1. drop circles whose centre is outside their partition's core;
/// 2. auto-accept circles whose centre lies in no other partition's
///    expanded area;
/// 3. among the rest (overlap-area circles), greedily merge cross-partition
///    pairs with centre distance <= mergeRadius into their average;
/// 4. apply the dispute policy to unmatched overlap-area circles.
[[nodiscard]] std::vector<model::Circle> mergeBlindResults(
    const std::vector<BlindPartition>& partitions,
    const std::vector<std::vector<model::Circle>>& perPartition,
    const BlindParams& params, BlindMergeStats* stats = nullptr);

}  // namespace mcmcpar::partition
