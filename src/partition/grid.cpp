#include "partition/grid.hpp"

#include <algorithm>
#include <cmath>

namespace mcmcpar::partition {

GridSpec GridSpec::withRandomOffset(rng::Stream& stream) const {
  GridSpec out = *this;
  out.offsetX = stream.uniform(0.0, spacingX);
  out.offsetY = stream.uniform(0.0, spacingY);
  return out;
}

std::vector<model::Bounds> gridPartitions(const model::Bounds& domain,
                                          const GridSpec& spec) {
  std::vector<double> xs{domain.x0};
  // Grid lines at offsetX + k * spacingX intersecting the domain interior.
  const double firstKx =
      std::ceil((domain.x0 - spec.offsetX) / spec.spacingX);
  for (double k = firstKx;; k += 1.0) {
    const double x = spec.offsetX + k * spec.spacingX;
    if (x >= domain.x1) break;
    if (x > domain.x0) xs.push_back(x);
  }
  xs.push_back(domain.x1);

  std::vector<double> ys{domain.y0};
  const double firstKy =
      std::ceil((domain.y0 - spec.offsetY) / spec.spacingY);
  for (double k = firstKy;; k += 1.0) {
    const double y = spec.offsetY + k * spec.spacingY;
    if (y >= domain.y1) break;
    if (y > domain.y0) ys.push_back(y);
  }
  ys.push_back(domain.y1);

  std::vector<model::Bounds> cells;
  cells.reserve((xs.size() - 1) * (ys.size() - 1));
  for (std::size_t j = 0; j + 1 < ys.size(); ++j) {
    for (std::size_t i = 0; i + 1 < xs.size(); ++i) {
      cells.push_back(model::Bounds{xs[i], ys[j], xs[i + 1], ys[j + 1]});
    }
  }
  return cells;
}

std::vector<model::Bounds> crossPartitions(const model::Bounds& domain,
                                           double crossX, double crossY) {
  crossX = std::clamp(crossX, domain.x0, domain.x1);
  crossY = std::clamp(crossY, domain.y0, domain.y1);
  std::vector<model::Bounds> cells;
  const double xs[3] = {domain.x0, crossX, domain.x1};
  const double ys[3] = {domain.y0, crossY, domain.y1};
  for (int j = 0; j < 2; ++j) {
    for (int i = 0; i < 2; ++i) {
      model::Bounds b{xs[i], ys[j], xs[i + 1], ys[j + 1]};
      if (b.width() > 0.0 && b.height() > 0.0) cells.push_back(b);
    }
  }
  return cells;
}

std::vector<model::Bounds> randomCrossPartitions(const model::Bounds& domain,
                                                 rng::Stream& stream,
                                                 double marginFraction) {
  const double mx = domain.width() * marginFraction;
  const double my = domain.height() * marginFraction;
  const double crossX = stream.uniform(domain.x0 + mx, domain.x1 - mx);
  const double crossY = stream.uniform(domain.y0 + my, domain.y1 - my);
  return crossPartitions(domain, crossX, crossY);
}

std::vector<IRect> tileImage(int width, int height, int gx, int gy) {
  gx = std::max(1, gx);
  gy = std::max(1, gy);
  std::vector<IRect> rects;
  rects.reserve(static_cast<std::size_t>(gx) * gy);
  for (int j = 0; j < gy; ++j) {
    const int y0 = static_cast<int>(static_cast<long long>(height) * j / gy);
    const int y1 =
        static_cast<int>(static_cast<long long>(height) * (j + 1) / gy);
    for (int i = 0; i < gx; ++i) {
      const int x0 = static_cast<int>(static_cast<long long>(width) * i / gx);
      const int x1 =
          static_cast<int>(static_cast<long long>(width) * (i + 1) / gx);
      rects.push_back(IRect{x0, y0, x1 - x0, y1 - y0});
    }
  }
  return rects;
}

IRect snapToPixels(const model::Bounds& b, int imageWidth, int imageHeight) {
  const int x0 = std::clamp(static_cast<int>(std::floor(b.x0)), 0, imageWidth);
  const int y0 = std::clamp(static_cast<int>(std::floor(b.y0)), 0, imageHeight);
  const int x1 = std::clamp(static_cast<int>(std::ceil(b.x1)), x0, imageWidth);
  const int y1 = std::clamp(static_cast<int>(std::ceil(b.y1)), y0, imageHeight);
  return IRect{x0, y0, x1 - x0, y1 - y0};
}

IRect roundToPixels(const model::Bounds& b, int imageWidth, int imageHeight) {
  const int x0 =
      std::clamp(static_cast<int>(std::lround(b.x0)), 0, imageWidth);
  const int y0 =
      std::clamp(static_cast<int>(std::lround(b.y0)), 0, imageHeight);
  const int x1 =
      std::clamp(static_cast<int>(std::lround(b.x1)), x0, imageWidth);
  const int y1 =
      std::clamp(static_cast<int>(std::lround(b.y1)), y0, imageHeight);
  return IRect{x0, y0, x1 - x0, y1 - y0};
}

}  // namespace mcmcpar::partition
