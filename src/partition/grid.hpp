#pragma once

#include <vector>

#include "model/posterior.hpp"
#include "rng/stream.hpp"

namespace mcmcpar::partition {

/// Integer pixel rectangle [x0, x0+w) x [y0, y0+h) (crops, partitions).
struct IRect {
  int x0 = 0;
  int y0 = 0;
  int w = 0;
  int h = 0;

  [[nodiscard]] long long area() const noexcept {
    return static_cast<long long>(w) * h;
  }
  [[nodiscard]] bool containsPoint(double x, double y) const noexcept {
    return x >= x0 && x < x0 + w && y >= y0 && y < y0 + h;
  }
  [[nodiscard]] model::Bounds toBounds() const noexcept {
    return model::Bounds{static_cast<double>(x0), static_cast<double>(y0),
                         static_cast<double>(x0 + w),
                         static_cast<double>(y0 + h)};
  }

  friend bool operator==(const IRect&, const IRect&) = default;
};

/// A uniform partition grid with spacing (xm, ym) and a per-phase random
/// offset, as in §V: "we partition the image with a uniform grid of spacing
/// xm along the x-axis and ym along the y-axis ... for each phase of Ml
/// moves performed, a new x and y offset for the grid is chosen at random
/// from the ranges 0..xm and 0..ym".
struct GridSpec {
  double spacingX = 256.0;
  double spacingY = 256.0;
  double offsetX = 0.0;
  double offsetY = 0.0;

  /// Same spacing with offsets drawn uniformly from [0, spacing).
  [[nodiscard]] GridSpec withRandomOffset(rng::Stream& stream) const;
};

/// Cells of the offset grid clipped to `domain`; empty cells are dropped.
/// Cells tile the domain exactly (half-open, disjoint).
[[nodiscard]] std::vector<model::Bounds> gridPartitions(
    const model::Bounds& domain, const GridSpec& spec);

/// The §VII experimental layout: four rectangles meeting at one interior
/// cross point (grid squares larger than the image). The cross point should
/// be drawn uniformly per phase.
[[nodiscard]] std::vector<model::Bounds> crossPartitions(
    const model::Bounds& domain, double crossX, double crossY);

/// Uniform random cross point with a relative border margin (avoids
/// degenerate slivers; marginFraction 0.1 keeps the point in the central
/// 80% of each axis).
[[nodiscard]] std::vector<model::Bounds> randomCrossPartitions(
    const model::Bounds& domain, rng::Stream& stream,
    double marginFraction = 0.05);

/// Integer tiling of a W x H image into gx x gy near-equal cells
/// (blind partitioning's "simple grid"; also used to build crop rects).
[[nodiscard]] std::vector<IRect> tileImage(int width, int height, int gx, int gy);

/// Clip a Bounds to integer pixels (outward for the low edge, inward for
/// the high edge never exceeding the domain), for raster crops.
[[nodiscard]] IRect snapToPixels(const model::Bounds& b, int imageWidth,
                                 int imageHeight);

/// Round each edge to the nearest pixel. Cells sharing a cut line round it
/// identically, so rounding a disjoint tiling keeps it disjoint — this is
/// what the split/merge executor uses to turn grid cells into crop rects.
[[nodiscard]] IRect roundToPixels(const model::Bounds& b, int imageWidth,
                                  int imageHeight);

}  // namespace mcmcpar::partition
