#include "partition/intelligent.hpp"

#include <algorithm>

#include "img/filters.hpp"

namespace mcmcpar::partition {

namespace {

/// Occupancy of columns (axis=0) or rows (axis=1) within a subrect.
std::vector<bool> occupancy(const img::ImageF& image, const IRect& rect,
                            float theta, int axis) {
  const std::size_t n =
      axis == 0 ? static_cast<std::size_t>(rect.w) : static_cast<std::size_t>(rect.h);
  std::vector<bool> occ(n, false);
  for (int y = rect.y0; y < rect.y0 + rect.h; ++y) {
    const float* row = image.row(y);
    for (int x = rect.x0; x < rect.x0 + rect.w; ++x) {
      if (row[x] > theta) {
        occ[axis == 0 ? static_cast<std::size_t>(x - rect.x0)
                      : static_cast<std::size_t>(y - rect.y0)] = true;
      }
    }
  }
  return occ;
}

struct Cutter {
  const img::ImageF& image;
  IntelligentParams params;
  std::vector<IRect> out;
  std::vector<int> vCuts;
  std::vector<int> hCuts;

  void recurse(const IRect& rect, int depth, int axis) {
    if (depth >= params.maxDepth) {
      out.push_back(rect);
      return;
    }
    const std::vector<bool> occ = occupancy(image, rect, params.theta, axis);
    std::vector<int> cuts = gapCutPositions(occ, params.minGapWidth);

    // Drop cuts that would create slivers.
    std::vector<int> kept;
    int prev = 0;
    const int extent = axis == 0 ? rect.w : rect.h;
    for (int c : cuts) {
      if (c - prev >= params.minPartitionSize &&
          extent - c >= params.minPartitionSize) {
        kept.push_back(c);
        prev = c;
      }
    }

    if (kept.empty()) {
      // Try the other axis once before giving up on this rect.
      if (axis == 0) {
        recurseOther(rect, depth);
      } else {
        out.push_back(rect);
      }
      return;
    }

    int start = 0;
    for (std::size_t i = 0; i <= kept.size(); ++i) {
      const int end = i < kept.size() ? kept[i] : extent;
      IRect piece = rect;
      if (axis == 0) {
        piece.x0 = rect.x0 + start;
        piece.w = end - start;
        if (i < kept.size()) vCuts.push_back(rect.x0 + kept[i]);
      } else {
        piece.y0 = rect.y0 + start;
        piece.h = end - start;
        if (i < kept.size()) hCuts.push_back(rect.y0 + kept[i]);
      }
      recurse(piece, depth + 1, 1 - axis);
      start = end;
    }
  }

  void recurseOther(const IRect& rect, int depth) {
    const std::vector<bool> occ = occupancy(image, rect, params.theta, 1);
    std::vector<int> cuts = gapCutPositions(occ, params.minGapWidth);
    std::vector<int> kept;
    int prev = 0;
    for (int c : cuts) {
      if (c - prev >= params.minPartitionSize &&
          rect.h - c >= params.minPartitionSize) {
        kept.push_back(c);
        prev = c;
      }
    }
    if (kept.empty()) {
      out.push_back(rect);
      return;
    }
    int start = 0;
    for (std::size_t i = 0; i <= kept.size(); ++i) {
      const int end = i < kept.size() ? kept[i] : rect.h;
      IRect piece = rect;
      piece.y0 = rect.y0 + start;
      piece.h = end - start;
      if (i < kept.size()) hCuts.push_back(rect.y0 + kept[i]);
      recurse(piece, depth + 1, 0);
      start = end;
    }
  }
};

}  // namespace

std::vector<int> gapCutPositions(const std::vector<bool>& occupied,
                                 int minGap) {
  std::vector<int> cuts;
  const int n = static_cast<int>(occupied.size());

  // Leading/trailing empty runs have occupied cells on one side only; no
  // cut is made there (nothing to separate).
  int i = 0;
  while (i < n && !occupied[static_cast<std::size_t>(i)]) ++i;  // skip leading gap
  while (i < n) {
    // Advance through an occupied block.
    while (i < n && occupied[static_cast<std::size_t>(i)]) ++i;
    const int gapStart = i;
    while (i < n && !occupied[static_cast<std::size_t>(i)]) ++i;
    const int gapEnd = i;  // [gapStart, gapEnd) empty
    if (i < n && gapEnd - gapStart >= minGap) {
      cuts.push_back(gapStart + (gapEnd - gapStart) / 2);
    }
  }
  return cuts;
}

IntelligentPartitioning intelligentPartition(const img::ImageF& filtered,
                                             const IntelligentParams& params) {
  Cutter cutter{filtered, params, {}, {}, {}};
  cutter.recurse(IRect{0, 0, filtered.width(), filtered.height()}, 0, 0);
  std::sort(cutter.vCuts.begin(), cutter.vCuts.end());
  std::sort(cutter.hCuts.begin(), cutter.hCuts.end());
  return IntelligentPartitioning{std::move(cutter.out), std::move(cutter.vCuts),
                                 std::move(cutter.hCuts)};
}

}  // namespace mcmcpar::partition
