#pragma once

#include <vector>

#include "img/image.hpp"
#include "partition/grid.hpp"

namespace mcmcpar::partition {

/// Parameters of the intelligent partitioner (§VIII-§IX).
struct IntelligentParams {
  float theta = 0.5f;       ///< threshold for "occupied" pixels (eq. 5 theta)
  int minGapWidth = 3;      ///< an empty run must be at least this wide to cut
  int minPartitionSize = 24;///< do not produce slivers thinner than this
  int maxDepth = 8;         ///< recursion depth bound (alternating axes)
};

/// Result of intelligent partitioning: the partitions tile the image; cuts
/// run along the centres of empty column/row runs ("equidistant between the
/// closest columns/rows containing pixels that passed the threshold").
struct IntelligentPartitioning {
  std::vector<IRect> partitions;
  std::vector<int> verticalCuts;    ///< x coordinates of the cuts made
  std::vector<int> horizontalCuts;  ///< y coordinates of the cuts made
};

/// Scan a thresholded view of `filtered` for completely empty rows/columns
/// and recursively cut the image between occupied blocks, alternating axes.
/// Returns at least one partition (the whole image when no gap exists).
///
/// This is the fast pre-processor the paper requires "complete confidence"
/// in: a cut is only made through columns/rows with *no* pixel above theta,
/// so no artifact (as seen by the same threshold) can span a boundary.
[[nodiscard]] IntelligentPartitioning intelligentPartition(
    const img::ImageF& filtered, const IntelligentParams& params = {});

/// Helper exposed for tests: centres of maximal empty runs (value false) at
/// least `minGap` long that have occupied cells on both sides.
[[nodiscard]] std::vector<int> gapCutPositions(const std::vector<bool>& occupied,
                                               int minGap);

}  // namespace mcmcpar::partition
