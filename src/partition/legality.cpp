#include "partition/legality.hpp"

#include <algorithm>
#include <numeric>

namespace mcmcpar::partition {

std::vector<model::CircleId> modifiableCircles(
    const model::ModelState& state, const mcmc::RegionConstraint& rc) {
  std::vector<model::CircleId> ids;
  state.config().forEach([&](model::CircleId id, const model::Circle& c) {
    if (rc.allowsCircle(c)) ids.push_back(id);
  });
  return ids;
}

std::size_t modifiableCount(const model::ModelState& state,
                            const mcmc::RegionConstraint& rc) {
  std::size_t count = 0;
  state.config().forEach([&](model::CircleId, const model::Circle& c) {
    if (rc.allowsCircle(c)) ++count;
  });
  return count;
}

std::vector<std::uint64_t> allocateIterations(
    std::uint64_t total, const std::vector<std::size_t>& counts) {
  std::vector<std::uint64_t> out(counts.size(), 0);
  const std::uint64_t sum =
      std::accumulate(counts.begin(), counts.end(), std::uint64_t{0});
  if (sum == 0 || total == 0) return out;

  // Largest-remainder: floor shares first, then distribute the leftovers to
  // the largest fractional remainders (ties broken by index for
  // determinism).
  std::vector<std::pair<double, std::size_t>> remainders;
  std::uint64_t assigned = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const double exact = static_cast<double>(total) *
                         static_cast<double>(counts[i]) /
                         static_cast<double>(sum);
    out[i] = static_cast<std::uint64_t>(exact);
    assigned += out[i];
    remainders.emplace_back(exact - static_cast<double>(out[i]), i);
  }
  std::stable_sort(remainders.begin(), remainders.end(),
                   [](const auto& a, const auto& b) { return a.first > b.first; });
  for (std::size_t k = 0; assigned < total; ++k) {
    ++out[remainders[k % remainders.size()].second];
    ++assigned;
  }
  return out;
}

double inPlaceSafetyMargin(const model::ModelState& state) {
  // Mirrors the spatial-grid cell size chosen by ModelState's configuration
  // (max(interactionRange, 8)).
  const double cell = std::max(state.prior().interactionRange(), 8.0);
  return 2.0 * cell;
}

}  // namespace mcmcpar::partition
