#pragma once

#include <vector>

#include "mcmc/move.hpp"
#include "model/posterior.hpp"

namespace mcmcpar::partition {

/// Ids of the circles that may legally be modified inside a partition: the
/// disc, expanded by the constraint margin, lies strictly inside the
/// partition rectangle (the §V rule). O(n) over alive circles.
[[nodiscard]] std::vector<model::CircleId> modifiableCircles(
    const model::ModelState& state, const mcmc::RegionConstraint& rc);

/// Count only (used for iteration allocation without materialising lists).
[[nodiscard]] std::size_t modifiableCount(const model::ModelState& state,
                                          const mcmc::RegionConstraint& rc);

/// The paper allocates each Ml phase's iterations to partitions "in the same
/// proportion as the number of model features ... that may be legitimately
/// modified". Largest-remainder apportionment of `total` over `counts`;
/// returns one iteration count per partition summing exactly to `total`
/// (all zero when no partition has a modifiable feature).
[[nodiscard]] std::vector<std::uint64_t> allocateIterations(
    std::uint64_t total, const std::vector<std::size_t>& counts);

/// Safety margin for the in-place executor: modifiable circles must be far
/// enough from partition boundaries that concurrent phases touch disjoint
/// spatial-grid buckets and never read each other's geometry (torn reads).
/// DESIGN.md §5 derives margin > radiusMax/2 + cellSize; twice the cell
/// size satisfies it with headroom.
[[nodiscard]] double inPlaceSafetyMargin(const model::ModelState& state);

}  // namespace mcmcpar::partition
