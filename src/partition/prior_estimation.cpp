#include "partition/prior_estimation.hpp"

#include <numbers>

#include "img/filters.hpp"

namespace mcmcpar::partition {

DensityEstimate estimateCount(const img::ImageF& filtered, float theta,
                              double radius) {
  DensityEstimate e;
  e.pixelsAbove = img::countAboveThreshold(filtered, theta);
  e.discArea = std::numbers::pi * radius * radius;
  e.expectedCount = static_cast<double>(e.pixelsAbove) / e.discArea;
  return e;
}

DensityEstimate estimateCount(const img::ImageF& filtered, float theta,
                              double radius, const IRect& rect) {
  DensityEstimate e;
  e.pixelsAbove = img::countAboveThreshold(filtered, theta, rect.x0, rect.y0,
                                           rect.w, rect.h);
  e.discArea = std::numbers::pi * radius * radius;
  e.expectedCount = static_cast<double>(e.pixelsAbove) / e.discArea;
  return e;
}

double uniformAreaShare(double totalCount, const IRect& rect, int imageWidth,
                        int imageHeight) {
  const double imageArea =
      static_cast<double>(imageWidth) * static_cast<double>(imageHeight);
  if (imageArea <= 0.0) return 0.0;
  return totalCount * static_cast<double>(rect.area()) / imageArea;
}

}  // namespace mcmcpar::partition
