#pragma once

#include "img/image.hpp"
#include "partition/grid.hpp"

namespace mcmcpar::partition {

/// Eq. (5) of the paper: estimate the number of circular artifacts in an
/// image (or subimage) as
///
///   |{(x,y) in M : I(x,y) > theta}| / (pi * r^2)
///
/// "Assuming all pixels passing the threshold criteria belong to a cell
/// nucleus". Clumped artifacts share pixels, so the estimate undershoots in
/// dense regions (Table I: 4.9 vs 6 visual in partition A).
struct DensityEstimate {
  double expectedCount = 0.0;   ///< the eq. 5 value
  std::size_t pixelsAbove = 0;  ///< numerator
  double discArea = 0.0;        ///< denominator (pi r^2)
};

/// Whole-image estimate.
[[nodiscard]] DensityEstimate estimateCount(const img::ImageF& filtered,
                                            float theta, double radius);

/// Per-partition estimate over rect (clipped to the image).
[[nodiscard]] DensityEstimate estimateCount(const img::ImageF& filtered,
                                            float theta, double radius,
                                            const IRect& rect);

/// The naive alternative the paper warns about: assume a uniform artifact
/// distribution and give each partition a share of the whole-image count
/// proportional to its area. Table I's "# obj (density)" row.
[[nodiscard]] double uniformAreaShare(double totalCount, const IRect& rect,
                                      int imageWidth, int imageHeight);

}  // namespace mcmcpar::partition
