#include "rng/distributions.hpp"

#include <cmath>
#include <limits>
#include <numbers>

namespace mcmcpar::rng {

namespace {
constexpr double kNegInf = -std::numeric_limits<double>::infinity();
constexpr double kLogSqrt2Pi = 0.9189385332046727;  // log(sqrt(2*pi))

double normalCdf(double z) noexcept {
  return 0.5 * std::erfc(-z / std::numbers::sqrt2);
}
}  // namespace

double logGamma(double x) noexcept {
#if defined(__GLIBC__) || defined(__APPLE__)
  // std::lgamma writes the process-global `signgam`, a data race when
  // concurrent chains evaluate Poisson priors; lgamma_r keeps the sign in a
  // local instead.
  int sign = 0;
  return lgamma_r(x, &sign);
#else
  return std::lgamma(x);
#endif
}

double logNormalPdf(double x, double mu, double sigma) noexcept {
  const double z = (x - mu) / sigma;
  return -0.5 * z * z - std::log(sigma) - kLogSqrt2Pi;
}

double logPoissonPmf(std::uint64_t k, double mean) noexcept {
  if (mean <= 0.0) return k == 0 ? 0.0 : kNegInf;
  const auto kd = static_cast<double>(k);
  return kd * std::log(mean) - mean - logGamma(kd + 1.0);
}

double logUniformPdf(double x, double lo, double hi) noexcept {
  if (x < lo || x > hi || hi <= lo) return kNegInf;
  return -std::log(hi - lo);
}

double truncatedNormal(Stream& s, double mu, double sigma, double lo,
                       double hi) noexcept {
  // Rejection from the untruncated normal is efficient whenever [lo, hi]
  // carries non-trivial mass, which holds for every proposal in this library
  // (radius and position jitter windows are several sigma wide). Bound the
  // loop and fall back to a uniform draw on the window for pathological
  // parameters so the function stays total.
  for (int attempt = 0; attempt < 256; ++attempt) {
    const double x = s.normal(mu, sigma);
    if (x >= lo && x <= hi) return x;
  }
  return s.uniform(lo, hi);
}

double logTruncatedNormalPdf(double x, double mu, double sigma, double lo,
                             double hi) noexcept {
  if (x < lo || x > hi || hi <= lo) return kNegInf;
  const double mass =
      normalCdf((hi - mu) / sigma) - normalCdf((lo - mu) / sigma);
  if (mass <= 0.0) return kNegInf;
  return logNormalPdf(x, mu, sigma) - std::log(mass);
}

AliasTable::AliasTable(const std::vector<double>& weights) {
  const std::size_t n = weights.size();
  prob_.assign(n, 0.0);
  alias_.assign(n, 0);
  normalised_.assign(n, 0.0);

  double total = 0.0;
  for (double w : weights) total += (w > 0.0 ? w : 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    normalised_[i] = (weights[i] > 0.0 ? weights[i] : 0.0) / total;
  }

  // Walker/Vose: partition scaled probabilities into small/large worklists.
  std::vector<double> scaled(n);
  std::vector<std::size_t> small, large;
  for (std::size_t i = 0; i < n; ++i) {
    scaled[i] = normalised_[i] * static_cast<double>(n);
    (scaled[i] < 1.0 ? small : large).push_back(i);
  }
  while (!small.empty() && !large.empty()) {
    const std::size_t s = small.back();
    small.pop_back();
    const std::size_t l = large.back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    if (scaled[l] < 1.0) {
      large.pop_back();
      small.push_back(l);
    }
  }
  for (std::size_t i : large) prob_[i] = 1.0;
  for (std::size_t i : small) prob_[i] = 1.0;  // numerical leftovers
}

std::size_t AliasTable::sample(Stream& s) const noexcept {
  const std::size_t slot = static_cast<std::size_t>(s.below(prob_.size()));
  return s.uniform() < prob_[slot] ? slot : alias_[slot];
}

}  // namespace mcmcpar::rng
