#pragma once

#include <cstdint>
#include <vector>

#include "rng/stream.hpp"

namespace mcmcpar::rng {

/// Density/log-density helpers shared by priors, proposal ratios and tests.
/// All log densities return -inf outside the support rather than throwing,
/// because MCMC acceptance ratios treat out-of-support states as "reject".

/// Thread-safe log-gamma: std::lgamma writes the process-global `signgam`
/// on glibc/macOS (a data race between concurrent chains); this wrapper
/// routes through lgamma_r there and std::lgamma elsewhere.
[[nodiscard]] double logGamma(double x) noexcept;

/// log N(x; mu, sigma). Precondition: sigma > 0.
[[nodiscard]] double logNormalPdf(double x, double mu, double sigma) noexcept;

/// log of the Poisson pmf P(k; mean). Returns -inf for mean <= 0 unless k==0.
[[nodiscard]] double logPoissonPmf(std::uint64_t k, double mean) noexcept;

/// log of the uniform density on [lo, hi]; -inf outside.
[[nodiscard]] double logUniformPdf(double x, double lo, double hi) noexcept;

/// Draw from N(mu, sigma) truncated to [lo, hi] by rejection; falls back to
/// inverse-CDF-free clamped re-draws. Preconditions: sigma > 0, lo < hi.
[[nodiscard]] double truncatedNormal(Stream& s, double mu, double sigma,
                                     double lo, double hi) noexcept;

/// log density of the truncated normal above (normalised on [lo, hi]).
[[nodiscard]] double logTruncatedNormalPdf(double x, double mu, double sigma,
                                           double lo, double hi) noexcept;

/// Walker alias table for O(1) sampling from a fixed discrete distribution.
///
/// Used to pick MCMC move types with the configured proposal probabilities.
/// Construction is O(n); sampling costs one uniform + one table lookup.
class AliasTable {
 public:
  AliasTable() = default;

  /// Build from non-negative weights (not necessarily normalised).
  /// Precondition: at least one weight > 0.
  explicit AliasTable(const std::vector<double>& weights);

  /// Sample an index in [0, size()).
  [[nodiscard]] std::size_t sample(Stream& s) const noexcept;

  [[nodiscard]] std::size_t size() const noexcept { return prob_.size(); }

  /// Normalised probability of index i (for tests / proposal ratios).
  [[nodiscard]] double probability(std::size_t i) const noexcept {
    return normalised_[i];
  }

 private:
  std::vector<double> prob_;        // acceptance probability per slot
  std::vector<std::size_t> alias_;  // alias index per slot
  std::vector<double> normalised_;  // original weights, normalised
};

}  // namespace mcmcpar::rng
