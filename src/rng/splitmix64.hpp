#pragma once

#include <cstdint>

namespace mcmcpar::rng {

/// SplitMix64 generator (Steele, Lea & Flood 2014).
///
/// Used for two purposes in this library: seeding the state of the main
/// xoshiro256++ generators from a single 64-bit seed, and as a tiny
/// stand-alone generator in tests. It is an equidistributed bijection on
/// 64-bit integers, so distinct seeds always yield distinct state streams.
class SplitMix64 {
 public:
  using result_type = std::uint64_t;

  /// Construct from a 64-bit seed. Any value (including 0) is valid.
  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  /// Next 64-bit value.
  std::uint64_t next() noexcept;

  /// UniformRandomBitGenerator interface.
  std::uint64_t operator()() noexcept { return next(); }
  static constexpr std::uint64_t min() noexcept { return 0; }
  static constexpr std::uint64_t max() noexcept { return ~0ULL; }

 private:
  std::uint64_t state_;
};

}  // namespace mcmcpar::rng
