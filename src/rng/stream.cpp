#include "rng/stream.hpp"

#include <array>
#include <cmath>
#include <numbers>

#include "rng/distributions.hpp"
#include "rng/splitmix64.hpp"

namespace mcmcpar::rng {

Stream Stream::substream(unsigned k) const noexcept {
  Xoshiro256 g = gen_;
  for (unsigned i = 0; i < k; ++i) g.jump();
  return Stream(g);
}

Stream Stream::derive(std::uint64_t tag) const noexcept {
  // Absorb each of the four parent state words (plus the tag) through a
  // chained SplitMix64, drawing one child state word per absorption step.
  // Child word i therefore depends on parent words 0..i and the tag, so
  // parents differing in any state word — including only the high ones —
  // derive different children. (Folding the 256-bit state into a single
  // 64-bit seed would confine all derived streams to a 2^64 subspace and
  // let distinct parents collide.)
  const auto& s = gen_.state();
  std::array<std::uint64_t, 4> child;
  std::uint64_t h = tag ^ 0x9e3779b97f4a7c15ULL;
  for (std::size_t i = 0; i < 4; ++i) {
    SplitMix64 mix(h ^ s[i]);
    h = mix.next();
    child[i] = mix.next();
  }
  // Xoshiro256 requires a not-all-zero state (probability 2^-256, but free
  // to guard).
  if ((child[0] | child[1] | child[2] | child[3]) == 0) child[0] = 1;
  return Stream(Xoshiro256(child));
}

double Stream::uniform() noexcept {
  // 53 high bits -> double in [0,1).
  return static_cast<double>(gen_.next() >> 11) * 0x1.0p-53;
}

double Stream::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::uint64_t Stream::below(std::uint64_t n) noexcept {
  // Lemire 2019 unbiased bounded generation.
  std::uint64_t x = gen_.next();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    const std::uint64_t threshold = (~n + 1) % n;  // 2^64 mod n
    while (lo < threshold) {
      x = gen_.next();
      m = static_cast<__uint128_t>(x) * n;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Stream::between(std::int64_t lo, std::int64_t hi) noexcept {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(below(span));
}

bool Stream::bernoulli(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Stream::normal() noexcept {
  if (hasCachedNormal_) {
    hasCachedNormal_ = false;
    return cachedNormal_;
  }
  // Box-Muller; u1 must be > 0.
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cachedNormal_ = r * std::sin(theta);
  hasCachedNormal_ = true;
  return r * std::cos(theta);
}

double Stream::exponential(double lambda) noexcept {
  double u = uniform();
  while (u <= 0.0) u = uniform();
  return -std::log(u) / lambda;
}

std::uint64_t Stream::poisson(double mean) noexcept {
  if (mean <= 0.0) return 0;
  if (mean < 30.0) {
    // Knuth: multiply uniforms until the product drops below e^-mean.
    const double limit = std::exp(-mean);
    std::uint64_t k = 0;
    double prod = uniform();
    while (prod > limit) {
      ++k;
      prod *= uniform();
    }
    return k;
  }
  // PTRS transformed-rejection (Hormann 1993) for large means.
  const double b = 0.931 + 2.53 * std::sqrt(mean);
  const double a = -0.059 + 0.02483 * b;
  const double invAlpha = 1.1239 + 1.1328 / (b - 3.4);
  const double vr = 0.9277 - 3.6224 / (b - 2.0);
  for (;;) {
    const double u = uniform() - 0.5;
    const double v = uniform();
    const double us = 0.5 - std::abs(u);
    const auto k = static_cast<std::int64_t>(
        std::floor((2.0 * a / us + b) * u + mean + 0.43));
    if (us >= 0.07 && v <= vr) return static_cast<std::uint64_t>(k);
    if (k < 0 || (us < 0.013 && v > us)) continue;
    const double logMean = std::log(mean);
    if (std::log(v * invAlpha / (a / (us * us) + b)) <=
        static_cast<double>(k) * logMean - mean -
            logGamma(static_cast<double>(k) + 1.0)) {
      return static_cast<std::uint64_t>(k);
    }
  }
}

}  // namespace mcmcpar::rng
