#pragma once

#include <cstdint>

#include "rng/xoshiro256.hpp"

namespace mcmcpar::rng {

/// A reproducible random stream with convenience draws.
///
/// `Stream` wraps a Xoshiro256 generator and adds the floating-point and
/// integer draws the MCMC code needs. Substreams are derived either by
/// `substream(k)` (k jumps ahead: disjoint blocks of 2^128 draws) or by
/// `derive(tag)` (hash-mixed reseed; used when an unbounded number of
/// independent streams is needed, e.g. one per (phase, partition) pair).
class Stream {
 public:
  /// Root stream from a 64-bit seed.
  explicit Stream(std::uint64_t seed = 42) noexcept : gen_(seed) {}

  explicit Stream(Xoshiro256 gen) noexcept : gen_(gen) {}

  /// The k-th jump-ahead substream (this stream advanced k * 2^128 draws).
  /// The parent is unaffected. Substreams with distinct k never overlap.
  [[nodiscard]] Stream substream(unsigned k) const noexcept;

  /// Derive an independent stream by mixing `tag` into the state hash.
  /// Streams derived with distinct tags are statistically independent.
  [[nodiscard]] Stream derive(std::uint64_t tag) const noexcept;

  /// Next raw 64-bit word.
  std::uint64_t bits() noexcept { return gen_.next(); }

  /// Uniform double in [0, 1) with 53-bit resolution.
  double uniform() noexcept;

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [0, n). Precondition: n > 0. Uses Lemire's
  /// multiply-shift rejection method (no modulo bias).
  std::uint64_t below(std::uint64_t n) noexcept;

  /// Uniform integer in [lo, hi] inclusive. Precondition: lo <= hi.
  std::int64_t between(std::int64_t lo, std::int64_t hi) noexcept;

  /// True with probability p (p clamped to [0,1]).
  bool bernoulli(double p) noexcept;

  /// Standard normal via Box-Muller with cached second value.
  double normal() noexcept;

  /// Normal with mean mu, standard deviation sigma.
  double normal(double mu, double sigma) noexcept { return mu + sigma * normal(); }

  /// Exponential with rate lambda (> 0).
  double exponential(double lambda) noexcept;

  /// Poisson draw; Knuth's method for mean < 30, PTRS rejection otherwise.
  std::uint64_t poisson(double mean) noexcept;

  /// Underlying generator (tests, serialisation).
  [[nodiscard]] const Xoshiro256& generator() const noexcept { return gen_; }

  /// UniformRandomBitGenerator interface for <random> interop.
  using result_type = std::uint64_t;
  std::uint64_t operator()() noexcept { return gen_.next(); }
  static constexpr std::uint64_t min() noexcept { return 0; }
  static constexpr std::uint64_t max() noexcept { return ~0ULL; }

 private:
  Xoshiro256 gen_;
  double cachedNormal_ = 0.0;
  bool hasCachedNormal_ = false;
};

}  // namespace mcmcpar::rng
