#include "rng/xoshiro256.hpp"

#include "rng/splitmix64.hpp"

namespace mcmcpar::rng {

namespace {

inline std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Xoshiro256::Xoshiro256(std::uint64_t seed) noexcept {
  SplitMix64 sm(seed);
  for (auto& w : s_) w = sm.next();
  // All-zero state is the one invalid state; SplitMix64 cannot produce four
  // consecutive zeros from any seed, but guard anyway for belt and braces.
  if (s_[0] == 0 && s_[1] == 0 && s_[2] == 0 && s_[3] == 0) s_[0] = 1;
}

std::uint64_t Xoshiro256::next() noexcept {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

void Xoshiro256::applyJump(const std::array<std::uint64_t, 4>& table) noexcept {
  std::array<std::uint64_t, 4> acc{0, 0, 0, 0};
  for (std::uint64_t word : table) {
    for (int b = 0; b < 64; ++b) {
      if (word & (std::uint64_t{1} << b)) {
        acc[0] ^= s_[0];
        acc[1] ^= s_[1];
        acc[2] ^= s_[2];
        acc[3] ^= s_[3];
      }
      next();
    }
  }
  s_ = acc;
}

void Xoshiro256::jump() noexcept {
  applyJump({0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL,
             0xa9582618e03fc9aaULL, 0x39abdc4529b1661cULL});
}

void Xoshiro256::longJump() noexcept {
  applyJump({0x76e15d3efefdcbbfULL, 0xc5004e441c522fb3ULL,
             0x77710069854ee241ULL, 0x39109bb02acbe635ULL});
}

}  // namespace mcmcpar::rng
