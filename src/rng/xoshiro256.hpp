#pragma once

#include <array>
#include <cstdint>

namespace mcmcpar::rng {

/// xoshiro256++ 1.0 (Blackman & Vigna 2019).
///
/// The library's workhorse generator: 256 bits of state, period 2^256-1,
/// passes BigCrush, and supports O(1)-space `jump()` / `longJump()`
/// operations that advance the stream by 2^128 / 2^192 steps. Jumps are what
/// make parallel MCMC reproducible: each partition/phase derives a disjoint
/// substream, so results do not depend on thread scheduling.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  /// Seed all 256 bits of state from one 64-bit seed via SplitMix64
  /// (the seeding procedure recommended by the xoshiro authors).
  explicit Xoshiro256(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept;

  /// Construct from explicit state; must not be all-zero.
  explicit Xoshiro256(const std::array<std::uint64_t, 4>& state) noexcept
      : s_(state) {}

  /// Next 64-bit value.
  std::uint64_t next() noexcept;

  /// UniformRandomBitGenerator interface (usable with <random>).
  std::uint64_t operator()() noexcept { return next(); }
  static constexpr std::uint64_t min() noexcept { return 0; }
  static constexpr std::uint64_t max() noexcept { return ~0ULL; }

  /// Advance this generator 2^128 steps. 2^128 non-overlapping substreams
  /// of length 2^128 each are reachable by repeated jumps.
  void jump() noexcept;

  /// Advance this generator 2^192 steps (for partitioning at a coarser
  /// level than jump(), e.g. one longJump per worker process).
  void longJump() noexcept;

  /// Access raw state (serialisation, tests).
  [[nodiscard]] const std::array<std::uint64_t, 4>& state() const noexcept {
    return s_;
  }

 private:
  void applyJump(const std::array<std::uint64_t, 4>& table) noexcept;

  std::array<std::uint64_t, 4> s_;
};

}  // namespace mcmcpar::rng
