#include "serve/fair_queue.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace mcmcpar::serve {

namespace {
/// Floor for job costs: a zero predicted cost must still consume a sliver
/// of bandwidth or a client could starve others with free jobs.
constexpr double kMinCostSeconds = 1e-9;
}  // namespace

DeficitScheduler::DeficitScheduler(double quantumSeconds)
    : quantum_(std::max(quantumSeconds, kMinCostSeconds)) {}

void DeficitScheduler::setWeight(const std::string& client, unsigned weight) {
  weights_[client] = std::clamp(weight, 1u, 1000u);
}

unsigned DeficitScheduler::weight(const std::string& client) const {
  const auto it = weights_.find(client);
  return it == weights_.end() ? 1u : it->second;
}

void DeficitScheduler::enqueue(const std::string& client, std::uint64_t id,
                               double costSeconds) {
  Active& active = active_[client];
  if (active.queue.empty()) {
    // Joining (or rejoining) the round: back of the visit order, no
    // banked credit.
    active.deficit = 0.0;
    round_.push_back(client);
  }
  active.queue.push_back(Entry{id, std::max(costSeconds, kMinCostSeconds)});
  ++size_;
}

bool DeficitScheduler::remove(const std::string& client, std::uint64_t id) {
  const auto it = active_.find(client);
  if (it == active_.end()) return false;
  std::deque<Entry>& queue = it->second.queue;
  const auto entry =
      std::find_if(queue.begin(), queue.end(),
                   [&](const Entry& e) { return e.id == id; });
  if (entry == queue.end()) return false;
  queue.erase(entry);
  --size_;
  if (queue.empty()) {
    round_.erase(std::find(round_.begin(), round_.end(), client));
    active_.erase(it);
  }
  return true;
}

std::optional<DispatchedJob> DeficitScheduler::dispatchNext() {
  if (round_.empty()) return std::nullopt;
  // Fast-forward: how many whole rounds until each client's head job fits
  // its deficit? The minimum (ties to the earliest client in round order)
  // wins; crediting everyone that many rounds reproduces the classic DRR
  // schedule without spinning the empty rounds.
  std::size_t winnerPos = 0;
  double winnerRounds = std::numeric_limits<double>::infinity();
  for (std::size_t pos = 0; pos < round_.size(); ++pos) {
    const Active& active = active_.at(round_[pos]);
    const double head = active.queue.front().cost;
    if (active.deficit >= head) {
      winnerPos = pos;
      winnerRounds = 0.0;
      break;  // first already-eligible client in round order serves now
    }
    const double perRound =
        quantum_ * static_cast<double>(weight(round_[pos]));
    const double rounds = std::ceil((head - active.deficit) / perRound);
    if (rounds < winnerRounds) {
      winnerRounds = rounds;
      winnerPos = pos;
    }
  }
  if (winnerRounds > 0.0) {
    for (const std::string& client : round_) {
      Active& active = active_.at(client);
      active.deficit +=
          winnerRounds * quantum_ * static_cast<double>(weight(client));
    }
  }
  const std::string client = round_[winnerPos];
  Active& active = active_.at(client);
  const Entry entry = active.queue.front();
  active.queue.pop_front();
  active.deficit -= entry.cost;
  --size_;
  round_.erase(round_.begin() + static_cast<std::ptrdiff_t>(winnerPos));
  if (active.queue.empty()) {
    active_.erase(client);  // leaving the round forfeits leftover deficit
  } else {
    round_.push_back(client);
  }
  return DispatchedJob{entry.id, client, entry.cost};
}

std::vector<SchedulerClientView> DeficitScheduler::snapshot() const {
  std::vector<SchedulerClientView> views;
  views.reserve(round_.size());
  for (const std::string& client : round_) {
    const Active& active = active_.at(client);
    SchedulerClientView view;
    view.client = client;
    view.weight = weight(client);
    view.queued = active.queue.size();
    view.deficit = active.deficit;
    for (const Entry& entry : active.queue) view.costQueued += entry.cost;
    views.push_back(std::move(view));
  }
  return views;
}

}  // namespace mcmcpar::serve
