#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <string>
#include <vector>

/// Cost-aware weighted-fair admission for the serving layer: a deficit
/// round-robin (DRR) scheduler over per-client queues, where each job's
/// currency is its predicted cost in seconds (core/runtime_predictor)
/// instead of a packet length. Pure data structure — no clocks, no
/// threads, no locks — so tests/test_scheduling.cpp can assert exact
/// dispatch orders and deficit balances from scripted costs; serve::JobQueue
/// wraps it under its own mutex.
namespace mcmcpar::serve {

/// What dispatchNext() hands back: which job runs next and the deficit
/// charge it carried.
struct DispatchedJob {
  std::uint64_t id = 0;
  std::string client;
  double costSeconds = 0.0;
};

/// One client's public state, for STATS and tests.
struct SchedulerClientView {
  std::string client;
  unsigned weight = 1;
  std::size_t queued = 0;
  double deficit = 0.0;       ///< unspent dispatch credit, in seconds
  double costQueued = 0.0;    ///< predicted seconds waiting in the queue
};

/// Weighted deficit-round-robin over named per-client FIFO queues.
///
/// Classic DRR, fast-forwarded: instead of spinning empty rounds until
/// some head-of-line job fits its client's deficit, dispatchNext()
/// computes for every active client how many whole rounds it needs before
/// its head job fits (`ceil((headCost - deficit) / (quantum * weight))`),
/// credits every active client that many rounds at once, and serves the
/// client needing fewest rounds (ties broken by round order). The result
/// is byte-for-byte the classic schedule at O(clients) per dispatch with
/// no busy loop. After a dispatch the winner rotates to the back of the
/// round; a client whose queue empties leaves the round and forfeits its
/// remaining deficit (standard DRR, keeps idle clients from banking
/// unbounded credit).
class DeficitScheduler {
 public:
  explicit DeficitScheduler(double quantumSeconds = 0.25);

  /// Set a client's scheduling weight (share of service), clamped to
  /// [1, 1000]. Applies to queued and future jobs alike; persists after
  /// the client's queue drains.
  void setWeight(const std::string& client, unsigned weight);
  [[nodiscard]] unsigned weight(const std::string& client) const;

  /// Append a job to `client`'s FIFO with its predicted cost in seconds
  /// (floored at a tiny positive charge so zero-cost jobs still consume
  /// bandwidth). A newly active client joins the back of the round with
  /// zero deficit.
  void enqueue(const std::string& client, std::uint64_t id,
               double costSeconds);

  /// Remove a queued job (cancellation). Returns false when the job is
  /// not queued under that client.
  bool remove(const std::string& client, std::uint64_t id);

  /// Pop the next job per the DRR schedule; nullopt when nothing queued.
  [[nodiscard]] std::optional<DispatchedJob> dispatchNext();

  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  /// Active clients in round order (tests and STATS).
  [[nodiscard]] std::vector<SchedulerClientView> snapshot() const;

 private:
  struct Entry {
    std::uint64_t id = 0;
    double cost = 0.0;
  };
  struct Active {
    double deficit = 0.0;
    std::deque<Entry> queue;
  };

  double quantum_;
  std::map<std::string, Active> active_;
  std::vector<std::string> round_;  ///< active clients, DRR visit order
  std::map<std::string, unsigned> weights_;
  std::size_t size_ = 0;
};

}  // namespace mcmcpar::serve
