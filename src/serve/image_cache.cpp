#include "serve/image_cache.hpp"

#include <chrono>
#include <filesystem>
#include <system_error>
#include <utility>

#include "img/pnm_io.hpp"

namespace mcmcpar::serve {

namespace {

/// File identity at one instant: mtime (ns) and byte size. Throws PnmError
/// on stat failure so callers see one error type for "cannot use this path".
std::pair<std::int64_t, std::uintmax_t> fileIdentity(const std::string& path) {
  std::error_code ec;
  const auto mtime = std::filesystem::last_write_time(path, ec);
  if (ec) {
    throw img::PnmError("cannot stat '" + path + "': " + ec.message());
  }
  const std::uintmax_t size = std::filesystem::file_size(path, ec);
  if (ec) {
    throw img::PnmError("cannot stat '" + path + "': " + ec.message());
  }
  const std::int64_t mtimeNs =
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          mtime.time_since_epoch())
          .count();
  return {mtimeNs, size};
}

}  // namespace

ImageCache::ImageCache(std::size_t capacityBytes)
    : capacityBytes_(capacityBytes) {}

std::shared_ptr<const img::ImageF> ImageCache::get(const std::string& path) {
  const auto [mtimeNs, fileSize] = fileIdentity(path);

  {
    const std::scoped_lock lock(mutex_);
    const auto it = index_.find(path);
    if (it != index_.end() && it->second->mtimeNs == mtimeNs &&
        it->second->fileSize == fileSize) {
      ++hits_;
      lru_.splice(lru_.begin(), lru_, it->second);  // bump to front
      return it->second->image;
    }
  }

  // Miss or stale: decode outside the lock (PGM reads can be slow and must
  // not serialise concurrent hits on other paths).
  auto image = std::make_shared<const img::ImageF>(
      img::toF(img::readPgm(path)));
  const std::size_t bytes = image->pixelCount() * sizeof(float);

  const std::scoped_lock lock(mutex_);
  ++misses_;
  const auto it = index_.find(path);
  if (it != index_.end()) {  // drop the stale (or racing) entry
    bytes_ -= it->second->bytes;
    lru_.erase(it->second);
    index_.erase(it);
  }
  if (capacityBytes_ != 0 && bytes > capacityBytes_) {
    return image;  // would evict everything and still not fit: pass through
  }
  lru_.push_front(Entry{path, image, mtimeNs, fileSize, bytes});
  index_[path] = lru_.begin();
  bytes_ += bytes;
  while (capacityBytes_ != 0 && bytes_ > capacityBytes_ && lru_.size() > 1) {
    const Entry& victim = lru_.back();
    bytes_ -= victim.bytes;
    index_.erase(victim.path);
    lru_.pop_back();
    ++evictions_;
  }
  return image;
}

ImageCacheStats ImageCache::stats() const {
  const std::scoped_lock lock(mutex_);
  ImageCacheStats stats;
  stats.hits = hits_;
  stats.misses = misses_;
  stats.evictions = evictions_;
  stats.entries = lru_.size();
  stats.bytes = bytes_;
  stats.capacityBytes = capacityBytes_;
  return stats;
}

void ImageCache::clear() {
  const std::scoped_lock lock(mutex_);
  lru_.clear();
  index_.clear();
  bytes_ = 0;
}

}  // namespace mcmcpar::serve
