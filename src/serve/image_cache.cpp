#include "serve/image_cache.hpp"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <iterator>
#include <system_error>
#include <utility>

#include "img/pnm_io.hpp"

namespace mcmcpar::serve {

namespace {

/// File identity at one instant: mtime (ns) and byte size. Throws PnmError
/// on stat failure so callers see one error type for "cannot use this path".
std::pair<std::int64_t, std::uintmax_t> fileIdentity(const std::string& path) {
  std::error_code ec;
  const auto mtime = std::filesystem::last_write_time(path, ec);
  if (ec) {
    throw img::PnmError("cannot stat '" + path + "': " + ec.message());
  }
  const std::uintmax_t size = std::filesystem::file_size(path, ec);
  if (ec) {
    throw img::PnmError("cannot stat '" + path + "': " + ec.message());
  }
  const std::int64_t mtimeNs =
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          mtime.time_since_epoch())
          .count();
  return {mtimeNs, size};
}

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

void fnvMix(std::uint64_t& hash, const void* data, std::size_t size) noexcept {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= kFnvPrime;
  }
}

}  // namespace

std::uint64_t ImageCache::hashFrame(int width, int height, int bytesPerPixel,
                                    const void* data,
                                    std::size_t size) noexcept {
  std::uint64_t hash = kFnvOffset;
  const std::int64_t header[3] = {width, height, bytesPerPixel};
  fnvMix(hash, header, sizeof(header));
  fnvMix(hash, data, size);
  return hash;
}

std::uint64_t ImageCache::hashImage(const img::ImageU8& image) noexcept {
  return hashFrame(image.width(), image.height(), 1, image.pixels().data(),
                   image.pixelCount());
}

std::string ImageCache::hashHex(std::uint64_t hash) {
  char buffer[17];
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(hash));
  return buffer;
}

ImageCache::ImageCache(std::size_t capacityBytes)
    : capacityBytes_(capacityBytes) {}

std::shared_ptr<const img::ImageF> ImageCache::get(const std::string& path,
                                                   bool bypass) {
  const auto [mtimeNs, fileSize] = fileIdentity(path);

  {
    const std::scoped_lock lock(mutex_);
    const auto known = identity_.find(path);
    if (known != identity_.end() && known->second.mtimeNs == mtimeNs &&
        known->second.fileSize == fileSize) {
      const auto it = index_.find(known->second.hash);
      if (it != index_.end()) {
        ++hits_;
        lru_.splice(lru_.begin(), lru_, it->second);  // bump to front
        return it->second->image;
      }
      identity_.erase(known);  // the content entry was evicted meanwhile
    }
  }

  // Unknown or stale path: decode outside the lock (PGM reads can be slow
  // and must not serialise concurrent hits on other paths).
  const img::ImageU8 raw = img::readPgm(path);
  const std::uint64_t hash = hashImage(raw);
  auto image = std::make_shared<const img::ImageF>(img::toF(raw));
  const std::size_t bytes = image->pixelCount() * sizeof(float);

  const std::scoped_lock lock(mutex_);
  const auto it = index_.find(hash);
  if (it != index_.end()) {
    // Content dedup: these bytes are already resident (another path, or an
    // upload). We paid the decode, so the load still counts as a miss, but
    // the path now stat-hits the shared entry.
    ++misses_;
    identity_[path] = PathIdentity{mtimeNs, fileSize, hash};
    lru_.splice(lru_.begin(), lru_, it->second);
    return it->second->image;
  }
  ++misses_;
  if (bypass) {
    ++oneshotBypasses_;  // one-shot: never insert, never evict others
    return image;
  }
  if (capacityBytes_ != 0 && bytes > capacityBytes_) {
    return image;  // would evict everything and still not fit: pass through
  }
  identity_[path] = PathIdentity{mtimeNs, fileSize, hash};
  return insertLocked(hash, Entry{hash, std::move(image), bytes});
}

std::shared_ptr<const img::ImageF> ImageCache::intern(std::uint64_t hash,
                                                      img::ImageF image,
                                                      bool bypass) {
  auto shared = std::make_shared<const img::ImageF>(std::move(image));
  const std::size_t bytes = shared->pixelCount() * sizeof(float);

  const std::scoped_lock lock(mutex_);
  const auto it = index_.find(hash);
  if (it != index_.end()) {
    ++hits_;
    lru_.splice(lru_.begin(), lru_, it->second);
    return it->second->image;
  }
  ++misses_;
  if (bypass) {
    ++oneshotBypasses_;
    return shared;
  }
  if (capacityBytes_ != 0 && bytes > capacityBytes_) return shared;
  ++interned_;
  return insertLocked(hash, Entry{hash, std::move(shared), bytes});
}

std::shared_ptr<const img::ImageF> ImageCache::insertLocked(std::uint64_t hash,
                                                            Entry entry) {
  std::shared_ptr<const img::ImageF> image = entry.image;
  bytes_ += entry.bytes;
  lru_.push_front(std::move(entry));
  index_[hash] = lru_.begin();
  while (capacityBytes_ != 0 && bytes_ > capacityBytes_ && lru_.size() > 1) {
    const Entry& victim = lru_.back();
    bytes_ -= victim.bytes;
    index_.erase(victim.hash);
    // Paths that resolved to the victim must re-load next time; the
    // identity map is small (one entry per distinct path ever seen).
    for (auto it = identity_.begin(); it != identity_.end();) {
      it = it->second.hash == victim.hash ? identity_.erase(it)
                                          : std::next(it);
    }
    lru_.pop_back();
    ++evictions_;
  }
  return image;
}

ImageCacheStats ImageCache::stats() const {
  const std::scoped_lock lock(mutex_);
  ImageCacheStats stats;
  stats.hits = hits_;
  stats.misses = misses_;
  stats.evictions = evictions_;
  stats.oneshotBypasses = oneshotBypasses_;
  stats.interned = interned_;
  stats.entries = lru_.size();
  stats.bytes = bytes_;
  stats.capacityBytes = capacityBytes_;
  return stats;
}

void ImageCache::clear() {
  const std::scoped_lock lock(mutex_);
  lru_.clear();
  index_.clear();
  identity_.clear();
  bytes_ = 0;
}

}  // namespace mcmcpar::serve
