#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "img/image.hpp"

namespace mcmcpar::serve {

/// Cache counters; a consistent snapshot under the cache mutex.
struct ImageCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;      ///< loads/interns that found no resident entry
  std::uint64_t evictions = 0;   ///< LRU entries dropped for capacity
  std::uint64_t oneshotBypasses = 0;  ///< misses passed through uncached
                                      ///< because the caller flagged oneshot
  std::uint64_t interned = 0;    ///< uploaded frames inserted via intern()
  std::size_t entries = 0;
  std::size_t bytes = 0;         ///< resident pixel bytes
  std::size_t capacityBytes = 0;

  /// hits / (hits + misses), 0 with no lookups. The single definition of
  /// the cache hit-rate — STATS, METRICS and the serve shutdown summary
  /// all derive from it so the numbers cannot disagree.
  [[nodiscard]] double hitRate() const noexcept {
    const std::uint64_t lookups = hits + misses;
    return lookups == 0
               ? 0.0
               : static_cast<double>(hits) / static_cast<double>(lookups);
  }
};

/// A thread-safe LRU cache of decoded images keyed by *content hash*.
///
/// Once image bytes travel inside the protocol (UPLOAD frames) as well as
/// by path, path+mtime stops being an identity: two paths with identical
/// bytes are one image, an upload has no path at all, and a re-uploaded
/// frame must hit. Entries are therefore keyed by a 64-bit FNV-1a hash of
/// the frame (dimensions + raw payload); a path -> (mtime, size, hash)
/// side-index keeps the hot filesystem path stat-only, so repeated gets of
/// an unchanged file never re-read or re-hash it.
///
/// One-shot consumers (shard tile jobs) pass `bypass = true`: a resident
/// entry is still returned (hits are free), but a miss is NOT inserted —
/// never-reused tiles cannot evict warm entries.
///
/// Entries hand out shared_ptr snapshots, so eviction never invalidates an
/// image a running job still borrows.
class ImageCache {
 public:
  /// Hold at most `capacityBytes` of decoded pixels (0 = unbounded). An
  /// image larger than the whole capacity is returned uncached.
  explicit ImageCache(std::size_t capacityBytes);

  ImageCache(const ImageCache&) = delete;
  ImageCache& operator=(const ImageCache&) = delete;

  /// 64-bit FNV-1a over a binary frame: dimensions, bytes-per-pixel and the
  /// raw payload. The canonical content identity of the data plane — the
  /// UPLOAD reply echoes it and the cache keys on it.
  [[nodiscard]] static std::uint64_t hashFrame(int width, int height,
                                               int bytesPerPixel,
                                               const void* data,
                                               std::size_t size) noexcept;

  /// hashFrame over an 8-bit image (what a path load decodes to).
  [[nodiscard]] static std::uint64_t hashImage(
      const img::ImageU8& image) noexcept;

  /// The 16-lowercase-hex-digit spelling used on the wire.
  [[nodiscard]] static std::string hashHex(std::uint64_t hash);

  /// Fetch the decoded image at `path`, loading it on a miss. Two paths
  /// with identical bytes share one entry. Throws img::PnmError on
  /// unreadable or malformed files. `bypass`: do not insert on a miss.
  [[nodiscard]] std::shared_ptr<const img::ImageF> get(
      const std::string& path, bool bypass = false);

  /// Intern an already-decoded image under its content `hash` (the UPLOAD
  /// path). Returns the resident image when the hash already has an entry
  /// (dedup), otherwise shares `image` — inserting it unless `bypass`.
  [[nodiscard]] std::shared_ptr<const img::ImageF> intern(std::uint64_t hash,
                                                          img::ImageF image,
                                                          bool bypass);

  [[nodiscard]] ImageCacheStats stats() const;

  /// Drop every entry (counters survive).
  void clear();

 private:
  struct Entry {
    std::uint64_t hash = 0;
    std::shared_ptr<const img::ImageF> image;
    std::size_t bytes = 0;  ///< decoded pixel bytes
  };
  /// What `path` looked like when it last resolved to `hash`.
  struct PathIdentity {
    std::int64_t mtimeNs = 0;
    std::uintmax_t fileSize = 0;
    std::uint64_t hash = 0;
  };

  /// Insert under the lock, then evict LRU victims over capacity. Returns
  /// the inserted image.
  std::shared_ptr<const img::ImageF> insertLocked(std::uint64_t hash,
                                                  Entry entry);

  mutable std::mutex mutex_;
  std::list<Entry> lru_;  ///< front = most recently used
  std::map<std::uint64_t, std::list<Entry>::iterator> index_;
  std::map<std::string, PathIdentity> identity_;  ///< stat-only fast path
  std::size_t capacityBytes_;
  std::size_t bytes_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t oneshotBypasses_ = 0;
  std::uint64_t interned_ = 0;
};

}  // namespace mcmcpar::serve
