#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "img/image.hpp"

namespace mcmcpar::serve {

/// Cache counters; a consistent snapshot under the cache mutex.
struct ImageCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;      ///< loads (first sight or revalidation)
  std::uint64_t evictions = 0;   ///< LRU entries dropped for capacity
  std::size_t entries = 0;
  std::size_t bytes = 0;         ///< resident pixel bytes
  std::size_t capacityBytes = 0;
};

/// A thread-safe LRU cache of decoded images keyed by path + mtime + size.
///
/// The serving front-end amortises PGM decode across requests: the first
/// request for a path pays the read, later ones hit the cache, and a file
/// that changed on disk (different mtime or byte size) is transparently
/// reloaded. Entries hand out shared_ptr snapshots, so eviction never
/// invalidates an image a running job still borrows.
class ImageCache {
 public:
  /// Hold at most `capacityBytes` of decoded pixels (0 = unbounded). An
  /// image larger than the whole capacity is returned uncached.
  explicit ImageCache(std::size_t capacityBytes);

  ImageCache(const ImageCache&) = delete;
  ImageCache& operator=(const ImageCache&) = delete;

  /// Fetch the decoded image at `path`, loading it on a miss. Throws
  /// img::PnmError on unreadable or malformed files.
  [[nodiscard]] std::shared_ptr<const img::ImageF> get(
      const std::string& path);

  [[nodiscard]] ImageCacheStats stats() const;

  /// Drop every entry (counters survive).
  void clear();

 private:
  struct Entry {
    std::string path;
    std::shared_ptr<const img::ImageF> image;
    std::int64_t mtimeNs = 0;    ///< file mtime at load time
    std::uintmax_t fileSize = 0; ///< file byte size at load time
    std::size_t bytes = 0;       ///< decoded pixel bytes
  };

  mutable std::mutex mutex_;
  std::list<Entry> lru_;  ///< front = most recently used
  std::map<std::string, std::list<Entry>::iterator> index_;
  std::size_t capacityBytes_;
  std::size_t bytes_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace mcmcpar::serve
