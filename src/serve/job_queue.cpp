#include "serve/job_queue.hpp"

#include <algorithm>
#include <utility>

#include "engine/options.hpp"

namespace mcmcpar::serve {

const char* toString(JobState state) noexcept {
  switch (state) {
    case JobState::Queued:
      return "queued";
    case JobState::Running:
      return "running";
    case JobState::Done:
      return "done";
    case JobState::Failed:
      return "failed";
    case JobState::Cancelled:
      return "cancelled";
  }
  return "unknown";
}

bool isTerminal(JobState state) noexcept {
  return state == JobState::Done || state == JobState::Failed ||
         state == JobState::Cancelled;
}

JobQueue::JobQueue(std::size_t retainLimit, std::size_t maxQueued)
    : retainLimit_(retainLimit), maxQueued_(maxQueued) {}

std::uint64_t JobQueue::submit(JobSpec spec, double predictedCostSeconds) {
  std::uint64_t id = 0;
  {
    const std::scoped_lock lock(mutex_);
    if (closed_) {
      throw engine::EngineError("server is shutting down; job rejected");
    }
    if (maxQueued_ != 0 && counts_.queued >= maxQueued_) {
      throw QueueFullError("queue full: " + std::to_string(counts_.queued) +
                           " job(s) already queued (max " +
                           std::to_string(maxQueued_) +
                           "); retry after the backlog drains");
    }
    id = nextId_++;
    Record record;
    record.client = spec.client.empty() ? "default" : spec.client;
    record.predictedCostSeconds = std::max(predictedCostSeconds, 0.0);
    record.admitted = std::chrono::steady_clock::now();
    if (spec.clientWeight) {
      scheduler_.setWeight(record.client, *spec.clientWeight);
    }
    scheduler_.enqueue(record.client, id, record.predictedCostSeconds);
    ClientStats& stats = clients_[record.client];
    stats.client = record.client;
    stats.weight = scheduler_.weight(record.client);
    ++stats.submitted;
    ++stats.queued;
    stats.costQueued += record.predictedCostSeconds;
    record.spec = std::move(spec);
    records_.emplace(id, std::move(record));
    ++counts_.submitted;
    ++counts_.queued;
  }
  jobReady_.notify_one();
  return id;
}

std::optional<std::uint64_t> JobQueue::waitNext(
    std::chrono::milliseconds timeout) {
  std::unique_lock lock(mutex_);
  jobReady_.wait_for(lock, timeout,
                     [this] { return !scheduler_.empty() || closed_; });
  while (true) {
    const std::optional<DispatchedJob> next = scheduler_.dispatchNext();
    if (!next) return std::nullopt;
    auto& record = records_.at(next->id);
    if (record.state != JobState::Queued) continue;  // defensive
    record.state = JobState::Running;
    record.queueSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      record.admitted)
            .count();
    --counts_.queued;
    ++counts_.running;
    ClientStats& stats = clients_[record.client];
    if (stats.queued > 0) --stats.queued;
    stats.costQueued =
        std::max(0.0, stats.costQueued - record.predictedCostSeconds);
    ++stats.served;
    stats.costServed += record.predictedCostSeconds;
    return next->id;
  }
}

CancelOutcome JobQueue::cancel(std::uint64_t id) {
  std::unique_lock lock(mutex_);
  const auto it = records_.find(id);
  if (it == records_.end()) return CancelOutcome::Unknown;
  Record& record = it->second;
  record.cancelRequested = true;
  if (isTerminal(record.state)) return CancelOutcome::AlreadyTerminal;
  if (record.state == JobState::Running) return CancelOutcome::RunningFlagged;
  // Queued: terminal right away, with an empty cancelled report. The job
  // leaves its client's scheduler bucket so it can never dispatch.
  (void)scheduler_.remove(record.client, id);
  ClientStats& stats = clients_[record.client];
  if (stats.queued > 0) --stats.queued;
  stats.costQueued =
      std::max(0.0, stats.costQueued - record.predictedCostSeconds);
  record.state = JobState::Cancelled;
  record.report.strategy = record.spec.strategy;
  record.report.cancelled = true;
  record.report.threadsUsed = 0;
  record.latencySeconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    record.admitted)
          .count();
  record.queueSeconds = record.latencySeconds;
  --counts_.queued;
  ++counts_.cancelled;
  terminal_.push_back(id);
  pruneLocked();
  lock.unlock();
  idle_.notify_all();
  return CancelOutcome::QueuedCancelled;
}

bool JobQueue::cancelRequested(std::uint64_t id) const {
  const std::scoped_lock lock(mutex_);
  const auto it = records_.find(id);
  return it != records_.end() && it->second.cancelRequested;
}

void JobQueue::progress(std::uint64_t id, std::uint64_t done,
                        std::uint64_t total) {
  const std::scoped_lock lock(mutex_);
  const auto it = records_.find(id);
  if (it == records_.end()) return;
  it->second.progressDone = done;
  it->second.progressTotal = total;
}

std::uint64_t JobQueue::nextEventSeq(std::uint64_t id) {
  const std::scoped_lock lock(mutex_);
  const auto it = records_.find(id);
  if (it == records_.end()) return 0;
  return ++it->second.eventSeq;
}

void JobQueue::recordFrame(std::uint64_t id, FrameMark mark) {
  // A glob sequence can name arbitrarily many frames; keep only the most
  // recent window so retained records stay small.
  constexpr std::size_t kMaxFrameMarks = 4096;
  const std::scoped_lock lock(mutex_);
  const auto it = records_.find(id);
  if (it == records_.end()) return;
  std::vector<FrameMark>& marks = it->second.frameMarks;
  if (marks.size() >= kMaxFrameMarks) {
    marks.erase(marks.begin());
  }
  marks.push_back(mark);
}

std::vector<FrameMark> JobQueue::frameHistory(std::uint64_t id) const {
  const std::scoped_lock lock(mutex_);
  const auto it = records_.find(id);
  if (it == records_.end()) return {};
  return it->second.frameMarks;
}

void JobQueue::finish(std::uint64_t id, engine::RunReport report,
                      std::string error) {
  {
    const std::scoped_lock lock(mutex_);
    const auto it = records_.find(id);
    if (it == records_.end()) return;
    Record& record = it->second;
    if (record.state != JobState::Running) return;
    --counts_.running;
    if (!error.empty()) {
      record.state = JobState::Failed;
      ++counts_.failed;
    } else if (report.cancelled || record.cancelRequested) {
      record.state = JobState::Cancelled;
      ++counts_.cancelled;
    } else {
      record.state = JobState::Done;
      ++counts_.done;
    }
    record.report = std::move(report);
    record.error = std::move(error);
    record.latencySeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      record.admitted)
            .count();
    terminal_.push_back(id);
    pruneLocked();
  }
  idle_.notify_all();
}

std::optional<JobStatus> JobQueue::status(std::uint64_t id) const {
  const std::scoped_lock lock(mutex_);
  const auto it = records_.find(id);
  if (it == records_.end()) return std::nullopt;
  const Record& record = it->second;
  JobStatus status;
  status.id = id;
  status.state = record.state;
  status.image = record.spec.image;
  status.strategy = record.spec.strategy;
  status.label = record.spec.label.empty() ? record.spec.image
                                           : record.spec.label;
  status.progressDone = record.progressDone;
  status.progressTotal = record.progressTotal;
  status.latencySeconds = record.latencySeconds;
  status.error = record.error;
  status.client = record.client;
  status.predictedCostSeconds = record.predictedCostSeconds;
  status.queueSeconds =
      record.state == JobState::Queued
          ? std::chrono::duration<double>(
                std::chrono::steady_clock::now() - record.admitted)
                .count()
          : record.queueSeconds;
  return status;
}

std::optional<JobSpec> JobQueue::spec(std::uint64_t id) const {
  const std::scoped_lock lock(mutex_);
  const auto it = records_.find(id);
  if (it == records_.end()) return std::nullopt;
  return it->second.spec;
}

std::vector<std::uint64_t> JobQueue::activeIds() const {
  const std::scoped_lock lock(mutex_);
  std::vector<std::uint64_t> ids;
  for (const auto& [id, record] : records_) {
    if (!isTerminal(record.state)) ids.push_back(id);
  }
  return ids;
}

std::optional<engine::RunReport> JobQueue::result(std::uint64_t id) const {
  const std::scoped_lock lock(mutex_);
  const auto it = records_.find(id);
  if (it == records_.end() || !isTerminal(it->second.state)) {
    return std::nullopt;
  }
  return it->second.report;
}

JobCounts JobQueue::counts() const {
  const std::scoped_lock lock(mutex_);
  return counts_;
}

std::vector<ClientStats> JobQueue::clientStats() const {
  const std::scoped_lock lock(mutex_);
  std::vector<ClientStats> stats;
  stats.reserve(clients_.size());
  for (const auto& [name, entry] : clients_) {
    stats.push_back(entry);
    stats.back().weight = scheduler_.weight(name);
  }
  return stats;
}

std::vector<SchedulerClientView> JobQueue::schedulerClients() const {
  const std::scoped_lock lock(mutex_);
  return scheduler_.snapshot();
}

void JobQueue::close() {
  {
    const std::scoped_lock lock(mutex_);
    closed_ = true;
  }
  jobReady_.notify_all();
}

bool JobQueue::closed() const {
  const std::scoped_lock lock(mutex_);
  return closed_;
}

void JobQueue::cancelAll() {
  std::vector<std::uint64_t> active;
  {
    const std::scoped_lock lock(mutex_);
    for (const auto& [id, record] : records_) {
      if (!isTerminal(record.state)) active.push_back(id);
    }
  }
  for (const std::uint64_t id : active) (void)cancel(id);
}

bool JobQueue::waitIdle(double timeoutSeconds) {
  std::unique_lock lock(mutex_);
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(timeoutSeconds));
  return idle_.wait_until(lock, deadline, [this] {
    return counts_.queued == 0 && counts_.running == 0;
  });
}

void JobQueue::pruneLocked() {
  while (retainLimit_ != 0 && terminal_.size() > retainLimit_) {
    records_.erase(terminal_.front());
    terminal_.pop_front();
  }
}

}  // namespace mcmcpar::serve
