#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "engine/batch.hpp"
#include "engine/options.hpp"
#include "serve/fair_queue.hpp"

namespace mcmcpar::serve {

/// What a client submits: one job line of the shared manifest grammar
/// (docs/PROTOCOL.md) — image, strategy, strategy options and the
/// job-level @directives.
using JobSpec = engine::ManifestEntry;

/// Thrown by JobQueue::submit when bounded admission is at capacity. A
/// distinct type so the socket front-end can answer `ERR QUEUE_FULL`
/// (docs/PROTOCOL.md) while other admission failures stay `BAD_JOB`.
class QueueFullError : public engine::EngineError {
 public:
  using engine::EngineError::EngineError;
};

/// Lifecycle of one admitted job.
enum class JobState {
  Queued,     ///< admitted, waiting for a worker
  Running,    ///< a worker is executing it
  Done,       ///< ran its full budget
  Failed,     ///< threw while preparing or running
  Cancelled,  ///< cancelled while queued, mid-run, or by shutdown
};

[[nodiscard]] const char* toString(JobState state) noexcept;
[[nodiscard]] bool isTerminal(JobState state) noexcept;

/// A light status snapshot (no RunReport copy; see JobQueue::result).
struct JobStatus {
  std::uint64_t id = 0;
  JobState state = JobState::Queued;
  std::string image;
  std::string strategy;
  std::string label;
  std::uint64_t progressDone = 0;
  std::uint64_t progressTotal = 0;
  double latencySeconds = 0.0;  ///< admission -> terminal (0 while active)
  std::string error;            ///< Failed only
  std::string client;           ///< fairness bucket ("default" by default)
  double queueSeconds = 0.0;    ///< admission -> dispatch (live while queued)
  double predictedCostSeconds = 0.0;  ///< cost charged at admission
};

/// Aggregate queue counters.
struct JobCounts {
  std::uint64_t submitted = 0;
  std::size_t queued = 0;
  std::size_t running = 0;
  std::uint64_t done = 0;
  std::uint64_t failed = 0;
  std::uint64_t cancelled = 0;
};

/// Per-client fairness accounting, persisted across a client's idle
/// periods (unlike the scheduler's active round). STATS renders these.
struct ClientStats {
  std::string client;
  unsigned weight = 1;
  std::uint64_t submitted = 0;
  std::size_t queued = 0;
  std::uint64_t served = 0;        ///< jobs handed to a worker
  double costQueued = 0.0;         ///< predicted seconds still waiting
  double costServed = 0.0;         ///< predicted seconds dispatched
};

/// One retained FRAME event of a streaming job: enough to replay the
/// `EVENT <id> FRAME frame=<k>/<n> seq=<s>` line to a subscriber that
/// attached after the frame finished (a fast first frame can complete
/// before the submitting client's WAIT reaches the server).
struct FrameMark {
  std::uint64_t frame = 0;  ///< 0-based index of the finished frame
  std::uint64_t total = 0;  ///< frames in the sequence
  std::uint64_t seq = 0;    ///< the event's per-job sequence number
};

/// What JobQueue::cancel found, so the caller can emit the right event.
enum class CancelOutcome {
  Unknown,          ///< no such job
  AlreadyTerminal,  ///< nothing to do
  QueuedCancelled,  ///< went straight to Cancelled, never ran
  RunningFlagged,   ///< sticky flag raised; the worker stops at its quantum
};

/// The admission queue of the serving front-end: jobs enter continuously
/// (no whole-batch barrier), workers pull them in weighted-fair order
/// (DeficitScheduler over per-client buckets; one bucket degenerates to
/// FIFO), observers read status snapshots by id. All methods are
/// thread-safe.
///
/// Terminal records are retained for RESULT queries, capped at
/// `retainLimit` (oldest forgotten first) so a long-running server does not
/// grow without bound.
class JobQueue {
 public:
  /// `maxQueued` bounds admission: submit() throws QueueFullError while
  /// that many jobs are already waiting (0 = unbounded). Running jobs do
  /// not count — the cap is on the backlog, not on concurrency.
  explicit JobQueue(std::size_t retainLimit = 4096,
                    std::size_t maxQueued = 0);

  JobQueue(const JobQueue&) = delete;
  JobQueue& operator=(const JobQueue&) = delete;

  /// Admit a job; returns its id (ids start at 1 and never repeat).
  /// `predictedCostSeconds` is the job's fairness currency — the §IX
  /// runtime prediction charged against its client's deficit at dispatch
  /// (0 still charges a minimal amount). The client comes from the spec's
  /// @client directive ("default" when absent). Throws engine::EngineError
  /// once close() has been called, and QueueFullError when the queued
  /// backlog is at `maxQueued`.
  [[nodiscard]] std::uint64_t submit(JobSpec spec,
                                     double predictedCostSeconds = 0.0);

  /// Block until a queued job is available (marking it Running and
  /// returning its id), the timeout elapses (nullopt), or the queue is
  /// closed *and* empty (nullopt forever after). Jobs are handed out in
  /// deficit-round-robin order across clients.
  [[nodiscard]] std::optional<std::uint64_t> waitNext(
      std::chrono::milliseconds timeout);

  /// Request cancellation. Queued jobs become Cancelled immediately;
  /// running jobs get a sticky flag their RunHooks polls.
  CancelOutcome cancel(std::uint64_t id);

  /// The sticky per-job cancel flag (true also once the queue is draining
  /// hard via cancelAll).
  [[nodiscard]] bool cancelRequested(std::uint64_t id) const;

  /// Record a progress beat of a running job.
  void progress(std::uint64_t id, std::uint64_t done, std::uint64_t total);

  /// Next per-job event sequence number, monotonic from 1 (0 for unknown or
  /// already-forgotten ids). Every EVENT line a job emits is stamped
  /// through this so streaming clients can detect drops and reorders.
  [[nodiscard]] std::uint64_t nextEventSeq(std::uint64_t id);

  /// Retain one emitted FRAME event so late subscribers can replay it.
  /// Bounded per job (oldest dropped first); no-op for unknown ids.
  void recordFrame(std::uint64_t id, FrameMark mark);

  /// The retained FRAME events of a job, in emission (seq) order. Empty
  /// for unknown ids and non-sequence jobs.
  [[nodiscard]] std::vector<FrameMark> frameHistory(std::uint64_t id) const;

  /// Move a Running job to its terminal state: Failed when `error` is
  /// non-empty, Cancelled when the report says so, Done otherwise.
  void finish(std::uint64_t id, engine::RunReport report, std::string error);

  [[nodiscard]] std::optional<JobStatus> status(std::uint64_t id) const;

  /// The submitted spec of a known job (workers read it to build the run).
  [[nodiscard]] std::optional<JobSpec> spec(std::uint64_t id) const;

  /// Ids not yet terminal, in admission order (shutdown cancels these).
  [[nodiscard]] std::vector<std::uint64_t> activeIds() const;

  /// The final RunReport of a terminal job (nullopt while queued/running or
  /// for unknown/forgotten ids).
  [[nodiscard]] std::optional<engine::RunReport> result(
      std::uint64_t id) const;

  [[nodiscard]] JobCounts counts() const;

  /// Every client ever seen, sorted by name (STATS and tests).
  [[nodiscard]] std::vector<ClientStats> clientStats() const;

  /// The scheduler's live per-client round (deficit balances) — the
  /// METRICS collector renders these as gauges.
  [[nodiscard]] std::vector<SchedulerClientView> schedulerClients() const;

  /// Stop admitting (submit() throws from now on); waiters drain what is
  /// already queued.
  void close();
  [[nodiscard]] bool closed() const;

  /// Cancel everything still queued and flag everything running — the
  /// drain-timeout escalation path of shutdown.
  void cancelAll();

  /// Block until nothing is queued or running, or `timeoutSeconds` elapses;
  /// true when drained.
  [[nodiscard]] bool waitIdle(double timeoutSeconds);

 private:
  struct Record {
    JobSpec spec;
    JobState state = JobState::Queued;
    bool cancelRequested = false;
    std::uint64_t progressDone = 0;
    std::uint64_t progressTotal = 0;
    std::chrono::steady_clock::time_point admitted;
    double latencySeconds = 0.0;
    std::string error;
    engine::RunReport report;
    std::uint64_t eventSeq = 0;  ///< last event sequence number handed out
    std::vector<FrameMark> frameMarks;  ///< retained FRAME events (bounded)
    std::string client;                 ///< fairness bucket
    double queueSeconds = 0.0;          ///< admission -> dispatch
    double predictedCostSeconds = 0.0;  ///< DRR charge at admission
  };

  void pruneLocked();

  mutable std::mutex mutex_;
  std::condition_variable jobReady_;  ///< submit -> waitNext
  std::condition_variable idle_;      ///< finish -> waitIdle
  std::map<std::uint64_t, Record> records_;
  DeficitScheduler scheduler_;          ///< Queued ids, weighted-fair order
  std::map<std::string, ClientStats> clients_;  ///< persists across idling
  std::deque<std::uint64_t> terminal_;  ///< retention order for pruning
  std::size_t retainLimit_;
  std::size_t maxQueued_;
  std::uint64_t nextId_ = 1;
  JobCounts counts_;
  bool closed_ = false;
};

}  // namespace mcmcpar::serve
