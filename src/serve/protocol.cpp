#include "serve/protocol.hpp"

#include <cstdio>
#include <sstream>
#include <variant>

namespace mcmcpar::serve::protocol {

namespace {

/// Shortest round-trippable formatting for JSON numbers (printf %g keeps
/// the payloads compact; full precision is not needed for latencies).
std::string num(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.6g", value);
  return buffer;
}

/// Exact round-trip formatting for values another process computes with:
/// circle coordinates feed the shard coordinator's stitcher, so a remote
/// tile must reproduce the local backend bit-for-bit.
std::string numExact(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

}  // namespace

std::string jsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 8);
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string jobJson(const JobStatus& status,
                    const engine::RunReport& report) {
  std::ostringstream out;
  out << "{\"id\": " << status.id                                      //
      << ", \"label\": \"" << jsonEscape(status.label) << "\""         //
      << ", \"image\": \"" << jsonEscape(status.image) << "\""         //
      << ", \"strategy\": \"" << jsonEscape(status.strategy) << "\""   //
      << ", \"state\": \"" << toString(status.state) << "\""           //
      << ", \"latency_seconds\": " << num(status.latencySeconds)       //
      << ", \"wall_seconds\": " << num(report.wallSeconds)             //
      << ", \"iterations\": " << report.iterations                     //
      << ", \"acceptance\": " << num(report.acceptanceRate)            //
      << ", \"circles\": " << report.circles.size()                    //
      << ", \"log_posterior\": " << num(report.logPosterior)           //
      << ", \"threads_used\": " << report.threadsUsed                  //
      << ", \"cancelled\": " << (report.cancelled ? "true" : "false")  //
      << ", \"client\": \"" << jsonEscape(status.client) << "\""       //
      << ", \"queue_seconds\": " << num(status.queueSeconds)           //
      << ", \"predicted_cost_seconds\": "                              //
      << num(status.predictedCostSeconds)                              //
      << ", \"error\": \"" << jsonEscape(status.error) << "\"}";
  return out.str();
}

std::string reportJson(const JobStatus& status,
                       const engine::RunReport& report) {
  std::string out = jobJson(status, report);
  out.pop_back();  // reopen the object to append the circle detail
  out += ", \"circles_detail\": [";
  for (std::size_t i = 0; i < report.circles.size(); ++i) {
    const model::Circle& c = report.circles[i];
    if (i != 0) out += ", ";
    out += '[';
    out += numExact(c.x);
    out += ", ";
    out += numExact(c.y);
    out += ", ";
    out += numExact(c.r);
    out += ']';
  }
  out += ']';
  if (const auto* seq = std::get_if<stream::StreamReport>(&report.extras)) {
    std::ostringstream extra;
    extra << ", \"frames\": [";
    for (std::size_t i = 0; i < seq->perFrame.size(); ++i) {
      const stream::FrameResult& frame = seq->perFrame[i];
      if (i != 0) extra << ", ";
      extra << "{\"frame\": " << frame.index                        //
            << ", \"label\": \"" << jsonEscape(frame.label) << "\""  //
            << ", \"iterations\": " << frame.iterations              //
            << ", \"circles\": " << frame.circles                    //
            << ", \"carried\": " << frame.carried                    //
            << ", \"log_posterior\": " << num(frame.logPosterior)    //
            << ", \"wall_seconds\": " << num(frame.wallSeconds) << "}";
    }
    extra << "], \"tracks\": [";
    for (std::size_t i = 0; i < seq->tracks.size(); ++i) {
      const stream::TrackSummary& track = seq->tracks[i];
      if (i != 0) extra << ", ";
      extra << '[' << track.id << ", " << track.firstFrame << ", "
            << track.lastFrame << ']';
    }
    extra << ']';
    out += extra.str();
  }
  out += '}';
  return out;
}

std::string statsJson(const ServerStats& stats) {
  std::ostringstream out;
  out << "{\"submitted\": " << stats.jobs.submitted                  //
      << ", \"queued\": " << stats.jobs.queued                       //
      << ", \"running\": " << stats.jobs.running                     //
      << ", \"done\": " << stats.jobs.done                           //
      << ", \"failed\": " << stats.jobs.failed                       //
      << ", \"cancelled\": " << stats.jobs.cancelled                 //
      << ", \"cache_hits\": " << stats.cache.hits                    //
      << ", \"cache_misses\": " << stats.cache.misses                //
      << ", \"cache_hit_rate\": " << num(stats.cache.hitRate())      //
      << ", \"cache_evictions\": " << stats.cache.evictions          //
      << ", \"cache_oneshot_bypasses\": " << stats.cache.oneshotBypasses  //
      << ", \"cache_interned\": " << stats.cache.interned            //
      << ", \"cache_entries\": " << stats.cache.entries              //
      << ", \"cache_bytes\": " << stats.cache.bytes                  //
      << ", \"thread_budget\": " << stats.threadBudget               //
      << ", \"budget_available\": " << stats.budgetAvailable         //
      << ", \"workers\": " << stats.workers                          //
      << ", \"uptime_seconds\": " << num(stats.uptimeSeconds)        //
      << ", \"draining\": " << (stats.draining ? "true" : "false")   //
      << ", \"clients\": {";
  for (std::size_t i = 0; i < stats.clients.size(); ++i) {
    const ClientStats& client = stats.clients[i];
    if (i != 0) out << ", ";
    out << "\"" << jsonEscape(client.client) << "\": {"      //
        << "\"weight\": " << client.weight                   //
        << ", \"submitted\": " << client.submitted           //
        << ", \"queued\": " << client.queued                 //
        << ", \"served\": " << client.served                 //
        << ", \"cost_queued\": " << num(client.costQueued)   //
        << ", \"cost_served\": " << num(client.costServed) << "}";
  }
  out << "}}";
  return out.str();
}

std::string okLine(const std::string& payload) {
  return payload.empty() ? "OK" : "OK " + payload;
}

std::string errLine(const std::string& code, const std::string& message) {
  return "ERR " + code + " " + message;
}

std::string eventLine(const JobEvent& event) {
  std::ostringstream out;
  out << "EVENT " << event.id << " " << toString(event.type);
  if (event.type == JobEvent::Type::Progress) {
    out << " " << event.done << " " << event.total;
  } else if (event.type == JobEvent::Type::Frame) {
    out << " frame=" << event.done << "/" << event.total;
  }
  out << " seq=" << event.seq;
  return out.str();
}

}  // namespace mcmcpar::serve::protocol
