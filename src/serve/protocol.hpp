#pragma once

#include <cstdint>
#include <string>

#include "engine/engine.hpp"
#include "serve/job_queue.hpp"
#include "serve/server.hpp"

/// Wire-format helpers of the serve job protocol. The normative
/// specification — command grammar, event stream, error codes, the JSON
/// result schema and the manifest grammar — lives in docs/PROTOCOL.md; the
/// server tests assert against the strings produced here.
namespace mcmcpar::serve::protocol {

/// Machine-readable error codes carried by `ERR <code> <message>` replies.
inline constexpr const char* kErrBadRequest = "BAD_REQUEST";
inline constexpr const char* kErrBadJob = "BAD_JOB";
inline constexpr const char* kErrUnknownJob = "UNKNOWN_JOB";
inline constexpr const char* kErrPending = "PENDING";
inline constexpr const char* kErrShuttingDown = "SHUTTING_DOWN";
inline constexpr const char* kErrQueueFull = "QUEUE_FULL";
/// Binary-frame rejections (UPLOAD): a frame whose decoded pixels exceed
/// the server's cache capacity (or whose declared size is insane) vs. a
/// malformed frame (bad header, zero-size, nbytes/dimension mismatch,
/// truncated payload).
inline constexpr const char* kErrTooLarge = "TOO_LARGE";
inline constexpr const char* kErrBadFrame = "BAD_FRAME";

/// JSON string escaping (quotes, backslashes, control characters).
[[nodiscard]] std::string jsonEscape(const std::string& text);

/// One job's terminal outcome as single-line JSON — the RESULT payload and
/// one element of a watch-mode result file.
[[nodiscard]] std::string jobJson(const JobStatus& status,
                                  const engine::RunReport& report);

/// The REPORT payload: jobJson plus the full detected-circle list as
/// `"circles_detail": [[x, y, r], ...]` — what a shard coordinator needs to
/// stitch remote tiles back together. Sequence jobs additionally carry
/// `"frames": [...]` (per-frame iterations/circles/logP) and
/// `"tracks": [[id, first, last], ...]` from the cross-frame tracker.
[[nodiscard]] std::string reportJson(const JobStatus& status,
                                     const engine::RunReport& report);

/// Server counters as single-line JSON — the STATS payload.
[[nodiscard]] std::string statsJson(const ServerStats& stats);

/// `OK ...` / `ERR <code> <message>` reply lines.
[[nodiscard]] std::string okLine(const std::string& payload);
[[nodiscard]] std::string errLine(const std::string& code,
                                  const std::string& message);

/// Event stream lines (WAIT):
///   `EVENT <id> <TYPE> seq=<n>`                     lifecycle events
///   `EVENT <id> PROGRESS <done> <total> seq=<n>`    decile progress
///   `EVENT <id> FRAME frame=<k>/<count> seq=<n>`    one finished sequence
///                                                   frame (k is 0-based)
/// `seq` is per-job monotonic from 1; gaps are normal (throttling), a
/// non-increasing value means the transport dropped or reordered events.
[[nodiscard]] std::string eventLine(const JobEvent& event);

}  // namespace mcmcpar::serve::protocol
