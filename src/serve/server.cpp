#include "serve/server.hpp"

#include <algorithm>
#include <chrono>
#include <initializer_list>
#include <thread>
#include <utility>

#include "core/runtime_predictor.hpp"
#include "engine/registry.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace mcmcpar::serve {

using namespace std::chrono_literals;

const char* toString(JobEvent::Type type) noexcept {
  switch (type) {
    case JobEvent::Type::Admitted:
      return "ADMITTED";
    case JobEvent::Type::Started:
      return "STARTED";
    case JobEvent::Type::Progress:
      return "PROGRESS";
    case JobEvent::Type::Frame:
      return "FRAME";
    case JobEvent::Type::Done:
      return "DONE";
    case JobEvent::Type::Failed:
      return "FAILED";
    case JobEvent::Type::Cancelled:
      return "CANCELLED";
  }
  return "UNKNOWN";
}

Server::Server(ServerOptions options)
    : options_(options),
      budget_(options.threads),
      cache_(options.cacheBytes),
      queue_(options.retainJobs, options.maxQueued),
      started_(std::chrono::steady_clock::now()) {
  img::Scene scene = img::generateScene(
      img::cellScene(options_.synthWidth, options_.synthHeight,
                     options_.synthCells, options_.radius, options_.seed));
  synthImage_ = std::make_shared<const img::ImageF>(std::move(scene.image));

  unsigned workers = options_.maxConcurrentJobs != 0
                         ? options_.maxConcurrentJobs
                         : budget_.total();
  workers = std::clamp(workers, 1u, budget_.total());
  workerCount_ = workers;
  workers_.reserve(workers);
  for (unsigned i = 0; i < workers; ++i) {
    workers_.emplace_back(
        [this](const std::stop_token& stop) { workerLoop(stop); });
  }
  metricsCollector_ = obs::Registry::global().addCollector(
      [this](obs::Collection& out) { collectMetrics(out); });
}

Server::~Server() {
  // Deregister before any teardown: a concurrent METRICS scrape must not
  // walk a half-destroyed server. removeCollector returns only once no
  // scrape is inside the callback (both run under the registry mutex).
  obs::Registry::global().removeCollector(metricsCollector_);
  shutdown(0.0);
}

std::shared_ptr<const img::ImageF> Server::resolveImage(
    const std::string& path, bool oneshot) {
  if (path == "synth") return synthImage_;
  return cache_.get(path, oneshot);
}

std::shared_ptr<const img::ImageF> Server::internUpload(std::uint64_t hash,
                                                        img::ImageF image,
                                                        bool oneshot) {
  return cache_.intern(hash, std::move(image), oneshot);
}

namespace {

/// Does a raw option token list carry any `key=` for one of `keys`?
bool hasOptionKey(const std::vector<std::string>& options,
                  std::initializer_list<const char*> keys) {
  for (const std::string& option : options) {
    for (const char* key : keys) {
      if (option.rfind(std::string(key) + "=", 0) == 0) return true;
    }
  }
  return false;
}

/// The job-level prior/count directives applied over the server defaults —
/// shared by the single-image and sequence execution paths.
engine::Problem problemFor(const ServerOptions& options, const JobSpec& spec) {
  engine::Problem problem;
  // @radius overrides the server-wide prior knob (shard coordinators use
  // it so remote tiles sample under the coordinator's prior);
  // @radius-std/min/max carry an exact prior instead of the derived rule,
  // and @count pins the expected artifact count the way a local caller
  // sets estimateCount=false.
  const double radius = spec.radius.value_or(options.radius);
  problem.prior.radiusMean = radius;
  problem.prior.radiusStd = spec.radiusStd.value_or(radius / 8.0);
  problem.prior.radiusMin = spec.radiusMin.value_or(radius / 2.0);
  problem.prior.radiusMax = spec.radiusMax.value_or(radius * 1.8);
  if (spec.expectedCount) {
    problem.estimateCount = false;
    problem.prior.expectedCount = *spec.expectedCount;
  }
  return problem;
}

engine::RunBudget budgetFor(const ServerOptions& options,
                            const JobSpec& spec) {
  engine::RunBudget budget = options.defaultBudget;
  if (spec.iterations) budget.iterations = *spec.iterations;
  if (spec.trace) budget.traceInterval = *spec.trace;
  return budget;
}

}  // namespace

std::vector<stream::Frame> Server::resolveSequenceFrames(
    const JobSpec& spec,
    std::vector<std::shared_ptr<const img::ImageF>> inlineFrames) {
  constexpr std::uint64_t kMaxSynthFrames = 4096;
  std::vector<stream::Frame> frames;
  const std::optional<std::uint64_t> count =
      stream::parseFrameCount(spec.sequence);

  if (spec.inlineImage) {
    if (!count) {
      throw engine::EngineError(
          "@sequence with @image=inline requires a decimal frame count, "
          "got '" +
          spec.sequence + "'");
    }
    if (inlineFrames.size() != *count) {
      throw engine::EngineError(
          "@sequence=" + spec.sequence + " requires uploads '" + spec.image +
          ".0' .. '" + spec.image + "." + std::to_string(*count - 1) +
          "' on the submitting connection (docs/PROTOCOL.md Sequences)");
    }
    frames.reserve(inlineFrames.size());
    for (std::size_t k = 0; k < inlineFrames.size(); ++k) {
      frames.push_back(stream::Frame{std::move(inlineFrames[k]),
                                     spec.image + "." + std::to_string(k)});
    }
    return frames;
  }

  if (count) {
    if (spec.image != "synth") {
      throw engine::EngineError(
          "a decimal @sequence count requires @image=inline uploads or the "
          "'synth' image; use a glob pattern for on-disk frames");
    }
    if (*count > kMaxSynthFrames) {
      throw engine::EngineError("@sequence=" + spec.sequence +
                                ": at most " +
                                std::to_string(kMaxSynthFrames) +
                                " synth frames per job");
    }
    // The served drifting scene: same geometry as the "synth" still, with
    // circles moving deterministically from the server seed.
    img::DriftSpec drift;
    drift.scene =
        img::cellScene(options_.synthWidth, options_.synthHeight,
                       options_.synthCells, options_.radius, options_.seed);
    drift.frames = static_cast<int>(*count);
    std::vector<img::Scene> scenes = img::generateDriftingSequence(drift);
    frames.reserve(scenes.size());
    for (std::size_t k = 0; k < scenes.size(); ++k) {
      frames.push_back(stream::Frame{
          std::make_shared<const img::ImageF>(std::move(scenes[k].image)),
          "synth." + std::to_string(k)});
    }
    return frames;
  }

  const std::vector<std::string> paths =
      stream::expandFrameGlob(spec.sequence);
  if (paths.empty()) {
    throw engine::EngineError("@sequence glob '" + spec.sequence +
                              "' matched no files");
  }
  frames.reserve(paths.size());
  for (const std::string& path : paths) {
    frames.push_back(stream::Frame{resolveImage(path, spec.oneshot), path});
  }
  return frames;
}

std::uint64_t Server::submit(
    const JobSpec& spec, std::shared_ptr<const img::ImageF> inlineImage,
    std::vector<std::shared_ptr<const img::ImageF>> inlineFrames) {
  JobSpec admitted = spec;
  // A sharded socket job that names no endpoints inherits the server's
  // fleet (--endpoints-file): the server is the natural owner of "which
  // hosts are mine to fan out over".
  if (!options_.fleetEndpoints.empty() && admitted.strategy == "sharded" &&
      hasOptionKey(admitted.options, {"backend"}) &&
      std::find(admitted.options.begin(), admitted.options.end(),
                "backend=socket") != admitted.options.end() &&
      !hasOptionKey(admitted.options, {"endpoints", "endpoints-file"})) {
    admitted.options.push_back("endpoints=" + options_.fleetEndpoints);
  }

  // Resolve the image(s) and validate strategy + options at admission, so
  // a bad request fails the submitter with a descriptive error instead of
  // failing later on a worker thread.
  std::vector<stream::Frame> frames;
  if (!admitted.sequence.empty()) {
    frames = resolveSequenceFrames(admitted, std::move(inlineFrames));
  } else if (admitted.inlineImage) {
    if (inlineImage == nullptr) {
      throw engine::EngineError(
          "@image=inline requires a preceding UPLOAD '" + admitted.image +
          "' on the submitting connection (docs/PROTOCOL.md Binary frames)");
    }
    frames.push_back(stream::Frame{std::move(inlineImage), admitted.image});
  } else {
    frames.push_back(stream::Frame{
        resolveImage(admitted.image, admitted.oneshot), admitted.image});
  }
  (void)engine::StrategyRegistry::builtin().create(
      admitted.strategy, engine::ExecResources{}, admitted.options);

  // Predicted cost at admission: the §IX runtime model over the job's
  // iteration budget (times its frame count for sequences) is the currency
  // the weighted-fair scheduler charges against the client's deficit.
  // Activity is unknown this side of the density scan, so 0 — fairness
  // only needs costs comparable across jobs, not absolutely accurate.
  const double predictedCost =
      core::predictCostSeconds(budgetFor(options_, admitted).iterations,
                               0.0) *
      static_cast<double>(std::max<std::size_t>(frames.size(), 1));

  std::uint64_t id = 0;
  {
    // Hold imageMutex_ across admission so a worker that dequeues the job
    // immediately blocks here until its frames are pinned.
    const std::scoped_lock lock(imageMutex_);
    id = queue_.submit(admitted, predictedCost);
    jobImages_.emplace(id, std::move(frames));
  }
  emit(JobEvent{JobEvent::Type::Admitted, id, 0, 0});
  return id;
}

std::uint64_t Server::submitLine(const std::string& line) {
  return submit(engine::parseManifestLine(line));
}

CancelOutcome Server::cancel(std::uint64_t id) {
  const CancelOutcome outcome = queue_.cancel(id);
  if (outcome == CancelOutcome::QueuedCancelled) {
    {
      const std::scoped_lock lock(imageMutex_);
      jobImages_.erase(id);
    }
    emit(JobEvent{JobEvent::Type::Cancelled, id, 0, 0});
  }
  return outcome;
}

std::optional<JobStatus> Server::status(std::uint64_t id) const {
  return queue_.status(id);
}

std::optional<engine::RunReport> Server::result(std::uint64_t id) const {
  return queue_.result(id);
}

ServerStats Server::stats() const {
  ServerStats stats;
  stats.jobs = queue_.counts();
  stats.cache = cache_.stats();
  stats.threadBudget = budget_.total();
  stats.budgetAvailable = budget_.available();
  stats.workers = workerCount_;  // workers_ itself is mutated by shutdown
  stats.uptimeSeconds = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - started_)
                            .count();
  stats.draining = queue_.closed();
  stats.clients = queue_.clientStats();
  return stats;
}

void Server::collectMetrics(obs::Collection& out) const {
  const ServerStats s = stats();
  const auto jobs = [&](const char* state, std::uint64_t count) {
    out.counter("mcmcpar_serve_jobs_finished_total",
                "Jobs reaching a terminal state, by state.",
                {{"state", state}}, static_cast<double>(count));
  };
  out.counter("mcmcpar_serve_jobs_submitted_total", "Jobs admitted.", {},
              static_cast<double>(s.jobs.submitted));
  jobs("done", s.jobs.done);
  jobs("failed", s.jobs.failed);
  jobs("cancelled", s.jobs.cancelled);
  out.gauge("mcmcpar_serve_jobs_queued", "Jobs waiting for a worker.", {},
            static_cast<double>(s.jobs.queued));
  out.gauge("mcmcpar_serve_jobs_running", "Jobs executing right now.", {},
            static_cast<double>(s.jobs.running));

  out.counter("mcmcpar_serve_cache_hits_total", "ImageCache lookup hits.",
              {}, static_cast<double>(s.cache.hits));
  out.counter("mcmcpar_serve_cache_misses_total",
              "ImageCache lookups that had to decode.", {},
              static_cast<double>(s.cache.misses));
  out.counter("mcmcpar_serve_cache_evictions_total",
              "LRU entries dropped for capacity.", {},
              static_cast<double>(s.cache.evictions));
  out.counter("mcmcpar_serve_cache_oneshot_bypasses_total",
              "Misses passed through uncached (oneshot).", {},
              static_cast<double>(s.cache.oneshotBypasses));
  out.counter("mcmcpar_serve_cache_interned_total",
              "Uploaded frames inserted by content hash.", {},
              static_cast<double>(s.cache.interned));
  out.gauge("mcmcpar_serve_cache_entries", "Resident cache entries.", {},
            static_cast<double>(s.cache.entries));
  out.gauge("mcmcpar_serve_cache_bytes", "Resident cache pixel bytes.", {},
            static_cast<double>(s.cache.bytes));
  out.gauge("mcmcpar_serve_cache_hit_ratio",
            "hits / (hits + misses); see ImageCacheStats::hitRate.", {},
            s.cache.hitRate());

  out.gauge("mcmcpar_serve_thread_budget", "Worker-thread budget.", {},
            static_cast<double>(s.threadBudget));
  out.gauge("mcmcpar_serve_budget_available",
            "Unleased threads in the budget.", {},
            static_cast<double>(s.budgetAvailable));
  out.gauge("mcmcpar_serve_workers", "Resident worker threads.", {},
            static_cast<double>(s.workers));
  out.gauge("mcmcpar_serve_uptime_seconds",
            "Seconds since this server was constructed.", {},
            s.uptimeSeconds);
  out.gauge("mcmcpar_serve_draining",
            "1 while the admission queue is closed.", {},
            s.draining ? 1.0 : 0.0);

  for (const ClientStats& c : s.clients) {
    const obs::Labels by{{"client", c.client}};
    out.gauge("mcmcpar_serve_client_weight", "DRR scheduling weight.", by,
              static_cast<double>(c.weight));
    out.counter("mcmcpar_serve_client_submitted_total",
                "Jobs admitted for this client.", by,
                static_cast<double>(c.submitted));
    out.counter("mcmcpar_serve_client_served_total",
                "Jobs handed to a worker for this client.", by,
                static_cast<double>(c.served));
    out.gauge("mcmcpar_serve_client_queued",
              "Jobs of this client still waiting.", by,
              static_cast<double>(c.queued));
    out.gauge("mcmcpar_serve_client_cost_queued_seconds",
              "Predicted seconds of work still waiting.", by, c.costQueued);
    out.counter("mcmcpar_serve_client_cost_served_seconds_total",
                "Predicted seconds of work dispatched.", by, c.costServed);
  }
  for (const SchedulerClientView& view : queue_.schedulerClients()) {
    out.gauge("mcmcpar_serve_client_deficit_seconds",
              "Unspent DRR dispatch credit.", {{"client", view.client}},
              view.deficit);
  }
}

std::uint64_t Server::subscribe(std::function<void(const JobEvent&)> fn) {
  const std::unique_lock lock(listenerMutex_);
  const std::uint64_t token = nextListener_++;
  listeners_.emplace(token, std::move(fn));
  return token;
}

void Server::unsubscribe(std::uint64_t token) {
  // Unique over the emit()s' shared locks: returning implies no callback
  // is mid-flight, so the subscriber may tear down whatever it captured.
  const std::unique_lock lock(listenerMutex_);
  listeners_.erase(token);
}

void Server::emit(JobEvent event) {
  // Stamp the per-job sequence number at emission, under the queue's lock,
  // so concurrent emitters (worker + canceller) never hand out duplicates.
  event.seq = queue_.nextEventSeq(event.id);
  if (event.type == JobEvent::Type::Frame) {
    // Retain FRAME events so a WAIT that attaches after a fast early frame
    // can still replay the full per-frame stream (see socket.cpp).
    queue_.recordFrame(event.id, {event.done, event.total, event.seq});
  }
  const std::shared_lock lock(listenerMutex_);
  for (const auto& [token, fn] : listeners_) fn(event);
}

engine::RunReport Server::runSequenceJob(std::uint64_t id,
                                         const JobSpec& spec,
                                         std::vector<stream::Frame> frames) {
  stream::SequenceSpec sequence;
  sequence.strategy = spec.strategy;
  sequence.options = spec.options;
  sequence.problem = problemFor(options_, spec);
  sequence.budget = budgetFor(options_, spec);  // per frame
  sequence.warmStart = spec.warmStart.value_or(true);
  sequence.track = spec.track.value_or(true);
  const std::size_t frameCount = frames.size();
  sequence.frames = std::move(frames);

  engine::ExecResources resources;
  resources.threads = options_.threads;
  resources.useOpenMp = options_.useOpenMp;
  resources.poolBudget = &budget_;
  resources.seed =
      spec.seed ? *spec.seed : engine::deriveJobSeed(options_.seed, id);

  stream::SequenceHooks hooks;
  hooks.cancelRequested = [this, id] { return queue_.cancelRequested(id); };
  // One FRAME event per finished frame, never throttled — the per-frame
  // stream IS the product of a sequence job. STATUS progress counts frames
  // instead of iterations.
  hooks.onFrame = [this, id, frameCount](const stream::FrameResult& frame,
                                         const engine::RunReport&) {
    queue_.progress(id, frame.index + 1, frameCount);
    emit(JobEvent{JobEvent::Type::Frame, id, frame.index, frameCount});
  };
  return stream::SequenceRunner().run(sequence, resources, hooks);
}

void Server::workerLoop(const std::stop_token& stop) {
  while (!stop.stop_requested()) {
    const std::optional<std::uint64_t> next = queue_.waitNext(100ms);
    if (!next) {
      if (queue_.closed()) break;  // drained and no more admissions
      continue;
    }
    const std::uint64_t id = *next;
    const std::optional<JobSpec> spec = queue_.spec(id);
    // The dispatch snapshot carries the fairness bucket and the
    // admission-to-dispatch wait stamped by waitNext.
    const std::optional<JobStatus> dispatched = queue_.status(id);
    if (dispatched) {
      obs::Registry& registry = obs::Registry::global();
      registry
          .counter("mcmcpar_serve_dispatches_total",
                   "Jobs handed to a worker, by fairness bucket.",
                   {{"client", dispatched->client}})
          .add();
      registry
          .histogram("mcmcpar_serve_queue_wait_seconds",
                     "Admission-to-dispatch wait per fairness bucket.",
                     obs::latencyBuckets(), {{"client", dispatched->client}})
          .observe(dispatched->queueSeconds);
    }
    std::vector<stream::Frame> frames;
    {
      const std::scoped_lock lock(imageMutex_);
      const auto it = jobImages_.find(id);
      if (it != jobImages_.end()) frames = it->second;
    }

    // Reacquire this worker's thread from the long-lived budget (released
    // below when the job ends, so idle workers leave their thread leasable
    // by running strategies). A cancel while waiting aborts the wait.
    bool charged = false;
    if (spec && !frames.empty()) {
      while (!queue_.cancelRequested(id)) {
        if (budget_.tryAcquireFor(1, 100ms) == 1) {
          charged = true;
          break;
        }
      }
    }

    engine::RunReport report;
    std::string error;
    if (charged && spec && !frames.empty()) {
      obs::Span jobSpan("serve", "job:" + spec->strategy);
      jobSpan.arg("id", std::to_string(id));
      if (dispatched) jobSpan.arg("client", dispatched->client);
      emit(JobEvent{JobEvent::Type::Started, id, 0, 0});

      // --delay-ms test hook: pretend to be a slow endpoint, in small
      // quanta so a cancel still lands promptly.
      for (unsigned slept = 0;
           slept < options_.startDelayMs && !queue_.cancelRequested(id);
           slept += 25) {
        std::this_thread::sleep_for(std::chrono::milliseconds(
            std::min(25u, options_.startDelayMs - slept)));
      }

      if (!spec->sequence.empty()) {
        try {
          report = runSequenceJob(id, *spec, std::move(frames));
        } catch (const std::exception& e) {
          error = e.what();
        }
      } else {
        engine::BatchJob job;
        job.strategy = spec->strategy;
        job.options = spec->options;
        job.problem = problemFor(options_, *spec);
        job.problem.filtered = frames.front().image.get();
        job.budget = budgetFor(options_, *spec);
        job.seed = spec->seed;

        engine::ExecResources resources;
        resources.threads = options_.threads;
        resources.useOpenMp = options_.useOpenMp;
        resources.poolBudget = &budget_;
        resources.seed = engine::deriveJobSeed(options_.seed, id);

        engine::RunHooks hooks;
        hooks.cancelRequested = [this, id] {
          return queue_.cancelRequested(id);
        };
        // Record every beat (STATUS stays fine-grained) but fan events out
        // only on decile changes, so hot strategies don't hammer listeners.
        hooks.onProgress = [this, id,
                            lastDecile = -1](const engine::RunProgress& p)
            mutable {
          queue_.progress(id, p.done, p.total);
          const int decile =
              p.total == 0 ? -1 : static_cast<int>(10 * p.done / p.total);
          if (decile == lastDecile) return;
          lastDecile = decile;
          emit(JobEvent{JobEvent::Type::Progress, id, p.done, p.total});
        };

        try {
          report = runner_.runOne(job, resources, hooks);
        } catch (const std::exception& e) {
          error = e.what();
        }
      }
    } else {
      // Cancelled before it could start (or admission raced shutdown).
      report.strategy = spec ? spec->strategy : "";
      report.cancelled = true;
      report.threadsUsed = 0;
    }
    if (charged) budget_.release(1);

    if (dispatched && charged) {
      obs::Registry::global()
          .histogram("mcmcpar_serve_job_run_seconds",
                     "Job execution wall time per fairness bucket.",
                     obs::latencyBuckets(), {{"client", dispatched->client}})
          .observe(report.wallSeconds);
    }
    queue_.finish(id, std::move(report), std::move(error));
    {
      const std::scoped_lock lock(imageMutex_);
      jobImages_.erase(id);
    }
    const std::optional<JobStatus> finished = queue_.status(id);
    JobEvent::Type type = JobEvent::Type::Done;
    if (finished && finished->state == JobState::Failed) {
      type = JobEvent::Type::Failed;
    } else if (finished && finished->state == JobState::Cancelled) {
      type = JobEvent::Type::Cancelled;
    }
    emit(JobEvent{type, id, 0, 0});
  }
}

void Server::shutdown(double drainTimeoutSeconds) {
  const std::scoped_lock lock(shutdownMutex_);
  if (stopped_) return;
  queue_.close();
  if (drainTimeoutSeconds > 0.0) {
    (void)queue_.waitIdle(drainTimeoutSeconds);
  }
  // Grace expired (or none): cancel queued jobs outright and flag running
  // ones; workers observe the sticky flags at their next quantum.
  for (const std::uint64_t id : queue_.activeIds()) (void)cancel(id);
  workers_.clear();  // jthread join: waits for in-flight jobs to settle
  stopped_ = true;
}

}  // namespace mcmcpar::serve
