#include "serve/server.hpp"

#include <algorithm>
#include <chrono>
#include <initializer_list>
#include <utility>

#include "engine/registry.hpp"

namespace mcmcpar::serve {

using namespace std::chrono_literals;

const char* toString(JobEvent::Type type) noexcept {
  switch (type) {
    case JobEvent::Type::Admitted:
      return "ADMITTED";
    case JobEvent::Type::Started:
      return "STARTED";
    case JobEvent::Type::Progress:
      return "PROGRESS";
    case JobEvent::Type::Done:
      return "DONE";
    case JobEvent::Type::Failed:
      return "FAILED";
    case JobEvent::Type::Cancelled:
      return "CANCELLED";
  }
  return "UNKNOWN";
}

Server::Server(ServerOptions options)
    : options_(options),
      budget_(options.threads),
      cache_(options.cacheBytes),
      queue_(options.retainJobs, options.maxQueued),
      started_(std::chrono::steady_clock::now()) {
  img::Scene scene = img::generateScene(
      img::cellScene(options_.synthWidth, options_.synthHeight,
                     options_.synthCells, options_.radius, options_.seed));
  synthImage_ = std::make_shared<const img::ImageF>(std::move(scene.image));

  unsigned workers = options_.maxConcurrentJobs != 0
                         ? options_.maxConcurrentJobs
                         : budget_.total();
  workers = std::clamp(workers, 1u, budget_.total());
  workerCount_ = workers;
  workers_.reserve(workers);
  for (unsigned i = 0; i < workers; ++i) {
    workers_.emplace_back(
        [this](const std::stop_token& stop) { workerLoop(stop); });
  }
}

Server::~Server() { shutdown(0.0); }

std::shared_ptr<const img::ImageF> Server::resolveImage(
    const std::string& path, bool oneshot) {
  if (path == "synth") return synthImage_;
  return cache_.get(path, oneshot);
}

std::shared_ptr<const img::ImageF> Server::internUpload(std::uint64_t hash,
                                                        img::ImageF image,
                                                        bool oneshot) {
  return cache_.intern(hash, std::move(image), oneshot);
}

namespace {

/// Does a raw option token list carry any `key=` for one of `keys`?
bool hasOptionKey(const std::vector<std::string>& options,
                  std::initializer_list<const char*> keys) {
  for (const std::string& option : options) {
    for (const char* key : keys) {
      if (option.rfind(std::string(key) + "=", 0) == 0) return true;
    }
  }
  return false;
}

}  // namespace

std::uint64_t Server::submit(const JobSpec& spec,
                             std::shared_ptr<const img::ImageF> inlineImage) {
  JobSpec admitted = spec;
  // A sharded socket job that names no endpoints inherits the server's
  // fleet (--endpoints-file): the server is the natural owner of "which
  // hosts are mine to fan out over".
  if (!options_.fleetEndpoints.empty() && admitted.strategy == "sharded" &&
      hasOptionKey(admitted.options, {"backend"}) &&
      std::find(admitted.options.begin(), admitted.options.end(),
                "backend=socket") != admitted.options.end() &&
      !hasOptionKey(admitted.options, {"endpoints", "endpoints-file"})) {
    admitted.options.push_back("endpoints=" + options_.fleetEndpoints);
  }

  // Resolve the image and validate strategy + options at admission, so a
  // bad request fails the submitter with a descriptive error instead of
  // failing later on a worker thread.
  std::shared_ptr<const img::ImageF> image;
  if (admitted.inlineImage) {
    if (inlineImage == nullptr) {
      throw engine::EngineError(
          "@image=inline requires a preceding UPLOAD '" + admitted.image +
          "' on the submitting connection (docs/PROTOCOL.md Binary frames)");
    }
    image = std::move(inlineImage);
  } else {
    image = resolveImage(admitted.image, admitted.oneshot);
  }
  (void)engine::StrategyRegistry::builtin().create(
      admitted.strategy, engine::ExecResources{}, admitted.options);

  std::uint64_t id = 0;
  {
    // Hold imageMutex_ across admission so a worker that dequeues the job
    // immediately blocks here until its image is pinned.
    const std::scoped_lock lock(imageMutex_);
    id = queue_.submit(admitted);
    jobImages_.emplace(id, std::move(image));
  }
  emit(JobEvent{JobEvent::Type::Admitted, id, 0, 0});
  return id;
}

std::uint64_t Server::submitLine(const std::string& line) {
  return submit(engine::parseManifestLine(line));
}

CancelOutcome Server::cancel(std::uint64_t id) {
  const CancelOutcome outcome = queue_.cancel(id);
  if (outcome == CancelOutcome::QueuedCancelled) {
    {
      const std::scoped_lock lock(imageMutex_);
      jobImages_.erase(id);
    }
    emit(JobEvent{JobEvent::Type::Cancelled, id, 0, 0});
  }
  return outcome;
}

std::optional<JobStatus> Server::status(std::uint64_t id) const {
  return queue_.status(id);
}

std::optional<engine::RunReport> Server::result(std::uint64_t id) const {
  return queue_.result(id);
}

ServerStats Server::stats() const {
  ServerStats stats;
  stats.jobs = queue_.counts();
  stats.cache = cache_.stats();
  stats.threadBudget = budget_.total();
  stats.budgetAvailable = budget_.available();
  stats.workers = workerCount_;  // workers_ itself is mutated by shutdown
  stats.uptimeSeconds = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - started_)
                            .count();
  stats.draining = queue_.closed();
  return stats;
}

std::uint64_t Server::subscribe(std::function<void(const JobEvent&)> fn) {
  const std::unique_lock lock(listenerMutex_);
  const std::uint64_t token = nextListener_++;
  listeners_.emplace(token, std::move(fn));
  return token;
}

void Server::unsubscribe(std::uint64_t token) {
  // Unique over the emit()s' shared locks: returning implies no callback
  // is mid-flight, so the subscriber may tear down whatever it captured.
  const std::unique_lock lock(listenerMutex_);
  listeners_.erase(token);
}

void Server::emit(const JobEvent& event) {
  const std::shared_lock lock(listenerMutex_);
  for (const auto& [token, fn] : listeners_) fn(event);
}

void Server::workerLoop(const std::stop_token& stop) {
  while (!stop.stop_requested()) {
    const std::optional<std::uint64_t> next = queue_.waitNext(100ms);
    if (!next) {
      if (queue_.closed()) break;  // drained and no more admissions
      continue;
    }
    const std::uint64_t id = *next;
    const std::optional<JobSpec> spec = queue_.spec(id);
    std::shared_ptr<const img::ImageF> image;
    {
      const std::scoped_lock lock(imageMutex_);
      const auto it = jobImages_.find(id);
      if (it != jobImages_.end()) image = it->second;
    }

    // Reacquire this worker's thread from the long-lived budget (released
    // below when the job ends, so idle workers leave their thread leasable
    // by running strategies). A cancel while waiting aborts the wait.
    bool charged = false;
    if (spec && image != nullptr) {
      while (!queue_.cancelRequested(id)) {
        if (budget_.tryAcquireFor(1, 100ms) == 1) {
          charged = true;
          break;
        }
      }
    }

    engine::RunReport report;
    std::string error;
    if (charged && spec && image != nullptr) {
      emit(JobEvent{JobEvent::Type::Started, id, 0, 0});

      engine::BatchJob job;
      job.strategy = spec->strategy;
      job.options = spec->options;
      job.problem.filtered = image.get();
      // @radius overrides the server-wide prior knob (shard coordinators
      // use it so remote tiles sample under the coordinator's prior);
      // @radius-std/min/max carry an exact prior instead of the derived
      // rule, and @count pins the expected artifact count the way a local
      // caller sets estimateCount=false.
      const double radius = spec->radius.value_or(options_.radius);
      job.problem.prior.radiusMean = radius;
      job.problem.prior.radiusStd = spec->radiusStd.value_or(radius / 8.0);
      job.problem.prior.radiusMin = spec->radiusMin.value_or(radius / 2.0);
      job.problem.prior.radiusMax = spec->radiusMax.value_or(radius * 1.8);
      if (spec->expectedCount) {
        job.problem.estimateCount = false;
        job.problem.prior.expectedCount = *spec->expectedCount;
      }
      job.budget = options_.defaultBudget;
      if (spec->iterations) job.budget.iterations = *spec->iterations;
      if (spec->trace) job.budget.traceInterval = *spec->trace;
      job.seed = spec->seed;

      engine::ExecResources resources;
      resources.threads = options_.threads;
      resources.useOpenMp = options_.useOpenMp;
      resources.poolBudget = &budget_;
      resources.seed = engine::deriveJobSeed(options_.seed, id);

      engine::RunHooks hooks;
      hooks.cancelRequested = [this, id] {
        return queue_.cancelRequested(id);
      };
      // Record every beat (STATUS stays fine-grained) but fan events out
      // only on decile changes, so hot strategies don't hammer listeners.
      hooks.onProgress = [this, id,
                          lastDecile = -1](const engine::RunProgress& p)
          mutable {
        queue_.progress(id, p.done, p.total);
        const int decile =
            p.total == 0 ? -1 : static_cast<int>(10 * p.done / p.total);
        if (decile == lastDecile) return;
        lastDecile = decile;
        emit(JobEvent{JobEvent::Type::Progress, id, p.done, p.total});
      };

      try {
        report = runner_.runOne(job, resources, hooks);
      } catch (const std::exception& e) {
        error = e.what();
      }
    } else {
      // Cancelled before it could start (or admission raced shutdown).
      report.strategy = spec ? spec->strategy : "";
      report.cancelled = true;
      report.threadsUsed = 0;
    }
    if (charged) budget_.release(1);

    queue_.finish(id, std::move(report), std::move(error));
    {
      const std::scoped_lock lock(imageMutex_);
      jobImages_.erase(id);
    }
    const std::optional<JobStatus> finished = queue_.status(id);
    JobEvent::Type type = JobEvent::Type::Done;
    if (finished && finished->state == JobState::Failed) {
      type = JobEvent::Type::Failed;
    } else if (finished && finished->state == JobState::Cancelled) {
      type = JobEvent::Type::Cancelled;
    }
    emit(JobEvent{type, id, 0, 0});
  }
}

void Server::shutdown(double drainTimeoutSeconds) {
  const std::scoped_lock lock(shutdownMutex_);
  if (stopped_) return;
  queue_.close();
  if (drainTimeoutSeconds > 0.0) {
    (void)queue_.waitIdle(drainTimeoutSeconds);
  }
  // Grace expired (or none): cancel queued jobs outright and flag running
  // ones; workers observe the sticky flags at their next quantum.
  for (const std::uint64_t id : queue_.activeIds()) (void)cancel(id);
  workers_.clear();  // jthread join: waits for in-flight jobs to settle
  stopped_ = true;
}

}  // namespace mcmcpar::serve
