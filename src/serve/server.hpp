#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "engine/batch.hpp"
#include "img/synth.hpp"
#include "par/concurrency.hpp"
#include "serve/image_cache.hpp"
#include "serve/job_queue.hpp"
#include "stream/sequence.hpp"

namespace mcmcpar::obs {
class Collection;
}

namespace mcmcpar::serve {

/// Configuration of a serve::Server instance.
struct ServerOptions {
  /// Total worker-thread budget shared by every concurrent job and its
  /// strategy-internal workers (0 = hardware concurrency). One PoolBudget
  /// lives for the whole server lifetime; per-request work leases from it.
  unsigned threads = 0;

  /// Jobs in flight at once (0 = one per budgeted thread).
  unsigned maxConcurrentJobs = 0;

  /// ImageCache capacity in bytes (0 = unbounded).
  std::size_t cacheBytes = 256u << 20;

  /// Defaults applied to jobs whose line carries no @iters/@trace.
  engine::RunBudget defaultBudget{20000, 0};

  /// Server master seed; jobs without @seed derive per-id seeds from it.
  std::uint64_t seed = 1;

  /// Prefer OpenMP executors where strategies support it.
  bool useOpenMp = false;

  /// Circle prior applied to every job (mirrors the mcmcpar_run knobs).
  double radius = 9.0;

  /// The "synth" image: a generated scene shared by all synth jobs.
  int synthWidth = 192;
  int synthHeight = 192;
  int synthCells = 10;

  /// Terminal job records retained for RESULT queries.
  std::size_t retainJobs = 4096;

  /// Bounded admission: reject new submissions while this many jobs are
  /// already queued (0 = unbounded). Rejections surface as QueueFullError
  /// (`ERR QUEUE_FULL` over the socket) so clients can back off instead of
  /// growing the backlog without bound.
  std::size_t maxQueued = 0;

  /// Default endpoint fleet, as the `endpoints=` option value
  /// (host:port[*weight][,...]). When non-empty, a submitted "sharded" job
  /// with backend=socket but no endpoints/endpoints-file option fans out
  /// over this fleet — mcmcpar_serve --endpoints-file fills it in. Kept as
  /// the option string (not parsed structs) so the serve layer stays free
  /// of shard-layer types.
  std::string fleetEndpoints;

  /// Test hook (mcmcpar_serve --delay-ms): every job sleeps this long
  /// after Started before doing real work, making the server an
  /// artificially slow endpoint for straggler-hedging tests and smoke
  /// runs. The sleep polls cancellation, so cancels stay prompt.
  unsigned startDelayMs = 0;
};

/// One progress/lifecycle event of a job, streamed to subscribers.
struct JobEvent {
  enum class Type { Admitted, Started, Progress, Frame, Done, Failed,
                    Cancelled };
  Type type = Type::Admitted;
  std::uint64_t id = 0;
  std::uint64_t done = 0;   ///< Progress: iterations done.
                            ///< Frame: 0-based index of the finished frame.
  std::uint64_t total = 0;  ///< Progress: iteration budget.
                            ///< Frame: frames in the sequence.
  /// Per-job monotonic sequence number, assigned from 1 when the event is
  /// emitted. Gaps are normal (Progress events are decile-throttled); a
  /// non-increasing seq means the transport dropped or reordered events.
  std::uint64_t seq = 0;
};

[[nodiscard]] const char* toString(JobEvent::Type type) noexcept;

/// A consistent point-in-time summary for STATS and shutdown logs.
struct ServerStats {
  JobCounts jobs;
  ImageCacheStats cache;
  unsigned threadBudget = 0;
  unsigned budgetAvailable = 0;
  unsigned workers = 0;
  double uptimeSeconds = 0.0;
  bool draining = false;
  std::vector<ClientStats> clients;  ///< weighted-fair admission buckets
};

/// The persistent serving core: owns one par::PoolBudget, one ImageCache
/// and one JobQueue for its whole lifetime, and executes admitted jobs on
/// resident worker threads through engine::BatchRunner::runOne — so
/// repeated requests skip process startup, PGM decode and budget
/// construction entirely.
///
/// Front-ends (socket, watch directory) translate their wire format into
/// submit()/cancel()/status()/result() calls and observe per-job progress
/// through subscribe(). The server itself speaks no protocol.
class Server {
 public:
  explicit Server(ServerOptions options = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Admit one job. Throws engine::EngineError on an unknown strategy,
  /// malformed options, or after shutdown began; throws img::PnmError when
  /// the image path cannot be read (the image is resolved through the cache
  /// at admission, so a bad path fails the request, not the worker).
  ///
  /// `inlineImage` satisfies a spec with `@image=inline`: the front-end
  /// resolved the image from its own upload namespace (UPLOAD frames are
  /// per-connection) and passes it here pre-decoded. An inline spec without
  /// an image is rejected — manifest files cannot carry pixels.
  ///
  /// `inlineFrames` satisfies an inline `@sequence=N` spec the same way:
  /// the front-end gathered the N uploaded frames (ids `<image>.0` ..
  /// `<image>.N-1`) and passes them in order. Sequence specs naming paths
  /// resolve their frames here at admission instead (glob expansion, or a
  /// generated drifting scene for the "synth" image), so a bad frame fails
  /// the request, not the worker.
  [[nodiscard]] std::uint64_t submit(
      const JobSpec& spec,
      std::shared_ptr<const img::ImageF> inlineImage = nullptr,
      std::vector<std::shared_ptr<const img::ImageF>> inlineFrames = {});

  /// Intern an uploaded frame into the image cache under its content hash
  /// (UPLOAD). `oneshot` bypasses insertion so single-use tiles don't evict
  /// warm entries; a resident duplicate is returned either way.
  [[nodiscard]] std::shared_ptr<const img::ImageF> internUpload(
      std::uint64_t hash, img::ImageF image, bool oneshot);

  /// Parse a protocol job line and submit it.
  [[nodiscard]] std::uint64_t submitLine(const std::string& line);

  CancelOutcome cancel(std::uint64_t id);
  [[nodiscard]] std::optional<JobStatus> status(std::uint64_t id) const;
  [[nodiscard]] std::optional<engine::RunReport> result(
      std::uint64_t id) const;
  [[nodiscard]] ServerStats stats() const;

  /// Register an event listener. Callbacks run on worker and submitter
  /// threads, possibly concurrently with themselves; they must be fast,
  /// thread-safe, and must not call subscribe/unsubscribe from within the
  /// callback. Returns a token for unsubscribe(), which acts as a barrier:
  /// once it returns, the callback is not running and never will again.
  [[nodiscard]] std::uint64_t subscribe(std::function<void(const JobEvent&)>);
  void unsubscribe(std::uint64_t token);

  /// Next event sequence number for a job (monotonic from 1). Events
  /// emitted through the server are stamped automatically; the socket
  /// front-end uses this for the synthetic terminal event a late WAIT
  /// fabricates, so that event too continues the job's sequence.
  [[nodiscard]] std::uint64_t nextEventSeq(std::uint64_t id) {
    return queue_.nextEventSeq(id);
  }

  /// FRAME events a sequence job already emitted, in seq order. A WAIT
  /// that subscribes after a fast early frame replays these first so the
  /// client still sees one event per frame.
  [[nodiscard]] std::vector<FrameMark> frameHistory(std::uint64_t id) const {
    return queue_.frameHistory(id);
  }

  /// Graceful shutdown: stop admitting, wait up to `drainTimeoutSeconds`
  /// for queued+running jobs to finish, then cancel whatever is left and
  /// join the workers. Idempotent; the destructor calls it with no grace.
  void shutdown(double drainTimeoutSeconds);

  [[nodiscard]] bool draining() const { return queue_.closed(); }

  [[nodiscard]] const ServerOptions& options() const noexcept {
    return options_;
  }

 private:
  void workerLoop(const std::stop_token& stop);
  void emit(JobEvent event);
  /// Scrape-time collector registered with obs::Registry::global(): renders
  /// stats() (queue counts, cache, budget, per-client fairness, deficits)
  /// so METRICS, STATS and the shutdown summary share one source of truth.
  void collectMetrics(obs::Collection& out) const;
  [[nodiscard]] std::shared_ptr<const img::ImageF> resolveImage(
      const std::string& path, bool oneshot);
  [[nodiscard]] std::vector<stream::Frame> resolveSequenceFrames(
      const JobSpec& spec,
      std::vector<std::shared_ptr<const img::ImageF>> inlineFrames);
  [[nodiscard]] engine::RunReport runSequenceJob(
      std::uint64_t id, const JobSpec& spec,
      std::vector<stream::Frame> frames);

  ServerOptions options_;
  par::PoolBudget budget_;
  ImageCache cache_;
  JobQueue queue_;
  engine::BatchRunner runner_;
  std::shared_ptr<const img::ImageF> synthImage_;
  std::chrono::steady_clock::time_point started_;

  std::mutex imageMutex_;  ///< pins job-id -> frame(s) while the job is alive
  std::map<std::uint64_t, std::vector<stream::Frame>> jobImages_;

  // Emits take the lock shared (concurrent, non-blocking between workers);
  // subscribe/unsubscribe take it unique, making unsubscribe a barrier.
  std::shared_mutex listenerMutex_;
  std::map<std::uint64_t, std::function<void(const JobEvent&)>> listeners_;
  std::uint64_t nextListener_ = 1;

  std::mutex shutdownMutex_;  ///< serialises shutdown() callers
  bool stopped_ = false;
  std::uint64_t metricsCollector_ = 0;  ///< obs registry collector token
  unsigned workerCount_ = 0;  ///< immutable after construction (stats())
  std::vector<std::jthread> workers_;  ///< last member: joins first
};

}  // namespace mcmcpar::serve
