#include "serve/socket.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <iterator>
#include <sstream>

#include "engine/batch.hpp"
#include "engine/options.hpp"
#include "img/pnm_io.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/protocol.hpp"

namespace mcmcpar::serve {

namespace {

/// Receive timeout applied to every server-side connection so handler
/// threads poll the stopping flag instead of blocking in recv forever.
constexpr int kPollMillis = 200;

/// Binary-frame bounds: a declared dimension past kMaxFrameDim or payload
/// past kMaxFrameBytes is rejected (TOO_LARGE) without reading the body; a
/// payload within bounds is fully consumed even when the frame is rejected,
/// so the connection stays usable. kFrameReadMillis bounds how long the
/// server waits for a slow/truncated body before giving up on it.
constexpr std::uint64_t kMaxFrameDim = 1u << 16;
constexpr std::uint64_t kMaxFrameBytes = 1u << 30;
constexpr int kFrameReadMillis = 30000;

/// Uploads retained per connection; the oldest is dropped past the cap.
constexpr std::size_t kMaxUploadsPerConnection = 64;

void setRecvTimeout(int fd, long millis) {
  timeval tv{};
  tv.tv_sec = millis / 1000;
  tv.tv_usec = (millis % 1000) * 1000;
  (void)setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

bool sendAll(int fd, const std::string& text) {
  std::size_t sent = 0;
  while (sent < text.size()) {
    const ssize_t n =
        ::send(fd, text.data() + sent, text.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) return false;
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

bool sendLine(int fd, const std::string& line) {
  return sendAll(fd, line + "\n");
}

/// Read exactly `want` bytes of a frame body into `out` (or discard them
/// when `out` is null), draining `buffer` (bytes received past the header
/// line) first. False on EOF, error, stop, or the frame-read deadline.
bool readBody(int fd, std::string& buffer, char* out, std::size_t want,
              const std::atomic<bool>& stopping) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(kFrameReadMillis);
  std::size_t got = 0;
  char scratch[65536];
  if (!buffer.empty()) {
    const std::size_t take = std::min(want, buffer.size());
    if (out != nullptr) std::memcpy(out, buffer.data(), take);
    buffer.erase(0, take);
    got = take;
  }
  while (got < want) {
    if (stopping.load() || std::chrono::steady_clock::now() >= deadline) {
      return false;
    }
    char* dst = out != nullptr ? out + got : scratch;
    const std::size_t room =
        out != nullptr ? want - got : std::min(want - got, sizeof(scratch));
    const ssize_t n = ::recv(fd, dst, room, 0);
    if (n == 0) return false;  // client closed mid-frame
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
        continue;  // poll tick: re-check stopping_ and the deadline
      }
      return false;
    }
    got += static_cast<std::size_t>(n);
  }
  return true;
}

/// The command word metrics are labelled with. Returns a member of the
/// fixed protocol vocabulary (or "UNKNOWN") rather than the raw token, so
/// a garbage-spewing client cannot create unbounded label cardinality.
const char* commandWord(const std::string& line) {
  static constexpr const char* kCommands[] = {
      "PING",   "SUBMIT", "UPLOAD",  "STATUS",   "RESULT", "REPORT",
      "CANCEL", "WAIT",   "STATS",   "METRICS",  "SHUTDOWN"};
  const std::size_t space = line.find_first_of(" \t");
  const std::string word =
      space == std::string::npos ? line : line.substr(0, space);
  for (const char* known : kCommands) {
    if (word == known) return known;
  }
  return "UNKNOWN";
}

/// +1 on a gauge for this scope (active connection tracking survives every
/// exit path of the handler).
class GaugeScope {
 public:
  explicit GaugeScope(obs::Gauge& gauge) : gauge_(gauge) { gauge_.add(1.0); }
  ~GaugeScope() { gauge_.add(-1.0); }
  GaugeScope(const GaugeScope&) = delete;
  GaugeScope& operator=(const GaugeScope&) = delete;

 private:
  obs::Gauge& gauge_;
};

/// Parse a strict decimal job id; false on anything else.
bool parseId(const std::string& text, std::uint64_t& id) {
  if (text.empty()) return false;
  char* end = nullptr;
  errno = 0;
  const unsigned long long value = std::strtoull(text.c_str(), &end, 10);
  if (errno != 0 || end != text.c_str() + text.size()) return false;
  id = value;
  return true;
}

}  // namespace

// ---------------------------------------------------------------------------
// SocketFrontend
// ---------------------------------------------------------------------------

SocketFrontend::SocketFrontend(Server& server, std::uint16_t port,
                               std::function<void()> onShutdown)
    : server_(server), onShutdown_(std::move(onShutdown)) {
  listenFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listenFd_ < 0) {
    throw ProtocolError(std::string("socket(): ") + std::strerror(errno));
  }
  const int one = 1;
  (void)setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listenFd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
          0 ||
      ::listen(listenFd_, 64) < 0) {
    const std::string reason = std::strerror(errno);
    ::close(listenFd_);
    listenFd_ = -1;
    throw ProtocolError("cannot listen on 127.0.0.1:" + std::to_string(port) +
                        ": " + reason);
  }
  socklen_t len = sizeof(addr);
  (void)getsockname(listenFd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  setRecvTimeout(listenFd_, kPollMillis);  // accept() polls via SO_RCVTIMEO

  acceptor_ = std::jthread([this] { acceptLoop(); });
}

SocketFrontend::~SocketFrontend() { stop(); }

void SocketFrontend::stop() {
  if (stopping_.exchange(true)) return;
  const int fd = listenFd_.exchange(-1);
  if (fd >= 0) {
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
  if (acceptor_.joinable()) acceptor_.join();
  std::list<std::unique_ptr<Connection>> connections;
  {
    const std::scoped_lock lock(connectionsMutex_);
    connections.swap(connections_);
  }
  connections.clear();  // joins: handlers see stopping_ within kPollMillis
}

void SocketFrontend::acceptLoop() {
  while (!stopping_.load()) {
    const int listenFd = listenFd_.load();
    if (listenFd < 0) break;
    const int fd = ::accept(listenFd, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load()) break;
      continue;  // EAGAIN (poll tick) or transient error
    }
    setRecvTimeout(fd, kPollMillis);
    const std::scoped_lock lock(connectionsMutex_);
    // Reap handlers that already finished (their join is instantaneous).
    for (auto it = connections_.begin(); it != connections_.end();) {
      it = (*it)->done.load() ? connections_.erase(it) : std::next(it);
    }
    auto connection = std::make_unique<Connection>();
    Connection* raw = connection.get();
    connection->thread = std::jthread([this, fd, raw] {
      handleConnection(fd);
      raw->done.store(true);
    });
    connections_.push_back(std::move(connection));
  }
}

void SocketFrontend::handleConnection(int fd) {
  obs::Registry& registry = obs::Registry::global();
  const GaugeScope connectionGauge(
      registry.gauge("mcmcpar_serve_active_connections",
                     "Socket connections currently open."));
  std::string buffer;
  char chunk[4096];
  bool keepOpen = true;
  ConnectionState state;
  while (keepOpen && !stopping_.load()) {
    const std::size_t newline = buffer.find('\n');
    if (newline == std::string::npos) {
      const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
      if (n == 0) break;  // client closed
      if (n < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
          continue;  // poll tick: re-check stopping_
        }
        break;
      }
      buffer.append(chunk, static_cast<std::size_t>(n));
      continue;
    }
    std::string line = buffer.substr(0, newline);
    buffer.erase(0, newline + 1);
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    // UPLOAD is the one command followed by a binary body, so it cannot go
    // through the line dispatcher: the body is consumed here, from `buffer`
    // (bytes already received) plus the socket.
    const char* command = commandWord(line);
    const auto commandStart = std::chrono::steady_clock::now();
    obs::Span commandSpan("serve", std::string("cmd:") + command);
    const std::string reply =
        line.rfind("UPLOAD", 0) == 0 &&
                (line.size() == 6 || line[6] == ' ' || line[6] == '\t')
            ? handleUpload(line, fd, buffer, state, keepOpen)
            : dispatch(line, fd, state, keepOpen);
    const bool sent = reply.empty() || sendLine(fd, reply);
    // Every command is counted and timed — including REPORT and WAIT,
    // which the pre-registry stats never saw. WAIT's latency spans its
    // whole event stream by design.
    registry
        .counter("mcmcpar_serve_commands_total",
                 "Socket commands handled, by command word.",
                 {{"command", command}})
        .add();
    registry
        .histogram("mcmcpar_serve_command_seconds",
                   "Wall time from parsing a command to its final reply.",
                   obs::latencyBuckets(), {{"command", command}})
        .observe(std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - commandStart)
                     .count());
    if (!sent) break;
  }
  ::close(fd);
}

std::string SocketFrontend::handleUpload(const std::string& line, int fd,
                                         std::string& buffer,
                                         ConnectionState& state,
                                         bool& keepOpen) {
  std::istringstream tokens(line);
  std::string command, id, wText, hText, nText, extra;
  tokens >> command >> id >> wText >> hText >> nText;
  std::uint64_t width = 0;
  std::uint64_t height = 0;
  std::uint64_t nbytes = 0;
  bool headerOk = !id.empty() && parseId(wText, width) &&
                  parseId(hText, height) && parseId(nText, nbytes);
  bool oneshot = false;
  if (headerOk && tokens >> extra) {
    if (extra == "oneshot" && !(tokens >> extra)) {
      oneshot = true;
    } else {
      headerOk = false;
    }
  }
  if (!headerOk) {
    // The body length is unknowable from a malformed header, so the stream
    // cannot be resynchronised: reply and drop the connection.
    keepOpen = false;
    return protocol::errLine(
        protocol::kErrBadFrame,
        "expected 'UPLOAD <id> <w> <h> <nbytes> [oneshot]', got '" + line +
            "'");
  }

  // A well-formed header declares the body length, so a rejected frame can
  // still be drained and the connection kept: discard the payload (bounded
  // by kMaxFrameBytes — past that, close instead of reading a gigabyte).
  const auto reject = [&](const char* code, const std::string& message) {
    if (nbytes > kMaxFrameBytes ||
        !readBody(fd, buffer, nullptr, nbytes, stopping_)) {
      keepOpen = false;
    }
    return protocol::errLine(code, message);
  };

  if (width == 0 || height == 0 || nbytes == 0) {
    return reject(protocol::kErrBadFrame,
                  "zero-size frame: w, h and nbytes must all be > 0");
  }
  if (width > kMaxFrameDim || height > kMaxFrameDim ||
      nbytes > kMaxFrameBytes) {
    return reject(protocol::kErrTooLarge,
                  "frame exceeds protocol bounds (max dimension " +
                      std::to_string(kMaxFrameDim) + ", max payload " +
                      std::to_string(kMaxFrameBytes) + " bytes)");
  }
  const std::uint64_t pixels = width * height;
  if (nbytes != pixels && nbytes != 4 * pixels) {
    return reject(protocol::kErrBadFrame,
                  "nbytes " + nText + " matches neither w*h (gray8, " +
                      std::to_string(pixels) + ") nor 4*w*h (float32, " +
                      std::to_string(4 * pixels) + ")");
  }
  const std::size_t cacheCapacity = server_.options().cacheBytes;
  if (cacheCapacity != 0 && pixels * sizeof(float) > cacheCapacity) {
    return reject(protocol::kErrTooLarge,
                  "decoded image (" + std::to_string(pixels * sizeof(float)) +
                      " bytes) exceeds the server's image cache capacity (" +
                      std::to_string(cacheCapacity) + " bytes)");
  }

  std::string body(static_cast<std::size_t>(nbytes), '\0');
  if (!readBody(fd, buffer, body.data(), body.size(), stopping_)) {
    keepOpen = false;  // truncated mid-frame: the stream is desynchronised
    return protocol::errLine(protocol::kErrBadFrame,
                             "truncated frame: connection delivered fewer "
                             "than the declared " +
                                 nText + " payload bytes");
  }

  const int w = static_cast<int>(width);
  const int h = static_cast<int>(height);
  const bool floatFrame = nbytes == 4 * pixels;
  const std::uint64_t hash = ImageCache::hashFrame(
      w, h, floatFrame ? 4 : 1, body.data(), body.size());
  img::ImageF image(w, h);
  if (floatFrame) {
    std::memcpy(image.pixels().data(), body.data(), body.size());
  } else {
    for (std::size_t i = 0; i < pixels; ++i) {
      image.pixels()[i] = static_cast<float>(
                              static_cast<unsigned char>(body[i])) /
                          255.0f;
    }
  }
  std::shared_ptr<const img::ImageF> interned =
      server_.internUpload(hash, std::move(image), oneshot);

  if (state.uploads.find(id) == state.uploads.end()) {
    state.uploadOrder.push_back(id);
    if (state.uploadOrder.size() > kMaxUploadsPerConnection) {
      state.uploads.erase(state.uploadOrder.front());
      state.uploadOrder.erase(state.uploadOrder.begin());
    }
  }
  state.uploads[id] = std::move(interned);
  return protocol::okLine(id + " " + ImageCache::hashHex(hash));
}

std::string SocketFrontend::dispatch(const std::string& line, int fd,
                                     ConnectionState& state, bool& keepOpen) {
  std::istringstream tokens(line);
  std::string command;
  tokens >> command;

  if (command == "PING") return protocol::okLine("pong");

  if (command == "SUBMIT") {
    std::string payload;
    std::getline(tokens, payload);
    try {
      const engine::ManifestEntry entry = engine::parseManifestLine(payload);
      std::shared_ptr<const img::ImageF> inlineImage;
      std::vector<std::shared_ptr<const img::ImageF>> inlineFrames;
      if (entry.inlineImage && !entry.sequence.empty()) {
        // An inline sequence names its frames `<image>.0` .. `<image>.N-1`
        // in this connection's upload namespace; gather them in order.
        const std::optional<std::uint64_t> count =
            stream::parseFrameCount(entry.sequence);
        if (!count) {
          return protocol::errLine(
              protocol::kErrBadJob,
              "@sequence with @image=inline requires a decimal frame "
              "count, got '" +
                  entry.sequence + "'");
        }
        for (std::uint64_t k = 0; k < *count; ++k) {
          const std::string frameId =
              entry.image + "." + std::to_string(k);
          const auto it = state.uploads.find(frameId);
          if (it == state.uploads.end()) {
            return protocol::errLine(
                protocol::kErrBadJob,
                "@sequence: no upload named '" + frameId +
                    "' on this connection (send UPLOAD frames first)");
          }
          inlineFrames.push_back(it->second);
        }
      } else if (entry.inlineImage) {
        const auto it = state.uploads.find(entry.image);
        if (it == state.uploads.end()) {
          return protocol::errLine(
              protocol::kErrBadJob,
              "@image=inline: no upload named '" + entry.image +
                  "' on this connection (send an UPLOAD frame first)");
        }
        inlineImage = it->second;
      }
      const std::uint64_t id = server_.submit(entry, std::move(inlineImage),
                                              std::move(inlineFrames));
      return protocol::okLine(std::to_string(id));
    } catch (const QueueFullError& e) {
      return protocol::errLine(protocol::kErrQueueFull, e.what());
    } catch (const engine::EngineError& e) {
      return protocol::errLine(server_.draining() ? protocol::kErrShuttingDown
                                                  : protocol::kErrBadJob,
                               e.what());
    } catch (const img::PnmError& e) {
      return protocol::errLine(protocol::kErrBadJob, e.what());
    } catch (const std::exception& e) {
      // Any other parser/admission exception must reject the request, not
      // escape the connection thread and terminate the whole server.
      return protocol::errLine(protocol::kErrBadJob, e.what());
    }
  }

  if (command == "STATUS" || command == "RESULT" || command == "REPORT" ||
      command == "CANCEL" || command == "WAIT") {
    std::string idText;
    tokens >> idText;
    std::uint64_t id = 0;
    if (!parseId(idText, id)) {
      return protocol::errLine(protocol::kErrBadRequest,
                               "expected '" + command + " <id>'");
    }
    const std::optional<JobStatus> status = server_.status(id);
    if (!status) {
      return protocol::errLine(protocol::kErrUnknownJob,
                               "no such job " + idText);
    }

    if (command == "STATUS") {
      return protocol::okLine(idText + " " + toString(status->state) + " " +
                              std::to_string(status->progressDone) + " " +
                              std::to_string(status->progressTotal));
    }
    if (command == "RESULT" || command == "REPORT") {
      const std::optional<engine::RunReport> report = server_.result(id);
      if (!report) {
        return protocol::errLine(
            protocol::kErrPending,
            "job " + idText + " is " + toString(status->state));
      }
      return protocol::okLine(
          idText + " " +
          (command == "REPORT" ? protocol::reportJson(*status, *report)
                               : protocol::jobJson(*status, *report)));
    }
    if (command == "CANCEL") {
      switch (server_.cancel(id)) {
        case CancelOutcome::QueuedCancelled:
          return protocol::okLine(idText + " cancelled");
        case CancelOutcome::RunningFlagged:
          return protocol::okLine(idText + " cancelling");
        case CancelOutcome::AlreadyTerminal:
          return protocol::okLine(idText + " already-terminal");
        case CancelOutcome::Unknown:
          break;
      }
      return protocol::errLine(protocol::kErrUnknownJob,
                               "no such job " + idText);
    }

    // WAIT: subscribe, stream events for this id until a terminal one.
    // Only this connection thread writes to the socket; the listener just
    // enqueues, so event ordering is preserved and writes never interleave.
    std::mutex eventMutex;
    std::condition_variable eventReady;
    std::deque<JobEvent> events;
    const std::uint64_t token =
        server_.subscribe([&, id](const JobEvent& event) {
          if (event.id != id) return;
          {
            const std::scoped_lock lock(eventMutex);
            events.push_back(event);
          }
          eventReady.notify_one();
        });

    // Replay FRAME events emitted before the subscription took effect — a
    // fast first frame can finish before the client's WAIT arrives, and a
    // WAIT on an already-finished sequence job should still stream one
    // event per frame. Merge by seq with anything the listener queued in
    // the meantime; equal seqs are the same event delivered both ways.
    {
      const std::vector<FrameMark> history = server_.frameHistory(id);
      if (!history.empty()) {
        std::deque<JobEvent> merged;
        for (const FrameMark& mark : history) {
          JobEvent event;
          event.type = JobEvent::Type::Frame;
          event.id = id;
          event.done = mark.frame;
          event.total = mark.total;
          event.seq = mark.seq;
          merged.push_back(event);
        }
        const std::scoped_lock lock(eventMutex);
        for (const JobEvent& live : events) {
          const auto pos = std::lower_bound(
              merged.begin(), merged.end(), live.seq,
              [](const JobEvent& e, std::uint64_t seq) { return e.seq < seq; });
          if (pos != merged.end() && pos->seq == live.seq) continue;
          merged.insert(pos, live);
        }
        events = std::move(merged);
      }
    }

    std::string finalState;
    bool vanished = false;  // pruned from retention while we waited
    // The job may already be terminal (subscribe raced the finish): emit
    // the synthetic terminal event from its recorded state.
    int lastDecile = -1;
    while (finalState.empty() && !stopping_.load()) {
      const std::optional<JobStatus> now = server_.status(id);
      if (!now) {
        vanished = true;
        break;
      }
      if (isTerminal(now->state)) {
        std::unique_lock lock(eventMutex);
        if (events.empty()) {
          JobEvent event;
          event.id = id;
          event.type = now->state == JobState::Done ? JobEvent::Type::Done
                       : now->state == JobState::Failed
                           ? JobEvent::Type::Failed
                           : JobEvent::Type::Cancelled;
          // Continue the job's event numbering so even the synthetic
          // terminal line keeps the stream monotonic for this client.
          event.seq = server_.nextEventSeq(id);
          events.push_back(event);
        }
      }
      std::unique_lock lock(eventMutex);
      eventReady.wait_for(lock, std::chrono::milliseconds(kPollMillis),
                          [&] { return !events.empty(); });
      while (!events.empty()) {
        const JobEvent event = events.front();
        events.pop_front();
        if (event.type == JobEvent::Type::Progress) {
          // Throttle the stream to decile changes; strategies may beat far
          // more often than a client wants to read.
          const int decile =
              event.total == 0
                  ? -1
                  : static_cast<int>(10 * event.done / event.total);
          if (decile == lastDecile) continue;
          lastDecile = decile;
        }
        lock.unlock();
        const bool ok = sendLine(fd, protocol::eventLine(event));
        lock.lock();
        if (!ok) {
          keepOpen = false;
          break;
        }
        if (event.type == JobEvent::Type::Done ||
            event.type == JobEvent::Type::Failed ||
            event.type == JobEvent::Type::Cancelled) {
          finalState = event.type == JobEvent::Type::Done     ? "done"
                       : event.type == JobEvent::Type::Failed ? "failed"
                                                              : "cancelled";
          break;
        }
      }
      if (!keepOpen) break;
    }
    server_.unsubscribe(token);
    if (vanished) {
      return protocol::errLine(protocol::kErrUnknownJob,
                               "job " + idText + " no longer retained");
    }
    if (!keepOpen || finalState.empty()) return "";
    return protocol::okLine(idText + " " + finalState);
  }

  if (command == "STATS") {
    return protocol::okLine(protocol::statsJson(server_.stats()));
  }

  if (command == "METRICS") {
    // Byte-framed like UPLOAD in reverse: `OK <nbytes>` then exactly
    // nbytes of Prometheus text exposition, so line-oriented clients can
    // skip the body while scrapers read it verbatim (docs/PROTOCOL.md).
    const std::string body = obs::Registry::global().renderPrometheus();
    if (!sendLine(fd, protocol::okLine(std::to_string(body.size()))) ||
        !sendAll(fd, body)) {
      keepOpen = false;
    }
    return "";
  }

  if (command == "SHUTDOWN") {
    keepOpen = false;
    if (!shutdownFired_.exchange(true) && onShutdown_) onShutdown_();
    return protocol::okLine("draining");
  }

  return protocol::errLine(protocol::kErrBadRequest,
                           "unknown command '" + command + "'");
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

Client::~Client() { close(); }

void Client::connect(const std::string& host, std::uint16_t port,
                     double readTimeoutSeconds) {
  close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    throw ProtocolError(std::string("socket(): ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    close();
    throw ProtocolError("invalid host address '" + host + "'");
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const std::string reason = std::strerror(errno);
    close();
    throw ProtocolError("cannot connect to " + host + ":" +
                        std::to_string(port) + ": " + reason);
  }
  if (readTimeoutSeconds > 0.0) {
    setRecvTimeout(fd_, std::lround(readTimeoutSeconds * 1000.0));
  }
  const int one = 1;
  (void)setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

void Client::close() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
  buffer_.clear();
}

void Client::send(const std::string& line) {
  if (fd_ < 0) throw ProtocolError("not connected");
  if (!sendLine(fd_, line)) {
    throw ProtocolError("send failed: " + std::string(std::strerror(errno)));
  }
}

std::string Client::readLine() {
  if (fd_ < 0) throw ProtocolError("not connected");
  char chunk[4096];
  while (true) {
    const std::size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      std::string line = buffer_.substr(0, newline);
      buffer_.erase(0, newline + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return line;
    }
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n == 0) throw ProtocolError("server closed the connection");
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        throw ProtocolError("timed out waiting for a reply");
      }
      throw ProtocolError("recv failed: " +
                          std::string(std::strerror(errno)));
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

std::string Client::request(const std::string& line) {
  send(line);
  return readLine();
}

std::uint64_t Client::submit(const std::string& jobLine) {
  const std::string reply = request("SUBMIT " + jobLine);
  std::istringstream tokens(reply);
  std::string status, idText;
  tokens >> status >> idText;
  std::uint64_t id = 0;
  if (status != "OK" || !parseId(idText, id)) {
    throw ProtocolError("SUBMIT rejected: " + reply);
  }
  return id;
}

std::string Client::upload(const std::string& id, const img::ImageU8& image,
                           bool oneshot) {
  return uploadFrame(id, image.width(), image.height(),
                     image.pixels().data(), image.pixelCount(), oneshot);
}

std::string Client::upload(const std::string& id, const img::ImageF& image,
                           bool oneshot) {
  return uploadFrame(id, image.width(), image.height(),
                     image.pixels().data(),
                     image.pixelCount() * sizeof(float), oneshot);
}

std::string Client::uploadFrame(const std::string& id, int width, int height,
                                const void* data, std::size_t nbytes,
                                bool oneshot) {
  if (fd_ < 0) throw ProtocolError("not connected");
  if (id.empty() || id.find_first_of(" \t\r\n") != std::string::npos) {
    throw ProtocolError("upload id must be non-empty without whitespace, "
                        "got '" +
                        id + "'");
  }
  std::string frame = "UPLOAD " + id + " " + std::to_string(width) + " " +
                      std::to_string(height) + " " + std::to_string(nbytes) +
                      (oneshot ? " oneshot" : "") + "\n";
  frame.append(static_cast<const char*>(data), nbytes);
  if (!sendAll(fd_, frame)) {
    throw ProtocolError("send failed: " + std::string(std::strerror(errno)));
  }
  const std::string reply = readLine();
  std::istringstream tokens(reply);
  std::string status, replyId, hash;
  tokens >> status >> replyId >> hash;
  if (status != "OK" || replyId != id || hash.size() != 16) {
    throw ProtocolError("UPLOAD rejected: " + reply);
  }
  return hash;
}

std::string Client::metrics() {
  const std::string header = request("METRICS");
  std::istringstream tokens(header);
  std::string status, sizeText;
  tokens >> status >> sizeText;
  std::uint64_t nbytes = 0;
  if (status != "OK" || !parseId(sizeText, nbytes)) {
    throw ProtocolError("METRICS failed: " + header);
  }
  std::string body;
  body.reserve(static_cast<std::size_t>(nbytes));
  char chunk[4096];
  while (body.size() < nbytes) {
    if (!buffer_.empty()) {
      const std::size_t take = std::min<std::size_t>(
          static_cast<std::size_t>(nbytes) - body.size(), buffer_.size());
      body.append(buffer_, 0, take);
      buffer_.erase(0, take);
      continue;
    }
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n == 0) {
      throw ProtocolError("server closed mid-METRICS body");
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        throw ProtocolError("timed out reading the METRICS body");
      }
      throw ProtocolError("recv failed: " +
                          std::string(std::strerror(errno)));
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
  return body;
}

std::string Client::report(std::uint64_t id) {
  const std::string reply = request("REPORT " + std::to_string(id));
  const std::string prefix = "OK " + std::to_string(id) + " ";
  if (reply.rfind(prefix, 0) != 0) {
    throw ProtocolError("REPORT failed: " + reply);
  }
  return reply.substr(prefix.size());
}

std::string Client::wait(
    std::uint64_t id, const std::function<void(const std::string&)>& onEvent) {
  send("WAIT " + std::to_string(id));
  while (true) {
    const std::string line = readLine();
    if (line.rfind("EVENT ", 0) == 0) {
      if (onEvent) onEvent(line);
      continue;
    }
    std::istringstream tokens(line);
    std::string status, idText, state;
    tokens >> status >> idText >> state;
    if (status != "OK") throw ProtocolError("WAIT failed: " + line);
    return state;
  }
}

}  // namespace mcmcpar::serve
