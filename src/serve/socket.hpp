#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "serve/server.hpp"

namespace mcmcpar::serve {

/// Client-side failure of the serve protocol (connection refused, EOF,
/// or an ERR reply surfaced through Client's convenience helpers).
class ProtocolError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// The TCP front-end: newline-delimited commands over 127.0.0.1, one
/// handler thread per connection, translated into Server calls.
///
/// Commands (normative spec with the full grammar and a worked transcript:
/// docs/PROTOCOL.md):
///   SUBMIT <job line>   -> OK <id>
///   UPLOAD <id> <w> <h> <nbytes> [oneshot]
///                       -> binary frame: <nbytes> raw payload bytes follow
///                          the newline; reply OK <id> <hash> — the image
///                          is interned by content hash and addressable as
///                          `<id> ... @image=inline` on this connection
///   STATUS <id>         -> OK <id> <state> <done> <total>
///   RESULT <id>         -> OK <id> <json>
///   REPORT <id>         -> OK <id> <json + circles_detail> (shard merges)
///   CANCEL <id>         -> OK <id> cancelled|cancelling|already-terminal
///   WAIT <id>           -> EVENT lines until terminal, then OK <id> <state>
///   STATS               -> OK <json>
///   METRICS             -> OK <nbytes>, then <nbytes> raw bytes of
///                          Prometheus text exposition (obs::Registry)
///   PING                -> OK pong
///   SHUTDOWN            -> OK draining (and fires the onShutdown callback)
/// Failures reply `ERR <code> <message>` (QUEUE_FULL when bounded
/// admission rejects a SUBMIT; BAD_FRAME/TOO_LARGE reject an UPLOAD).
class SocketFrontend {
 public:
  /// Bind 127.0.0.1:`port` (0 = pick an ephemeral port) and start
  /// accepting. `onShutdown` is invoked (once) from a connection thread
  /// when a client issues SHUTDOWN; it must not block — typically it wakes
  /// the main loop, which then calls Server::shutdown and stop().
  /// Throws ProtocolError when the socket cannot be bound.
  SocketFrontend(Server& server, std::uint16_t port,
                 std::function<void()> onShutdown = {});
  ~SocketFrontend();

  SocketFrontend(const SocketFrontend&) = delete;
  SocketFrontend& operator=(const SocketFrontend&) = delete;

  /// The bound port (the resolved one when constructed with 0).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// Close the listener, disconnect clients and join handler threads.
  /// Idempotent; the destructor calls it.
  void stop();

 private:
  /// Per-connection state: the UPLOAD namespace. Uploads are addressable
  /// only from the connection that sent them and die with it — jobs that
  /// consumed one keep the image pinned through the server instead. The
  /// namespace is bounded (oldest dropped) so an id-churning client cannot
  /// grow server memory.
  struct ConnectionState {
    std::map<std::string, std::shared_ptr<const img::ImageF>> uploads;
    std::vector<std::string> uploadOrder;  ///< insertion order, for the cap
  };

  void acceptLoop();
  void handleConnection(int fd);
  [[nodiscard]] std::string dispatch(const std::string& line, int fd,
                                     ConnectionState& state, bool& keepOpen);
  /// Consume and validate one binary frame (the UPLOAD body follows the
  /// header line). `buffer` holds bytes already received past the header.
  [[nodiscard]] std::string handleUpload(const std::string& line, int fd,
                                         std::string& buffer,
                                         ConnectionState& state,
                                         bool& keepOpen);

  /// One live (or finished-but-unreaped) connection handler.
  struct Connection {
    std::atomic<bool> done{false};
    std::jthread thread;  ///< last member: joins before `done` tears down
  };

  Server& server_;
  std::function<void()> onShutdown_;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> shutdownFired_{false};
  std::atomic<int> listenFd_{-1};  ///< stop() closes it under acceptLoop
  std::uint16_t port_ = 0;
  // Finished handlers are reaped on the next accept (a long-lived server
  // would otherwise accumulate dead thread handles); stop() joins the rest.
  std::mutex connectionsMutex_;
  std::list<std::unique_ptr<Connection>> connections_;
  std::jthread acceptor_;  ///< last member: joins before the rest tears down
};

/// A tiny blocking client of the serve socket protocol — what
/// `mcmcpar_submit`, the tests and the benches use.
class Client {
 public:
  Client() = default;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connect to 127.0.0.1:`port` (or `host`). Throws ProtocolError.
  /// `readTimeoutSeconds` bounds every readLine so a wedged server fails
  /// loudly instead of hanging the caller (0 = wait forever).
  void connect(const std::string& host, std::uint16_t port,
               double readTimeoutSeconds = 120.0);
  void close();
  [[nodiscard]] bool connected() const noexcept { return fd_ >= 0; }

  /// Send one command line ('\n' appended).
  void send(const std::string& line);

  /// Read the next reply line (without the newline). Throws ProtocolError
  /// on EOF or timeout.
  [[nodiscard]] std::string readLine();

  /// send() + readLine() for single-reply commands.
  [[nodiscard]] std::string request(const std::string& line);

  /// SUBMIT a job line, returning the admitted id. Throws ProtocolError on
  /// an ERR reply (message carries the server's code and text).
  [[nodiscard]] std::uint64_t submit(const std::string& jobLine);

  /// UPLOAD a binary image frame under `id` (no whitespace), making it
  /// addressable as `<id> ... @image=inline` on this connection. The 8-bit
  /// overload sends gray8 (nbytes = w*h); the float overload sends exact
  /// float32 pixels (nbytes = 4*w*h, native byte order — coordinator and
  /// endpoint must share endianness). `oneshot` asks the server not to
  /// insert the frame into its image cache. Returns the server's content
  /// hash (16 hex digits); throws ProtocolError on an ERR reply.
  std::string upload(const std::string& id, const img::ImageU8& image,
                     bool oneshot = false);
  std::string upload(const std::string& id, const img::ImageF& image,
                     bool oneshot = false);

  /// WAIT for a job, forwarding EVENT lines to `onEvent` (may be null).
  /// Returns the final state word of the `OK <id> <state>` terminator.
  [[nodiscard]] std::string wait(
      std::uint64_t id,
      const std::function<void(const std::string&)>& onEvent = {});

  /// REPORT a terminal job: the full result JSON including the detected
  /// circle list (`circles_detail`). Throws ProtocolError on an ERR reply.
  [[nodiscard]] std::string report(std::uint64_t id);

  /// METRICS: the server's Prometheus text exposition body (the `OK
  /// <nbytes>` framing line is consumed). Throws ProtocolError on ERR.
  [[nodiscard]] std::string metrics();

 private:
  std::string uploadFrame(const std::string& id, int width, int height,
                          const void* data, std::size_t nbytes, bool oneshot);

  int fd_ = -1;
  std::string buffer_;
};

}  // namespace mcmcpar::serve
