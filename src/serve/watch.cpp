#include "serve/watch.hpp"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>

#include "engine/options.hpp"
#include "img/pnm_io.hpp"
#include "serve/protocol.hpp"

namespace fs = std::filesystem;

namespace mcmcpar::serve {

namespace {

constexpr const char* kManifestSuffix = ".manifest";
constexpr const char* kResultSuffix = ".result.json";

std::string resultPathFor(const std::string& manifestPath) {
  return manifestPath + kResultSuffix;
}

/// Write `text` atomically: temp file in the same directory, then rename,
/// so spool consumers never observe a half-written result. A failed write
/// is reported on stderr (a full disk must not pass silently — the
/// producer would poll for a result that never comes).
void writeAtomically(const std::string& path, const std::string& text) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    out << text;
    out.flush();
    if (!out) {
      std::fprintf(stderr, "mcmcpar_serve: cannot write %s\n", tmp.c_str());
      return;
    }
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    std::fprintf(stderr, "mcmcpar_serve: cannot rename %s -> %s: %s\n",
                 tmp.c_str(), path.c_str(), ec.message().c_str());
  }
}

}  // namespace

WatchFrontend::WatchFrontend(Server& server, std::string directory,
                             unsigned pollMillis)
    : server_(server),
      directory_(std::move(directory)),
      poll_(std::max(1u, pollMillis)) {
  poller_ = std::jthread(
      [this](const std::stop_token& stop) { pollLoop(stop); });
}

WatchFrontend::~WatchFrontend() { stop(); }

void WatchFrontend::stop() {
  if (poller_.joinable()) {
    poller_.request_stop();
    poller_.join();
  }
  settle();  // flush results whose jobs already finished
}

void WatchFrontend::pollLoop(const std::stop_token& stop) {
  while (!stop.stop_requested()) {
    scan();
    settle();
    // Sleep in small slices so stop() returns promptly even with a long
    // poll interval.
    auto remaining = poll_;
    while (remaining.count() > 0 && !stop.stop_requested()) {
      const auto slice = std::min(remaining, std::chrono::milliseconds(50));
      std::this_thread::sleep_for(slice);
      remaining -= slice;
    }
  }
}

void WatchFrontend::scan() {
  std::error_code ec;
  fs::directory_iterator it(directory_, ec);
  if (ec) return;  // directory vanished; keep polling
  for (const fs::directory_entry& entry : it) {
    if (!entry.is_regular_file(ec)) continue;
    const std::string path = entry.path().string();
    if (path.size() < std::string(kManifestSuffix).size() ||
        !path.ends_with(kManifestSuffix)) {
      continue;
    }
    if (processed_.count(path) != 0) continue;
    if (fs::exists(resultPathFor(path), ec)) {
      processed_.insert(path);  // already served in an earlier life
      continue;
    }

    // Ingest only once size+mtime held still for one poll, so a writer
    // that streams the file in place cannot be read half-written.
    Candidate now;
    now.size = entry.file_size(ec);
    if (ec) continue;
    now.mtimeNs = std::chrono::duration_cast<std::chrono::nanoseconds>(
                      entry.last_write_time(ec).time_since_epoch())
                      .count();
    if (ec) continue;
    const auto seen = candidates_.find(path);
    if (seen == candidates_.end() || seen->second.mtimeNs != now.mtimeNs ||
        seen->second.size != now.size) {
      candidates_[path] = now;
      continue;
    }
    candidates_.erase(seen);
    processed_.insert(path);
    ingest(path);
  }
}

void WatchFrontend::ingest(const std::string& path) {
  std::vector<engine::ManifestEntry> entries;
  try {
    std::ifstream in(path);
    if (!in) throw engine::EngineError("cannot open " + path);
    entries = engine::parseBatchManifest(in);
  } catch (const std::exception& e) {
    writeAtomically(resultPathFor(path),
                    std::string("{\"manifest\": \"") +
                        protocol::jsonEscape(path) + "\", \"error\": \"" +
                        protocol::jsonEscape(e.what()) + "\"}\n");
    return;
  }

  PendingFile pendingFile;
  pendingFile.path = path;
  for (std::size_t i = 0; i < entries.size(); ++i) {
    try {
      pendingFile.jobs.push_back(server_.submit(entries[i]));
    } catch (const std::exception& e) {
      pendingFile.admissionErrors.push_back("job " + std::to_string(i) +
                                            ": " + e.what());
    }
  }
  if (pendingFile.jobs.empty()) {
    std::string errors;
    for (const std::string& error : pendingFile.admissionErrors) {
      if (!errors.empty()) errors += "; ";
      errors += error;
    }
    writeAtomically(resultPathFor(path),
                    std::string("{\"manifest\": \"") +
                        protocol::jsonEscape(path) + "\", \"error\": \"" +
                        protocol::jsonEscape(errors) + "\"}\n");
    return;
  }
  pending_.push_back(std::move(pendingFile));
}

void WatchFrontend::settle() {
  for (auto it = pending_.begin(); it != pending_.end();) {
    bool allTerminal = true;
    for (const std::uint64_t id : it->jobs) {
      const std::optional<JobStatus> status = server_.status(id);
      if (status && !isTerminal(status->state)) {
        allTerminal = false;
        break;
      }
    }
    if (!allTerminal) {
      ++it;
      continue;
    }

    std::ostringstream out;
    std::size_t done = 0, failed = 0, cancelled = 0;
    out << "{\"manifest\": \"" << protocol::jsonEscape(it->path) << "\",\n"
        << " \"jobs\": [\n";
    for (std::size_t i = 0; i < it->jobs.size(); ++i) {
      const std::uint64_t id = it->jobs[i];
      const std::optional<JobStatus> status = server_.status(id);
      const std::optional<engine::RunReport> report = server_.result(id);
      if (status && report) {
        out << "  " << protocol::jobJson(*status, *report);
        done += status->state == JobState::Done;
        failed += status->state == JobState::Failed;
        cancelled += status->state == JobState::Cancelled;
      } else {
        out << "  {\"id\": " << id << ", \"state\": \"unknown\"}";
      }
      out << (i + 1 < it->jobs.size() ? ",\n" : "\n");
    }
    out << " ],\n";
    if (!it->admissionErrors.empty()) {
      // Jobs the server rejected at admission never ran; they surface here
      // (and count as failures) instead of silently vanishing.
      out << " \"admission_errors\": [";
      for (std::size_t i = 0; i < it->admissionErrors.size(); ++i) {
        out << (i == 0 ? "" : ", ") << "\""
            << protocol::jsonEscape(it->admissionErrors[i]) << "\"";
      }
      out << "],\n";
      failed += it->admissionErrors.size();
    }
    out << " \"completed\": " << done << ",\n"
        << " \"failed\": " << failed << ",\n"
        << " \"cancelled\": " << cancelled << "\n}\n";
    writeAtomically(resultPathFor(it->path), out.str());
    it = pending_.erase(it);
  }
}

}  // namespace mcmcpar::serve
