#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "serve/server.hpp"

namespace mcmcpar::serve {

/// The spool-directory front-end: manifest files dropped into the watched
/// directory are submitted to the server, and when every job of a file
/// reaches a terminal state a `<name>.result.json` is written next to it.
///
/// Protocol (normative spec: docs/PROTOCOL.md):
///  - A spool file is any `*.manifest` in the directory, in the shared
///    manifest grammar. It is ingested once its size and mtime have been
///    stable for one poll interval (write-then-rename makes this immediate).
///  - Results land in `<name>.manifest.result.json`; a file is never
///    re-ingested while its result exists. Deleting the result and
///    touching the manifest re-runs it.
///  - Parse failures produce a result file carrying the error instead of
///    wedging the spool.
class WatchFrontend {
 public:
  /// Watch `directory` (must exist), polling every `pollMillis`.
  WatchFrontend(Server& server, std::string directory,
                unsigned pollMillis = 250);
  ~WatchFrontend();

  WatchFrontend(const WatchFrontend&) = delete;
  WatchFrontend& operator=(const WatchFrontend&) = delete;

  /// Stop polling and finish writing results for already-admitted files
  /// whose jobs are terminal. Idempotent; the destructor calls it.
  void stop();

  [[nodiscard]] const std::string& directory() const noexcept {
    return directory_;
  }

 private:
  /// One spool file mid-flight: admitted job ids, awaiting terminal states.
  struct PendingFile {
    std::string path;
    std::vector<std::uint64_t> jobs;
    std::vector<std::string> admissionErrors;  ///< rejected lines, kept for
                                               ///< the result file
  };

  /// A candidate seen last poll; ingested when it stops changing.
  struct Candidate {
    std::int64_t mtimeNs = 0;
    std::uintmax_t size = 0;
  };

  void pollLoop(const std::stop_token& stop);
  void scan();
  void ingest(const std::string& path);
  void settle();  ///< write result files for finished manifests

  Server& server_;
  std::string directory_;
  std::chrono::milliseconds poll_;
  std::map<std::string, Candidate> candidates_;
  std::set<std::string> processed_;  ///< ingested (or result already on disk)
  std::vector<PendingFile> pending_;
  std::jthread poller_;
};

}  // namespace mcmcpar::serve
