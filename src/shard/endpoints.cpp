#include "shard/endpoints.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <utility>

#include "engine/options.hpp"
#include "serve/socket.hpp"

namespace mcmcpar::shard {

namespace {

/// Parse `host:port[*weight]` (one endpoints= list token) or `host:port`
/// with an already-split weight (one endpoints-file line). Throws
/// engine::EngineError with `context` prefixed.
Endpoint parseHostPort(const std::string& token, unsigned weight,
                       const std::string& context) {
  const std::size_t colon = token.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 >= token.size()) {
    throw engine::EngineError(context + "expected host:port, got '" + token +
                              "'");
  }
  Endpoint endpoint;
  endpoint.host = token.substr(0, colon);
  const std::string portText = token.substr(colon + 1);
  const engine::OptionMap parsed =
      engine::OptionMap::parse({"port=" + portText});
  const std::uint64_t port = parsed.u64("port", 0);
  if (port == 0 || port > 65535) {
    throw engine::EngineError(context + "endpoint port out of range in '" +
                              token + "'");
  }
  endpoint.port = static_cast<std::uint16_t>(port);
  if (weight == 0) {
    throw engine::EngineError(context + "endpoint weight must be >= 1 ('" +
                              token + "')");
  }
  endpoint.weight = weight;
  return endpoint;
}

unsigned parseWeight(const std::string& text, const std::string& context) {
  const engine::OptionMap parsed =
      engine::OptionMap::parse({"weight=" + text});
  const std::uint64_t weight = parsed.u64("weight", 1);
  if (weight == 0 || weight > 1000000) {
    throw engine::EngineError(context + "endpoint weight must be in "
                                        "[1, 1000000], got '" +
                              text + "'");
  }
  return static_cast<unsigned>(weight);
}

}  // namespace

std::vector<Endpoint> parseEndpointList(const std::string& text) {
  std::vector<Endpoint> endpoints;
  std::size_t begin = 0;
  while (begin <= text.size()) {
    std::size_t end = text.find(',', begin);
    if (end == std::string::npos) end = text.size();
    std::string token = text.substr(begin, end - begin);
    begin = end + 1;
    if (token.empty()) continue;
    unsigned weight = 1;
    const std::size_t star = token.find('*');
    if (star != std::string::npos) {
      weight = parseWeight(token.substr(star + 1), "endpoints: ");
      token = token.substr(0, star);
    }
    endpoints.push_back(parseHostPort(token, weight, "endpoints: "));
  }
  return endpoints;
}

std::vector<Endpoint> parseEndpointsFile(std::istream& in,
                                         const std::string& name) {
  std::vector<Endpoint> endpoints;
  std::vector<std::size_t> lines;  // index-aligned: the defining line
  std::string line;
  std::size_t lineNumber = 0;
  while (std::getline(in, line)) {
    ++lineNumber;
    std::istringstream tokens(line);
    std::string hostPort, weightText, trailing;
    if (!(tokens >> hostPort) || hostPort.front() == '#') continue;
    const std::string context =
        "endpoints file '" + name + "' line " + std::to_string(lineNumber) +
        ": ";
    unsigned weight = 1;
    if (tokens >> weightText && weightText.front() != '#') {
      weight = parseWeight(weightText, context);
      if (tokens >> trailing && trailing.front() != '#') {
        throw engine::EngineError(context + "unexpected trailing token '" +
                                  trailing +
                                  "' (expected 'host:port [weight]')");
      }
    }
    Endpoint endpoint = parseHostPort(hostPort, weight, context);
    for (std::size_t i = 0; i < endpoints.size(); ++i) {
      if (endpoints[i].host == endpoint.host &&
          endpoints[i].port == endpoint.port) {
        throw engine::EngineError(
            context + "duplicate endpoint '" + endpoint.label() +
            "' (first defined on line " + std::to_string(lines[i]) +
            "; use a weight to give a host a larger share)");
      }
    }
    endpoints.push_back(std::move(endpoint));
    lines.push_back(lineNumber);
  }
  return endpoints;
}

std::vector<Endpoint> loadEndpointsFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw engine::EngineError("cannot open endpoints file '" + path + "'");
  }
  std::vector<Endpoint> endpoints = parseEndpointsFile(in, path);
  if (endpoints.empty()) {
    throw engine::EngineError("endpoints file '" + path +
                              "' defines no endpoints");
  }
  return endpoints;
}

std::string formatEndpointList(const std::vector<Endpoint>& endpoints) {
  std::string out;
  for (const Endpoint& endpoint : endpoints) {
    if (!out.empty()) out += ',';
    out += endpoint.label();
    if (endpoint.weight != 1) out += "*" + std::to_string(endpoint.weight);
  }
  return out;
}

bool pingEndpoint(const Endpoint& endpoint, double timeoutSeconds) {
  try {
    serve::Client client;
    client.connect(endpoint.host, endpoint.port, timeoutSeconds);
    return client.request("PING") == "OK pong";
  } catch (const std::exception&) {
    return false;
  }
}

EndpointPool::EndpointPool(std::vector<Endpoint> endpoints,
                           double pingTimeoutSeconds,
                           double pingIntervalSeconds)
    : pingTimeoutSeconds_(pingTimeoutSeconds),
      pingInterval_(std::chrono::duration_cast<
                    std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(pingIntervalSeconds))) {
  states_.reserve(endpoints.size());
  for (Endpoint& endpoint : endpoints) {
    states_.push_back(State{std::move(endpoint), true, 0, {}});
  }
}

bool EndpointPool::hasIdle(std::size_t exclude) const noexcept {
  for (std::size_t i = 0; i < states_.size(); ++i) {
    if (i == exclude) continue;
    if (states_[i].alive && states_[i].load == 0) return true;
  }
  return false;
}

std::size_t EndpointPool::aliveCount() const noexcept {
  std::size_t n = 0;
  for (const State& state : states_) n += state.alive ? 1 : 0;
  return n;
}

std::size_t EndpointPool::checkAll() {
  const auto now = std::chrono::steady_clock::now();
  for (State& state : states_) {
    state.alive = pingEndpoint(state.endpoint, pingTimeoutSeconds_);
    state.lastProbe = now;
  }
  return aliveCount();
}

void EndpointPool::refresh() {
  const auto now = std::chrono::steady_clock::now();
  for (State& state : states_) {
    if (now - state.lastProbe < pingInterval_) continue;
    state.alive = pingEndpoint(state.endpoint, pingTimeoutSeconds_);
    state.lastProbe = now;
  }
}

std::optional<std::size_t> EndpointPool::pick(
    const std::vector<char>& exclude) {
  std::optional<std::size_t> best;
  double bestScore = 0.0;
  for (std::size_t i = 0; i < states_.size(); ++i) {
    if (!states_[i].alive) continue;
    if (i < exclude.size() && exclude[i] != 0) continue;
    // Weighted least-loaded: a weight-2 host takes twice the tiles of a
    // weight-1 one before looking equally busy.
    const double score = static_cast<double>(states_[i].load) /
                         static_cast<double>(states_[i].endpoint.weight);
    if (!best || score < bestScore) {
      best = i;
      bestScore = score;
    }
  }
  if (best) ++states_[*best].load;
  return best;
}

void EndpointPool::release(std::size_t i) {
  if (i < states_.size() && states_[i].load > 0) --states_[i].load;
}

void EndpointPool::markDead(std::size_t i) {
  if (i >= states_.size()) return;
  states_[i].alive = false;
  states_[i].lastProbe = std::chrono::steady_clock::now();
}

}  // namespace mcmcpar::shard
