#pragma once

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

/// Endpoint fleets for the socket shard backend: the `endpoints=` list and
/// `endpoints-file=` grammar shared by shard::strategy and mcmcpar_serve,
/// plus the health-checked pool the coordinator assigns tiles from.
namespace mcmcpar::shard {

/// One mcmcpar_serve endpoint of a fleet.
struct Endpoint {
  std::string host;
  std::uint16_t port = 0;
  unsigned weight = 1;  ///< relative share of tiles in weighted selection

  [[nodiscard]] std::string label() const {
    return host + ":" + std::to_string(port);
  }
};

/// Parse the `endpoints=` option value: `host:port[*weight][,...]`.
/// Throws engine::EngineError on malformed entries or zero weights.
[[nodiscard]] std::vector<Endpoint> parseEndpointList(const std::string& text);

/// Parse an endpoints file: one `host:port [weight]` per line, `#` comments
/// and blank lines skipped. Duplicate host:port pairs and zero weights are
/// rejected; every diagnostic is prefixed `endpoints file '<name>' line N:`
/// (engine::EngineError).
[[nodiscard]] std::vector<Endpoint> parseEndpointsFile(std::istream& in,
                                                       const std::string& name);

/// parseEndpointsFile over a filesystem path. Throws engine::EngineError
/// when the file cannot be opened or holds no endpoints.
[[nodiscard]] std::vector<Endpoint> loadEndpointsFile(const std::string& path);

/// Render a fleet back into the `endpoints=` option grammar
/// (`host:port[*weight],...`) — how mcmcpar_serve hands its fleet to
/// sharded jobs as a default.
[[nodiscard]] std::string formatEndpointList(
    const std::vector<Endpoint>& endpoints);

/// One synchronous PING round-trip (true = `OK pong` within the timeout).
[[nodiscard]] bool pingEndpoint(const Endpoint& endpoint,
                                double timeoutSeconds);

/// The coordinator's view of a fleet: per-endpoint liveness (PING-probed)
/// and in-flight load, with weighted least-loaded selection. NOT
/// thread-safe — the shard coordinator drives its fan-out from one thread.
class EndpointPool {
 public:
  explicit EndpointPool(std::vector<Endpoint> endpoints,
                        double pingTimeoutSeconds = 5.0,
                        double pingIntervalSeconds = 30.0);

  [[nodiscard]] std::size_t size() const noexcept { return states_.size(); }
  [[nodiscard]] const Endpoint& endpoint(std::size_t i) const {
    return states_[i].endpoint;
  }
  [[nodiscard]] bool alive(std::size_t i) const { return states_[i].alive; }
  [[nodiscard]] unsigned load(std::size_t i) const {
    return states_[i].load;
  }
  [[nodiscard]] std::size_t aliveCount() const noexcept;

  /// Is there an alive endpoint with no in-flight load other than index
  /// `exclude`? The straggler-hedging precondition: a hedge replica must
  /// ride spare capacity, never displace or double-book primary work.
  [[nodiscard]] bool hasIdle(std::size_t exclude) const noexcept;
  [[nodiscard]] std::size_t deadCount() const noexcept {
    return size() - aliveCount();
  }

  /// Ping every endpoint (the startup health check). Returns aliveCount().
  std::size_t checkAll();

  /// Re-ping endpoints whose last probe is older than the ping interval —
  /// dead ones may have recovered, live ones may have died quietly.
  void refresh();

  /// Pick the usable endpoint with the least load per weight, skipping
  /// dead ones and indices flagged in `exclude` (a tile's already-tried
  /// set). Increments the winner's load; nullopt when none qualifies.
  [[nodiscard]] std::optional<std::size_t> pick(
      const std::vector<char>& exclude = {});

  /// Return one unit of load (a reaped or abandoned tile).
  void release(std::size_t i);

  /// Record a failed endpoint (transport error observed outside PING).
  void markDead(std::size_t i);

 private:
  struct State {
    Endpoint endpoint;
    bool alive = true;
    unsigned load = 0;
    std::chrono::steady_clock::time_point lastProbe{};
  };

  std::vector<State> states_;
  double pingTimeoutSeconds_;
  std::chrono::steady_clock::duration pingInterval_;
};

}  // namespace mcmcpar::shard
