#pragma once

/// The straggler-hedging policy of the shard coordinator, as a pure
/// function of observable inputs so tests can drive it with a fake clock
/// and scripted durations (tests/test_scheduling.cpp) — no sleeps, no
/// wall-clock thresholds. The coordinator (shard/strategy.cpp) gathers the
/// inputs each poll pass and re-issues the tile on an idle endpoint when
/// the policy fires; taking whichever replica lands first is safe because
/// remote tiles are bit-identical and the stitcher is deterministic.
namespace mcmcpar::shard {

/// What the policy sees about one outstanding tile.
struct HedgeInputs {
  double elapsedSeconds = 0.0;    ///< since the tile's current submission
  double predictedSeconds = 0.0;  ///< calibrated §IX estimate for the tile
  /// Observed median tile time scaled to this tile's budget (<= 0 until
  /// the first sibling completes). Preferred over the prediction: it
  /// reflects this fleet's real speed, not the committed calibration.
  double observedSeconds = 0.0;
  double hedgeFactor = 0.0;  ///< hedge-factor option; <= 0 disables
  bool idleEndpointAvailable = false;  ///< an alive, load-free endpoint
  bool alreadyHedged = false;          ///< one replica per tile, at most
};

/// The reference time the factor multiplies: the observed median when any
/// sibling has completed, the calibrated prediction before that.
[[nodiscard]] constexpr double hedgeReferenceSeconds(
    double predictedSeconds, double observedSeconds) noexcept {
  return observedSeconds > 0.0 ? observedSeconds : predictedSeconds;
}

/// True when the tile should be re-issued on an idle endpoint: hedging is
/// enabled, this tile has no replica yet, an idle endpoint exists, and the
/// tile has been outstanding longer than hedgeFactor x the reference time.
[[nodiscard]] constexpr bool shouldHedge(const HedgeInputs& in) noexcept {
  if (in.hedgeFactor <= 0.0 || in.alreadyHedged ||
      !in.idleEndpointAvailable) {
    return false;
  }
  const double reference =
      hedgeReferenceSeconds(in.predictedSeconds, in.observedSeconds);
  if (reference <= 0.0) return false;
  return in.elapsedSeconds > in.hedgeFactor * reference;
}

}  // namespace mcmcpar::shard
