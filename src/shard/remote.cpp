#include "shard/remote.hpp"

#include <cstdlib>
#include <stdexcept>

namespace mcmcpar::shard::remote {

namespace {

/// Position just past `"key": ` or npos when the key is absent.
std::size_t fieldStart(const std::string& json, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = json.find(needle);
  if (at == std::string::npos) return std::string::npos;
  std::size_t pos = at + needle.size();
  while (pos < json.size() && json[pos] == ' ') ++pos;
  return pos;
}

double numberField(const std::string& json, const std::string& key) {
  const std::size_t pos = fieldStart(json, key);
  if (pos == std::string::npos || pos >= json.size()) {
    throw std::runtime_error("report JSON: missing numeric field \"" + key +
                             "\"");
  }
  char* end = nullptr;
  const double value = std::strtod(json.c_str() + pos, &end);
  if (end == json.c_str() + pos) {
    throw std::runtime_error("report JSON: field \"" + key +
                             "\" is not a number");
  }
  return value;
}

bool boolField(const std::string& json, const std::string& key) {
  const std::size_t pos = fieldStart(json, key);
  if (pos == std::string::npos) {
    throw std::runtime_error("report JSON: missing boolean field \"" + key +
                             "\"");
  }
  return json.compare(pos, 4, "true") == 0;
}

std::string stringField(const std::string& json, const std::string& key) {
  std::size_t pos = fieldStart(json, key);
  if (pos == std::string::npos || pos >= json.size() || json[pos] != '"') {
    throw std::runtime_error("report JSON: missing string field \"" + key +
                             "\"");
  }
  ++pos;
  std::string out;
  while (pos < json.size() && json[pos] != '"') {
    if (json[pos] == '\\' && pos + 1 < json.size()) {
      // Enough un-escaping for the escapes jsonEscape produces; \uXXXX
      // controls never appear in the fields we read back.
      const char next = json[pos + 1];
      out += next == 'n' ? '\n' : next == 'r' ? '\r' : next == 't' ? '\t'
                                                                   : next;
      pos += 2;
      continue;
    }
    out += json[pos++];
  }
  return out;
}

std::vector<model::Circle> circlesField(const std::string& json) {
  std::size_t pos = fieldStart(json, "circles_detail");
  if (pos == std::string::npos || pos >= json.size() || json[pos] != '[') {
    throw std::runtime_error(
        "report JSON: missing \"circles_detail\" array (is the server new "
        "enough to speak REPORT?)");
  }
  ++pos;  // past the outer '['
  std::vector<model::Circle> circles;
  while (pos < json.size()) {
    while (pos < json.size() &&
           (json[pos] == ' ' || json[pos] == ',')) {
      ++pos;
    }
    if (pos >= json.size() || json[pos] == ']') break;
    if (json[pos] != '[') {
      throw std::runtime_error("report JSON: malformed circles_detail entry");
    }
    ++pos;
    double values[3] = {0.0, 0.0, 0.0};
    for (double& value : values) {
      while (pos < json.size() &&
             (json[pos] == ' ' || json[pos] == ',')) {
        ++pos;
      }
      char* end = nullptr;
      value = std::strtod(json.c_str() + pos, &end);
      if (end == json.c_str() + pos) {
        throw std::runtime_error(
            "report JSON: malformed circles_detail number");
      }
      pos = static_cast<std::size_t>(end - json.c_str());
    }
    while (pos < json.size() && json[pos] == ' ') ++pos;
    if (pos >= json.size() || json[pos] != ']') {
      throw std::runtime_error(
          "report JSON: unterminated circles_detail entry");
    }
    ++pos;
    circles.push_back(model::Circle{values[0], values[1], values[2]});
  }
  return circles;
}

}  // namespace

TileReportJson parseReportJson(const std::string& json) {
  TileReportJson report;
  report.state = stringField(json, "state");
  report.error = stringField(json, "error");
  report.iterations =
      static_cast<std::uint64_t>(numberField(json, "iterations"));
  report.wallSeconds = numberField(json, "wall_seconds");
  report.acceptance = numberField(json, "acceptance");
  report.logPosterior = numberField(json, "log_posterior");
  report.cancelled = boolField(json, "cancelled");
  report.circles = circlesField(json);
  return report;
}

FailureKind classifyFailure(const std::string& message) {
  // serve::Client embeds the server's reply verbatim in its exception text
  // ("SUBMIT rejected: ERR QUEUE_FULL ..."), so the reply's error code is
  // recoverable from the message; anything without an `ERR ` reply never
  // reached a healthy server (refused, EOF, timeout).
  const std::size_t err = message.find("ERR ");
  if (err == std::string::npos) return FailureKind::EndpointDown;
  const std::string rest = message.substr(err + 4);
  if (rest.rfind("QUEUE_FULL", 0) == 0 ||
      rest.rfind("SHUTTING_DOWN", 0) == 0) {
    return FailureKind::EndpointBusy;
  }
  return FailureKind::Fatal;
}

}  // namespace mcmcpar::shard::remote
