#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "model/circle.hpp"

namespace mcmcpar::shard::remote {

/// The fields of a serve REPORT payload a shard coordinator consumes
/// (docs/PROTOCOL.md "Job report JSON"). Circle coordinates are local to
/// the image the remote job ran on — for a tile job, the halo crop.
struct TileReportJson {
  std::string state;  ///< done | failed | cancelled
  std::string error;
  std::uint64_t iterations = 0;
  double wallSeconds = 0.0;
  double acceptance = 0.0;
  double logPosterior = 0.0;
  bool cancelled = false;
  std::vector<model::Circle> circles;  ///< from "circles_detail"
};

/// Parse a REPORT JSON payload. A deliberately narrow parser for the
/// single-line JSON this library itself emits (protocol::reportJson), not a
/// general one; throws std::runtime_error naming the missing/bad field.
[[nodiscard]] TileReportJson parseReportJson(const std::string& json);

/// How the coordinator should react to a failed remote exchange, judged
/// from the exception text serve::Client surfaces.
enum class FailureKind {
  Fatal,          ///< deterministic rejection (ERR BAD_JOB, TOO_LARGE, ...):
                  ///< would fail on every endpoint — doom the run
  EndpointDown,   ///< transport-level (refused, EOF, timeout): mark the
                  ///< endpoint dead and requeue the tile elsewhere
  EndpointBusy,   ///< ERR QUEUE_FULL / SHUTTING_DOWN: the endpoint answers
                  ///< but cannot take work now — requeue without marking it
                  ///< dead
};

/// Classify a serve::Client failure message. Messages without an embedded
/// `ERR ` reply are transport failures (EndpointDown); ERR QUEUE_FULL and
/// ERR SHUTTING_DOWN are transient (EndpointBusy); any other ERR code is a
/// deterministic rejection (Fatal).
[[nodiscard]] FailureKind classifyFailure(const std::string& message);

}  // namespace mcmcpar::shard::remote
