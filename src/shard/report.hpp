#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mcmc/diagnostics.hpp"
#include "model/circle.hpp"
#include "shard/tiling.hpp"

/// Diagnostics types of the sharded-execution subsystem. Kept free of
/// engine dependencies so engine::RunReport can carry a ShardReport in its
/// extras variant while the coordinator itself (shard/strategy.*) builds on
/// top of the engine and serving layers.
namespace mcmcpar::shard {

/// Outcome of one tile's run, in full-image coordinates.
struct TileRun {
  TileSpec spec;
  std::string label;             ///< "tile-<ix>x<iy>"
  std::uint64_t iterations = 0;  ///< chain iterations spent on this tile
  double wallSeconds = 0.0;      ///< tile latency (queueing included)
  double acceptanceRate = 0.0;
  double logPosterior = 0.0;  ///< of the tile-local model (not comparable
                              ///< across tiles; the merged value lives in
                              ///< RunReport.logPosterior)
  std::size_t circlesFound = 0;    ///< detections before stitching
  std::size_t circlesKept = 0;     ///< detections surviving the stitch
  bool cancelled = false;
  std::string error;  ///< non-empty when the tile job failed
  mcmc::Diagnostics diagnostics;

  std::string endpoint;   ///< "host:port" that ran it ("" = local backend)
  unsigned attempts = 1;  ///< submissions including requeues after failures
  bool hedged = false;    ///< this result came from a hedge replica
};

/// The merged outcome of a sharded run: tile layout, per-tile diagnostics
/// and the stitcher's de-duplication accounting. Carried as
/// engine::RunReport::extras by the "sharded" strategy.
struct ShardReport {
  int gridX = 1;
  int gridY = 1;
  int halo = 0;
  bool adaptive = false;      ///< tiles=auto (gridX is then the tile count)
  std::string backend;        ///< "local" or "socket"
  std::string innerStrategy;  ///< registry key run on each tile
  std::vector<TileRun> tiles;

  std::size_t haloDropped = 0;  ///< detections outside their tile's core
  std::size_t duplicatesRemoved = 0;  ///< cross-tile IoU duplicates removed

  /// Socket-backend resilience accounting: tiles re-submitted after a
  /// transport failure or transient rejection, and endpoints the
  /// coordinator considered dead by the end of the run.
  std::size_t requeues = 0;
  std::size_t endpointsDead = 0;

  /// Straggler hedging (hedge-factor option): replicas issued for slow
  /// tiles, and how many of those replicas beat their primary. Replicas
  /// are bit-identical, so a hedge changes only latency, never the result.
  std::size_t hedgesIssued = 0;
  std::size_t hedgesWon = 0;

  double maxTileSeconds = 0.0;  ///< slowest tile (the parallel wall floor)
  double sumTileSeconds = 0.0;  ///< total tile compute (the serial cost)
  double mergeSeconds = 0.0;    ///< stitch + merged-posterior evaluation

  [[nodiscard]] std::size_t tileFailures() const noexcept {
    std::size_t n = 0;
    for (const TileRun& tile : tiles) n += tile.error.empty() ? 0 : 1;
    return n;
  }
};

}  // namespace mcmcpar::shard
