#include "shard/stitcher.hpp"

#include <algorithm>
#include <stdexcept>

namespace mcmcpar::shard {

namespace {

/// Distance from a circle's centre to the nearest edge of its tile core —
/// the "depth" used to rank rival detections of one physical artifact.
double coreDepth(const model::Circle& c, const partition::IRect& core) {
  const double left = c.x - core.x0;
  const double right = core.x0 + core.w - c.x;
  const double top = c.y - core.y0;
  const double bottom = core.y0 + core.h - c.y;
  return std::min(std::min(left, right), std::min(top, bottom));
}

struct Candidate {
  model::Circle circle;
  std::size_t tile = 0;
  std::size_t order = 0;  ///< detection order within the tile (tie-break)
  double depth = 0.0;
};

}  // namespace

StitchResult stitchCircles(
    const TileGrid& grid,
    const std::vector<std::vector<model::Circle>>& perTile,
    const StitchOptions& options) {
  if (perTile.size() != grid.tiles.size()) {
    throw std::invalid_argument(
        "stitchCircles: expected " + std::to_string(grid.tiles.size()) +
        " tile detection lists, got " + std::to_string(perTile.size()));
  }

  StitchResult result;
  result.keptPerTile.assign(grid.tiles.size(), 0);

  std::vector<Candidate> candidates;
  for (std::size_t t = 0; t < grid.tiles.size(); ++t) {
    const TileSpec& tile = grid.tiles[t];
    for (std::size_t i = 0; i < perTile[t].size(); ++i) {
      const model::Circle& circle = perTile[t][i];
      if (!tile.ownsCentre(circle)) {
        ++result.haloDropped;
        continue;
      }
      candidates.push_back(
          Candidate{circle, t, i, coreDepth(circle, tile.core)});
    }
  }

  // Deepest-in-core first, so the greedy pass below always keeps the copy
  // with the most halo support. Strict ordering keeps the merge
  // deterministic across thread schedules.
  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const Candidate& a, const Candidate& b) {
                     if (a.depth != b.depth) return a.depth > b.depth;
                     if (a.tile != b.tile) return a.tile < b.tile;
                     return a.order < b.order;
                   });

  std::vector<const Candidate*> accepted;
  accepted.reserve(candidates.size());
  for (const Candidate& candidate : candidates) {
    bool duplicate = false;
    for (const Candidate* kept : accepted) {
      if (kept->tile == candidate.tile) continue;  // same chain: no rival
      // Cheap reject before the lens-area formula.
      const double reach = kept->circle.r + candidate.circle.r;
      if (model::centreDistance2(kept->circle, candidate.circle) >
          reach * reach) {
        continue;
      }
      if (discIoU(kept->circle, candidate.circle) >= options.iouThreshold) {
        duplicate = true;
        break;
      }
    }
    if (duplicate) {
      ++result.duplicatesRemoved;
      continue;
    }
    accepted.push_back(&candidate);
  }

  // Emit in (tile, detection) order so the merged set is independent of the
  // depth ranking used for conflict resolution.
  std::sort(accepted.begin(), accepted.end(),
            [](const Candidate* a, const Candidate* b) {
              if (a->tile != b->tile) return a->tile < b->tile;
              return a->order < b->order;
            });
  result.circles.reserve(accepted.size());
  for (const Candidate* candidate : accepted) {
    result.circles.push_back(candidate->circle);
    ++result.keptPerTile[candidate->tile];
  }
  return result;
}

}  // namespace mcmcpar::shard
