#pragma once

#include <cstddef>
#include <vector>

#include "model/circle.hpp"
#include "shard/tiling.hpp"

namespace mcmcpar::shard {

/// Knobs of the halo-reconciliation merge.
struct StitchOptions {
  /// Two detections from different tiles whose disc IoU reaches this
  /// threshold are one physical artifact; the deeper-in-core copy wins.
  double iouThreshold = 0.3;
};

/// Outcome of stitching per-tile detections into one set.
struct StitchResult {
  std::vector<model::Circle> circles;  ///< merged, deterministic order
  std::vector<std::size_t> keptPerTile;  ///< aligned with grid.tiles
  std::size_t haloDropped = 0;  ///< centre outside the detecting tile's core
  std::size_t duplicatesRemoved = 0;  ///< cross-tile IoU duplicates
};

/// Merge per-tile detections (full-image coordinates, outer vector aligned
/// with `grid.tiles`) into one de-duplicated circle set:
///
/// 1. ownership — a tile only keeps detections whose centre lies in its own
///    core; halo-region detections are the neighbour's responsibility and
///    are dropped (counted in `haloDropped`);
/// 2. IoU reconciliation — a circle centred on a cut line can be detected
///    by both adjacent tiles with centres landing in different cores, so
///    surviving detections from *different* tiles with disc IoU >=
///    `iouThreshold` are collapsed, keeping the copy whose centre sits
///    deepest inside its core (the detection with the most halo support).
///
/// Deterministic: ties break on (tile index, detection order).
[[nodiscard]] StitchResult stitchCircles(
    const TileGrid& grid,
    const std::vector<std::vector<model::Circle>>& perTile,
    const StitchOptions& options = {});

}  // namespace mcmcpar::shard
