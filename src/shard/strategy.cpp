// The "sharded" strategy: a coordinator that decomposes one Problem image
// into K x L overlapping tiles (shard/tiling), runs each tile as an
// independent job — locally through engine::BatchRunner under the shared
// PoolBudget, or remotely through serve::Client against one or more
// mcmcpar_serve endpoints — and stitches the per-tile results back into one
// RunReport (shard/stitcher), carrying the tile layout and reconciliation
// accounting as a ShardReport. This is the first subsystem that composes
// the serving layer with itself: a served job whose line carries @shard
// becomes a coordinator fanning out to the very queue that runs it.

#include "shard/strategy.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <iterator>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "engine/batch.hpp"
#include "engine/registry.hpp"
#include "model/posterior.hpp"
#include "par/concurrency.hpp"
#include "par/virtual_clock.hpp"
#include "partition/prior_estimation.hpp"
#include "serve/socket.hpp"
#include "shard/endpoints.hpp"
#include "shard/remote.hpp"
#include "shard/report.hpp"
#include "shard/stitcher.hpp"
#include "shard/tiling.hpp"

namespace mcmcpar::shard {

namespace {

/// Exact round-trip formatting for prior directives: the remote server's
/// strtod recovers the coordinator's double bit-for-bit, so the socket
/// backend samples under the identical prior the local backend would.
std::string fmtExact(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

/// One tile's outcome in coordinator-neutral form, before stitching.
struct TileOutcome {
  std::uint64_t iterations = 0;
  double wallSeconds = 0.0;
  double acceptanceRate = 0.0;
  double logPosterior = 0.0;
  bool cancelled = false;
  std::string error;
  std::vector<model::Circle> circles;  ///< crop-local coordinates
  mcmc::Diagnostics diagnostics;       ///< local backend only
  std::optional<std::uint64_t> itersToConverge;
  std::string endpoint;   ///< socket backend: "host:port" that ran it
  unsigned attempts = 0;  ///< socket backend: submissions incl. requeues
};

class ShardStrategy final : public engine::Strategy {
 public:
  ShardStrategy(std::string name, const engine::StrategyRegistry* registry,
                const engine::ExecResources& resources,
                const engine::OptionMap& options)
      : name_(std::move(name)), registry_(registry), resources_(resources) {
    try {
      parseTileCount(options.str("tiles", "2x2"), gridX_, gridY_);
    } catch (const std::invalid_argument& e) {
      throw engine::EngineError("strategy '" + name_ + "': " + e.what());
    }
    // Bound before the int cast so halo=3000000000 is rejected right here
    // at admission with a clear message, not at run time on a worker after
    // the cast wrapped negative. No real image axis approaches the bound,
    // and makeTileGrid clamps to the image anyway.
    const std::uint64_t halo = options.u64("halo", 16);
    if (halo > 1000000) {
      throw engine::EngineError("strategy '" + name_ +
                                "': halo must be <= 1000000 pixels, got " +
                                std::to_string(halo));
    }
    halo_ = static_cast<int>(halo);
    tileIters_ = options.u64("tile-iters", 0);
    minTileIters_ = options.u64("min-tile-iters", 2000);
    stitch_.iouThreshold = options.dbl("iou", 0.3);
    timeoutSeconds_ = options.dbl("timeout", 600.0);

    const std::string backend = options.str("backend", "local");
    if (backend == "local") {
      socketBackend_ = false;
    } else if (backend == "socket") {
      socketBackend_ = true;
    } else {
      throw engine::EngineError("strategy '" + name_ +
                                "': backend must be 'local' or 'socket', "
                                "got '" +
                                backend + "'");
    }
    try {
      endpoints_ = parseEndpointList(options.str("endpoints", ""));
      const std::string endpointsFile = options.str("endpoints-file", "");
      if (!endpointsFile.empty()) {
        std::vector<Endpoint> fromFile = loadEndpointsFile(endpointsFile);
        endpoints_.insert(endpoints_.end(),
                          std::make_move_iterator(fromFile.begin()),
                          std::make_move_iterator(fromFile.end()));
      }
    } catch (const engine::EngineError& e) {
      throw engine::EngineError("strategy '" + name_ + "': " + e.what());
    }
    if (socketBackend_ && endpoints_.empty()) {
      throw engine::EngineError(
          "strategy '" + name_ +
          "': backend=socket requires endpoints=host:port[*weight][,...] "
          "or endpoints-file=PATH");
    }
    pingTimeout_ = options.dbl("ping-timeout", 5.0);
    pingInterval_ = options.dbl("ping-interval", 30.0);

    innerStrategy_ = options.str("strategy", "serial");
    if (innerStrategy_ == name_) {
      throw engine::EngineError("strategy '" + name_ +
                                "': recursive sharding (strategy=" + name_ +
                                ") is not supported");
    }
    for (const std::string& key : options.keysWithPrefix("inner.")) {
      innerOptions_.push_back(key.substr(6) + "=" + options.str(key, ""));
    }
    options.requireConsumed(name_);

    // Fail a bad inner strategy or option at admission time, not on the
    // first tile: the same early-validation contract the serve layer
    // relies on for descriptive SUBMIT errors.
    try {
      (void)registry_->create(innerStrategy_, engine::ExecResources{},
                              innerOptions_);
    } catch (const engine::EngineError& e) {
      throw engine::EngineError("strategy '" + name_ +
                                "': inner strategy rejected: " + e.what());
    }
  }

  [[nodiscard]] const std::string& name() const noexcept override {
    return name_;
  }

  void prepare(const engine::Problem& problem) override {
    if (problem.filtered == nullptr) {
      throw engine::EngineError("strategy '" + name_ +
                                "': Problem.filtered image is null");
    }
    problem_ = problem;
    prior_ = problem.prior;
    // Whole-image count estimate: only used to score the *merged* model, so
    // the reported logPosterior is comparable with an unsharded run of the
    // same problem. Tiles re-estimate on their own crops.
    if (problem.estimateCount) {
      const auto estimate = partition::estimateCount(
          *problem.filtered, problem.theta, prior_.radiusMean);
      prior_.expectedCount = std::max(estimate.expectedCount, 0.5);
    }
    prepared_ = true;
  }

  [[nodiscard]] engine::RunReport run(
      const engine::RunBudget& budget,
      const engine::RunHooks& hooks) override {
    if (!prepared_) {
      throw engine::EngineError("strategy '" + name_ +
                                "': run() called before prepare()");
    }
    const img::ImageF& image = *problem_.filtered;
    TileGrid grid;
    try {
      grid = makeTileGrid(image.width(), image.height(), gridX_, gridY_,
                          halo_);
    } catch (const std::invalid_argument& e) {
      throw engine::EngineError("strategy '" + name_ + "': " + e.what());
    }

    const std::vector<std::uint64_t> budgets = tileBudgets(grid, budget);
    const par::WallTimer timer;
    const std::vector<TileOutcome> outcomes =
        socketBackend_ ? runSocket(grid, budgets, budget, hooks)
                       : runLocal(grid, budgets, budget, hooks);

    std::size_t failures = 0;
    std::string firstError;
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
      if (outcomes[i].error.empty()) continue;
      ++failures;
      if (firstError.empty()) {
        firstError = tileLabel(grid.tiles[i]) + ": " + outcomes[i].error;
      }
    }
    if (failures > 0) {
      // A missing tile is a missing image region: the merged model would
      // silently under-count, so a failed tile fails the shard run.
      throw engine::EngineError("strategy '" + name_ + "': " +
                                std::to_string(failures) +
                                " tile job(s) failed; first: " + firstError);
    }

    return mergeOutcomes(grid, outcomes, timer);
  }

 private:
  [[nodiscard]] static std::string tileLabel(const TileSpec& tile) {
    return "tile-" + std::to_string(tile.ix) + "x" + std::to_string(tile.iy);
  }

  /// Split the whole-image iteration budget across tiles proportional to
  /// core area (with a floor), so the per-pixel sampling density of the
  /// unsharded run is preserved; tile-iters=N overrides with a flat count.
  [[nodiscard]] std::vector<std::uint64_t> tileBudgets(
      const TileGrid& grid, const engine::RunBudget& budget) const {
    std::vector<std::uint64_t> budgets;
    budgets.reserve(grid.tiles.size());
    const double imageArea =
        static_cast<double>(problem_.filtered->pixelCount());
    for (const TileSpec& tile : grid.tiles) {
      if (tileIters_ != 0) {
        budgets.push_back(tileIters_);
        continue;
      }
      const double share =
          static_cast<double>(tile.core.area()) / imageArea;
      const auto scaled = static_cast<std::uint64_t>(
          std::llround(static_cast<double>(budget.iterations) * share));
      budgets.push_back(std::max(scaled, minTileIters_));
    }
    return budgets;
  }

  [[nodiscard]] engine::Problem tileProblem(const img::ImageF& crop,
                                            const TileSpec& tile) const {
    engine::Problem problem = problem_;
    problem.filtered = &crop;
    // With estimateCount on, each tile re-estimates its own expected count
    // from its crop (eq. 5). With it off, the caller's fixed whole-image
    // count must be scaled to the tile's area share — copying it verbatim
    // would make every tile expect the whole image's circles.
    if (!problem_.estimateCount) {
      const double share =
          static_cast<double>(tile.core.area()) /
          static_cast<double>(problem_.filtered->pixelCount());
      problem.prior.expectedCount =
          std::max(problem_.prior.expectedCount * share, 0.5);
    }
    return problem;
  }

  // ---- local backend: a BatchRunner fan-out under the shared budget ----

  [[nodiscard]] std::vector<TileOutcome> runLocal(
      const TileGrid& grid, const std::vector<std::uint64_t>& budgets,
      const engine::RunBudget& budget, const engine::RunHooks& hooks) const {
    std::vector<img::ImageF> crops;
    crops.reserve(grid.tiles.size());
    for (const TileSpec& tile : grid.tiles) {
      crops.push_back(problem_.filtered->crop(tile.halo.x0, tile.halo.y0,
                                              tile.halo.w, tile.halo.h));
    }

    std::vector<engine::BatchJob> jobs;
    jobs.reserve(grid.tiles.size());
    std::uint64_t totalIters = 0;
    for (std::size_t i = 0; i < grid.tiles.size(); ++i) {
      engine::BatchJob job;
      job.strategy = innerStrategy_;
      job.options = innerOptions_;
      job.problem = tileProblem(crops[i], grid.tiles[i]);
      job.budget = engine::RunBudget{budgets[i], budget.traceInterval};
      job.label = tileLabel(grid.tiles[i]);
      jobs.push_back(std::move(job));
      totalIters += budgets[i];
    }

    engine::BatchOptions options;
    options.resources = resources_;
    options.resources.poolBudget = nullptr;
    options.sharedBudget = resources_.poolBudget;

    // Per-tile progress folded into one monotone whole-shard beat.
    std::mutex progressMutex;
    std::vector<std::uint64_t> done(jobs.size(), 0);
    engine::BatchHooks batchHooks;
    batchHooks.cancelRequested = hooks.cancelRequested;
    if (hooks.onProgress) {
      batchHooks.onJobProgress = [&](std::size_t index,
                                     const engine::RunProgress& p) {
        // Deliver while still holding the lock: emitting after release
        // would let concurrently computed sums arrive out of order, making
        // the whole-shard beat go backwards.
        const std::scoped_lock lock(progressMutex);
        done[index] = std::min(p.done, budgets[index]);
        std::uint64_t sum = 0;
        for (const std::uint64_t d : done) sum += d;
        hooks.progress(sum, totalIters, "shard");
      };
    }

    const engine::BatchResult result =
        engine::BatchRunner(registry_).run(jobs, options, batchHooks);

    std::vector<TileOutcome> outcomes(grid.tiles.size());
    for (std::size_t i = 0; i < grid.tiles.size(); ++i) {
      TileOutcome& outcome = outcomes[i];
      const engine::RunReport& report = result.reports[i];
      outcome.iterations = report.iterations;
      outcome.wallSeconds = report.wallSeconds;
      outcome.acceptanceRate = report.acceptanceRate;
      outcome.logPosterior = report.logPosterior;
      outcome.cancelled = report.cancelled;
      outcome.error = result.batch.errors[i];
      outcome.circles = report.circles;
      outcome.diagnostics = report.diagnostics;
      outcome.itersToConverge = report.iterationsToConverge;
    }
    return outcomes;
  }

  // ---- socket backend: serve::Client fan-out over an endpoint fleet ----

  /// The job line for tile `i`: an @image=inline reference to the one-shot
  /// upload that precedes it, plus the coordinator's exact prior (%.17g
  /// round-trips every double bit-for-bit), so the remote tile runs the
  /// identical problem the local backend would build in tileProblem().
  [[nodiscard]] std::string tileJobLine(const TileGrid& grid, std::size_t i,
                                        std::uint64_t iters,
                                        const engine::RunBudget& budget)
      const {
    const TileSpec& tile = grid.tiles[i];
    std::string line =
        tileLabel(tile) + " " + innerStrategy_ +
        " @image=inline @iters=" + std::to_string(iters) + " @seed=" +
        std::to_string(engine::deriveJobSeed(resources_.seed, i)) +
        " @label=" + tileLabel(tile) +
        " @radius=" + fmtExact(problem_.prior.radiusMean) +
        " @radius-std=" + fmtExact(problem_.prior.radiusStd) +
        " @radius-min=" + fmtExact(problem_.prior.radiusMin) +
        " @radius-max=" + fmtExact(problem_.prior.radiusMax);
    if (!problem_.estimateCount) {
      // Mirror tileProblem's area-share scaling of a caller-fixed count.
      const double share =
          static_cast<double>(tile.core.area()) /
          static_cast<double>(problem_.filtered->pixelCount());
      line += " @count=" +
              fmtExact(std::max(problem_.prior.expectedCount * share, 0.5));
    }
    if (budget.traceInterval != 0) {
      line += " @trace=" + std::to_string(budget.traceInterval);
    }
    for (const std::string& option : innerOptions_) line += " " + option;
    return line;
  }

  [[nodiscard]] std::vector<TileOutcome> runSocket(
      const TileGrid& grid, const std::vector<std::uint64_t>& budgets,
      const engine::RunBudget& budget, const engine::RunHooks& hooks) {
    requeues_ = 0;
    endpointsDead_ = 0;

    // Tile crops travel as float32 binary frames inside the protocol — no
    // temp files, no shared filesystem, no 8-bit quantisation: the remote
    // tile sees the coordinator's pixels bit-for-bit.
    std::vector<img::ImageF> crops;
    crops.reserve(grid.tiles.size());
    for (const TileSpec& tile : grid.tiles) {
      crops.push_back(problem_.filtered->crop(tile.halo.x0, tile.halo.y0,
                                              tile.halo.w, tile.halo.h));
    }

    EndpointPool pool(endpoints_, pingTimeout_, pingInterval_);
    if (pool.checkAll() == 0) {
      throw engine::EngineError(
          "strategy '" + name_ + "': no endpoint answered PING (fleet: " +
          formatEndpointList(endpoints_) + ")");
    }

    struct Flight {
      serve::Client client;
      std::size_t endpoint = 0;  ///< pool index currently running the tile
      std::uint64_t jobId = 0;
      bool submitted = false;
      std::vector<char> tried;  ///< pool indices already tried for the
                                ///< current placement round
    };
    std::vector<TileOutcome> outcomes(grid.tiles.size());
    std::vector<Flight> flights(grid.tiles.size());
    for (Flight& flight : flights) flight.tried.assign(pool.size(), 0);

    // Place tile i on the least-loaded surviving endpoint it has not tried
    // this round: upload the crop one-shot, submit @image=inline on the
    // same connection. Transport failures mark the endpoint dead; ERR
    // QUEUE_FULL / SHUTTING_DOWN skip it without marking. Returns false
    // (outcome.error set) on a deterministic rejection or when no endpoint
    // remains.
    const auto submitTile = [&](std::size_t i) -> bool {
      TileOutcome& outcome = outcomes[i];
      Flight& flight = flights[i];
      flight.submitted = false;
      while (true) {
        pool.refresh();
        const std::optional<std::size_t> picked = pool.pick(flight.tried);
        if (!picked) {
          outcome.error =
              "no usable endpoint left (fleet: " +
              formatEndpointList(endpoints_) + ", " +
              std::to_string(pool.deadCount()) + " marked dead)";
          return false;
        }
        flight.endpoint = *picked;
        flight.tried[*picked] = 1;
        const Endpoint& endpoint = pool.endpoint(*picked);
        ++outcome.attempts;
        try {
          flight.client.connect(endpoint.host, endpoint.port,
                                timeoutSeconds_);
          (void)flight.client.upload(tileLabel(grid.tiles[i]), crops[i],
                                     /*oneshot=*/true);
          flight.jobId = flight.client.submit(
              tileJobLine(grid, i, budgets[i], budget));
          flight.submitted = true;
          outcome.endpoint = endpoint.label();
          return true;
        } catch (const std::exception& e) {
          flight.client.close();
          pool.release(*picked);
          const remote::FailureKind kind = remote::classifyFailure(e.what());
          if (kind == remote::FailureKind::Fatal) {
            outcome.error = e.what();
            return false;
          }
          if (kind == remote::FailureKind::EndpointDown) {
            pool.markDead(*picked);
          }
          ++requeues_;
        }
      }
    };

    // Any tile failure dooms the whole run (a missing region cannot be
    // stitched), so the moment one is recorded, cancel every not-yet-reaped
    // sibling: the reap then returns in one cancel quantum instead of
    // letting doomed tiles burn their full remote budgets.
    const auto cancelSiblingsFrom = [&](std::size_t from) {
      for (std::size_t j = from; j < grid.tiles.size(); ++j) {
        if (!flights[j].submitted) continue;
        try {
          (void)flights[j].client.request(
              "CANCEL " + std::to_string(flights[j].jobId));
        } catch (const std::exception&) {
          // Best effort; the per-tile read timeout still bounds the wait.
        }
      }
    };

    // Fan out: submit every tile before waiting on any, so the fleet runs
    // them concurrently; one connection per tile keeps WAIT streams apart.
    // A deterministic rejection dooms the run, so stop submitting on first
    // fatal error rather than hand the fleet work about to be cancelled.
    bool doomed = false;
    for (std::size_t i = 0; i < grid.tiles.size(); ++i) {
      if (doomed) {
        outcomes[i].error = "not submitted: an earlier tile already failed";
        continue;
      }
      if (!submitTile(i)) {
        doomed = true;
        cancelSiblingsFrom(0);
      }
    }

    std::size_t tilesDone = 0;
    for (std::size_t i = 0; i < grid.tiles.size(); ++i) {
      TileOutcome& outcome = outcomes[i];
      Flight& flight = flights[i];
      while (flight.submitted) {
        // Copy: pool state may change while this tile is in flight.
        const Endpoint endpoint = pool.endpoint(flight.endpoint);
        const std::uint64_t jobId = flight.jobId;
        // Cooperative cancellation: before the blocking WAIT, and from its
        // event stream (a WAITing connection processes no further commands,
        // so the mid-wait CANCEL goes over a second connection). This
        // bounds cancellation/shutdown latency at one remote progress
        // quantum instead of the tile's full budget.
        bool cancelSent = false;
        const auto cancelRemote = [&] {
          if (cancelSent || !hooks.cancelled()) return;
          cancelSent = true;
          try {
            serve::Client canceller;
            canceller.connect(endpoint.host, endpoint.port, 10.0);
            (void)canceller.request("CANCEL " + std::to_string(jobId));
          } catch (const std::exception&) {
            // Best effort; the read timeout still bounds the wait.
          }
        };
        try {
          cancelRemote();
          (void)flight.client.wait(
              jobId, [&](const std::string&) { cancelRemote(); });
          const remote::TileReportJson remote =
              remote::parseReportJson(flight.client.report(jobId));
          outcome.iterations = remote.iterations;
          outcome.wallSeconds = remote.wallSeconds;
          outcome.acceptanceRate = remote.acceptance;
          outcome.logPosterior = remote.logPosterior;
          outcome.cancelled =
              remote.cancelled || remote.state == "cancelled";
          outcome.error = remote.state == "failed"
                              ? (remote.error.empty() ? "remote job failed"
                                                      : remote.error)
                              : "";
          outcome.circles = remote.circles;
          pool.release(flight.endpoint);
          break;
        } catch (const std::exception& e) {
          flight.client.close();
          pool.release(flight.endpoint);
          const remote::FailureKind kind =
              remote::classifyFailure(e.what());
          if (kind == remote::FailureKind::Fatal || doomed ||
              hooks.cancelled()) {
            outcome.error = e.what();
            break;
          }
          if (kind == remote::FailureKind::EndpointDown) {
            pool.markDead(flight.endpoint);
          }
          // The job may still be running on a live-but-unreachable host;
          // best-effort cancel so the fleet doesn't burn an abandoned
          // budget. Safe to retry regardless: the Stitcher is
          // deterministic, so the requeued tile reproduces the same result.
          try {
            serve::Client canceller;
            canceller.connect(endpoint.host, endpoint.port, 5.0);
            (void)canceller.request("CANCEL " + std::to_string(jobId));
          } catch (const std::exception&) {
          }
          // Fresh placement round: only the endpoint that just failed is
          // excluded up front (a still-alive host that merely refused an
          // earlier round deserves another chance).
          flight.tried.assign(pool.size(), 0);
          flight.tried[flight.endpoint] = 1;
          ++requeues_;
          if (!submitTile(i)) break;  // outcome.error already set
        }
      }
      if (!doomed && !outcome.error.empty()) {
        // First irrecoverable failure in the reap phase: stop the siblings
        // we have not reaped yet.
        doomed = true;
        cancelSiblingsFrom(i + 1);
      }
      ++tilesDone;
      hooks.progress(tilesDone, grid.tiles.size(), "shard");
    }
    endpointsDead_ = pool.deadCount();
    return outcomes;
  }

  // ---- stitch + aggregate ----

  [[nodiscard]] engine::RunReport mergeOutcomes(
      const TileGrid& grid, const std::vector<TileOutcome>& outcomes,
      const par::WallTimer& timer) const {
    const par::WallTimer mergeTimer;

    // Translate crop-local detections into full-image coordinates.
    std::vector<std::vector<model::Circle>> perTile(grid.tiles.size());
    for (std::size_t i = 0; i < grid.tiles.size(); ++i) {
      const partition::IRect& halo = grid.tiles[i].halo;
      perTile[i].reserve(outcomes[i].circles.size());
      for (const model::Circle& c : outcomes[i].circles) {
        perTile[i].push_back(
            model::Circle{c.x + halo.x0, c.y + halo.y0, c.r});
      }
    }
    const StitchResult stitched = stitchCircles(grid, perTile, stitch_);

    ShardReport shardReport;
    shardReport.gridX = grid.gridX;
    shardReport.gridY = grid.gridY;
    shardReport.halo = grid.halo;
    shardReport.backend = socketBackend_ ? "socket" : "local";
    shardReport.innerStrategy = innerStrategy_;
    shardReport.haloDropped = stitched.haloDropped;
    shardReport.duplicatesRemoved = stitched.duplicatesRemoved;
    shardReport.requeues = requeues_;
    shardReport.endpointsDead = endpointsDead_;

    engine::RunReport report;
    report.strategy = name_;
    bool cancelled = false;
    double weightedAcceptance = 0.0;
    for (std::size_t i = 0; i < grid.tiles.size(); ++i) {
      const TileOutcome& outcome = outcomes[i];
      TileRun tile;
      tile.spec = grid.tiles[i];
      tile.label = tileLabel(grid.tiles[i]);
      tile.iterations = outcome.iterations;
      tile.wallSeconds = outcome.wallSeconds;
      tile.acceptanceRate = outcome.acceptanceRate;
      tile.logPosterior = outcome.logPosterior;
      tile.circlesFound = perTile[i].size();
      tile.circlesKept = stitched.keptPerTile[i];
      tile.cancelled = outcome.cancelled;
      tile.error = outcome.error;
      tile.diagnostics = outcome.diagnostics;
      tile.endpoint = outcome.endpoint;
      tile.attempts = std::max(outcome.attempts, 1u);
      shardReport.tiles.push_back(std::move(tile));

      report.iterations += outcome.iterations;
      weightedAcceptance += outcome.acceptanceRate *
                            static_cast<double>(outcome.iterations);
      // The inner report's own flag is authoritative: pipeline strategies
      // report iteration counts unrelated to the budget, so inferring
      // cancellation from a shortfall would mis-flag completed runs.
      cancelled = cancelled || outcome.cancelled;
      report.diagnostics.merge(outcome.diagnostics);
      // Like the §IX pipelines: the shard converges when its slowest tile
      // does (local backend only; remote reports carry no trace).
      if (outcome.itersToConverge) {
        report.iterationsToConverge =
            std::max(report.iterationsToConverge.value_or(0),
                     *outcome.itersToConverge);
      }
      shardReport.maxTileSeconds =
          std::max(shardReport.maxTileSeconds, outcome.wallSeconds);
      shardReport.sumTileSeconds += outcome.wallSeconds;
    }

    report.cancelled = cancelled;
    report.acceptanceRate =
        report.iterations == 0
            ? 0.0
            : weightedAcceptance / static_cast<double>(report.iterations);
    report.circles = stitched.circles;
    report.logPosterior = mergedLogPosterior(stitched.circles);
    report.threadsUsed =
        socketBackend_ ? static_cast<unsigned>(endpoints_.size())
                       : par::resolveThreadCount(resources_.threads);

    shardReport.mergeSeconds = mergeTimer.seconds();
    report.wallSeconds = timer.seconds();
    report.extras = std::move(shardReport);
    return report;
  }

  /// Whole-image log posterior of the stitched model, comparable with an
  /// unsharded run of the same problem (tile-local values are not).
  [[nodiscard]] double mergedLogPosterior(
      const std::vector<model::Circle>& merged) const {
    model::ModelState state(*problem_.filtered, prior_, problem_.likelihood);
    for (const model::Circle& circle : merged) state.commitAdd(circle);
    return state.logPosterior();
  }

  std::string name_;
  const engine::StrategyRegistry* registry_;
  engine::ExecResources resources_;
  int gridX_ = 2;
  int gridY_ = 2;
  int halo_ = 16;
  std::uint64_t tileIters_ = 0;
  std::uint64_t minTileIters_ = 2000;
  StitchOptions stitch_;
  double timeoutSeconds_ = 600.0;
  bool socketBackend_ = false;
  std::vector<Endpoint> endpoints_;
  double pingTimeout_ = 5.0;
  double pingInterval_ = 30.0;
  std::size_t requeues_ = 0;       ///< last runSocket's re-submissions
  std::size_t endpointsDead_ = 0;  ///< dead endpoints at end of last run
  std::string innerStrategy_;
  std::vector<std::string> innerOptions_;
  engine::Problem problem_;
  model::PriorParams prior_;
  bool prepared_ = false;
};

}  // namespace

void registerShardedStrategy(engine::StrategyRegistry& registry) {
  const engine::StrategyRegistry* reg = &registry;
  registry.add(
      {"sharded", "§VIII-IX + serving",
       "shard coordinator: tile + halo fan-out, IoU-stitched merge",
       "ShardReport",
       "tiles=KxL halo=N backend=local|socket endpoints=host:port[*W],... "
       "endpoints-file=PATH ping-timeout=X ping-interval=X strategy=NAME "
       "inner.K=V tile-iters=N min-tile-iters=N iou=X timeout=X",
       [reg](const engine::ExecResources& res,
             const engine::OptionMap& opts) {
         return std::make_unique<ShardStrategy>("sharded", reg, res, opts);
       }});
}

}  // namespace mcmcpar::shard
