// The "sharded" strategy: a coordinator that decomposes one Problem image
// into K x L overlapping tiles (shard/tiling), runs each tile as an
// independent job — locally through engine::BatchRunner under the shared
// PoolBudget, or remotely through serve::Client against one or more
// mcmcpar_serve endpoints — and stitches the per-tile results back into one
// RunReport (shard/stitcher), carrying the tile layout and reconciliation
// accounting as a ShardReport. This is the first subsystem that composes
// the serving layer with itself: a served job whose line carries @shard
// becomes a coordinator fanning out to the very queue that runs it.

#include "shard/strategy.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <iterator>
#include <mutex>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/runtime_predictor.hpp"
#include "engine/batch.hpp"
#include "engine/registry.hpp"
#include "model/posterior.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "par/concurrency.hpp"
#include "par/virtual_clock.hpp"
#include "partition/prior_estimation.hpp"
#include "serve/socket.hpp"
#include "shard/endpoints.hpp"
#include "shard/hedge.hpp"
#include "shard/remote.hpp"
#include "shard/report.hpp"
#include "shard/stitcher.hpp"
#include "shard/tiling.hpp"

namespace mcmcpar::shard {

namespace {

/// Exact round-trip formatting for prior directives: the remote server's
/// strtod recovers the coordinator's double bit-for-bit, so the socket
/// backend samples under the identical prior the local backend would.
std::string fmtExact(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

/// Shard-layer metric handles. Get-or-create on every call is fine here:
/// these sites fire per tile or per run, never per iteration.
obs::Counter& shardCounter(const char* name, const char* help) {
  return obs::Registry::global().counter(name, help);
}

obs::Histogram& shardSeconds(const char* name, const char* help) {
  return obs::Registry::global().histogram(name, help, obs::latencyBuckets());
}

/// Trace rows for tile flights: the coordinator observes them from a poll
/// loop, not a call stack, so each tile gets its own synthetic timeline row
/// (fan-out and stitch spans stay on the coordinator's real thread row).
constexpr std::int64_t kTileTrackBase = 100;

/// One tile's outcome in coordinator-neutral form, before stitching.
struct TileOutcome {
  std::uint64_t iterations = 0;
  double wallSeconds = 0.0;
  double acceptanceRate = 0.0;
  double logPosterior = 0.0;
  bool cancelled = false;
  std::string error;
  std::vector<model::Circle> circles;  ///< crop-local coordinates
  mcmc::Diagnostics diagnostics;       ///< local backend only
  std::optional<std::uint64_t> itersToConverge;
  std::string endpoint;   ///< socket backend: "host:port" that ran it
  unsigned attempts = 0;  ///< socket backend: submissions incl. requeues
  bool hedged = false;    ///< this result came from a hedge replica
};

class ShardStrategy final : public engine::Strategy {
 public:
  ShardStrategy(std::string name, const engine::StrategyRegistry* registry,
                const engine::ExecResources& resources,
                const engine::OptionMap& options)
      : name_(std::move(name)), registry_(registry), resources_(resources) {
    const std::string tiles = options.str("tiles", "2x2");
    if (tiles == "auto") {
      // Predictor-driven decomposition: the grid is chosen per image from
      // its content-density scan instead of a fixed KxL.
      autoTiles_ = true;
    } else {
      try {
        parseTileCount(tiles, gridX_, gridY_);
      } catch (const std::invalid_argument& e) {
        throw engine::EngineError("strategy '" + name_ + "': " + e.what());
      }
    }
    const std::uint64_t maxTiles = options.u64("max-tiles", 0);
    if (maxTiles > 4096) {
      throw engine::EngineError("strategy '" + name_ +
                                "': max-tiles must be <= 4096, got " +
                                std::to_string(maxTiles));
    }
    maxTiles_ = static_cast<int>(maxTiles);
    const std::uint64_t minTileSize = options.u64("min-tile-size", 32);
    if (minTileSize == 0 || minTileSize > 1000000) {
      throw engine::EngineError(
          "strategy '" + name_ +
          "': min-tile-size must be in [1, 1000000], got " +
          std::to_string(minTileSize));
    }
    minTileSize_ = static_cast<int>(minTileSize);
    hedgeFactor_ = options.dbl("hedge-factor", 0.0);
    if (hedgeFactor_ < 0.0) {
      throw engine::EngineError("strategy '" + name_ +
                                "': hedge-factor must be >= 0 (0 disables "
                                "hedging)");
    }
    // Bound before the int cast so halo=3000000000 is rejected right here
    // at admission with a clear message, not at run time on a worker after
    // the cast wrapped negative. No real image axis approaches the bound,
    // and makeTileGrid clamps to the image anyway.
    const std::uint64_t halo = options.u64("halo", 16);
    if (halo > 1000000) {
      throw engine::EngineError("strategy '" + name_ +
                                "': halo must be <= 1000000 pixels, got " +
                                std::to_string(halo));
    }
    halo_ = static_cast<int>(halo);
    tileIters_ = options.u64("tile-iters", 0);
    minTileIters_ = options.u64("min-tile-iters", 2000);
    stitch_.iouThreshold = options.dbl("iou", 0.3);
    timeoutSeconds_ = options.dbl("timeout", 600.0);

    const std::string backend = options.str("backend", "local");
    if (backend == "local") {
      socketBackend_ = false;
    } else if (backend == "socket") {
      socketBackend_ = true;
    } else {
      throw engine::EngineError("strategy '" + name_ +
                                "': backend must be 'local' or 'socket', "
                                "got '" +
                                backend + "'");
    }
    try {
      endpoints_ = parseEndpointList(options.str("endpoints", ""));
      const std::string endpointsFile = options.str("endpoints-file", "");
      if (!endpointsFile.empty()) {
        std::vector<Endpoint> fromFile = loadEndpointsFile(endpointsFile);
        endpoints_.insert(endpoints_.end(),
                          std::make_move_iterator(fromFile.begin()),
                          std::make_move_iterator(fromFile.end()));
      }
    } catch (const engine::EngineError& e) {
      throw engine::EngineError("strategy '" + name_ + "': " + e.what());
    }
    if (socketBackend_ && endpoints_.empty()) {
      throw engine::EngineError(
          "strategy '" + name_ +
          "': backend=socket requires endpoints=host:port[*weight][,...] "
          "or endpoints-file=PATH");
    }
    pingTimeout_ = options.dbl("ping-timeout", 5.0);
    pingInterval_ = options.dbl("ping-interval", 30.0);

    innerStrategy_ = options.str("strategy", "serial");
    if (innerStrategy_ == name_) {
      throw engine::EngineError("strategy '" + name_ +
                                "': recursive sharding (strategy=" + name_ +
                                ") is not supported");
    }
    for (const std::string& key : options.keysWithPrefix("inner.")) {
      innerOptions_.push_back(key.substr(6) + "=" + options.str(key, ""));
    }
    options.requireConsumed(name_);

    // Fail a bad inner strategy or option at admission time, not on the
    // first tile: the same early-validation contract the serve layer
    // relies on for descriptive SUBMIT errors.
    try {
      (void)registry_->create(innerStrategy_, engine::ExecResources{},
                              innerOptions_);
    } catch (const engine::EngineError& e) {
      throw engine::EngineError("strategy '" + name_ +
                                "': inner strategy rejected: " + e.what());
    }
  }

  [[nodiscard]] const std::string& name() const noexcept override {
    return name_;
  }

  void prepare(const engine::Problem& problem) override {
    if (problem.filtered == nullptr) {
      throw engine::EngineError("strategy '" + name_ +
                                "': Problem.filtered image is null");
    }
    problem_ = problem;
    prior_ = problem.prior;
    // Whole-image count estimate: only used to score the *merged* model, so
    // the reported logPosterior is comparable with an unsharded run of the
    // same problem. Tiles re-estimate on their own crops.
    if (problem.estimateCount) {
      const auto estimate = partition::estimateCount(
          *problem.filtered, problem.theta, prior_.radiusMean);
      prior_.expectedCount = std::max(estimate.expectedCount, 0.5);
    }
    prepared_ = true;
  }

  [[nodiscard]] engine::RunReport run(
      const engine::RunBudget& budget,
      const engine::RunHooks& hooks) override {
    if (!prepared_) {
      throw engine::EngineError("strategy '" + name_ +
                                "': run() called before prepare()");
    }
    const img::ImageF& image = *problem_.filtered;
    // Content-density scan: one cheap pass over coarse blocks feeds the §IX
    // runtime predictor with per-region activity, which drives adaptive
    // grids, workload-proportional budgets and the hedging reference.
    const DensityMap density = scanDensity(image);
    TileGrid grid;
    try {
      grid = autoTiles_
                 ? makeAdaptiveTileGrid(
                       density, resolveAutoMaxTiles(), halo_, minTileSize_,
                       core::defaultCostCalibration().densityWeight)
                 : makeTileGrid(image.width(), image.height(), gridX_,
                                gridY_, halo_);
    } catch (const std::invalid_argument& e) {
      throw engine::EngineError("strategy '" + name_ + "': " + e.what());
    }

    const std::vector<std::uint64_t> budgets =
        tileBudgets(grid, budget, density);
    std::vector<double> predicted;
    predicted.reserve(grid.tiles.size());
    for (std::size_t i = 0; i < grid.tiles.size(); ++i) {
      predicted.push_back(core::predictCostSeconds(
          budgets[i], regionMeanActivity(density, grid.tiles[i].core)));
    }
    const par::WallTimer timer;
    obs::Span runSpan("shard", "shard-run");
    runSpan.arg("backend", socketBackend_ ? "socket" : "local");
    runSpan.arg("tiles", std::to_string(grid.tiles.size()));
    const std::vector<TileOutcome> outcomes =
        socketBackend_ ? runSocket(grid, budgets, predicted, budget, hooks)
                       : runLocal(grid, budgets, budget, hooks);

    std::size_t failures = 0;
    std::string firstError;
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
      if (outcomes[i].error.empty()) continue;
      ++failures;
      if (firstError.empty()) {
        firstError = tileLabel(grid.tiles[i]) + ": " + outcomes[i].error;
      }
    }
    if (failures > 0) {
      // A missing tile is a missing image region: the merged model would
      // silently under-count, so a failed tile fails the shard run.
      throw engine::EngineError("strategy '" + name_ + "': " +
                                std::to_string(failures) +
                                " tile job(s) failed; first: " + firstError);
    }

    return mergeOutcomes(grid, outcomes, timer);
  }

 private:
  [[nodiscard]] static std::string tileLabel(const TileSpec& tile) {
    return "tile-" + std::to_string(tile.ix) + "x" + std::to_string(tile.iy);
  }

  /// The tile cap for tiles=auto when max-tiles is not given: aim for a
  /// couple of tiles per worker (endpoint or core) so the decomposition
  /// has slack to load-balance, bounded to a sane range.
  [[nodiscard]] int resolveAutoMaxTiles() const {
    if (maxTiles_ != 0) return maxTiles_;
    const unsigned workers =
        socketBackend_ ? static_cast<unsigned>(endpoints_.size()) * 2u
                       : par::resolveThreadCount(resources_.threads);
    return static_cast<int>(std::clamp(workers, 2u, 64u));
  }

  /// Split the whole-image iteration budget across tiles proportional to
  /// each core's predicted workload — area plus density-weighted content
  /// (shard/tiling regionWorkload) — so busy regions get the sampling
  /// effort the §IX predictor says they need (a uniform image degenerates
  /// to the old area-proportional split). A floor keeps sparse tiles from
  /// starving; tile-iters=N overrides with a flat count.
  [[nodiscard]] std::vector<std::uint64_t> tileBudgets(
      const TileGrid& grid, const engine::RunBudget& budget,
      const DensityMap& density) const {
    std::vector<std::uint64_t> budgets;
    budgets.reserve(grid.tiles.size());
    if (tileIters_ != 0) {
      budgets.assign(grid.tiles.size(), tileIters_);
      return budgets;
    }
    const double densityWeight = core::defaultCostCalibration().densityWeight;
    std::vector<double> work;
    work.reserve(grid.tiles.size());
    double totalWork = 0.0;
    for (const TileSpec& tile : grid.tiles) {
      const double w =
          regionWorkload(density, tile.core, densityWeight);
      work.push_back(w);
      totalWork += w;
    }
    for (std::size_t i = 0; i < grid.tiles.size(); ++i) {
      const double share =
          totalWork > 0.0
              ? work[i] / totalWork
              : 1.0 / static_cast<double>(grid.tiles.size());
      const auto scaled = static_cast<std::uint64_t>(
          std::llround(static_cast<double>(budget.iterations) * share));
      budgets.push_back(std::max(scaled, minTileIters_));
    }
    return budgets;
  }

  [[nodiscard]] engine::Problem tileProblem(const img::ImageF& crop,
                                            const TileSpec& tile) const {
    engine::Problem problem = problem_;
    problem.filtered = &crop;
    // With estimateCount on, each tile re-estimates its own expected count
    // from its crop (eq. 5). With it off, the caller's fixed whole-image
    // count must be scaled to the tile's area share — copying it verbatim
    // would make every tile expect the whole image's circles.
    if (!problem_.estimateCount) {
      const double share =
          static_cast<double>(tile.core.area()) /
          static_cast<double>(problem_.filtered->pixelCount());
      problem.prior.expectedCount =
          std::max(problem_.prior.expectedCount * share, 0.5);
    }
    return problem;
  }

  // ---- local backend: a BatchRunner fan-out under the shared budget ----

  [[nodiscard]] std::vector<TileOutcome> runLocal(
      const TileGrid& grid, const std::vector<std::uint64_t>& budgets,
      const engine::RunBudget& budget, const engine::RunHooks& hooks) const {
    std::vector<img::ImageF> crops;
    crops.reserve(grid.tiles.size());
    for (const TileSpec& tile : grid.tiles) {
      crops.push_back(problem_.filtered->crop(tile.halo.x0, tile.halo.y0,
                                              tile.halo.w, tile.halo.h));
    }

    std::vector<engine::BatchJob> jobs;
    jobs.reserve(grid.tiles.size());
    std::uint64_t totalIters = 0;
    for (std::size_t i = 0; i < grid.tiles.size(); ++i) {
      engine::BatchJob job;
      job.strategy = innerStrategy_;
      job.options = innerOptions_;
      job.problem = tileProblem(crops[i], grid.tiles[i]);
      job.budget = engine::RunBudget{budgets[i], budget.traceInterval};
      job.label = tileLabel(grid.tiles[i]);
      jobs.push_back(std::move(job));
      totalIters += budgets[i];
    }

    engine::BatchOptions options;
    options.resources = resources_;
    options.resources.poolBudget = nullptr;
    options.sharedBudget = resources_.poolBudget;

    // Per-tile progress folded into one monotone whole-shard beat.
    std::mutex progressMutex;
    std::vector<std::uint64_t> done(jobs.size(), 0);
    engine::BatchHooks batchHooks;
    batchHooks.cancelRequested = hooks.cancelRequested;
    if (hooks.onProgress) {
      batchHooks.onJobProgress = [&](std::size_t index,
                                     const engine::RunProgress& p) {
        // Deliver while still holding the lock: emitting after release
        // would let concurrently computed sums arrive out of order, making
        // the whole-shard beat go backwards.
        const std::scoped_lock lock(progressMutex);
        done[index] = std::min(p.done, budgets[index]);
        std::uint64_t sum = 0;
        for (const std::uint64_t d : done) sum += d;
        hooks.progress(sum, totalIters, "shard");
      };
    }

    const engine::BatchResult result =
        engine::BatchRunner(registry_).run(jobs, options, batchHooks);

    std::vector<TileOutcome> outcomes(grid.tiles.size());
    for (std::size_t i = 0; i < grid.tiles.size(); ++i) {
      TileOutcome& outcome = outcomes[i];
      const engine::RunReport& report = result.reports[i];
      outcome.iterations = report.iterations;
      outcome.wallSeconds = report.wallSeconds;
      outcome.acceptanceRate = report.acceptanceRate;
      outcome.logPosterior = report.logPosterior;
      outcome.cancelled = report.cancelled;
      outcome.error = result.batch.errors[i];
      outcome.circles = report.circles;
      outcome.diagnostics = report.diagnostics;
      outcome.itersToConverge = report.iterationsToConverge;
    }
    return outcomes;
  }

  // ---- socket backend: serve::Client fan-out over an endpoint fleet ----

  /// The job line for tile `i`: an @image=inline reference to the one-shot
  /// upload that precedes it, plus the coordinator's exact prior (%.17g
  /// round-trips every double bit-for-bit), so the remote tile runs the
  /// identical problem the local backend would build in tileProblem().
  [[nodiscard]] std::string tileJobLine(const TileGrid& grid, std::size_t i,
                                        std::uint64_t iters,
                                        const engine::RunBudget& budget)
      const {
    const TileSpec& tile = grid.tiles[i];
    std::string line =
        tileLabel(tile) + " " + innerStrategy_ +
        " @image=inline @iters=" + std::to_string(iters) + " @seed=" +
        std::to_string(engine::deriveJobSeed(resources_.seed, i)) +
        " @label=" + tileLabel(tile) +
        " @radius=" + fmtExact(problem_.prior.radiusMean) +
        " @radius-std=" + fmtExact(problem_.prior.radiusStd) +
        " @radius-min=" + fmtExact(problem_.prior.radiusMin) +
        " @radius-max=" + fmtExact(problem_.prior.radiusMax);
    if (!problem_.estimateCount) {
      // Mirror tileProblem's area-share scaling of a caller-fixed count.
      const double share =
          static_cast<double>(tile.core.area()) /
          static_cast<double>(problem_.filtered->pixelCount());
      line += " @count=" +
              fmtExact(std::max(problem_.prior.expectedCount * share, 0.5));
    }
    if (budget.traceInterval != 0) {
      line += " @trace=" + std::to_string(budget.traceInterval);
    }
    for (const std::string& option : innerOptions_) line += " " + option;
    return line;
  }

  [[nodiscard]] std::vector<TileOutcome> runSocket(
      const TileGrid& grid, const std::vector<std::uint64_t>& budgets,
      const std::vector<double>& predicted, const engine::RunBudget& budget,
      const engine::RunHooks& hooks) {
    requeues_ = 0;
    endpointsDead_ = 0;
    hedgesIssued_ = 0;
    hedgesWon_ = 0;

    obs::Span fanoutSpan("shard", "fanout");
    fanoutSpan.arg("tiles", std::to_string(grid.tiles.size()));
    fanoutSpan.arg("endpoints", std::to_string(endpoints_.size()));

    // Tile crops travel as float32 binary frames inside the protocol — no
    // temp files, no shared filesystem, no 8-bit quantisation: the remote
    // tile sees the coordinator's pixels bit-for-bit.
    std::vector<img::ImageF> crops;
    crops.reserve(grid.tiles.size());
    for (const TileSpec& tile : grid.tiles) {
      crops.push_back(problem_.filtered->crop(tile.halo.x0, tile.halo.y0,
                                              tile.halo.w, tile.halo.h));
    }

    EndpointPool pool(endpoints_, pingTimeout_, pingInterval_);
    if (pool.checkAll() == 0) {
      throw engine::EngineError(
          "strategy '" + name_ + "': no endpoint answered PING (fleet: " +
          formatEndpointList(endpoints_) + ")");
    }

    // One replica of a tile on one endpoint. A tile has a primary flight
    // and, when the hedging policy fires, at most one hedge flight running
    // the bit-identical job line; whichever reaches a terminal state first
    // resolves the tile. Flights are polled with STATUS (no blocking WAIT),
    // so the coordinator connection stays available for CANCEL.
    struct Flight {
      serve::Client client;
      std::size_t endpoint = 0;  ///< pool index currently running the tile
      std::uint64_t jobId = 0;
      bool active = false;
      std::chrono::steady_clock::time_point started{};
    };
    struct TileState {
      Flight primary;
      Flight hedge;
      std::vector<char> tried;  ///< pool indices already tried for the
                                ///< current placement round
      bool hedged = false;      ///< a hedge replica was ever issued
      bool resolved = false;
    };
    const std::size_t n = grid.tiles.size();
    std::vector<TileOutcome> outcomes(n);
    std::vector<TileState> tiles(n);
    for (TileState& tile : tiles) tile.tried.assign(pool.size(), 0);

    const auto elapsedSeconds = [](const Flight& flight) {
      return std::chrono::duration<double>(
                 std::chrono::steady_clock::now() - flight.started)
          .count();
    };

    // Per-iteration cost observed on resolved, successful tiles; its
    // median scaled by a tile's budget is the hedging reference once real
    // measurements exist (shard/hedge.hpp prefers it over the prediction).
    std::vector<double> observedPerIter;
    const auto observedMedianSeconds = [&](std::size_t i) -> double {
      if (observedPerIter.empty() || budgets[i] == 0) return 0.0;
      std::vector<double> sorted = observedPerIter;
      std::sort(sorted.begin(), sorted.end());
      return sorted[sorted.size() / 2] * static_cast<double>(budgets[i]);
    };

    std::size_t tilesDone = 0;
    bool doomed = false;
    const auto markResolved = [&](std::size_t i) {
      tiles[i].resolved = true;
      ++tilesDone;
      hooks.progress(tilesDone, n, "shard");
      if (!doomed && !outcomes[i].error.empty()) doomed = true;
    };

    // Place tile i on the least-loaded surviving endpoint it has not tried
    // this round: upload the crop one-shot, submit @image=inline on the
    // same connection. Transport failures mark the endpoint dead; ERR
    // QUEUE_FULL / SHUTTING_DOWN skip it without marking. Returns false
    // (outcome.error set) on a deterministic rejection or when no endpoint
    // remains.
    const auto submitTile = [&](std::size_t i) -> bool {
      TileOutcome& outcome = outcomes[i];
      Flight& flight = tiles[i].primary;
      flight.active = false;
      while (true) {
        pool.refresh();
        const std::optional<std::size_t> picked =
            pool.pick(tiles[i].tried);
        if (!picked) {
          outcome.error =
              "no usable endpoint left (fleet: " +
              formatEndpointList(endpoints_) + ", " +
              std::to_string(pool.deadCount()) + " marked dead)";
          return false;
        }
        flight.endpoint = *picked;
        tiles[i].tried[*picked] = 1;
        const Endpoint& endpoint = pool.endpoint(*picked);
        ++outcome.attempts;
        const auto submitStart = std::chrono::steady_clock::now();
        try {
          flight.client.connect(endpoint.host, endpoint.port,
                                timeoutSeconds_);
          (void)flight.client.upload(tileLabel(grid.tiles[i]), crops[i],
                                     /*oneshot=*/true);
          flight.jobId = flight.client.submit(
              tileJobLine(grid, i, budgets[i], budget));
          flight.active = true;
          flight.started = std::chrono::steady_clock::now();
          outcome.endpoint = endpoint.label();
          shardSeconds("mcmcpar_shard_network_seconds",
                       "Coordinator-side transfer time (tile upload+submit, "
                       "report fetch); _sum is the run's network share.")
              .observe(std::chrono::duration<double>(flight.started -
                                                     submitStart)
                           .count());
          return true;
        } catch (const std::exception& e) {
          flight.client.close();
          pool.release(*picked);
          const remote::FailureKind kind = remote::classifyFailure(e.what());
          if (kind == remote::FailureKind::Fatal) {
            outcome.error = e.what();
            return false;
          }
          if (kind == remote::FailureKind::EndpointDown) {
            pool.markDead(*picked);
            shardCounter("mcmcpar_shard_endpoints_marked_dead_total",
                         "Endpoints removed from a fan-out after a "
                         "transport failure.")
                .add();
          }
          ++requeues_;
          shardCounter("mcmcpar_shard_requeues_total",
                       "Tile re-submissions after an endpoint failure.")
              .add();
        }
      }
    };

    // Issue a hedge replica of tile i on an idle endpoint. Strictly
    // best-effort and non-destructive: the identical job line goes out (so
    // the result is bit-identical to the primary's), and any failure just
    // leaves the primary standing — a hedge must never doom a healthy run.
    const auto submitHedge = [&](std::size_t i) -> bool {
      TileState& tile = tiles[i];
      std::vector<char> exclude(pool.size(), 0);
      for (std::size_t e = 0; e < pool.size(); ++e) {
        if (e == tile.primary.endpoint || pool.load(e) > 0) exclude[e] = 1;
      }
      const std::optional<std::size_t> picked = pool.pick(exclude);
      if (!picked) return false;
      Flight& flight = tile.hedge;
      flight.endpoint = *picked;
      const Endpoint& endpoint = pool.endpoint(*picked);
      ++outcomes[i].attempts;
      try {
        flight.client.connect(endpoint.host, endpoint.port,
                              timeoutSeconds_);
        (void)flight.client.upload(tileLabel(grid.tiles[i]), crops[i],
                                   /*oneshot=*/true);
        flight.jobId = flight.client.submit(
            tileJobLine(grid, i, budgets[i], budget));
        flight.active = true;
        flight.started = std::chrono::steady_clock::now();
        return true;
      } catch (const std::exception&) {
        flight.client.close();
        pool.release(*picked);
        return false;
      }
    };

    // Drop a still-active replica whose sibling already resolved the tile:
    // cancel the remote job on the same (idle-between-polls) connection so
    // the fleet stops burning its budget, then return the endpoint's load.
    const auto abandonFlight = [&](Flight& flight) {
      if (!flight.active) return;
      try {
        (void)flight.client.request("CANCEL " +
                                    std::to_string(flight.jobId));
      } catch (const std::exception&) {
        // Best effort; the server reaps the connection either way.
      }
      flight.client.close();
      pool.release(flight.endpoint);
      flight.active = false;
    };

    // One STATUS round-trip for an active flight. Terminal states fetch
    // the report and fill the outcome; a flight outstanding longer than
    // the run timeout is treated as a transport failure so a wedged server
    // cannot stall the poll loop forever.
    enum class Poll { Running, Finished, Failed };
    const auto pollFlight = [&](std::size_t i, Flight& flight,
                                std::string& failure) -> Poll {
      try {
        if (elapsedSeconds(flight) > timeoutSeconds_) {
          throw serve::ProtocolError(
              "tile exceeded the " + std::to_string(timeoutSeconds_) +
              " s timeout");
        }
        const std::string reply = flight.client.request(
            "STATUS " + std::to_string(flight.jobId));
        std::istringstream words(reply);
        std::string ok, idText, state;
        words >> ok >> idText >> state;
        if (ok != "OK") throw serve::ProtocolError(reply);
        if (state != "done" && state != "failed" && state != "cancelled") {
          return Poll::Running;
        }
        const auto reportStart = std::chrono::steady_clock::now();
        const remote::TileReportJson remote =
            remote::parseReportJson(flight.client.report(flight.jobId));
        shardSeconds("mcmcpar_shard_network_seconds",
                     "Coordinator-side transfer time (tile upload+submit, "
                     "report fetch); _sum is the run's network share.")
            .observe(std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - reportStart)
                         .count());
        TileOutcome& outcome = outcomes[i];
        outcome.iterations = remote.iterations;
        outcome.wallSeconds = remote.wallSeconds;
        outcome.acceptanceRate = remote.acceptance;
        outcome.logPosterior = remote.logPosterior;
        outcome.cancelled = remote.cancelled || remote.state == "cancelled";
        outcome.error = remote.state == "failed"
                            ? (remote.error.empty() ? "remote job failed"
                                                    : remote.error)
                            : "";
        outcome.circles = remote.circles;
        return Poll::Finished;
      } catch (const std::exception& e) {
        failure = e.what();
        return Poll::Failed;
      }
    };

    // Tile i finished on `viaHedge ? hedge : primary`: adopt that replica's
    // result, abandon the other one, and record the observed per-iteration
    // cost for future hedging references.
    const auto resolveTile = [&](std::size_t i, bool viaHedge) {
      TileState& tile = tiles[i];
      TileOutcome& outcome = outcomes[i];
      Flight& winner = viaHedge ? tile.hedge : tile.primary;
      Flight& loser = viaHedge ? tile.primary : tile.hedge;
      outcome.endpoint = pool.endpoint(winner.endpoint).label();
      outcome.hedged = viaHedge;
      if (viaHedge) {
        ++hedgesWon_;
        shardCounter("mcmcpar_shard_hedges_won_total",
                     "Hedge replicas that beat their primary.")
            .add();
      }
      const auto resolvedAt = std::chrono::steady_clock::now();
      const double rtt =
          std::chrono::duration<double>(resolvedAt - winner.started).count();
      obs::Registry::global()
          .histogram("mcmcpar_shard_tile_rtt_seconds",
                     "Tile submit-to-report round trip per endpoint.",
                     obs::latencyBuckets(), {{"endpoint", outcome.endpoint}})
          .observe(rtt);
      shardSeconds("mcmcpar_shard_sample_seconds",
                   "Remote sampler wall time per resolved tile; _sum is "
                   "the run's sampling share.")
          .observe(outcome.wallSeconds);
      shardCounter("mcmcpar_shard_tiles_resolved_total",
                   "Tiles that reached a terminal result.")
          .add();
      obs::Tracer& tracer = obs::Tracer::global();
      if (tracer.enabled()) {
        const std::int64_t track =
            kTileTrackBase + static_cast<std::int64_t>(i);
        const std::string label = tileLabel(grid.tiles[i]);
        tracer.record("shard",
                      (viaHedge ? "tile-hedge:" : "tile:") + label,
                      winner.started, resolvedAt,
                      {{"endpoint", outcome.endpoint},
                       {"hedged", viaHedge ? "true" : "false"},
                       {"job", std::to_string(winner.jobId)}},
                      track);
        if (loser.active) {
          tracer.record("shard",
                        (viaHedge ? "tile:" : "tile-hedge:") + label,
                        loser.started, resolvedAt,
                        {{"endpoint", pool.endpoint(loser.endpoint).label()},
                         {"hedged", viaHedge ? "false" : "true"},
                         {"outcome", "abandoned"}},
                        track);
        }
      }
      if (outcome.error.empty() && !outcome.cancelled && budgets[i] > 0) {
        observedPerIter.push_back(elapsedSeconds(winner) /
                                  static_cast<double>(budgets[i]));
      }
      winner.client.close();
      pool.release(winner.endpoint);
      winner.active = false;
      abandonFlight(loser);
      markResolved(i);
    };

    // A flight failed (transport error, ERR reply or timeout). If its
    // sibling replica is still running, the tile stays covered and the
    // failure costs nothing; otherwise requeue the tile on a fresh
    // placement round — unless the failure is deterministic or the run is
    // already doomed/cancelled, which resolves the tile with the error.
    const auto failFlight = [&](std::size_t i, bool isHedge,
                                const std::string& failure) {
      TileState& tile = tiles[i];
      TileOutcome& outcome = outcomes[i];
      Flight& flight = isHedge ? tile.hedge : tile.primary;
      const std::size_t endpointIndex = flight.endpoint;
      flight.client.close();
      pool.release(endpointIndex);
      flight.active = false;
      const remote::FailureKind kind = remote::classifyFailure(failure);
      if (kind == remote::FailureKind::EndpointDown) {
        pool.markDead(endpointIndex);
        shardCounter("mcmcpar_shard_endpoints_marked_dead_total",
                     "Endpoints removed from a fan-out after a transport "
                     "failure.")
            .add();
      }
      const Flight& other = isHedge ? tile.primary : tile.hedge;
      if (other.active) return;
      if (kind == remote::FailureKind::Fatal || doomed ||
          hooks.cancelled()) {
        outcome.error = failure;
        markResolved(i);
        return;
      }
      // The job may still be running on a live-but-unreachable host;
      // best-effort cancel so the fleet doesn't burn an abandoned budget.
      // Safe to retry regardless: the Stitcher is deterministic, so the
      // requeued tile reproduces the same result.
      try {
        serve::Client canceller;
        const Endpoint& endpoint = pool.endpoint(endpointIndex);
        canceller.connect(endpoint.host, endpoint.port, 5.0);
        (void)canceller.request("CANCEL " + std::to_string(flight.jobId));
      } catch (const std::exception&) {
      }
      // Fresh placement round: only the endpoint that just failed is
      // excluded up front (a still-alive host that merely refused an
      // earlier round deserves another chance).
      tile.tried.assign(pool.size(), 0);
      tile.tried[endpointIndex] = 1;
      ++requeues_;
      shardCounter("mcmcpar_shard_requeues_total",
                   "Tile re-submissions after an endpoint failure.")
          .add();
      if (!submitTile(i)) markResolved(i);  // outcome.error already set
    };

    // Fan out: submit every tile before polling any, so the fleet runs
    // them concurrently; one connection per flight keeps reply streams
    // apart. A deterministic rejection dooms the run, so stop submitting
    // on first fatal error rather than hand the fleet work about to be
    // cancelled.
    for (std::size_t i = 0; i < n; ++i) {
      if (doomed) {
        outcomes[i].error = "not submitted: an earlier tile already failed";
        markResolved(i);
        continue;
      }
      if (!submitTile(i)) markResolved(i);  // sets doomed via the error
    }

    // Poll loop: one STATUS pass over every outstanding flight per tick.
    // Any tile failure dooms the whole run (a missing region cannot be
    // stitched), so the moment one is recorded — or the caller cancels —
    // every outstanding flight gets a CANCEL broadcast; polling continues
    // until the remotes acknowledge with a terminal state, which bounds
    // the wind-down at one remote cancel quantum instead of the tiles'
    // full budgets.
    bool cancelBroadcast = false;
    while (tilesDone < n) {
      if ((doomed || hooks.cancelled()) && !cancelBroadcast) {
        cancelBroadcast = true;
        for (TileState& tile : tiles) {
          if (tile.resolved) continue;
          for (Flight* flight : {&tile.primary, &tile.hedge}) {
            if (!flight->active) continue;
            try {
              (void)flight->client.request(
                  "CANCEL " + std::to_string(flight->jobId));
            } catch (const std::exception&) {
              // Best effort; the poll timeout still bounds the wait.
            }
          }
        }
      }
      for (std::size_t i = 0; i < n && tilesDone < n; ++i) {
        TileState& tile = tiles[i];
        if (tile.resolved) continue;
        if (!tile.primary.active && !tile.hedge.active) {
          // Defensive: requeue paths resolve on failure, so a tile without
          // flights should not exist — never spin on it if one does.
          if (outcomes[i].error.empty()) {
            outcomes[i].error = "tile lost both flights";
          }
          markResolved(i);
          continue;
        }
        if (tile.primary.active) {
          std::string failure;
          const Poll r = pollFlight(i, tile.primary, failure);
          if (r == Poll::Finished) {
            resolveTile(i, /*viaHedge=*/false);
          } else if (r == Poll::Failed) {
            failFlight(i, /*isHedge=*/false, failure);
          }
        }
        if (tile.resolved) continue;
        if (tile.hedge.active) {
          std::string failure;
          const Poll r = pollFlight(i, tile.hedge, failure);
          if (r == Poll::Finished) {
            resolveTile(i, /*viaHedge=*/true);
          } else if (r == Poll::Failed) {
            failFlight(i, /*isHedge=*/true, failure);
          }
        }
        if (tile.resolved) continue;
        // Straggler hedging: when the slowest-looking tile has been
        // outstanding longer than hedge-factor x the reference time and an
        // endpoint sits idle, re-issue it there and take the first result.
        if (!tile.hedged && tile.primary.active && !doomed &&
            !hooks.cancelled()) {
          HedgeInputs inputs;
          inputs.elapsedSeconds = elapsedSeconds(tile.primary);
          inputs.predictedSeconds = predicted[i];
          inputs.observedSeconds = observedMedianSeconds(i);
          inputs.hedgeFactor = hedgeFactor_;
          inputs.idleEndpointAvailable =
              pool.hasIdle(tile.primary.endpoint);
          inputs.alreadyHedged = tile.hedged;
          if (shouldHedge(inputs) && submitHedge(i)) {
            tile.hedged = true;
            ++hedgesIssued_;
            shardCounter("mcmcpar_shard_hedges_issued_total",
                         "Hedge replicas issued for straggling tiles.")
                .add();
          }
        }
      }
      if (tilesDone < n) {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
      }
    }
    endpointsDead_ = pool.deadCount();
    return outcomes;
  }

  // ---- stitch + aggregate ----

  [[nodiscard]] engine::RunReport mergeOutcomes(
      const TileGrid& grid, const std::vector<TileOutcome>& outcomes,
      const par::WallTimer& timer) const {
    const par::WallTimer mergeTimer;
    obs::Span stitchSpan("shard", "stitch");
    stitchSpan.arg("tiles", std::to_string(grid.tiles.size()));

    // Translate crop-local detections into full-image coordinates.
    std::vector<std::vector<model::Circle>> perTile(grid.tiles.size());
    for (std::size_t i = 0; i < grid.tiles.size(); ++i) {
      const partition::IRect& halo = grid.tiles[i].halo;
      perTile[i].reserve(outcomes[i].circles.size());
      for (const model::Circle& c : outcomes[i].circles) {
        perTile[i].push_back(
            model::Circle{c.x + halo.x0, c.y + halo.y0, c.r});
      }
    }
    const StitchResult stitched = stitchCircles(grid, perTile, stitch_);

    ShardReport shardReport;
    shardReport.gridX = grid.gridX;
    shardReport.gridY = grid.gridY;
    shardReport.halo = grid.halo;
    shardReport.adaptive = grid.adaptive;
    shardReport.backend = socketBackend_ ? "socket" : "local";
    shardReport.innerStrategy = innerStrategy_;
    shardReport.haloDropped = stitched.haloDropped;
    shardReport.duplicatesRemoved = stitched.duplicatesRemoved;
    shardReport.requeues = requeues_;
    shardReport.endpointsDead = endpointsDead_;
    shardReport.hedgesIssued = hedgesIssued_;
    shardReport.hedgesWon = hedgesWon_;

    engine::RunReport report;
    report.strategy = name_;
    bool cancelled = false;
    double weightedAcceptance = 0.0;
    for (std::size_t i = 0; i < grid.tiles.size(); ++i) {
      const TileOutcome& outcome = outcomes[i];
      TileRun tile;
      tile.spec = grid.tiles[i];
      tile.label = tileLabel(grid.tiles[i]);
      tile.iterations = outcome.iterations;
      tile.wallSeconds = outcome.wallSeconds;
      tile.acceptanceRate = outcome.acceptanceRate;
      tile.logPosterior = outcome.logPosterior;
      tile.circlesFound = perTile[i].size();
      tile.circlesKept = stitched.keptPerTile[i];
      tile.cancelled = outcome.cancelled;
      tile.error = outcome.error;
      tile.diagnostics = outcome.diagnostics;
      tile.endpoint = outcome.endpoint;
      tile.attempts = std::max(outcome.attempts, 1u);
      tile.hedged = outcome.hedged;
      shardReport.tiles.push_back(std::move(tile));

      report.iterations += outcome.iterations;
      weightedAcceptance += outcome.acceptanceRate *
                            static_cast<double>(outcome.iterations);
      // The inner report's own flag is authoritative: pipeline strategies
      // report iteration counts unrelated to the budget, so inferring
      // cancellation from a shortfall would mis-flag completed runs.
      cancelled = cancelled || outcome.cancelled;
      report.diagnostics.merge(outcome.diagnostics);
      // Like the §IX pipelines: the shard converges when its slowest tile
      // does (local backend only; remote reports carry no trace).
      if (outcome.itersToConverge) {
        report.iterationsToConverge =
            std::max(report.iterationsToConverge.value_or(0),
                     *outcome.itersToConverge);
      }
      shardReport.maxTileSeconds =
          std::max(shardReport.maxTileSeconds, outcome.wallSeconds);
      shardReport.sumTileSeconds += outcome.wallSeconds;
    }

    report.cancelled = cancelled;
    report.acceptanceRate =
        report.iterations == 0
            ? 0.0
            : weightedAcceptance / static_cast<double>(report.iterations);
    report.circles = stitched.circles;
    report.logPosterior = mergedLogPosterior(stitched.circles);
    report.threadsUsed =
        socketBackend_ ? static_cast<unsigned>(endpoints_.size())
                       : par::resolveThreadCount(resources_.threads);

    shardReport.mergeSeconds = mergeTimer.seconds();
    shardSeconds("mcmcpar_shard_stitch_seconds",
                 "Coordinate translation + IoU stitch + report assembly "
                 "per run; _sum is the run's recombination share.")
        .observe(shardReport.mergeSeconds);
    report.wallSeconds = timer.seconds();
    report.extras = std::move(shardReport);
    return report;
  }

  /// Whole-image log posterior of the stitched model, comparable with an
  /// unsharded run of the same problem (tile-local values are not).
  [[nodiscard]] double mergedLogPosterior(
      const std::vector<model::Circle>& merged) const {
    model::ModelState state(*problem_.filtered, prior_, problem_.likelihood);
    for (const model::Circle& circle : merged) state.commitAdd(circle);
    return state.logPosterior();
  }

  std::string name_;
  const engine::StrategyRegistry* registry_;
  engine::ExecResources resources_;
  int gridX_ = 2;
  int gridY_ = 2;
  bool autoTiles_ = false;  ///< tiles=auto: density-driven adaptive grid
  int maxTiles_ = 0;        ///< max-tiles option; 0 = derive from workers
  int minTileSize_ = 32;    ///< min-tile-size option (adaptive grids only)
  double hedgeFactor_ = 0.0;  ///< hedge-factor option; 0 disables hedging
  int halo_ = 16;
  std::uint64_t tileIters_ = 0;
  std::uint64_t minTileIters_ = 2000;
  StitchOptions stitch_;
  double timeoutSeconds_ = 600.0;
  bool socketBackend_ = false;
  std::vector<Endpoint> endpoints_;
  double pingTimeout_ = 5.0;
  double pingInterval_ = 30.0;
  std::size_t requeues_ = 0;       ///< last runSocket's re-submissions
  std::size_t endpointsDead_ = 0;  ///< dead endpoints at end of last run
  std::size_t hedgesIssued_ = 0;   ///< hedge replicas issued last run
  std::size_t hedgesWon_ = 0;      ///< hedge replicas that beat primaries
  std::string innerStrategy_;
  std::vector<std::string> innerOptions_;
  engine::Problem problem_;
  model::PriorParams prior_;
  bool prepared_ = false;
};

}  // namespace

void registerShardedStrategy(engine::StrategyRegistry& registry) {
  const engine::StrategyRegistry* reg = &registry;
  registry.add(
      {"sharded", "§VIII-IX + serving",
       "shard coordinator: tile + halo fan-out, IoU-stitched merge",
       "ShardReport",
       "tiles=KxL|auto max-tiles=N min-tile-size=N halo=N hedge-factor=X "
       "backend=local|socket endpoints=host:port[*W],... "
       "endpoints-file=PATH ping-timeout=X ping-interval=X strategy=NAME "
       "inner.K=V tile-iters=N min-tile-iters=N iou=X timeout=X",
       [reg](const engine::ExecResources& res,
             const engine::OptionMap& opts) {
         return std::make_unique<ShardStrategy>("sharded", reg, res, opts);
       }});
}

}  // namespace mcmcpar::shard
