// The "sharded" strategy: a coordinator that decomposes one Problem image
// into K x L overlapping tiles (shard/tiling), runs each tile as an
// independent job — locally through engine::BatchRunner under the shared
// PoolBudget, or remotely through serve::Client against one or more
// mcmcpar_serve endpoints — and stitches the per-tile results back into one
// RunReport (shard/stitcher), carrying the tile layout and reconciliation
// accounting as a ShardReport. This is the first subsystem that composes
// the serving layer with itself: a served job whose line carries @shard
// becomes a coordinator fanning out to the very queue that runs it.

#include "shard/strategy.hpp"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "engine/batch.hpp"
#include "engine/registry.hpp"
#include "img/pnm_io.hpp"
#include "model/posterior.hpp"
#include "par/concurrency.hpp"
#include "par/virtual_clock.hpp"
#include "partition/prior_estimation.hpp"
#include "serve/socket.hpp"
#include "shard/remote.hpp"
#include "shard/report.hpp"
#include "shard/stitcher.hpp"
#include "shard/tiling.hpp"

namespace mcmcpar::shard {

namespace {

namespace fs = std::filesystem;

struct Endpoint {
  std::string host;
  std::uint16_t port = 0;
};

std::vector<Endpoint> parseEndpoints(const std::string& text) {
  std::vector<Endpoint> endpoints;
  std::size_t begin = 0;
  while (begin <= text.size()) {
    std::size_t end = text.find(',', begin);
    if (end == std::string::npos) end = text.size();
    const std::string token = text.substr(begin, end - begin);
    begin = end + 1;
    if (token.empty()) continue;
    const std::size_t colon = token.rfind(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 >= token.size()) {
      throw engine::EngineError(
          "sharded: endpoints must be host:port[,host:port...], got '" +
          token + "'");
    }
    Endpoint endpoint;
    endpoint.host = token.substr(0, colon);
    const std::string portText = token.substr(colon + 1);
    const engine::OptionMap parsed =
        engine::OptionMap::parse({"port=" + portText});
    const std::uint64_t port = parsed.u64("port", 0);
    if (port == 0 || port > 65535) {
      throw engine::EngineError("sharded: endpoint port out of range in '" +
                                token + "'");
    }
    endpoint.port = static_cast<std::uint16_t>(port);
    endpoints.push_back(std::move(endpoint));
  }
  return endpoints;
}

/// One tile's outcome in coordinator-neutral form, before stitching.
struct TileOutcome {
  std::uint64_t iterations = 0;
  double wallSeconds = 0.0;
  double acceptanceRate = 0.0;
  double logPosterior = 0.0;
  bool cancelled = false;
  std::string error;
  std::vector<model::Circle> circles;  ///< crop-local coordinates
  mcmc::Diagnostics diagnostics;       ///< local backend only
  std::optional<std::uint64_t> itersToConverge;
};

class ShardStrategy final : public engine::Strategy {
 public:
  ShardStrategy(std::string name, const engine::StrategyRegistry* registry,
                const engine::ExecResources& resources,
                const engine::OptionMap& options)
      : name_(std::move(name)), registry_(registry), resources_(resources) {
    try {
      parseTileCount(options.str("tiles", "2x2"), gridX_, gridY_);
    } catch (const std::invalid_argument& e) {
      throw engine::EngineError("strategy '" + name_ + "': " + e.what());
    }
    // Bound before the int cast so halo=3000000000 is rejected right here
    // at admission with a clear message, not at run time on a worker after
    // the cast wrapped negative. No real image axis approaches the bound,
    // and makeTileGrid clamps to the image anyway.
    const std::uint64_t halo = options.u64("halo", 16);
    if (halo > 1000000) {
      throw engine::EngineError("strategy '" + name_ +
                                "': halo must be <= 1000000 pixels, got " +
                                std::to_string(halo));
    }
    halo_ = static_cast<int>(halo);
    tileIters_ = options.u64("tile-iters", 0);
    minTileIters_ = options.u64("min-tile-iters", 2000);
    stitch_.iouThreshold = options.dbl("iou", 0.3);
    timeoutSeconds_ = options.dbl("timeout", 600.0);

    const std::string backend = options.str("backend", "local");
    if (backend == "local") {
      socketBackend_ = false;
    } else if (backend == "socket") {
      socketBackend_ = true;
    } else {
      throw engine::EngineError("strategy '" + name_ +
                                "': backend must be 'local' or 'socket', "
                                "got '" +
                                backend + "'");
    }
    endpoints_ = parseEndpoints(options.str("endpoints", ""));
    if (socketBackend_ && endpoints_.empty()) {
      throw engine::EngineError(
          "strategy '" + name_ +
          "': backend=socket requires endpoints=host:port[,host:port...]");
    }

    innerStrategy_ = options.str("strategy", "serial");
    if (innerStrategy_ == name_) {
      throw engine::EngineError("strategy '" + name_ +
                                "': recursive sharding (strategy=" + name_ +
                                ") is not supported");
    }
    for (const std::string& key : options.keysWithPrefix("inner.")) {
      innerOptions_.push_back(key.substr(6) + "=" + options.str(key, ""));
    }
    options.requireConsumed(name_);

    // Fail a bad inner strategy or option at admission time, not on the
    // first tile: the same early-validation contract the serve layer
    // relies on for descriptive SUBMIT errors.
    try {
      (void)registry_->create(innerStrategy_, engine::ExecResources{},
                              innerOptions_);
    } catch (const engine::EngineError& e) {
      throw engine::EngineError("strategy '" + name_ +
                                "': inner strategy rejected: " + e.what());
    }
  }

  [[nodiscard]] const std::string& name() const noexcept override {
    return name_;
  }

  void prepare(const engine::Problem& problem) override {
    if (problem.filtered == nullptr) {
      throw engine::EngineError("strategy '" + name_ +
                                "': Problem.filtered image is null");
    }
    problem_ = problem;
    prior_ = problem.prior;
    // Whole-image count estimate: only used to score the *merged* model, so
    // the reported logPosterior is comparable with an unsharded run of the
    // same problem. Tiles re-estimate on their own crops.
    if (problem.estimateCount) {
      const auto estimate = partition::estimateCount(
          *problem.filtered, problem.theta, prior_.radiusMean);
      prior_.expectedCount = std::max(estimate.expectedCount, 0.5);
    }
    prepared_ = true;
  }

  [[nodiscard]] engine::RunReport run(
      const engine::RunBudget& budget,
      const engine::RunHooks& hooks) override {
    if (!prepared_) {
      throw engine::EngineError("strategy '" + name_ +
                                "': run() called before prepare()");
    }
    const img::ImageF& image = *problem_.filtered;
    TileGrid grid;
    try {
      grid = makeTileGrid(image.width(), image.height(), gridX_, gridY_,
                          halo_);
    } catch (const std::invalid_argument& e) {
      throw engine::EngineError("strategy '" + name_ + "': " + e.what());
    }

    const std::vector<std::uint64_t> budgets = tileBudgets(grid, budget);
    const par::WallTimer timer;
    const std::vector<TileOutcome> outcomes =
        socketBackend_ ? runSocket(grid, budgets, budget, hooks)
                       : runLocal(grid, budgets, budget, hooks);

    std::size_t failures = 0;
    std::string firstError;
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
      if (outcomes[i].error.empty()) continue;
      ++failures;
      if (firstError.empty()) {
        firstError = tileLabel(grid.tiles[i]) + ": " + outcomes[i].error;
      }
    }
    if (failures > 0) {
      // A missing tile is a missing image region: the merged model would
      // silently under-count, so a failed tile fails the shard run.
      throw engine::EngineError("strategy '" + name_ + "': " +
                                std::to_string(failures) +
                                " tile job(s) failed; first: " + firstError);
    }

    return mergeOutcomes(grid, outcomes, timer);
  }

 private:
  [[nodiscard]] static std::string tileLabel(const TileSpec& tile) {
    return "tile-" + std::to_string(tile.ix) + "x" + std::to_string(tile.iy);
  }

  /// Split the whole-image iteration budget across tiles proportional to
  /// core area (with a floor), so the per-pixel sampling density of the
  /// unsharded run is preserved; tile-iters=N overrides with a flat count.
  [[nodiscard]] std::vector<std::uint64_t> tileBudgets(
      const TileGrid& grid, const engine::RunBudget& budget) const {
    std::vector<std::uint64_t> budgets;
    budgets.reserve(grid.tiles.size());
    const double imageArea =
        static_cast<double>(problem_.filtered->pixelCount());
    for (const TileSpec& tile : grid.tiles) {
      if (tileIters_ != 0) {
        budgets.push_back(tileIters_);
        continue;
      }
      const double share =
          static_cast<double>(tile.core.area()) / imageArea;
      const auto scaled = static_cast<std::uint64_t>(
          std::llround(static_cast<double>(budget.iterations) * share));
      budgets.push_back(std::max(scaled, minTileIters_));
    }
    return budgets;
  }

  [[nodiscard]] engine::Problem tileProblem(const img::ImageF& crop,
                                            const TileSpec& tile) const {
    engine::Problem problem = problem_;
    problem.filtered = &crop;
    // With estimateCount on, each tile re-estimates its own expected count
    // from its crop (eq. 5). With it off, the caller's fixed whole-image
    // count must be scaled to the tile's area share — copying it verbatim
    // would make every tile expect the whole image's circles.
    if (!problem_.estimateCount) {
      const double share =
          static_cast<double>(tile.core.area()) /
          static_cast<double>(problem_.filtered->pixelCount());
      problem.prior.expectedCount =
          std::max(problem_.prior.expectedCount * share, 0.5);
    }
    return problem;
  }

  // ---- local backend: a BatchRunner fan-out under the shared budget ----

  [[nodiscard]] std::vector<TileOutcome> runLocal(
      const TileGrid& grid, const std::vector<std::uint64_t>& budgets,
      const engine::RunBudget& budget, const engine::RunHooks& hooks) const {
    std::vector<img::ImageF> crops;
    crops.reserve(grid.tiles.size());
    for (const TileSpec& tile : grid.tiles) {
      crops.push_back(problem_.filtered->crop(tile.halo.x0, tile.halo.y0,
                                              tile.halo.w, tile.halo.h));
    }

    std::vector<engine::BatchJob> jobs;
    jobs.reserve(grid.tiles.size());
    std::uint64_t totalIters = 0;
    for (std::size_t i = 0; i < grid.tiles.size(); ++i) {
      engine::BatchJob job;
      job.strategy = innerStrategy_;
      job.options = innerOptions_;
      job.problem = tileProblem(crops[i], grid.tiles[i]);
      job.budget = engine::RunBudget{budgets[i], budget.traceInterval};
      job.label = tileLabel(grid.tiles[i]);
      jobs.push_back(std::move(job));
      totalIters += budgets[i];
    }

    engine::BatchOptions options;
    options.resources = resources_;
    options.resources.poolBudget = nullptr;
    options.sharedBudget = resources_.poolBudget;

    // Per-tile progress folded into one monotone whole-shard beat.
    std::mutex progressMutex;
    std::vector<std::uint64_t> done(jobs.size(), 0);
    engine::BatchHooks batchHooks;
    batchHooks.cancelRequested = hooks.cancelRequested;
    if (hooks.onProgress) {
      batchHooks.onJobProgress = [&](std::size_t index,
                                     const engine::RunProgress& p) {
        // Deliver while still holding the lock: emitting after release
        // would let concurrently computed sums arrive out of order, making
        // the whole-shard beat go backwards.
        const std::scoped_lock lock(progressMutex);
        done[index] = std::min(p.done, budgets[index]);
        std::uint64_t sum = 0;
        for (const std::uint64_t d : done) sum += d;
        hooks.progress(sum, totalIters, "shard");
      };
    }

    const engine::BatchResult result =
        engine::BatchRunner(registry_).run(jobs, options, batchHooks);

    std::vector<TileOutcome> outcomes(grid.tiles.size());
    for (std::size_t i = 0; i < grid.tiles.size(); ++i) {
      TileOutcome& outcome = outcomes[i];
      const engine::RunReport& report = result.reports[i];
      outcome.iterations = report.iterations;
      outcome.wallSeconds = report.wallSeconds;
      outcome.acceptanceRate = report.acceptanceRate;
      outcome.logPosterior = report.logPosterior;
      outcome.cancelled = report.cancelled;
      outcome.error = result.batch.errors[i];
      outcome.circles = report.circles;
      outcome.diagnostics = report.diagnostics;
      outcome.itersToConverge = report.iterationsToConverge;
    }
    return outcomes;
  }

  // ---- socket backend: serve::Client fan-out over shared endpoints ----

  [[nodiscard]] std::vector<TileOutcome> runSocket(
      const TileGrid& grid, const std::vector<std::uint64_t>& budgets,
      const engine::RunBudget& budget, const engine::RunHooks& hooks) const {
    // Tile crops travel by file: endpoints are expected to share a
    // filesystem with the coordinator (binary upload is ROADMAP item (d)).
    static std::atomic<std::uint64_t> runCounter{0};
    const fs::path dir =
        fs::temp_directory_path() /
        ("mcmcpar_shard_" + std::to_string(::getpid()) + "_" +
         std::to_string(runCounter.fetch_add(1)));
    // The job grammar is line-oriented and whitespace-tokenized, so a tile
    // path containing whitespace (e.g. a TMPDIR with a space) cannot be
    // submitted; fail with the reason instead of a baffling grammar error.
    const std::string dirText = dir.string();
    if (dirText.find_first_of(" \t\r\n") != std::string::npos) {
      throw engine::EngineError(
          "strategy '" + name_ + "': temp directory '" + dirText +
          "' contains whitespace, which the line-oriented job grammar "
          "cannot carry; set TMPDIR to a whitespace-free path");
    }
    fs::create_directories(dir);
    struct DirCleanup {
      fs::path dir;
      ~DirCleanup() {
        std::error_code ec;
        fs::remove_all(dir, ec);
      }
    } cleanup{dir};

    std::vector<TileOutcome> outcomes(grid.tiles.size());
    std::vector<serve::Client> clients(grid.tiles.size());
    std::vector<std::uint64_t> jobIds(grid.tiles.size(), 0);
    std::vector<char> submitted(grid.tiles.size(), 0);

    // Fan out: submit every tile before waiting on any, so the servers run
    // them concurrently; one connection per tile keeps WAIT streams apart.
    // One failed submit dooms the run, so stop submitting on first error
    // rather than hand the servers work that is about to be cancelled.
    bool doomed = false;
    for (std::size_t i = 0; i < grid.tiles.size(); ++i) {
      if (doomed) {
        outcomes[i].error = "not submitted: an earlier tile already failed";
        continue;
      }
      const TileSpec& tile = grid.tiles[i];
      const fs::path tilePath = dir / (tileLabel(tile) + ".pgm");
      std::string line;
      try {
        img::writePgm(img::toU8(problem_.filtered->crop(
                          tile.halo.x0, tile.halo.y0, tile.halo.w,
                          tile.halo.h)),
                      tilePath.string());
        const Endpoint& endpoint = endpoints_[i % endpoints_.size()];
        // @radius carries the coordinator's prior to the remote server,
        // which would otherwise apply its own --radius default. Remote
        // tiles approximate the local backend: std/min/max re-derive from
        // the mean by the shared serving rule, and the crop is quantised
        // to 8-bit PGM (exact prior transport rides with binary upload,
        // ROADMAP item (d)).
        char radiusText[32];
        std::snprintf(radiusText, sizeof(radiusText), "%.6g",
                      prior_.radiusMean);
        line = tilePath.string() + " " + innerStrategy_ +
               " @iters=" + std::to_string(budgets[i]) + " @seed=" +
               std::to_string(engine::deriveJobSeed(resources_.seed, i)) +
               " @label=" + tileLabel(tile) + " @radius=" + radiusText;
        if (budget.traceInterval != 0) {
          line += " @trace=" + std::to_string(budget.traceInterval);
        }
        for (const std::string& option : innerOptions_) line += " " + option;
        clients[i].connect(endpoint.host, endpoint.port, timeoutSeconds_);
        jobIds[i] = clients[i].submit(line);
        submitted[i] = 1;
      } catch (const std::exception& e) {
        outcomes[i].error = e.what();
        doomed = true;
      }
    }

    // Any tile failure dooms the whole run (a missing region cannot be
    // stitched), so the moment one is recorded, cancel every not-yet-reaped
    // sibling: the reap then returns in one cancel quantum instead of
    // letting doomed tiles burn their full remote budgets.
    const auto cancelSiblingsFrom = [&](std::size_t from) {
      for (std::size_t j = from; j < grid.tiles.size(); ++j) {
        if (submitted[j] == 0) continue;
        try {
          (void)clients[j].request("CANCEL " + std::to_string(jobIds[j]));
        } catch (const std::exception&) {
          // Best effort; the per-tile read timeout still bounds the wait.
        }
      }
    };
    if (doomed) cancelSiblingsFrom(0);  // a submit itself already failed

    std::size_t tilesDone = 0;
    for (std::size_t i = 0; i < grid.tiles.size(); ++i) {
      if (submitted[i] == 0) continue;
      TileOutcome& outcome = outcomes[i];
      const Endpoint& endpoint = endpoints_[i % endpoints_.size()];
      // Cooperative cancellation: before the blocking WAIT, and from its
      // event stream (a WAITing connection processes no further commands,
      // so the mid-wait CANCEL goes over a second connection). This bounds
      // cancellation/shutdown latency at one remote progress quantum
      // instead of the tile's full budget.
      bool cancelSent = false;
      const auto cancelRemote = [&] {
        if (cancelSent || !hooks.cancelled()) return;
        cancelSent = true;
        try {
          serve::Client canceller;
          canceller.connect(endpoint.host, endpoint.port, 10.0);
          (void)canceller.request("CANCEL " + std::to_string(jobIds[i]));
        } catch (const std::exception&) {
          // Best effort; the read timeout still bounds the wait.
        }
      };
      try {
        cancelRemote();
        (void)clients[i].wait(jobIds[i],
                              [&](const std::string&) { cancelRemote(); });
        const remote::TileReportJson remote =
            remote::parseReportJson(clients[i].report(jobIds[i]));
        outcome.iterations = remote.iterations;
        outcome.wallSeconds = remote.wallSeconds;
        outcome.acceptanceRate = remote.acceptance;
        outcome.logPosterior = remote.logPosterior;
        outcome.cancelled = remote.cancelled || remote.state == "cancelled";
        outcome.error =
            remote.state == "failed"
                ? (remote.error.empty() ? "remote job failed" : remote.error)
                : "";
        outcome.circles = remote.circles;
      } catch (const std::exception& e) {
        outcome.error = e.what();
      }
      if (!doomed && !outcome.error.empty()) {
        // First wait/report-phase failure: stop the siblings we have not
        // reaped yet (a remote failure or timeout dooms the run just like
        // a submit failure does).
        doomed = true;
        cancelSiblingsFrom(i + 1);
      }
      ++tilesDone;
      hooks.progress(tilesDone, grid.tiles.size(), "shard");
    }
    return outcomes;
  }

  // ---- stitch + aggregate ----

  [[nodiscard]] engine::RunReport mergeOutcomes(
      const TileGrid& grid, const std::vector<TileOutcome>& outcomes,
      const par::WallTimer& timer) const {
    const par::WallTimer mergeTimer;

    // Translate crop-local detections into full-image coordinates.
    std::vector<std::vector<model::Circle>> perTile(grid.tiles.size());
    for (std::size_t i = 0; i < grid.tiles.size(); ++i) {
      const partition::IRect& halo = grid.tiles[i].halo;
      perTile[i].reserve(outcomes[i].circles.size());
      for (const model::Circle& c : outcomes[i].circles) {
        perTile[i].push_back(
            model::Circle{c.x + halo.x0, c.y + halo.y0, c.r});
      }
    }
    const StitchResult stitched = stitchCircles(grid, perTile, stitch_);

    ShardReport shardReport;
    shardReport.gridX = grid.gridX;
    shardReport.gridY = grid.gridY;
    shardReport.halo = grid.halo;
    shardReport.backend = socketBackend_ ? "socket" : "local";
    shardReport.innerStrategy = innerStrategy_;
    shardReport.haloDropped = stitched.haloDropped;
    shardReport.duplicatesRemoved = stitched.duplicatesRemoved;

    engine::RunReport report;
    report.strategy = name_;
    bool cancelled = false;
    double weightedAcceptance = 0.0;
    for (std::size_t i = 0; i < grid.tiles.size(); ++i) {
      const TileOutcome& outcome = outcomes[i];
      TileRun tile;
      tile.spec = grid.tiles[i];
      tile.label = tileLabel(grid.tiles[i]);
      tile.iterations = outcome.iterations;
      tile.wallSeconds = outcome.wallSeconds;
      tile.acceptanceRate = outcome.acceptanceRate;
      tile.logPosterior = outcome.logPosterior;
      tile.circlesFound = perTile[i].size();
      tile.circlesKept = stitched.keptPerTile[i];
      tile.cancelled = outcome.cancelled;
      tile.error = outcome.error;
      tile.diagnostics = outcome.diagnostics;
      shardReport.tiles.push_back(std::move(tile));

      report.iterations += outcome.iterations;
      weightedAcceptance += outcome.acceptanceRate *
                            static_cast<double>(outcome.iterations);
      // The inner report's own flag is authoritative: pipeline strategies
      // report iteration counts unrelated to the budget, so inferring
      // cancellation from a shortfall would mis-flag completed runs.
      cancelled = cancelled || outcome.cancelled;
      report.diagnostics.merge(outcome.diagnostics);
      // Like the §IX pipelines: the shard converges when its slowest tile
      // does (local backend only; remote reports carry no trace).
      if (outcome.itersToConverge) {
        report.iterationsToConverge =
            std::max(report.iterationsToConverge.value_or(0),
                     *outcome.itersToConverge);
      }
      shardReport.maxTileSeconds =
          std::max(shardReport.maxTileSeconds, outcome.wallSeconds);
      shardReport.sumTileSeconds += outcome.wallSeconds;
    }

    report.cancelled = cancelled;
    report.acceptanceRate =
        report.iterations == 0
            ? 0.0
            : weightedAcceptance / static_cast<double>(report.iterations);
    report.circles = stitched.circles;
    report.logPosterior = mergedLogPosterior(stitched.circles);
    report.threadsUsed =
        socketBackend_ ? static_cast<unsigned>(endpoints_.size())
                       : par::resolveThreadCount(resources_.threads);

    shardReport.mergeSeconds = mergeTimer.seconds();
    report.wallSeconds = timer.seconds();
    report.extras = std::move(shardReport);
    return report;
  }

  /// Whole-image log posterior of the stitched model, comparable with an
  /// unsharded run of the same problem (tile-local values are not).
  [[nodiscard]] double mergedLogPosterior(
      const std::vector<model::Circle>& merged) const {
    model::ModelState state(*problem_.filtered, prior_, problem_.likelihood);
    for (const model::Circle& circle : merged) state.commitAdd(circle);
    return state.logPosterior();
  }

  std::string name_;
  const engine::StrategyRegistry* registry_;
  engine::ExecResources resources_;
  int gridX_ = 2;
  int gridY_ = 2;
  int halo_ = 16;
  std::uint64_t tileIters_ = 0;
  std::uint64_t minTileIters_ = 2000;
  StitchOptions stitch_;
  double timeoutSeconds_ = 600.0;
  bool socketBackend_ = false;
  std::vector<Endpoint> endpoints_;
  std::string innerStrategy_;
  std::vector<std::string> innerOptions_;
  engine::Problem problem_;
  model::PriorParams prior_;
  bool prepared_ = false;
};

}  // namespace

void registerShardedStrategy(engine::StrategyRegistry& registry) {
  const engine::StrategyRegistry* reg = &registry;
  registry.add(
      {"sharded", "§VIII-IX + serving",
       "shard coordinator: tile + halo fan-out, IoU-stitched merge",
       "ShardReport",
       "tiles=KxL halo=N backend=local|socket endpoints=host:port,... "
       "strategy=NAME inner.K=V tile-iters=N min-tile-iters=N iou=X "
       "timeout=X",
       [reg](const engine::ExecResources& res,
             const engine::OptionMap& opts) {
         return std::make_unique<ShardStrategy>("sharded", reg, res, opts);
       }});
}

}  // namespace mcmcpar::shard
