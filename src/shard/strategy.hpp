#pragma once

namespace mcmcpar::engine {
class StrategyRegistry;
}  // namespace mcmcpar::engine

namespace mcmcpar::shard {

/// Register the "sharded" strategy — the sharding coordinator that splits
/// one image into overlapping tiles, fans them out as independent jobs
/// (locally through engine::BatchRunner or remotely through serve::Client)
/// and stitches the per-tile results back into one RunReport carrying a
/// ShardReport. Called by StrategyRegistry::builtin(); also usable to
/// extend a custom registry.
///
/// Options (all `key=value`):
///   tiles=KxL        tile grid (default 2x2)
///   halo=N           overlap margin in pixels (default 16)
///   backend=local|socket          (default local)
///   endpoints=host:port[*weight][,...]   socket backend fleet. Tiles are
///                    placed weighted-least-loaded on endpoints that
///                    answered the startup PING check; a tile whose
///                    endpoint dies mid-run is requeued onto a surviving
///                    host (safe: the Stitcher is deterministic). Tile
///                    crops travel as float32 binary frames (UPLOAD) and
///                    the full radius prior + fixed count are forwarded
///                    exactly, so no filesystem is shared and remote tiles
///                    reproduce local-backend tiles bit-for-bit; custom
///                    likelihood/moves/theta stay local-backend-only
///                    (docs/ARCHITECTURE.md "Socket-backend fidelity")
///   endpoints-file=PATH   fleet from a file (one `host:port [weight]` per
///                    line, `#` comments), merged after endpoints=
///   ping-timeout=X   health-probe PING timeout, seconds (default 5)
///   ping-interval=X  min seconds between re-probes of an endpoint
///                    (default 30)
///   strategy=NAME    inner per-tile strategy (default serial; "sharded"
///                    itself is rejected — no recursive sharding)
///   inner.K=V        forwarded to the inner strategy as K=V
///   tile-iters=N     per-tile budget override (default: the run budget
///                    split across tiles proportional to core area)
///   min-tile-iters=N floor of the proportional split (default 2000)
///   iou=X            stitcher duplicate threshold (default 0.3)
///   timeout=X        socket read timeout per reply, seconds (default 600)
void registerShardedStrategy(engine::StrategyRegistry& registry);

}  // namespace mcmcpar::shard
