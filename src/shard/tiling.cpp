#include "shard/tiling.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <stdexcept>

#include "analysis/matching.hpp"

namespace mcmcpar::shard {

namespace {

/// Grow `core` by `halo` (already clamped) and clip to the image — the one
/// halo rule shared by the fixed and adaptive grids. long long keeps an
/// untrusted near-INT_MAX halo from overflowing the edge arithmetic.
TileSpec makeTile(const partition::IRect& core, int halo, int width,
                  int height, int ix, int iy) {
  TileSpec tile;
  tile.ix = ix;
  tile.iy = iy;
  tile.core = core;
  const long long x1 = core.x0 + core.w;
  const long long y1 = core.y0 + core.h;
  const int hx0 = std::max(0, core.x0 - halo);
  const int hy0 = std::max(0, core.y0 - halo);
  const int hx1 = static_cast<int>(std::min<long long>(width, x1 + halo));
  const int hy1 = static_cast<int>(std::min<long long>(height, y1 + halo));
  tile.halo = partition::IRect{hx0, hy0, hx1 - hx0, hy1 - hy0};
  return tile;
}

}  // namespace

TileGrid makeTileGrid(int width, int height, int gx, int gy, int halo) {
  if (width <= 0 || height <= 0) {
    throw std::invalid_argument("makeTileGrid: empty image (" +
                                std::to_string(width) + "x" +
                                std::to_string(height) + ")");
  }
  if (gx <= 0 || gy <= 0) {
    throw std::invalid_argument("makeTileGrid: tile counts must be >= 1, got " +
                                std::to_string(gx) + "x" + std::to_string(gy));
  }
  if (halo < 0) {
    throw std::invalid_argument("makeTileGrid: halo must be >= 0, got " +
                                std::to_string(halo));
  }
  // More tiles than pixels along an axis would produce empty cores.
  if (gx > width || gy > height) {
    throw std::invalid_argument(
        "makeTileGrid: " + std::to_string(gx) + "x" + std::to_string(gy) +
        " tiles do not fit a " + std::to_string(width) + "x" +
        std::to_string(height) + " image");
  }

  TileGrid grid;
  grid.gridX = gx;
  grid.gridY = gy;
  // Anything past the image just clips away, so cap the halo before the
  // edge arithmetic: an untrusted @halo near INT_MAX must not overflow
  // `core.x0 + core.w + halo` (the same bug class as over-range @shard
  // counts, which parseTileCount rejects).
  halo = std::min(halo, std::max(width, height));
  grid.halo = halo;
  const std::vector<partition::IRect> cores =
      partition::tileImage(width, height, gx, gy);
  grid.tiles.reserve(cores.size());
  for (int iy = 0; iy < gy; ++iy) {
    for (int ix = 0; ix < gx; ++ix) {
      grid.tiles.push_back(makeTile(cores[static_cast<std::size_t>(iy) * gx +
                                          ix],
                                    halo, width, height, ix, iy));
    }
  }
  return grid;
}

void parseTileCount(const std::string& text, int& gx, int& gy) {
  const auto fail = [&text] {
    throw std::invalid_argument("expected tiles=KxL (e.g. 2x2), got '" + text +
                                "'");
  };
  const std::size_t x = text.find('x');
  if (x == std::string::npos || x == 0 || x + 1 >= text.size()) fail();
  const std::string left = text.substr(0, x);
  const std::string right = text.substr(x + 1);
  for (const char c : left) {
    if (std::isdigit(static_cast<unsigned char>(c)) == 0) fail();
  }
  for (const char c : right) {
    if (std::isdigit(static_cast<unsigned char>(c)) == 0) fail();
  }
  // stoi throws std::out_of_range (not invalid_argument) past INT_MAX, and
  // no real grid needs five digits — reject early so callers only ever see
  // invalid_argument.
  if (left.size() > 4 || right.size() > 4) fail();
  gx = std::stoi(left);
  gy = std::stoi(right);
  if (gx < 1 || gy < 1) fail();
}

double discIoU(const model::Circle& a, const model::Circle& b) noexcept {
  return analysis::circleIoU(a, b);
}

DensityMap scanDensity(const img::ImageF& image, int blockSize) {
  if (image.width() <= 0 || image.height() <= 0) {
    throw std::invalid_argument("scanDensity: empty image");
  }
  if (blockSize <= 0) {
    throw std::invalid_argument("scanDensity: block size must be >= 1, got " +
                                std::to_string(blockSize));
  }
  DensityMap density;
  density.width = image.width();
  density.height = image.height();
  density.blockSize = blockSize;
  density.blocksX = (image.width() + blockSize - 1) / blockSize;
  density.blocksY = (image.height() + blockSize - 1) / blockSize;
  density.activity.assign(
      static_cast<std::size_t>(density.blocksX) * density.blocksY, 0.0);

  double globalSum = 0.0;
  for (int y = 0; y < image.height(); ++y) {
    const float* row = image.row(y);
    for (int x = 0; x < image.width(); ++x) globalSum += row[x];
  }
  const double globalMean =
      globalSum / static_cast<double>(image.pixelCount());

  // Per-block mean brightness above the global mean: artifacts are bright
  // discs on a darker background, so excess brightness localises the work.
  std::vector<double> excess(density.activity.size(), 0.0);
  double maxExcess = 0.0;
  for (int by = 0; by < density.blocksY; ++by) {
    for (int bx = 0; bx < density.blocksX; ++bx) {
      const int x0 = bx * blockSize;
      const int y0 = by * blockSize;
      const int x1 = std::min(x0 + blockSize, image.width());
      const int y1 = std::min(y0 + blockSize, image.height());
      double sum = 0.0;
      for (int y = y0; y < y1; ++y) {
        const float* row = image.row(y);
        for (int x = x0; x < x1; ++x) sum += row[x];
      }
      const double mean =
          sum / static_cast<double>((x1 - x0) * (y1 - y0));
      const double value = std::max(0.0, mean - globalMean);
      excess[static_cast<std::size_t>(by) * density.blocksX + bx] = value;
      maxExcess = std::max(maxExcess, value);
    }
  }
  // Normalise to [0, 1] by the brightest block; a flat image (noise only,
  // no contrast) has no preferred region and scans as all-zero activity.
  if (maxExcess > 1e-12) {
    for (std::size_t i = 0; i < excess.size(); ++i) {
      density.activity[i] = excess[i] / maxExcess;
    }
  }
  return density;
}

namespace {

/// Overlap area of `region` with block (bx, by), in pixels.
double blockOverlap(const DensityMap& density, const partition::IRect& region,
                    int bx, int by) {
  const int x0 = std::max(region.x0, bx * density.blockSize);
  const int y0 = std::max(region.y0, by * density.blockSize);
  const int x1 = std::min({region.x0 + region.w,
                           (bx + 1) * density.blockSize, density.width});
  const int y1 = std::min({region.y0 + region.h,
                           (by + 1) * density.blockSize, density.height});
  if (x1 <= x0 || y1 <= y0) return 0.0;
  return static_cast<double>(x1 - x0) * static_cast<double>(y1 - y0);
}

/// Shared accumulation of regionWorkload / regionMeanActivity: the
/// activity-weighted integral and the covered area.
void accumulateRegion(const DensityMap& density,
                      const partition::IRect& region, double& area,
                      double& weightedActivity) {
  area = 0.0;
  weightedActivity = 0.0;
  if (region.w <= 0 || region.h <= 0) return;
  const int bx0 = std::max(0, region.x0 / density.blockSize);
  const int by0 = std::max(0, region.y0 / density.blockSize);
  const int bx1 = std::min(density.blocksX - 1,
                           (region.x0 + region.w - 1) / density.blockSize);
  const int by1 = std::min(density.blocksY - 1,
                           (region.y0 + region.h - 1) / density.blockSize);
  for (int by = by0; by <= by1; ++by) {
    for (int bx = bx0; bx <= bx1; ++bx) {
      const double overlap = blockOverlap(density, region, bx, by);
      area += overlap;
      weightedActivity += overlap * density.at(bx, by);
    }
  }
}

}  // namespace

double regionWorkload(const DensityMap& density,
                      const partition::IRect& region, double densityWeight) {
  double area = 0.0;
  double weightedActivity = 0.0;
  accumulateRegion(density, region, area, weightedActivity);
  return area + densityWeight * weightedActivity;
}

double regionMeanActivity(const DensityMap& density,
                          const partition::IRect& region) {
  double area = 0.0;
  double weightedActivity = 0.0;
  accumulateRegion(density, region, area, weightedActivity);
  return area > 0.0 ? weightedActivity / area : 0.0;
}

TileGrid makeAdaptiveTileGrid(const DensityMap& density, int maxTiles,
                              int halo, int minTileSize,
                              double densityWeight) {
  if (density.width <= 0 || density.height <= 0 ||
      density.activity.empty()) {
    throw std::invalid_argument("makeAdaptiveTileGrid: empty density map");
  }
  if (maxTiles < 1) {
    throw std::invalid_argument(
        "makeAdaptiveTileGrid: max tiles must be >= 1, got " +
        std::to_string(maxTiles));
  }
  if (minTileSize < 1) {
    throw std::invalid_argument(
        "makeAdaptiveTileGrid: min tile size must be >= 1, got " +
        std::to_string(minTileSize));
  }
  if (halo < 0) {
    throw std::invalid_argument("makeAdaptiveTileGrid: halo must be >= 0, "
                                "got " +
                                std::to_string(halo));
  }
  halo = std::min(halo, std::max(density.width, density.height));

  // Candidate cuts along one axis: block boundaries inside the admissible
  // band (both sides >= minTileSize), plus the band edges so a region
  // narrower than two blocks can still split. Returns the cut with the
  // best workload balance, or 0 when the axis cannot split.
  const auto bestCut = [&](const partition::IRect& region, bool vertical) {
    const int extent = vertical ? region.w : region.h;
    if (extent < 2 * minTileSize) return 0;
    const int lo = (vertical ? region.x0 : region.y0) + minTileSize;
    const int hi = (vertical ? region.x0 + region.w : region.y0 + region.h) -
                   minTileSize;
    std::vector<int> cuts;
    cuts.push_back(lo);
    if (hi != lo) cuts.push_back(hi);
    const int firstBlock = lo / density.blockSize + 1;
    for (int b = firstBlock; b * density.blockSize < hi; ++b) {
      const int cut = b * density.blockSize;
      if (cut > lo && cut < hi) cuts.push_back(cut);
    }
    int best = 0;
    double bestImbalance = 0.0;
    for (const int cut : cuts) {
      partition::IRect left = region;
      partition::IRect right = region;
      if (vertical) {
        left.w = cut - region.x0;
        right.x0 = cut;
        right.w = region.x0 + region.w - cut;
      } else {
        left.h = cut - region.y0;
        right.y0 = cut;
        right.h = region.y0 + region.h - cut;
      }
      const double imbalance =
          std::abs(regionWorkload(density, left, densityWeight) -
                   regionWorkload(density, right, densityWeight));
      if (best == 0 || imbalance < bestImbalance) {
        best = cut;
        bestImbalance = imbalance;
      }
    }
    return best;
  };

  std::vector<partition::IRect> regions{
      partition::IRect{0, 0, density.width, density.height}};
  while (static_cast<int>(regions.size()) < maxTiles) {
    // Split the heaviest splittable region; equal weights break to the
    // earlier region so the decomposition is deterministic.
    std::size_t heaviest = regions.size();
    double heaviestWork = 0.0;
    for (std::size_t i = 0; i < regions.size(); ++i) {
      const partition::IRect& region = regions[i];
      if (region.w < 2 * minTileSize && region.h < 2 * minTileSize) continue;
      const double work = regionWorkload(density, region, densityWeight);
      if (heaviest == regions.size() || work > heaviestWork) {
        heaviest = i;
        heaviestWork = work;
      }
    }
    if (heaviest == regions.size()) break;  // nothing splittable left

    partition::IRect region = regions[heaviest];
    // Prefer cutting across the longer axis (squarer children keep halo
    // overhead low); fall back to the other axis when it cannot split.
    const bool preferVertical = region.w >= region.h;
    int cut = bestCut(region, preferVertical);
    bool vertical = preferVertical;
    if (cut == 0) {
      cut = bestCut(region, !preferVertical);
      vertical = !preferVertical;
    }
    if (cut == 0) break;  // defensive: the heaviest check said splittable

    partition::IRect left = region;
    partition::IRect right = region;
    if (vertical) {
      left.w = cut - region.x0;
      right.x0 = cut;
      right.w = region.x0 + region.w - cut;
    } else {
      left.h = cut - region.y0;
      right.y0 = cut;
      right.h = region.y0 + region.h - cut;
    }
    regions[heaviest] = left;
    regions.push_back(right);
  }

  // Deterministic tile order regardless of split history.
  std::sort(regions.begin(), regions.end(),
            [](const partition::IRect& a, const partition::IRect& b) {
              return a.y0 != b.y0 ? a.y0 < b.y0 : a.x0 < b.x0;
            });

  TileGrid grid;
  grid.gridX = static_cast<int>(regions.size());
  grid.gridY = 1;
  grid.halo = halo;
  grid.adaptive = true;
  grid.tiles.reserve(regions.size());
  for (std::size_t i = 0; i < regions.size(); ++i) {
    grid.tiles.push_back(makeTile(regions[i], halo, density.width,
                                  density.height, static_cast<int>(i), 0));
  }
  return grid;
}

}  // namespace mcmcpar::shard
