#include "shard/tiling.hpp"

#include <algorithm>
#include <cctype>
#include <stdexcept>

#include "analysis/matching.hpp"

namespace mcmcpar::shard {

TileGrid makeTileGrid(int width, int height, int gx, int gy, int halo) {
  if (width <= 0 || height <= 0) {
    throw std::invalid_argument("makeTileGrid: empty image (" +
                                std::to_string(width) + "x" +
                                std::to_string(height) + ")");
  }
  if (gx <= 0 || gy <= 0) {
    throw std::invalid_argument("makeTileGrid: tile counts must be >= 1, got " +
                                std::to_string(gx) + "x" + std::to_string(gy));
  }
  if (halo < 0) {
    throw std::invalid_argument("makeTileGrid: halo must be >= 0, got " +
                                std::to_string(halo));
  }
  // More tiles than pixels along an axis would produce empty cores.
  if (gx > width || gy > height) {
    throw std::invalid_argument(
        "makeTileGrid: " + std::to_string(gx) + "x" + std::to_string(gy) +
        " tiles do not fit a " + std::to_string(width) + "x" +
        std::to_string(height) + " image");
  }

  TileGrid grid;
  grid.gridX = gx;
  grid.gridY = gy;
  // Anything past the image just clips away, so cap the halo before the
  // edge arithmetic: an untrusted @halo near INT_MAX must not overflow
  // `core.x0 + core.w + halo` (the same bug class as over-range @shard
  // counts, which parseTileCount rejects).
  halo = std::min(halo, std::max(width, height));
  grid.halo = halo;
  const std::vector<partition::IRect> cores =
      partition::tileImage(width, height, gx, gy);
  grid.tiles.reserve(cores.size());
  for (int iy = 0; iy < gy; ++iy) {
    for (int ix = 0; ix < gx; ++ix) {
      TileSpec tile;
      tile.ix = ix;
      tile.iy = iy;
      tile.core = cores[static_cast<std::size_t>(iy) * gx + ix];
      const long long x1 = tile.core.x0 + tile.core.w;
      const long long y1 = tile.core.y0 + tile.core.h;
      const int hx0 = std::max(0, tile.core.x0 - halo);
      const int hy0 = std::max(0, tile.core.y0 - halo);
      const int hx1 =
          static_cast<int>(std::min<long long>(width, x1 + halo));
      const int hy1 =
          static_cast<int>(std::min<long long>(height, y1 + halo));
      tile.halo = partition::IRect{hx0, hy0, hx1 - hx0, hy1 - hy0};
      grid.tiles.push_back(tile);
    }
  }
  return grid;
}

void parseTileCount(const std::string& text, int& gx, int& gy) {
  const auto fail = [&text] {
    throw std::invalid_argument("expected tiles=KxL (e.g. 2x2), got '" + text +
                                "'");
  };
  const std::size_t x = text.find('x');
  if (x == std::string::npos || x == 0 || x + 1 >= text.size()) fail();
  const std::string left = text.substr(0, x);
  const std::string right = text.substr(x + 1);
  for (const char c : left) {
    if (std::isdigit(static_cast<unsigned char>(c)) == 0) fail();
  }
  for (const char c : right) {
    if (std::isdigit(static_cast<unsigned char>(c)) == 0) fail();
  }
  // stoi throws std::out_of_range (not invalid_argument) past INT_MAX, and
  // no real grid needs five digits — reject early so callers only ever see
  // invalid_argument.
  if (left.size() > 4 || right.size() > 4) fail();
  gx = std::stoi(left);
  gy = std::stoi(right);
  if (gx < 1 || gy < 1) fail();
}

double discIoU(const model::Circle& a, const model::Circle& b) noexcept {
  return analysis::circleIoU(a, b);
}

}  // namespace mcmcpar::shard
