#pragma once

#include <string>
#include <vector>

#include "img/image.hpp"
#include "model/circle.hpp"
#include "partition/grid.hpp"

namespace mcmcpar::shard {

/// One tile of a sharded image: the `core` rectangles of a grid tile the
/// image exactly (disjoint, half-open), while `halo` is the core grown by
/// the halo margin and clipped to the image — the pixels a tile's sampler
/// actually sees, so circles near a cut line keep their full likelihood
/// support. Ownership is by core: a detected circle belongs to the single
/// tile whose core contains its centre.
struct TileSpec {
  partition::IRect core;  ///< owned region (disjoint across tiles)
  partition::IRect halo;  ///< core + margin, clipped (the cropped image)
  int ix = 0;             ///< column in the tile grid
  int iy = 0;             ///< row in the tile grid

  /// Centre-ownership test against the core, in full-image coordinates.
  [[nodiscard]] bool ownsCentre(const model::Circle& c) const noexcept {
    return core.containsPoint(c.x, c.y);
  }

  friend bool operator==(const TileSpec&, const TileSpec&) = default;
};

/// Shape of a shard decomposition: a gx x gy grid with `halo` pixels of
/// overlap margin on every interior edge. An *adaptive* grid (tiles=auto)
/// is an irregular KD-split decomposition carried as a flat tile list
/// (gridX = tile count, gridY = 1, ix = index): the stitcher keys only on
/// the cores, never on row/column regularity, so both shapes flow through
/// the same merge path.
struct TileGrid {
  int gridX = 1;
  int gridY = 1;
  int halo = 0;
  bool adaptive = false;        ///< built by makeAdaptiveTileGrid
  std::vector<TileSpec> tiles;  ///< row-major, iy * gridX + ix
};

/// Decompose a width x height image into a gx x gy grid of near-equal core
/// rectangles (partition::tileImage), each with a halo of `halo` pixels
/// clipped to the image. Throws std::invalid_argument on an empty image,
/// non-positive grid, or negative halo.
[[nodiscard]] TileGrid makeTileGrid(int width, int height, int gx, int gy,
                                    int halo);

/// Parse a "KxL" tile-count token ("2x2", "4x1"); throws
/// std::invalid_argument on anything else (including zero counts).
void parseTileCount(const std::string& text, int& gx, int& gy);

/// Coarse content-density scan feeding the §IX cost model: per-block mean
/// activity in [0, 1], where activity is brightness above the global image
/// mean (artifacts are bright discs on a darker background) normalised by
/// the brightest block. Blocks are blockSize x blockSize, edge blocks
/// clipped. Cheap by construction — one pass over the pixels — because it
/// runs at admission time on every adaptive shard run.
struct DensityMap {
  int width = 0;   ///< image width the scan covered
  int height = 0;  ///< image height the scan covered
  int blockSize = 16;
  int blocksX = 0;
  int blocksY = 0;
  std::vector<double> activity;  ///< row-major by * blocksX + bx, in [0, 1]

  [[nodiscard]] double at(int bx, int by) const {
    return activity[static_cast<std::size_t>(by) * blocksX + bx];
  }
};

/// Scan `image` into a DensityMap. Throws std::invalid_argument on an empty
/// image or non-positive block size.
[[nodiscard]] DensityMap scanDensity(const img::ImageF& image,
                                     int blockSize = 16);

/// Predicted relative workload of `region`: the integral over its pixels of
/// (1 + densityWeight * activity), i.e. area weighted up where content is.
/// Dimensionless — callers turn it into seconds via the cost calibration.
[[nodiscard]] double regionWorkload(const DensityMap& density,
                                    const partition::IRect& region,
                                    double densityWeight);

/// Mean activity of `region` in [0, 1] (area-weighted over blocks).
[[nodiscard]] double regionMeanActivity(const DensityMap& density,
                                        const partition::IRect& region);

/// The tiles=auto decomposition: recursively split the region with the
/// largest predicted workload at the cut that best balances the two halves
/// (along its longer splittable axis), until `maxTiles` regions exist or
/// nothing splittable remains. Every core keeps both sides >= minTileSize
/// where the image allows it; cores stay disjoint and cover the image, and
/// halos clip to the image exactly as in makeTileGrid. Throws
/// std::invalid_argument on an empty density map or non-positive
/// maxTiles/minTileSize or negative halo.
[[nodiscard]] TileGrid makeAdaptiveTileGrid(const DensityMap& density,
                                            int maxTiles, int halo,
                                            int minTileSize = 32,
                                            double densityWeight = 4.0);

/// Intersection-over-union of two discs (0 when disjoint, 1 when equal).
[[nodiscard]] double discIoU(const model::Circle& a,
                             const model::Circle& b) noexcept;

}  // namespace mcmcpar::shard
