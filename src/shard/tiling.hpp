#pragma once

#include <string>
#include <vector>

#include "model/circle.hpp"
#include "partition/grid.hpp"

namespace mcmcpar::shard {

/// One tile of a sharded image: the `core` rectangles of a grid tile the
/// image exactly (disjoint, half-open), while `halo` is the core grown by
/// the halo margin and clipped to the image — the pixels a tile's sampler
/// actually sees, so circles near a cut line keep their full likelihood
/// support. Ownership is by core: a detected circle belongs to the single
/// tile whose core contains its centre.
struct TileSpec {
  partition::IRect core;  ///< owned region (disjoint across tiles)
  partition::IRect halo;  ///< core + margin, clipped (the cropped image)
  int ix = 0;             ///< column in the tile grid
  int iy = 0;             ///< row in the tile grid

  /// Centre-ownership test against the core, in full-image coordinates.
  [[nodiscard]] bool ownsCentre(const model::Circle& c) const noexcept {
    return core.containsPoint(c.x, c.y);
  }

  friend bool operator==(const TileSpec&, const TileSpec&) = default;
};

/// Shape of a shard decomposition: a gx x gy grid with `halo` pixels of
/// overlap margin on every interior edge.
struct TileGrid {
  int gridX = 1;
  int gridY = 1;
  int halo = 0;
  std::vector<TileSpec> tiles;  ///< row-major, iy * gridX + ix
};

/// Decompose a width x height image into a gx x gy grid of near-equal core
/// rectangles (partition::tileImage), each with a halo of `halo` pixels
/// clipped to the image. Throws std::invalid_argument on an empty image,
/// non-positive grid, or negative halo.
[[nodiscard]] TileGrid makeTileGrid(int width, int height, int gx, int gy,
                                    int halo);

/// Parse a "KxL" tile-count token ("2x2", "4x1"); throws
/// std::invalid_argument on anything else (including zero counts).
void parseTileCount(const std::string& text, int& gx, int& gy);

/// Intersection-over-union of two discs (0 when disjoint, 1 when equal).
[[nodiscard]] double discIoU(const model::Circle& a,
                             const model::Circle& b) noexcept;

}  // namespace mcmcpar::shard
