#include "spec/speculative.hpp"

#include <cmath>
#include <vector>

namespace mcmcpar::spec {

SpeculativeExecutor::SpeculativeExecutor(model::ModelState& state,
                                         const mcmc::MoveRegistry& registry,
                                         unsigned lanes, std::uint64_t seed,
                                         par::ThreadPool* pool)
    : state_(state),
      registry_(registry),
      lanes_(std::max(lanes, 1u)),
      master_(seed),
      pool_(pool) {}

std::uint64_t SpeculativeExecutor::round(MovePhase phase,
                                         const mcmc::SelectionContext& ctx) {
  struct Lane {
    const mcmc::Move* move = nullptr;
    mcmc::PendingMove pending;
    rng::Stream stream{0};
  };
  std::vector<Lane> lane(lanes_);

  // Derive per-lane streams from (round, lane) so the trajectory does not
  // depend on evaluation order.
  for (unsigned k = 0; k < lanes_; ++k) {
    lane[k].stream =
        master_.derive(roundCounter_ * static_cast<std::uint64_t>(lanes_) + k);
  }
  ++roundCounter_;

  const auto evaluate = [&](std::size_t k) {
    Lane& l = lane[k];
    switch (phase) {
      case MovePhase::Any:
        l.move = &registry_.sampleAny(l.stream);
        break;
      case MovePhase::GlobalOnly:
        l.move = &registry_.sampleGlobal(l.stream);
        break;
      case MovePhase::LocalOnly:
        l.move = &registry_.sampleLocal(l.stream);
        break;
    }
    l.pending = l.move->propose(state_, ctx, l.stream);
  };

  if (pool_ != nullptr && lanes_ > 1) {
    pool_->parallelFor(lanes_, evaluate);
  } else {
    for (unsigned k = 0; k < lanes_; ++k) evaluate(k);
  }

  // Sequential commit scan: the first accepted lane ends the round.
  std::uint64_t consumed = lanes_;
  bool anyAccepted = false;
  for (unsigned k = 0; k < lanes_; ++k) {
    const bool accepted =
        mcmc::acceptAndCommit(state_, lane[k].pending, lane[k].stream);
    diagnostics_.record(lane[k].move->name(), accepted);
    if (accepted) {
      consumed = k + 1;
      anyAccepted = true;
      break;
    }
  }

  ++stats_.rounds;
  stats_.logicalIterations += consumed;
  stats_.proposalsEvaluated += lanes_;
  if (anyAccepted) ++stats_.roundsWithAcceptance;
  return consumed;
}

std::uint64_t SpeculativeExecutor::run(std::uint64_t iterations,
                                       MovePhase phase,
                                       const mcmc::RunHooks& hooks) {
  const std::uint64_t start = stats_.logicalIterations;
  const std::uint64_t target = start + iterations;
  while (stats_.logicalIterations < target) {
    if (hooks.cancelled()) break;
    round(phase);
    hooks.progress(stats_.logicalIterations - start, iterations,
                   "speculative");
  }
  return stats_.logicalIterations - start;
}

double expectedConsumedPerRound(double rejectionProbability,
                                unsigned lanes) noexcept {
  const double p = rejectionProbability;
  const unsigned n = std::max(lanes, 1u);
  if (p <= 0.0) return 1.0;
  if (p >= 1.0) return static_cast<double>(n);
  return (1.0 - std::pow(p, static_cast<double>(n))) / (1.0 - p);
}

}  // namespace mcmcpar::spec
