#pragma once

#include <cstdint>

#include "mcmc/diagnostics.hpp"
#include "mcmc/move_registry.hpp"
#include "mcmc/run_hooks.hpp"
#include "mcmc/sampler.hpp"
#include "par/thread_pool.hpp"

namespace mcmcpar::spec {

/// Which move class a speculative round draws from. Periodic partitioning
/// combines speculation with its phases: GlobalOnly during Mg phases
/// (eq. 3) and LocalOnly inside partitions (eq. 4).
enum class MovePhase : std::uint8_t { Any, GlobalOnly, LocalOnly };

/// Counters for speedup accounting. With rejection probability p and n
/// lanes, the expected chain iterations consumed per round is
/// (1 - p^n) / (1 - p), which is exactly the runtime division in eqs. 3-4:
/// each round costs one iteration of wall time on an n-way SMP.
struct SpeculativeStats {
  std::uint64_t rounds = 0;
  std::uint64_t logicalIterations = 0;   ///< chain iterations advanced
  std::uint64_t proposalsEvaluated = 0;  ///< includes discarded lanes
  std::uint64_t roundsWithAcceptance = 0;

  [[nodiscard]] double meanConsumedPerRound() const noexcept {
    return rounds == 0 ? 0.0
                       : static_cast<double>(logicalIterations) /
                             static_cast<double>(rounds);
  }
  /// Fraction of evaluated proposals that were thrown away unevaluated by
  /// the chain (speculation waste).
  [[nodiscard]] double wasteFraction() const noexcept {
    return proposalsEvaluated == 0
               ? 0.0
               : 1.0 - static_cast<double>(logicalIterations) /
                           static_cast<double>(proposalsEvaluated);
  }
};

/// Speculative-moves executor ([11], summarised in §IV of the paper).
///
/// Each *round* evaluates `lanes` independent proposals concurrently, all
/// against the current state i. Because a rejected iteration leaves the
/// chain at i, the evaluations of lanes 0..k are all valid provided lanes
/// 0..k-1 reject; the first accepted lane (if any) commits and every later
/// lane is discarded. The chain's distribution is untouched: it advances by
/// exactly the consumed prefix of genuine MH iterations.
///
/// Lane randomness comes from substreams derived from (round, lane), so the
/// chain trajectory is independent of evaluation order and thread timing.
class SpeculativeExecutor {
 public:
  /// `pool` enables genuinely parallel lane evaluation (proposals are
  /// read-only); null evaluates lanes serially (single-core container,
  /// virtual-time benches).
  SpeculativeExecutor(model::ModelState& state,
                      const mcmc::MoveRegistry& registry, unsigned lanes,
                      std::uint64_t seed, par::ThreadPool* pool = nullptr);

  /// Execute one speculative round; returns consumed chain iterations.
  std::uint64_t round(MovePhase phase = MovePhase::Any,
                      const mcmc::SelectionContext& ctx = {});

  /// Advance the chain by at least `iterations` logical iterations.
  /// Cancellation is polled between rounds; returns the logical iterations
  /// consumed by this call.
  std::uint64_t run(std::uint64_t iterations, MovePhase phase = MovePhase::Any,
                    const mcmc::RunHooks& hooks = {});

  [[nodiscard]] const SpeculativeStats& stats() const noexcept { return stats_; }
  [[nodiscard]] mcmc::Diagnostics& diagnostics() noexcept { return diagnostics_; }
  [[nodiscard]] unsigned lanes() const noexcept { return lanes_; }

 private:
  model::ModelState& state_;
  const mcmc::MoveRegistry& registry_;
  unsigned lanes_;
  rng::Stream master_;
  par::ThreadPool* pool_;
  SpeculativeStats stats_;
  mcmc::Diagnostics diagnostics_;
  std::uint64_t roundCounter_ = 0;
};

/// Expected per-round consumed iterations for rejection probability p and n
/// lanes: (1 - p^n) / (1 - p) (the reciprocal of eq. 3's speed factor).
[[nodiscard]] double expectedConsumedPerRound(double rejectionProbability,
                                              unsigned lanes) noexcept;

}  // namespace mcmcpar::spec
