#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

/// Diagnostics types of the streaming frame-sequence subsystem. Kept free
/// of engine dependencies so engine::RunReport can carry a StreamReport in
/// its extras variant while the runner itself (stream/sequence.*) builds on
/// top of the engine layer.
namespace mcmcpar::stream {

/// Outcome of one frame of a sequence run.
struct FrameResult {
  std::size_t index = 0;  ///< 0-based position in the sequence
  std::string label;      ///< frame path, upload id, or "synth.<k>"
  std::uint64_t iterations = 0;
  double wallSeconds = 0.0;
  double acceptanceRate = 0.0;
  double logPosterior = 0.0;   ///< of this frame's final model
  std::size_t circles = 0;     ///< detections in this frame
  std::size_t carried = 0;     ///< warm-start circles injected from frame-1
  std::size_t tracksBorn = 0;  ///< new track ids opened on this frame
  std::size_t tracksEnded = 0;  ///< tracks that failed to match this frame
  bool cancelled = false;
};

/// Lifetime of one tracked object across the sequence. Frames are
/// inclusive: a track seen only on frame 3 has firstFrame == lastFrame == 3.
struct TrackSummary {
  std::uint64_t id = 0;  ///< stable id, assigned in birth order from 1
  std::size_t firstFrame = 0;
  std::size_t lastFrame = 0;
  [[nodiscard]] std::size_t length() const noexcept {
    return lastFrame - firstFrame + 1;
  }
};

/// The aggregate outcome of a SequenceRunner run: per-frame results plus
/// the tracker's per-object lifetimes. Carried as engine::RunReport::extras
/// for sequence jobs.
struct StreamReport {
  std::string innerStrategy;  ///< registry key run on each frame
  bool warmStart = true;      ///< frames N>0 seeded from frame N-1
  bool tracking = true;       ///< Tracker ran across frames
  std::size_t frameCount = 0;  ///< frames requested
  double p50FrameSeconds = 0.0;  ///< median per-frame latency
  std::vector<FrameResult> perFrame;  ///< frames actually completed
  std::vector<TrackSummary> tracks;   ///< empty when tracking is off
};

}  // namespace mcmcpar::stream
