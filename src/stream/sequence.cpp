#include "stream/sequence.hpp"

#include <fnmatch.h>

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <utility>

#include "engine/batch.hpp"
#include "engine/registry.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "par/virtual_clock.hpp"
#include "stream/tracker.hpp"

namespace mcmcpar::stream {

namespace {

double median(std::vector<double> values) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const std::size_t mid = values.size() / 2;
  return values.size() % 2 != 0 ? values[mid]
                                : 0.5 * (values[mid - 1] + values[mid]);
}

}  // namespace

engine::RunReport SequenceRunner::run(const SequenceSpec& spec,
                                      const engine::ExecResources& resources,
                                      const SequenceHooks& hooks) const {
  if (spec.frames.empty()) {
    throw engine::EngineError("sequence: no frames to run");
  }
  for (const Frame& frame : spec.frames) {
    if (!frame.image) {
      throw engine::EngineError("sequence: null frame image (" + frame.label +
                                ")");
    }
  }
  const engine::StrategyRegistry& registry =
      registry_ != nullptr ? *registry_ : engine::StrategyRegistry::builtin();

  const par::WallTimer total;
  StreamReport streamReport;
  streamReport.innerStrategy = spec.strategy;
  streamReport.warmStart = spec.warmStart;
  streamReport.tracking = spec.track;
  streamReport.frameCount = spec.frames.size();

  Tracker tracker(spec.trackMinIoU);
  engine::RunReport report;
  report.strategy = spec.strategy;
  report.threadsUsed = 0;

  std::vector<model::Circle> carried;
  std::vector<double> frameSeconds;
  bool cancelled = false;

  for (std::size_t k = 0; k < spec.frames.size(); ++k) {
    if (hooks.cancelRequested && hooks.cancelRequested()) {
      cancelled = true;
      break;
    }
    const Frame& frame = spec.frames[k];

    engine::Problem problem = spec.problem;
    problem.filtered = frame.image.get();
    problem.warmStart.clear();
    problem.warmFreshFraction = spec.freshFraction;
    std::size_t carriedCount = 0;
    if (spec.warmStart && k > 0) {
      problem.warmStart = carried;
      carriedCount = carried.size();
    }

    engine::ExecResources frameResources = resources;
    frameResources.seed = engine::deriveJobSeed(resources.seed, k);

    auto strategy =
        registry.create(spec.strategy, frameResources, spec.options);
    strategy->prepare(problem);

    engine::RunHooks frameHooks;
    frameHooks.cancelRequested = hooks.cancelRequested;

    const par::WallTimer timer;
    engine::RunReport frameReport;
    {
      obs::Span frameSpan("stream", "frame:" + std::to_string(k));
      frameSpan.arg("label", frame.label);
      frameSpan.arg("carried", std::to_string(carriedCount));
      frameReport = strategy->run(spec.budget, frameHooks);
    }
    const double seconds = timer.seconds();
    frameSeconds.push_back(seconds);
    obs::Registry& metrics = obs::Registry::global();
    metrics
        .histogram("mcmcpar_stream_frame_seconds",
                   "Per-frame wall time of sequence runs.",
                   obs::latencyBuckets())
        .observe(seconds);
    metrics
        .counter("mcmcpar_stream_frames_total", "Sequence frames completed.")
        .add();
    if (carriedCount > 0) {
      metrics
          .counter("mcmcpar_stream_warm_frames_total",
                   "Frames warm-started from the previous frame's circles.")
          .add();
      metrics
          .counter("mcmcpar_stream_carried_circles_total",
                   "Circles carried across frames by warm starts.")
          .add(static_cast<std::uint64_t>(carriedCount));
    }
    carried = frameReport.circles;

    FrameResult result;
    result.index = k;
    result.label = frame.label;
    result.iterations = frameReport.iterations;
    result.wallSeconds = seconds;
    result.acceptanceRate = frameReport.acceptanceRate;
    result.logPosterior = frameReport.logPosterior;
    result.circles = frameReport.circles.size();
    result.carried = carriedCount;
    result.cancelled = frameReport.cancelled;
    if (spec.track) {
      const Tracker::FrameUpdate update = tracker.update(k, frameReport.circles);
      result.tracksBorn = update.born;
      result.tracksEnded = update.ended;
    }

    report.iterations += frameReport.iterations;
    report.diagnostics.merge(frameReport.diagnostics);
    report.threadsUsed = std::max(report.threadsUsed, frameReport.threadsUsed);
    report.circles = std::move(frameReport.circles);
    report.logPosterior = frameReport.logPosterior;

    streamReport.perFrame.push_back(result);
    if (hooks.onFrame) hooks.onFrame(streamReport.perFrame.back(), frameReport);
    if (frameReport.cancelled) {
      cancelled = true;
      break;
    }
  }

  if (report.threadsUsed == 0) report.threadsUsed = 1;
  report.cancelled = cancelled;
  report.wallSeconds = total.seconds();
  const mcmc::Diagnostics::MoveStats aggregate = report.diagnostics.aggregate();
  report.acceptanceRate = aggregate.acceptanceRate();
  streamReport.p50FrameSeconds = median(std::move(frameSeconds));
  if (spec.track) streamReport.tracks = tracker.tracks();
  report.extras = std::move(streamReport);
  return report;
}

std::optional<std::uint64_t> parseFrameCount(const std::string& value) {
  if (value.empty() || value.size() > 9) return std::nullopt;
  for (char c : value) {
    if (std::isdigit(static_cast<unsigned char>(c)) == 0) return std::nullopt;
  }
  const std::uint64_t count = std::stoull(value);
  if (count == 0) return std::nullopt;
  return count;
}

std::vector<std::string> expandFrameGlob(const std::string& pattern) {
  namespace fs = std::filesystem;
  if (pattern.find_first_of("*?[") == std::string::npos) return {pattern};

  const fs::path full(pattern);
  fs::path dir = full.parent_path();
  if (dir.empty()) dir = ".";
  const std::string name = full.filename().string();

  std::vector<std::string> matches;
  std::error_code ec;
  for (fs::directory_iterator it(dir, ec), end; !ec && it != end;
       it.increment(ec)) {
    if (!it->is_regular_file(ec)) continue;
    const std::string base = it->path().filename().string();
    if (::fnmatch(name.c_str(), base.c_str(), 0) == 0) {
      matches.push_back(it->path().string());
    }
  }
  std::sort(matches.begin(), matches.end());
  return matches;
}

}  // namespace mcmcpar::stream
