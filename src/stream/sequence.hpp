#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "engine/engine.hpp"
#include "img/image.hpp"
#include "stream/report.hpp"

namespace mcmcpar::engine {
class StrategyRegistry;
}  // namespace mcmcpar::engine

namespace mcmcpar::stream {

/// One frame of a sequence: the image plus a display label (a path, an
/// upload id, or "synth.<k>"). The image is shared so the serve layer can
/// pin cache entries for the duration of a job.
struct Frame {
  std::shared_ptr<const img::ImageF> image;
  std::string label;
};

/// What to run over an ordered frame sequence.
struct SequenceSpec {
  std::vector<Frame> frames;
  std::string strategy = "serial";   ///< registry key run on each frame
  std::vector<std::string> options;  ///< strategy key=value options
  /// Problem template: prior/likelihood/moves/theta apply to every frame;
  /// `filtered` and `warmStart` are overwritten per frame.
  engine::Problem problem;
  engine::RunBudget budget;  ///< per-frame budget
  bool warmStart = true;     ///< seed frame N from frame N-1's circles
  /// Fresh random initial circles on warm-started frames, as a fraction of
  /// the eq. 5 expected count (lets new objects enter the scene).
  double freshFraction = 0.25;
  bool track = true;          ///< run the cross-frame Tracker
  double trackMinIoU = 0.25;  ///< IoU gate for track association
};

/// Observer callbacks for a sequence run.
struct SequenceHooks {
  /// Fired after each frame completes, with the per-frame summary and that
  /// frame's full engine report.
  std::function<void(const FrameResult&, const engine::RunReport&)> onFrame;
  /// Polled between frames and threaded into each frame's run, so a cancel
  /// lands mid-frame, not just at frame boundaries.
  std::function<bool()> cancelRequested;
};

/// Runs an ordered frame sequence through one registry strategy,
/// warm-starting each frame's chain from the previous frame's final
/// configuration and tracking objects across frames. Deliberately NOT a
/// registry strategy itself: a sequence is a workload over many images,
/// while a Strategy solves one image — the registry contract (one
/// `prepare(problem)` with one `filtered` image) cannot express it.
class SequenceRunner {
 public:
  /// `registry` defaults to the built-in catalogue and is borrowed.
  explicit SequenceRunner(const engine::StrategyRegistry* registry = nullptr)
      : registry_(registry) {}

  /// Run the whole sequence. Frame K's seed is
  /// engine::deriveJobSeed(resources.seed, K), so one (seed, frames) pair
  /// is one reproducible unit regardless of strategy. The returned report
  /// carries the last frame's circles/logPosterior, summed iterations, and
  /// a stream::StreamReport in `extras`. Throws engine::EngineError on an
  /// empty sequence, a null frame image, or an unknown strategy.
  [[nodiscard]] engine::RunReport run(const SequenceSpec& spec,
                                      const engine::ExecResources& resources,
                                      const SequenceHooks& hooks = {}) const;

 private:
  const engine::StrategyRegistry* registry_;
};

/// Parse the `@sequence=N` form: a pure decimal frame count >= 1. Returns
/// nullopt for anything else (which is then treated as a glob pattern).
[[nodiscard]] std::optional<std::uint64_t> parseFrameCount(
    const std::string& value);

/// Expand a `@sequence=<glob>` pattern into sorted matching paths.
/// Wildcards (`*`, `?`, `[...]`) are honoured in the filename component
/// only; a pattern without wildcards is returned as-is. A missing
/// directory yields an empty list.
[[nodiscard]] std::vector<std::string> expandFrameGlob(
    const std::string& pattern);

}  // namespace mcmcpar::stream
