#include "stream/tracker.hpp"

#include <algorithm>

#include "analysis/matching.hpp"

namespace mcmcpar::stream {

Tracker::FrameUpdate Tracker::update(
    std::size_t frameIndex, const std::vector<model::Circle>& detections) {
  FrameUpdate result;
  result.ids.assign(detections.size(), 0);

  std::vector<model::Circle> previous;
  previous.reserve(active_.size());
  for (const Active& track : active_) previous.push_back(track.last);

  const analysis::IouMatchResult matched =
      analysis::matchCirclesIoU(detections, previous, minIoU_);

  std::vector<Active> survivors;
  survivors.reserve(active_.size() + matched.unmatchedFound.size());
  // Matches arrive best-overlap-first; rebuild survivors in the previous
  // active order so later frames see a stable matching order.
  std::vector<std::size_t> matchOf(active_.size(), detections.size());
  for (const analysis::IouMatch& m : matched.matches) {
    matchOf[m.truthIndex] = m.foundIndex;
  }
  for (std::size_t t = 0; t < active_.size(); ++t) {
    if (matchOf[t] == detections.size()) continue;
    Active track = active_[t];
    track.last = detections[matchOf[t]];
    track.lastFrame = frameIndex;
    result.ids[matchOf[t]] = track.id;
    survivors.push_back(track);
  }
  for (std::size_t t : matched.unmatchedTruth) {
    const Active& track = active_[t];
    ended_.push_back(TrackSummary{track.id, track.firstFrame, track.lastFrame});
    ++result.ended;
  }
  for (std::size_t f : matched.unmatchedFound) {
    Active track;
    track.id = nextId_++;
    track.last = detections[f];
    track.firstFrame = frameIndex;
    track.lastFrame = frameIndex;
    result.ids[f] = track.id;
    survivors.push_back(track);
    ++result.born;
  }
  active_ = std::move(survivors);
  return result;
}

std::vector<TrackSummary> Tracker::tracks() const {
  std::vector<TrackSummary> all = ended_;
  for (const Active& track : active_) {
    all.push_back(TrackSummary{track.id, track.firstFrame, track.lastFrame});
  }
  std::sort(all.begin(), all.end(),
            [](const TrackSummary& a, const TrackSummary& b) {
              return a.id < b.id;
            });
  return all;
}

}  // namespace mcmcpar::stream
