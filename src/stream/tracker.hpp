#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "model/circle.hpp"
#include "stream/report.hpp"

namespace mcmcpar::stream {

/// Deterministic cross-frame object tracker: frame K's detections are
/// matched against the previous frame's surviving tracks by disc IoU
/// (analysis::matchCirclesIoU, highest overlap first, index tie-break).
/// Matched detections extend their track; unmatched detections open new
/// tracks with ids assigned in detection order; tracks with no match end.
/// Same detection sequence in, same track ids out — bit for bit.
class Tracker {
 public:
  explicit Tracker(double minIoU = 0.25) : minIoU_(minIoU) {}

  /// What one frame did to the track population.
  struct FrameUpdate {
    std::size_t born = 0;   ///< new tracks opened on this frame
    std::size_t ended = 0;  ///< tracks that failed to match this frame
    std::vector<std::uint64_t> ids;  ///< track id per detection (parallel
                                     ///< to the `detections` argument)
  };

  /// Ingest one frame's detections. `frameIndex` must be non-decreasing
  /// across calls; gaps are allowed (a skipped frame just widens the
  /// motion the IoU gate must bridge).
  FrameUpdate update(std::size_t frameIndex,
                     const std::vector<model::Circle>& detections);

  [[nodiscard]] std::size_t activeTracks() const noexcept {
    return active_.size();
  }

  /// All tracks seen so far — ended and still active — sorted by id.
  [[nodiscard]] std::vector<TrackSummary> tracks() const;

 private:
  struct Active {
    std::uint64_t id = 0;
    model::Circle last;  ///< most recent matched detection
    std::size_t firstFrame = 0;
    std::size_t lastFrame = 0;
  };

  double minIoU_;
  std::uint64_t nextId_ = 1;
  std::vector<Active> active_;
  std::vector<TrackSummary> ended_;
};

}  // namespace mcmcpar::stream
