#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "analysis/anomaly.hpp"
#include "analysis/matching.hpp"
#include "analysis/metrics.hpp"
#include "analysis/stats.hpp"
#include "analysis/table_writer.hpp"

namespace mcmcpar::analysis {
namespace {

using model::Circle;

TEST(Matching, PerfectMatch) {
  const std::vector<Circle> truth{{10, 10, 5}, {30, 30, 5}};
  const std::vector<Circle> found{{10.5, 10, 5}, {29.5, 30.2, 5}};
  const MatchResult m = matchCircles(found, truth, 3.0);
  EXPECT_EQ(m.matches.size(), 2u);
  EXPECT_TRUE(m.unmatchedFound.empty());
  EXPECT_TRUE(m.unmatchedTruth.empty());
}

TEST(Matching, DistanceGateExcludesFarPairs) {
  const std::vector<Circle> truth{{10, 10, 5}};
  const std::vector<Circle> found{{20, 10, 5}};
  const MatchResult m = matchCircles(found, truth, 3.0);
  EXPECT_TRUE(m.matches.empty());
  EXPECT_EQ(m.unmatchedFound.size(), 1u);
  EXPECT_EQ(m.unmatchedTruth.size(), 1u);
}

TEST(Matching, GreedyPrefersClosest) {
  const std::vector<Circle> truth{{10, 10, 5}};
  const std::vector<Circle> found{{12, 10, 5}, {10.5, 10, 5}};
  const MatchResult m = matchCircles(found, truth, 5.0);
  ASSERT_EQ(m.matches.size(), 1u);
  EXPECT_EQ(m.matches[0].foundIndex, 1u);  // the nearer one
  EXPECT_EQ(m.unmatchedFound.size(), 1u);
}

TEST(Matching, OneToOneOnly) {
  const std::vector<Circle> truth{{10, 10, 5}, {12, 10, 5}};
  const std::vector<Circle> found{{11, 10, 5}};
  const MatchResult m = matchCircles(found, truth, 5.0);
  EXPECT_EQ(m.matches.size(), 1u);
  EXPECT_EQ(m.unmatchedTruth.size(), 1u);
}

TEST(Metrics, PrecisionRecallF1) {
  const std::vector<Circle> truth{{10, 10, 5}, {30, 30, 5}, {50, 50, 5}};
  const std::vector<Circle> found{{10, 10, 5}, {30, 30, 5}, {70, 70, 5},
                                  {90, 90, 5}};
  const QualityMetrics q = scoreCircles(found, truth, 3.0);
  EXPECT_EQ(q.truePositives, 2u);
  EXPECT_EQ(q.falsePositives, 2u);
  EXPECT_EQ(q.falseNegatives, 1u);
  EXPECT_NEAR(q.precision, 0.5, 1e-12);
  EXPECT_NEAR(q.recall, 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(q.f1, 2.0 * 0.5 * (2.0 / 3.0) / (0.5 + 2.0 / 3.0), 1e-12);
}

TEST(Metrics, RmseOverMatches) {
  const std::vector<Circle> truth{{10, 10, 5}};
  const std::vector<Circle> found{{13, 14, 7}};
  const QualityMetrics q = scoreCircles(found, truth, 10.0);
  EXPECT_NEAR(q.centreRmse, 5.0, 1e-12);
  EXPECT_NEAR(q.radiusRmse, 2.0, 1e-12);
}

TEST(Metrics, EmptyInputs) {
  const QualityMetrics q = scoreCircles({}, {}, 3.0);
  EXPECT_EQ(q.precision, 0.0);
  EXPECT_EQ(q.recall, 0.0);
  EXPECT_EQ(q.f1, 0.0);
}

TEST(Anomaly, DistanceToLines) {
  EXPECT_NEAR(distanceToLines(10, 50, {12}, {}), 2.0, 1e-12);
  EXPECT_NEAR(distanceToLines(10, 50, {0}, {48}), 2.0, 1e-12);
  EXPECT_TRUE(std::isinf(distanceToLines(1, 1, {}, {})));
}

TEST(Anomaly, ClassifiesMissesByBoundaryBand) {
  const std::vector<Circle> truth{{50, 50, 5}, {10, 90, 5}};
  const std::vector<Circle> found{};  // both missed
  const auto report =
      auditBoundaryAnomalies(found, truth, {48.0}, {}, 3.0, 5.0, 4.0);
  EXPECT_EQ(report.missesNearBoundary, 1u);   // (50,50) is 2px from x=48
  EXPECT_EQ(report.missesElsewhere, 1u);      // (10,90) is far
}

TEST(Anomaly, CountsDuplicatePairsNearBoundary) {
  const std::vector<Circle> truth{{50, 50, 5}};
  const std::vector<Circle> found{{49, 50, 5}, {51, 50, 5}};
  const auto report =
      auditBoundaryAnomalies(found, truth, {50.0}, {}, 3.0, 5.0, 4.0);
  EXPECT_EQ(report.duplicatePairs, 1u);
  EXPECT_EQ(report.duplicatePairsNearBoundary, 1u);
  EXPECT_EQ(report.totalNearBoundary(), 2u);  // dup pair + 1 false positive
}

TEST(Stats, SummariseKnownValues) {
  const std::vector<double> v{4.0, 1.0, 3.0, 2.0};
  const Summary s = summarise(v);
  EXPECT_EQ(s.count, 4u);
  EXPECT_NEAR(s.mean, 2.5, 1e-12);
  EXPECT_NEAR(s.median, 2.5, 1e-12);
  EXPECT_NEAR(s.min, 1.0, 1e-12);
  EXPECT_NEAR(s.max, 4.0, 1e-12);
  EXPECT_NEAR(s.stddev, std::sqrt(5.0 / 3.0), 1e-12);
}

TEST(Stats, SummariseEmptyAndSingle) {
  EXPECT_EQ(summarise({}).count, 0u);
  const Summary s = summarise(std::vector<double>{7.0});
  EXPECT_NEAR(s.median, 7.0, 1e-12);
  EXPECT_EQ(s.stddev, 0.0);
}

TEST(Stats, RunningStatMatchesSummary) {
  const std::vector<double> v{1.5, 2.5, 3.5, 10.0, -2.0};
  RunningStat r;
  for (double x : v) r.push(x);
  const Summary s = summarise(v);
  EXPECT_EQ(r.count(), 5u);
  EXPECT_NEAR(r.mean(), s.mean, 1e-12);
  EXPECT_NEAR(r.stddev(), s.stddev, 1e-12);
}

TEST(Table, AlignedTextOutput) {
  Table t({"name", "value"});
  t.addRow({"alpha", Table::num(1.5, 2)});
  t.addRow({"beta-long-name", Table::integer(42)});
  std::ostringstream out;
  t.print(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("1.50"), std::string::npos);
  EXPECT_NE(text.find("42"), std::string::npos);
  EXPECT_NE(text.find("----"), std::string::npos);
}

TEST(Table, CsvEscaping) {
  Table t({"a", "b"});
  t.addRow({"has,comma", "has\"quote"});
  std::ostringstream out;
  t.printCsv(out);
  EXPECT_NE(out.str().find("\"has,comma\""), std::string::npos);
  EXPECT_NE(out.str().find("\"has\"\"quote\""), std::string::npos);
}

TEST(Table, NumberFormatting) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::sci(0.000123, 2), "1.23e-04");
  EXPECT_EQ(Table::integer(-7), "-7");
}

}  // namespace
}  // namespace mcmcpar::analysis
