#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <sstream>
#include <thread>

#include "engine/batch.hpp"
#include "engine/registry.hpp"
#include "img/synth.hpp"
#include "par/concurrency.hpp"

namespace mcmcpar::engine {
namespace {

img::Scene tinyScene(std::uint64_t seed) {
  img::SceneSpec spec = img::cellScene(80, 80, 4, 8.0, seed);
  spec.radiusStd = 0.5;
  return img::generateScene(spec);
}

Problem tinyProblem(const img::Scene& scene) {
  Problem problem;
  problem.filtered = &scene.image;
  problem.prior.radiusMean = 8.0;
  problem.prior.radiusStd = 1.0;
  problem.prior.radiusMin = 4.0;
  problem.prior.radiusMax = 13.0;
  return problem;
}

BatchJob makeJob(const Problem& problem, std::string strategy,
                 std::uint64_t iterations = 800) {
  BatchJob job;
  job.strategy = std::move(strategy);
  job.problem = problem;
  job.budget = RunBudget{iterations, 0};
  return job;
}

// ---------------------------------------------------------------------------
// Report ordering and the basic protocol.
// ---------------------------------------------------------------------------

TEST(BatchRunner, ReportsAreIndexAlignedWithSubmissionOrder) {
  const img::Scene scene = tinyScene(31);
  const Problem problem = tinyProblem(scene);
  const std::vector<std::string> order = {"mc3",    "serial",      "blind",
                                          "serial", "intelligent", "periodic"};
  std::vector<BatchJob> jobs;
  for (const std::string& name : order) jobs.push_back(makeJob(problem, name));

  BatchOptions options;
  options.resources.threads = 4;
  const BatchResult result = BatchRunner().run(jobs, options);

  ASSERT_EQ(result.reports.size(), order.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    EXPECT_EQ(result.reports[i].strategy, order[i]) << i;
    EXPECT_FALSE(result.reports[i].cancelled) << i;
    EXPECT_GT(result.reports[i].iterations, 0u) << i;
  }
  EXPECT_EQ(result.batch.jobs, order.size());
  EXPECT_EQ(result.batch.completed, order.size());
  EXPECT_EQ(result.batch.failed, 0u);
  EXPECT_EQ(result.batch.cancelled, 0u);
  EXPECT_EQ(result.batch.perStrategy.at("serial").jobs, 2u);
  EXPECT_GT(result.batch.jobsPerSecond, 0.0);
  EXPECT_LE(result.batch.p50Seconds, result.batch.p95Seconds);
}

TEST(BatchRunner, EmptyBatchReturnsEmptyResult) {
  const BatchResult result = BatchRunner().run({});
  EXPECT_TRUE(result.reports.empty());
  EXPECT_EQ(result.batch.jobs, 0u);
  EXPECT_EQ(result.batch.completed, 0u);
  EXPECT_EQ(result.batch.jobsPerSecond, 0.0);
  EXPECT_EQ(result.batch.p95Seconds, 0.0);
  EXPECT_TRUE(result.batch.perStrategy.empty());
}

TEST(BatchRunner, SingleJobMatchesDirectStrategyRun) {
  const img::Scene scene = tinyScene(32);
  const Problem problem = tinyProblem(scene);

  BatchJob job = makeJob(problem, "serial", 2000);
  job.seed = 21;
  BatchOptions options;
  options.resources.threads = 1;
  const BatchResult viaBatch = BatchRunner().run({job}, options);

  const Engine engine(ExecResources{1, false, 21});
  const RunReport direct =
      engine.run("serial", problem, RunBudget{2000, 0});

  ASSERT_EQ(viaBatch.reports.size(), 1u);
  const RunReport& batched = viaBatch.reports[0];
  EXPECT_EQ(batched.iterations, direct.iterations);
  EXPECT_EQ(batched.circles.size(), direct.circles.size());
  EXPECT_DOUBLE_EQ(batched.logPosterior, direct.logPosterior);
}

TEST(BatchRunner, DerivedJobSeedsAreDistinctAndDeterministic) {
  EXPECT_EQ(deriveJobSeed(1, 0), deriveJobSeed(1, 0));
  EXPECT_NE(deriveJobSeed(1, 0), deriveJobSeed(1, 1));
  EXPECT_NE(deriveJobSeed(1, 0), deriveJobSeed(2, 0));

  // Two identical jobs without explicit seeds must not duplicate work: the
  // derived seeds differ, so the chains explore independently.
  const img::Scene scene = tinyScene(33);
  const Problem problem = tinyProblem(scene);
  const std::vector<BatchJob> jobs = {makeJob(problem, "serial", 1500),
                                      makeJob(problem, "serial", 1500)};
  BatchOptions options;
  options.resources.threads = 1;
  const BatchResult result = BatchRunner().run(jobs, options);
  EXPECT_NE(result.reports[0].logPosterior, result.reports[1].logPosterior);
}

// ---------------------------------------------------------------------------
// Validation and per-job failure isolation.
// ---------------------------------------------------------------------------

TEST(BatchRunner, UnknownStrategyFailsTheBatchUpFrontNamingTheJob) {
  const img::Scene scene = tinyScene(34);
  const Problem problem = tinyProblem(scene);
  std::vector<BatchJob> jobs = {makeJob(problem, "serial")};
  jobs.push_back(makeJob(problem, "warp"));
  jobs[1].label = "bad-job";
  try {
    (void)BatchRunner().run(jobs);
    FAIL() << "expected EngineError";
  } catch (const EngineError& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("#1"), std::string::npos) << message;
    EXPECT_NE(message.find("bad-job"), std::string::npos) << message;
    EXPECT_NE(message.find("warp"), std::string::npos) << message;
  }
}

TEST(BatchRunner, RuntimeFailureIsCapturedPerJobNotPropagated) {
  const img::Scene scene = tinyScene(35);
  const Problem problem = tinyProblem(scene);
  std::vector<BatchJob> jobs = {makeJob(problem, "serial")};
  jobs.push_back(makeJob(Problem{}, "serial"));  // null image: fails prepare()
  BatchOptions options;
  options.resources.threads = 1;

  const BatchResult result = BatchRunner().run(jobs, options);
  EXPECT_EQ(result.batch.completed, 1u);
  EXPECT_EQ(result.batch.failed, 1u);
  EXPECT_TRUE(result.batch.errors[0].empty());
  EXPECT_NE(result.batch.errors[1].find("null"), std::string::npos)
      << result.batch.errors[1];
  EXPECT_GT(result.reports[0].iterations, 0u);
  EXPECT_EQ(result.reports[1].iterations, 0u);
}

// ---------------------------------------------------------------------------
// Cancellation and deadlines.
// ---------------------------------------------------------------------------

TEST(BatchRunner, MidBatchCancellationKeepsCompletedReportsIntact) {
  const img::Scene scene = tinyScene(36);
  const Problem problem = tinyProblem(scene);
  std::vector<BatchJob> jobs;
  for (int i = 0; i < 4; ++i) jobs.push_back(makeJob(problem, "serial", 1000));

  // Serial execution (one job in flight) and a cancel flag raised after the
  // second job reports done: jobs 0-1 complete, jobs 2-3 never start.
  std::atomic<std::size_t> doneCount{0};
  BatchOptions options;
  options.resources.threads = 1;
  options.maxConcurrentJobs = 1;
  BatchHooks hooks;
  hooks.onJobDone = [&doneCount](std::size_t, const RunReport&) {
    ++doneCount;
  };
  hooks.cancelRequested = [&doneCount] { return doneCount >= 2; };

  const BatchResult result = BatchRunner().run(jobs, options, hooks);
  EXPECT_EQ(result.batch.completed, 2u);
  EXPECT_EQ(result.batch.cancelled, 2u);
  EXPECT_EQ(result.batch.failed, 0u);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_FALSE(result.reports[i].cancelled) << i;
    EXPECT_EQ(result.reports[i].iterations, 1000u) << i;
    EXPECT_FALSE(result.reports[i].circles.empty()) << i;
    EXPECT_TRUE(std::isfinite(result.reports[i].logPosterior)) << i;
  }
  for (std::size_t i = 2; i < 4; ++i) {
    EXPECT_TRUE(result.reports[i].cancelled) << i;
    EXPECT_EQ(result.reports[i].iterations, 0u) << i;
    EXPECT_EQ(result.reports[i].strategy, "serial") << i;
  }
}

TEST(BatchRunner, DeadlineCancelsLongJobsButReturnsConsistentReports) {
  const img::Scene scene = tinyScene(37);
  const Problem problem = tinyProblem(scene);
  std::vector<BatchJob> jobs;
  for (int i = 0; i < 3; ++i) {
    jobs.push_back(makeJob(problem, "serial", 50'000'000));
  }
  BatchOptions options;
  options.resources.threads = 2;
  options.deadlineSeconds = 0.05;

  const BatchResult result = BatchRunner().run(jobs, options);
  EXPECT_EQ(result.batch.completed, 0u);
  EXPECT_EQ(result.batch.cancelled, 3u);
  for (const RunReport& report : result.reports) {
    EXPECT_TRUE(report.cancelled);
    EXPECT_LT(report.iterations, 50'000'000u);
  }
}

// ---------------------------------------------------------------------------
// The shared thread budget.
// ---------------------------------------------------------------------------

TEST(BatchRunner, FullyLoadedBudgetForcesJobsSerialInternally) {
  // 2 budgeted threads, 2 jobs in flight: no spare threads, so a strategy
  // that would normally spawn an internal pool must run single-threaded.
  const img::Scene scene = tinyScene(38);
  const Problem problem = tinyProblem(scene);
  std::vector<BatchJob> jobs;
  for (int i = 0; i < 4; ++i) {
    BatchJob job = makeJob(problem, "speculative", 600);
    job.options = {"lanes=4"};
    jobs.push_back(std::move(job));
  }
  BatchOptions options;
  options.resources.threads = 2;

  const BatchResult result = BatchRunner().run(jobs, options);
  EXPECT_EQ(result.batch.threadBudget, 2u);
  EXPECT_EQ(result.batch.concurrentJobs, 2u);
  for (const RunReport& report : result.reports) {
    EXPECT_FALSE(report.cancelled);
    EXPECT_EQ(report.threadsUsed, 1u);
  }
}

TEST(BatchRunner, SpareBudgetFlowsToRunningJobsInternalWorkers) {
  // 4 budgeted threads but one job in flight: the running job leases the 3
  // spare threads for its lanes.
  const img::Scene scene = tinyScene(39);
  const Problem problem = tinyProblem(scene);
  std::vector<BatchJob> jobs;
  for (int i = 0; i < 2; ++i) {
    BatchJob job = makeJob(problem, "speculative", 600);
    job.options = {"lanes=4"};
    jobs.push_back(std::move(job));
  }
  BatchOptions options;
  options.resources.threads = 4;
  options.maxConcurrentJobs = 1;

  const BatchResult result = BatchRunner().run(jobs, options);
  EXPECT_EQ(result.batch.concurrentJobs, 1u);
  for (const RunReport& report : result.reports) {
    EXPECT_FALSE(report.cancelled);
    EXPECT_EQ(report.threadsUsed, 4u);
  }
}

// ---------------------------------------------------------------------------
// Concurrent stress: many jobs, shared pool, observer callbacks from job
// threads. Run under -DMCMCPAR_SANITIZE=thread in CI to prove race-freedom.
// ---------------------------------------------------------------------------

TEST(BatchRunner, ConcurrentJobsStressIsCleanAndComplete) {
  const img::Scene scene = tinyScene(40);
  const Problem problem = tinyProblem(scene);
  const std::vector<std::string> names = {"serial", "speculative", "mc3",
                                          "periodic"};
  std::vector<BatchJob> jobs;
  for (int i = 0; i < 12; ++i) {
    BatchJob job = makeJob(problem, names[i % names.size()], 500);
    if (job.strategy == "speculative") job.options = {"lanes=3"};
    jobs.push_back(std::move(job));
  }

  std::atomic<std::uint64_t> progressBeats{0};
  std::atomic<std::size_t> doneJobs{0};
  BatchOptions options;
  options.resources.threads = 4;
  BatchHooks hooks;
  hooks.onJobProgress = [&progressBeats](std::size_t, const RunProgress&) {
    ++progressBeats;
  };
  hooks.onJobDone = [&doneJobs](std::size_t, const RunReport&) { ++doneJobs; };

  const BatchResult result = BatchRunner().run(jobs, options, hooks);
  EXPECT_EQ(result.batch.completed, jobs.size());
  EXPECT_EQ(doneJobs.load(), jobs.size());
  EXPECT_GT(progressBeats.load(), 0u);
  for (const RunReport& report : result.reports) {
    EXPECT_GT(report.iterations, 0u);
    EXPECT_TRUE(std::isfinite(report.logPosterior));
  }
}

// ---------------------------------------------------------------------------
// Manifest parsing.
// ---------------------------------------------------------------------------

TEST(BatchManifest, ParsesJobsSkippingBlanksAndComments) {
  std::istringstream in(
      "# header comment\n"
      "\n"
      "cells.pgm serial\n"
      "  synth mc3 chains=2 swap-interval=50\n"
      "other.pgm blind grid-x=2\n");
  const std::vector<ManifestEntry> entries = parseBatchManifest(in);
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].image, "cells.pgm");
  EXPECT_EQ(entries[0].strategy, "serial");
  EXPECT_TRUE(entries[0].options.empty());
  EXPECT_EQ(entries[1].image, "synth");
  EXPECT_EQ(entries[1].options,
            (std::vector<std::string>{"chains=2", "swap-interval=50"}));
  EXPECT_EQ(entries[2].strategy, "blind");
}

TEST(BatchManifest, ParsesJobDirectivesSeparatelyFromStrategyOptions) {
  const ManifestEntry entry = parseManifestLine(
      "cells.pgm mc3 @iters=9000 chains=2 @seed=7 @trace=100 @label=probe");
  EXPECT_EQ(entry.image, "cells.pgm");
  EXPECT_EQ(entry.strategy, "mc3");
  EXPECT_EQ(entry.options, (std::vector<std::string>{"chains=2"}));
  EXPECT_EQ(entry.iterations, std::uint64_t{9000});
  EXPECT_EQ(entry.seed, std::uint64_t{7});
  EXPECT_EQ(entry.trace, std::uint64_t{100});
  EXPECT_EQ(entry.label, "probe");
}

TEST(BatchManifest, ParsesDataPlaneAndPriorDirectives) {
  const ManifestEntry entry = parseManifestLine(
      "tile-0x0 serial @image=inline @oneshot=1 @radius=8.5 @radius-std=1.25"
      " @radius-min=4.5 @radius-max=14.5 @count=6.5");
  EXPECT_TRUE(entry.inlineImage);
  EXPECT_TRUE(entry.oneshot);
  ASSERT_TRUE(entry.radius.has_value());
  EXPECT_DOUBLE_EQ(*entry.radius, 8.5);
  ASSERT_TRUE(entry.radiusStd.has_value());
  EXPECT_DOUBLE_EQ(*entry.radiusStd, 1.25);
  ASSERT_TRUE(entry.radiusMin.has_value());
  EXPECT_DOUBLE_EQ(*entry.radiusMin, 4.5);
  ASSERT_TRUE(entry.radiusMax.has_value());
  EXPECT_DOUBLE_EQ(*entry.radiusMax, 14.5);
  ASSERT_TRUE(entry.expectedCount.has_value());
  EXPECT_DOUBLE_EQ(*entry.expectedCount, 6.5);

  // Defaults: the whole family is absent unless spelled out.
  const ManifestEntry plain = parseManifestLine("synth serial");
  EXPECT_FALSE(plain.inlineImage);
  EXPECT_FALSE(plain.oneshot);
  EXPECT_FALSE(plain.radiusStd.has_value());
  EXPECT_FALSE(plain.expectedCount.has_value());
  EXPECT_FALSE(parseManifestLine("synth serial @oneshot=0").oneshot);

  // @image accepts only "inline"; prior directives must be positive.
  EXPECT_THROW((void)parseManifestLine("synth serial @image=file"),
               EngineError);
  EXPECT_THROW((void)parseManifestLine("synth serial @radius-std=0"),
               EngineError);
  EXPECT_THROW((void)parseManifestLine("synth serial @count=-2"),
               EngineError);
}

TEST(BatchManifest, UnknownDirectivesAndStrayTokensRaiseDescriptiveErrors) {
  // Unknown @directive: named, with the valid set listed.
  try {
    (void)parseManifestLine("synth serial @bogus=1");
    FAIL() << "expected EngineError";
  } catch (const EngineError& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("@bogus"), std::string::npos) << message;
    EXPECT_NE(message.find("@iters"), std::string::npos) << message;
  }
  // A malformed directive value reports through the same OptionMap error
  // the --opt parser uses.
  try {
    (void)parseManifestLine("synth serial @iters=soon");
    FAIL() << "expected EngineError";
  } catch (const EngineError& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("'@iters'"), std::string::npos) << message;
    EXPECT_NE(message.find("unsigned integer"), std::string::npos) << message;
  }
  // A stray trailing token is rejected at parse time with the identical
  // message OptionMap::parse produces for --opt (not silently ignored,
  // not deferred to strategy creation).
  try {
    (void)parseManifestLine("synth serial extra");
    FAIL() << "expected EngineError";
  } catch (const EngineError& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("malformed option 'extra'"), std::string::npos)
        << message;
    EXPECT_NE(message.find("key=value"), std::string::npos) << message;
  }
  // Same for '=value' (empty key), which OptionMap rejects but a naive
  // find('=') check would let through.
  EXPECT_THROW((void)parseManifestLine("synth serial =5"), EngineError);
  // Duplicate keys raise the --opt duplicate diagnostic at parse time too.
  try {
    (void)parseManifestLine("synth mc3 chains=2 chains=4");
    FAIL() << "expected EngineError";
  } catch (const EngineError& e) {
    EXPECT_NE(std::string(e.what()).find("given twice"), std::string::npos)
        << e.what();
  }
}

TEST(BatchManifest, DirectiveErrorsCarryTheManifestLineNumber) {
  std::istringstream in("synth serial\nsynth serial @bogus=1\n");
  try {
    (void)parseBatchManifest(in);
    FAIL() << "expected EngineError";
  } catch (const EngineError& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("line 2"), std::string::npos) << message;
    EXPECT_NE(message.find("@bogus"), std::string::npos) << message;
  }
}

// ---------------------------------------------------------------------------
// The incremental-admission path and the reusable shared budget.
// ---------------------------------------------------------------------------

TEST(BatchRunner, RunOneMatchesWholeBatchExecution) {
  const img::Scene scene = tinyScene(41);
  const Problem problem = tinyProblem(scene);
  BatchJob job = makeJob(problem, "serial", 1200);
  job.seed = 17;

  BatchOptions options;
  options.resources.threads = 1;
  const BatchResult viaBatch = BatchRunner().run({job}, options);

  ExecResources resources;
  resources.threads = 1;
  const RunReport direct = BatchRunner().runOne(job, resources);

  EXPECT_EQ(direct.iterations, viaBatch.reports[0].iterations);
  EXPECT_DOUBLE_EQ(direct.logPosterior, viaBatch.reports[0].logPosterior);
  EXPECT_EQ(direct.circles.size(), viaBatch.reports[0].circles.size());
}

TEST(BatchRunner, RunOneThrowsInsteadOfCapturing) {
  const img::Scene scene = tinyScene(42);
  BatchJob bad = makeJob(tinyProblem(scene), "warp");
  EXPECT_THROW((void)BatchRunner().runOne(bad, ExecResources{}),
               EngineError);
  BatchJob nullImage = makeJob(Problem{}, "serial");
  EXPECT_THROW((void)BatchRunner().runOne(nullImage, ExecResources{}),
               EngineError);
}

TEST(BatchRunner, SharedBudgetIsReusedAcrossBatchesAndRestored) {
  const img::Scene scene = tinyScene(43);
  const Problem problem = tinyProblem(scene);
  par::PoolBudget budget(3);

  BatchOptions options;
  options.sharedBudget = &budget;
  for (int round = 0; round < 3; ++round) {
    std::vector<BatchJob> jobs;
    for (int i = 0; i < 4; ++i) {
      jobs.push_back(makeJob(problem, "serial", 400));
    }
    const BatchResult result = BatchRunner().run(jobs, options);
    EXPECT_EQ(result.batch.completed, jobs.size()) << round;
    EXPECT_EQ(result.batch.threadBudget, 3u) << round;
    // Every thread returned: the budget is whole again between batches.
    EXPECT_EQ(budget.available(), 3u) << round;
  }
}

TEST(PoolBudgetBlocking, TryAcquireForWakesOnRelease) {
  par::PoolBudget budget(1);
  ASSERT_EQ(budget.tryAcquire(1), 1u);
  std::atomic<unsigned> granted{0};
  std::jthread waiter([&] {
    granted = budget.tryAcquireFor(1, std::chrono::milliseconds(5000));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  budget.release(1);
  waiter.join();
  EXPECT_EQ(granted.load(), 1u);
  EXPECT_EQ(budget.available(), 0u);  // the waiter holds it now

  // And times out (returning 0) when nothing is ever released.
  EXPECT_EQ(budget.tryAcquireFor(1, std::chrono::milliseconds(20)), 0u);
}

TEST(BatchManifest, RejectsShortLinesAndMalformedOptionsWithLineNumbers) {
  {
    std::istringstream in("cells.pgm serial\njust-an-image\n");
    try {
      (void)parseBatchManifest(in);
      FAIL() << "expected EngineError";
    } catch (const EngineError& e) {
      EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos)
          << e.what();
    }
  }
  {
    std::istringstream in("cells.pgm mc3 chains\n");
    try {
      (void)parseBatchManifest(in);
      FAIL() << "expected EngineError";
    } catch (const EngineError& e) {
      const std::string message = e.what();
      EXPECT_NE(message.find("line 1"), std::string::npos) << message;
      EXPECT_NE(message.find("chains"), std::string::npos) << message;
    }
  }
}

}  // namespace
}  // namespace mcmcpar::engine
