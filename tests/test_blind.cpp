#include <gtest/gtest.h>

#include "partition/blind.hpp"

namespace mcmcpar::partition {
namespace {

using model::Circle;

TEST(MakeBlindPartitions, CoresTileAndExpansionsClip) {
  BlindParams params;
  params.gridX = 2;
  params.gridY = 2;
  params.overlapMargin = 10;
  const auto parts = makeBlindPartitions(100, 80, params);
  ASSERT_EQ(parts.size(), 4u);
  long long coreArea = 0;
  for (const BlindPartition& p : parts) {
    coreArea += p.core.area();
    // Expansion contains the core.
    EXPECT_LE(p.expanded.x0, p.core.x0);
    EXPECT_LE(p.expanded.y0, p.core.y0);
    EXPECT_GE(p.expanded.x0 + p.expanded.w, p.core.x0 + p.core.w);
    EXPECT_GE(p.expanded.y0 + p.expanded.h, p.core.y0 + p.core.h);
    // Clipped at the image border.
    EXPECT_GE(p.expanded.x0, 0);
    EXPECT_GE(p.expanded.y0, 0);
    EXPECT_LE(p.expanded.x0 + p.expanded.w, 100);
    EXPECT_LE(p.expanded.y0 + p.expanded.h, 80);
  }
  EXPECT_EQ(coreArea, 100LL * 80LL);
  // Interior edges expand by the full margin.
  EXPECT_EQ(parts[0].expanded.w, 50 + 10);
  EXPECT_EQ(parts[0].expanded.h, 40 + 10);
}

TEST(MakeBlindPartitions, MarginCeiledToPixels) {
  BlindParams params;
  params.overlapMargin = 8.8;  // 1.1 * r=8, the paper's rule
  const auto parts = makeBlindPartitions(64, 64, params);
  EXPECT_EQ(parts[0].expanded.w, 32 + 9);
}

BlindParams mergeParams() {
  BlindParams p;
  p.gridX = 2;
  p.gridY = 2;
  p.overlapMargin = 10;
  p.mergeRadius = 5;
  return p;
}

TEST(MergeBlindResults, DropsCirclesOutsideCore) {
  const auto parts = makeBlindPartitions(100, 100, mergeParams());
  // Partition 0's core is [0,50)x[0,50); a find at (60,20) belongs to
  // partition 1 and must be dropped from partition 0's model.
  std::vector<std::vector<Circle>> per(4);
  per[0] = {Circle{60, 20, 5}};
  BlindMergeStats stats;
  const auto merged = mergeBlindResults(parts, per, mergeParams(), &stats);
  EXPECT_TRUE(merged.empty());
  EXPECT_EQ(stats.droppedOutsideCore, 1u);
}

TEST(MergeBlindResults, AutoAcceptsInteriorCircles) {
  const auto parts = makeBlindPartitions(100, 100, mergeParams());
  std::vector<std::vector<Circle>> per(4);
  per[0] = {Circle{20, 20, 5}};  // deep inside core 0, outside others' reach
  BlindMergeStats stats;
  const auto merged = mergeBlindResults(parts, per, mergeParams(), &stats);
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(stats.autoAccepted, 1u);
  EXPECT_EQ(stats.mergedPairs, 0u);
}

TEST(MergeBlindResults, MergesCrossPartitionDuplicates) {
  const auto parts = makeBlindPartitions(100, 100, mergeParams());
  // The same artifact found by partitions 0 and 1 just either side of the
  // x=50 core boundary; centres 4 px apart -> merged to the average.
  std::vector<std::vector<Circle>> per(4);
  per[0] = {Circle{48, 25, 6}};
  per[1] = {Circle{52, 25, 8}};
  BlindMergeStats stats;
  const auto merged = mergeBlindResults(parts, per, mergeParams(), &stats);
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(stats.mergedPairs, 1u);
  EXPECT_NEAR(merged[0].x, 50.0, 1e-12);
  EXPECT_NEAR(merged[0].y, 25.0, 1e-12);
  EXPECT_NEAR(merged[0].r, 7.0, 1e-12);
}

TEST(MergeBlindResults, SamePartitionPairsNeverMerge) {
  const auto parts = makeBlindPartitions(100, 100, mergeParams());
  std::vector<std::vector<Circle>> per(4);
  per[0] = {Circle{48, 25, 6}, Circle{47, 27, 6}};  // both from partition 0
  BlindMergeStats stats;
  const auto merged = mergeBlindResults(parts, per, mergeParams(), &stats);
  EXPECT_EQ(stats.mergedPairs, 0u);
  EXPECT_EQ(merged.size(), 2u);  // dispute policy Accept keeps both
}

TEST(MergeBlindResults, DisputePolicyAcceptVsDiscard) {
  const auto parts = makeBlindPartitions(100, 100, mergeParams());
  std::vector<std::vector<Circle>> per(4);
  per[0] = {Circle{48, 25, 6}};  // overlap area, no counterpart

  BlindParams accept = mergeParams();
  accept.dispute = BlindParams::DisputePolicy::Accept;
  BlindMergeStats sa;
  EXPECT_EQ(mergeBlindResults(parts, per, accept, &sa).size(), 1u);
  EXPECT_EQ(sa.disputedAccepted, 1u);

  BlindParams discard = mergeParams();
  discard.dispute = BlindParams::DisputePolicy::Discard;
  BlindMergeStats sd;
  EXPECT_TRUE(mergeBlindResults(parts, per, discard, &sd).empty());
  EXPECT_EQ(sd.disputedDiscarded, 1u);
}

TEST(MergeBlindResults, ClosestPairsMergeFirst) {
  const auto parts = makeBlindPartitions(100, 100, mergeParams());
  std::vector<std::vector<Circle>> per(4);
  // One circle in partition 0, two candidates in partition 1; the nearer
  // must be chosen.
  per[0] = {Circle{48, 25, 6}};
  per[1] = {Circle{51, 25, 6}, Circle{52, 28, 6}};
  BlindMergeStats stats;
  const auto merged = mergeBlindResults(parts, per, mergeParams(), &stats);
  EXPECT_EQ(stats.mergedPairs, 1u);
  EXPECT_EQ(stats.disputedAccepted, 1u);
  ASSERT_EQ(merged.size(), 2u);
  // The merged circle's x is the average of 48 and 51.
  bool sawMerged = false;
  for (const Circle& c : merged) sawMerged |= std::abs(c.x - 49.5) < 1e-9;
  EXPECT_TRUE(sawMerged);
}

TEST(MergeBlindResults, FourCornersExample) {
  // End-to-end: four partitions all report the same centre artifact near
  // the cross point; exactly two merge (the remaining two pair up next).
  const auto parts = makeBlindPartitions(100, 100, mergeParams());
  std::vector<std::vector<Circle>> per(4);
  per[0] = {Circle{48, 48, 5}};
  per[1] = {Circle{52, 48, 5}};
  per[2] = {Circle{48, 52, 5}};
  per[3] = {Circle{52, 52, 5}};
  BlindMergeStats stats;
  const auto merged = mergeBlindResults(parts, per, mergeParams(), &stats);
  EXPECT_EQ(stats.mergedPairs, 2u);
  EXPECT_EQ(merged.size(), 2u);
}

}  // namespace
}  // namespace mcmcpar::partition
