#include <gtest/gtest.h>

#include <atomic>
#include <cmath>

#include "engine/registry.hpp"
#include "img/synth.hpp"

namespace mcmcpar::engine {
namespace {

img::Scene tinyScene(std::uint64_t seed) {
  img::SceneSpec spec = img::cellScene(80, 80, 4, 8.0, seed);
  spec.radiusStd = 0.5;
  return img::generateScene(spec);
}

Problem tinyProblem(const img::Scene& scene) {
  Problem problem;
  problem.filtered = &scene.image;
  problem.prior.radiusMean = 8.0;
  problem.prior.radiusStd = 1.0;
  problem.prior.radiusMin = 4.0;
  problem.prior.radiusMax = 13.0;
  return problem;
}

// ---------------------------------------------------------------------------
// OptionMap
// ---------------------------------------------------------------------------

TEST(OptionMap, ParsesTypedValuesAndTracksConsumption) {
  const OptionMap opts =
      OptionMap::parse({"chains=6", "heat-step=0.25", "parallel=on", "tag=x"});
  EXPECT_EQ(opts.uns("chains", 1), 6u);
  EXPECT_DOUBLE_EQ(opts.dbl("heat-step", 0.0), 0.25);
  EXPECT_TRUE(opts.flag("parallel", false));
  EXPECT_THROW(opts.requireConsumed("test"), EngineError);  // 'tag' unread
  EXPECT_EQ(opts.str("tag", ""), "x");
  EXPECT_NO_THROW(opts.requireConsumed("test"));
}

TEST(OptionMap, DefaultsApplyWhenKeyAbsent) {
  const OptionMap opts = OptionMap::parse({});
  EXPECT_EQ(opts.u64("iterations", 42), 42u);
  EXPECT_DOUBLE_EQ(opts.dbl("x", 1.5), 1.5);
  EXPECT_FALSE(opts.flag("y", false));
  EXPECT_EQ(opts.str("z", "fallback"), "fallback");
}

TEST(OptionMap, RejectsMalformedPairs) {
  EXPECT_THROW(OptionMap::parse({"novalue"}), EngineError);
  EXPECT_THROW(OptionMap::parse({"=5"}), EngineError);
  EXPECT_THROW(OptionMap::parse({"a=1", "a=2"}), EngineError);
}

TEST(OptionMap, DuplicateKeyErrorNamesBothConflictingValues) {
  // `--opt chains=4 --opt chains=8` must fail loudly with both values, not
  // silently keep one of them.
  try {
    (void)OptionMap::parse({"chains=4", "heat-step=0.2", "chains=8"});
    FAIL() << "expected EngineError";
  } catch (const EngineError& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("chains"), std::string::npos) << message;
    EXPECT_NE(message.find("chains=4"), std::string::npos) << message;
    EXPECT_NE(message.find("chains=8"), std::string::npos) << message;
  }
  // The same guard through the registry's option channel.
  EXPECT_THROW((void)StrategyRegistry::builtin().create(
                   "mc3", {}, {"chains=4", "chains=8"}),
               EngineError);
}

TEST(OptionMap, RejectsIllTypedValues) {
  const OptionMap opts =
      OptionMap::parse({"n=abc", "x=1.5zzz", "b=maybe", "big=99999999999"});
  EXPECT_THROW((void)opts.u64("n", 0), EngineError);
  EXPECT_THROW((void)opts.dbl("x", 0.0), EngineError);
  EXPECT_THROW((void)opts.flag("b", false), EngineError);
  EXPECT_THROW((void)opts.uns("big", 0), EngineError);  // > 32 bits
}

// ---------------------------------------------------------------------------
// StrategyRegistry
// ---------------------------------------------------------------------------

TEST(StrategyRegistry, BuiltinContainsEveryArchitecture) {
  const StrategyRegistry& registry = StrategyRegistry::builtin();
  // The paper's six, plus the sharding coordinator built on top of them.
  for (const char* name : {"serial", "speculative", "mc3", "periodic", "blind",
                           "intelligent", "sharded"}) {
    EXPECT_TRUE(registry.contains(name)) << name;
    EXPECT_TRUE(registry.info(name).factory != nullptr) << name;
  }
  EXPECT_EQ(registry.names().size(), 7u);
}

TEST(StrategyRegistry, UnknownNameErrorListsRegisteredStrategies) {
  const StrategyRegistry& registry = StrategyRegistry::builtin();
  try {
    (void)registry.create("sequental");  // typo on purpose
    FAIL() << "expected EngineError";
  } catch (const EngineError& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("sequental"), std::string::npos) << message;
    EXPECT_NE(message.find("'serial'"), std::string::npos) << message;
    EXPECT_NE(message.find("'periodic'"), std::string::npos) << message;
  }
}

TEST(StrategyRegistry, UnknownAndMalformedOptionsAreDescriptiveErrors) {
  const StrategyRegistry& registry = StrategyRegistry::builtin();
  // Unknown key for this strategy.
  try {
    (void)registry.create("serial", {}, {"lanes=4"});
    FAIL() << "expected EngineError";
  } catch (const EngineError& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("serial"), std::string::npos) << message;
    EXPECT_NE(message.find("lanes"), std::string::npos) << message;
  }
  // Malformed pair.
  EXPECT_THROW((void)registry.create("mc3", {}, {"chains"}), EngineError);
  // Well-formed key with a value of the wrong type.
  EXPECT_THROW((void)registry.create("mc3", {}, {"chains=lots"}), EngineError);
  // Domain validation inside the factory.
  EXPECT_THROW((void)registry.create("speculative", {}, {"lanes=0"}),
               EngineError);
  EXPECT_THROW((void)registry.create("mc3", {}, {"swap-interval=0"}),
               EngineError);
  EXPECT_THROW((void)registry.create("periodic", {}, {"executor=warp"}),
               EngineError);
}

TEST(StrategyRegistry, RunBeforePrepareIsAnError) {
  const auto strategy = StrategyRegistry::builtin().create("serial");
  auto run = [&] { (void)strategy->run(RunBudget{100, 0}); };
  EXPECT_THROW(run(), EngineError);
}

TEST(StrategyRegistry, NullImageIsAnError) {
  const auto strategy = StrategyRegistry::builtin().create("serial");
  EXPECT_THROW(strategy->prepare(Problem{}), EngineError);
}

// ---------------------------------------------------------------------------
// Round-trip: every registered strategy runs through the uniform interface
// and yields a populated RunReport.
// ---------------------------------------------------------------------------

TEST(EngineRoundTrip, EveryRegisteredStrategyProducesAPopulatedRunReport) {
  const img::Scene scene = tinyScene(11);
  const Problem problem = tinyProblem(scene);
  ExecResources resources;
  resources.threads = 1;
  resources.seed = 5;
  const Engine engine(resources);

  for (const std::string& name : engine.registry().names()) {
    SCOPED_TRACE(name);
    const RunReport report = engine.run(name, problem, RunBudget{1200, 0});

    EXPECT_EQ(report.strategy, name);
    EXPECT_FALSE(report.cancelled);
    EXPECT_GT(report.iterations, 0u);
    EXPECT_GT(report.wallSeconds, 0.0);
    EXPECT_GE(report.threadsUsed, 1u);
    // The chain proposed moves and recorded them.
    EXPECT_GT(report.diagnostics.totalProposed(), 0u);
    EXPECT_GT(report.acceptanceRate, 0.0);
    EXPECT_LT(report.acceptanceRate, 1.0);
    // A 4-artifact scene must end with a non-empty, sane model.
    EXPECT_GT(report.circles.size(), 0u);
    EXPECT_LT(report.circles.size(), 40u);
    EXPECT_TRUE(std::isfinite(report.logPosterior));
    EXPECT_NE(report.logPosterior, 0.0);
  }
}

TEST(EngineRoundTrip, ExtrasVariantMatchesTheRegistryContract) {
  const img::Scene scene = tinyScene(12);
  const Problem problem = tinyProblem(scene);
  const Engine engine(ExecResources{1, false, 7});

  const auto holds = [&](const std::string& name, auto tag) {
    const RunReport report = engine.run(name, problem, RunBudget{800, 0});
    return std::holds_alternative<decltype(tag)>(report.extras);
  };
  EXPECT_TRUE(holds("serial", std::monostate{}));
  EXPECT_TRUE(holds("speculative", spec::SpeculativeStats{}));
  EXPECT_TRUE(holds("mc3", mcmc::Mc3Stats{}));
  EXPECT_TRUE(holds("periodic", core::PeriodicReport{}));
  EXPECT_TRUE(holds("blind", core::PipelineReport{}));
  EXPECT_TRUE(holds("intelligent", core::PipelineReport{}));
}

TEST(EngineRoundTrip, StrategyOptionsReachTheDriver) {
  const img::Scene scene = tinyScene(13);
  const Problem problem = tinyProblem(scene);
  const Engine engine(ExecResources{1, false, 7});

  const RunReport report = engine.run("mc3", problem, RunBudget{600, 0}, {},
                                      {"chains=2", "swap-interval=50"});
  const auto& stats = std::get<mcmc::Mc3Stats>(report.extras);
  EXPECT_EQ(stats.iterationsPerChain, 600u);
  EXPECT_EQ(stats.swapProposed, 600u / 50u);
}

TEST(EngineRoundTrip, SameSeedIsReproducibleAcrossEngineCalls) {
  const img::Scene scene = tinyScene(14);
  const Problem problem = tinyProblem(scene);
  const Engine engine(ExecResources{1, false, 21});

  const RunReport a = engine.run("serial", problem, RunBudget{2000, 0});
  const RunReport b = engine.run("serial", problem, RunBudget{2000, 0});
  EXPECT_EQ(a.circles.size(), b.circles.size());
  EXPECT_DOUBLE_EQ(a.logPosterior, b.logPosterior);
}

// ---------------------------------------------------------------------------
// RunHooks: progress/trace observers and cancellation.
// ---------------------------------------------------------------------------

TEST(RunHooks, ProgressAndTraceObserversFire) {
  const img::Scene scene = tinyScene(15);
  const Problem problem = tinyProblem(scene);
  const Engine engine(ExecResources{1, false, 3});

  std::uint64_t progressBeats = 0;
  std::uint64_t tracePoints = 0;
  RunHooks hooks;
  hooks.onProgress = [&](const RunProgress& p) {
    EXPECT_LE(p.done, p.total);
    ++progressBeats;
  };
  hooks.onTrace = [&](const mcmc::TracePoint&) { ++tracePoints; };

  const RunReport report =
      engine.run("serial", problem, RunBudget{2000, 500}, hooks);
  EXPECT_FALSE(report.cancelled);
  EXPECT_GT(progressBeats, 0u);
  EXPECT_EQ(tracePoints, 4u);  // 2000 iterations / 500 cadence
}

// Cancellation must stop within one polling quantum and still return a
// consistent partial report — for the serial baseline and for a parallel
// strategy (periodic partitioning with its pool executor).
class CancellationTest : public ::testing::TestWithParam<const char*> {};

TEST_P(CancellationTest, MidRunCancellationYieldsConsistentPartialReport) {
  const img::Scene scene = tinyScene(16);
  const Problem problem = tinyProblem(scene);
  // threads=2 exercises the pooled local executor for "periodic".
  const Engine engine(ExecResources{2, false, 9});

  // Allow a handful of polls, then request cancellation forever after.
  std::atomic<int> polls{0};
  RunHooks hooks;
  hooks.cancelRequested = [&polls] { return ++polls > 3; };

  const RunBudget budget{200000, 0};
  const RunReport report = engine.run(GetParam(), problem, budget, hooks);

  EXPECT_TRUE(report.cancelled);
  EXPECT_LT(report.iterations, budget.iterations);
  // The partial report is still populated and internally consistent.
  EXPECT_GT(report.iterations, 0u);
  EXPECT_GT(report.diagnostics.totalProposed(), 0u);
  EXPECT_FALSE(report.circles.empty());
  EXPECT_TRUE(std::isfinite(report.logPosterior));
}

INSTANTIATE_TEST_SUITE_P(SerialAndParallel, CancellationTest,
                         ::testing::Values("serial", "periodic", "mc3",
                                           "blind"));

TEST(RunHooks, ImmediateCancellationStillReturnsAReport) {
  const img::Scene scene = tinyScene(17);
  const Problem problem = tinyProblem(scene);
  const Engine engine(ExecResources{1, false, 9});

  RunHooks hooks;
  hooks.cancelRequested = [] { return true; };
  const RunReport report =
      engine.run("serial", problem, RunBudget{50000, 0}, hooks);
  EXPECT_TRUE(report.cancelled);
  EXPECT_EQ(report.iterations, 0u);
}

}  // namespace
}  // namespace mcmcpar::engine
