#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>
#include <vector>

#include "img/disc_raster.hpp"
#include "img/filters.hpp"
#include "img/image.hpp"
#include "img/integral_image.hpp"
#include "img/overlay.hpp"
#include "img/pnm_io.hpp"
#include "img/synth.hpp"
#include "rng/stream.hpp"

namespace mcmcpar::img {
namespace {

TEST(Image, ConstructionAndAccess) {
  ImageF im(4, 3, 0.5f);
  EXPECT_EQ(im.width(), 4);
  EXPECT_EQ(im.height(), 3);
  EXPECT_EQ(im.pixelCount(), 12u);
  EXPECT_FLOAT_EQ(im(2, 1), 0.5f);
  im(2, 1) = 0.75f;
  EXPECT_FLOAT_EQ(im(2, 1), 0.75f);
  EXPECT_TRUE(im.contains(0, 0));
  EXPECT_TRUE(im.contains(3, 2));
  EXPECT_FALSE(im.contains(4, 0));
  EXPECT_FALSE(im.contains(-1, 0));
}

TEST(Image, RowPointerConsistency) {
  ImageF im(5, 4);
  im(3, 2) = 9.0f;
  EXPECT_FLOAT_EQ(im.row(2)[3], 9.0f);
}

TEST(Image, CropExtractsSubRect) {
  ImageF im(6, 5);
  for (int y = 0; y < 5; ++y) {
    for (int x = 0; x < 6; ++x) im(x, y) = static_cast<float>(10 * y + x);
  }
  const ImageF c = im.crop(2, 1, 3, 2);
  EXPECT_EQ(c.width(), 3);
  EXPECT_EQ(c.height(), 2);
  EXPECT_FLOAT_EQ(c(0, 0), 12.0f);
  EXPECT_FLOAT_EQ(c(2, 1), 24.0f);
}

TEST(Image, MinMaxAndNormalise) {
  ImageF im(3, 1);
  im(0, 0) = 2.0f;
  im(1, 0) = 4.0f;
  im(2, 0) = 6.0f;
  const auto mm = minMax(im);
  EXPECT_FLOAT_EQ(mm.minValue, 2.0f);
  EXPECT_FLOAT_EQ(mm.maxValue, 6.0f);
  const ImageF n = normalised(im);
  EXPECT_FLOAT_EQ(n(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(n(1, 0), 0.5f);
  EXPECT_FLOAT_EQ(n(2, 0), 1.0f);
}

TEST(Image, NormaliseConstantImageIsZero) {
  const ImageF n = normalised(ImageF(4, 4, 3.0f));
  for (float v : n.pixels()) EXPECT_FLOAT_EQ(v, 0.0f);
}

TEST(Image, U8RoundTrip) {
  ImageF im(2, 1);
  im(0, 0) = 0.25f;
  im(1, 0) = 1.5f;  // clamped
  const ImageU8 u = toU8(im);
  EXPECT_EQ(u(0, 0), 64);
  EXPECT_EQ(u(1, 0), 255);
  const ImageF f = toF(u);
  EXPECT_NEAR(f(0, 0), 0.25f, 1.0f / 255.0f);
  EXPECT_FLOAT_EQ(f(1, 0), 1.0f);
}

TEST(PnmIo, PgmBinaryRoundTrip) {
  ImageU8 im(7, 3);
  for (std::size_t i = 0; i < im.pixelCount(); ++i) {
    im.pixels()[i] = static_cast<std::uint8_t>(i * 11 % 256);
  }
  std::stringstream buf;
  writePgm(im, buf);
  const ImageU8 back = readPgm(buf);
  EXPECT_EQ(back, im);
}

TEST(PnmIo, PpmBinaryRoundTrip) {
  ImageRgb im(3, 2);
  im(0, 0) = Rgb{1, 2, 3};
  im(2, 1) = Rgb{200, 100, 50};
  std::stringstream buf;
  writePpm(im, buf);
  const ImageRgb back = readPpm(buf);
  EXPECT_EQ(back, im);
}

TEST(PnmIo, ParsesAsciiPgmWithComments) {
  std::stringstream buf("P2\n# a comment\n2 2\n255\n0 64\n128 255\n");
  const ImageU8 im = readPgm(buf);
  EXPECT_EQ(im(0, 0), 0);
  EXPECT_EQ(im(1, 0), 64);
  EXPECT_EQ(im(0, 1), 128);
  EXPECT_EQ(im(1, 1), 255);
}

TEST(PnmIo, RejectsBadMagic) {
  std::stringstream buf("P9\n2 2\n255\n");
  EXPECT_THROW(readPgm(buf), PnmError);
}

TEST(PnmIo, RejectsTruncatedPayload) {
  std::stringstream buf("P5\n4 4\n255\nxx");
  EXPECT_THROW(readPgm(buf), PnmError);
}

TEST(PnmIo, RejectsOverlargeMaxval) {
  std::stringstream buf("P5\n2 2\n65535\n");
  EXPECT_THROW(readPgm(buf), PnmError);
}

TEST(Filters, ThresholdBinarises) {
  ImageF im(3, 1);
  im(0, 0) = 0.2f;
  im(1, 0) = 0.6f;
  im(2, 0) = 0.5f;  // not strictly above
  const ImageF t = threshold(im, 0.5f);
  EXPECT_FLOAT_EQ(t(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(t(1, 0), 1.0f);
  EXPECT_FLOAT_EQ(t(2, 0), 0.0f);
}

TEST(Filters, CountAboveThresholdWholeAndRect) {
  ImageF im(4, 4, 0.0f);
  im(1, 1) = 1.0f;
  im(2, 2) = 1.0f;
  im(3, 3) = 1.0f;
  EXPECT_EQ(countAboveThreshold(im, 0.5f), 3u);
  EXPECT_EQ(countAboveThreshold(im, 0.5f, 0, 0, 2, 2), 1u);
  EXPECT_EQ(countAboveThreshold(im, 0.5f, 2, 2, 10, 10), 2u);  // clipped
}

TEST(Filters, StainEmphasisPicksChannel) {
  ImageRgb im(2, 1);
  im(0, 0) = Rgb{255, 0, 0};  // pure red: suppressed
  im(1, 0) = Rgb{0, 0, 255};  // pure blue: emphasised
  const ImageF f = stainEmphasis(im);
  EXPECT_FLOAT_EQ(f(0, 0), 0.0f);
  EXPECT_GT(f(1, 0), 0.9f);
}

TEST(Filters, BoxBlurPreservesMeanOnInterior) {
  // A constant image is a fixed point of the blur.
  const ImageF im(16, 16, 0.37f);
  const ImageF b = boxBlur(im, 2);
  for (float v : b.pixels()) EXPECT_NEAR(v, 0.37f, 1e-6f);
}

TEST(Filters, BoxBlurSmoothsAnImpulse) {
  ImageF im(9, 9, 0.0f);
  im(4, 4) = 1.0f;
  const ImageF b = boxBlur(im, 1);
  EXPECT_NEAR(b(4, 4), 1.0f / 9.0f, 1e-5f);
  EXPECT_NEAR(b(3, 3), 1.0f / 9.0f, 1e-5f);
  EXPECT_NEAR(b(0, 0), 0.0f, 1e-6f);
}

TEST(Filters, OccupancyVectors) {
  ImageF im(4, 3, 0.0f);
  im(1, 0) = 1.0f;
  im(1, 2) = 1.0f;
  im(3, 1) = 1.0f;
  const auto cols = columnOccupancy(im, 0.5f);
  const auto rows = rowOccupancy(im, 0.5f);
  EXPECT_EQ(cols, (std::vector<bool>{false, true, false, true}));
  EXPECT_EQ(rows, (std::vector<bool>{true, true, true}));
}

TEST(IntegralImage, MatchesBruteForceSums) {
  rng::Stream s(31);
  ImageF im(23, 17);
  for (float& v : im.pixels()) v = static_cast<float>(s.uniform());
  const IntegralImage integral(im);
  for (int trial = 0; trial < 200; ++trial) {
    const int x0 = static_cast<int>(s.below(23));
    const int y0 = static_cast<int>(s.below(17));
    const int w = 1 + static_cast<int>(s.below(23));
    const int h = 1 + static_cast<int>(s.below(17));
    double brute = 0.0;
    for (int y = y0; y < std::min(y0 + h, 17); ++y) {
      for (int x = x0; x < std::min(x0 + w, 23); ++x) {
        brute += im(x, y);
      }
    }
    EXPECT_NEAR(integral.sum(x0, y0, w, h), brute, 1e-6);
  }
}

TEST(IntegralImage, MeanOfEmptyRectIsZero) {
  const IntegralImage integral(ImageF(4, 4, 1.0f));
  EXPECT_EQ(integral.mean(2, 2, 0, 5), 0.0);
  EXPECT_NEAR(integral.mean(0, 0, 4, 4), 1.0, 1e-12);
}

TEST(DiscRaster, PixelCountApproximatesArea) {
  // Large disc: pixel count converges to pi r^2.
  const double r = 20.0;
  const auto count = discPixelCount(50.0, 50.0, r, 100, 100);
  EXPECT_NEAR(static_cast<double>(count), M_PI * r * r, 0.02 * M_PI * r * r);
}

TEST(DiscRaster, SpansMatchForEach) {
  const double cx = 10.3, cy = 7.8, r = 5.4;
  std::size_t viaForEach = 0;
  forEachDiscPixel(cx, cy, r, 32, 32, [&](int x, int y) {
    EXPECT_TRUE(pixelInDisc(x, y, cx, cy, r));
    ++viaForEach;
  });
  std::size_t viaSpans = 0;
  for (const Span& sp : discSpans(cx, cy, r, 32, 32)) {
    viaSpans += static_cast<std::size_t>(sp.x1 - sp.x0);
  }
  EXPECT_EQ(viaForEach, viaSpans);
  EXPECT_EQ(viaForEach, discPixelCount(cx, cy, r, 32, 32));
}

TEST(DiscRaster, EveryInteriorPixelEnumerated) {
  // Exhaustive cross-check against the membership predicate.
  const double cx = 8.5, cy = 9.5, r = 4.0;
  std::vector<bool> hit(20 * 20, false);
  forEachDiscPixel(cx, cy, r, 20, 20, [&](int x, int y) {
    hit[static_cast<std::size_t>(y * 20 + x)] = true;
  });
  for (int y = 0; y < 20; ++y) {
    for (int x = 0; x < 20; ++x) {
      EXPECT_EQ(hit[static_cast<std::size_t>(y * 20 + x)],
                pixelInDisc(x, y, cx, cy, r))
          << "(" << x << "," << y << ")";
    }
  }
}

TEST(DiscRaster, ClipsAtBorders) {
  std::size_t n = 0;
  forEachDiscPixel(0.0, 0.0, 5.0, 16, 16, [&](int x, int y) {
    ASSERT_GE(x, 0);
    ASSERT_GE(y, 0);
    ++n;
  });
  // Roughly a quarter disc.
  EXPECT_GT(n, 10u);
  EXPECT_LT(n, 30u);
}

TEST(DiscRaster, ZeroRadiusIsEmpty) {
  EXPECT_EQ(discPixelCount(5, 5, 0.0, 10, 10), 0u);
  EXPECT_TRUE(discSpans(5, 5, -1.0, 10, 10).empty());
}

TEST(DiscRaster, SpanAndPixelEnumerationsAgreeExhaustively) {
  // Exhaustive sweep over interior, edge-clipped, fully-outside and
  // giant-radius discs: forEachDiscSpan, forEachDiscPixel and discSpans must
  // enumerate exactly the pixelInDisc set (proves the tightened floor-based
  // row bound dropped no pixels).
  const int W = 24, H = 19;
  const double centres[] = {-6.0, -0.5, 0.0, 3.7, 11.25, 12.5, 18.9, 30.5};
  const double radii[] = {0.4, 1.0, 2.5, 3.75, 6.0, 9.5, 14.0, 500.0};
  for (double cx : centres) {
    for (double cy : centres) {
      for (double r : radii) {
        std::vector<char> bySpan(W * H, 0), byPixel(W * H, 0), byList(W * H, 0);
        forEachDiscSpan(cx, cy, r, W, H, [&](int y, int x0, int x1) {
          ASSERT_LT(x0, x1);
          ASSERT_GE(x0, 0);
          ASSERT_LE(x1, W);
          ASSERT_GE(y, 0);
          ASSERT_LT(y, H);
          for (int x = x0; x < x1; ++x) {
            bySpan[static_cast<std::size_t>(y * W + x)] = 1;
          }
        });
        forEachDiscPixel(cx, cy, r, W, H, [&](int x, int y) {
          byPixel[static_cast<std::size_t>(y * W + x)] = 1;
        });
        for (const Span& sp : discSpans(cx, cy, r, W, H)) {
          for (int x = sp.x0; x < sp.x1; ++x) {
            byList[static_cast<std::size_t>(sp.y * W + x)] = 1;
          }
        }
        for (int y = 0; y < H; ++y) {
          for (int x = 0; x < W; ++x) {
            const std::size_t i = static_cast<std::size_t>(y * W + x);
            const bool member = pixelInDisc(x, y, cx, cy, r);
            ASSERT_EQ(static_cast<bool>(bySpan[i]), member)
                << "span set: cx=" << cx << " cy=" << cy << " r=" << r << " ("
                << x << "," << y << ")";
            ASSERT_EQ(bySpan[i], byPixel[i]);
            ASSERT_EQ(bySpan[i], byList[i]);
          }
        }
      }
    }
  }
}

TEST(DiscRaster, RowBoundsAreTight) {
  // The floor-based bounds: discRowRange matches the analytic tight range
  // ceil(cy-r-0.5) .. floor(cy+r-0.5), every row in it satisfies
  // |y+0.5-cy| <= r (i.e. CAN contain disc pixels — the old ceil-based
  // bound visited a row beyond that), and no enumerated pixel row falls
  // outside it.
  const double cases[][3] = {{16.5, 16.5, 7.0},  {15.3, 17.8, 6.4},
                             {16.0, 16.0, 5.5},  {14.25, 18.75, 9.1},
                             {16.5, 16.5, 0.75}, {17.1, 15.2, 3.0}};
  for (const auto& c : cases) {
    const double cx = c[0], cy = c[1], r = c[2];
    const RowRange rows = discRowRange(cy, r, 64);
    EXPECT_EQ(rows.y0, static_cast<int>(std::ceil(cy - r - 0.5)));
    EXPECT_EQ(rows.y1, static_cast<int>(std::floor(cy + r - 0.5)));
    for (int y = rows.y0; y <= rows.y1; ++y) {
      const double dy = (y + 0.5) - cy;
      EXPECT_LE(dy * dy, r * r)
          << "row " << y << " cannot contain disc pixels";
    }
    // The previous ceil-based upper bound visited one extra impossible row
    // whenever cy+r-0.5 was not an exact integer.
    const int oldHi = static_cast<int>(std::ceil(cy + r - 0.5));
    if (oldHi != rows.y1) {
      const double dy = (oldHi + 0.5) - cy;
      EXPECT_GT(dy * dy, r * r) << "cx=" << cx << " cy=" << cy << " r=" << r;
    }
    int firstRow = 1 << 30, lastRow = -(1 << 30);
    forEachDiscSpan(cx, cy, r, 64, 64, [&](int y, int x0, int x1) {
      EXPECT_LT(x0, x1);  // only non-empty rows are visited
      firstRow = std::min(firstRow, y);
      lastRow = std::max(lastRow, y);
    });
    EXPECT_GE(firstRow, rows.y0);
    EXPECT_LE(lastRow, rows.y1);
    // No pixel was dropped: brute force over the membership rule agrees on
    // the extreme non-empty rows.
    int bruteFirst = 1 << 30, bruteLast = -(1 << 30);
    for (int y = 0; y < 64; ++y) {
      for (int x = 0; x < 64; ++x) {
        if (pixelInDisc(x, y, cx, cy, r)) {
          bruteFirst = std::min(bruteFirst, y);
          bruteLast = std::max(bruteLast, y);
        }
      }
    }
    EXPECT_EQ(firstRow, bruteFirst) << "cx=" << cx << " cy=" << cy << " r=" << r;
    EXPECT_EQ(lastRow, bruteLast) << "cx=" << cx << " cy=" << cy << " r=" << r;
  }
}

TEST(DiscRaster, SpansReservationClampedForGiantRadii) {
  // A giant disc on a small raster must not over-allocate: one span per
  // clipped row is the exact bound (the old 2r+2 reserve requested ~2e9
  // entries here).
  const std::vector<Span> spans = discSpans(8.0, 8.0, 1e9, 16, 16);
  EXPECT_EQ(spans.size(), 16u);
  EXPECT_LE(spans.capacity(), 16u);
  for (const Span& sp : spans) {
    EXPECT_EQ(sp.x0, 0);
    EXPECT_EQ(sp.x1, 16);
  }
}

TEST(DiscRaster, DiscRowSpanMatchesEnumeratedSpans) {
  // discRowSpan is the per-row primitive deltaReplace subtracts with; it
  // must reproduce forEachDiscSpan's spans row for row and report empty rows
  // outside the disc.
  const double cx = 9.7, cy = 11.2, r = 6.3;
  std::vector<RowSpan> enumerated(32, RowSpan{0, 0});
  forEachDiscSpan(cx, cy, r, 32, 32, [&](int y, int x0, int x1) {
    enumerated[static_cast<std::size_t>(y)] = RowSpan{x0, x1};
  });
  for (int y = 0; y < 32; ++y) {
    const RowSpan s = discRowSpan(cx, cy, r, y, 32);
    if (s.x0 < s.x1) {
      EXPECT_EQ(s.x0, enumerated[static_cast<std::size_t>(y)].x0);
      EXPECT_EQ(s.x1, enumerated[static_cast<std::size_t>(y)].x1);
    } else {
      EXPECT_EQ(enumerated[static_cast<std::size_t>(y)].x0,
                enumerated[static_cast<std::size_t>(y)].x1);
    }
  }
}

TEST(DiscRaster, RenderSoftDiscClampsToOne) {
  ImageF im(32, 32, 0.8f);
  renderSoftDisc(im, 16, 16, 6, 0.9f, 1.5);
  for (float v : im.pixels()) {
    ASSERT_LE(v, 1.0f);
    ASSERT_GE(v, 0.0f);
  }
  EXPECT_FLOAT_EQ(im(16, 16), 1.0f);
}

TEST(Synth, DeterministicForSeed) {
  const SceneSpec spec = cellScene(96, 96, 10, 6.0, 77);
  const Scene a = generateScene(spec);
  const Scene b = generateScene(spec);
  EXPECT_EQ(a.image, b.image);
  ASSERT_EQ(a.truth.size(), b.truth.size());
}

TEST(Synth, HonoursRequestedCount) {
  const Scene scene = generateScene(cellScene(256, 256, 40, 7.0, 5));
  EXPECT_EQ(scene.truth.size(), 40u);
}

TEST(Synth, DiscsAreBrightAgainstBackground) {
  SceneSpec spec = cellScene(128, 128, 6, 9.0, 21);
  spec.noiseStd = 0.0f;
  const Scene scene = generateScene(spec);
  for (const SceneCircle& c : scene.truth) {
    EXPECT_GT(scene.image(static_cast<int>(c.x), static_cast<int>(c.y)),
              0.7f);
  }
  EXPECT_LT(scene.image(0, 0), 0.2f);
}

TEST(Synth, BeadsSceneMatchesTable1Geometry) {
  const SceneSpec spec = beadsScene(3);
  const Scene scene = generateScene(spec);
  EXPECT_EQ(scene.image.width() * scene.image.height(), 512 * 416);
  EXPECT_EQ(scene.truth.size(), 48u);  // 6 + 38 + 4
  // The inter-cluster gaps must stay empty so the intelligent partitioner
  // can cut: columns 80..95 and 420..435 hold no bead pixels.
  for (const SceneCircle& c : scene.truth) {
    const bool inGapA = c.x + c.r > 80 && c.x - c.r < 95;
    const bool inGapB = c.x + c.r > 420 && c.x - c.r < 435;
    EXPECT_FALSE(inGapA || inGapB) << "bead at x=" << c.x;
  }
}

TEST(Overlay, DrawsWithinBounds) {
  ImageRgb im = greyToRgb(ImageF(32, 32, 0.5f));
  drawCircle(im, 16, 16, 10, Rgb{255, 0, 0});
  drawCircle(im, 0, 0, 50, Rgb{0, 255, 0});  // mostly outside: must not crash
  drawRect(im, -5, -5, 20, 20, Rgb{0, 0, 255});
  drawVerticalLines(im, {-1, 5, 99}, Rgb{255, 255, 0});
  drawHorizontalLines(im, {3}, Rgb{0, 255, 255});
  // Spot-check a circle pixel.
  EXPECT_EQ(im(26, 16).r, 255);
}

TEST(Overlay, GreyToRgbValues) {
  ImageF g(1, 1, 0.5f);
  const ImageRgb rgb = greyToRgb(g);
  EXPECT_EQ(rgb(0, 0).r, 128);
  EXPECT_EQ(rgb(0, 0).g, 128);
  EXPECT_EQ(rgb(0, 0).b, 128);
}

}  // namespace
}  // namespace mcmcpar::img
