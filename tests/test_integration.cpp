#include <gtest/gtest.h>

#include <cmath>

#include "analysis/anomaly.hpp"
#include "analysis/metrics.hpp"
#include "core/periodic_sampler.hpp"
#include "core/pipeline.hpp"
#include "img/synth.hpp"
#include "mcmc/convergence.hpp"
#include "mcmc/sampler.hpp"
#include "spec/speculative.hpp"

namespace mcmcpar {
namespace {

model::PriorParams scenePrior() {
  model::PriorParams p;
  p.radiusMean = 8.0;
  p.radiusStd = 0.8;
  p.radiusMin = 3.0;
  p.radiusMax = 14.0;
  p.overlapPenalty = 10.0;
  return p;
}

std::vector<model::Circle> truthToCircles(const img::Scene& scene) {
  std::vector<model::Circle> out;
  for (const auto& t : scene.truth) out.push_back(model::Circle{t.x, t.y, t.r});
  return out;
}

/// End-to-end: the sequential reference chain recovers a 25-cell scene.
TEST(Integration, SequentialChainRecoversScene) {
  img::SceneSpec spec = img::cellScene(256, 256, 25, 8.0, 71);
  spec.radiusStd = 0.5;
  const img::Scene scene = img::generateScene(spec);

  model::PriorParams prior = scenePrior();
  prior.expectedCount = 25.0;
  model::ModelState state(scene.image, prior, model::LikelihoodParams{});
  rng::Stream s(72);
  state.initialiseRandom(25, s);

  const mcmc::MoveRegistry registry = mcmc::MoveRegistry::caseStudy();
  mcmc::Sampler sampler(state, registry, s);
  sampler.run(60000, 500);

  const auto q = analysis::scoreCircles(state.config().snapshot(),
                                        truthToCircles(scene), 6.0);
  EXPECT_GE(q.f1, 0.8);
  EXPECT_LT(q.centreRmse, 2.5);
  EXPECT_NEAR(state.logPosterior(), state.recomputeLogPosterior(), 1e-5);

  // The trace converges by the plateau rule.
  const auto plateau = mcmc::iterationsToPlateau(sampler.diagnostics().trace());
  ASSERT_TRUE(plateau.has_value());
  EXPECT_LT(plateau->iteration, 60000u);
}

/// The headline statistical claim of §V: periodic partitioning reaches the
/// same quality as the sequential chain.
TEST(Integration, PeriodicMatchesSequentialQuality) {
  img::SceneSpec spec = img::cellScene(256, 256, 25, 8.0, 73);
  spec.radiusStd = 0.5;
  const img::Scene scene = img::generateScene(spec);
  const auto truth = truthToCircles(scene);

  const auto runSequential = [&](std::uint64_t seed) {
    model::PriorParams prior = scenePrior();
    prior.expectedCount = 25.0;
    model::ModelState state(scene.image, prior, model::LikelihoodParams{});
    rng::Stream s(seed);
    state.initialiseRandom(25, s);
    const mcmc::MoveRegistry registry = mcmc::MoveRegistry::caseStudy();
    mcmc::Sampler sampler(state, registry, s);
    sampler.run(50000);
    return analysis::scoreCircles(state.config().snapshot(), truth, 6.0);
  };

  const auto runPeriodic = [&](std::uint64_t seed) {
    model::PriorParams prior = scenePrior();
    prior.expectedCount = 25.0;
    model::ModelState state(scene.image, prior, model::LikelihoodParams{});
    rng::Stream s(seed);
    state.initialiseRandom(25, s);
    const mcmc::MoveRegistry registry = mcmc::MoveRegistry::caseStudy();
    core::PeriodicParams params;
    params.totalIterations = 50000;
    params.globalPhaseIterations = 52;  // ~130 total per cycle at qg=0.4
    params.executor = core::LocalExecutor::SplitMergeSerial;
    core::PeriodicSampler sampler(state, registry, params, seed);
    sampler.run();
    return analysis::scoreCircles(state.config().snapshot(), truth, 6.0);
  };

  const auto seqQ = runSequential(81);
  const auto perQ = runPeriodic(81);
  EXPECT_GE(seqQ.f1, 0.8);
  EXPECT_GE(perQ.f1, 0.8);
  EXPECT_NEAR(perQ.f1, seqQ.f1, 0.15);
}

/// §V's bias safeguard: random per-phase grid offsets leave no persistent
/// boundary anomalies in the periodic result.
TEST(Integration, PeriodicLeavesNoBoundaryAnomalyExcess) {
  img::SceneSpec spec = img::cellScene(256, 256, 25, 8.0, 75);
  spec.radiusStd = 0.5;
  const img::Scene scene = img::generateScene(spec);

  model::PriorParams prior = scenePrior();
  prior.expectedCount = 25.0;
  model::ModelState state(scene.image, prior, model::LikelihoodParams{});
  rng::Stream s(76);
  state.initialiseRandom(25, s);
  const mcmc::MoveRegistry registry = mcmc::MoveRegistry::caseStudy();
  core::PeriodicParams params;
  params.totalIterations = 50000;
  params.globalPhaseIterations = 52;
  params.executor = core::LocalExecutor::SplitMergeSerial;
  core::PeriodicSampler sampler(state, registry, params, 77);
  sampler.run();

  // Audit against the *average* cross position (centre lines).
  const auto report = analysis::auditBoundaryAnomalies(
      state.config().snapshot(), truthToCircles(scene), {128.0}, {128.0}, 6.0,
      16.0, 5.0);
  // Misses/duplicates near the (hypothetical) boundary shouldn't dominate;
  // a few duplicate pairs are ordinary MCMC noise (overlapping detections),
  // what matters is that they don't concentrate at partition lines.
  EXPECT_LE(report.duplicatePairs, 5u);
  EXPECT_LE(report.missesNearBoundary, 3u);
}

/// Blind partitioning's merge heuristics leave no duplicated artifacts at
/// partition boundaries on a well-behaved scene (§IX "no apparent
/// anomalies").
TEST(Integration, BlindPartitioningNoBoundaryDuplicates) {
  img::SceneSpec spec = img::cellScene(192, 192, 14, 8.0, 79);
  spec.radiusStd = 0.5;
  const img::Scene scene = img::generateScene(spec);

  core::PipelineParams params;
  params.prior = scenePrior();
  params.iterationsBase = 2000;
  params.iterationsPerCircle = 500;
  params.seed = 80;
  const core::PipelineReport report =
      core::runBlindPipeline(scene.image, params);

  const auto anomalies = analysis::auditBoundaryAnomalies(
      report.merged, truthToCircles(scene), {96.0}, {96.0}, 6.0, 12.0, 5.0);
  EXPECT_EQ(anomalies.duplicatePairsNearBoundary, 0u);
  const auto q =
      analysis::scoreCircles(report.merged, truthToCircles(scene), 6.0);
  EXPECT_GE(q.f1, 0.7);
}

/// Determinism of the full periodic stack: same seeds, same result.
TEST(Integration, PeriodicFullyDeterministic) {
  img::SceneSpec spec = img::cellScene(192, 192, 12, 8.0, 83);
  const img::Scene scene = img::generateScene(spec);

  const auto run = [&] {
    model::PriorParams prior = scenePrior();
    prior.expectedCount = 12.0;
    model::ModelState state(scene.image, prior, model::LikelihoodParams{});
    rng::Stream s(84);
    state.initialiseRandom(12, s);
    const mcmc::MoveRegistry registry = mcmc::MoveRegistry::caseStudy();
    core::PeriodicParams params;
    params.totalIterations = 12000;
    params.globalPhaseIterations = 40;
    params.executor = core::LocalExecutor::Serial;
    core::PeriodicSampler sampler(state, registry, params, 85);
    sampler.run();
    return state.config().snapshot();
  };
  const auto a = run();
  const auto b = run();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

/// Speculative chains sample the same posterior: quality parity with the
/// plain sequential sampler on the same scene and budget.
TEST(Integration, SpeculativeQualityParity) {
  img::SceneSpec sceneSpec = img::cellScene(192, 192, 12, 8.0, 87);
  sceneSpec.radiusStd = 0.5;
  const img::Scene scene = img::generateScene(sceneSpec);
  const auto truth = truthToCircles(scene);

  model::PriorParams prior = scenePrior();
  prior.expectedCount = 12.0;

  model::ModelState seq(scene.image, prior, model::LikelihoodParams{});
  model::ModelState specState(scene.image, prior, model::LikelihoodParams{});
  rng::Stream s1(88), s2(88);
  seq.initialiseRandom(12, s1);
  specState.initialiseRandom(12, s2);

  const mcmc::MoveRegistry registry = mcmc::MoveRegistry::caseStudy();
  mcmc::Sampler sampler(seq, registry, 89);
  sampler.run(30000);

  spec::SpeculativeExecutor exec(specState, registry, 4, 90);
  exec.run(30000);

  const auto qSeq = analysis::scoreCircles(seq.config().snapshot(), truth, 6.0);
  const auto qSpec =
      analysis::scoreCircles(specState.config().snapshot(), truth, 6.0);
  EXPECT_GE(qSeq.f1, 0.75);
  EXPECT_GE(qSpec.f1, 0.75);
}

}  // namespace
}  // namespace mcmcpar
