#include <gtest/gtest.h>

#include "img/filters.hpp"
#include "img/synth.hpp"
#include "partition/intelligent.hpp"

namespace mcmcpar::partition {
namespace {

TEST(GapCutPositions, NoGapNoCut) {
  EXPECT_TRUE(gapCutPositions({true, true, true}, 1).empty());
}

TEST(GapCutPositions, CentreOfInteriorGap) {
  // occupied: [T T F F F F T] -> gap [2,6), centre 2 + 4/2 = 4.
  const std::vector<bool> occ{true, true, false, false, false, false, true};
  const auto cuts = gapCutPositions(occ, 2);
  ASSERT_EQ(cuts.size(), 1u);
  EXPECT_EQ(cuts[0], 4);
}

TEST(GapCutPositions, LeadingTrailingGapsIgnored) {
  const std::vector<bool> occ{false, false, true, true, false, false};
  EXPECT_TRUE(gapCutPositions(occ, 1).empty());
}

TEST(GapCutPositions, MinGapFilters) {
  const std::vector<bool> occ{true, false, true, false, false, false, true};
  EXPECT_TRUE(gapCutPositions(occ, 2).size() == 1);
  EXPECT_TRUE(gapCutPositions(occ, 4).empty());
}

TEST(GapCutPositions, MultipleGaps) {
  std::vector<bool> occ(30, false);
  for (int i : {2, 3, 12, 13, 25, 26}) occ[static_cast<std::size_t>(i)] = true;
  const auto cuts = gapCutPositions(occ, 3);
  ASSERT_EQ(cuts.size(), 2u);
  EXPECT_GT(cuts[0], 3);
  EXPECT_LT(cuts[0], 12);
  EXPECT_GT(cuts[1], 13);
  EXPECT_LT(cuts[1], 25);
}

TEST(IntelligentPartition, UncuttableImageIsOnePartition) {
  // All-bright image: no empty rows/columns anywhere.
  const img::ImageF bright(64, 64, 1.0f);
  const auto result = intelligentPartition(bright);
  ASSERT_EQ(result.partitions.size(), 1u);
  EXPECT_EQ(result.partitions[0], (IRect{0, 0, 64, 64}));
}

TEST(IntelligentPartition, EmptyImageIsOnePartition) {
  const img::ImageF empty(64, 64, 0.0f);
  const auto result = intelligentPartition(empty);
  EXPECT_EQ(result.partitions.size(), 1u);
}

TEST(IntelligentPartition, SplitsTwoBlobs) {
  img::ImageF im(100, 40, 0.0f);
  for (int y = 10; y < 30; ++y) {
    for (int x = 5; x < 25; ++x) im(x, y) = 1.0f;
    for (int x = 70; x < 95; ++x) im(x, y) = 1.0f;
  }
  IntelligentParams params;
  params.minPartitionSize = 10;
  const auto result = intelligentPartition(im, params);
  ASSERT_EQ(result.partitions.size(), 2u);
  ASSERT_EQ(result.verticalCuts.size(), 1u);
  // Cut is equidistant between the blobs' facing edges (24 and 70).
  EXPECT_NEAR(result.verticalCuts[0], 47, 2);
}

TEST(IntelligentPartition, PartitionsTileTheImage) {
  const img::Scene scene = img::generateScene(img::beadsScene(5));
  const auto result = intelligentPartition(scene.image, {0.5f, 3, 24, 8});
  long long area = 0;
  for (const IRect& r : result.partitions) area += r.area();
  EXPECT_EQ(area, static_cast<long long>(scene.image.width()) *
                      scene.image.height());
}

TEST(IntelligentPartition, BeadsSceneYieldsThreeColumnStrips) {
  const img::Scene scene = img::generateScene(img::beadsScene(7));
  const auto result = intelligentPartition(scene.image, {0.5f, 3, 24, 8});
  EXPECT_GE(result.partitions.size(), 3u);
  EXPECT_GE(result.verticalCuts.size(), 2u);
}

TEST(IntelligentPartition, NoArtifactSpansACut) {
  // The defining guarantee: every truth circle lies fully inside exactly
  // one partition.
  const img::Scene scene = img::generateScene(img::beadsScene(9));
  const auto result = intelligentPartition(scene.image, {0.5f, 3, 24, 8});
  for (const img::SceneCircle& c : scene.truth) {
    int containing = 0;
    for (const IRect& r : result.partitions) {
      const bool fully = c.x - c.r >= r.x0 && c.x + c.r <= r.x0 + r.w &&
                         c.y - c.r >= r.y0 && c.y + c.r <= r.y0 + r.h;
      containing += fully;
    }
    EXPECT_EQ(containing, 1) << "bead at (" << c.x << "," << c.y << ")";
  }
}

TEST(IntelligentPartition, StripSeparatingCutsRunThroughEmptyColumns) {
  // Cuts made below the top level are only empty within their own band, so
  // check the two top-level strip separators: one cut must land in each
  // inter-cluster gap (columns 80..95 and 420..435), and those cut columns
  // must be empty over the full image height.
  const img::Scene scene = img::generateScene(img::beadsScene(11));
  const auto result = intelligentPartition(scene.image, {0.5f, 3, 24, 8});
  bool gapA = false, gapB = false;
  for (int cut : result.verticalCuts) {
    const bool inA = cut >= 80 && cut <= 95;
    const bool inB = cut >= 420 && cut <= 435;
    if (!(inA || inB)) continue;
    gapA |= inA;
    gapB |= inB;
    for (int y = 0; y < scene.image.height(); ++y) {
      ASSERT_LE(scene.image(cut, y), 0.5f) << "cut " << cut << " at y " << y;
    }
  }
  EXPECT_TRUE(gapA);
  EXPECT_TRUE(gapB);
}

TEST(IntelligentPartition, MinPartitionSizeRespected) {
  const img::Scene scene = img::generateScene(img::beadsScene(13));
  IntelligentParams params;
  params.minPartitionSize = 30;
  const auto result = intelligentPartition(scene.image, params);
  for (const IRect& r : result.partitions) {
    EXPECT_GE(r.w, 30);
    EXPECT_GE(r.h, 30);
  }
}

}  // namespace
}  // namespace mcmcpar::partition
