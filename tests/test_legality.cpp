#include <gtest/gtest.h>

#include <numeric>

#include "img/synth.hpp"
#include "partition/legality.hpp"

namespace mcmcpar::partition {
namespace {

model::PriorParams priorParams() {
  model::PriorParams p;
  p.expectedCount = 10.0;
  p.radiusMean = 6.0;
  p.radiusStd = 1.0;
  p.radiusMin = 2.0;
  p.radiusMax = 12.0;
  return p;
}

TEST(ModifiableCircles, MatchesBruteForceFilter) {
  img::Scene scene = img::generateScene(img::cellScene(128, 128, 10, 6.0, 1));
  model::ModelState state(scene.image, priorParams(),
                          model::LikelihoodParams{});
  rng::Stream s(2);
  state.initialiseRandom(20, s);

  const mcmc::RegionConstraint rc{model::Bounds{20, 20, 100, 100}, 5.0};
  const auto ids = modifiableCircles(state, rc);
  EXPECT_EQ(ids.size(), modifiableCount(state, rc));
  std::size_t brute = 0;
  state.config().forEach([&](model::CircleId, const model::Circle& c) {
    brute += rc.allowsCircle(c);
  });
  EXPECT_EQ(ids.size(), brute);
  for (model::CircleId id : ids) {
    EXPECT_TRUE(rc.allowsCircle(state.config().get(id)));
  }
}

TEST(ModifiableCircles, BoundaryCircleExcluded) {
  img::Scene scene = img::generateScene(img::cellScene(128, 128, 2, 6.0, 3));
  model::ModelState state(scene.image, priorParams(),
                          model::LikelihoodParams{});
  // Circle crossing the x=64 partition line.
  state.commitAdd(model::Circle{64, 32, 5});
  // Circle comfortably inside the left half.
  state.commitAdd(model::Circle{30, 32, 5});
  const mcmc::RegionConstraint left{model::Bounds{0, 0, 64, 128}, 2.0};
  EXPECT_EQ(modifiableCount(state, left), 1u);
}

TEST(AllocateIterations, ExactSumAndProportionality) {
  const auto out = allocateIterations(100, {10, 30, 60});
  EXPECT_EQ(std::accumulate(out.begin(), out.end(), std::uint64_t{0}), 100u);
  EXPECT_EQ(out[0], 10u);
  EXPECT_EQ(out[1], 30u);
  EXPECT_EQ(out[2], 60u);
}

TEST(AllocateIterations, LargestRemainderRounding) {
  // 10 iterations over counts {1,1,1}: 3.33 each -> 4/3/3 in index order.
  const auto out = allocateIterations(10, {1, 1, 1});
  EXPECT_EQ(std::accumulate(out.begin(), out.end(), std::uint64_t{0}), 10u);
  for (std::uint64_t v : out) {
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 4u);
  }
}

TEST(AllocateIterations, ZeroCountPartitionsGetNothing) {
  const auto out = allocateIterations(50, {0, 5, 0, 5});
  EXPECT_EQ(out[0], 0u);
  EXPECT_EQ(out[2], 0u);
  EXPECT_EQ(out[1] + out[3], 50u);
}

TEST(AllocateIterations, AllZeroCountsAllZero) {
  const auto out = allocateIterations(50, {0, 0});
  EXPECT_EQ(out[0], 0u);
  EXPECT_EQ(out[1], 0u);
}

TEST(AllocateIterations, ZeroTotal) {
  const auto out = allocateIterations(0, {3, 4});
  EXPECT_EQ(out[0] + out[1], 0u);
}

class AllocationSweep
    : public ::testing::TestWithParam<std::pair<std::uint64_t, std::size_t>> {};

TEST_P(AllocationSweep, SumInvariantUnderRandomCounts) {
  const auto [total, nParts] = GetParam();
  rng::Stream s(total + nParts);
  std::vector<std::size_t> counts(nParts);
  for (auto& c : counts) c = static_cast<std::size_t>(s.below(40));
  const auto out = allocateIterations(total, counts);
  const std::uint64_t sum =
      std::accumulate(counts.begin(), counts.end(), std::uint64_t{0});
  const std::uint64_t outSum =
      std::accumulate(out.begin(), out.end(), std::uint64_t{0});
  if (sum == 0) {
    EXPECT_EQ(outSum, 0u);
  } else {
    EXPECT_EQ(outSum, total);
    // No allocation can be off by more than 1 from the exact share.
    for (std::size_t i = 0; i < counts.size(); ++i) {
      const double exact = static_cast<double>(total) *
                           static_cast<double>(counts[i]) /
                           static_cast<double>(sum);
      EXPECT_NEAR(static_cast<double>(out[i]), exact, 1.0 + 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, AllocationSweep,
    ::testing::Values(std::make_pair(std::uint64_t{1}, std::size_t{1}),
                      std::make_pair(std::uint64_t{97}, std::size_t{4}),
                      std::make_pair(std::uint64_t{1000}, std::size_t{7}),
                      std::make_pair(std::uint64_t{12345}, std::size_t{16})));

TEST(InPlaceSafetyMargin, CoversGridCellAndInteraction) {
  img::Scene scene = img::generateScene(img::cellScene(128, 128, 5, 6.0, 4));
  model::ModelState state(scene.image, priorParams(),
                          model::LikelihoodParams{});
  const double margin = inPlaceSafetyMargin(state);
  // interactionRange = 2*rMax = 24 -> margin = 48.
  EXPECT_NEAR(margin, 48.0, 1e-12);
  EXPECT_GT(margin, state.prior().interactionRange());
}

}  // namespace
}  // namespace mcmcpar::partition
